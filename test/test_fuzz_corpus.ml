(* Corpus persistence tests: the evolutionary soak's on-disk corpus
   round-trips exactly, quarantines tampered files instead of dying,
   survives injected worker crashes and a kill-plus-resume without
   losing an entry, and is byte-identical for every [-j] — the
   determinism contract behind `mifuzz --replay`. *)

module Bench = Mi_bench_kit.Bench
module Fuzz = Mi_fuzz.Fuzz
module Corpus = Mi_fuzz.Corpus
module Fault = Mi_faultkit.Fault
module Json = Mi_obs.Json

let rm_rf dir =
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

let tmp_dir name =
  let d = Filename.concat (Filename.get_temp_dir_name ()) name in
  rm_rf d;
  d

let read_file path = In_channel.with_open_text path In_channel.input_all

let write_file path contents =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc contents)

let entry_bytes e = Json.to_string (Corpus.entry_to_json e)

let soak ?faults ?(jobs = 1) ~max_execs dir =
  Fuzz.soak_run (Fuzz.soak_config ?faults ~jobs ~max_execs ~corpus_dir:dir ())

let report_bytes r = Json.to_string (Fuzz.report_to_json r)

(* {1 Round-trip: save/load is the identity} *)

let test_entry_roundtrip () =
  let dir = tmp_dir "mi-corpus-rt" in
  let dir2 = tmp_dir "mi-corpus-rt2" in
  let r = soak ~max_execs:8 dir in
  Alcotest.(check bool) "tiny soak is clean" true (Fuzz.ok r);
  let entries = Corpus.load ~dir in
  Alcotest.(check bool) "soak admitted entries" true (entries <> []);
  List.iter
    (fun (e : Corpus.entry) ->
      (* content address: the id is a pure function of the sources *)
      Alcotest.(check string) "id matches sources"
        (Corpus.id_of_sources e.Corpus.en_sources)
        e.Corpus.en_id;
      Corpus.save ~dir:dir2 e)
    entries;
  let back = Corpus.load ~dir:dir2 in
  Alcotest.(check int) "same entry count" (List.length entries)
    (List.length back);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "entry round-trips" (entry_bytes a)
        (entry_bytes b))
    entries back;
  rm_rf dir;
  rm_rf dir2

(* {1 Tampering: quarantine, never poison} *)

let test_tamper_quarantine () =
  let dir = tmp_dir "mi-corpus-tamper" in
  let r = soak ~max_execs:8 dir in
  Alcotest.(check bool) "tiny soak is clean" true (Fuzz.ok r);
  let entries = Corpus.load ~dir in
  let n = List.length entries in
  Alcotest.(check bool) "at least two entries" true (n >= 2);
  let victim = List.hd entries in
  let victim_path = Filename.concat dir (victim.Corpus.en_id ^ ".json") in
  (* 1: torn write — a stray .tmp orphan must be ignored *)
  write_file (Filename.concat dir "deadbeef.json.tmp") "{ torn";
  (* 2: content tamper — garbage where an entry used to be *)
  write_file victim_path "not json at all";
  (* 3: name tamper — a valid entry under the wrong filename *)
  let impostor = List.nth entries 1 in
  write_file
    (Filename.concat dir "0000000000000000000000000000dead.json")
    (entry_bytes impostor ^ "\n");
  let after = Corpus.load ~dir in
  Alcotest.(check int) "tampered entry dropped, impostor dropped" (n - 1)
    (List.length after);
  Alcotest.(check bool) "victim no longer listed" true
    (not
       (List.exists
          (fun (e : Corpus.entry) -> e.Corpus.en_id = victim.Corpus.en_id)
          after));
  Alcotest.(check bool) "tampered file quarantined" true
    (Sys.file_exists (victim_path ^ ".corrupt"));
  Alcotest.(check bool) "impostor quarantined" true
    (Sys.file_exists
       (Filename.concat dir "0000000000000000000000000000dead.json.corrupt"));
  Alcotest.(check bool) ".tmp orphan left alone" true
    (Sys.file_exists (Filename.concat dir "deadbeef.json.tmp"));
  (* a second load is stable: quarantine already done, nothing new *)
  Alcotest.(check int) "load is idempotent after quarantine"
    (List.length after)
    (List.length (Corpus.load ~dir));
  rm_rf dir

(* {1 Crash-safe resume}

   Leg 1 runs half the budget with an injected worker crash on every
   mutant job (faultkit [crash=-mut] — mutant benches are named
   [fuzz-<seed>-mut], candidate benches [ev-<hex>], so only the mutant
   lane crashes).  Admission is candidate-only, so the corpus keeps
   growing through the crashes; the run ends not-ok.  Leg 2 resumes the
   same directory fault-free to the full budget: no leg-1 entry may be
   lost or change a byte, the exec counter continues exactly, and the
   finished corpus replays with zero findings, byte-identically at any
   [-j]. *)

let test_crash_and_resume () =
  let dir = tmp_dir "mi-corpus-resume" in
  let faults =
    match Fault.parse "crash=-mut" with
    | Ok p -> p
    | Error e -> failwith e
  in
  let r1 = soak ~faults ~max_execs:10 dir in
  Alcotest.(check bool) "crashed leg is not ok" false (Fuzz.ok r1);
  let before = Corpus.load ~dir in
  Alcotest.(check bool) "entries admitted despite crashes" true (before <> []);
  let st1 = Corpus.load_state ~dir in
  Alcotest.(check int) "checkpoint counts every exec" 10 st1.Corpus.st_execs;
  (* simulate the kill arriving mid-write: a torn temp file on disk *)
  write_file (Filename.concat dir "deadbeef.json.tmp") "{ torn";
  let r2 = soak ~max_execs:20 dir in
  Alcotest.(check bool) "resumed leg is clean" true (Fuzz.ok r2);
  (match r2.Fuzz.r_corpus with
  | None -> Alcotest.fail "soak report lost its corpus stats"
  | Some cs ->
      Alcotest.(check int) "exec counter resumed, not restarted" 20
        cs.Fuzz.cs_execs;
      Alcotest.(check bool) "corpus grew across the resume" true
        (cs.Fuzz.cs_entries > List.length before));
  let after = Corpus.load ~dir in
  List.iter
    (fun (e : Corpus.entry) ->
      match
        List.find_opt
          (fun (e' : Corpus.entry) -> e'.Corpus.en_id = e.Corpus.en_id)
          after
      with
      | None ->
          Alcotest.failf "entry %s lost across resume"
            (String.sub e.Corpus.en_id 0 12)
      | Some e' ->
          Alcotest.(check string) "entry byte-identical across resume"
            (entry_bytes e) (entry_bytes e'))
    before;
  (* the finished corpus replays clean and independent of -j *)
  let rp1 = Fuzz.replay ~jobs:1 ~dir () in
  let rp4 = Fuzz.replay ~jobs:4 ~dir () in
  Alcotest.(check (list string)) "replay reports nothing" []
    (List.map Mi_fuzz.Oracle.finding_to_string rp1.Fuzz.r_findings);
  Alcotest.(check string) "replay byte-identical at -j1 and -j4"
    (report_bytes rp1) (report_bytes rp4);
  rm_rf dir

(* {1 -j determinism: the corpus itself is worker-count independent} *)

let test_jobs_corpus_determinism () =
  let d1 = tmp_dir "mi-corpus-j1" in
  let d8 = tmp_dir "mi-corpus-j8" in
  let r1 = soak ~jobs:1 ~max_execs:16 d1 in
  let r8 = soak ~jobs:8 ~max_execs:16 d8 in
  Alcotest.(check string) "soak report byte-identical at -j1 and -j8"
    (report_bytes r1) (report_bytes r8);
  let ls d =
    List.sort String.compare
      (List.filter
         (fun n -> Filename.check_suffix n ".json")
         (Array.to_list (Sys.readdir d)))
  in
  Alcotest.(check (list string)) "same corpus files" (ls d1) (ls d8);
  List.iter
    (fun name ->
      Alcotest.(check string)
        (name ^ " byte-identical")
        (read_file (Filename.concat d1 name))
        (read_file (Filename.concat d8 name)))
    (ls d1);
  rm_rf d1;
  rm_rf d8

let () =
  Alcotest.run "fuzz-corpus"
    [
      ( "persistence",
        [
          Alcotest.test_case "entry save/load round-trip" `Slow
            test_entry_roundtrip;
          Alcotest.test_case "tampered files quarantined" `Slow
            test_tamper_quarantine;
        ] );
      ( "resume",
        [
          Alcotest.test_case "injected crashes + kill, resume loses nothing"
            `Slow test_crash_and_resume;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "-j1 vs -j8 corpora byte-identical" `Slow
            test_jobs_corpus_determinism;
        ] );
    ]
