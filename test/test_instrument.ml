(* Tests for the instrumentation framework: target discovery (Table 1),
   dominance-based check elimination, witness materialization, modes, and
   configuration policies. *)

open Mi_mir
module I = Mi_core.Instrument
module Itarget = Mi_core.Itarget
module Optimize = Mi_core.Optimize
module Config = Mi_core.Config

let parse src =
  let m = Parser.parse_module src in
  Mi_analysis.Domcheck.assert_valid m;
  m

let count_calls (m : Irmod.t) name =
  List.fold_left
    (fun acc (f : Func.t) ->
      List.fold_left
        (fun acc (b : Block.t) ->
          acc
          + List.length
              (List.filter
                 (fun (i : Instr.t) ->
                   match i.op with
                   | Instr.Call (c, _) -> String.equal c name
                   | _ -> false)
                 b.Block.body))
        acc f.blocks)
    0 m.funcs

(* a module with one of everything from Table 1 *)
let table1_module =
  {|
module "t1"
global @gptr : 8 align 8 {
  ptr @gdata
}
global @gdata : 16 align 8 {
  zero 16
}
func @callee(%p.0 : ptr) -> ptr {
entry:
  ret %p.0
}
func @f(%p.0 : ptr, %c.1 : i1) -> i64 {
entry:
  %a.2 = alloca 16 align 8
  %h.3 = call @malloc(32:i64) : ptr
  %sel.4 = select ptr %c.1, %a.2, %h.3
  cbr %c.1, left, right
left:
  br join
right:
  br join
join:
  %phi.5 = phi ptr [left %a.2] [right %h.3]
  %g.6 = gep %phi.5 [8 x 1:i64]
  %v.7 = load i64 %g.6
  store i64 %v.7, %sel.4
  store ptr %g.6, %a.2
  %ld.8 = load ptr %a.2
  %r.9 = call @callee(%ld.8) : ptr
  %cast.10 = ptrtoint ptr %r.9 to i64
  ret %cast.10
}
|}

let test_discovery_counts () =
  let m = parse table1_module in
  let f = Irmod.find_func_exn m "f" in
  let t = Itarget.discover m f in
  (* loads: %v.7, %ld.8; stores: i64 store + ptr store *)
  Alcotest.(check int) "check targets" 4 (List.length t.Itarget.checks);
  Alcotest.(check int) "pointer stores" 1 (List.length t.Itarget.ptr_stores);
  Alcotest.(check int) "escape casts" 1 (List.length t.Itarget.escape_casts);
  (* calls: malloc (Known_alloc) and callee (General) *)
  Alcotest.(check int) "call targets" 2 (List.length t.Itarget.calls);
  let callee_call =
    List.find (fun (c : Itarget.call) -> c.l_callee = "callee") t.Itarget.calls
  in
  Alcotest.(check bool) "general kind" true
    (callee_call.Itarget.l_kind = Itarget.General);
  Alcotest.(check int) "one pointer arg" 1
    (List.length callee_call.Itarget.l_ptr_args);
  Alcotest.(check bool) "pointer return" true callee_call.Itarget.l_has_ptr_ret;
  (* the ret of @callee is a pointer return target *)
  let tc = Itarget.discover m (Irmod.find_func_exn m "callee") in
  Alcotest.(check int) "callee ret target" 1 (List.length tc.Itarget.ptr_rets)

(* ------------------------------------------------------------------ *)
(* Dominance elimination                                               *)
(* ------------------------------------------------------------------ *)

let elim_src =
  {|
module "t"
func @f(%p.0 : ptr, %q.1 : ptr, %c.2 : i1) -> i64 {
entry:
  %a.3 = load i64 %p.0
  %b.4 = load i64 %p.0
  %w.5 = load i32 %p.0
  %x.6 = load i64 %q.1
  cbr %c.2, then, else
then:
  %y.7 = load i64 %p.0
  br join
else:
  %z.8 = load i64 %q.1
  br join
join:
  %r.9 = add i64 %a.3, %b.4
  ret %r.9
}
|}

let test_dominance_elimination () =
  let m = parse elim_src in
  let f = Irmod.find_func_exn m "f" in
  let t = Itarget.discover m f in
  Alcotest.(check int) "checks found" 6 (List.length t.Itarget.checks);
  let kept = Optimize.dominance_eliminate f t.Itarget.checks in
  (* %b.4 dominated by %a.3 (same width); %w.5 dominated (narrower);
     %y.7 dominated by %a.3; %z.8 dominated by %x.6 -> 4 removed *)
  Alcotest.(check int) "checks kept" 2 (List.length kept)

let test_dominance_respects_width () =
  let m =
    parse
      {|
module "t"
func @f(%p.0 : ptr) -> i64 {
entry:
  %a.1 = load i32 %p.0
  %b.2 = load i64 %p.0
  %c.3 = sext i32 %a.1 to i64
  %r.4 = add i64 %b.2, %c.3
  ret %r.4
}
|}
  in
  let f = Irmod.find_func_exn m "f" in
  let t = Itarget.discover m f in
  let kept = Optimize.dominance_eliminate f t.Itarget.checks in
  (* the earlier i32 check cannot subsume the later wider i64 check *)
  Alcotest.(check int) "wider check survives" 2 (List.length kept)

(* ------------------------------------------------------------------ *)
(* Instrumentation output                                              *)
(* ------------------------------------------------------------------ *)

let test_instrumented_module_is_valid () =
  List.iter
    (fun cfg ->
      let m = parse table1_module in
      ignore (I.run cfg m);
      Mi_analysis.Domcheck.assert_valid m)
    [ Config.softbound; Config.lowfat ]

let test_softbound_inserts () =
  let m = parse table1_module in
  ignore (I.run Config.softbound m);
  Alcotest.(check int) "4 checks" 4 (count_calls m Intrinsics.sb_check);
  Alcotest.(check bool) "trie store for ptr store" true
    (count_calls m Intrinsics.sb_trie_store >= 1);
  Alcotest.(check bool) "trie load for ptr load" true
    (count_calls m Intrinsics.sb_trie_load_base >= 1);
  Alcotest.(check bool) "shadow stack protocol" true
    (count_calls m Intrinsics.ss_enter >= 1);
  (* pointers in global initializers get a constructor *)
  Alcotest.(check bool) "global init constructor" true
    (Irmod.find_func m "__mi_global_init" <> None)

let test_lowfat_inserts () =
  let m = parse table1_module in
  ignore (I.run Config.lowfat m);
  Alcotest.(check int) "4 checks" 4 (count_calls m Intrinsics.lf_check);
  Alcotest.(check bool) "escape checks (store/call/ret/ptrtoint)" true
    (count_calls m Intrinsics.lf_invariant_check >= 3);
  Alcotest.(check bool) "allocas mirrored" true
    (count_calls m Intrinsics.lf_alloca >= 1);
  Alcotest.(check bool) "no shadow stack for lowfat" true
    (count_calls m Intrinsics.ss_enter = 0)

let test_geninvariants_mode () =
  let m = parse table1_module in
  ignore (I.run (Config.metadata_only Config.softbound) m);
  Alcotest.(check int) "no dereference checks" 0
    (count_calls m Intrinsics.sb_check);
  Alcotest.(check bool) "invariants still maintained" true
    (count_calls m Intrinsics.sb_trie_store >= 1)

let test_noop_mode () =
  let m = parse table1_module in
  let before = Printer.module_to_string m in
  ignore (I.run { Config.softbound with mode = Config.Noop } m);
  Alcotest.(check string) "unchanged" before (Printer.module_to_string m)

let test_witness_phi_materialization () =
  let m = parse table1_module in
  ignore (I.run Config.softbound m);
  let f = Irmod.find_func_exn m "f" in
  let join = Func.find_block_exn f "join" in
  (* the pointer phi got companion base/bound phis *)
  Alcotest.(check int) "3 phis at join" 3 (List.length join.Block.phis)

let size_zero_module =
  {|
module "sz"
extern global @tab : 0 align 8 nosize
func @f(%i.0 : i64) -> i64 {
entry:
  %p.1 = gep @tab [8 x %i.0]
  %v.2 = load i64 %p.1
  ret %v.2
}
|}

let test_sb_size_zero_wide_upper () =
  let m = parse size_zero_module in
  ignore (I.run Config.softbound m);
  let s = Printer.module_to_string m in
  (* the wide upper bound constant must appear in the check *)
  let contains_substr hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "wide bound constant used" true
    (contains_substr s (string_of_int Mi_vm.Layout.wide_bound))

let test_sb_size_zero_null_bounds () =
  let m = parse size_zero_module in
  ignore
    (I.run { Config.softbound with sb_size_zero_wide_upper = false } m);
  let s = Printer.module_to_string m in
  let contains_substr hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "null bounds used instead" false
    (contains_substr s (string_of_int Mi_vm.Layout.wide_bound))

let test_lf_stack_off_keeps_allocas () =
  let m = parse table1_module in
  ignore (I.run { Config.lowfat with lf_stack = false } m);
  Alcotest.(check int) "no mirrored allocas" 0
    (count_calls m Intrinsics.lf_alloca)

let test_static_stats () =
  let m = parse elim_src in
  let stats = I.run (Config.optimized Config.softbound) m in
  Alcotest.(check int) "found" 6 stats.I.total_checks_found;
  Alcotest.(check int) "removed" 4 stats.I.total_checks_removed;
  Alcotest.(check int) "placed" 2 stats.I.total_checks_placed

(* ------------------------------------------------------------------ *)
(* Wrapper checks (§5.1.2)                                             *)
(* ------------------------------------------------------------------ *)

let memcpy_module =
  {|
module "w"
func @f(%d.0 : ptr, %s.1 : ptr, %n.2 : i64) -> void {
entry:
  memcpy %d.0, %s.1, %n.2
  ret
}
|}

let test_wrapper_checks_flag () =
  (* disabled (default, for runtime comparability): no checks around the
     memcpy, but metadata is still copied *)
  let m = parse memcpy_module in
  ignore (I.run Config.softbound m);
  Alcotest.(check int) "no checks by default" 0
    (count_calls m Intrinsics.sb_check);
  Alcotest.(check int) "metadata copied" 1
    (count_calls m Intrinsics.sb_meta_copy);
  (* enabled: dst and src are both checked with the dynamic length *)
  let m = parse memcpy_module in
  ignore (I.run { Config.softbound with sb_wrapper_checks = true } m);
  Alcotest.(check int) "both operands checked" 2
    (count_calls m Intrinsics.sb_check);
  let m = parse memcpy_module in
  ignore (I.run { Config.lowfat with sb_wrapper_checks = true } m);
  Alcotest.(check int) "lowfat wrapper checks" 2
    (count_calls m Intrinsics.lf_check)

(* end-to-end: an overflowing memcpy is caught only with wrapper checks *)
let test_wrapper_checks_e2e () =
  let src =
    {|
int main(void) {
  char *a = (char *)malloc(16);
  char *b = (char *)malloc(64);
  memcpy(a, b, 40);   /* writes 40 bytes into a 16-byte object */
  print_int(a[0]);
  return 0;
}
|}
  in
  let run cfg =
    let setup =
      Mi_bench_kit.Harness.with_config cfg Mi_bench_kit.Harness.baseline
    in
    let r =
      Mi_bench_kit.Harness.run_sources setup [ Mi_bench_kit.Bench.src "t" src ]
    in
    match r.Mi_bench_kit.Harness.outcome with
    | Mi_vm.Interp.Safety_violation _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "silent without wrapper checks" false
    (run Config.softbound);
  Alcotest.(check bool) "caught with wrapper checks" true
    (run { Config.softbound with sb_wrapper_checks = true });
  Alcotest.(check bool) "lowfat catches too (40 > 32-byte class)" true
    (run { Config.lowfat with sb_wrapper_checks = true })

let () =
  Alcotest.run "instrument"
    [
      ( "itargets",
        [ Alcotest.test_case "Table 1 discovery" `Quick test_discovery_counts ] );
      ( "dominance-opt",
        [
          Alcotest.test_case "eliminates dominated" `Quick test_dominance_elimination;
          Alcotest.test_case "respects width" `Quick test_dominance_respects_width;
        ] );
      ( "lowering",
        [
          Alcotest.test_case "instrumented modules verify" `Quick
            test_instrumented_module_is_valid;
          Alcotest.test_case "softbound inserts" `Quick test_softbound_inserts;
          Alcotest.test_case "lowfat inserts" `Quick test_lowfat_inserts;
          Alcotest.test_case "geninvariants mode" `Quick test_geninvariants_mode;
          Alcotest.test_case "noop mode" `Quick test_noop_mode;
          Alcotest.test_case "witness phis" `Quick test_witness_phi_materialization;
          Alcotest.test_case "size-zero wide upper" `Quick test_sb_size_zero_wide_upper;
          Alcotest.test_case "size-zero null bounds" `Quick
            test_sb_size_zero_null_bounds;
          Alcotest.test_case "lf_stack off" `Quick test_lf_stack_off_keeps_allocas;
          Alcotest.test_case "static statistics" `Quick test_static_stats;
        ] );
      ( "wrapper-checks",
        [
          Alcotest.test_case "flag controls placement" `Quick
            test_wrapper_checks_flag;
          Alcotest.test_case "overflowing memcpy e2e" `Quick
            test_wrapper_checks_e2e;
        ] );
    ]
