(* Mutation campaign: a sampled check-deletion campaign against the
   safety corpus must kill every non-whitelisted mutant, and every
   whitelist entry must carry a written justification.  This is the
   test-suite-sized version of the CI mutation gate. *)

module Mutation = Mi_bench_kit.Mutation

let test_sampled_campaign () =
  let c = Mutation.run ~sample_per_approach:4 () in
  Alcotest.(check bool) "campaign nonempty" true (c.Mutation.total > 0);
  Alcotest.(check int) "every mutant judged" c.Mutation.total
    (List.length c.Mutation.results);
  Alcotest.(check int)
    "killed + whitelisted = total"
    c.Mutation.total
    (c.Mutation.killed + c.Mutation.whitelisted);
  Alcotest.(check int) "no survivors" 0 c.Mutation.survived;
  List.iter
    (fun (o : Mutation.outcome) ->
      match o.Mutation.status with
      | Mutation.Killed _ -> ()
      | Mutation.Whitelisted why ->
          Alcotest.(check bool)
            (Mutation.mutant_name o.Mutation.mutant
            ^ ": whitelist entry is justified")
            true
            (String.length why > 10)
      | Mutation.Survived ->
          Alcotest.failf "mutant %s survived"
            (Mutation.mutant_name o.Mutation.mutant))
    c.Mutation.results

let test_render () =
  let c = Mutation.run ~sample_per_approach:2 () in
  let s = Mutation.render c in
  Alcotest.(check bool) "summary line present" true
    (let needle = "survivors: 0" in
     let n = String.length needle and m = String.length s in
     let rec scan i = i + n <= m && (String.sub s i n = needle || scan (i + 1)) in
     scan 0)

let test_determinism () =
  let c1 = Mutation.run ~seed:42 ~sample_per_approach:2 () in
  let c2 = Mutation.run ~seed:42 ~sample_per_approach:2 () in
  Alcotest.(check string) "same seed, same report" (Mutation.render c1)
    (Mutation.render c2)

let () =
  Alcotest.run "mutation"
    [
      ( "campaign",
        [
          Alcotest.test_case "sampled campaign kills everything" `Slow
            test_sampled_campaign;
          Alcotest.test_case "render reports no survivors" `Slow test_render;
          Alcotest.test_case "seeded sampling is deterministic" `Slow
            test_determinism;
        ] );
    ]
