(* Tests for the optimization passes: per-pass transformation checks plus
   semantic preservation across the pipeline (including under
   instrumentation) on a corpus of MiniC programs. *)

open Mi_mir
module P = Mi_passes

(* count instructions satisfying a predicate over the whole module *)
let count_instrs (m : Irmod.t) pred =
  List.fold_left
    (fun acc (f : Func.t) ->
      List.fold_left
        (fun acc (b : Block.t) ->
          acc + List.length (List.filter pred b.Block.body))
        acc f.blocks)
    0 (Irmod.defined_funcs m)

let has_call name (i : Instr.t) =
  match i.op with Instr.Call (c, _) -> String.equal c name | _ -> false

let is_alloca (i : Instr.t) =
  match i.op with Instr.Alloca _ -> true | _ -> false

let is_load (i : Instr.t) =
  match i.op with Instr.Load _ -> true | _ -> false

let parse src =
  let m = Parser.parse_module src in
  Mi_analysis.Domcheck.assert_valid m;
  m

(* ------------------------------------------------------------------ *)
(* mem2reg                                                             *)
(* ------------------------------------------------------------------ *)

let test_mem2reg_promotes_scalar () =
  let m =
    parse
      {|
module "t"
func @f(%c.0 : i1) -> i64 {
entry:
  %x.1 = alloca 8 align 8
  store i64 1:i64, %x.1
  cbr %c.0, a, b
a:
  store i64 2:i64, %x.1
  br join
b:
  store i64 3:i64, %x.1
  br join
join:
  %v.2 = load i64 %x.1
  ret %v.2
}
|}
  in
  let changed = P.Mem2reg.run_func (Irmod.find_func_exn m "f") in
  Alcotest.(check bool) "changed" true changed;
  Mi_analysis.Domcheck.assert_valid m;
  Alcotest.(check int) "alloca gone" 0 (count_instrs m is_alloca);
  Alcotest.(check int) "loads gone" 0 (count_instrs m is_load);
  (* a phi must have appeared at the join *)
  let f = Irmod.find_func_exn m "f" in
  let join = Func.find_block_exn f "join" in
  Alcotest.(check int) "join has a phi" 1 (List.length join.Block.phis)

let test_mem2reg_keeps_escaped () =
  let m =
    parse
      {|
module "t"
func @f() -> i64 {
entry:
  %x.1 = alloca 8 align 8
  store i64 1:i64, %x.1
  call @escape(%x.1)
  %v.2 = load i64 %x.1
  ret %v.2
}
extern func @escape(%p.0 : ptr) -> void
|}
  in
  ignore (P.Mem2reg.run_func (Irmod.find_func_exn m "f"));
  Alcotest.(check int) "alloca kept (address escapes)" 1
    (count_instrs m is_alloca)

let test_mem2reg_keeps_checked_alloca () =
  (* an alloca whose address feeds a check call must not be promoted —
     the ModuleOptimizerEarly effect of Figures 12/13 *)
  let m =
    parse
      {|
module "t"
func @f() -> i64 {
entry:
  %x.1 = alloca 8 align 8
  call @__mi_lf_check(%x.1, 8:i64, %x.1)
  store i64 1:i64, %x.1
  %v.2 = load i64 %x.1
  ret %v.2
}
|}
  in
  ignore (P.Mem2reg.run_func (Irmod.find_func_exn m "f"));
  Alcotest.(check int) "alloca kept (check pins it)" 1
    (count_instrs m is_alloca)

(* ------------------------------------------------------------------ *)
(* DCE                                                                 *)
(* ------------------------------------------------------------------ *)

let test_dce_removes_unused_pure () =
  let m =
    parse
      {|
module "t"
func @f() -> i64 {
entry:
  %dead.1 = add i64 1:i64, 2:i64
  %alive.2 = add i64 3:i64, 4:i64
  ret %alive.2
}
|}
  in
  ignore (P.Dce.run_func (Irmod.find_func_exn m "f"));
  Alcotest.(check int) "one instruction left" 1 (Func.instr_count (Irmod.find_func_exn m "f"))

let test_dce_removes_unused_metadata_load () =
  (* the §5.4 phenomenon: unused trie loads are deleted *)
  let m =
    parse
      {|
module "t"
func @f(%p.0 : ptr) -> void {
entry:
  %b.1 = call @__mi_sb_trie_load_base(%p.0) : ptr
  %e.2 = call @__mi_sb_trie_load_bound(%p.0) : ptr
  ret
}
|}
  in
  ignore (P.Dce.run_func (Irmod.find_func_exn m "f"));
  Alcotest.(check int) "trie loads deleted" 0
    (Func.instr_count (Irmod.find_func_exn m "f"))

let test_dce_keeps_checks () =
  let m =
    parse
      {|
module "t"
func @f(%p.0 : ptr) -> void {
entry:
  call @__mi_sb_check(%p.0, 8:i64, %p.0, %p.0)
  call @__mi_sb_trie_store(%p.0, %p.0, %p.0)
  ret
}
|}
  in
  ignore (P.Dce.run_func (Irmod.find_func_exn m "f"));
  Alcotest.(check int) "checks and stores kept" 2
    (Func.instr_count (Irmod.find_func_exn m "f"))

(* ------------------------------------------------------------------ *)
(* Instcombine                                                         *)
(* ------------------------------------------------------------------ *)

let test_instcombine_folds () =
  let m =
    parse
      {|
module "t"
func @f(%x.0 : i64) -> i64 {
entry:
  %a.1 = add i64 2:i64, 3:i64
  %b.2 = add i64 %x.0, 0:i64
  %c.3 = mul i64 %b.2, 8:i64
  %d.4 = add i64 %a.1, %c.3
  ret %d.4
}
|}
  in
  let f = Irmod.find_func_exn m "f" in
  ignore (P.Instcombine.run_func f);
  ignore (P.Dce.run_func f);
  Mi_analysis.Domcheck.assert_valid m;
  (* 2+3 folded away; x+0 folded; mul by 8 became shl *)
  let has_shl =
    count_instrs m (fun i ->
        match i.op with Instr.Bin (Instr.Shl, _, _, _) -> true | _ -> false)
  in
  Alcotest.(check int) "mul by pow2 strength-reduced" 1 has_shl;
  Alcotest.(check int) "only shl and final add left" 2 (Func.instr_count f)

let test_instcombine_gep_zero_fold () =
  (* the appendix-B effect: a zero-offset gep folds to its base *)
  let m =
    parse
      {|
module "t"
func @f(%p.0 : ptr) -> i64 {
entry:
  %q.1 = gep %p.0 [4 x 0:i64]
  %v.2 = load i64 %q.1
  ret %v.2
}
|}
  in
  let f = Irmod.find_func_exn m "f" in
  ignore (P.Instcombine.run_func f);
  ignore (P.Dce.run_func f);
  Alcotest.(check int) "gep folded away" 1 (Func.instr_count f)

(* ------------------------------------------------------------------ *)
(* GVN                                                                 *)
(* ------------------------------------------------------------------ *)

let test_gvn_cse () =
  let m =
    parse
      {|
module "t"
func @f(%x.0 : i64, %p.1 : ptr) -> i64 {
entry:
  %a.2 = add i64 %x.0, 7:i64
  %b.3 = add i64 %x.0, 7:i64
  %g1.4 = gep %p.1 [8 x %x.0]
  %g2.5 = gep %p.1 [8 x %x.0]
  %l1.6 = call @__mi_lf_base(%g1.4) : ptr
  %l2.7 = call @__mi_lf_base(%g2.5) : ptr
  %i1.8 = ptrtoint ptr %l1.6 to i64
  %i2.9 = ptrtoint ptr %l2.7 to i64
  %s.10 = add i64 %a.2, %b.3
  %t.11 = add i64 %i1.8, %i2.9
  %r.12 = add i64 %s.10, %t.11
  ret %r.12
}
|}
  in
  let f = Irmod.find_func_exn m "f" in
  ignore (P.Gvn.run_func f);
  ignore (P.Dce.run_func f);
  Mi_analysis.Domcheck.assert_valid m;
  (* duplicates of add/gep/lf_base merged: 1 add + 1 gep + 1 lf_base +
     1 ptrtoint + 3 final adds = 7 *)
  Alcotest.(check int) "duplicates merged" 7 (Func.instr_count f)

let test_gvn_commutative () =
  let m =
    parse
      {|
module "t"
func @f(%x.0 : i64, %y.1 : i64) -> i64 {
entry:
  %a.2 = add i64 %x.0, %y.1
  %b.3 = add i64 %y.1, %x.0
  %s.4 = add i64 %a.2, %b.3
  ret %s.4
}
|}
  in
  let f = Irmod.find_func_exn m "f" in
  ignore (P.Gvn.run_func f);
  ignore (P.Dce.run_func f);
  Alcotest.(check int) "x+y == y+x" 2 (Func.instr_count f)

let test_gvn_does_not_merge_trie_loads_across_store () =
  let m =
    parse
      {|
module "t"
func @f(%p.0 : ptr) -> i64 {
entry:
  %b1.1 = call @__mi_sb_trie_load_base(%p.0) : ptr
  call @__mi_sb_trie_store(%p.0, %p.0, %p.0)
  %b2.2 = call @__mi_sb_trie_load_base(%p.0) : ptr
  %i1.3 = ptrtoint ptr %b1.1 to i64
  %i2.4 = ptrtoint ptr %b2.2 to i64
  %s.5 = add i64 %i1.3, %i2.4
  ret %s.5
}
|}
  in
  let f = Irmod.find_func_exn m "f" in
  ignore (P.Gvn.run_func f);
  ignore (P.Dce.run_func f);
  Alcotest.(check int) "both trie loads survive" 6 (Func.instr_count f)

(* ------------------------------------------------------------------ *)
(* LICM                                                                *)
(* ------------------------------------------------------------------ *)

let licm_module checks_in_loop =
  Printf.sprintf
    {|
module "t"
global @g : 8 align 8 {
  zero 8
}
func @f(%%n.0 : i64, %%p.1 : ptr) -> i64 {
entry:
  br ph
ph:
  br loop
loop:
  %%i.2 = phi i64 [ph 0:i64] [loop %%i2.6]
  %%inv.3 = load i64 @g
  %%x.4 = mul i64 %%inv.3, 3:i64
  %%a.5 = gep %%p.1 [8 x %%i.2]
  %s
  store i64 %%x.4, %%a.5
  %%i2.6 = add i64 %%i.2, 1:i64
  %%c.7 = icmp slt i64 %%i2.6, %%n.0
  cbr %%c.7, loop, done
done:
  ret %%x.4
}
|}
    (if checks_in_loop then
       "call @__mi_lf_check(%a.5, 8:i64, %p.1)"
     else "%unused.9 = add i64 0:i64, 0:i64")

let loop_body_size (m : Irmod.t) =
  let f = Irmod.find_func_exn m "f" in
  List.length (Func.find_block_exn f "loop").Block.body

let test_licm_hoists_without_checks () =
  let m = parse (licm_module false) in
  let before = loop_body_size m in
  ignore (P.Licm.run_func (Irmod.find_func_exn m "f"));
  Mi_analysis.Domcheck.assert_valid m;
  (* the i64 store does not clobber the i64 load of @g?  It does (same
     type may alias) — but the load of @g is a constant global address
     and the loop stores i64: same type, so TBAA pins it.  The mul of a
     hoistable value stays too; but the icmp/add stay.  At minimum the
     loop must not grow. *)
  Alcotest.(check bool) "loop did not grow" true (loop_body_size m <= before)

let test_licm_checks_pin_loads () =
  (* with a may-abort check in the loop, an invariant load through a
     pointer (not speculatable, unlike loads from globals) cannot move:
     compare the hoisted count in a float-store loop *)
  let mk with_check =
    parse
      (Printf.sprintf
         {|
module "t"
func @f(%%n.0 : i64, %%p.1 : ptr, %%q.2 : ptr) -> i64 {
entry:
  br ph
ph:
  br loop
loop:
  %%i.3 = phi i64 [ph 0:i64] [loop %%i2.6]
  %%inv.4 = load i64 %%q.2
  %%a.5 = gep %%p.1 [8 x %%i.3]
  %s
  store f64 fl(0x1p+0), %%a.5
  %%i2.6 = add i64 %%i.3, 1:i64
  %%c.7 = icmp slt i64 %%i2.6, %%n.0
  cbr %%c.7, loop, done
done:
  ret %%inv.4
}
|}
         (if with_check then "call @__mi_lf_check(%a.5, 8:i64, %p.1)"
          else "%nop.9 = add i64 0:i64, 0:i64"))
  in
  let m_plain = mk false in
  ignore (P.Licm.run_func (Irmod.find_func_exn m_plain "f"));
  let m_check = mk true in
  ignore (P.Licm.run_func (Irmod.find_func_exn m_check "f"));
  let load_in_loop m =
    let f = Irmod.find_func_exn m "f" in
    List.exists is_load (Func.find_block_exn f "loop").Block.body
  in
  Alcotest.(check bool) "without checks the load hoists" false
    (load_in_loop m_plain);
  Alcotest.(check bool) "the check pins the load (§5.5)" true
    (load_in_loop m_check)

(* loads from globals and metadata loads are speculatable/plain loads:
   they hoist even past checks, as LLVM would *)
let test_licm_speculates_global_and_meta () =
  let m =
    parse
      {|
module "t"
global @g : 8 align 8 {
  zero 8
}
func @f(%n.0 : i64, %p.1 : ptr) -> i64 {
entry:
  br ph
ph:
  br loop
loop:
  %i.2 = phi i64 [ph 0:i64] [loop %i2.7]
  %inv.3 = load i64 @g
  %mb.4 = call @__mi_sb_trie_load_base(%p.1) : ptr
  %a.5 = gep %p.1 [8 x %i.2]
  call @__mi_sb_check(%a.5, 8:i64, %mb.4, %mb.4)
  store f64 fl(0x1p+0), %a.5
  %i2.7 = add i64 %i.2, 1:i64
  %c.8 = icmp slt i64 %i2.7, %n.0
  cbr %c.8, loop, done
done:
  %x.9 = ptrtoint ptr %mb.4 to i64
  %r.10 = add i64 %inv.3, %x.9
  ret %r.10
}
|}
  in
  ignore (P.Licm.run_func (Irmod.find_func_exn m "f"));
  Mi_analysis.Domcheck.assert_valid m;
  let f = Irmod.find_func_exn m "f" in
  let loop = Func.find_block_exn f "loop" in
  Alcotest.(check bool) "global load hoisted" false
    (List.exists is_load loop.Block.body);
  Alcotest.(check bool) "trie load hoisted" false
    (List.exists (has_call "__mi_sb_trie_load_base") loop.Block.body);
  Alcotest.(check bool) "check stays in the loop" true
    (List.exists (has_call "__mi_sb_check") loop.Block.body)

(* ------------------------------------------------------------------ *)
(* Inline                                                              *)
(* ------------------------------------------------------------------ *)

let test_inline_simple () =
  let m =
    parse
      {|
module "t"
func @sq(%x.0 : i64) -> i64 {
entry:
  %r.1 = mul i64 %x.0, %x.0
  ret %r.1
}
func @main() -> i64 {
entry:
  %a.0 = call @sq(5:i64) : i64
  %b.1 = call @sq(%a.0) : i64
  ret %b.1
}
|}
  in
  ignore (P.Inline.run m);
  Mi_analysis.Domcheck.assert_valid m;
  Alcotest.(check int) "no calls left in main" 0
    (count_instrs m (has_call "sq"))

let test_inline_skips_recursive () =
  let m =
    parse
      {|
module "t"
func @r(%x.0 : i64) -> i64 {
entry:
  %c.1 = icmp sle i64 %x.0, 0:i64
  cbr %c.1, base, rec
base:
  ret 0:i64
rec:
  %y.2 = sub i64 %x.0, 1:i64
  %z.3 = call @r(%y.2) : i64
  ret %z.3
}
func @main() -> i64 {
entry:
  %a.0 = call @r(5:i64) : i64
  ret %a.0
}
|}
  in
  ignore (P.Inline.run m);
  Alcotest.(check bool) "recursive callee not inlined" true
    (count_instrs m (has_call "r") >= 1)

(* ------------------------------------------------------------------ *)
(* Simplifycfg                                                         *)
(* ------------------------------------------------------------------ *)

let test_simplifycfg_folds_constant_branch () =
  let m =
    parse
      {|
module "t"
func @f() -> i64 {
entry:
  cbr 1:i1, yes, no
yes:
  ret 1:i64
no:
  ret 0:i64
}
|}
  in
  ignore (P.Simplifycfg.run_func (Irmod.find_func_exn m "f"));
  Mi_analysis.Domcheck.assert_valid m;
  let f = Irmod.find_func_exn m "f" in
  Alcotest.(check int) "dead branch removed" 1 (List.length f.blocks)

let test_simplifycfg_merges_chain () =
  let m =
    parse
      {|
module "t"
func @f() -> i64 {
entry:
  %a.1 = add i64 1:i64, 2:i64
  br mid
mid:
  %b.2 = add i64 %a.1, 3:i64
  br last
last:
  ret %b.2
}
|}
  in
  ignore (P.Simplifycfg.run_func (Irmod.find_func_exn m "f"));
  Mi_analysis.Domcheck.assert_valid m;
  Alcotest.(check int) "merged into one block" 1
    (List.length (Irmod.find_func_exn m "f").blocks)

(* ------------------------------------------------------------------ *)
(* Self-loop phi regressions (found by differential fuzzing)           *)
(* ------------------------------------------------------------------ *)

let no_verify_errors what m =
  match Mi_mir.Verify.verify_module m with
  | [] -> ()
  | es ->
      Alcotest.failf "%s: %s" what
        (String.concat "; " (List.map Mi_mir.Verify.error_to_string es))

(* fuzz seed 16: inlining a call inside a do-while body splits the block,
   so the backedge into the loop-header phis now originates from the
   continuation block — including when the header is the split block
   itself (a self-loop).  The stale label corrupted the phi. *)
let test_inline_into_self_loop_renames_phi () =
  let m =
    parse
      {|
module "t"
func @inc(%x.0 : i64) -> i64 {
entry:
  %r.1 = add i64 %x.0, 1:i64
  ret %r.1
}
func @f() -> i64 {
entry:
  br loop
loop:
  %i.2 = phi i64 [entry 0:i64] [loop %i.4]
  %t.3 = call @inc(%i.2) : i64
  %i.4 = add i64 %i.2, %t.3
  %c.5 = icmp slt i64 %i.4, 10:i64
  cbr %c.5, loop, exit
exit:
  ret %i.4
}
|}
  in
  ignore (P.Inline.run m);
  no_verify_errors "after inline" m;
  Mi_analysis.Domcheck.assert_valid m;
  Alcotest.(check int) "call inlined" 0 (count_instrs m (has_call "inc"))

(* fuzz seed 18: merging a straight-line chain back into a loop header
   whose terminator closes the loop left the header's phis naming the
   absorbed block; downstream passes then folded the exit edge away and
   the function span into an infinite loop at -O3. *)
let test_simplifycfg_merge_into_loop_header_renames_phi () =
  let m =
    parse
      {|
module "t"
func @f() -> i64 {
entry:
  br loop
loop:
  %i.1 = phi i64 [entry 0:i64] [tail %i.2]
  br tail
tail:
  %i.2 = add i64 %i.1, 1:i64
  %c.3 = icmp slt i64 %i.2, 10:i64
  cbr %c.3, loop, exit
exit:
  ret %i.2
}
|}
  in
  ignore (P.Simplifycfg.run_func (Irmod.find_func_exn m "f"));
  no_verify_errors "after simplifycfg" m;
  Mi_analysis.Domcheck.assert_valid m;
  let f = Irmod.find_func_exn m "f" in
  (* the chain merged: the loop is now a self-loop whose phis name the
     merged block itself *)
  Alcotest.(check int) "blocks after merge" 3 (List.length f.blocks);
  let loop_blk =
    List.find (fun (b : Block.t) -> b.Block.label = "loop") f.blocks
  in
  List.iter
    (fun (p : Instr.phi) ->
      List.iter
        (fun (l, _) ->
          if l <> "entry" && l <> "loop" then
            Alcotest.failf "stale phi incoming label %s" l)
        p.Instr.incoming)
    loop_blk.Block.phis

(* ------------------------------------------------------------------ *)
(* Semantic preservation over the whole pipeline                        *)
(* ------------------------------------------------------------------ *)

let programs : (string * string) list =
  [
    ( "quicksortish",
      {|
long arr[64];
void sort(long lo, long hi) {
  if (lo >= hi) return;
  long pivot = arr[(lo + hi) / 2];
  long i = lo, j = hi;
  while (i <= j) {
    while (arr[i] < pivot) i++;
    while (arr[j] > pivot) j--;
    if (i <= j) {
      long t = arr[i]; arr[i] = arr[j]; arr[j] = t;
      i++; j--;
    }
  }
  sort(lo, j);
  sort(i, hi);
}
int main(void) {
  long i;
  for (i = 0; i < 64; i++) arr[i] = (i * 37 + 11) % 100;
  sort(0, 63);
  long ok = 1;
  for (i = 1; i < 64; i++) { if (arr[i-1] > arr[i]) ok = 0; }
  print_int(ok); print_int(arr[0]); print_int(arr[63]);
  return 0;
}
|} );
    ( "linkedlist",
      {|
struct n { long v; struct n *nx; };
int main(void) {
  struct n *head = NULL;
  long i;
  for (i = 0; i < 20; i++) {
    struct n *e = (struct n *)malloc(sizeof(struct n));
    e->v = i; e->nx = head; head = e;
  }
  long s = 0;
  struct n *p = head;
  while (p) { s += p->v; p = p->nx; }
  print_int(s);
  while (head) { struct n *nx = head->nx; free(head); head = nx; }
  return 0;
}
|} );
    ( "matrix",
      {|
double a[8][8]; double b[8][8]; double c[8][8];
int main(void) {
  long i, j, k;
  for (i = 0; i < 8; i++) {
    for (j = 0; j < 8; j++) {
      a[i][j] = (double)((i + j) % 5);
      b[i][j] = (double)((i * j) % 7);
      c[i][j] = 0.0;
    }
  }
  for (i = 0; i < 8; i++) {
    for (j = 0; j < 8; j++) {
      for (k = 0; k < 8; k++) c[i][j] += a[i][k] * b[k][j];
    }
  }
  double t = 0.0;
  for (i = 0; i < 8; i++) t += c[i][i];
  print_f64(t);
  return 0;
}
|} );
    ( "strings",
      {|
int main(void) {
  char buf[64];
  char tmp[8];
  buf[0] = 0;
  long i;
  for (i = 0; i < 5; i++) {
    tmp[0] = (char)(97 + i);
    tmp[1] = 0;
    strcat(buf, tmp);
  }
  print_str(buf);
  print_int(strlen(buf));
  return 0;
}
|} );
  ]

let run_at level instrument src =
  let m = Mi_minic.Lower.compile src in
  let instrument_fn =
    Option.map
      (fun cfg m -> ignore (Mi_core.Instrument.run cfg m))
      instrument
  in
  Mi_passes.Pipeline.run ~level ?instrument:instrument_fn m;
  Mi_analysis.Domcheck.assert_valid m;
  let st = Mi_vm.State.create () in
  Mi_vm.Builtins.install st;
  (match instrument with
  | Some cfg when cfg.Mi_core.Config.approach = "lowfat" ->
      ignore (Mi_lowfat.Lowfat_rt.install st)
  | Some _ -> ignore (Mi_softbound.Softbound_rt.install st)
  | None -> ());
  let img = Mi_vm.Interp.load st [ m ] in
  let r = Mi_vm.Interp.run st img in
  match r.Mi_vm.Interp.outcome with
  | Mi_vm.Interp.Exited _ -> r.Mi_vm.Interp.output
  | Mi_vm.Interp.Trapped msg -> Alcotest.fail ("trap: " ^ msg)
  | Mi_vm.Interp.Safety_violation { reason; _ } ->
      Alcotest.fail ("violation: " ^ reason)
  | Mi_vm.Interp.Exhausted budget ->
      Alcotest.fail (Printf.sprintf "fuel budget of %d exhausted" budget)

let test_pipeline_preserves name src () =
  let reference = run_at Mi_passes.Pipeline.O0 None src in
  List.iter
    (fun level ->
      Alcotest.(check string)
        (name ^ " optimized output")
        reference (run_at level None src))
    [ Mi_passes.Pipeline.O1; Mi_passes.Pipeline.O3 ];
  List.iter
    (fun cfg ->
      Alcotest.(check string)
        (name ^ " instrumented output")
        reference
        (run_at Mi_passes.Pipeline.O3 (Some cfg) src))
    [ Mi_core.Config.softbound; Mi_core.Config.lowfat ]

let () =
  Alcotest.run "passes"
    [
      ( "mem2reg",
        [
          Alcotest.test_case "promotes scalar" `Quick test_mem2reg_promotes_scalar;
          Alcotest.test_case "keeps escaped" `Quick test_mem2reg_keeps_escaped;
          Alcotest.test_case "checks pin allocas" `Quick
            test_mem2reg_keeps_checked_alloca;
        ] );
      ( "dce",
        [
          Alcotest.test_case "removes unused pure" `Quick test_dce_removes_unused_pure;
          Alcotest.test_case "removes unused metadata loads (§5.4)" `Quick
            test_dce_removes_unused_metadata_load;
          Alcotest.test_case "keeps checks" `Quick test_dce_keeps_checks;
        ] );
      ( "instcombine",
        [
          Alcotest.test_case "constant folding" `Quick test_instcombine_folds;
          Alcotest.test_case "gep zero fold (appendix B)" `Quick
            test_instcombine_gep_zero_fold;
        ] );
      ( "gvn",
        [
          Alcotest.test_case "cse incl. pure intrinsics" `Quick test_gvn_cse;
          Alcotest.test_case "commutative normalization" `Quick test_gvn_commutative;
          Alcotest.test_case "trie loads not merged across store" `Quick
            test_gvn_does_not_merge_trie_loads_across_store;
        ] );
      ( "licm",
        [
          Alcotest.test_case "hoists invariants" `Quick test_licm_hoists_without_checks;
          Alcotest.test_case "checks pin loads (§5.5)" `Quick test_licm_checks_pin_loads;
          Alcotest.test_case "globals and metadata speculate" `Quick
            test_licm_speculates_global_and_meta;
        ] );
      ( "inline",
        [
          Alcotest.test_case "inlines small callee" `Quick test_inline_simple;
          Alcotest.test_case "skips recursive" `Quick test_inline_skips_recursive;
        ] );
      ( "simplifycfg",
        [
          Alcotest.test_case "folds constant branch" `Quick
            test_simplifycfg_folds_constant_branch;
          Alcotest.test_case "merges chains" `Quick test_simplifycfg_merges_chain;
          Alcotest.test_case "inline into self-loop renames phi (fuzz seed 16)"
            `Quick test_inline_into_self_loop_renames_phi;
          Alcotest.test_case
            "merge into loop header renames phi (fuzz seed 18)" `Quick
            test_simplifycfg_merge_into_loop_header_renames_phi;
        ] );
      ( "semantic-preservation",
        List.map
          (fun (name, src) ->
            Alcotest.test_case name `Quick (test_pipeline_preserves name src))
          programs );
    ]
