(* Generator v2 unit tests: grammar coverage over a fixed seed block
   (every production of the full MiniC surface is exercised),
   determinism, in-language-ness (every generated unit lowers cleanly),
   and the out-of-bounds geometry of derived mutants. *)

module Gen = Mi_fuzz.Gen
module Oracle = Mi_fuzz.Oracle
module Bench = Mi_bench_kit.Bench
module Harness = Mi_bench_kit.Harness

(* the fixed CI/test seed block: feature rotation guarantees coverage
   over any block of at least [n_features] consecutive seeds; 1..20
   leaves slack *)
let block = List.init 20 (fun i -> i + 1)

let test_grammar_coverage () =
  let hit = Hashtbl.create 64 in
  List.iter
    (fun seed ->
      let p = Gen.generate ~seed () in
      List.iter (fun t -> Hashtbl.replace hit t ()) p.Gen.p_productions)
    block;
  let missing =
    List.filter (fun t -> not (Hashtbl.mem hit t)) Gen.all_productions
  in
  Alcotest.(check (list string)) "all productions exercised" [] missing;
  (* and nothing undeclared sneaks in *)
  Hashtbl.iter
    (fun t () ->
      if not (List.mem t Gen.all_productions) then
        Alcotest.failf "undeclared production tag %S" t)
    hit

let test_deterministic () =
  List.iter
    (fun seed ->
      let a = Gen.generate ~seed () and b = Gen.generate ~seed () in
      Alcotest.(check int)
        "same unit count"
        (List.length a.Gen.p_sources)
        (List.length b.Gen.p_sources);
      List.iter2
        (fun (x : Bench.source) (y : Bench.source) ->
          Alcotest.(check string) "unit name" x.Bench.src_name y.Bench.src_name;
          Alcotest.(check string) "unit code" x.Bench.code y.Bench.code)
        a.Gen.p_sources b.Gen.p_sources)
    [ 1; 7; 16; 18; 100003 ]

(* every generated unit must stay inside the MiniC surface the lowerer
   accepts.  Seed 16 is the pinned regression: its ternary drew arms of
   different element types, which the lowerer rejects (it cannot insert
   conversions once the arm blocks are closed) — the generator now pins
   both arms to [long]. *)
let test_all_units_lower () =
  List.iter
    (fun seed ->
      let p = Gen.generate ~seed () in
      List.iter
        (fun (s : Bench.source) ->
          match Mi_minic.Lower.compile ~name:s.Bench.src_name s.Bench.code with
          | (_ : Mi_mir.Irmod.t) -> ()
          | exception Mi_minic.Lower.Compile_error msg ->
              Alcotest.failf "seed %d unit %s: %s" seed s.Bench.src_name msg)
        p.Gen.p_sources)
    block

(* coverage-driven boosting: forcing a feature flips it on without
   perturbing the rest of the draw (the rng consumes the same stream),
   and an empty boost list is the identity.  Features 2 (nested) and 9
   (struct copy) are gated on feature 1 (structs) and are skipped when
   picking a candidate to force. *)
let test_boost_forces_feature () =
  let forced = ref 0 in
  List.iter
    (fun seed ->
      let plain = Gen.generate ~seed () in
      Alcotest.(check bool)
        "empty boost is the identity" true
        (Gen.generate ~boost:[] ~seed () = plain);
      let candidate =
        List.find_opt
          (fun k -> k <> 2 && k <> 9 && not (List.mem k plain.Gen.p_features))
          (List.init 10 Fun.id)
      in
      match candidate with
      | None -> ()
      | Some k ->
          incr forced;
          let boosted = Gen.generate ~boost:[ k ] ~seed () in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: boosted feature %d enabled" seed k)
            true
            (List.mem k boosted.Gen.p_features);
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: boosted generate deterministic" seed)
            true
            (Gen.generate ~boost:[ k ] ~seed () = boosted))
    block;
  Alcotest.(check bool) "at least one seed had a forceable feature" true
    (!forced > 0)

(* regression: every enablement source (rotation, random draw, boost,
   derived rebinding) records the feature index independently, so a
   feature that is both drawn and boosted used to appear twice in
   [p_features] — double-counting its vote in the campaign's feature
   scoring.  [generate] now deduplicates the published vector. *)
let test_features_deduped () =
  let no_dups l =
    let sorted = List.sort compare l in
    let rec chk = function
      | a :: (b :: _ as t) -> a <> b && chk t
      | _ -> true
    in
    chk sorted
  in
  List.iter
    (fun seed ->
      let p = Gen.generate ~seed () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: plain vector dup-free" seed)
        true
        (no_dups p.Gen.p_features);
      (* boosting a feature the draw already enabled must not re-add it *)
      List.iter
        (fun k ->
          let b = Gen.generate ~boost:[ k ] ~seed () in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: boost of drawn feature %d dup-free" seed
               k)
            true
            (no_dups b.Gen.p_features);
          Alcotest.(check int)
            (Printf.sprintf "seed %d: feature %d recorded once" seed k)
            1
            (List.length (List.filter (( = ) k) b.Gen.p_features)))
        p.Gen.p_features)
    block

(* {1 Structural evolution: splice and grow}

   Spliced and grown offspring must stay well-typed MiniC — they parse,
   lower cleanly, and are a pure function of (parents, mseed). *)

let lowers_cleanly ctx (sources : Bench.source list) =
  List.iter
    (fun (s : Bench.source) ->
      match Mi_minic.Lower.compile ~name:s.Bench.src_name s.Bench.code with
      | (_ : Mi_mir.Irmod.t) -> ()
      | exception Mi_minic.Lower.Compile_error msg ->
          Alcotest.failf "%s: unit %s does not lower: %s" ctx
            s.Bench.src_name msg)
    sources

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec find i =
    i + nl <= hl && (String.sub hay i nl = needle || find (i + 1))
  in
  find 0

let main_code (sources : Bench.source list) =
  match
    List.find_opt (fun (s : Bench.source) -> s.Bench.src_name = "main") sources
  with
  | Some s -> s.Bench.code
  | None -> Alcotest.fail "offspring lost its main unit"

let test_splice_well_typed () =
  let spliced = ref 0 in
  List.iter
    (fun seed ->
      let acceptor = (Gen.generate ~seed ()).Gen.p_sources in
      let donor = (Gen.generate ~seed:(seed + 1) ()).Gen.p_sources in
      let mseed = (seed * 100) + 1 in
      match Gen.splice ~acceptor ~donor ~mseed with
      | None -> ()
      | Some offspring ->
          incr spliced;
          let ctx = Printf.sprintf "splice seed %d" seed in
          lowers_cleanly ctx offspring;
          (* grafted donor material is renamed with the [_x<mseed>]
             suffix so it cannot collide with acceptor names (fresh
             generator names never contain an underscore) *)
          let suffix = Printf.sprintf "_x%d" mseed in
          let m = main_code offspring in
          Alcotest.(check bool)
            (ctx ^ ": renamed graft present") true (contains m suffix);
          (* the driver call is wrapped in a counting loop so the splice
             perturbs main's block geometry, not just its straight-line
             length *)
          Alcotest.(check bool)
            (ctx ^ ": driver loop counter present") true
            (contains m ("spc" ^ suffix));
          (* deterministic: same parents + mseed, same bytes *)
          let again =
            match Gen.splice ~acceptor ~donor ~mseed with
            | Some o -> o
            | None -> Alcotest.fail (ctx ^ ": second splice returned None")
          in
          List.iter2
            (fun (a : Bench.source) (b : Bench.source) ->
              Alcotest.(check string) (ctx ^ " deterministic") a.Bench.code
                b.Bench.code)
            offspring again)
    block;
  Alcotest.(check bool) "at least half the block spliced" true
    (!spliced >= List.length block / 2)

let test_grow_well_typed () =
  let grown = ref 0 in
  List.iter
    (fun seed ->
      let sources = (Gen.generate ~seed ()).Gen.p_sources in
      let mseed = (seed * 100) + 7 in
      match Gen.grow ~sources ~mseed with
      | None -> ()
      | Some offspring ->
          incr grown;
          let ctx = Printf.sprintf "grow seed %d" seed in
          lowers_cleanly ctx offspring;
          let before = main_code sources and after = main_code offspring in
          Alcotest.(check bool)
            (ctx ^ ": main grew") true
            (String.length after > String.length before);
          let again =
            match Gen.grow ~sources ~mseed with
            | Some o -> o
            | None -> Alcotest.fail (ctx ^ ": second grow returned None")
          in
          Alcotest.(check string) (ctx ^ " deterministic") after
            (main_code again))
    block;
  Alcotest.(check bool) "every block seed grew" true
    (!grown = List.length block)

(* an evolved offspring — splice composed with grow, exactly the soak
   driver's breeding step — still satisfies the whole safe oracle
   matrix: reference + all 16 variants (including both checkopt
   configs) agree and report nothing *)
let test_offspring_full_matrix () =
  let acceptor = (Gen.generate ~seed:11 ()).Gen.p_sources in
  let donor = (Gen.generate ~seed:12 ()).Gen.p_sources in
  let spliced =
    match Gen.splice ~acceptor ~donor ~mseed:1101 with
    | Some s -> s
    | None -> Alcotest.fail "seed pair 11/12 did not splice"
  in
  let offspring =
    match Gen.grow ~sources:spliced ~mseed:1101 with
    | Some g -> g
    | None -> spliced
  in
  let jobs =
    Oracle.safe_jobs_of (Oracle.bench_of_sources ~name:"offspring" offspring)
  in
  Alcotest.(check int)
    "offspring faces the whole matrix"
    (1 + List.length Oracle.variants)
    (List.length jobs);
  let h = Harness.create ~jobs:2 () in
  let results = Harness.run_jobs h jobs in
  match Oracle.judge_safe_results ~seed:1101 results with
  | [] -> ()
  | f :: _ -> Alcotest.failf "offspring finding: %s" (Oracle.finding_to_string f)

(* the injected index lies past BOTH guarantees: the Low-Fat size class
   (allocation-size rounding) and SoftBound's exact object bounds *)
let test_oob_index_geometry () =
  List.iter
    (fun seed ->
      let p = Gen.generate ~seed () in
      List.iter
        (fun (s : Gen.site) ->
          let esz = Gen.elem_size s.Gen.si_elem in
          let size = s.Gen.si_extent * esz in
          let cls = max 16 (Mi_support.Util.round_up_pow2 (size + 1)) in
          let idx = Gen.oob_index s in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d %s: past exact bounds" seed
               s.Gen.si_array)
            true
            (idx * esz >= size);
          Alcotest.(check bool)
            (Printf.sprintf "seed %d %s: past the size class" seed
               s.Gen.si_array)
            true
            ((idx * esz) + esz > cls))
        p.Gen.p_sites)
    block

let test_mutate_shape () =
  List.iter
    (fun seed ->
      let p = Gen.generate ~seed () in
      let m = Gen.mutate p ~mseed:seed in
      let m' = Gen.mutate p ~mseed:seed in
      Alcotest.(check string)
        "mutant deterministic" (Gen.mutant_name m) (Gen.mutant_name m');
      (* exactly the main unit changed, by a single spliced statement *)
      List.iter2
        (fun (a : Bench.source) (b : Bench.source) ->
          if a.Bench.src_name = "main" then begin
            Alcotest.(check bool) "main mutated" true (a.Bench.code <> b.Bench.code);
            let extra =
              String.length b.Bench.code - String.length a.Bench.code
            in
            Alcotest.(check bool) "one statement added" true (extra > 0)
          end
          else
            Alcotest.(check string) "other units untouched" a.Bench.code
              b.Bench.code)
        p.Gen.p_sources m.Gen.m_sources;
      (* the whitelist accompanies exactly the wide-bounds sites *)
      Alcotest.(check bool)
        "whitelist iff wide site"
        m.Gen.m_site.Gen.si_wide_sb
        (m.Gen.m_sb_whitelist <> None))
    block

let () =
  Alcotest.run "fuzz-gen"
    [
      ( "generator",
        [
          Alcotest.test_case "grammar coverage over seeds 1..20" `Quick
            test_grammar_coverage;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "every unit lowers (pins seed 16)" `Quick
            test_all_units_lower;
          Alcotest.test_case "boost forces features deterministically" `Quick
            test_boost_forces_feature;
          Alcotest.test_case "published feature vector is deduplicated" `Quick
            test_features_deduped;
        ] );
      ( "evolution",
        [
          Alcotest.test_case "spliced offspring are well-typed MiniC" `Quick
            test_splice_well_typed;
          Alcotest.test_case "grown offspring are well-typed MiniC" `Quick
            test_grow_well_typed;
          Alcotest.test_case "offspring satisfy the full safe matrix" `Slow
            test_offspring_full_matrix;
        ] );
      ( "mutants",
        [
          Alcotest.test_case "oob index past both guarantees" `Quick
            test_oob_index_geometry;
          Alcotest.test_case "mutate splices one statement" `Quick
            test_mutate_shape;
        ] );
    ]
