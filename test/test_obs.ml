(* The observability layer: span balance and Chrome-trace export,
   deterministic metrics serialization, JSON round-trips, and per-site
   profile attribution on a known program. *)

open Mi_obs
module Harness = Mi_bench_kit.Harness
module Bench = Mi_bench_kit.Bench
module Config = Mi_core.Config

(* ------------------------------------------------------------------ *)
(* Tracer                                                              *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let tr = Trace.create () in
  Alcotest.(check bool) "fresh tracer balanced" true (Trace.balanced tr);
  Trace.begin_span tr "outer";
  Trace.begin_span tr ~cat:"x" "inner";
  Alcotest.(check int) "two open spans" 2 (Trace.depth tr);
  Trace.end_span tr "inner";
  Trace.end_span tr "outer";
  Alcotest.(check bool) "balanced after close" true (Trace.balanced tr);
  Alcotest.(check int) "two complete events" 2 (Trace.event_count tr)

let test_span_mismatch_raises () =
  let tr = Trace.create () in
  Trace.begin_span tr "a";
  Alcotest.check_raises "wrong name"
    (Invalid_argument "end_span \"b\": innermost open span is \"a\"")
    (fun () -> Trace.end_span tr "b");
  Trace.end_span tr "a";
  Alcotest.check_raises "empty stack"
    (Invalid_argument "end_span \"a\": no open span") (fun () ->
      Trace.end_span tr "a")

let test_with_span_exception_safe () =
  let tr = Trace.create () in
  (try
     Trace.with_span tr "failing" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "span closed despite exception" true
    (Trace.balanced tr);
  Alcotest.(check int) "event recorded" 1 (Trace.event_count tr)

(* A pipeline run must leave a well-formed Chrome trace with at least
   one span per pass that ran. *)
let test_trace_json_wellformed () =
  let obs = Obs.create () in
  let setup = Harness.with_config Config.softbound Harness.baseline in
  let _ =
    Harness.run_sources ~obs setup
      [ Bench.src "t" "int main(void) { return 0; }" ]
  in
  Alcotest.(check bool) "tracer balanced after run" true
    (Trace.balanced obs.Obs.trace);
  let doc = Json.of_string (Trace.to_string obs.Obs.trace) in
  let events =
    match Option.bind (Json.member "traceEvents" doc) Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  let names =
    List.filter_map
      (fun e ->
        match Json.member "name" e with Some (Json.Str s) -> Some s | _ -> None)
      events
  in
  List.iter
    (fun pass ->
      Alcotest.(check bool) ("span for pass " ^ pass) true
        (List.mem pass names))
    [ "simplifycfg"; "mem2reg"; "instcombine"; "dce" ];
  Alcotest.(check bool) "instrument span present" true
    (List.exists
       (fun n -> String.length n >= 11 && String.sub n 0 11 = "instrument:")
       names)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_basics () =
  let m = Metrics.create () in
  Metrics.incr m "b";
  Metrics.incr ~by:2 m "a";
  Metrics.incr m "b";
  Metrics.set_gauge m "g" 7;
  Metrics.observe m "h" 3;
  Metrics.observe m "h" 100;
  Alcotest.(check (list (pair string int)))
    "counters sorted by name"
    [ ("a", 2); ("b", 2) ]
    (Metrics.counters_alist m);
  Alcotest.(check int) "gauge" 7 (Metrics.gauge m "g");
  match Metrics.histogram m "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      Alcotest.(check int) "histogram count" 2 h.Metrics.count;
      Alcotest.(check int) "histogram sum" 103 h.Metrics.sum

(* the fault-tolerance counters (harness.job_failed, harness.job_retried,
   icache.corrupt, fault.injected) are plain counters: they add across
   Metrics.merge, so per-worker contexts aggregate correctly and the
   merged totals stay -j independent *)
let test_fault_counters_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  let names =
    [
      "harness.job_failed"; "harness.job_retried"; "icache.corrupt";
      "fault.injected";
    ]
  in
  List.iter (fun n -> Metrics.incr ~by:2 a n) names;
  List.iter (fun n -> Metrics.incr ~by:3 b n) names;
  Metrics.incr b "fault.injected";
  Metrics.merge a b;
  List.iter
    (fun n ->
      let expect = if n = "fault.injected" then 6 else 5 in
      Alcotest.(check int) n expect (Metrics.counter a n))
    names;
  (* a context that never saw a fault contributes nothing *)
  let c = Metrics.create () in
  Metrics.merge a c;
  Alcotest.(check int) "merge with empty is identity" 5
    (Metrics.counter a "harness.job_failed")

(* the first registration of a name fixes its kind; a second use under a
   different kind is a programming error the registry rejects instead of
   silently keeping two metrics under one name *)
let test_metrics_kind_collision () =
  let m = Metrics.create () in
  Metrics.incr m "x";
  Alcotest.check_raises "counter reused as gauge"
    (Invalid_argument
       "Metrics: \"x\" is already registered as a counter (wanted gauge)")
    (fun () -> Metrics.set_gauge m "x" 1);
  Alcotest.check_raises "counter reused as histogram"
    (Invalid_argument
       "Metrics: \"x\" is already registered as a counter (wanted histogram)")
    (fun () -> Metrics.observe m "x" 1);
  Metrics.set_gauge m "g" 1;
  Alcotest.check_raises "gauge reused as counter"
    (Invalid_argument
       "Metrics: \"g\" is already registered as a gauge (wanted counter)")
    (fun () -> Metrics.incr m "g");
  Metrics.observe m "h" 2;
  Alcotest.check_raises "histogram reused as gauge"
    (Invalid_argument
       "Metrics: \"h\" is already registered as a histogram (wanted gauge)")
    (fun () -> Metrics.set_gauge m "h" 3);
  (* same-kind re-use stays legal and cheap *)
  Metrics.incr m "x";
  Metrics.set_gauge m "g" 9;
  Metrics.observe m "h" 4;
  Alcotest.(check int) "counter still counts" 2 (Metrics.counter m "x");
  Alcotest.(check int) "gauge still sets" 9 (Metrics.gauge m "g")

let test_labeled_canonical () =
  Alcotest.(check string)
    "label keys sorted" "c{a=\"1\",b=\"2\"}"
    (Metrics.labeled "c" [ ("b", "2"); ("a", "1") ])

(* Two identical benchmark runs must serialize to byte-identical
   metrics — the determinism contract of the ISSUE. *)
let bench_for_determinism () =
  Bench.mk "obs_det" ~suite:Bench.CPU2006 ~descr:"determinism probe"
    [
      Bench.src "det"
        {|
long *a;
int main(void) {
  long i;
  long s = 0;
  a = (long *)malloc(32 * sizeof(long));
  for (i = 0; i < 32; i++) a[i] = i * 3;
  for (i = 0; i < 32; i++) s += a[i];
  print_int(s);
  print_newline();
  return 0;
}
|};
    ]

let run_once setup =
  let obs = Obs.create () in
  let r = Harness.run_benchmark ~obs setup (bench_for_determinism ()) in
  (r, obs)

let test_metrics_deterministic () =
  let setup = Harness.with_config Config.softbound Harness.baseline in
  let _, obs1 = run_once setup in
  let _, obs2 = run_once setup in
  let s1 = Metrics.to_string obs1.Obs.metrics in
  let s2 = Metrics.to_string obs2.Obs.metrics in
  Alcotest.(check string) "byte-identical metrics" s1 s2;
  (* and the serialized form itself is valid JSON *)
  ignore (Json.of_string s1)

let test_state_counters_deterministic () =
  let _, obs = run_once (Harness.with_config Config.lowfat Harness.baseline) in
  let alist = Metrics.counters_alist obs.Obs.metrics in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) alist in
  Alcotest.(check bool) "counters_alist sorted" true (alist = sorted)

(* ------------------------------------------------------------------ *)
(* Per-site profile                                                    *)
(* ------------------------------------------------------------------ *)

(* Every executed check carries its site id, so the per-site hit sum
   must equal the runtime's own check counters exactly. *)
let test_site_attribution () =
  let r, _ =
    run_once (Harness.with_config Config.softbound Harness.baseline)
  in
  let hits = Site.total_hits r.Harness.profile in
  Alcotest.(check bool) "checks executed" true
    (Harness.counter r "sb.checks" > 0);
  Alcotest.(check int) "site hits equal sb.checks"
    (Harness.counter r "sb.checks")
    hits;
  List.iter
    (fun (s : Site.snapshot) ->
      Alcotest.(check string) "approach recorded" "softbound" s.Site.sn_approach)
    r.Harness.profile

let test_site_attribution_lowfat () =
  let r, _ = run_once (Harness.with_config Config.lowfat Harness.baseline) in
  let hits = Site.total_hits r.Harness.profile in
  let expected =
    Harness.counter r "lf.checks" + Harness.counter r "lf.inv_checks"
  in
  Alcotest.(check int) "site hits equal lf.checks + lf.inv_checks" expected
    hits

let test_site_top_ordering () =
  let r, _ =
    run_once (Harness.with_config Config.softbound Harness.baseline)
  in
  let top = Site.top ~n:5 r.Harness.profile in
  let cycles = List.map (fun s -> s.Site.sn_cycles) top in
  Alcotest.(check bool) "top sorted by cycles desc" true
    (List.sort (fun a b -> compare b a) cycles = cycles);
  let rendered = Site.render ~n:5 r.Harness.profile in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "render mentions hottest function" true
    (contains rendered "main")

(* ------------------------------------------------------------------ *)
(* Coverage maps                                                       *)
(* ------------------------------------------------------------------ *)

let diamond = [| [| 1; 2 |]; [| 3 |]; [| 3 |]; [||] |]

let test_coverage_counting () =
  let t = Coverage.create () in
  let f = Coverage.register_fn t ~name:"f" ~succ:diamond in
  Coverage.enter f 0;
  Coverage.transition f ~src:0 ~dst:1;
  Coverage.transition f ~src:1 ~dst:3;
  Coverage.enter f 0;
  Coverage.transition f ~src:0 ~dst:1;
  Coverage.transition f ~src:1 ~dst:3;
  match Coverage.snapshot t with
  | [ s ] ->
      Alcotest.(check string) "function name" "f" s.Coverage.cv_func;
      Alcotest.(check bool) "block hits" true
        (s.Coverage.cv_block_hits = [| 2; 2; 0; 2 |]);
      (* flat edge layout: 0->1, 0->2, 1->3, 2->3 *)
      Alcotest.(check bool) "edge hits" true
        (s.Coverage.cv_edge_hits = [| 2; 0; 2; 0 |]);
      let tt = Coverage.totals t in
      Alcotest.(check int) "blocks total" 4 tt.Coverage.tt_blocks;
      Alcotest.(check int) "blocks hit" 3 tt.Coverage.tt_blocks_hit;
      Alcotest.(check int) "edges total" 4 tt.Coverage.tt_edges;
      Alcotest.(check int) "edges hit" 2 tt.Coverage.tt_edges_hit;
      Alcotest.(check int) "functions hit" 1 tt.Coverage.tt_functions_hit
  | l -> Alcotest.failf "expected one function, got %d" (List.length l)

(* re-registering the same (name, geometry) accumulates into the same
   counters; a different geometry under the same name gets its own entry *)
let test_coverage_keying () =
  let t = Coverage.create () in
  let f1 = Coverage.register_fn t ~name:"f" ~succ:diamond in
  Coverage.enter f1 0;
  let f2 = Coverage.register_fn t ~name:"f" ~succ:diamond in
  Coverage.enter f2 0;
  let g = Coverage.register_fn t ~name:"f" ~succ:[| [||] |] in
  Coverage.enter g 0;
  match Coverage.snapshot t with
  | [ a; b ] ->
      (* sorted by (name, geometry): the 1-block variant sorts first *)
      Alcotest.(check bool) "small geometry" true (a.Coverage.cv_block_hits = [| 1 |]);
      Alcotest.(check int) "accumulated entries" 2 b.Coverage.cv_block_hits.(0)
  | l -> Alcotest.failf "expected two entries, got %d" (List.length l)

(* an edge outside the registered geometry is ignored, never counted *)
let test_coverage_unknown_edge () =
  let t = Coverage.create () in
  let f = Coverage.register_fn t ~name:"f" ~succ:diamond in
  Coverage.enter f 0;
  Coverage.transition f ~src:3 ~dst:0;
  match Coverage.snapshot t with
  | [ s ] ->
      Alcotest.(check bool) "no edge recorded" true
        (Array.for_all (fun h -> h = 0) s.Coverage.cv_edge_hits)
  | _ -> Alcotest.fail "expected one function"

(* snapshots survive the JSON round trip exactly *)
let test_coverage_json_roundtrip () =
  let t = Coverage.create () in
  let f = Coverage.register_fn t ~name:"f" ~succ:diamond in
  Coverage.enter f 0;
  Coverage.transition f ~src:0 ~dst:2;
  List.iter
    (fun (s : Coverage.snapshot) ->
      let s' = Coverage.snapshot_of_json (Coverage.snapshot_to_json s) in
      Alcotest.(check bool) "snapshot round-trips" true (s = s'))
    (Coverage.snapshot t)

(* ------------------------------------------------------------------ *)
(* Trace metadata (worker labeling in about:tracing)                   *)
(* ------------------------------------------------------------------ *)

let test_trace_thread_metadata () =
  let tr = Trace.create () in
  Trace.with_span tr "on-main" (fun () -> ());
  Trace.set_thread tr ~tid:2 ~name:"worker-1";
  Trace.with_span tr "on-worker" (fun () -> ());
  let doc = Json.of_string (Trace.to_string tr) in
  let events =
    match Option.bind (Json.member "traceEvents" doc) Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  let field e k = Json.member k e in
  let meta name =
    List.filter
      (fun e -> field e "ph" = Some (Json.Str "M")
                && field e "name" = Some (Json.Str name))
      events
  in
  Alcotest.(check int) "one process_name event" 1
    (List.length (meta "process_name"));
  let thread_names =
    List.filter_map
      (fun e ->
        match (field e "tid", Option.bind (field e "args") (Json.member "name")) with
        | Some (Json.Int tid), Some (Json.Str n) -> Some (tid, n)
        | _ -> None)
      (meta "thread_name")
  in
  Alcotest.(check bool) "main thread labeled" true
    (List.mem (1, "main") thread_names);
  Alcotest.(check bool) "worker thread labeled" true
    (List.mem (2, "worker-1") thread_names);
  (* the X events carry the tid current at span end *)
  let tid_of name =
    List.find_map
      (fun e ->
        if field e "ph" = Some (Json.Str "X")
           && field e "name" = Some (Json.Str name)
        then field e "tid"
        else None)
      events
  in
  Alcotest.(check bool) "main span on tid 1" true
    (tid_of "on-main" = Some (Json.Int 1));
  Alcotest.(check bool) "worker span on tid 2" true
    (tid_of "on-worker" = Some (Json.Int 2))

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 42);
        ("b", Json.List [ Json.Null; Json.Bool true; Json.Float 1.5 ]);
        ("c", Json.Str "quote \" slash \\ newline \n tab \t");
        ("d", Json.Obj []);
        ("neg", Json.Int (-7));
      ]
  in
  Alcotest.(check bool) "round-trip" true (Json.of_string (Json.to_string v) = v)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | _ -> Alcotest.failf "accepted malformed %S" s
      | exception Json.Parse_error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":1} trailing"; "\"unterminated"; "01" ]

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "mismatch raises" `Quick test_span_mismatch_raises;
          Alcotest.test_case "with_span exception-safe" `Quick
            test_with_span_exception_safe;
          Alcotest.test_case "trace JSON well-formed" `Quick
            test_trace_json_wellformed;
          Alcotest.test_case "thread metadata events" `Quick
            test_trace_thread_metadata;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "basics" `Quick test_metrics_basics;
          Alcotest.test_case "fault counters merge" `Quick
            test_fault_counters_merge;
          Alcotest.test_case "kind collision rejected" `Quick
            test_metrics_kind_collision;
          Alcotest.test_case "labeled canonical" `Quick test_labeled_canonical;
          Alcotest.test_case "deterministic serialization" `Quick
            test_metrics_deterministic;
          Alcotest.test_case "counters_alist sorted" `Quick
            test_state_counters_deterministic;
        ] );
      ( "sites",
        [
          Alcotest.test_case "softbound attribution" `Quick
            test_site_attribution;
          Alcotest.test_case "lowfat attribution" `Quick
            test_site_attribution_lowfat;
          Alcotest.test_case "top ordering + render" `Quick
            test_site_top_ordering;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "block/edge counting" `Quick
            test_coverage_counting;
          Alcotest.test_case "keyed by (name, geometry)" `Quick
            test_coverage_keying;
          Alcotest.test_case "unknown edge ignored" `Quick
            test_coverage_unknown_edge;
          Alcotest.test_case "snapshot JSON round-trip" `Quick
            test_coverage_json_roundtrip;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
    ]
