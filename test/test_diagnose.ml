(* Tests for the §4.7 static hazard diagnostics and the §5.1.1
   excluded-benchmark corpus. *)

module D = Mi_core.Diagnose
module U = Mi_bench_kit.Usability
module Config = Mi_core.Config

let diagnose_src ?mode src =
  let m = Mi_minic.Lower.compile ?mode src in
  D.analyze_module m

let kinds ds = List.map (fun d -> D.kind_name d.D.d_kind) ds

let test_inttoptr_detected () =
  let ds =
    diagnose_src
      {|
int main(void) {
  long *p = (long *)malloc(8);
  long a = (long)p;
  long *q = (long *)a;
  *q = 1;
  return 0;
}
|}
  in
  Alcotest.(check bool) "inttoptr flagged" true
    (List.mem "inttoptr-cast" (kinds ds))

let test_ptr_stored_as_int_detected () =
  (* the Figure 7 pattern, produced by the i64 lowering mode *)
  let ds =
    diagnose_src ~mode:{ Mi_minic.Lower.ptr_mem_as_i64 = true }
      {|
void swap(double **one, double **two) {
  double *tmp = *one;
  *one = *two;
  *two = tmp;
}
int main(void) {
  double *a = (double *)malloc(8);
  double *b = (double *)malloc(8);
  swap(&a, &b);
  return 0;
}
|}
  in
  Alcotest.(check bool) "pointer-as-int store flagged" true
    (List.mem "ptr-stored-as-int" (kinds ds))

let test_size_zero_detected () =
  let ds =
    diagnose_src
      {|
extern int table[];
int main(void) { return table[0]; }
|}
  in
  Alcotest.(check bool) "size-zero extern flagged" true
    (List.mem "size-zero-extern" (kinds ds))

let test_oversized_alloc_detected () =
  let ds =
    diagnose_src
      {|
int main(void) {
  char *p = (char *)malloc(1610612736);
  p[0] = 1;
  return (int)p[0];
}
|}
  in
  Alcotest.(check bool) "oversized allocation flagged" true
    (List.mem "oversized-alloc" (kinds ds))

let test_bytewise_copy_detected () =
  let ds =
    diagnose_src
      {|
struct holder { long tag; long *payload; };
int main(void) {
  struct holder a; struct holder b;
  a.tag = 1;
  char *src = (char *)&a;
  char *dst = (char *)&b;
  long i;
  for (i = 0; i < (long)sizeof(struct holder); i++) dst[i] = src[i];
  return (int)b.tag;
}
|}
  in
  Alcotest.(check bool) "byte-copy loop flagged" true
    (List.mem "bytewise-copy-loop" (kinds ds))

let test_clean_program_no_diagnostics () =
  let ds =
    diagnose_src
      {|
int main(void) {
  long *p = (long *)malloc(64);
  long i;
  for (i = 0; i < 8; i++) p[i] = i;
  print_int(p[7]);
  free(p);
  return 0;
}
|}
  in
  Alcotest.(check (list string)) "no hazards" [] (kinds ds)

(* the excluded benchmarks behave exactly as §5.1.1 states *)
let excluded_case (c : U.case) approach () =
  let got, _ = U.run_case c approach in
  let want = U.expected c approach in
  if got <> want then
    Alcotest.failf "%s under %s: expected %s, got %s" c.case_name
      (Config.approach_name approach)
      (U.verdict_to_string want) (U.verdict_to_string got)

let excluded_tests =
  List.concat_map
    (fun (c : U.case) ->
      List.map
        (fun a ->
          Alcotest.test_case
            (Printf.sprintf "%s / %s" c.case_name (Config.approach_name a))
            `Quick (excluded_case c a))
        (Config.known_approaches ()))
    Mi_bench_kit.Excluded.all

let () =
  Alcotest.run "diagnose"
    [
      ( "static-hazards",
        [
          Alcotest.test_case "inttoptr" `Quick test_inttoptr_detected;
          Alcotest.test_case "ptr stored as int" `Quick
            test_ptr_stored_as_int_detected;
          Alcotest.test_case "size-zero extern" `Quick test_size_zero_detected;
          Alcotest.test_case "oversized alloc" `Quick test_oversized_alloc_detected;
          Alcotest.test_case "byte-wise copy loop" `Quick
            test_bytewise_copy_detected;
          Alcotest.test_case "clean program" `Quick
            test_clean_program_no_diagnostics;
        ] );
      ("excluded-benchmarks (§5.1.1)", excluded_tests);
    ]
