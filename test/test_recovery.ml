(* Recovery and robustness guarantees of the harness session layer:
   failure classification under retries, -j determinism of keep-going
   failure manifests, quarantine-and-recompute-once for corrupted cache
   entries, the deterministic harness.backoff_ms accounting, and the
   monotonic clock the deadlines ride on. *)

module Fault = Mi_faultkit.Fault
module Harness = Mi_bench_kit.Harness
module Icache = Mi_bench_kit.Icache
module Bench = Mi_bench_kit.Bench
module Corpus = Mi_bench_kit.Safety_corpus
module Metrics = Mi_obs.Metrics
module Mclock = Mi_support.Mclock

let tiny_bench name value =
  Bench.mk ~suite:Bench.CPU2000 ~descr:"recovery test program" name
    [
      Bench.src "m"
        (Printf.sprintf
           "int main(void) { long a[4]; a[1] = %d; print_int(a[1]); return \
            0; }"
           value);
    ]

let good = tiny_bench "good" 7
let crashy = tiny_bench "crashy" 8
let hangy = tiny_bench "hangy" 9

(* a translation unit that does not compile: the worker's exception is
   an ordinary crash, not an injected or timed-out one *)
let broken =
  Bench.mk ~suite:Bench.CPU2000 ~descr:"does not compile" "broken"
    [ Bench.src "m" "int main(void) { this is not minic }" ]

let chaos =
  {
    Fault.none with
    Fault.jobs = [ Fault.Crash_job "crashy"; Fault.Hang_job ("hangy", 30.0) ];
  }

(* {1 Classification under retries} *)

let test_classification_under_retries () =
  let h =
    Harness.create ~jobs:2 ~faults:chaos ~job_timeout:0.05 ~retries:2
      ~retry_backoff_ms:5 ()
  in
  let setup = Corpus.setup "softbound" in
  let results =
    Harness.run_jobs h
      [ (setup, good); (setup, crashy); (setup, hangy); (setup, broken) ]
  in
  (match results with
  | [ Ok _; Error _; Error _; Error _ ] -> ()
  | _ -> Alcotest.fail "expected [Ok; Error; Error; Error]");
  let fs = Harness.failures h in
  Alcotest.(check int) "three failures" 3 (List.length fs);
  List.iter
    (fun (f : Harness.job_failure) ->
      Alcotest.(check int)
        ("retries consumed by " ^ f.Harness.jf_bench)
        2 f.Harness.jf_retries;
      match (f.Harness.jf_bench, f.Harness.jf_kind) with
      | "crashy", Harness.Injected -> ()
      | "hangy", Harness.Timeout -> ()
      | "broken", Harness.Crash -> ()
      | b, _ -> Alcotest.failf "unexpected failure kind for %s" b)
    fs

(* {1 keep-going manifests are -j independent} *)

let digest results =
  String.concat "\n"
    (List.map
       (function
         | Ok (r : Harness.run) ->
             Printf.sprintf "ok output=%S cycles=%d" r.Harness.output
               r.Harness.cycles
         | Error (e : Harness.error) ->
             Printf.sprintf "error %s: %s" e.Harness.bench e.Harness.reason)
       results)

let run_matrix jobs =
  let h =
    Harness.create ~jobs ~faults:chaos ~job_timeout:0.05 ~retries:1
      ~retry_backoff_ms:5 ()
  in
  let sb = Corpus.setup "softbound" in
  let lf = Corpus.setup "lowfat" in
  let results =
    Harness.run_jobs h
      [
        (sb, good);
        (sb, crashy);
        (lf, crashy);
        (sb, hangy);
        (lf, hangy);
        (lf, broken);
        (lf, good);
      ]
  in
  (h, results)

let test_manifest_j_determinism () =
  let h1, r1 = run_matrix 1 in
  let h8, r8 = run_matrix 8 in
  Alcotest.(check int) "matrix completed" 7 (List.length r8);
  Alcotest.(check string) "results identical -j1 vs -j8" (digest r1) (digest r8);
  Alcotest.(check string)
    "manifest identical -j1 vs -j8"
    (Harness.failure_manifest h1)
    (Harness.failure_manifest h8);
  Alcotest.(check int)
    "five failures with concurrent chaos" 5
    (List.length (Harness.failures h8))

(* {1 Corrupted cache entries: quarantined, recomputed exactly once} *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mi-recovery-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    (fun () -> f dir)
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())

let test_corrupt_entry_recomputed_once () =
  with_temp_dir @@ fun dir ->
  let setup = Corpus.setup "softbound" in
  (* populate the on-disk cache *)
  let h0 = Harness.create ~jobs:1 ~cache_dir:dir () in
  (match Harness.run h0 setup good with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "populate failed: %s" e.Harness.reason);
  Alcotest.(check bool)
    "entry persisted" true
    (Array.exists
       (fun f -> Filename.check_suffix f ".micache")
       (Sys.readdir dir));
  (* corrupt every persisted entry at session creation, then run the
     same job twice *)
  let faults = { Fault.none with Fault.cache = Some Fault.Bitflip } in
  let h = Harness.create ~jobs:1 ~cache_dir:dir ~faults () in
  let r1 = Harness.run h setup good in
  let r2 = Harness.run h setup good in
  (match (r1, r2) with
  | Ok a, Ok b ->
      Alcotest.(check string)
        "recomputed result matches" a.Harness.output b.Harness.output
  | _ -> Alcotest.fail "runs over a corrupted cache must still succeed");
  let cs = Harness.cache_stats h in
  Alcotest.(check int) "corrupt entry detected once" 1 cs.Harness.corrupt;
  Alcotest.(check int) "recomputed exactly once (one miss)" 1 cs.Harness.misses;
  Alcotest.(check int) "second run hits the recomputed entry" 1 cs.Harness.hits;
  Alcotest.(check bool)
    "quarantine file left for the postmortem" true
    (Array.exists
       (fun f -> Filename.check_suffix f ".corrupt")
       (Sys.readdir dir))

(* {1 Deterministic backoff accounting} *)

let backoff_metric ~retries ~cap =
  let h =
    Harness.create ~jobs:1 ~faults:chaos ~job_timeout:0.05 ~retries
      ~retry_backoff_ms:cap ()
  in
  let setup = Corpus.setup "softbound" in
  ignore (Harness.run h setup crashy : (Harness.run, Harness.error) result);
  Metrics.counter (Harness.obs h).Mi_obs.Obs.metrics "harness.backoff_ms"

let test_backoff_capped_and_accounted () =
  (* schedule: 10, 20, 40, ... doubling, each sleep clamped to the cap;
     the metric reflects the schedule, not a measured duration *)
  Alcotest.(check int) "retries=1" 10 (backoff_metric ~retries:1 ~cap:250);
  Alcotest.(check int) "retries=3" 70 (backoff_metric ~retries:3 ~cap:250);
  Alcotest.(check int)
    "retries=3, cap=15" (10 + 15 + 15)
    (backoff_metric ~retries:3 ~cap:15);
  Alcotest.(check int) "retries=0 sleeps nothing" 0
    (backoff_metric ~retries:0 ~cap:250)

(* {1 Monotonic clock} *)

let test_mclock_monotonic () =
  let prev = ref (Mclock.now ()) in
  for _ = 1 to 10_000 do
    let t = Mclock.now () in
    if t < !prev then Alcotest.failf "clock went backwards: %f < %f" t !prev;
    prev := t
  done

let test_mclock_deadline () =
  let d = Mclock.deadline 3600. in
  Alcotest.(check bool) "far deadline not expired" false (Mclock.expired d);
  let past = Mclock.deadline 0. in
  Mclock.sleep 0.01;
  Alcotest.(check bool) "past deadline expired" true (Mclock.expired past)

let () =
  Alcotest.run "recovery"
    [
      ( "classification",
        [
          Alcotest.test_case "crash/timeout/injected under retries" `Slow
            test_classification_under_retries;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "keep-going manifest -j1 vs -j8" `Slow
            test_manifest_j_determinism;
        ] );
      ( "cache",
        [
          Alcotest.test_case "corrupt entry recomputed once" `Slow
            test_corrupt_entry_recomputed_once;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "capped, deterministic, accounted" `Slow
            test_backoff_capped_and_accounted;
        ] );
      ( "mclock",
        [
          Alcotest.test_case "monotonic" `Quick test_mclock_monotonic;
          Alcotest.test_case "deadlines" `Quick test_mclock_deadline;
        ] );
    ]
