(* Differential testing on generated programs: every randomly generated,
   spatially-safe MiniC program must produce identical output
   - at -O0, -O1 and -O3,
   - instrumented with SoftBound and with Low-Fat Pointers (full mode),
   - instrumented at every extension point,
   and must never trigger a safety report. *)

module Config = Mi_core.Config
module Pipeline = Mi_passes.Pipeline
module Harness = Mi_bench_kit.Harness
module Bench = Mi_bench_kit.Bench

let run_full setup src =
  let r = Harness.run_sources setup [ Bench.src "gen" src ] in
  match r.Harness.outcome with
  | Mi_vm.Interp.Exited _ -> r
  | Mi_vm.Interp.Trapped msg -> Alcotest.failf "trap: %s\n%s" msg src
  | Mi_vm.Interp.Safety_violation { checker; reason } ->
      Alcotest.failf "spurious %s violation: %s\n%s" checker reason src
  | Mi_vm.Interp.Exhausted budget ->
      Alcotest.failf "fuel budget of %d exhausted\n%s" budget src

let run_one setup src = (run_full setup src).Harness.output

let differential seed () =
  let src = Mi_bench_kit.Progen.generate ~seed in
  let reference =
    run_one { Harness.baseline with level = Pipeline.O0 } src
  in
  let setups =
    [
      ("O1", { Harness.baseline with level = Pipeline.O1 });
      ("O3", Harness.baseline);
      ("O3+sb", Harness.with_config Config.softbound Harness.baseline);
      ("O3+lf", Harness.with_config Config.lowfat Harness.baseline);
      ( "O3+sb+domopt",
        Harness.with_config (Config.optimized Config.softbound) Harness.baseline );
      ( "O3+lf@early",
        {
          (Harness.with_config Config.lowfat Harness.baseline) with
          ep = Pipeline.ModuleOptimizerEarly;
        } );
      ( "O3+sb@scalarlate",
        {
          (Harness.with_config Config.softbound Harness.baseline) with
          ep = Pipeline.ScalarOptimizerLate;
        } );
    ]
  in
  List.iter
    (fun (tag, setup) ->
      let out = run_one setup src in
      if out <> reference then
        Alcotest.failf "seed %d: %s output diverges\nexpected %S\ngot %S\n%s"
          seed tag reference out src)
    setups;
  (* framework fairness: the shared target discovery gives both
     approaches the same dynamic check count on the same program *)
  let sb = run_full (Harness.with_config Config.softbound Harness.baseline) src in
  let lf = run_full (Harness.with_config Config.lowfat Harness.baseline) src in
  let csb = Harness.counter sb "sb.checks" and clf = Harness.counter lf "lf.checks" in
  if csb <> clf then
    Alcotest.failf "seed %d: check placement differs (sb %d vs lf %d)\n%s"
      seed csb clf src

let cases =
  List.init 60 (fun k ->
      let seed = 1000 + (k * 37) in
      Alcotest.test_case (Printf.sprintf "seed %d" seed) `Slow
        (differential seed))

let () = Alcotest.run "differential" [ ("generated programs", cases) ]
