(* Differential testing on Mi_fuzz-generated programs: every seed's
   safe program must run identically across the whole oracle matrix
   (optimization levels x SoftBound/Low-Fat/Temporal x extension points
   x VM dispatch modes) with zero safety reports, and every derived
   unsafe mutant must be reported by the checkers whose hazard class it
   belongs to (wide-bounds and out-of-scope whitelists aside).  The
   heavy lifting — matrix construction, output comparison, check-count
   fairness, dispatch twinning — lives in {!Mi_fuzz.Oracle}; this suite
   drives it over fixed seed blocks and additionally pins each oracle
   property with a direct witness. *)

module Harness = Mi_bench_kit.Harness
module Gen = Mi_fuzz.Gen
module Oracle = Mi_fuzz.Oracle
module Fuzz = Mi_fuzz.Fuzz

let outcome_str = function
  | Mi_vm.Interp.Exited n -> Printf.sprintf "exited %d" n
  | Mi_vm.Interp.Safety_violation { checker; reason } ->
      Printf.sprintf "%s violation: %s" checker reason
  | Mi_vm.Interp.Trapped msg -> "trap: " ^ msg
  | Mi_vm.Interp.Exhausted budget -> Printf.sprintf "fuel %d exhausted" budget

(* {1 Safe seeds: the full oracle matrix holds} *)

let test_safe_block () =
  let r = Fuzz.run (Fuzz.campaign ~jobs:2 ~seeds:(201, 220) ()) in
  Alcotest.(check int) "programs" 20 r.Fuzz.r_safe_total;
  (match r.Fuzz.r_findings with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "oracle violation: %s (of %d)"
        (Oracle.finding_to_string f)
        (List.length r.Fuzz.r_findings));
  Alcotest.(check bool) "campaign ok" true (Fuzz.ok r)

(* {1 Coverage feedback: the scheduler's boost decision is pinned}

   The second half of every campaign is generated with the top-scoring
   features (by fresh VM blocks/edges) forced on.  The decision is a
   pure function of the seed block, so two runs — and runs at different
   [-j] — must agree, and the corpus coverage totals must be
   non-trivial. *)

let test_coverage_boost_deterministic () =
  let r1 = Fuzz.run (Fuzz.campaign ~jobs:2 ~seeds:(201, 210) ()) in
  let r2 = Fuzz.run (Fuzz.campaign ~jobs:1 ~seeds:(201, 210) ()) in
  Alcotest.(check (list int)) "boost agrees across runs and -j" r1.Fuzz.r_boost
    r2.Fuzz.r_boost;
  Alcotest.(check bool) "a boost decision was made" true
    (r1.Fuzz.r_boost <> []);
  let bh, bt = r1.Fuzz.r_vm_blocks and eh, et = r1.Fuzz.r_vm_edges in
  Alcotest.(check bool) "blocks executed" true (bh > 0 && bh <= bt);
  Alcotest.(check bool) "edges executed" true (eh > 0 && eh <= et);
  Alcotest.(check (pair int int))
    "block coverage agrees" r1.Fuzz.r_vm_blocks r2.Fuzz.r_vm_blocks;
  Alcotest.(check (pair int int))
    "edge coverage agrees" r1.Fuzz.r_vm_edges r2.Fuzz.r_vm_edges

(* {1 Unsafe mutants: the flipped oracle holds} *)

let test_mutant_block () =
  let r =
    Fuzz.run (Fuzz.campaign ~jobs:2 ~seeds:(201, 220) ~mutants:(201, 212) ())
  in
  let killed, _whitelisted, missed = Fuzz.count_mutants r.Fuzz.r_mutants in
  Alcotest.(check int) "mutants" 12 (List.length r.Fuzz.r_mutants);
  Alcotest.(check int) "missed detections" 0 missed;
  Alcotest.(check bool) "some detections killed" true (killed > 0);
  List.iter
    (fun (mr : Oracle.mutant_result) ->
      match mr.Oracle.mr_findings with
      | [] -> ()
      | f :: _ ->
          Alcotest.failf "mutant %s: %s" mr.Oracle.mr_name
            (Oracle.finding_to_string f))
    r.Fuzz.r_mutants

(* a precise-bounds spatial mutant is reported by BOTH spatial
   instrumentations, and the safe original places the same dynamic
   check count under every checker (the framework-fairness guarantee
   behind the flipped oracle) *)
let test_mutant_both_checkers_report () =
  let seed = 203 in
  let prog = Gen.generate ~seed () in
  let sb = Oracle.variant_setup "O3+sb" in
  let lf = Oracle.variant_setup "O3+lf" in
  let tp = Oracle.variant_setup "O3+tp" in
  let rsb = Harness.run_sources sb prog.Gen.p_sources in
  let rlf = Harness.run_sources lf prog.Gen.p_sources in
  let rtp = Harness.run_sources tp prog.Gen.p_sources in
  (match (rsb.Harness.outcome, rlf.Harness.outcome, rtp.Harness.outcome) with
  | Mi_vm.Interp.Exited 0, Mi_vm.Interp.Exited 0, Mi_vm.Interp.Exited 0 -> ()
  | _ -> Alcotest.fail "safe program did not exit 0 under every checker");
  let csb = Harness.counter rsb "sb.checks"
  and clf = Harness.counter rlf "lf.checks"
  and ctp = Harness.counter rtp "tp.checks" in
  Alcotest.(check bool) "checks placed" true (csb > 0);
  Alcotest.(check int) "same dynamic check count (lf)" csb clf;
  Alcotest.(check int) "same dynamic check count (tp)" csb ctp;
  (* now one injected out-of-bounds access: both spatial checkers must
     report; the temporal checker is excused (out of scope) *)
  let m = Gen.mutate prog ~mseed:seed in
  if m.Gen.m_sb_whitelist <> None then
    Alcotest.failf "seed %d unexpectedly drew a whitelisted extern site" seed;
  let check tag setup =
    match (Harness.run_sources setup m.Gen.m_sources).Harness.outcome with
    | Mi_vm.Interp.Safety_violation _ -> ()
    | o ->
        Alcotest.failf "%s did not report %s: %s" tag (Gen.mutant_name m)
          (outcome_str o)
  in
  check "softbound" sb;
  check "lowfat" lf;
  let rsb' = Harness.run_sources sb m.Gen.m_sources in
  let rlf' = Harness.run_sources lf m.Gen.m_sources in
  let rtp' = Harness.run_sources tp m.Gen.m_sources in
  let run_variant tag =
    Ok (Harness.run_sources (Oracle.variant_setup tag) m.Gen.m_sources)
  in
  let mr =
    Oracle.judge_mutant m
      [
        Ok rsb';
        Ok rlf';
        Ok rtp';
        run_variant "O3+sb+checkopt";
        run_variant "O3+lf+checkopt";
      ]
  in
  Alcotest.(check bool) "flipped oracle holds" true (mr.Oracle.mr_findings = []);
  (* the check-eliminated builds must keep the residual check that guards
     the injected access — precise elimination may not erase detections *)
  List.iter
    (fun tag ->
      match Oracle.mr_detection mr tag with
      | Oracle.Killed -> ()
      | d ->
          Alcotest.failf "%s must still report after check elimination: %s" tag
            (Oracle.detection_to_string d))
    [ "O3+sb+checkopt"; "O3+lf+checkopt" ];
  match Oracle.mr_detection mr "O3+tp" with
  | Oracle.Killed | Oracle.Whitelisted _ -> ()
  | d ->
      Alcotest.failf "temporal checker off-contract on spatial mutant: %s"
        (Oracle.detection_to_string d)

(* temporal mutants — use-after-free and double free — are reported by
   the lock-and-key checker and excused (not missed) under the spatial
   checkers, whose bounds metadata free does not touch *)
let test_temporal_mutants () =
  let sb = Oracle.variant_setup "O3+sb" in
  let lf = Oracle.variant_setup "O3+lf" in
  let tp = Oracle.variant_setup "O3+tp" in
  let sbc = Oracle.variant_setup "O3+sb+checkopt" in
  let lfc = Oracle.variant_setup "O3+lf+checkopt" in
  let seen_uaf = ref false and seen_dfree = ref false in
  for seed = 201 to 240 do
    if not (!seen_uaf && !seen_dfree) then
      let p = Gen.generate ~seed () in
      match Gen.mutate_temporal p ~mseed:seed with
      | None ->
          Alcotest.(check bool)
            "mutate_temporal is None iff nothing was freed" true
            (p.Gen.p_frees = [])
      | Some m ->
          let fresh =
            match m.Gen.m_kind with
            | Gen.Uaf when not !seen_uaf ->
                seen_uaf := true;
                true
            | Gen.Double_free when not !seen_dfree ->
                seen_dfree := true;
                true
            | _ -> false
          in
          if fresh then begin
            let r s = Ok (Harness.run_sources s m.Gen.m_sources) in
            let mr =
              Oracle.judge_mutant m [ r sb; r lf; r tp; r sbc; r lfc ]
            in
            (match Oracle.mr_detection mr "O3+tp" with
            | Oracle.Killed -> ()
            | d ->
                Alcotest.failf "temporal checker should kill %s, got %s"
                  mr.Oracle.mr_name
                  (Oracle.detection_to_string d));
            List.iter
              (fun tag ->
                match Oracle.mr_detection mr tag with
                | Oracle.Whitelisted _ -> ()
                | d ->
                    Alcotest.failf "%s should be excused on %s, got %s" tag
                      mr.Oracle.mr_name
                      (Oracle.detection_to_string d))
              [ "O3+sb"; "O3+lf"; "O3+sb+checkopt"; "O3+lf+checkopt" ];
            Alcotest.(check bool)
              "flipped oracle holds" true
              (mr.Oracle.mr_findings = [])
          end
  done;
  Alcotest.(check bool) "drew a use-after-free mutant" true !seen_uaf;
  Alcotest.(check bool) "drew a double-free mutant" true !seen_dfree

(* a size-less extern site overflows past the definition: Low-Fat still
   reports (allocation-size classes), SoftBound is excused by its wide
   upper bound — the documented §4.3 whitelist *)
let test_whitelisted_extern_mutant () =
  (* find a seed drawing a wide-site mutant *)
  let found = ref None in
  for mseed = 301 to 420 do
    if !found = None then begin
      let prog = Gen.generate ~seed:mseed () in
      let m = Gen.mutate prog ~mseed in
      if m.Gen.m_sb_whitelist <> None then found := Some m
    end
  done;
  match !found with
  | None -> Alcotest.fail "no whitelisted mutant drawn in 120 seeds"
  | Some m ->
      let rsb =
        Harness.run_sources (Oracle.variant_setup "O3+sb") m.Gen.m_sources
      in
      let rlf =
        Harness.run_sources (Oracle.variant_setup "O3+lf") m.Gen.m_sources
      in
      let rtp =
        Harness.run_sources (Oracle.variant_setup "O3+tp") m.Gen.m_sources
      in
      let rsbc =
        Harness.run_sources
          (Oracle.variant_setup "O3+sb+checkopt")
          m.Gen.m_sources
      in
      let rlfc =
        Harness.run_sources
          (Oracle.variant_setup "O3+lf+checkopt")
          m.Gen.m_sources
      in
      (match rlf.Harness.outcome with
      | Mi_vm.Interp.Safety_violation _ -> ()
      | o ->
          Alcotest.failf "lowfat must still report %s: %s"
            (Gen.mutant_name m) (outcome_str o));
      let mr =
        Oracle.judge_mutant m [ Ok rsb; Ok rlf; Ok rtp; Ok rsbc; Ok rlfc ]
      in
      (match Oracle.mr_detection mr "O3+sb" with
      | Oracle.Whitelisted why ->
          Alcotest.(check bool)
            "justification is written out" true
            (String.length why > 0)
      | d ->
          Alcotest.failf "softbound detection should be whitelisted, got %s"
            (Oracle.detection_to_string d));
      Alcotest.(check bool)
        "flipped oracle holds" true
        (mr.Oracle.mr_findings = [])

(* {1 VM dispatch: fused fast paths are observationally generic} *)

let test_dispatch_differential () =
  let prog = Gen.generate ~seed:207 () in
  List.iter
    (fun tag ->
      let base = Oracle.variant_setup tag in
      let fast = Harness.run_sources base prog.Gen.p_sources in
      let gen =
        Harness.run_sources
          { base with Harness.dispatch = Harness.Generic }
          prog.Gen.p_sources
      in
      Alcotest.(check string)
        (tag ^ " output") fast.Harness.output gen.Harness.output;
      Alcotest.(check int)
        (tag ^ " cycles") fast.Harness.cycles gen.Harness.cycles;
      Alcotest.(check (list (pair string int)))
        (tag ^ " counters")
        (Harness.counters_alist fast)
        (Harness.counters_alist gen))
    [ "O3+sb"; "O3+lf"; "O3+tp" ]

(* {1 Optimizer regressions flushed out by fuzzing}

   Two CFG-update bugs shared a shape: a transformation that splits or
   merges blocks renamed phi predecessors in the successors of the
   rewritten block, but missed the case where the rewritten block is its
   own successor (a do-while body looping back to itself).  Inline left
   the loop-header phis naming the pre-split backedge (fuzz seed 16,
   caught by the IR verifier); simplifycfg's merge then recreated the
   same stale-label shape and the miscompile surfaced as an infinite
   loop at -O3 (fuzz seed 18).  Pinned here end-to-end via output
   identity of the distilled program across levels; the IR-level twins
   live in test_passes.ml. *)

let test_inlined_call_in_do_while_loop () =
  let src =
    "long helper3(long x) {\n\
    \  long acc = x % 100;\n\
    \  acc += x;\n\
    \  return acc;\n\
     }\n\
     int main(void) {\n\
    \  long acc = 3;\n\
    \  long i15 = 0;\n\
    \  do {\n\
    \    acc += helper3(acc);\n\
    \    i15 = i15 + 1;\n\
    \  } while (i15 < 3);\n\
    \  print_int(acc);\n\
    \  return 0;\n\
     }\n"
  in
  let sources = [ Mi_bench_kit.Bench.src "m" src ] in
  let ref_run = Harness.run_sources Oracle.reference sources in
  Alcotest.(check bool)
    "reference exits 0" true
    (ref_run.Harness.outcome = Mi_vm.Interp.Exited 0);
  List.iter
    (fun tag ->
      let r = Harness.run_sources (Oracle.variant_setup tag) sources in
      (match r.Harness.outcome with
      | Mi_vm.Interp.Exited 0 -> ()
      | o -> Alcotest.failf "%s: %s" tag (outcome_str o));
      Alcotest.(check string)
        (tag ^ " output") ref_run.Harness.output r.Harness.output)
    [ "O1"; "O3"; "O3+sb"; "O3+lf"; "O3+tp" ]

let () =
  Alcotest.run "differential"
    [
      ( "safe oracle",
        [
          Alcotest.test_case "seed block 201..220, full matrix" `Slow
            test_safe_block;
          Alcotest.test_case "coverage boost deterministic across -j" `Slow
            test_coverage_boost_deterministic;
        ] );
      ( "unsafe mutants",
        [
          Alcotest.test_case "seed block 201..220, mutants 201..212" `Slow
            test_mutant_block;
          Alcotest.test_case "both checkers report, equal check counts"
            `Quick test_mutant_both_checkers_report;
          Alcotest.test_case "temporal mutants: tp kills, sb/lf excused"
            `Slow test_temporal_mutants;
          Alcotest.test_case "size-less extern whitelist" `Slow
            test_whitelisted_extern_mutant;
        ] );
      ( "vm dispatch",
        [
          Alcotest.test_case "fast vs generic twin runs" `Quick
            test_dispatch_differential;
        ] );
      ( "fuzz-found regressions",
        [
          Alcotest.test_case "inline into do-while self-loop" `Quick
            test_inlined_call_in_do_while_loop;
        ] );
    ]
