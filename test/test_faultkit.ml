(* Fault-injection engine: plan parsing, each injector layer
   (instrumenter check mutation, VM faults, wall-clock budgets), and the
   harness's containment guarantees (typed failures, retries, -j
   determinism of partial results and the failure manifest). *)

module Fault = Mi_faultkit.Fault
module Config = Mi_core.Config
module Harness = Mi_bench_kit.Harness
module Bench = Mi_bench_kit.Bench
module Corpus = Mi_bench_kit.Safety_corpus
module Metrics = Mi_obs.Metrics

(* {1 Plan parsing} *)

let parse_exn s =
  match Fault.parse s with
  | Ok p -> p
  | Error msg -> Alcotest.failf "parse %S failed: %s" s msg

let test_parse_round_trip () =
  List.iter
    (fun s ->
      let p = parse_exn s in
      let p' = parse_exn (Fault.to_string p) in
      Alcotest.(check string)
        ("round trip of " ^ s)
        (Fault.to_string p) (Fault.to_string p'))
    [
      "";
      "del-check=1@main";
      "weaken-check=0";
      "seed=7,del-check=2@foo,weaken-check=1,fuel=5000";
      "wild-write=100:4096:255,trap-at=9";
      "corrupt-cache=bitflip,crash=softbound,hang=lowfat:2.5";
      "seed=3, fuel=10 , corrupt-cache=stale";
    ]

let test_parse_fields () =
  let p =
    parse_exn
      "seed=9,del-check=1@main,wild-write=50:4096:7,fuel=123,trap-at=4,\
       corrupt-cache=truncate,crash=sb,hang=lf:1.5"
  in
  Alcotest.(check int) "seed" 9 p.Fault.seed;
  (match p.Fault.checks with
  | [ { Fault.cm_action = Fault.Delete; cm_ordinal = 1; cm_func = Some "main" } ]
    ->
      ()
  | _ -> Alcotest.fail "checks");
  Alcotest.(check int) "vm faults" 3 (List.length p.Fault.vm);
  Alcotest.(check bool) "cache" true (p.Fault.cache = Some Fault.Truncate);
  (match p.Fault.jobs with
  | [ Fault.Crash_job "sb"; Fault.Hang_job ("lf", 1.5) ] -> ()
  | _ -> Alcotest.fail "jobs")

let test_parse_errors () =
  List.iter
    (fun s ->
      match Fault.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse of %S to fail" s)
    [
      "del-check=x";
      "wild-write=1:2";
      "hang=noseconds";
      "corrupt-cache=nope";
      "bogus=1";
      "fuel=";
    ]

let test_compile_sig () =
  Alcotest.(check string) "empty plan" "" (Fault.compile_sig Fault.none);
  Alcotest.(check string)
    "vm-only plan is compile-invisible" ""
    (Fault.compile_sig (parse_exn "fuel=10,crash=x,corrupt-cache=stale"));
  let s1 = Fault.compile_sig (parse_exn "del-check=1@main") in
  let s2 = Fault.compile_sig (parse_exn "weaken-check=1@main") in
  Alcotest.(check bool) "delete keys the cache" true (s1 <> "");
  Alcotest.(check bool) "delete <> weaken" true (s1 <> s2)

(* {1 Check mutation (instrumenter injector)} *)

(* stack/long/write/past_class: ordinal 1 of main is the reporting body
   access under both spatial approaches.  The temporal checker is blind
   to spatial overflows, so it gets a lifetime hazard instead: a
   use-after-free write whose reporting liveness check is ordinal 0 of
   main. *)
let violating_src =
  Corpus.program Corpus.Stack Corpus.Long Corpus.Write Corpus.Past_class

let temporal_violating_src =
  {|
int main(void) {
  long *a = (long *)malloc(8 * sizeof(long));
  free(a);
  a[0] = 7;
  return 0;
}
|}

(* the program a checker reports on, and the [main] check ordinal whose
   mutation silences that report *)
let violating_case approach =
  if approach = "temporal" then (temporal_violating_src, 0)
  else (violating_src, 1)

let run_corpus ?faults approach src =
  let r =
    Harness.run_sources ?faults (Corpus.setup approach) [ Bench.src "t" src ]
  in
  r

let violated (r : Harness.run) =
  match r.Harness.outcome with
  | Mi_vm.Interp.Safety_violation _ -> true
  | _ -> false

let test_del_check_flips () =
  List.iter
    (fun approach ->
      let src, ordinal = violating_case approach in
      let base = run_corpus approach src in
      Alcotest.(check bool) "baseline violates" true (violated base);
      let faults =
        {
          Fault.none with
          Fault.checks =
            [
              {
                Fault.cm_action = Fault.Delete;
                cm_ordinal = ordinal;
                cm_func = Some "main";
              };
            ];
        }
      in
      let mutant = run_corpus ~faults approach src in
      Alcotest.(check bool) "deleted check cannot report" false
        (violated mutant))
    (Config.known_approaches ())

let test_weaken_check_blinds () =
  List.iter
    (fun approach ->
      let src, ordinal = violating_case approach in
      let faults =
        {
          Fault.none with
          Fault.checks =
            [
              {
                Fault.cm_action = Fault.Weaken;
                cm_ordinal = ordinal;
                cm_func = Some "main";
              };
            ];
        }
      in
      let mutant = run_corpus ~faults approach src in
      Alcotest.(check bool) "weakened check cannot report" false
        (violated mutant))
    (Config.known_approaches ())

let test_unrelated_ordinal_untouched () =
  (* deleting a check in a function that does not exist changes nothing *)
  let faults =
    {
      Fault.none with
      Fault.checks =
        [
          { Fault.cm_action = Fault.Delete; cm_ordinal = 0; cm_func = Some "nope" };
        ];
    }
  in
  let r = run_corpus ~faults "softbound" violating_src in
  Alcotest.(check bool) "still violates" true (violated r)

(* {1 VM faults} *)

let benign_src =
  Corpus.program Corpus.Stack Corpus.Long Corpus.Write Corpus.In_bounds

let test_fuel_cap () =
  let faults = { Fault.none with Fault.vm = [ Fault.Fuel_cap 3 ] } in
  let r = run_corpus ~faults "softbound" benign_src in
  match r.Harness.outcome with
  | Mi_vm.Interp.Exhausted 3 -> ()
  | _ -> Alcotest.fail "expected Exhausted 3"

let test_trap_at () =
  let faults = { Fault.none with Fault.vm = [ Fault.Trap_at 2 ] } in
  let r = run_corpus ~faults "softbound" benign_src in
  match r.Harness.outcome with
  | Mi_vm.Interp.Trapped msg ->
      Alcotest.(check bool)
        "trap message names the injection" true
        (String.length msg >= 13 && String.sub msg 0 13 = "injected trap")
  | _ -> Alcotest.fail "expected an injected trap"

let test_wild_write_counted () =
  (* address 0 is unmapped: the wild write itself faults and is
     swallowed, but the injector still fires and counts *)
  let faults =
    {
      Fault.none with
      Fault.vm = [ Fault.Wild_write { at_step = 1; addr = 0; value = 0xFF } ];
    }
  in
  let r = run_corpus ~faults "softbound" benign_src in
  Alcotest.(check bool)
    "fault.injected counted" true
    (Harness.counter r "fault.injected" >= 1)

(* {1 Harness containment: crash, hang, retries, -j determinism} *)

let tiny_bench name value =
  Bench.mk ~suite:Bench.CPU2000 ~descr:"faultkit test program" name
    [
      Bench.src "m"
        (Printf.sprintf
           "int main(void) { long a[4]; a[1] = %d; print_int(a[1]); return 0; \
            }"
           value);
    ]

let good = tiny_bench "good" 11
let crashy = tiny_bench "crashy" 22
let hangy = tiny_bench "hangy" 33

let chaos_plan =
  {
    Fault.none with
    Fault.jobs = [ Fault.Crash_job "crashy"; Fault.Hang_job ("hangy", 30.0) ];
  }

let run_chaos_session jobs =
  let h =
    Harness.create ~jobs ~faults:chaos_plan ~job_timeout:0.05 ~retries:1 ()
  in
  let setup = Corpus.setup "softbound" in
  let results =
    Harness.run_jobs h [ (setup, good); (setup, crashy); (setup, hangy) ]
  in
  (h, results)

let digest_results (results : (Harness.run, Harness.error) result list) =
  String.concat "\n"
    (List.map
       (function
         | Ok (r : Harness.run) ->
             Printf.sprintf "ok output=%S cycles=%d" r.Harness.output
               r.Harness.cycles
         | Error (e : Harness.error) ->
             Printf.sprintf "error %s: %s" e.Harness.bench e.Harness.reason)
       results)

let test_containment_and_determinism () =
  let h1, r1 = run_chaos_session 1 in
  let h4, r4 = run_chaos_session 4 in
  (* the pool completed the whole matrix *)
  Alcotest.(check int) "three results" 3 (List.length r1);
  (match r1 with
  | [ Ok good_run; Error crash_err; Error hang_err ] ->
      Alcotest.(check bool)
        "good job ran" true
        (good_run.Harness.output <> "");
      Alcotest.(check bool)
        "crash reason names the injection" true
        (String.length crash_err.Harness.reason >= 14
        && String.sub crash_err.Harness.reason 0 14 = "injected crash");
      Alcotest.(check bool)
        "hang reason is the budget, not a measured time" true
        (crash_err.Harness.bench = "crashy"
        && hang_err.Harness.reason = "wall-clock budget exceeded (0.05s)")
  | _ -> Alcotest.fail "expected [Ok; Error; Error]");
  (* typed failures with retry accounting *)
  let fs = Harness.failures h1 in
  Alcotest.(check int) "two failures recorded" 2 (List.length fs);
  List.iter
    (fun (f : Harness.job_failure) ->
      Alcotest.(check int) "retries consumed" 1 f.Harness.jf_retries;
      match (f.Harness.jf_bench, f.Harness.jf_kind) with
      | "crashy", Harness.Injected | "hangy", Harness.Timeout -> ()
      | b, _ -> Alcotest.failf "unexpected failure kind for %s" b)
    fs;
  (* graceful degradation is deterministic across -j *)
  Alcotest.(check string)
    "results identical -j1 vs -j4" (digest_results r1) (digest_results r4);
  Alcotest.(check string)
    "manifest identical -j1 vs -j4"
    (Harness.failure_manifest h1)
    (Harness.failure_manifest h4);
  Alcotest.(check bool)
    "manifest nonempty" true
    (Harness.failure_manifest h1 <> "");
  (* counters land in the session context *)
  let m = (Harness.obs h1).Mi_obs.Obs.metrics in
  Alcotest.(check int) "harness.job_failed" 2
    (Metrics.counter m "harness.job_failed");
  Alcotest.(check int) "harness.job_retried" 2
    (Metrics.counter m "harness.job_retried")

let test_no_faults_no_failures () =
  let h = Harness.create ~jobs:2 () in
  let setup = Corpus.setup "lowfat" in
  let results = Harness.run_jobs h [ (setup, good); (setup, hangy) ] in
  Alcotest.(check int) "all ok" 2
    (List.length (List.filter Result.is_ok results));
  Alcotest.(check int) "no failures" 0 (List.length (Harness.failures h));
  Alcotest.(check string) "empty manifest" "" (Harness.failure_manifest h)

let () =
  Alcotest.run "faultkit"
    [
      ( "plan",
        [
          Alcotest.test_case "parse round trip" `Quick test_parse_round_trip;
          Alcotest.test_case "parse fields" `Quick test_parse_fields;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "compile signature" `Quick test_compile_sig;
        ] );
      ( "check-mutation",
        [
          Alcotest.test_case "del-check flips the verdict" `Slow
            test_del_check_flips;
          Alcotest.test_case "weaken-check blinds the check" `Slow
            test_weaken_check_blinds;
          Alcotest.test_case "unmatched mutation is inert" `Slow
            test_unrelated_ordinal_untouched;
        ] );
      ( "vm-faults",
        [
          Alcotest.test_case "fuel cap exhausts" `Slow test_fuel_cap;
          Alcotest.test_case "trap-at traps" `Slow test_trap_at;
          Alcotest.test_case "wild write is counted" `Slow
            test_wild_write_counted;
        ] );
      ( "containment",
        [
          Alcotest.test_case "crash+hang contained, -j deterministic" `Slow
            test_containment_and_determinism;
          Alcotest.test_case "clean session has no failures" `Slow
            test_no_faults_no_failures;
        ] );
    ]
