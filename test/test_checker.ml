(* The pluggable checker registry (Mi_core.Checker) and its coupling to
   the configuration-basis registry (Mi_core.Config): round-trips, alias
   resolution, the unknown-name error contract, registry-driven
   experiment matrices, and the enumeration narrowing behind
   mi-experiments --approach. *)

module Checker = Mi_core.Checker
module Config = Mi_core.Config
module E = Mi_bench_kit.Experiments
module Harness = Mi_bench_kit.Harness

let test_known_names () =
  Alcotest.(check (list string))
    "registration order" [ "softbound"; "lowfat"; "temporal" ]
    (Checker.known_names ());
  Alcotest.(check (list string))
    "config registry agrees"
    (Checker.known_names ())
    (Config.known_approaches ())

let test_roundtrip () =
  List.iter
    (fun (c : Checker.t) ->
      (match Checker.find c.Checker.name with
      | Some c' ->
          Alcotest.(check string)
            ("find " ^ c.Checker.name) c.Checker.name c'.Checker.name
      | None -> Alcotest.failf "find %s returned None" c.Checker.name);
      Alcotest.(check string)
        ("basis name matches " ^ c.Checker.name)
        c.Checker.name c.Checker.basis.Config.approach;
      Alcotest.(check string)
        ("config round-trip " ^ c.Checker.name)
        c.Checker.name
        (Config.of_approach c.Checker.name).Config.approach;
      Alcotest.(check string)
        ("approach_name is identity on " ^ c.Checker.name)
        c.Checker.name
        (Config.approach_name c.Checker.basis.Config.approach))
    (Checker.all ())

let test_aliases () =
  let resolves alias expect =
    (match Checker.find alias with
    | Some c -> Alcotest.(check string) ("alias " ^ alias) expect c.Checker.name
    | None -> Alcotest.failf "alias %s did not resolve" alias);
    Alcotest.(check string)
      ("config alias " ^ alias)
      expect
      (Config.of_approach alias).Config.approach
  in
  resolves "sb" "softbound";
  resolves "lf" "lowfat";
  resolves "tp" "temporal";
  resolves "cets" "temporal";
  (* lookups are case-insensitive *)
  resolves "SoftBound" "softbound";
  resolves "TEMPORAL" "temporal"

(* an unknown name raises Invalid_argument whose message names every
   registered checker — the contract the CLIs' error paths rely on *)
let test_unknown_name_contract () =
  let contains msg sub =
    let n = String.length msg and m = String.length sub in
    let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
    go 0
  in
  let mentions_all msg =
    List.for_all (contains msg) (Checker.known_names ())
  in
  (match Checker.find "asan" with
  | None -> ()
  | Some _ -> Alcotest.fail "find of unknown name returned a checker");
  (match Checker.find_exn "asan" with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "find_exn names known checkers" true
        (mentions_all msg)
  | _ -> Alcotest.fail "find_exn of unknown name did not raise");
  match Config.of_approach "asan" with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "of_approach names known approaches" true
        (mentions_all msg)
  | _ -> Alcotest.fail "of_approach of unknown name did not raise"

let test_checker_shape () =
  List.iter
    (fun (c : Checker.t) ->
      Alcotest.(check int)
        (c.Checker.name ^ ": wide witness matches component count")
        (Array.length c.Checker.components)
        (Array.length c.Checker.wide))
    (Checker.all ());
  let dom name =
    (Checker.find_exn name).Checker.supports_dominance_opt
  in
  Alcotest.(check bool) "softbound supports domopt" true (dom "softbound");
  Alcotest.(check bool) "lowfat supports domopt" true (dom "lowfat");
  (* a free between two accesses invalidates the dominated check's
     premise, so check elimination is unsound for the temporal checker *)
  Alcotest.(check bool) "temporal rejects domopt" false (dom "temporal")

(* the experiment matrix is registry-driven: every registered approach
   yields both shared setups, the dominance opt only where supported *)
let test_matrix_from_registry () =
  List.iter
    (fun name ->
      let full = E.full_setup name and opt = E.opt_setup name in
      let approach_of (s : Harness.setup) =
        match s.Harness.config with
        | Some cfg -> cfg.Config.approach
        | None -> Alcotest.failf "%s: setup has no config" name
      in
      Alcotest.(check string) (name ^ " full setup") name (approach_of full);
      Alcotest.(check string) (name ^ " opt setup") name (approach_of opt);
      let dom (s : Harness.setup) =
        (Option.get s.Harness.config).Config.opt_dominance
      in
      Alcotest.(check bool) (name ^ " full has no domopt") false (dom full);
      Alcotest.(check bool)
        (name ^ " opt domopt iff supported")
        (Checker.find_exn name).Checker.supports_dominance_opt (dom opt))
    (Config.known_approaches ());
  Alcotest.(check (list string))
    "counter namespaces" [ "sb"; "lf"; "tp" ]
    (List.map E.counter_prefix (Config.known_approaches ()))

(* restrict_approaches narrows the enumeration but keeps lookups total
   (experiments pinned to one approach must keep resolving); restoring
   the full list afterwards keeps this test order-independent *)
let test_restrict_approaches () =
  let every = Checker.known_names () in
  Fun.protect
    ~finally:(fun () -> Config.restrict_approaches every)
    (fun () ->
      Config.restrict_approaches [ "tp" ];
      Alcotest.(check (list string))
        "narrowed to canonical name" [ "temporal" ]
        (Config.known_approaches ());
      Alcotest.(check string) "lookups stay total" "softbound"
        (Config.of_approach "softbound").Config.approach;
      (match Config.restrict_approaches [ "nope" ] with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "restricting to an unknown name did not raise");
      Config.restrict_approaches [ "lf"; "sb" ];
      Alcotest.(check (list string))
        "order follows registration, not the restriction"
        [ "softbound"; "lowfat" ]
        (Config.known_approaches ()));
  Alcotest.(check (list string))
    "restriction restored" every
    (Config.known_approaches ())

let test_duplicate_registration_rejected () =
  let tp = Checker.find_exn "temporal" in
  match Checker.register tp with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate registration did not raise"

let () =
  Alcotest.run "checker"
    [
      ( "registry",
        [
          Alcotest.test_case "known names" `Quick test_known_names;
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "aliases" `Quick test_aliases;
          Alcotest.test_case "unknown-name contract" `Quick
            test_unknown_name_contract;
          Alcotest.test_case "checker shape" `Quick test_checker_shape;
          Alcotest.test_case "duplicate rejected" `Quick
            test_duplicate_registration_rejected;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "setups from registry" `Quick
            test_matrix_from_registry;
          Alcotest.test_case "restrict_approaches" `Quick
            test_restrict_approaches;
        ] );
    ]
