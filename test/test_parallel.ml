(* The parallel session's three contracts:

   1. determinism — reports (text, JSON, merged metrics, merged sites)
      are byte-identical for every worker count;
   2. exact cache accounting — repeating a (setup, benchmark) job in a
      session is a cache hit that does zero instrumentation work but
      still reproduces the run (counters, cycles, per-site profile)
      exactly, in memory and across sessions via the on-disk cache;
   3. Obs.merge is associative and order-insensitive on disjoint and
      overlapping registries.

   Plus the sorted-array Harness.counter lookup. *)

open Mi_bench_kit
module Obs = Mi_obs.Obs
module Metrics = Mi_obs.Metrics
module Site = Mi_obs.Site
module E = Experiments
module Fault = Mi_faultkit.Fault

let bench name =
  match Suite.find name with
  | Some b -> b
  | None -> Alcotest.failf "no benchmark %s" name

let lbm = lazy (bench "470lbm")

(* ------------------------------------------------------------------ *)
(* 1. byte-identical reports for -j 1 / 2 / 8                          *)
(* ------------------------------------------------------------------ *)

let experiments () =
  List.map
    (fun n -> Option.get (E.find n))
    [ "fig9"; "table2"; "hotchecks" ]

let reports_at jobs =
  let h = Harness.create ~jobs () in
  let rs = E.run_reports ~benchmarks:[ Lazy.force lbm ] h (experiments ()) in
  let obs = Harness.obs h in
  let text =
    String.concat "\n"
      (List.map (fun (n, (r : E.report)) -> n ^ "\n" ^ r.title ^ "\n" ^ r.text) rs)
  in
  let json = Mi_obs.Json.to_string (E.reports_to_json (List.map snd rs)) in
  (text, json, Metrics.to_string obs.Obs.metrics, Site.snapshot obs.Obs.sites)

let test_byte_identical_reports () =
  let t1, j1, m1, s1 = reports_at 1 in
  List.iter
    (fun jobs ->
      let t, j, m, s = reports_at jobs in
      let tag fmt = Printf.sprintf fmt jobs in
      Alcotest.(check string) (tag "-j %d report text") t1 t;
      Alcotest.(check string) (tag "-j %d report JSON") j1 j;
      Alcotest.(check string) (tag "-j %d merged metrics") m1 m;
      Alcotest.(check bool) (tag "-j %d merged sites") true (s1 = s))
    [ 2; 8 ]

(* ------------------------------------------------------------------ *)
(* 2. exact cache accounting                                           *)
(* ------------------------------------------------------------------ *)

let static_counters (h : Harness.t) =
  List.filter
    (fun (k, _) -> String.length k >= 7 && String.sub k 0 7 = "static.")
    (Metrics.counters_alist (Harness.obs h).Obs.metrics)

let check_same_run msg (a : Harness.run) (b : Harness.run) =
  Alcotest.(check string) (msg ^ ": output") a.output b.output;
  Alcotest.(check int) (msg ^ ": cycles") a.cycles b.cycles;
  Alcotest.(check bool)
    (msg ^ ": counters") true
    (Harness.counters_alist a = Harness.counters_alist b);
  Alcotest.(check bool) (msg ^ ": profile") true (a.profile = b.profile)

let test_cache_accounting () =
  let b = Lazy.force lbm in
  let h = Harness.create ~jobs:1 () in
  let r1 = Harness.expect_ok b (Harness.run h E.sb_opt b) in
  let s1 = Harness.cache_stats h in
  Alcotest.(check int) "first run misses" 1 s1.Harness.misses;
  Alcotest.(check int) "first run hits" 0 s1.Harness.hits;
  let static1 = static_counters h in
  Alcotest.(check bool)
    "first run did instrumentation work" true
    (List.exists (fun (_, v) -> v > 0) static1);
  (* the second identical job: a hit, zero instrumentation work, and an
     identical run — counters, cycles, per-site profile *)
  let r2 = Harness.expect_ok b (Harness.run h E.sb_opt b) in
  let s2 = Harness.cache_stats h in
  Alcotest.(check int) "second run hits" 1 s2.Harness.hits;
  Alcotest.(check int) "second run misses" 1 s2.Harness.misses;
  Alcotest.(check bool)
    "cache hit did zero instrumentation work" true
    (static_counters h = static1);
  check_same_run "hit replays the run" r1 r2;
  (* a different setup shares nothing: a miss *)
  let (_ : (Harness.run, Harness.error) result) = Harness.run h E.lf_opt b in
  let s3 = Harness.cache_stats h in
  Alcotest.(check int) "different setup misses" 2 s3.Harness.misses

let temp_cache_dir () =
  let f = Filename.temp_file "micache" "" in
  Sys.remove f;
  f

let test_disk_cache_across_sessions () =
  let b = Lazy.force lbm in
  let dir = temp_cache_dir () in
  let h1 = Harness.create ~jobs:1 ~cache_dir:dir () in
  let r1 = Harness.expect_ok b (Harness.run h1 E.sb_opt b) in
  Alcotest.(check int) "cold session misses" 1
    (Harness.cache_stats h1).Harness.misses;
  (* a fresh session over the same directory compiles nothing *)
  let h2 = Harness.create ~jobs:1 ~cache_dir:dir () in
  let r2 = Harness.expect_ok b (Harness.run h2 E.sb_opt b) in
  let s2 = Harness.cache_stats h2 in
  Alcotest.(check int) "warm session hits" 1 s2.Harness.hits;
  Alcotest.(check int) "warm session misses" 0 s2.Harness.misses;
  Alcotest.(check bool)
    "warm session did zero instrumentation work" true
    (static_counters h2 = []
    || List.for_all (fun (_, v) -> v = 0) (static_counters h2));
  check_same_run "disk hit replays the run" r1 r2

(* a corrupted disk entry must never replay wrong results: each
   corruption mode is detected at lookup, quarantined, counted, and
   recomputed from source *)
let test_disk_cache_corruption () =
  let b = Lazy.force lbm in
  let dir = temp_cache_dir () in
  let h0 = Harness.create ~jobs:1 ~cache_dir:dir () in
  let r0 = Harness.expect_ok b (Harness.run h0 E.sb_opt b) in
  Alcotest.(check int) "seed session misses" 1
    (Harness.cache_stats h0).Harness.misses;
  List.iter
    (fun (name, how) ->
      (* the harness applies the plan's cache corruption at session
         creation — the same path `--inject corrupt-cache=...` takes *)
      let faults = { Fault.none with Fault.cache = Some how } in
      let h = Harness.create ~jobs:1 ~cache_dir:dir ~faults () in
      let r = Harness.expect_ok b (Harness.run h E.sb_opt b) in
      let s = Harness.cache_stats h in
      Alcotest.(check int) (name ^ ": recorded as a miss") 1 s.Harness.misses;
      Alcotest.(check int) (name ^ ": never a hit") 0 s.Harness.hits;
      Alcotest.(check bool)
        (name ^ ": corruption detected and counted") true
        (s.Harness.corrupt >= 1);
      (* the recompute reproduces the original run exactly — a damaged
         entry is never replayed *)
      check_same_run (name ^ ": recompute matches the original") r0 r;
      let entries = Sys.readdir dir in
      Alcotest.(check bool)
        (name ^ ": damaged entry quarantined") true
        (Array.exists (fun f -> Filename.check_suffix f ".corrupt") entries);
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".corrupt" then
            Sys.remove (Filename.concat dir f))
        entries)
    [ ("truncated", Fault.Truncate);
      ("bit-flipped", Fault.Bitflip);
      ("stale-digest", Fault.Stale) ]

(* ------------------------------------------------------------------ *)
(* 3. Obs.merge: associative, order-insensitive                        *)
(* ------------------------------------------------------------------ *)

(* three registries: a and b overlap (same metric, same site
   descriptor), c is disjoint *)
let mk_a () =
  let o = Obs.create () in
  Metrics.incr ~by:3 o.Obs.metrics "shared.counter";
  Metrics.set_gauge o.Obs.metrics "shared.gauge" 10;
  Metrics.observe o.Obs.metrics "shared.histo" 4;
  let id = Site.register o.Obs.sites ~func:"f" ~construct:"load" ~approach:"sb" in
  Site.hit o.Obs.sites id ~wide:false ~cycles:5;
  o

let mk_b () =
  let o = Obs.create () in
  Metrics.incr ~by:4 o.Obs.metrics "shared.counter";
  Metrics.incr ~by:1 o.Obs.metrics "only_b.counter";
  Metrics.set_gauge o.Obs.metrics "shared.gauge" 7;
  Metrics.observe o.Obs.metrics "shared.histo" 100;
  let id = Site.register o.Obs.sites ~func:"f" ~construct:"load" ~approach:"sb" in
  Site.hit o.Obs.sites id ~wide:true ~cycles:2;
  o

let mk_c () =
  let o = Obs.create () in
  Metrics.incr ~by:9 o.Obs.metrics "only_c.counter";
  let id = Site.register o.Obs.sites ~func:"g" ~construct:"store" ~approach:"lf" in
  Site.hit o.Obs.sites id ~wide:false ~cycles:8;
  o

let sorted_sites (o : Obs.t) =
  List.sort compare (Site.snapshot o.Obs.sites)

let obs_equal msg (x : Obs.t) (y : Obs.t) =
  Alcotest.(check string)
    (msg ^ ": metrics")
    (Metrics.to_string x.Obs.metrics)
    (Metrics.to_string y.Obs.metrics);
  Alcotest.(check bool) (msg ^ ": sites") true (sorted_sites x = sorted_sites y)

let test_merge_associative () =
  (* ((a <- b) <- c)  vs  (a <- (b <- c)) *)
  let l = mk_a () in
  Obs.merge l (mk_b ());
  Obs.merge l (mk_c ());
  let bc = mk_b () in
  Obs.merge bc (mk_c ());
  let r = mk_a () in
  Obs.merge r bc;
  obs_equal "associativity" l r;
  (* the merged values are the expected sums/maxima *)
  Alcotest.(check int) "counters add" 7
    (Metrics.counter l.Obs.metrics "shared.counter");
  Alcotest.(check int) "gauges max" 10
    (Metrics.gauge l.Obs.metrics "shared.gauge");
  (match Metrics.histogram l.Obs.metrics "shared.histo" with
  | Some h ->
      Alcotest.(check int) "histogram count" 2 h.Metrics.count;
      Alcotest.(check int) "histogram sum" 104 h.Metrics.sum;
      Alcotest.(check int) "histogram min" 4 h.Metrics.min;
      Alcotest.(check int) "histogram max" 100 h.Metrics.max
  | None -> Alcotest.fail "histogram lost in merge");
  (* the overlapping site added its cells; the disjoint one survived *)
  let sites = sorted_sites l in
  Alcotest.(check int) "2 distinct sites" 2 (List.length sites);
  let f = List.find (fun s -> s.Site.sn_func = "f") sites in
  Alcotest.(check int) "site hits add" 2 f.Site.sn_hits;
  Alcotest.(check int) "site wide add" 1 f.Site.sn_wide;
  Alcotest.(check int) "site cycles add" 7 f.Site.sn_cycles

let test_merge_order_insensitive () =
  let ab = mk_a () in
  Obs.merge ab (mk_b ());
  let ba = mk_b () in
  Obs.merge ba (mk_a ());
  obs_equal "overlapping, both orders" ab ba;
  let ac = mk_a () in
  Obs.merge ac (mk_c ());
  let ca = mk_c () in
  Obs.merge ca (mk_a ());
  obs_equal "disjoint, both orders" ac ca

let test_merge_self_rejected () =
  let o = mk_a () in
  Alcotest.check_raises "merge o o"
    (Invalid_argument "Obs.merge: dst and src are the same") (fun () ->
      Obs.merge o o)

(* ------------------------------------------------------------------ *)
(* 3b. Coverage.merge: associative, order-insensitive                  *)
(* ------------------------------------------------------------------ *)

module Coverage = Mi_obs.Coverage

let cov_geom = [| [| 1; 2 |]; [| 2 |]; [||] |]

(* a and b overlap (same function descriptor), c is disjoint *)
let cov_a () =
  let t = Coverage.create () in
  let f = Coverage.register_fn t ~name:"f" ~succ:cov_geom in
  Coverage.enter f 0;
  Coverage.transition f ~src:0 ~dst:1;
  Coverage.transition f ~src:1 ~dst:2;
  t

let cov_b () =
  let t = Coverage.create () in
  let f = Coverage.register_fn t ~name:"f" ~succ:cov_geom in
  Coverage.enter f 0;
  Coverage.transition f ~src:0 ~dst:2;
  t

let cov_c () =
  let t = Coverage.create () in
  let g = Coverage.register_fn t ~name:"g" ~succ:[| [||] |] in
  Coverage.enter g 0;
  t

let cov_equal msg x y =
  Alcotest.(check bool) msg true (Coverage.snapshot x = Coverage.snapshot y)

let test_coverage_merge_associative () =
  let l = cov_a () in
  Coverage.merge l (cov_b ());
  Coverage.merge l (cov_c ());
  let bc = cov_b () in
  Coverage.merge bc (cov_c ());
  let r = cov_a () in
  Coverage.merge r bc;
  cov_equal "associativity" l r;
  (* overlapping arrays added element-wise, disjoint function appended *)
  let tt = Coverage.totals l in
  Alcotest.(check int) "2 functions" 2 tt.Coverage.tt_functions;
  match
    List.find_opt (fun s -> s.Coverage.cv_func = "f") (Coverage.snapshot l)
  with
  | Some s ->
      Alcotest.(check bool) "blocks added" true
        (s.Coverage.cv_block_hits = [| 2; 1; 2 |]);
      (* flat edges: 0->1, 0->2, 1->2 *)
      Alcotest.(check bool) "edges added" true
        (s.Coverage.cv_edge_hits = [| 1; 1; 1 |])
  | None -> Alcotest.fail "function f lost in merge"

let test_coverage_merge_order_insensitive () =
  let ab = cov_a () in
  Coverage.merge ab (cov_b ());
  let ba = cov_b () in
  Coverage.merge ba (cov_a ());
  cov_equal "overlapping, both orders" ab ba;
  let ac = cov_a () in
  Coverage.merge ac (cov_c ());
  let ca = cov_c () in
  Coverage.merge ca (cov_a ());
  cov_equal "disjoint, both orders" ac ca

let test_coverage_merge_self_rejected () =
  let t = cov_a () in
  Alcotest.check_raises "merge t t"
    (Invalid_argument "Coverage.merge: dst and src are the same") (fun () ->
      Coverage.merge t t)

(* coverage-carrying Obs contexts merge through Obs.merge too, including
   promotion of a coverage-less destination *)
let test_obs_merge_carries_coverage () =
  let src = Obs.create ~coverage:true () in
  (match src.Obs.coverage with
  | Some cov ->
      let f = Coverage.register_fn cov ~name:"f" ~succ:cov_geom in
      Coverage.enter f 0
  | None -> Alcotest.fail "coverage requested but absent");
  let dst = Obs.create () in
  Obs.merge dst src;
  match dst.Obs.coverage with
  | Some cov ->
      Alcotest.(check int) "function arrived" 1
        (Coverage.totals cov).Coverage.tt_functions
  | None -> Alcotest.fail "merge dropped the coverage registry"

(* ------------------------------------------------------------------ *)
(* 3c. persistent profiles are -j invariant                            *)
(* ------------------------------------------------------------------ *)

let profile_at jobs =
  let h = Harness.create ~jobs ~obs:(Obs.create ~coverage:true ()) () in
  let (_ : (string * E.report) list) =
    E.run_reports ~benchmarks:[ Lazy.force lbm ] h (experiments ())
  in
  Mi_obs.Json.to_string
    (Mi_obs.Profile.to_json (Mi_obs.Profile.of_obs (Harness.obs h)))

let test_profile_byte_identical () =
  let p1 = profile_at 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "-j %d profile bytes" jobs)
        p1 (profile_at jobs))
    [ 4 ]

(* ------------------------------------------------------------------ *)
(* 4. sorted-array counter lookup                                      *)
(* ------------------------------------------------------------------ *)

let test_counter_lookup () =
  let b = Lazy.force lbm in
  let h = Harness.create ~jobs:1 () in
  let r = Harness.expect_ok b (Harness.run h E.sb_opt b) in
  let alist = Harness.counters_alist r in
  Alcotest.(check bool) "has counters" true (alist <> []);
  (* binary search agrees with the association list on every key *)
  List.iter
    (fun (k, v) -> Alcotest.(check int) k v (Harness.counter r k))
    alist;
  Alcotest.(check int) "absent counter is 0" 0
    (Harness.counter r "no.such.counter");
  Alcotest.(check int) "absent (before first key) is 0" 0
    (Harness.counter r "");
  Alcotest.(check int) "absent (after last key) is 0" 0
    (Harness.counter r "zzzz.unknown")

let () =
  Alcotest.run "parallel"
    [
      ( "determinism",
        [
          Alcotest.test_case "reports byte-identical at -j 1/2/8" `Slow
            test_byte_identical_reports;
        ] );
      ( "cache",
        [
          Alcotest.test_case "exact hit/miss accounting" `Quick
            test_cache_accounting;
          Alcotest.test_case "disk cache across sessions" `Quick
            test_disk_cache_across_sessions;
          Alcotest.test_case "corrupted entries detected, never replayed"
            `Quick test_disk_cache_corruption;
        ] );
      ( "obs-merge",
        [
          Alcotest.test_case "associative" `Quick test_merge_associative;
          Alcotest.test_case "order-insensitive" `Quick
            test_merge_order_insensitive;
          Alcotest.test_case "self-merge rejected" `Quick
            test_merge_self_rejected;
        ] );
      ( "coverage-merge",
        [
          Alcotest.test_case "associative" `Quick
            test_coverage_merge_associative;
          Alcotest.test_case "order-insensitive" `Quick
            test_coverage_merge_order_insensitive;
          Alcotest.test_case "self-merge rejected" `Quick
            test_coverage_merge_self_rejected;
          Alcotest.test_case "Obs.merge carries coverage" `Quick
            test_obs_merge_carries_coverage;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "profile bytes identical at -j 1/4" `Slow
            test_profile_byte_identical;
        ] );
      ( "counters",
        [ Alcotest.test_case "sorted-array lookup" `Quick test_counter_lookup ]
      );
    ]
