(* Shrinker tests: structural reduction under a failure predicate is
   deterministic, respects the predicate at every step, and — driven by
   the campaign engine with an injected [del-check] plan — turns a
   seeded known failure into a bounded-size repro on disk. *)

module Bench = Mi_bench_kit.Bench
module Gen = Mi_fuzz.Gen
module Shrink = Mi_fuzz.Shrink
module Fuzz = Mi_fuzz.Fuzz
module Fault = Mi_faultkit.Fault

let code sources =
  String.concat "\n" (List.map (fun (s : Bench.source) -> s.Bench.code) sources)

(* {1 Unit: minimize against a syntactic predicate} *)

let big_src =
  "int g[10];\n\
   long helper(long x) {\n\
  \  long acc = x * 3;\n\
  \  acc += 7;\n\
  \  return acc;\n\
   }\n\
   int main(void) {\n\
  \  long acc = 0;\n\
  \  long a5[4];\n\
  \  long i;\n\
  \  for (i = 0; i < 4; i++) a5[i] = i * 2;\n\
  \  acc += helper(a5[1]);\n\
  \  g[3] = 9;\n\
  \  a5[33] = 1;\n\
  \  print_int(acc);\n\
  \  return 0;\n\
   }\n"

let test_minimize_keeps_predicate () =
  let pred srcs =
    (* the defective access must survive every reduction step *)
    let c = code srcs in
    let needle = "a5[33]" in
    let rec find i =
      i + String.length needle <= String.length c
      && (String.sub c i (String.length needle) = needle || find (i + 1))
    in
    find 0
  in
  let sources = [ Bench.src "main" big_src ] in
  let min1 = Shrink.minimize ~pred sources in
  Alcotest.(check bool) "predicate holds on result" true (pred min1);
  let lines src =
    List.fold_left
      (fun acc (s : Bench.source) -> acc + Shrink.line_count s.Bench.code)
      0 src
  in
  Alcotest.(check bool)
    (Printf.sprintf "shrank (%d -> %d lines)" (lines sources) (lines min1))
    true
    (lines min1 < lines sources);
  Alcotest.(check bool)
    (Printf.sprintf "bounded repro (%d lines)" (lines min1))
    true (lines min1 <= 10);
  (* deterministic: a second run reduces to the same bytes *)
  let min2 = Shrink.minimize ~pred sources in
  Alcotest.(check string) "deterministic" (code min1) (code min2);
  (* every emitted candidate parses: the result must round-trip *)
  List.iter
    (fun (s : Bench.source) ->
      ignore (Mi_minic.Cparse.parse_program s.Bench.code))
    min1

let test_minimize_bails_when_predicate_fails () =
  let sources = [ Bench.src "main" big_src ] in
  let out = Shrink.minimize ~pred:(fun _ -> false) sources in
  Alcotest.(check string) "returns input unchanged" (code sources) (code out)

(* {1 End-to-end: del-check inject -> missed violation -> shrunk repro} *)

let rm_rf dir =
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

let read_file path = In_channel.with_open_text path In_channel.input_all

let faults =
  match Fault.parse "del-check" with
  | Ok p -> p
  | Error e -> failwith e

let run_seeded_campaign dir =
  rm_rf dir;
  let r =
    Fuzz.run
      (Fuzz.campaign ~jobs:2 ~faults ~repro_dir:dir ~seeds:(7, 7)
         ~mutants:(7, 7) ())
  in
  (* deleting every check makes every spatial build — plain and
     check-eliminated — miss the mutant; the temporal checker stays
     whitelisted as out of scope *)
  let _, _, missed = Fuzz.count_mutants r.Fuzz.r_mutants in
  Alcotest.(check int) "all spatial detections missed" 4 missed;
  Alcotest.(check bool) "campaign not ok" false (Fuzz.ok r);
  r

let test_injected_failure_shrinks () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "mi-fuzz-shrink1" in
  let r = run_seeded_campaign dir in
  (match r.Fuzz.r_repros with
  | [] -> Alcotest.fail "no repro emitted"
  | repros ->
      List.iter
        (fun (rp : Fuzz.repro) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s shrunk" rp.Fuzz.rp_slug)
            true rp.Fuzz.rp_shrunk;
          Alcotest.(check bool)
            (Printf.sprintf "%s bounded (%d lines)" rp.Fuzz.rp_slug
               rp.Fuzz.rp_lines)
            true
            (rp.Fuzz.rp_lines <= 25);
          let d = Filename.concat dir rp.Fuzz.rp_slug in
          Alcotest.(check bool) "INFO.txt present" true
            (Sys.file_exists (Filename.concat d "INFO.txt"));
          Alcotest.(check bool) "main.c present" true
            (Sys.file_exists (Filename.concat d "main.c")))
        repros);
  rm_rf dir

(* {1 Property: minimize preserves the oracle verdict on evolved
   offspring}

   The soak driver breeds spliced/grown offspring and shrinks whatever
   fails; the shrinker must preserve the oracle's verdict through the
   extra structural noise.  Build the witness the same way the soak
   does: mutate the parent first (while the text anchor is intact),
   then splice a donor in and grow the result — the injected
   out-of-bounds access rides along.  Under [del-check] every spatial
   build misses it; {!Fuzz.mutant_pred} is exactly that verdict, and
   minimization must keep it while landing a bounded repro. *)
let test_offspring_minimize_preserves_verdict () =
  let module Gen = Mi_fuzz.Gen in
  let module Oracle = Mi_fuzz.Oracle in
  let module Harness = Mi_bench_kit.Harness in
  let p = Gen.generate ~seed:7 () in
  let m = Gen.mutate p ~mseed:7 in
  Alcotest.(check bool) "seed 7 draws a precise-bounds mutant" true
    (m.Gen.m_sb_whitelist = None);
  let spliced =
    match
      Gen.splice ~acceptor:m.Gen.m_sources
        ~donor:(Gen.generate ~seed:8 ()).Gen.p_sources ~mseed:707
    with
    | Some s -> s
    | None -> Alcotest.fail "mutant did not accept a donor splice"
  in
  let offspring =
    match Gen.grow ~sources:spliced ~mseed:707 with
    | Some g -> g
    | None -> spliced
  in
  let h = Harness.create ~jobs:1 ~faults () in
  let bench = Oracle.bench_of_sources ~name:"offspring-m" offspring in
  let results =
    Harness.run_jobs h
      (List.map (fun (_, s) -> (s, bench)) Oracle.mutant_variants)
  in
  let mr = Oracle.judge_mutant m results in
  let f =
    match mr.Oracle.mr_findings with
    | f :: _ -> f
    | [] -> Alcotest.fail "del-check did not produce a missed detection"
  in
  let pred = Fuzz.mutant_pred h ~faults mr f in
  Alcotest.(check bool) "verdict holds on the unshrunk offspring" true
    (pred offspring);
  let min1 = Shrink.minimize ~pred offspring in
  Alcotest.(check bool) "verdict preserved by minimization" true (pred min1);
  let main_lines srcs =
    match
      List.find_opt (fun (s : Bench.source) -> s.Bench.src_name = "main") srcs
    with
    | Some s -> Shrink.line_count s.Bench.code
    | None -> 0
  in
  Alcotest.(check bool)
    (Printf.sprintf "bounded repro (%d lines)" (main_lines min1))
    true
    (main_lines min1 <= 25);
  Alcotest.(check bool)
    (Printf.sprintf "shrank (%d -> %d lines)" (main_lines offspring)
       (main_lines min1))
    true
    (main_lines min1 < main_lines offspring);
  let min2 = Shrink.minimize ~pred offspring in
  Alcotest.(check string) "deterministic" (code min1) (code min2);
  List.iter
    (fun (s : Bench.source) ->
      ignore (Mi_minic.Cparse.parse_program s.Bench.code))
    min1

let test_shrunk_repro_deterministic () =
  let dir1 = Filename.concat (Filename.get_temp_dir_name ()) "mi-fuzz-shrink2" in
  let dir2 = Filename.concat (Filename.get_temp_dir_name ()) "mi-fuzz-shrink3" in
  let r1 = run_seeded_campaign dir1 in
  let r2 = run_seeded_campaign dir2 in
  let slugs r =
    List.map (fun (rp : Fuzz.repro) -> rp.Fuzz.rp_slug) r.Fuzz.r_repros
  in
  Alcotest.(check (list string)) "same repro slugs" (slugs r1) (slugs r2);
  List.iter
    (fun slug ->
      let a = read_file (Filename.concat (Filename.concat dir1 slug) "main.c") in
      let b = read_file (Filename.concat (Filename.concat dir2 slug) "main.c") in
      Alcotest.(check string) (slug ^ " minimized bytes") a b)
    (slugs r1);
  rm_rf dir1;
  rm_rf dir2

let () =
  Alcotest.run "fuzz-shrink"
    [
      ( "minimize",
        [
          Alcotest.test_case "reduces while predicate holds" `Quick
            test_minimize_keeps_predicate;
          Alcotest.test_case "bails when predicate never holds" `Quick
            test_minimize_bails_when_predicate_fails;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "del-check inject shrinks to bounded repro"
            `Slow test_injected_failure_shrinks;
          Alcotest.test_case "minimize preserves verdict on evolved offspring"
            `Slow test_offspring_minimize_preserves_verdict;
          Alcotest.test_case "minimized repro deterministic" `Slow
            test_shrunk_repro_deterministic;
        ] );
    ]
