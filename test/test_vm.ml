(* Tests for the VM: memory, allocator, interpreter semantics. *)

open Mi_vm
open Mi_mir

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

let addr0 = Layout.heap_base

let test_mem_roundtrip_widths () =
  let m = Memory.create () in
  List.iter
    (fun (w, v) ->
      Memory.store m addr0 w v;
      Alcotest.(check int) (Printf.sprintf "width %d" w) v (Memory.load m addr0 w))
    [ (1, 0xAB); (2, 0xBEEF); (4, 0x7EADBEEF); (8, 0x123456789ABCDE) ]

let test_mem_little_endian () =
  let m = Memory.create () in
  Memory.store m addr0 4 0x11223344;
  Alcotest.(check int) "lowest byte first" 0x44 (Memory.load8 m addr0);
  Alcotest.(check int) "highest byte last" 0x11 (Memory.load8 m (addr0 + 3))

let test_mem_page_straddle () =
  let m = Memory.create () in
  let a = addr0 + Layout.page_size - 3 in
  Memory.store m a 8 0x1122334455667788;
  Alcotest.(check int) "straddling load" 0x1122334455667788 (Memory.load m a 8)

let prop_mem_f64_roundtrip =
  QCheck.Test.make ~name:"f64 store/load roundtrip" ~count:500 QCheck.float
    (fun f ->
      let m = Memory.create () in
      Memory.store_f64 m addr0 f;
      let f' = Memory.load_f64 m addr0 in
      Int64.bits_of_float f = Int64.bits_of_float f')

let test_mem_f64_page_straddle () =
  let m = Memory.create () in
  let a = addr0 + Layout.page_size - 5 in
  Memory.store_f64 m a (-2.5);
  Alcotest.(check (float 0.0)) "straddling f64" (-2.5) (Memory.load_f64 m a)

let test_mem_null_guard () =
  let m = Memory.create () in
  Alcotest.check_raises "null deref faults" (Memory.Fault (0, "access to null guard page"))
    (fun () -> ignore (Memory.load m 0 8))

let test_mem_copy_overlap () =
  let m = Memory.create () in
  Memory.store_bytes m addr0 "abcdef";
  Memory.copy m ~dst:(addr0 + 2) ~src:addr0 4;
  Alcotest.(check string) "memmove semantics fwd" "ababcd"
    (String.init 6 (fun i -> Char.chr (Memory.load8 m (addr0 + i))));
  Memory.store_bytes m addr0 "abcdef";
  Memory.copy m ~dst:addr0 ~src:(addr0 + 2) 4;
  Alcotest.(check string) "memmove semantics bwd" "cdefef"
    (String.init 6 (fun i -> Char.chr (Memory.load8 m (addr0 + i))))

let test_mem_cstring () =
  let m = Memory.create () in
  Memory.store_cstring m addr0 "hello";
  Alcotest.(check string) "cstring roundtrip" "hello" (Memory.load_cstring m addr0)

(* --- cross-page consistency --------------------------------------------
   The slow paths (accesses and block ops straddling a page boundary)
   must be bit-identical to the in-page fast paths; these pin the
   page-chunked copy/fill rewrite against a byte-at-a-time reference. *)

(* addresses around a page boundary: every straddle of [width] plus two
   fully-contained controls *)
let straddles width =
  let edge = addr0 + (3 * Layout.page_size) in
  List.init (width + 1) (fun i -> edge - i) @ [ edge + 8; edge - 64 ]

let test_mem_cross_page_widths () =
  List.iter
    (fun width ->
      List.iter
        (fun a ->
          let m = Memory.create () in
          let v = 0x1122334455667788 land ((1 lsl (8 * width)) - 1) in
          Memory.store m a width v;
          Alcotest.(check int)
            (Printf.sprintf "store/load width %d at %#x" width a)
            v (Memory.load m a width);
          (* byte-assembled view agrees with the wide load *)
          let assembled = ref 0 in
          for i = width - 1 downto 0 do
            assembled := (!assembled lsl 8) lor Memory.load8 m (a + i)
          done;
          Alcotest.(check int)
            (Printf.sprintf "byte view width %d at %#x" width a)
            v !assembled)
        (straddles width))
    [ 1; 2; 4; 8 ]

let test_mem_cross_page_i64_full () =
  let pat = 0xDEADBEEFCAFEBABEL in
  List.iter
    (fun a ->
      let m = Memory.create () in
      Memory.store_i64_full m a pat;
      Alcotest.(check int64)
        (Printf.sprintf "i64_full at %#x" a)
        pat (Memory.load_i64_full m a);
      (* the sign bit must survive even when split across pages *)
      let m2 = Memory.create () in
      Memory.store_f64 m2 a (-1.0);
      Alcotest.(check (float 0.0))
        (Printf.sprintf "negative f64 at %#x" a)
        (-1.0) (Memory.load_f64 m2 a))
    (straddles 8)

(* reference memmove: the pre-chunking byte-at-a-time loops *)
let ref_copy m ~dst ~src len =
  if dst <= src then
    for i = 0 to len - 1 do
      Memory.store8 m (dst + i) (Memory.load8 m (src + i))
    done
  else
    for i = len - 1 downto 0 do
      Memory.store8 m (dst + i) (Memory.load8 m (src + i))
    done

let mem_with_pattern base n =
  let m = Memory.create () in
  for i = 0 to n - 1 do
    Memory.store8 m (base + i) ((i * 31 + 7) land 0xff)
  done;
  m

let read_back m base n =
  String.init n (fun i -> Char.chr (Memory.load8 m (base + i)))

let test_mem_copy_cross_page_overlap () =
  (* overlapping copies whose source and destination straddle page
     boundaries, both directions, vs the byte-loop reference *)
  let base = addr0 + (2 * Layout.page_size) - 300 in
  let n = 600 (* spans the boundary *) in
  List.iter
    (fun (doff, soff, len) ->
      let m = mem_with_pattern base n in
      let r = mem_with_pattern base n in
      Memory.copy m ~dst:(base + doff) ~src:(base + soff) len;
      ref_copy r ~dst:(base + doff) ~src:(base + soff) len;
      Alcotest.(check string)
        (Printf.sprintf "copy dst+%d src+%d len %d" doff soff len)
        (read_back r base n) (read_back m base n);
      Alcotest.(check int)
        "same pages touched" r.Memory.page_count m.Memory.page_count)
    [
      (40, 0, 500);  (* forward-overlap, crosses the page edge *)
      (0, 40, 500);  (* backward-overlap, crosses the page edge *)
      (1, 0, 299);   (* single-byte shift up to the edge *)
      (0, 1, 299);
      (250, 250, 300);  (* dst = src, straddling *)
      (0, 300, 300);    (* disjoint, src straddles *)
      (300, 0, 300);    (* disjoint, dst straddles *)
    ]

let prop_mem_copy_matches_reference =
  QCheck.Test.make ~name:"chunked copy == byte-loop reference" ~count:300
    QCheck.(triple (int_bound 700) (int_bound 700) (int_bound 900))
    (fun (doff, soff, len) ->
      let base = addr0 + Layout.page_size - 350 in
      let n = 1700 in
      let m = mem_with_pattern base n in
      let r = mem_with_pattern base n in
      Memory.copy m ~dst:(base + doff) ~src:(base + soff) len;
      ref_copy r ~dst:(base + doff) ~src:(base + soff) len;
      read_back m base n = read_back r base n)

let test_mem_fill_cross_page () =
  let base = addr0 + Layout.page_size - 5 in
  let m = Memory.create () in
  Memory.store8 m (base - 1) 0x77;
  Memory.store8 m (base + 10) 0x88;
  Memory.fill m ~dst:base ~byte:0xAB 10;
  for i = 0 to 9 do
    Alcotest.(check int) "filled" 0xAB (Memory.load8 m (base + i))
  done;
  Alcotest.(check int) "byte before intact" 0x77 (Memory.load8 m (base - 1));
  Alcotest.(check int) "byte after intact" 0x88 (Memory.load8 m (base + 10))

(* ------------------------------------------------------------------ *)
(* Standard allocator                                                  *)
(* ------------------------------------------------------------------ *)

let test_std_alloc_distinct () =
  let st = State.create () in
  let a = State.std_malloc st 100 and b = State.std_malloc st 100 in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check bool) "no overlap" true (abs (a - b) >= 100)

let test_std_alloc_reuse_after_free () =
  let st = State.create () in
  let a = State.std_malloc st 64 in
  State.std_free st a;
  let b = State.std_malloc st 64 in
  Alcotest.(check int) "reuses freed block" a b

let test_std_free_unknown () =
  let st = State.create () in
  Alcotest.check_raises "free of garbage traps"
    (State.Trap (Printf.sprintf "free of non-allocated %#x" 12345678))
    (fun () -> State.std_free st 12345678)

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)
(* ------------------------------------------------------------------ *)

let run_src ?(fuel = 50_000_000) src =
  let m = Parser.parse_module src in
  Mi_analysis.Domcheck.assert_valid m;
  let st = State.create ~fuel () in
  Builtins.install st;
  let img = Interp.load st [ m ] in
  Interp.run st img

let check_exit src expected_code expected_out =
  let r = run_src src in
  (match r.Interp.outcome with
  | Interp.Exited n -> Alcotest.(check int) "exit code" expected_code n
  | Interp.Trapped m -> Alcotest.fail ("trap: " ^ m)
  | Interp.Safety_violation _ -> Alcotest.fail "unexpected violation"
  | Interp.Exhausted budget ->
      Alcotest.fail (Printf.sprintf "fuel budget of %d exhausted" budget));
  Alcotest.(check string) "output" expected_out r.Interp.output

let test_interp_recursion () =
  check_exit
    {|
module "fib"
func @fib(%n.0 : i64) -> i64 {
entry:
  %c.1 = icmp slt i64 %n.0, 2:i64
  cbr %c.1, base, rec
base:
  ret %n.0
rec:
  %a.2 = sub i64 %n.0, 1:i64
  %b.3 = call @fib(%a.2) : i64
  %d.4 = sub i64 %n.0, 2:i64
  %e.5 = call @fib(%d.4) : i64
  %f.6 = add i64 %b.3, %e.5
  ret %f.6
}
func @main() -> i64 {
entry:
  %r.0 = call @fib(15:i64) : i64
  call @print_int(%r.0)
  ret 0:i64
}
|}
    0 "610"

(* the classic phi-swap requires parallel-copy semantics *)
let test_interp_phi_parallel_copy () =
  check_exit
    {|
module "swap"
func @main() -> i64 {
entry:
  br loop
loop:
  %a.1 = phi i64 [entry 1:i64] [loop %b.2]
  %b.2 = phi i64 [entry 2:i64] [loop %a.1]
  %i.3 = phi i64 [entry 0:i64] [loop %i2.4]
  %i2.4 = add i64 %i.3, 1:i64
  %c.5 = icmp slt i64 %i2.4, 5:i64
  cbr %c.5, loop, done
done:
  call @print_int(%a.1)
  call @print_int(%b.2)
  ret 0:i64
}
|}
    (* four back-edge swaps return to (1,2); a sequential (buggy) copy
       would collapse both phis to the same value *)
    0 "12"

let test_interp_fuel () =
  let r =
    run_src ~fuel:1000
      {|
module "inf"
func @main() -> i64 {
entry:
  br loop
loop:
  br loop
}
|}
  in
  match r.Interp.outcome with
  | Interp.Exhausted budget ->
      Alcotest.(check int) "exhausted at the budget" 1000 budget
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_interp_div_by_zero () =
  let r =
    run_src
      {|
module "div"
func @main() -> i64 {
entry:
  %z.0 = add i64 0:i64, 0:i64
  %x.1 = sdiv i64 10:i64, %z.0
  ret %x.1
}
|}
  in
  match r.Interp.outcome with
  | Interp.Trapped "integer division by zero" -> ()
  | o ->
      Alcotest.fail
        (match o with
        | Interp.Exited n -> "exited " ^ string_of_int n
        | _ -> "wrong trap")

let test_interp_stack_overflow () =
  let r =
    run_src
      {|
module "so"
func @rec(%n.0 : i64) -> i64 {
entry:
  %buf.1 = alloca 8192 align 8
  store i64 %n.0, %buf.1
  %m.2 = add i64 %n.0, 1:i64
  %r.3 = call @rec(%m.2) : i64
  ret %r.3
}
func @main() -> i64 {
entry:
  %r.0 = call @rec(0:i64) : i64
  ret %r.0
}
|}
  in
  match r.Interp.outcome with
  | Interp.Trapped "stack overflow" -> ()
  | _ -> Alcotest.fail "expected stack overflow"

let test_interp_globals_and_linking () =
  let unit_a =
    Parser.parse_module
      {|
module "a"
extern global @shared : 16 align 8
extern func @get() -> i64
func @main() -> i64 {
entry:
  %v.0 = call @get() : i64
  %p.1 = gep @shared [1 x 8:i64]
  %w.2 = load i64 %p.1
  %s.3 = add i64 %v.0, %w.2
  call @print_int(%s.3)
  ret 0:i64
}
|}
  in
  let unit_b =
    Parser.parse_module
      {|
module "b"
global @shared : 16 align 8 {
  bytes "\x2a\x00\x00\x00\x00\x00\x00\x00"
  bytes "\x09\x00\x00\x00\x00\x00\x00\x00"
}
func @get() -> i64 {
entry:
  %v.0 = load i64 @shared
  ret %v.0
}
|}
  in
  let st = State.create () in
  Builtins.install st;
  let img = Interp.load st [ unit_a; unit_b ] in
  let r = Interp.run st img in
  (match r.Interp.outcome with
  | Interp.Exited 0 -> ()
  | _ -> Alcotest.fail "run failed");
  Alcotest.(check string) "42 + 9" "51" r.Interp.output

let test_interp_duplicate_symbol () =
  let u = {|
module "x"
func @f() -> void {
entry:
  ret
}
|} in
  let m1 = Parser.parse_module u and m2 = Parser.parse_module u in
  Alcotest.check_raises "duplicate definition"
    (Interp.Link_error "duplicate definition of function f") (fun () ->
      ignore (Interp.link [ m1; m2 ]))

let test_interp_cycles_monotonic () =
  let src =
    {|
module "c"
func @main() -> i64 {
entry:
  %x.0 = mul i64 3:i64, 4:i64
  ret %x.0
}
|}
  in
  let r = run_src src in
  Alcotest.(check bool) "counts cycles" true (r.Interp.cycles > 0);
  Alcotest.(check bool) "counts steps" true (r.Interp.steps > 0)

let test_gep_negative_stride () =
  check_exit
    {|
module "g"
func @main() -> i64 {
entry:
  %b.0 = alloca 32 align 8
  %p.1 = gep %b.0 [8 x 3:i64]
  store i64 77:i64, %b.0
  %q.2 = gep %p.1 [-8 x 3:i64]
  %v.3 = load i64 %q.2
  call @print_int(%v.3)
  ret 0:i64
}
|}
    0 "77"

let () =
  Alcotest.run "vm"
    [
      ( "memory",
        [
          Alcotest.test_case "widths" `Quick test_mem_roundtrip_widths;
          Alcotest.test_case "little endian" `Quick test_mem_little_endian;
          Alcotest.test_case "page straddle" `Quick test_mem_page_straddle;
          Alcotest.test_case "f64 page straddle" `Quick test_mem_f64_page_straddle;
          Alcotest.test_case "null guard" `Quick test_mem_null_guard;
          Alcotest.test_case "copy overlap" `Quick test_mem_copy_overlap;
          Alcotest.test_case "cstring" `Quick test_mem_cstring;
          Alcotest.test_case "cross-page widths" `Quick
            test_mem_cross_page_widths;
          Alcotest.test_case "cross-page i64_full" `Quick
            test_mem_cross_page_i64_full;
          Alcotest.test_case "cross-page copy overlap" `Quick
            test_mem_copy_cross_page_overlap;
          QCheck_alcotest.to_alcotest prop_mem_copy_matches_reference;
          Alcotest.test_case "cross-page fill" `Quick test_mem_fill_cross_page;
          QCheck_alcotest.to_alcotest prop_mem_f64_roundtrip;
        ] );
      ( "allocator",
        [
          Alcotest.test_case "distinct blocks" `Quick test_std_alloc_distinct;
          Alcotest.test_case "reuse after free" `Quick test_std_alloc_reuse_after_free;
          Alcotest.test_case "free of garbage" `Quick test_std_free_unknown;
        ] );
      ( "interp",
        [
          Alcotest.test_case "recursion" `Quick test_interp_recursion;
          Alcotest.test_case "phi parallel copy" `Quick test_interp_phi_parallel_copy;
          Alcotest.test_case "fuel" `Quick test_interp_fuel;
          Alcotest.test_case "division by zero" `Quick test_interp_div_by_zero;
          Alcotest.test_case "stack overflow" `Quick test_interp_stack_overflow;
          Alcotest.test_case "linking two units" `Quick test_interp_globals_and_linking;
          Alcotest.test_case "duplicate symbols" `Quick test_interp_duplicate_symbol;
          Alcotest.test_case "cycle accounting" `Quick test_interp_cycles_monotonic;
          Alcotest.test_case "negative gep stride" `Quick test_gep_negative_stride;
        ] );
    ]
