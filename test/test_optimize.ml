(* Tests for the check-elimination passes: the dominator-sweep
   dominance elimination (vs a naive all-pairs reference), the static
   in-bounds constraint pass, loop-invariant check hoisting with range
   widening, the per-checker capability veto, and the coupling of
   hoisted checks with the fault/mutation machinery. *)

open Mi_mir
module I = Mi_core.Instrument
module Itarget = Mi_core.Itarget
module Optimize = Mi_core.Optimize
module Config = Mi_core.Config
module Edit = Mi_core.Edit
module Fault = Mi_faultkit.Fault
module Cfg = Mi_analysis.Cfg
module Dom = Mi_analysis.Dom

let parse src =
  let m = Parser.parse_module src in
  Mi_analysis.Domcheck.assert_valid m;
  m

let checks_of m name =
  let f = Irmod.find_func_exn m name in
  (f, (Itarget.discover m f).Itarget.checks)

let anchor (c : Itarget.check) =
  (c.Itarget.c_anchor.Edit.ablock, c.Itarget.c_anchor.Edit.apos)

let sb_all = Config.optimized_full Config.softbound

let static_only =
  { Config.softbound with Config.opt_static = true }

let hoist_only = { Config.softbound with Config.opt_hoist = true }

let count_calls (m : Irmod.t) name =
  List.fold_left
    (fun acc (f : Func.t) ->
      List.fold_left
        (fun acc (b : Block.t) ->
          acc
          + List.length
              (List.filter
                 (fun (i : Instr.t) ->
                   match i.op with
                   | Instr.Call (c, _) -> String.equal c name
                   | _ -> false)
                 b.Block.body))
        acc f.blocks)
    0 m.funcs

(* ------------------------------------------------------------------ *)
(* Dominance sweep vs a naive all-pairs reference                      *)
(* ------------------------------------------------------------------ *)

(* The specification the sweep must match: a check is removed iff some
   other check on the same pointer, with at least its width, strictly
   dominates it.  (A removed dominator still shields its subtree: its
   own dominator does, transitively.) *)
let naive_dominance (f : Func.t) (checks : Itarget.check list) =
  let cfg = Cfg.build f in
  let dom = Dom.build cfg in
  let dominates (d : Itarget.check) (c : Itarget.check) =
    let bd = Cfg.index cfg d.Itarget.c_anchor.Edit.ablock
    and bc = Cfg.index cfg c.Itarget.c_anchor.Edit.ablock in
    if bd = bc then d.Itarget.c_anchor.Edit.apos < c.Itarget.c_anchor.Edit.apos
    else Dom.dominates dom bd bc
  in
  List.filter
    (fun c ->
      not
        (List.exists
           (fun d ->
             anchor d <> anchor c
             && Optimize.value_key d.Itarget.c_ptr
                = Optimize.value_key c.Itarget.c_ptr
             && d.Itarget.c_width >= c.Itarget.c_width
             && dominates d c)
           checks))
    checks

let diamond_src =
  {|
module "d"
func @f(%p.0 : ptr, %q.1 : ptr, %c.2 : i1) -> i64 {
entry:
  %a.3 = load i32 %p.0
  cbr %c.2, then, else
then:
  %b.4 = load i64 %p.0
  %b2.5 = load i64 %p.0
  br join
else:
  %e.6 = load i32 %p.0
  %e2.7 = load i64 %q.1
  br join
join:
  %j.8 = load i64 %p.0
  %j2.9 = load i32 %p.0
  %k.10 = load i64 %q.1
  ret %j.8
}
|}

let chain_src =
  {|
module "c"
func @f(%p.0 : ptr) -> i64 {
entry:
  %a.1 = load i32 %p.0
  %b.2 = load i64 %p.0
  %c.3 = load i32 %p.0
  %d.4 = load i64 %p.0
  %e.5 = load i32 %p.0
  ret %d.4
}
|}

let test_sweep_matches_naive () =
  List.iter
    (fun src ->
      let m = parse src in
      let f, checks = checks_of m "f" in
      let fast = List.map anchor (Optimize.dominance_eliminate f checks) in
      let slow = List.map anchor (naive_dominance f checks) in
      Alcotest.(check (list (pair string int))) "sweep = naive" slow fast)
    [ diamond_src; chain_src ]

let test_diamond_dominance () =
  let m = parse diamond_src in
  let f, checks = checks_of m "f" in
  let kept = Optimize.dominance_eliminate f checks in
  (* %a.3 (i32) survives; %b.4 survives (wider than %a.3), shields
     %b2.5; %e.6 removed (entry i32 dominates); %e2.7 survives (first
     %q.1 check on its path); %j.8 survives (neither branch dominates
     join); %j2.9 removed (entry i32); %k.10 survives (%e2.7 does not
     dominate join) *)
  Alcotest.(check int) "diamond kept" 5 (List.length kept)

(* ------------------------------------------------------------------ *)
(* Static in-bounds elimination                                        *)
(* ------------------------------------------------------------------ *)

let static_src =
  {|
module "s"
global @gd : 16 align 8 {
  zero 16
}
func @f(%n.0 : i64) -> i64 {
entry:
  %a.1 = alloca 80 align 8
  br header
header:
  %i.2 = phi i64 [entry 0:i64] [body %n.3]
  %c.4 = icmp slt i64 %i.2, 10:i64
  cbr %c.4, body, exit
body:
  %g.5 = gep %a.1 [8 x %i.2]
  store i64 %i.2, %g.5
  %n.3 = add i64 %i.2, 1:i64
  br header
exit:
  %t.6 = load i64 %a.1
  %gg.7 = gep @gd [8 x 1:i64]
  %u.8 = load i64 %gg.7
  %bad.9 = gep @gd [8 x 2:i64]
  %v.10 = load i64 %bad.9
  %dyn.11 = gep %a.1 [8 x %n.0]
  %w.12 = load i64 %dyn.11
  %r.13 = add i64 %t.6, %u.8
  ret %r.13
}
|}

let test_static_elimination () =
  let m = parse static_src in
  let f, checks = checks_of m "f" in
  Alcotest.(check int) "checks found" 5 (List.length checks);
  let r = Optimize.run static_only m f checks in
  (* provable: the loop store (iv in [0,9], 8*9+8 <= 80), the direct
     load of %a.1, and the global load at offset 8 (8+8 <= 16).
     not provable: @gd offset 16 (16+8 > 16) and the %n.0-indexed gep
     (unknown interval). *)
  Alcotest.(check int) "removed statically" 3 r.Optimize.stats.Optimize.removed_static;
  Alcotest.(check int) "kept" 2 (List.length r.Optimize.kept);
  Alcotest.(check int) "nothing hoisted" 0 (List.length r.Optimize.hoisted)

let test_static_loaded_pointer_kept () =
  (* a pointer loaded from memory has unknown provenance: never chased *)
  let m =
    parse
      {|
module "lp"
func @f() -> i64 {
entry:
  %a.0 = alloca 16 align 8
  %q.1 = load ptr %a.0
  %v.2 = load i64 %q.1
  ret %v.2
}
|}
  in
  let f, checks = checks_of m "f" in
  let r = Optimize.run static_only m f checks in
  (* the load of %a.0 itself is provable; the load through the loaded
     pointer %q.1 must survive *)
  Alcotest.(check int) "one removed" 1 r.Optimize.stats.Optimize.removed_static;
  (match r.Optimize.kept with
  | [ c ] ->
      Alcotest.(check string) "loaded-pointer check kept" "q"
        (match c.Itarget.c_ptr with
        | Value.Var x -> String.sub x.Value.vname 0 1
        | _ -> "?")
  | l -> Alcotest.failf "expected 1 kept check, got %d" (List.length l));
  ignore m

(* ------------------------------------------------------------------ *)
(* Loop-invariant check hoisting                                       *)
(* ------------------------------------------------------------------ *)

let loop_src =
  {|
module "h"
func @f(%p.0 : ptr) -> i64 {
entry:
  br header
header:
  %i.1 = phi i64 [entry 0:i64] [body %n.4]
  %c.2 = icmp slt i64 %i.1, 10:i64
  cbr %c.2, body, exit
body:
  %g.3 = gep %p.0 [8 x %i.1]
  %v.5 = load i64 %g.3
  store i64 %v.5, %g.3
  %n.4 = add i64 %i.1, 1:i64
  br header
exit:
  ret 0:i64
}
|}

let test_hoist_counted_loop () =
  let m = parse loop_src in
  let f, checks = checks_of m "f" in
  Alcotest.(check int) "checks found" 2 (List.length checks);
  let r = Optimize.run hoist_only m f checks in
  Alcotest.(check int) "both replaced" 2
    r.Optimize.stats.Optimize.removed_hoisted;
  Alcotest.(check int) "no in-place checks" 0 (List.length r.Optimize.kept);
  match r.Optimize.hoisted with
  | [ h ] ->
      Alcotest.(check string) "into the preheader" "entry"
        h.Optimize.h_preheader;
      Alcotest.(check int) "min offset" 0 h.Optimize.h_min_off;
      (* iv in [0,9], stride 8, width 8: footprint [0, 80) *)
      Alcotest.(check int) "widened span" 80 h.Optimize.h_span;
      Alcotest.(check bool) "store access wins" true
        (h.Optimize.h_access = Itarget.Astore);
      Alcotest.(check int) "stands for both checks" 2 h.Optimize.h_replaced
  | l -> Alcotest.failf "expected 1 hoisted group, got %d" (List.length l)

let nested_src =
  {|
module "n"
func @f(%p.0 : ptr) -> i64 {
entry:
  br oh
oh:
  %i.1 = phi i64 [entry 0:i64] [olatch %ni.2]
  %ci.3 = icmp slt i64 %i.1, 4:i64
  cbr %ci.3, ipre, oexit
ipre:
  br ih
ih:
  %j.4 = phi i64 [ipre 0:i64] [ibody %nj.5]
  %cj.6 = icmp slt i64 %j.4, 8:i64
  cbr %cj.6, ibody, olatch
ibody:
  %g.7 = gep %p.0 [8 x %j.4]
  %v.8 = load i64 %g.7
  %nj.5 = add i64 %j.4, 1:i64
  br ih
olatch:
  %ni.2 = add i64 %i.1, 1:i64
  br oh
oexit:
  ret 0:i64
}
|}

let test_hoist_nested_loop () =
  let m = parse nested_src in
  let f, checks = checks_of m "f" in
  let r = Optimize.run hoist_only m f checks in
  match r.Optimize.hoisted with
  | [ h ] ->
      (* hoisted to the inner preheader with the inner iv's span:
         j in [0,7], stride 8, width 8 -> 64 bytes *)
      Alcotest.(check string) "inner preheader" "ipre" h.Optimize.h_preheader;
      Alcotest.(check int) "inner span" 64 h.Optimize.h_span
  | l -> Alcotest.failf "expected 1 hoisted group, got %d" (List.length l)

let test_no_hoist_conditional_check () =
  (* a check in a diamond arm of the loop body does not dominate the
     latch: some iterations skip it, so the footprint argument fails *)
  let m =
    parse
      {|
module "nc"
func @f(%p.0 : ptr, %c.9 : i1) -> i64 {
entry:
  br header
header:
  %i.1 = phi i64 [entry 0:i64] [latch %n.4]
  %c.2 = icmp slt i64 %i.1, 10:i64
  cbr %c.2, body, exit
body:
  cbr %c.9, arm, latch
arm:
  %g.3 = gep %p.0 [8 x %i.1]
  %v.5 = load i64 %g.3
  br latch
latch:
  %n.4 = add i64 %i.1, 1:i64
  br header
exit:
  ret 0:i64
}
|}
  in
  let f, checks = checks_of m "f" in
  let r = Optimize.run hoist_only m f checks in
  Alcotest.(check int) "nothing hoisted" 0 (List.length r.Optimize.hoisted);
  Alcotest.(check int) "check kept in place" 1 (List.length r.Optimize.kept)

let test_no_hoist_non_affine () =
  (* index loaded from memory: not affine in the induction variable *)
  let m =
    parse
      {|
module "na"
func @f(%p.0 : ptr, %q.9 : ptr) -> i64 {
entry:
  br header
header:
  %i.1 = phi i64 [entry 0:i64] [body %n.4]
  %c.2 = icmp slt i64 %i.1, 10:i64
  cbr %c.2, body, exit
body:
  %x.6 = load i64 %q.9
  %g.3 = gep %p.0 [8 x %x.6]
  %v.5 = load i64 %g.3
  %n.4 = add i64 %i.1, 1:i64
  br header
exit:
  ret 0:i64
}
|}
  in
  let f, checks = checks_of m "f" in
  let r = Optimize.run hoist_only m f checks in
  (* the check on the loop-invariant %q.9 itself hoists (its footprint
     is one fixed slot), but the %x.6-indexed access must stay *)
  Alcotest.(check int) "only the invariant check hoists" 1
    (List.length r.Optimize.hoisted);
  (match r.Optimize.kept with
  | [ c ] ->
      Alcotest.(check string) "non-affine check kept" "g"
        (match c.Itarget.c_ptr with
        | Value.Var x -> String.sub x.Value.vname 0 1
        | _ -> "?")
  | l -> Alcotest.failf "expected 1 kept check, got %d" (List.length l))

let test_no_hoist_may_exit_body () =
  (* a call to a non-builtin in the body may terminate the program
     before later iterations: hoisting could abort a run that would
     have finished *)
  let m =
    parse
      {|
module "me"
func @g(%x.0 : i64) -> i64 {
entry:
  ret %x.0
}
func @f(%p.0 : ptr) -> i64 {
entry:
  br header
header:
  %i.1 = phi i64 [entry 0:i64] [body %n.4]
  %c.2 = icmp slt i64 %i.1, 10:i64
  cbr %c.2, body, exit
body:
  %g.3 = gep %p.0 [8 x %i.1]
  %v.5 = load i64 %g.3
  call @g(%v.5) : i64
  %n.4 = add i64 %i.1, 1:i64
  br header
exit:
  ret 0:i64
}
|}
  in
  let f, checks = checks_of m "f" in
  let r = Optimize.run hoist_only m f checks in
  Alcotest.(check int) "nothing hoisted" 0 (List.length r.Optimize.hoisted)

(* ------------------------------------------------------------------ *)
(* Instrumenter integration: veto, emission, counters                  *)
(* ------------------------------------------------------------------ *)

let test_temporal_vetoes_all_passes () =
  let m = parse loop_src in
  let stats =
    I.run (Config.optimized_full (Config.of_approach "temporal")) m
  in
  Alcotest.(check int) "nothing removed" 0 stats.I.total_checks_removed;
  Alcotest.(check int) "no hoisted checks" 0 stats.I.total_hoisted_checks_placed;
  Alcotest.(check int) "every check placed in-line" stats.I.total_checks_found
    stats.I.total_checks_placed

let test_hoisted_emission () =
  let m = parse loop_src in
  let stats = I.run sb_all m in
  (* dominance removes the same-pointer store check first; the
     surviving load check becomes one widened preheader check *)
  Alcotest.(check int) "hoisted placed" 1 stats.I.total_hoisted_checks_placed;
  Alcotest.(check int) "removed total" 2 stats.I.total_checks_removed;
  Alcotest.(check int) "removed via dominance" 1
    stats.I.total_checks_removed_dominance;
  Alcotest.(check int) "removed via hoisting" 1
    stats.I.total_checks_removed_hoisted;
  Alcotest.(check int) "one dynamic check call" 1
    (count_calls m Intrinsics.sb_check);
  Mi_analysis.Domcheck.assert_valid m

let test_per_pass_counters_split () =
  let m = parse static_src in
  let stats = I.run sb_all m in
  Alcotest.(check int) "found" 5 stats.I.total_checks_found;
  (* no same-pointer dominance pairs here; 3 static; the %n.0 gep and
     the @gd overflow are loop-free so nothing hoists *)
  Alcotest.(check int) "dominance" 0 stats.I.total_checks_removed_dominance;
  Alcotest.(check int) "static" 3 stats.I.total_checks_removed_static;
  Alcotest.(check int) "hoisted" 0 stats.I.total_checks_removed_hoisted;
  Alcotest.(check int) "total = sum of passes"
    (stats.I.total_checks_removed_dominance
    + stats.I.total_checks_removed_static
    + stats.I.total_checks_removed_hoisted)
    stats.I.total_checks_removed

(* Mutation coupling: hoisted checks occupy ordinals in the same
   per-function sequence the fault plans address, so a check-deletion
   mutant can target them like any in-line check. *)
let test_hoisted_check_mutable () =
  let instrument faults =
    let m = parse loop_src in
    let stats = I.run ~faults sb_all m in
    (count_calls m Intrinsics.sb_check, stats)
  in
  let full, stats_full = instrument Fault.none in
  Alcotest.(check int) "one hoisted check emitted" 1 full;
  Alcotest.(check int) "no mutations" 0 stats_full.I.total_checks_mutated;
  let deleted, stats_del =
    instrument
      {
        Fault.none with
        Fault.checks =
          [ { Fault.cm_action = Fault.Delete; cm_ordinal = 0; cm_func = Some "f" } ];
      }
  in
  Alcotest.(check int) "mutant deletes the hoisted check" 0 deleted;
  Alcotest.(check int) "mutation counted" 1 stats_del.I.total_checks_mutated

(* ------------------------------------------------------------------ *)
(* End-to-end soundness: optimized verdicts match unoptimized          *)
(* ------------------------------------------------------------------ *)

let run_minic cfg src =
  let setup =
    Mi_bench_kit.Harness.with_config cfg Mi_bench_kit.Harness.baseline
  in
  Mi_bench_kit.Harness.run_sources setup [ Mi_bench_kit.Bench.src "t" src ]

let violates (r : Mi_bench_kit.Harness.run) =
  match r.Mi_bench_kit.Harness.outcome with
  | Mi_vm.Interp.Safety_violation _ -> true
  | _ -> false

let oob_loop_src =
  {|
long a[8];
int main(void) {
  long i;
  long s = 0;
  for (i = 0; i < 24; i = i + 1) { s = s + a[i]; }
  print_int((int)s);
  return 0;
}
|}

let clean_loop_src =
  {|
long a[8];
int main(void) {
  long i;
  long s = 0;
  for (i = 0; i < 8; i = i + 1) { a[i] = i; }
  for (i = 0; i < 8; i = i + 1) { s = s + a[i]; }
  print_int((int)s);
  return 0;
}
|}

let test_e2e_verdicts_match () =
  List.iter
    (fun basis ->
      let opt = Config.optimized_full basis in
      Alcotest.(check bool)
        (basis.Config.approach ^ " catches the overflowing loop") true
        (violates (run_minic basis oob_loop_src) = violates (run_minic opt oob_loop_src)
        && violates (run_minic basis oob_loop_src));
      Alcotest.(check bool)
        (basis.Config.approach ^ " keeps the clean loop clean") false
        (violates (run_minic opt clean_loop_src)))
    [ Config.softbound; Config.lowfat ]

let test_e2e_elimination_fires () =
  (* the optimized clean-loop run must eliminate checks AND execute
     fewer dynamic checks than the basis *)
  let basis = run_minic Config.softbound clean_loop_src in
  let opt = run_minic sb_all clean_loop_src in
  let removed =
    List.fold_left
      (fun a (s : I.mod_stats) -> a + s.I.total_checks_removed)
      0 opt.Mi_bench_kit.Harness.static_stats
  in
  Alcotest.(check bool) "some checks eliminated" true (removed > 0);
  let dyn (r : Mi_bench_kit.Harness.run) =
    Mi_bench_kit.Harness.counter r "sb.checks"
  in
  Alcotest.(check bool) "fewer dynamic checks" true (dyn opt < dyn basis)

let () =
  Alcotest.run "optimize"
    [
      ( "dominance",
        [
          Alcotest.test_case "sweep matches naive reference" `Quick
            test_sweep_matches_naive;
          Alcotest.test_case "diamond CFG" `Quick test_diamond_dominance;
        ] );
      ( "static",
        [
          Alcotest.test_case "in-bounds proofs" `Quick test_static_elimination;
          Alcotest.test_case "loaded pointer kept" `Quick
            test_static_loaded_pointer_kept;
        ] );
      ( "hoist",
        [
          Alcotest.test_case "counted loop" `Quick test_hoist_counted_loop;
          Alcotest.test_case "nested loop" `Quick test_hoist_nested_loop;
          Alcotest.test_case "conditional check stays" `Quick
            test_no_hoist_conditional_check;
          Alcotest.test_case "non-affine index stays" `Quick
            test_no_hoist_non_affine;
          Alcotest.test_case "may-exit body stays" `Quick
            test_no_hoist_may_exit_body;
        ] );
      ( "instrument",
        [
          Alcotest.test_case "temporal veto" `Quick
            test_temporal_vetoes_all_passes;
          Alcotest.test_case "hoisted emission" `Quick test_hoisted_emission;
          Alcotest.test_case "per-pass counters" `Quick
            test_per_pass_counters_split;
          Alcotest.test_case "hoisted check mutable" `Quick
            test_hoisted_check_mutable;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "verdicts match" `Quick test_e2e_verdicts_match;
          Alcotest.test_case "elimination fires" `Quick
            test_e2e_elimination_fires;
        ] );
    ]
