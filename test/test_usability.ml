(* The §4 usability case studies: assert that each approach behaves as
   the paper describes on every case, at both -O0 and -O3. *)

module U = Mi_bench_kit.Usability
module Config = Mi_core.Config

let check_case level (c : U.case) approach () =
  let got, run = U.run_case ~level c approach in
  let want = U.expected c approach in
  if got <> want then
    Alcotest.failf "%s under %s: expected %s, got %s (output %S)" c.case_name
      (Config.approach_name approach)
      (U.verdict_to_string want) (U.verdict_to_string got) run.Mi_bench_kit.Harness.output

let suite level =
  List.concat_map
    (fun (c : U.case) ->
      List.map
        (fun approach ->
          Alcotest.test_case
            (Printf.sprintf "%s / %s" c.case_name (Config.approach_name approach))
            `Quick
            (check_case level c approach))
        (Config.known_approaches ()))
    U.all

(* a couple of extra facts the cases rely on *)

let test_swap_clean_output_matches () =
  (* both instrumentations must preserve the program's output *)
  let base =
    Mi_bench_kit.Harness.run_sources Mi_bench_kit.Harness.baseline
      U.swap_clean.U.sources
  in
  List.iter
    (fun approach ->
      let _, r = U.run_case U.swap_clean approach in
      Alcotest.(check string) "same output" base.Mi_bench_kit.Harness.output
        r.Mi_bench_kit.Harness.output)
    (Config.known_approaches ())

let test_corrupted_inttoptr_with_null_bounds () =
  (* §4.4: with null (not wide) inttoptr bounds, SoftBound rejects every
     access through a recreated pointer — "overly restrictive" *)
  let cfg = { Config.softbound with Config.sb_inttoptr_wide = false } in
  let setup =
    Mi_bench_kit.Harness.with_config cfg Mi_bench_kit.Harness.baseline
  in
  let r =
    Mi_bench_kit.Harness.run_sources setup U.inttoptr_roundtrip.U.sources
  in
  match r.Mi_bench_kit.Harness.outcome with
  | Mi_vm.Interp.Safety_violation { checker = "softbound"; _ } -> ()
  | _ -> Alcotest.fail "expected a (spurious) violation with null bounds"

let () =
  Alcotest.run "usability"
    [
      ("cases @O3", suite Mi_passes.Pipeline.O3);
      ("cases @O0", suite Mi_passes.Pipeline.O0);
      ( "extras",
        [
          Alcotest.test_case "instrumentation preserves output" `Quick
            test_swap_clean_output_matches;
          Alcotest.test_case "null inttoptr bounds reject round trips" `Quick
            test_corrupted_inttoptr_with_null_bounds;
        ] );
    ]
