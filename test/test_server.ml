(* mi-serve daemon: protocol round trips, batch-harness byte-identity,
   bounded-queue backpressure, supervisor restarts after injected worker
   crashes, per-tenant circuit breaking, and the clean-drain shutdown
   invariant (accepted = answered). *)

module Server = Mi_server.Server
module Proto = Mi_server.Proto
module Fault = Mi_faultkit.Fault
module Harness = Mi_bench_kit.Harness
module Bench = Mi_bench_kit.Bench
module Corpus = Mi_bench_kit.Safety_corpus
module Json = Mi_obs.Json
module Mclock = Mi_support.Mclock

let tiny_bench name value =
  Bench.mk ~suite:Bench.CPU2000 ~descr:"server test program" name
    [
      Bench.src "m"
        (Printf.sprintf
           "int main(void) { long a[4]; a[1] = %d; print_int(a[1]); return \
            0; }"
           value);
    ]

let broken =
  Bench.mk ~suite:Bench.CPU2000 ~descr:"does not compile" "broken"
    [ Bench.src "m" "int main(void) { this is not minic }" ]

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mi-serve-test-%d-%d.sock" (Unix.getpid ()) !n)

(* boot an in-process server, hand the test a connected client, always
   drain and join *)
let with_server ?(configure = fun c -> c) f =
  let socket = fresh_socket () in
  let cfg = configure (Server.default_cfg ~socket) in
  let server = Domain.spawn (fun () -> Server.run cfg) in
  let rec connect attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when attempt < 100 ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Mclock.sleep 0.05;
        connect (attempt + 1)
  in
  let fd = connect 0 in
  let result =
    Fun.protect
      (fun () -> f fd)
      ~finally:(fun () ->
        (try
           Proto.write_frame fd
             (Json.to_string
                (Proto.request_to_json (Proto.Shutdown { id = 999_999 })));
           (* drain until EOF so the server can flush and exit *)
           while Proto.read_frame fd <> None do
             ()
           done
         with Unix.Unix_error _ | Proto.Bad_frame _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ()))
  in
  let fin = Domain.join server in
  (result, fin)

let send fd req =
  Proto.write_frame fd (Json.to_string (Proto.request_to_json req))

let recv fd =
  match Proto.read_frame fd with
  | Some payload -> Proto.reply_of_string payload
  | None -> Alcotest.fail "unexpected EOF from server"

let run_req ~id ?(tenant = "t0") ?timeout_ms setup bench =
  Proto.Run { id; tenant; setup; bench; timeout_ms }

(* {1 Protocol basics} *)

let test_ping_stats_error () =
  let (), _fin =
    with_server (fun fd ->
        send fd (Proto.Ping { id = 1 });
        (match recv fd with
        | Proto.R_pong { id = 1 } -> ()
        | _ -> Alcotest.fail "expected pong");
        send fd (Proto.Stats { id = 2 });
        (match recv fd with
        | Proto.R_stats { id = 2; stats } -> (
            match Json.member "queue_cap" stats with
            | Some (Json.Int _) -> ()
            | _ -> Alcotest.fail "stats lacks queue_cap")
        | _ -> Alcotest.fail "expected stats");
        (* a malformed request is answered, not dropped *)
        Proto.write_frame fd "{\"op\":\"run\",\"id\":3}";
        match recv fd with
        | Proto.R_error { id = 3; _ } -> ()
        | _ -> Alcotest.fail "expected error reply")
  in
  ()

(* {1 Byte-identity with the batch harness} *)

let test_run_matches_batch () =
  let setup = Corpus.setup "softbound" in
  let bench = tiny_bench "ident" 42 in
  let server_json, fin =
    with_server (fun fd ->
        send fd (run_req ~id:1 setup bench);
        match recv fd with
        | Proto.R_ok { id = 1; result } -> Json.to_string result
        | _ -> Alcotest.fail "expected ok")
  in
  let h = Harness.create ~jobs:1 () in
  let batch =
    match Harness.run h setup bench with
    | Ok r -> Json.to_string (Proto.run_to_json r)
    | Error e -> Alcotest.failf "batch run failed: %s" e.Harness.reason
  in
  Alcotest.(check string) "server result = batch result" batch server_json;
  Alcotest.(check int) "one accepted" 1 fin.Server.f_accepted;
  Alcotest.(check int) "one completed" 1 fin.Server.f_completed

(* {1 Backpressure: bounded queue, typed overload, no drops} *)

let test_overload_typed_and_recoverable () =
  let setup = Corpus.setup "softbound" in
  let benches = Array.init 6 (fun i -> tiny_bench "burst" (100 + i)) in
  let configure c =
    {
      c with
      Server.workers = 1;
      queue_cap = 1;
      faults =
        (match Fault.parse "hang=burst:0.3" with
        | Ok f -> f
        | Error m -> invalid_arg m);
    }
  in
  let (overloaded, answered), fin =
    with_server ~configure (fun fd ->
        (* burst everything at once: one in flight, one queued, the rest
           must bounce with the typed overload reply *)
        Array.iteri (fun i b -> send fd (run_req ~id:(i + 1) setup b)) benches;
        let overloaded = ref 0 and answered = ref 0 in
        while !answered < Array.length benches do
          match recv fd with
          | Proto.R_overloaded { id; queue; capacity } ->
              incr overloaded;
              Alcotest.(check int) "capacity echoed" 1 capacity;
              Alcotest.(check bool) "queue at bound" true (queue >= 1);
              Mclock.sleep 0.05;
              send fd (run_req ~id setup benches.(id - 1))
          | Proto.R_ok _ -> incr answered
          | _ -> Alcotest.fail "unexpected reply under load"
        done;
        (!overloaded, !answered))
  in
  Alcotest.(check bool) "overload replies observed" true (overloaded > 0);
  Alcotest.(check int) "every request eventually answered" 6 answered;
  Alcotest.(check int) "accepted = completed" fin.Server.f_accepted
    fin.Server.f_completed;
  Alcotest.(check bool) "admission rejects counted" true
    (fin.Server.f_rejected >= overloaded)

(* {1 Supervisor: injected worker crash, restart, zero drops} *)

let test_crash_restart_zero_drops () =
  let setup = Corpus.setup "softbound" in
  let victim = tiny_bench "victim" 5 in
  let bystander = tiny_bench "bystander" 6 in
  let configure c =
    {
      c with
      Server.workers = 2;
      faults =
        (match Fault.parse "crash=victim" with
        | Ok f -> f
        | Error m -> invalid_arg m);
    }
  in
  let replies, fin =
    with_server ~configure (fun fd ->
        send fd (run_req ~id:1 setup victim);
        send fd (run_req ~id:2 setup bystander);
        let got = Hashtbl.create 2 in
        while Hashtbl.length got < 2 do
          match recv fd with
          | Proto.R_ok { id; result } ->
              Hashtbl.replace got id (Json.to_string result)
          | _ -> Alcotest.fail "expected ok replies despite the crash"
        done;
        got)
  in
  Alcotest.(check int) "both answered" 2 (Hashtbl.length replies);
  Alcotest.(check int) "supervisor restarted the crashed worker" 1
    fin.Server.f_restarts;
  Alcotest.(check int) "zero dropped: accepted = completed" fin.Server.f_accepted
    fin.Server.f_completed

(* {1 Per-request deadlines} *)

let test_request_deadline () =
  let setup = Corpus.setup "softbound" in
  let slow = tiny_bench "slowpoke" 1 in
  let configure c =
    {
      c with
      Server.faults =
        (match Fault.parse "hang=slowpoke:30" with
        | Ok f -> f
        | Error m -> invalid_arg m);
    }
  in
  let (), _fin =
    with_server ~configure (fun fd ->
        send fd (run_req ~id:1 ~timeout_ms:100 setup slow);
        match recv fd with
        | Proto.R_failed { id = 1; kind = "timeout"; _ } -> ()
        | Proto.R_failed { kind; _ } ->
            Alcotest.failf "expected timeout, got %s" kind
        | _ -> Alcotest.fail "expected a failed reply")
  in
  ()

(* {1 Circuit breaker: degraded per (tenant, approach), others serve} *)

let test_breaker_degrades_per_tenant_approach () =
  let sb = Corpus.setup "softbound" in
  let lf = Corpus.setup "lowfat" in
  let fine = tiny_bench "fine" 3 in
  let configure c = { c with Server.trip = 2 } in
  let (), fin =
    with_server ~configure (fun fd ->
        (* two consecutive compile failures trip softbound for t0 *)
        send fd (run_req ~id:1 ~tenant:"t0" sb broken);
        send fd (run_req ~id:2 ~tenant:"t0" sb broken);
        (match (recv fd, recv fd) with
        | Proto.R_failed _, Proto.R_failed _ -> ()
        | _ -> Alcotest.fail "expected two failed replies");
        send fd (run_req ~id:3 ~tenant:"t0" sb fine);
        (match recv fd with
        | Proto.R_degraded { id = 3; approach = "softbound"; _ } -> ()
        | _ -> Alcotest.fail "expected softbound@t0 to be degraded");
        (* the same tenant's other approach still serves *)
        send fd (run_req ~id:4 ~tenant:"t0" lf fine);
        (match recv fd with
        | Proto.R_ok { id = 4; _ } -> ()
        | _ -> Alcotest.fail "lowfat@t0 should still serve");
        (* and another tenant's softbound is unaffected *)
        send fd (run_req ~id:5 ~tenant:"t1" sb fine);
        (* a success resets the breaker only per tenant *)
        match recv fd with
        | Proto.R_ok { id = 5; _ } -> ()
        | _ -> Alcotest.fail "softbound@t1 should still serve")
  in
  Alcotest.(check int) "one degraded reply" 1 fin.Server.f_degraded;
  Alcotest.(check int) "accounting: accepted = ok + failed + degraded"
    fin.Server.f_accepted
    (fin.Server.f_completed + fin.Server.f_failed + fin.Server.f_degraded)

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [ Alcotest.test_case "ping, stats, error" `Quick test_ping_stats_error ] );
      ( "identity",
        [
          Alcotest.test_case "server run = batch run" `Slow
            test_run_matches_batch;
        ] );
      ( "backpressure",
        [
          Alcotest.test_case "typed overload, then served" `Slow
            test_overload_typed_and_recoverable;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "crash, restart, zero drops" `Slow
            test_crash_restart_zero_drops;
          Alcotest.test_case "per-request deadline" `Slow test_request_deadline;
        ] );
      ( "degraded",
        [
          Alcotest.test_case "circuit breaker per tenant+approach" `Slow
            test_breaker_degrades_per_tenant_approach;
        ] );
    ]
