(* Integration tests over the 20-benchmark suite: every benchmark must
   run successfully under the baseline and under both instrumentations,
   with identical program output (the instrumentation must not change
   semantics of these memory-safe programs), and the Table 2 wide-bounds
   fractions must fall in the bands the paper attributes to each
   benchmark's code patterns. *)

open Mi_bench_kit
module Config = Mi_core.Config

let runs : (string, Harness.run * Harness.run * Harness.run) Hashtbl.t =
  Hashtbl.create 32

(* one session for the whole suite: runs share its instrumentation
   cache, and the three setups of a benchmark run in parallel *)
let session = lazy (Harness.create ())

let get (b : Bench.t) =
  match Hashtbl.find_opt runs b.name with
  | Some r -> r
  | None -> (
      let h = Lazy.force session in
      match
        Harness.run_jobs h
          [
            (Harness.baseline, b);
            (Experiments.sb_full, b);
            (Experiments.lf_full, b);
          ]
      with
      | [ base; sb; lf ] ->
          let base = Harness.expect_ok b base
          and sb = Harness.expect_ok b sb
          and lf = Harness.expect_ok b lf in
          Hashtbl.add runs b.name (base, sb, lf);
          (base, sb, lf)
      | _ -> assert false)

let test_outputs_preserved (b : Bench.t) () =
  let base, sb, lf = get b in
  Alcotest.(check bool) "baseline produced output" true (base.output <> "");
  Alcotest.(check string) "softbound output" base.output sb.output;
  Alcotest.(check string) "lowfat output" base.output lf.output

let test_overhead_sane (b : Bench.t) () =
  let base, sb, lf = get b in
  let osb = Harness.overhead ~baseline:base sb in
  let olf = Harness.overhead ~baseline:base lf in
  Alcotest.(check bool) "sb slower than baseline" true (osb >= 1.0);
  Alcotest.(check bool) "lf slower than baseline" true (olf >= 1.0);
  Alcotest.(check bool) "sb below 6x" true (osb < 6.0);
  Alcotest.(check bool) "lf below 6x" true (olf < 6.0)

let test_checks_executed (b : Bench.t) () =
  let _, sb, lf = get b in
  Alcotest.(check bool) "sb executed checks" true
    (Harness.counter sb "sb.checks" > 1000);
  Alcotest.(check bool) "lf executed checks" true
    (Harness.counter lf "lf.checks" > 1000);
  (* the framework gives both approaches identical check placement *)
  Alcotest.(check int) "identical dynamic check counts"
    (Harness.counter sb "sb.checks")
    (Harness.counter lf "lf.checks")

(* Table 2 bands: the mechanism-bearing benchmarks must show their
   signature fractions; the clean ones must be (almost) fully checked. *)
let wide_band (b : Bench.t) () =
  let _, sb, lf = get b in
  let fsb = Experiments.wide_fraction sb ~approach:"softbound" in
  let flf = Experiments.wide_fraction lf ~approach:"lowfat" in
  let in_band lo hi v = v >= lo && v <= hi in
  let check_band name lo hi v =
    if not (in_band lo hi v) then
      Alcotest.failf "%s: %s = %.2f%% outside [%g, %g]" b.name name v lo hi
  in
  match b.name with
  | "164gzip" ->
      check_band "SB wide" 40.0 80.0 fsb;
      check_band "LF wide" 0.0 0.01 flf
  | "429mcf" ->
      check_band "LF wide" 35.0 70.0 flf;
      check_band "SB wide" 0.0 0.01 fsb
  | "197parser" ->
      check_band "LF wide" 3.0 12.0 flf;
      check_band "SB wide" 0.0 1.5 fsb
  | "177mesa" -> check_band "LF wide" 0.5 4.0 flf
  | "300twolf" ->
      check_band "SB wide" 0.05 1.5 fsb;
      check_band "LF wide" 0.5 5.0 flf
  | "188ammp" -> check_band "LF wide" 0.05 1.0 flf
  | "445gobmk" -> check_band "SB wide" 0.2 1.5 fsb
  | _ ->
      check_band "SB wide" 0.0 0.5 fsb;
      check_band "LF wide" 0.0 0.5 flf

let test_sizezero_flag_is_consistent (b : Bench.t) () =
  (* benchmarks flagged size_zero_arrays must actually declare one *)
  let declares_one =
    List.exists
      (fun (s : Bench.source) ->
        let m = Mi_minic.Lower.compile ~name:s.src_name s.code in
        List.exists
          (fun (g : Mi_mir.Irmod.global) -> not g.gsize_known)
          m.globals)
      b.sources
  in
  Alcotest.(check bool) "flag matches sources" b.size_zero_arrays declares_one

let per_bench mk =
  List.map (fun (b : Bench.t) -> Alcotest.test_case b.name `Slow (mk b)) Suite.all

(* suite coherence: 10 CPU2000 + 10 CPU2006 programs, unique names, all
   with paper reference entries *)
let test_suite_coherence () =
  Alcotest.(check int) "20 benchmarks" 20 (List.length Suite.all);
  let count suite =
    List.length (List.filter (fun (b : Bench.t) -> b.suite = suite) Suite.all)
  in
  Alcotest.(check int) "10 from CPU2000" 10 (count Bench.CPU2000);
  Alcotest.(check int) "10 from CPU2006" 10 (count Bench.CPU2006);
  Alcotest.(check int) "names unique" 20
    (List.length (List.sort_uniq compare Suite.names));
  List.iter
    (fun (b : Bench.t) ->
      if List.assoc_opt b.name Paper_data.table2 = None then
        Alcotest.failf "%s has no Table 2 reference entry" b.name)
    Suite.all;
  (* paper data has no stray entries either *)
  List.iter
    (fun (name, _) ->
      if Suite.find name = None then
        Alcotest.failf "Table 2 reference entry %s has no benchmark" name)
    Paper_data.table2

let () =
  Alcotest.run "benchmarks"
    [
      ("outputs-preserved", per_bench test_outputs_preserved);
      ("overheads-sane", per_bench test_overhead_sane);
      ("checks-executed", per_bench test_checks_executed);
      ("table2-bands", per_bench wide_band);
      ("size-zero-flags", per_bench test_sizezero_flag_is_consistent);
      ( "coherence",
        [ Alcotest.test_case "suite/paper-data" `Quick test_suite_coherence ] );
    ]
