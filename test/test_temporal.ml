(* Tests for the temporal lock-and-key checker: runtime semantics
   (keys, trie, shadow stack, double-free detection) and end-to-end
   detection on MiniC programs — use-after-free, double free, dangling
   stack references — plus the fast/generic builtin twin identity. *)

open Mi_vm
module TP = Mi_temporal.Temporal_rt
module Config = Mi_core.Config
module Harness = Mi_bench_kit.Harness
module Bench = Mi_bench_kit.Bench
module Pipeline = Mi_passes.Pipeline

(* --- runtime-level ----------------------------------------------------- *)

let setup () =
  let st = State.create () in
  Builtins.install st;
  let tp = TP.install st in
  (st, tp)

let violation f =
  match f () with
  | exception State.Safety_abort { checker = "temporal"; _ } -> true
  | _ -> false

let test_key_lifecycle () =
  let st, tp = setup () in
  let a = st.State.malloc_hook st 32 in
  let k = TP.key_of_alloc tp a in
  Alcotest.(check bool) "fresh allocation is keyed" true (k <> 0);
  Alcotest.(check bool) "live key passes" false
    (violation (fun () -> TP.check tp st a k));
  st.State.free_hook st a;
  Alcotest.(check int) "freed allocation owns no key" 0 (TP.key_of_alloc tp a);
  Alcotest.(check bool) "dead key reports" true
    (violation (fun () -> TP.check tp st a k))

let test_key_freshness () =
  let st, tp = setup () in
  let a = st.State.malloc_hook st 16 in
  let k1 = TP.key_of_alloc tp a in
  st.State.free_hook st a;
  let b = st.State.malloc_hook st 16 in
  let k2 = TP.key_of_alloc tp b in
  (* keys are never reused, even when the allocator recycles the address *)
  Alcotest.(check bool) "fresh key for fresh allocation" true (k1 <> k2);
  Alcotest.(check bool) "old key stays dead" true
    (violation (fun () -> TP.check tp st b k1));
  Alcotest.(check bool) "new key is live" false
    (violation (fun () -> TP.check tp st b k2))

let test_key_zero_wide () =
  let st, tp = setup () in
  Alcotest.(check bool) "key 0 never reports" false
    (violation (fun () -> TP.check tp st (Layout.heap_base + 123) 0));
  Alcotest.(check int) "one check" 1 (State.counter st "tp.checks");
  Alcotest.(check int) "counted wide" 1 (State.counter st "tp.checks_wide")

let test_double_free_detected () =
  let st, _ = setup () in
  let a = st.State.malloc_hook st 24 in
  st.State.free_hook st a;
  Alcotest.(check bool) "second free reports" true
    (violation (fun () -> st.State.free_hook st a));
  Alcotest.(check bool) "free of never-allocated reports" true
    (violation (fun () -> st.State.free_hook st (Layout.heap_base + 40000)))

let test_trie_roundtrip () =
  let _, tp = setup () in
  let addr = Layout.heap_base + 512 in
  TP.trie_store tp addr 7;
  Alcotest.(check int) "roundtrip" 7 (TP.trie_load tp addr);
  TP.trie_store tp addr 0;
  Alcotest.(check int) "key 0 clears the slot" 0 (TP.trie_load tp addr);
  Alcotest.(check int) "unset slot reads 0" 0
    (TP.trie_load tp (Layout.heap_base + 99992))

let test_meta_copy () =
  let _, tp = setup () in
  let src = Layout.heap_base and dst = Layout.heap_base + 4096 in
  TP.trie_store tp src 11;
  TP.trie_store tp (src + 8) 12;
  TP.trie_store tp (dst + 8) 99;
  TP.meta_copy tp ~dst ~src 16;
  Alcotest.(check int) "first slot" 11 (TP.trie_load tp dst);
  Alcotest.(check int) "second slot overwritten" 12 (TP.trie_load tp (dst + 8))

let test_shadow_stack_zeroed () =
  let _, tp = setup () in
  TP.ss_enter tp 2;
  TP.ss_set tp 1 42;
  TP.ss_enter tp 2;
  (* the inner frame never wrote slot 1: it must read the untracked
     key, not the caller's stale 42 (the §4.3 hazard by construction) *)
  Alcotest.(check int) "fresh frame reads key 0" 0 (TP.ss_get tp 1);
  TP.ss_set tp 1 7;
  TP.ss_leave tp;
  Alcotest.(check int) "outer frame intact" 42 (TP.ss_get tp 1);
  TP.ss_leave tp

(* --- end-to-end on MiniC programs -------------------------------------- *)

let tp_setup =
  {
    (Harness.with_config (Config.of_approach "temporal") Harness.baseline) with
    level = Pipeline.O1;
  }

let run ?(setup = tp_setup) src =
  Harness.run_sources setup [ Bench.src "t" src ]

let detects src =
  match (run src).Harness.outcome with
  | Mi_vm.Interp.Safety_violation { checker; _ } ->
      Alcotest.(check string) "reported by the temporal checker" "temporal"
        checker
  | Mi_vm.Interp.Exited _ -> Alcotest.failf "ran to completion:\n%s" src
  | Mi_vm.Interp.Trapped msg -> Alcotest.failf "VM trap (%s):\n%s" msg src
  | Mi_vm.Interp.Exhausted _ -> Alcotest.fail "exhausted fuel"

let clean src =
  match (run src).Harness.outcome with
  | Mi_vm.Interp.Exited 0 -> ()
  | Mi_vm.Interp.Exited n -> Alcotest.failf "exit code %d:\n%s" n src
  | Mi_vm.Interp.Safety_violation { reason; _ } ->
      Alcotest.failf "spurious report (%s):\n%s" reason src
  | Mi_vm.Interp.Trapped msg -> Alcotest.failf "VM trap (%s):\n%s" msg src
  | Mi_vm.Interp.Exhausted _ -> Alcotest.fail "exhausted fuel"

let test_uaf_read () =
  detects
    {|
int main(void) {
  long *a = (long *)malloc(8 * sizeof(long));
  a[0] = 5;
  free(a);
  print_int(a[0]);
  return 0;
}
|}

let test_uaf_write () =
  detects
    {|
int main(void) {
  long *a = (long *)malloc(8 * sizeof(long));
  free(a);
  a[0] = 7;
  return 0;
}
|}

let test_uaf_through_alias () =
  detects
    {|
int main(void) {
  long *a = (long *)malloc(4 * sizeof(long));
  long *p = a + 2;
  free(a);
  print_int(*p);
  return 0;
}
|}

let test_double_free () =
  detects
    {|
int main(void) {
  long *a = (long *)malloc(16);
  free(a);
  free(a);
  return 0;
}
|}

let test_dangling_stack_ref () =
  detects
    {|
long *escape(void) {
  long local[4];
  local[0] = 9;
  return local;
}
int main(void) {
  long *p = escape();
  print_int(p[0]);
  return 0;
}
|}

let test_safe_heap_use () =
  clean
    {|
int main(void) {
  long *a = (long *)malloc(8 * sizeof(long));
  long i;
  for (i = 0; i < 8; i++) a[i] = i * 2;
  print_int(a[7]);
  free(a);
  return 0;
}
|}

let test_free_then_fresh () =
  clean
    {|
int main(void) {
  long *a = (long *)malloc(16 * sizeof(long));
  a[15] = 3;
  free(a);
  long *b = (long *)malloc(16 * sizeof(long));
  b[15] = 4;
  print_int(b[15]);
  free(b);
  return 0;
}
|}

let test_safe_pointer_in_memory () =
  clean
    {|
struct box { long *p; };
int main(void) {
  struct box b;
  long *a = (long *)malloc(4 * sizeof(long));
  a[1] = 21;
  b.p = a;
  print_int(b.p[1]);
  free(a);
  return 0;
}
|}

(* the generic boxed-builtin path and the typed fast twins share one
   implementation, so steps, cycles, counters and site attribution are
   identical — the same identity the fuzz oracle checks at scale *)
let test_fast_generic_twins () =
  let src =
    {|
long sum(long *a, long n) {
  long s = 0;
  long i;
  for (i = 0; i < n; i++) s += a[i];
  return s;
}
int main(void) {
  long *a = (long *)malloc(16 * sizeof(long));
  long i;
  for (i = 0; i < 16; i++) a[i] = i;
  print_int(sum(a, 16));
  free(a);
  return 0;
}
|}
  in
  List.iter
    (fun level ->
      let setup = { tp_setup with level } in
      let fast = run ~setup src in
      let generic =
        run ~setup:{ setup with dispatch = Harness.Generic } src
      in
      Alcotest.(check string) "same output" fast.Harness.output
        generic.Harness.output;
      Alcotest.(check int) "same cycles" fast.Harness.cycles
        generic.Harness.cycles;
      Alcotest.(check (list (pair string int)))
        "same counters"
        (Harness.counters_alist fast)
        (Harness.counters_alist generic))
    [ Pipeline.O1; Pipeline.O3 ]

let () =
  Alcotest.run "temporal"
    [
      ( "runtime",
        [
          Alcotest.test_case "key lifecycle" `Quick test_key_lifecycle;
          Alcotest.test_case "keys never reused" `Quick test_key_freshness;
          Alcotest.test_case "key 0 is wide" `Quick test_key_zero_wide;
          Alcotest.test_case "double free detected" `Quick
            test_double_free_detected;
          Alcotest.test_case "trie roundtrip" `Quick test_trie_roundtrip;
          Alcotest.test_case "meta copy" `Quick test_meta_copy;
          Alcotest.test_case "shadow stack zeroed" `Quick
            test_shadow_stack_zeroed;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "uaf read" `Slow test_uaf_read;
          Alcotest.test_case "uaf write" `Slow test_uaf_write;
          Alcotest.test_case "uaf through alias" `Slow test_uaf_through_alias;
          Alcotest.test_case "double free" `Slow test_double_free;
          Alcotest.test_case "dangling stack ref" `Slow
            test_dangling_stack_ref;
          Alcotest.test_case "safe heap use" `Slow test_safe_heap_use;
          Alcotest.test_case "free then fresh" `Slow test_free_then_fresh;
          Alcotest.test_case "pointer through memory" `Slow
            test_safe_pointer_in_memory;
          Alcotest.test_case "fast/generic twins" `Slow
            test_fast_generic_twins;
        ] );
    ]
