(* The fast-path execution engine: observational-inertness differential
   gate, error-message compatibility pins, and regression tests for the
   interpreter bugs fixed alongside it (bitcast sign bit, scratch-slot
   bloat, builtin-cache staleness). *)

open Mi_vm
open Mi_mir
module E = Mi_bench_kit.Experiments
module Harness = Mi_bench_kit.Harness
module Json = Mi_obs.Json

(* ------------------------------------------------------------------ *)
(* Differential gate: the engine is observationally inert              *)
(* ------------------------------------------------------------------ *)

(* goldens/engine_470lbm.json was produced by the pre-engine interpreter
   (generic hash-per-call dispatch) via
     mi-experiments --benchmark 470lbm -j 1 --json ... table1 hotchecks
   Regenerating the same document in-process must reproduce it byte for
   byte: modeled cycles, counters and per-site check profiles are
   independent of the dispatch strategy.  The golden predates the
   temporal checker, so the registry is narrowed to the two spatial
   approaches for the duration of the regeneration. *)
let test_golden_json () =
  (* under `dune runtest` the cwd is the staged test directory (the dune
     deps glob copies the golden there); under `dune exec` from the
     project root, fall back to the source-tree copy *)
  let golden_path =
    List.find Sys.file_exists
      [ "goldens/engine_470lbm.json"; "test/goldens/engine_470lbm.json" ]
  in
  let ic = open_in_bin golden_path in
  let golden = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let h = Harness.create ~jobs:1 () in
  let benchmarks = [ Mi_bench_kit.Suite.find_exn "470lbm" ] in
  let selected = [ "table1"; "hotchecks" ] in
  let every = Mi_core.Config.known_approaches () in
  let reports =
    Fun.protect
      ~finally:(fun () -> Mi_core.Config.restrict_approaches every)
      (fun () ->
        Mi_core.Config.restrict_approaches [ "softbound"; "lowfat" ];
        E.run_reports ~benchmarks h
          (List.map (fun n -> Option.get (E.find n)) selected))
  in
  let doc =
    Json.Obj
      [
        ( "reports",
          Json.List
            (List.map2
               (fun name (_, r) ->
                 match E.report_to_json r with
                 | Json.Obj fields ->
                     Json.Obj (("name", Json.Str name) :: fields)
                 | other -> other)
               selected reports) );
      ]
  in
  Alcotest.(check string)
    "regenerated report document is byte-identical to the pre-engine golden"
    golden
    (Json.to_string doc ^ "\n")

(* ------------------------------------------------------------------ *)
(* Error-message compatibility                                         *)
(* ------------------------------------------------------------------ *)

let run_src ?(fuel = 50_000_000) src =
  let m = Parser.parse_module src in
  let st = State.create ~fuel () in
  Builtins.install st;
  let img = Interp.load st [ m ] in
  (st, img, Interp.run st img)

let expect_trap src msg =
  let _, _, r = run_src src in
  match r.Interp.outcome with
  | Interp.Trapped m -> Alcotest.(check string) "trap message" msg m
  | Interp.Exited n -> Alcotest.fail ("exited " ^ string_of_int n)
  | _ -> Alcotest.fail "expected a trap"

let test_unknown_callee_msg () =
  expect_trap
    {|
module "u"
extern func @nosuch() -> i64
func @main() -> i64 {
entry:
  %x.0 = call @nosuch() : i64
  ret %x.0
}
|}
    "unresolved external: nosuch"

let test_void_result_msg () =
  expect_trap
    {|
module "v"
func @main() -> i64 {
entry:
  %x.0 = call @print_int(1:i64) : i64
  ret %x.0
}
|}
    "void result used from call to print_int"

let test_builtin_trap_msg () =
  (* a Trap raised inside a builtin (here the standard allocator)
     propagates with its message intact through the cached call site *)
  expect_trap
    {|
module "f"
func @main() -> i64 {
entry:
  call @free(12345678:i64)
  ret 0:i64
}
|}
    (Printf.sprintf "free of non-allocated %#x" 12345678)

let test_call_arity_msg () =
  expect_trap
    {|
module "a"
func @two(%a.0 : i64, %b.1 : i64) -> i64 {
entry:
  ret %a.0
}
func @main() -> i64 {
entry:
  %x.0 = call @two(1:i64) : i64
  ret %x.0
}
|}
    "call to two with 1 args, expected 2"

(* ------------------------------------------------------------------ *)
(* Inline caches vs late builtin registration                          *)
(* ------------------------------------------------------------------ *)

let test_builtin_registered_after_load () =
  (* call sites resolve against the builtin table at load time; the
     generation counter must make them pick up registrations that happen
     after the image was loaded *)
  let m =
    Parser.parse_module
      {|
module "late"
extern func @late_fn() -> i64
func @main() -> i64 {
entry:
  %x.0 = call @late_fn() : i64
  ret %x.0
}
|}
  in
  let st = State.create () in
  Builtins.install st;
  let img = Interp.load st [ m ] in
  State.register_builtin st "late_fn" (fun _ _ -> Some (State.I 7));
  match (Interp.run st img).Interp.outcome with
  | Interp.Exited 7 -> ()
  | _ -> Alcotest.fail "late-registered builtin was not picked up"

let test_builtin_reregistered_after_load () =
  (* a pre-warmed cache entry must not survive re-registration *)
  let m =
    Parser.parse_module
      {|
module "re"
func @main() -> i64 {
entry:
  call @print_int(1:i64)
  ret 0:i64
}
|}
  in
  let st = State.create () in
  Builtins.install st;
  let img = Interp.load st [ m ] in
  State.register_builtin st "print_int" (fun st _ ->
      Buffer.add_string st.State.out "replaced";
      None);
  let r = Interp.run st img in
  Alcotest.(check string) "replacement builtin ran" "replaced" r.Interp.output

(* ------------------------------------------------------------------ *)
(* Regression: f64 <-> i64 bitcast sign bit                            *)
(* ------------------------------------------------------------------ *)

let test_bitcast_sign_roundtrip () =
  (* pre-fix, the i64 pattern of -1.0 lost bit 63, so the sign test read
     positive and the round-trip produced +1.0 *)
  let _, _, r =
    run_src
      {|
module "bc"
func @main() -> i64 {
entry:
  %b.0 = bitcast f64 fl(-1.0) to i64
  %neg.1 = icmp slt i64 %b.0, 0:i64
  cbr %neg.1, back, bad
back:
  %f.2 = bitcast i64 %b.0 to f64
  %eq.3 = fcmp feq %f.2, fl(-1.0)
  cbr %eq.3, good, bad
good:
  ret 0:i64
bad:
  ret 1:i64
}
|}
  in
  match r.Interp.outcome with
  | Interp.Exited 0 -> ()
  | Interp.Exited n ->
      Alcotest.failf "bitcast dropped the sign bit (exit %d)" n
  | _ -> Alcotest.fail "bitcast program failed"

let prop_bitcast_roundtrip =
  (* the 63-bit substrate can keep everything except mantissa bit 0: the
     round-trip must preserve sign and stay within 1 ulp, exactly for
     every pattern with a zero low mantissa bit (all small integers,
     +-0.0, infinities) *)
  QCheck.Test.make ~name:"bitcast f64->i64->f64 roundtrip" ~count:300
    QCheck.float (fun f ->
      let src =
        Printf.sprintf
          {|
module "bcp"
func @main() -> i64 {
entry:
  %%b.0 = bitcast f64 fl(%h) to i64
  %%f.1 = bitcast i64 %%b.0 to f64
  call @print_f64(%%f.1)
  ret 0:i64
}
|}
          f
      in
      let _, _, r = run_src src in
      let expect =
        Int64.float_of_bits
          (Int64.logand (Int64.bits_of_float f) (Int64.lognot 1L))
      in
      r.Interp.output = Printf.sprintf "%.6g" expect)

let test_bitcast_minic_negative_double_global () =
  (* same bug family at the minic level: global double initializers went
     through a 63-bit int, clipping the IEEE sign bit, so a negative
     double global read back positive *)
  let m =
    Mi_minic.Lower.compile ~name:"negg"
      {|
double g = -1.5;
double z = 0.25;

int main(void) {
  if (g < 0.0 && g == -1.5 && z == 0.25) return 0;
  return 1;
}
|}
  in
  let st = State.create () in
  Builtins.install st;
  let img = Interp.load st [ m ] in
  match (Interp.run st img).Interp.outcome with
  | Interp.Exited 0 -> ()
  | Interp.Exited n ->
      Alcotest.failf "negative double global miscompiled (exit %d)" n
  | _ -> Alcotest.fail "minic program failed"

(* ------------------------------------------------------------------ *)
(* Regression: discarded results share one scratch slot per bank       *)
(* ------------------------------------------------------------------ *)

let test_scratch_slots_shared () =
  (* five discarded loads + one named value: pre-fix each discarded
     destination allocated a fresh integer slot (n_iregs = 1 named + 5),
     bloating the bank Array.make of every call of the function *)
  let m =
    Parser.parse_module
      {|
module "s"
func @main() -> i64 {
entry:
  %p.0 = alloca 8 align 8
  load i64 %p.0
  load i64 %p.0
  load i64 %p.0
  load i64 %p.0
  load i64 %p.0
  ret 0:i64
}
|}
  in
  let st = State.create () in
  Builtins.install st;
  let img = Interp.load st [ m ] in
  match Interp.func_regs img "main" with
  | None -> Alcotest.fail "main not loaded"
  | Some (n_i, n_f) ->
      Alcotest.(check int) "one named slot + one shared scratch" 2 n_i;
      Alcotest.(check int) "no float slots" 0 n_f

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "engine"
    [
      ( "differential",
        [ Alcotest.test_case "470lbm golden json" `Slow test_golden_json ] );
      ( "messages",
        [
          Alcotest.test_case "unknown callee" `Quick test_unknown_callee_msg;
          Alcotest.test_case "void result" `Quick test_void_result_msg;
          Alcotest.test_case "builtin trap" `Quick test_builtin_trap_msg;
          Alcotest.test_case "call arity" `Quick test_call_arity_msg;
        ] );
      ( "caches",
        [
          Alcotest.test_case "late registration" `Quick
            test_builtin_registered_after_load;
          Alcotest.test_case "re-registration" `Quick
            test_builtin_reregistered_after_load;
        ] );
      ( "bitcast",
        [
          Alcotest.test_case "sign roundtrip" `Quick
            test_bitcast_sign_roundtrip;
          QCheck_alcotest.to_alcotest prop_bitcast_roundtrip;
          Alcotest.test_case "minic negative double global" `Quick
            test_bitcast_minic_negative_double_global;
        ] );
      ( "scratch",
        [
          Alcotest.test_case "shared per bank" `Quick
            test_scratch_slots_shared;
        ] );
    ]
