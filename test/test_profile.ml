(* Persistent profile format (version 1): save/load round-trips, the
   validator rejects malformed and inconsistent documents, diff flags
   coverage drops and hit increases and nothing else, and offline merge
   mirrors Obs.merge (counters add, gauges max, associative and
   commutative up to serialized bytes). *)

open Mi_obs

let diamond = [| [| 1; 2 |]; [| 3 |]; [| 3 |]; [||] |]

(* a populated context: two check sites (one never executed), coverage
   over a diamond CFG, metrics, and nested spans *)
let mk_obs () =
  let o = Obs.create ~coverage:true () in
  let id =
    Site.register o.Obs.sites ~func:"main" ~construct:"load" ~approach:"sb"
  in
  Site.hit o.Obs.sites id ~wide:false ~cycles:2;
  Site.hit o.Obs.sites id ~wide:true ~cycles:2;
  ignore
    (Site.register o.Obs.sites ~func:"main" ~construct:"store" ~approach:"lf"
      : int);
  (match o.Obs.coverage with
  | Some cov ->
      let f = Coverage.register_fn cov ~name:"main" ~succ:diamond in
      Coverage.enter f 0;
      Coverage.transition f ~src:0 ~dst:1;
      Coverage.transition f ~src:1 ~dst:3
  | None -> Alcotest.fail "coverage requested but absent");
  Metrics.incr ~by:3 o.Obs.metrics "vm.steps";
  Metrics.set_gauge o.Obs.metrics "vm.peak_frames" 7;
  Trace.with_span o.Obs.trace "compile" (fun () ->
      Trace.with_span o.Obs.trace "lower" (fun () -> ()));
  o

let profile_bytes p = Json.to_string (Profile.to_json p)

let test_roundtrip () =
  let p = Profile.of_obs (mk_obs ()) in
  let file = Filename.temp_file "mi_profile" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Profile.save p file;
      let q = Profile.load file in
      Alcotest.(check bool) "structural equality" true (p = q);
      Alcotest.(check string) "byte equality" (profile_bytes p)
        (profile_bytes q);
      (* saving the loaded profile reproduces the file byte-for-byte *)
      let file2 = Filename.temp_file "mi_profile" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove file2)
        (fun () ->
          Profile.save q file2;
          let slurp f =
            let ic = open_in_bin f in
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            s
          in
          Alcotest.(check string) "file bytes stable" (slurp file)
            (slurp file2)))

let minimal =
  {|{"version":1,"sites":[],"coverage":[],"counters":{},"gauges":{},"spans":{}}|}

let expect_invalid name doc =
  match Profile.of_json (Json.of_string doc) with
  | (_ : Profile.t) -> Alcotest.failf "%s: validator accepted the document" name
  | exception Profile.Invalid_profile _ -> ()

let test_validation () =
  (* the minimal well-formed document is accepted *)
  let p = Profile.of_json (Json.of_string minimal) in
  Alcotest.(check int) "no sites" 0 (List.length p.Profile.pr_sites);
  expect_invalid "future version"
    {|{"version":99,"sites":[],"coverage":[],"counters":{},"gauges":{},"spans":{}}|};
  expect_invalid "missing field"
    {|{"version":1,"sites":[],"coverage":[],"counters":{},"gauges":{}}|};
  expect_invalid "wide exceeds hits"
    {|{"version":1,"sites":[{"id":0,"func":"f","construct":"load","approach":"sb","hits":1,"wide":2,"cycles":0}],"coverage":[],"counters":{},"gauges":{},"spans":{}}|};
  expect_invalid "block counter arity"
    {|{"version":1,"sites":[],"coverage":[{"func":"f","succ":[[1],[]],"blocks":[1],"edges":[1]}],"counters":{},"gauges":{},"spans":{}}|};
  expect_invalid "successor out of range"
    {|{"version":1,"sites":[],"coverage":[{"func":"f","succ":[[5],[]],"blocks":[1,0],"edges":[0]}],"counters":{},"gauges":{},"spans":{}}|}

let site ?(hits = 0) ?(wide = 0) ?(cycles = 0) id construct =
  {
    Site.sn_id = id;
    sn_func = "main";
    sn_construct = construct;
    sn_approach = "sb";
    sn_hits = hits;
    sn_wide = wide;
    sn_cycles = cycles;
  }

let cov ?(blocks = [| 1; 1 |]) ?(edges = [| 1 |]) func =
  {
    Coverage.cv_func = func;
    cv_succ = [| [| 1 |]; [||] |];
    cv_block_hits = blocks;
    cv_edge_hits = edges;
  }

let profile ?(sites = []) ?(coverage = []) ?(counters = []) ?(gauges = [])
    ?(spans = []) () =
  {
    Profile.pr_sites = sites;
    pr_coverage = coverage;
    pr_counters = counters;
    pr_gauges = gauges;
    pr_spans = spans;
  }

let test_diff () =
  let baseline =
    profile
      ~sites:[ site ~hits:100 ~cycles:200 0 "load" ]
      ~coverage:[ cov "main" ] ()
  in
  Alcotest.(check int) "equal profiles: no changes" 0
    (List.length (Profile.diff ~threshold:0.05 ~baseline baseline));
  (* coverage drop: a block and an edge go cold *)
  let dropped =
    profile
      ~sites:[ site ~hits:100 ~cycles:200 0 "load" ]
      ~coverage:[ cov ~blocks:[| 1; 0 |] ~edges:[| 0 |] "main" ]
      ()
  in
  (match Profile.diff ~threshold:0.05 ~baseline dropped with
  | [ Profile.Coverage_drop { cd_blocks; cd_edges; _ } ] ->
      Alcotest.(check (pair int int)) "blocks hit" (2, 1) cd_blocks;
      Alcotest.(check (pair int int)) "edges hit" (1, 0) cd_edges
  | l ->
      Alcotest.failf "expected one Coverage_drop, got %d changes: %s"
        (List.length l)
        (String.concat "; " (List.map Profile.change_to_string l)));
  (* hit increase past the threshold *)
  let hotter =
    profile
      ~sites:[ site ~hits:150 ~cycles:200 0 "load" ]
      ~coverage:[ cov "main" ] ()
  in
  (match Profile.diff ~threshold:0.05 ~baseline hotter with
  | [ Profile.Hits_increase { hi_old; hi_new; _ } ] ->
      Alcotest.(check int) "old hits" 100 hi_old;
      Alcotest.(check int) "new hits" 150 hi_new
  | l -> Alcotest.failf "expected one Hits_increase, got %d" (List.length l));
  (* an increase inside the threshold passes *)
  let slightly =
    profile
      ~sites:[ site ~hits:104 ~cycles:200 0 "load" ]
      ~coverage:[ cov "main" ] ()
  in
  Alcotest.(check int) "within threshold: no changes" 0
    (List.length (Profile.diff ~threshold:0.05 ~baseline slightly))

(* The absolute floor: a site the baseline never executed must not flag
   after a handful of hits, even though any growth beats the relative
   threshold against a zero (clamped-to-1) baseline. *)
let test_diff_min_hits () =
  let baseline =
    profile ~sites:[ site ~hits:0 ~cycles:0 0 "load" ] ~coverage:[ cov "main" ] ()
  in
  let a_few =
    profile
      ~sites:[ site ~hits:20 ~cycles:40 0 "load" ]
      ~coverage:[ cov "main" ] ()
  in
  Alcotest.(check int) "zero-baseline site under the floor: no flag" 0
    (List.length (Profile.diff ~threshold:0.05 ~baseline a_few));
  (* past the default floor of 32 it does flag *)
  let many =
    profile
      ~sites:[ site ~hits:40 ~cycles:80 0 "load" ]
      ~coverage:[ cov "main" ] ()
  in
  (match Profile.diff ~threshold:0.05 ~baseline many with
  | [ Profile.Hits_increase { hi_old; hi_new; _ } ] ->
      Alcotest.(check int) "old hits" 0 hi_old;
      Alcotest.(check int) "new hits" 40 hi_new
  | l -> Alcotest.failf "expected one Hits_increase, got %d" (List.length l));
  (* the floor is tunable: lowering it re-flags the small growth *)
  Alcotest.(check int) "explicit min_hits 10 flags the small growth" 1
    (List.length (Profile.diff ~min_hits:10 ~threshold:0.05 ~baseline a_few));
  (* a floor-sized delta on a hot baseline still needs the relative
     threshold: 100 -> 135 is +35 hits but +35% > 5%, flags; with a
     60% threshold it does not *)
  let hot_base =
    profile
      ~sites:[ site ~hits:100 ~cycles:200 0 "load" ]
      ~coverage:[ cov "main" ] ()
  in
  let hot_plus =
    profile
      ~sites:[ site ~hits:135 ~cycles:200 0 "load" ]
      ~coverage:[ cov "main" ] ()
  in
  Alcotest.(check int) "relative threshold still applies" 1
    (List.length (Profile.diff ~threshold:0.05 ~baseline:hot_base hot_plus));
  Alcotest.(check int) "past floor but under relative threshold: no flag" 0
    (List.length (Profile.diff ~threshold:0.6 ~baseline:hot_base hot_plus))

let test_merge () =
  let a =
    profile
      ~sites:[ site ~hits:2 ~wide:1 ~cycles:4 0 "load" ]
      ~coverage:[ cov "main" ]
      ~counters:[ ("vm.steps", 3) ]
      ~gauges:[ ("vm.peak_frames", 7) ]
      ~spans:[ ("compile", 1) ]
      ()
  in
  let b =
    profile
      ~sites:[ site ~hits:5 0 "load" ]
      ~coverage:[ cov ~blocks:[| 1; 0 |] ~edges:[| 0 |] "main" ]
      ~counters:[ ("vm.steps", 4); ("sb.checks", 1) ]
      ~gauges:[ ("vm.peak_frames", 3) ]
      ~spans:[ ("compile", 2) ]
      ()
  in
  let c = profile ~counters:[ ("lf.checks", 9) ] ~gauges:[ ("depth", 1) ] () in
  let m = Profile.merge a b in
  (match m.Profile.pr_sites with
  | [ s ] ->
      Alcotest.(check int) "site hits add" 7 s.Site.sn_hits;
      Alcotest.(check int) "wide hits add" 1 s.Site.sn_wide
  | l -> Alcotest.failf "expected one merged site, got %d" (List.length l));
  (match m.Profile.pr_coverage with
  | [ s ] ->
      Alcotest.(check bool) "coverage blocks add" true
        (s.Coverage.cv_block_hits = [| 2; 1 |])
  | l -> Alcotest.failf "expected one merged map, got %d" (List.length l));
  Alcotest.(check (option int))
    "counters add" (Some 7)
    (List.assoc_opt "vm.steps" m.Profile.pr_counters);
  Alcotest.(check (option int))
    "gauges max" (Some 7)
    (List.assoc_opt "vm.peak_frames" m.Profile.pr_gauges);
  Alcotest.(check (option int))
    "span counts add" (Some 3)
    (List.assoc_opt "compile" m.Profile.pr_spans);
  (* associativity and commutativity, compared as serialized bytes *)
  Alcotest.(check string)
    "commutative" (profile_bytes m)
    (profile_bytes (Profile.merge b a));
  Alcotest.(check string)
    "associative"
    (profile_bytes (Profile.merge (Profile.merge a b) c))
    (profile_bytes (Profile.merge a (Profile.merge b c)))

let () =
  Alcotest.run "profile"
    [
      ( "format",
        [
          Alcotest.test_case "save/load round-trip" `Quick test_roundtrip;
          Alcotest.test_case "validator rejects bad documents" `Quick
            test_validation;
        ] );
      ( "diff",
        [
          Alcotest.test_case "drops and increases flagged" `Quick test_diff;
          Alcotest.test_case "absolute min-hits floor" `Quick
            test_diff_min_hits;
        ] );
      ( "merge",
        [
          Alcotest.test_case "add/max semantics, assoc + commut" `Quick
            test_merge;
        ] );
    ]
