(* A guided tour of the paper's §4: eleven programs on which the two
   approaches disagree — spurious reports on valid C, undetected real
   bugs, and the compiler-version effects of Figure 7.

   Run with: dune exec examples/usability_pitfalls.exe *)

module U = Mi_bench_kit.Usability
module Config = Mi_core.Config

let () =
  print_endline
    "Usability case studies from 'Memory Safety Instrumentations in";
  print_endline "Practice' §4 and appendix B.\n";
  let spurious = ref 0 and missed = ref 0 in
  List.iter
    (fun (c : U.case) ->
      Printf.printf "=== %s (paper §%s) ===\n" c.case_name c.section;
      List.iter
        (fun approach ->
          let verdict, _run = U.run_case c approach in
          let qualifier =
            match (verdict, c.is_actual_bug) with
            | U.Reports, false ->
                incr spurious;
                "  <- SPURIOUS report on a valid program"
            | U.Works, true ->
                incr missed;
                "  <- real violation goes UNDETECTED"
            | U.Reports, true -> "  (true positive)"
            | U.Works, false -> "  (correctly accepted)"
          in
          Printf.printf "  %-10s %-18s%s\n"
            (Config.approach_name approach)
            (U.verdict_to_string verdict)
            qualifier)
        (Config.known_approaches ());
      Printf.printf "  %s\n\n" c.explain)
    U.all;
  Printf.printf
    "Across the corpus: %d spurious reports and %d undetected violations —\n\
     the applicability problems §4.7 concludes future research must solve.\n"
    !spurious !missed
