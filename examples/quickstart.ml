(* Quickstart: compile a C program, instrument it with SoftBound, and
   run it — the five-minute tour of the public API.

   Run with: dune exec examples/quickstart.exe *)

let program =
  {|
int main(void) {
  long *data = (long *)malloc(10 * sizeof(long));
  long i;
  for (i = 0; i < 10; i++) data[i] = i * i;
  print_str("sum of squares: ");
  long sum = 0;
  for (i = 0; i < 10; i++) sum += data[i];
  print_int(sum);
  print_newline();
  free(data);
  return 0;
}
|}

let () =
  (* 1. Compile MiniC to the MIR intermediate representation. *)
  let m = Mi_minic.Lower.compile ~name:"quickstart" program in
  Printf.printf "compiled: %d functions, %d instructions\n"
    (List.length (Mi_mir.Irmod.defined_funcs m))
    (Mi_mir.Irmod.instr_count m);

  (* 2. Run the optimizer with the instrumentation plugged in at an
        extension point — exactly like Figure 8 of the paper. *)
  let config = Mi_core.Config.softbound in
  Mi_passes.Pipeline.run ~level:Mi_passes.Pipeline.O3
    ~ep:Mi_passes.Pipeline.VectorizerStart
    ~instrument:(fun m ->
      let stats = Mi_core.Instrument.run config m in
      Printf.printf "instrumented: %d checks placed, %d invariant sites\n"
        stats.Mi_core.Instrument.total_checks_placed
        stats.Mi_core.Instrument.total_invariants)
    m;

  (* 3. Execute on the VM with the SoftBound runtime attached. *)
  let st = Mi_vm.State.create () in
  Mi_vm.Builtins.install st;
  ignore (Mi_softbound.Softbound_rt.install st);
  let img = Mi_vm.Interp.load st [ m ] in
  let result = Mi_vm.Interp.run st img in

  (* 4. Inspect the outcome. *)
  print_string result.output;
  (match result.outcome with
  | Mi_vm.Interp.Exited code -> Printf.printf "exited with %d\n" code
  | Mi_vm.Interp.Safety_violation { checker; reason } ->
      Printf.printf "%s reported: %s\n" checker reason
  | Mi_vm.Interp.Trapped msg -> Printf.printf "VM trap: %s\n" msg
  | Mi_vm.Interp.Exhausted budget ->
      Printf.printf "fuel budget of %d exhausted\n" budget);
  Printf.printf "executed %d instructions in %d model cycles\n" result.steps
    result.cycles;
  Printf.printf "dereference checks: %d (%d with wide bounds)\n"
    (List.assoc "sb.checks" result.counters)
    (try List.assoc "sb.checks_wide" result.counters with Not_found -> 0)
