(* The compiler-pipeline experiment of §5.5 on a small benchmark set: how
   much the extension point at which the instrumentation runs changes the
   execution-time overhead, and how misleading a comparison across
   different points would be.

   Run with: dune exec examples/pipeline_points.exe *)

module Config = Mi_core.Config
module Pipeline = Mi_passes.Pipeline
module Harness = Mi_bench_kit.Harness

(* one trie-heavy benchmark (SoftBound's worst case), one check-dense one
   (Low-Fat's worst case), one float kernel *)
let bench_names = [ "183equake"; "186crafty"; "433milc" ]

let () =
  let benches = List.map Mi_bench_kit.Suite.find_exn bench_names in
  List.iter
    (fun (b : Mi_bench_kit.Bench.t) ->
      Printf.printf "benchmark: %-10s %s\n" b.name b.descr)
    benches;
  print_newline ();
  let baselines =
    List.map (fun b -> Harness.run_benchmark Harness.baseline b) benches
  in
  (* overhead geomean of one (approach, extension point) cell *)
  let cell approach ep =
    let overheads =
      List.map2
        (fun b base ->
          let setup =
            {
              (Harness.with_config
                 (Config.optimized (Config.of_approach approach))
                 Harness.baseline)
              with
              ep;
            }
          in
          Harness.overhead ~baseline:base (Harness.run_benchmark setup b))
        benches baselines
    in
    Mi_support.Util.geomean overheads
  in
  let table =
    List.map
      (fun ep -> (ep, cell "softbound" ep, cell "lowfat" ep))
      Pipeline.all_extension_points
  in
  Printf.printf "%-22s %12s %12s   (geomean over %d benchmarks)\n"
    "extension point" "softbound" "lowfat" (List.length benches);
  List.iter
    (fun (ep, sb, lf) ->
      Printf.printf "%-22s %11.2fx %11.2fx\n" (Pipeline.ep_name ep) sb lf)
    table;
  (* the paper's warning: compare one tool at the early point against the
     other at a late point and you manufacture a difference that has
     nothing to do with the tools *)
  let get approach ep =
    let _, sb, lf = List.find (fun (e, _, _) -> e = ep) table in
    match approach with "lowfat" -> lf | _ -> sb
  in
  let sb_early = get "softbound" Pipeline.ModuleOptimizerEarly in
  let sb_late = get "softbound" Pipeline.VectorizerStart in
  let lf_early = get "lowfat" Pipeline.ModuleOptimizerEarly in
  let lf_late = get "lowfat" Pipeline.VectorizerStart in
  Printf.printf
    "\nFair comparison (both at VectorizerStart): SoftBound %.2fx vs \
     Low-Fat %.2fx\n"
    sb_late lf_late;
  Printf.printf
    "Uneven comparisons (§5.5):\n\
    \  Low-Fat@early (%.2fx) vs SoftBound@late (%.2fx): SoftBound looks \
     %.0f%% faster\n\
    \  SoftBound@early (%.2fx) vs Low-Fat@late (%.2fx): the gap %s\n\
     Same tools, same benchmarks — only the insertion point moved.\n"
    lf_early sb_late
    ((lf_early /. sb_late -. 1.) *. 100.)
    sb_early lf_late
    (if sb_early > lf_late then
       Printf.sprintf "flips: Low-Fat looks %.0f%% faster"
         ((sb_early /. lf_late -. 1.) *. 100.)
     else "shrinks to nothing")
