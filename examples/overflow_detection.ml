(* Detecting real out-of-bounds accesses: run a series of buggy programs
   under both instrumentations and compare what each one catches — the
   guarantees discussion of §4 in action.

   Run with: dune exec examples/overflow_detection.exe *)

module Config = Mi_core.Config
module Harness = Mi_bench_kit.Harness

let bugs =
  [
    ( "heap overflow by one element",
      "SoftBound keeps exact bounds; Low-Fat pads to the size class, so \
       this lands in padding",
      {|
int main(void) {
  long *a = (long *)malloc(10 * sizeof(long));
  a[10] = 1;           /* one past the end */
  print_int(a[0]);
  return 0;
}
|} );
    ( "heap overflow past the size class",
      "both approaches catch overflows that leave the padded object",
      {|
int main(void) {
  long *a = (long *)malloc(10 * sizeof(long));
  long i;
  for (i = 0; i < 40; i++) a[i] = i;
  print_int(a[0]);
  return 0;
}
|} );
    ( "stack buffer underflow",
      "both catch accesses before the object's base",
      {|
int main(void) {
  long buf[8];
  buf[0] = 1;
  print_int(buf[-2]);
  return 0;
}
|} );
    ( "global array overflow",
      "protected by SoftBound's static bounds and Low-Fat's mirrored \
       globals",
      {|
long table[16];
int main(void) {
  long i;
  for (i = 0; i <= 40; i++) table[i] = i;
  print_int(table[0]);
  return 0;
}
|} );
    ( "off-by-one string copy",
      "the NUL terminator lands one past the 4-byte buffer",
      {|
int main(void) {
  char *dst = (char *)malloc(4);
  /* writes 'l','o','n','g' + NUL: 5 bytes into 4 */
  dst[0] = 'l'; dst[1] = 'o'; dst[2] = 'n'; dst[3] = 'g';
  dst[4] = 0;
  print_str(dst);
  return 0;
}
|} );
  ]

let verdict setup src =
  let r = Harness.run_sources setup [ Mi_bench_kit.Bench.src "bug" src ] in
  match r.Harness.outcome with
  | Mi_vm.Interp.Exited _ -> "missed (ran to completion)"
  | Mi_vm.Interp.Safety_violation { reason; _ } -> "CAUGHT: " ^ reason
  | Mi_vm.Interp.Trapped msg -> "vm trap: " ^ msg
  | Mi_vm.Interp.Exhausted budget ->
      Printf.sprintf "fuel budget of %d exhausted" budget

let () =
  List.iter
    (fun (name, note, src) ->
      Printf.printf "--- %s ---\n    (%s)\n" name note;
      List.iter
        (fun (label, approach) ->
          let setup =
            Harness.with_config (Config.of_approach approach) Harness.baseline
          in
          Printf.printf "  %-10s %s\n" label (verdict setup src))
        (List.map (fun a -> (a, a)) (Config.known_approaches ()));
      print_newline ())
    bugs
