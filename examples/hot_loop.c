/* Profiling demo for `memsafe --profile` / `mic --profile`: almost all
   check cycles land on the histogram-update sites inside step(), while
   the setup loop in main() stays cold.  The per-site table should rank
   the step() sites first. */

long N = 64;

long *table;
long *hist;

long mix(long x) {
  return (x * 1103515245 + 12345) % 262144;
}

void step(long rounds) {
  long r, i;
  for (r = 0; r < rounds; r++) {
    for (i = 0; i < 64; i++) {
      long h = mix(table[i] + r) % 64;
      hist[h] = hist[h] + 1;       /* hot store site */
      table[i] = table[i] + hist[h] % 7;
    }
  }
}

int main(void) {
  long i;
  long sum = 0;
  table = (long *)malloc(64 * sizeof(long));
  hist = (long *)malloc(64 * sizeof(long));
  for (i = 0; i < 64; i++) {       /* cold init sites */
    table[i] = i * 17 + 3;
    hist[i] = 0;
  }
  step(200);
  for (i = 0; i < 64; i++) sum += hist[i];
  print_str("hist sum ");
  print_int(sum);
  print_newline();
  return 0;
}
