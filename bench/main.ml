(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation on
   the 20-benchmark suite (the numbers EXPERIMENTS.md records).

   Part 2 runs Bechamel wall-clock microbenchmarks of the framework
   itself — one Test.make per reproduced table/figure exercising the
   pipeline that produces it, plus component benchmarks (parser,
   dominator tree, optimizer, interpreter, and both runtimes). *)

open Bechamel
open Toolkit
module E = Mi_bench_kit.Experiments
module Config = Mi_core.Config

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's experiments                                     *)
(* ------------------------------------------------------------------ *)

let regenerate_reports () =
  print_endline "=================================================================";
  print_endline " Reproduction of the paper's evaluation (tables and figures)";
  print_endline "=================================================================";
  List.iter
    (fun (r : E.report) -> Printf.printf "\n== %s ==\n%s%!" r.E.title r.E.text)
    (E.all_reports ())

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel microbenchmarks                                    *)
(* ------------------------------------------------------------------ *)

(* One representative benchmark per experiment keeps the wall-clock
   microbenchmarks fast while still exercising the full path that
   regenerates the corresponding table/figure. *)
let sample_bench () = Mi_bench_kit.Suite.find_exn "186crafty"

let compile_only (b : Mi_bench_kit.Bench.t) =
  List.map
    (fun (s : Mi_bench_kit.Bench.source) ->
      Mi_minic.Lower.compile ~name:s.src_name s.code)
    b.sources

let run_setup setup =
  let b = sample_bench () in
  ignore (Mi_bench_kit.Harness.run_benchmark setup b)

let test_fig9_sb =
  Test.make ~name:"fig9: softbound end-to-end (1 bench)"
    (Staged.stage (fun () -> run_setup E.sb_opt))

let test_fig9_lf =
  Test.make ~name:"fig9: lowfat end-to-end (1 bench)"
    (Staged.stage (fun () -> run_setup E.lf_opt))

let test_fig10_meta =
  Test.make ~name:"fig10: softbound metadata-only (1 bench)"
    (Staged.stage (fun () ->
         run_setup
           (Mi_bench_kit.Harness.with_config
              (Config.metadata_only Config.softbound)
              Mi_bench_kit.Harness.baseline)))

let test_fig11_meta =
  Test.make ~name:"fig11: lowfat metadata-only (1 bench)"
    (Staged.stage (fun () ->
         run_setup
           (Mi_bench_kit.Harness.with_config
              (Config.metadata_only Config.lowfat)
              Mi_bench_kit.Harness.baseline)))

let test_fig12_early =
  Test.make ~name:"fig12/13: instrument at ModuleOptimizerEarly (1 bench)"
    (Staged.stage (fun () ->
         run_setup
           {
             (Mi_bench_kit.Harness.with_config
                (Config.optimized Config.softbound)
                Mi_bench_kit.Harness.baseline)
             with
             ep = Mi_passes.Pipeline.ModuleOptimizerEarly;
           }))

let test_table2_counters =
  Test.make ~name:"table2: wide-bounds accounting (1 bench)"
    (Staged.stage (fun () -> run_setup E.sb_full))

(* framework component microbenchmarks *)

let crafty_ir =
  lazy
    (let m = List.hd (compile_only (sample_bench ())) in
     Mi_mir.Printer.module_to_string m)

let test_minic_compile =
  Test.make ~name:"component: minic compile (crafty)"
    (Staged.stage (fun () -> ignore (compile_only (sample_bench ()))))

let test_mir_parse =
  Test.make ~name:"component: MIR parse (crafty)"
    (Staged.stage (fun () ->
         ignore (Mi_mir.Parser.parse_module (Lazy.force crafty_ir))))

let test_pipeline_o3 =
  Test.make ~name:"component: -O3 pipeline (crafty)"
    (Staged.stage (fun () ->
         let m = Mi_mir.Parser.parse_module (Lazy.force crafty_ir) in
         Mi_passes.Pipeline.run ~level:Mi_passes.Pipeline.O3 m))

let test_instrument_pass =
  Test.make ~name:"component: instrumentation pass (softbound, crafty)"
    (Staged.stage (fun () ->
         let m = Mi_mir.Parser.parse_module (Lazy.force crafty_ir) in
         ignore (Mi_core.Instrument.run Config.softbound m)))

let test_domtree =
  Test.make ~name:"component: dominator tree (crafty)"
    (Staged.stage
       (let m = Mi_mir.Parser.parse_module (Lazy.force crafty_ir) in
        fun () ->
          List.iter
            (fun f ->
              ignore (Mi_analysis.Dom.build (Mi_analysis.Cfg.build f)))
            (Mi_mir.Irmod.defined_funcs m)))

let test_lowfat_alloc =
  Test.make ~name:"component: lowfat malloc/free cycle"
    (Staged.stage
       (let st = Mi_vm.State.create () in
        Mi_vm.Builtins.install st;
        let t = Mi_lowfat.Lowfat_rt.install st in
        fun () ->
          let a = st.Mi_vm.State.malloc_hook st 100 in
          Mi_lowfat.Lowfat_rt.lf_free t st a))

let test_sb_trie =
  Test.make ~name:"component: softbound trie store+load"
    (Staged.stage
       (let st = Mi_vm.State.create () in
        Mi_vm.Builtins.install st;
        let t = Mi_softbound.Softbound_rt.install st in
        let addr = ref Mi_vm.Layout.heap_base in
        fun () ->
          addr := Mi_vm.Layout.heap_base + ((!addr + 8) mod 65536);
          Mi_softbound.Softbound_rt.trie_store t !addr ~base:1 ~bound:2;
          ignore (Mi_softbound.Softbound_rt.trie_load t !addr)))

let tests =
  [
    test_fig9_sb;
    test_fig9_lf;
    test_fig10_meta;
    test_fig11_meta;
    test_fig12_early;
    test_table2_counters;
    test_minic_compile;
    test_mir_parse;
    test_pipeline_o3;
    test_instrument_pass;
    test_domtree;
    test_lowfat_alloc;
    test_sb_trie;
  ]

let run_microbenchmarks () =
  print_endline "\n=================================================================";
  print_endline " Bechamel microbenchmarks (framework wall-clock performance)";
  print_endline "=================================================================";
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let instances = Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
          (Instance.monotonic_clock)
          results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-55s %12.0f ns/run\n%!" name est
          | _ -> Printf.printf "%-55s (no estimate)\n%!" name)
        ols)
    tests

(* ------------------------------------------------------------------ *)
(* Part 3: VM engine throughput (the BENCH_vm.json perf gate)          *)
(* ------------------------------------------------------------------ *)

(* Steps/second of the interpreter on the fixed `hotchecks` workload:
   sb_opt and lf_opt over the full suite.  One warm-up pass through a
   single-worker session populates the instrumentation cache, so the
   timed repetitions measure VM execution, not compilation.  The VM is
   deterministic — total steps per pass are a fixed number — which makes
   steps/sec a pure wall-clock measure of the execution engine.
   Machine-readable output: one "vm_steps: ..." line, parsed by
   bench/ci.sh against the baseline recorded in BENCH_vm.json.

   [~coverage:true] runs the identical workload with a VM coverage
   registry attached ("vm_steps_cov: ..."), so ci.sh can gate the
   block/edge-recording overhead against BENCH_coverage.json. *)
let run_vm_steps ?(coverage = false) () =
  let h =
    Mi_bench_kit.Harness.create ~jobs:1
      ~obs:(Mi_obs.Obs.create ~coverage ())
      ()
  in
  let jobs =
    List.concat_map
      (fun b -> [ (E.sb_opt, b); (E.lf_opt, b) ])
      Mi_bench_kit.Suite.all
  in
  let pass () =
    List.fold_left
      (fun acc (setup, b) ->
        match Mi_bench_kit.Harness.run h setup b with
        | Ok r -> acc + r.Mi_bench_kit.Harness.steps
        | Error e ->
            failwith
              (Printf.sprintf "vm-steps job failed: %s: %s"
                 e.Mi_bench_kit.Harness.bench e.Mi_bench_kit.Harness.reason))
      0 jobs
  in
  let steps_per_pass = pass () (* warm-up; also fixes the step count *) in
  let reps = 3 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    let s = pass () in
    if s <> steps_per_pass then failwith "vm-steps: nondeterministic steps"
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let total = reps * steps_per_pass in
  Printf.printf
    "%s: benches=%d steps_per_pass=%d reps=%d elapsed_s=%.3f \
     steps_per_sec=%.0f\n\
     %!"
    (if coverage then "vm_steps_cov" else "vm_steps")
    (List.length Mi_bench_kit.Suite.all)
    steps_per_pass reps dt
    (float_of_int total /. dt)

(* ------------------------------------------------------------------ *)
(* Part 4: fuzz throughput (the BENCH_fuzz.json gate)                  *)
(* ------------------------------------------------------------------ *)

(* Scaling study of the two fuzzing modes at an identical execution
   budget: the coverage-guided evolutionary soak (fresh throwaway
   corpus, exact [--max-execs] budget, no mutants) against blind seed
   enumeration (the same number of programs, also mutant-free), each at
   -j 1/2/4/8.  Both arms are deterministic for a fixed budget and
   independent of the worker count, so the cell counts are exact
   numbers ci.sh gates against BENCH_fuzz.json — only the elapsed
   seconds vary with the machine.  One "fuzz_scaling: ..." line per
   worker count. *)
let fuzz_budget_execs = 40

let run_fuzz_scaling () =
  List.iter
    (fun j ->
      let dir =
        let f = Filename.temp_file "mi-fuzz-scale" "" in
        Sys.remove f;
        Sys.mkdir f 0o755;
        f
      in
      let t0 = Unix.gettimeofday () in
      let g =
        Mi_fuzz.Fuzz.soak_run
          (Mi_fuzz.Fuzz.soak_config ~jobs:j ~max_execs:fuzz_budget_execs
             ~mutants_per_round:0 ~corpus_dir:dir ())
      in
      let g_dt = Unix.gettimeofday () -. t0 in
      let stats =
        match g.Mi_fuzz.Fuzz.r_corpus with Some c -> c | None -> assert false
      in
      Mi_fuzz.Corpus.reset ~dir;
      (try Sys.rmdir dir with _ -> ());
      let t0 = Unix.gettimeofday () in
      let b =
        Mi_fuzz.Fuzz.run
          (Mi_fuzz.Fuzz.campaign ~jobs:j ~seeds:(1, fuzz_budget_execs) ())
      in
      let b_dt = Unix.gettimeofday () -. t0 in
      Printf.printf
        "fuzz_scaling: j=%d execs=%d guided_cells=%d blind_cells=%d \
         corpus_entries=%d rounds=%d findings=%d guided_s=%.3f blind_s=%.3f \
         guided_cells_per_s=%.0f\n\
         %!"
        j stats.Mi_fuzz.Fuzz.cs_execs g.Mi_fuzz.Fuzz.r_cells
        b.Mi_fuzz.Fuzz.r_cells stats.Mi_fuzz.Fuzz.cs_entries
        stats.Mi_fuzz.Fuzz.cs_rounds
        (List.length g.Mi_fuzz.Fuzz.r_findings
        + List.length b.Mi_fuzz.Fuzz.r_findings)
        g_dt b_dt
        (float_of_int g.Mi_fuzz.Fuzz.r_cells /. g_dt))
    [ 1; 2; 4; 8 ]

let () =
  let args = Array.to_list Sys.argv in
  let micro_only = List.mem "--micro-only" args in
  let reports_only = List.mem "--reports-only" args in
  if List.mem "--vm-steps" args then run_vm_steps ()
  else if List.mem "--vm-steps-cov" args then run_vm_steps ~coverage:true ()
  else if List.mem "--fuzz-scaling" args then run_fuzz_scaling ()
  else begin
    if not micro_only then regenerate_reports ();
    if not reports_only then run_microbenchmarks ()
  end
