#!/bin/sh
# CI gate: build, test, formatting (when ocamlformat is available), and a
# smoke run of the machine-readable experiment output on one benchmark.
# Exits non-zero on any failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

# dune's fmt check needs the pinned ocamlformat binary; skip (loudly)
# where it is not installed rather than failing the gate on tooling.
if command -v ocamlformat >/dev/null 2>&1; then
    echo "== dune build @fmt =="
    dune build @fmt
else
    echo "== skipping @fmt (ocamlformat not installed) =="
fi

echo "== experiments --json smoke (470lbm) =="
out=$(mktemp /tmp/mi-ci-XXXXXX.json)
trap 'rm -f "$out"' EXIT
# the binary re-parses its own output before exiting, so a zero status
# already certifies well-formed JSON; double-check with python3 if present
dune exec bin/experiments.exe -- --benchmark 470lbm --json "$out" \
    table2 hotchecks >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - "$out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
reports = {r["name"]: r for r in doc["reports"]}
assert "table2" in reports and "hotchecks" in reports, reports.keys()
labels = [s["label"] for s in reports["table2"]["series"]]
assert "sb_checks_wide" in labels and "lf_checks_wide" in labels, labels
print("json validated:", ", ".join(sorted(reports)))
EOF
fi

echo "== ci OK =="
