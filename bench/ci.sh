#!/bin/sh
# CI gate: build, test, formatting (when ocamlformat is available), and a
# smoke run of the machine-readable experiment output on one benchmark.
# Exits non-zero on any failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

# dune's fmt check needs the pinned ocamlformat binary; skip (loudly)
# where it is not installed rather than failing the gate on tooling.
if command -v ocamlformat >/dev/null 2>&1; then
    echo "== dune build @fmt =="
    dune build @fmt
else
    echo "== skipping @fmt (ocamlformat not installed) =="
fi

echo "== experiments --json smoke (470lbm) =="
out=$(mktemp /tmp/mi-ci-XXXXXX.json)
out_j2=$(mktemp /tmp/mi-ci-j2-XXXXXX.json)
cache=$(mktemp -d /tmp/mi-ci-cache-XXXXXX)
trap 'rm -rf "$out" "$out_j2" "$cache"' EXIT
# the binary re-parses its own output before exiting, so a zero status
# already certifies well-formed JSON; double-check with python3 if present
dune exec bin/experiments.exe -- --benchmark 470lbm -j 1 --json "$out" \
    table2 hotchecks >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - "$out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
reports = {r["name"]: r for r in doc["reports"]}
assert "table2" in reports and "hotchecks" in reports, reports.keys()
labels = [s["label"] for s in reports["table2"]["series"]]
assert "sb_checks_wide" in labels and "lf_checks_wide" in labels, labels
print("json validated:", ", ".join(sorted(reports)))
EOF
fi

# the parallel session's determinism guarantee: the same experiments at
# -j 2 (with the on-disk instrumentation cache) must produce the same
# JSON document byte for byte as the sequential run above
echo "== experiments determinism (-j 2 vs -j 1) =="
dune exec bin/experiments.exe -- --benchmark 470lbm -j 2 \
    --cache-dir "$cache" --json "$out_j2" table2 hotchecks >/dev/null
cmp "$out" "$out_j2"
echo "-j 2 output byte-identical to -j 1"

echo "== ci OK =="
