#!/bin/sh
# CI gate: build, test, formatting (when ocamlformat is available), and a
# smoke run of the machine-readable experiment output on one benchmark.
# Exits non-zero on any failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

# dune's fmt check needs the pinned ocamlformat binary; skip (loudly)
# where it is not installed rather than failing the gate on tooling.
if command -v ocamlformat >/dev/null 2>&1; then
    echo "== dune build @fmt =="
    dune build @fmt
else
    echo "== skipping @fmt (ocamlformat not installed) =="
fi

echo "== experiments --json smoke (470lbm) =="
out=$(mktemp /tmp/mi-ci-XXXXXX.json)
out_j2=$(mktemp /tmp/mi-ci-j2-XXXXXX.json)
cache=$(mktemp -d /tmp/mi-ci-cache-XXXXXX)
mut_out=$(mktemp /tmp/mi-ci-mut-XXXXXX.txt)
chaos1=$(mktemp /tmp/mi-ci-chaos1-XXXXXX.txt)
chaos2=$(mktemp /tmp/mi-ci-chaos2-XXXXXX.txt)
fuzz1=$(mktemp /tmp/mi-ci-fuzz1-XXXXXX.json)
fuzz2=$(mktemp /tmp/mi-ci-fuzz2-XXXXXX.json)
prof1=$(mktemp /tmp/mi-ci-prof1-XXXXXX.json)
prof2=$(mktemp /tmp/mi-ci-prof2-XXXXXX.json)
flame=$(mktemp /tmp/mi-ci-flame-XXXXXX.txt)
trap 'rm -rf "$out" "$out_j2" "$cache" "$mut_out" "$chaos1" "$chaos2" \
     "$fuzz1" "$fuzz2" "$prof1" "$prof2" "$flame"' EXIT
# the binary re-parses its own output before exiting, so a zero status
# already certifies well-formed JSON; double-check with python3 if present
dune exec bin/experiments.exe -- --benchmark 470lbm -j 1 --json "$out" \
    table2 hotchecks >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - "$out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
reports = {r["name"]: r for r in doc["reports"]}
assert "table2" in reports and "hotchecks" in reports, reports.keys()
labels = [s["label"] for s in reports["table2"]["series"]]
for want in ("sb_checks_wide", "lf_checks_wide", "tp_checks_wide"):
    assert want in labels, (want, labels)
print("json validated:", ", ".join(sorted(reports)))
EOF
fi

# the parallel session's determinism guarantee: the same experiments at
# -j 2 (with the on-disk instrumentation cache) must produce the same
# JSON document byte for byte as the sequential run above
echo "== experiments determinism (-j 2 vs -j 1) =="
dune exec bin/experiments.exe -- --benchmark 470lbm -j 2 \
    --cache-dir "$cache" --json "$out_j2" table2 hotchecks >/dev/null
cmp "$out" "$out_j2"
echo "-j 2 output byte-identical to -j 1"

# the execution-engine perf gate: steps/sec on the fixed hotchecks
# workload (sb_opt + lf_opt over the whole suite, VM execution only —
# the instrumentation cache is warmed by an untimed pass) must stay
# within 10% of the engine throughput recorded in BENCH_vm.json.
echo "== vm-steps perf gate (>= 90% of BENCH_vm.json) =="
floor=$(sed -n 's/.*"floor_steps_per_sec": \([0-9]*\).*/\1/p' BENCH_vm.json)
vm_line=$(dune exec bench/main.exe -- --vm-steps)
echo "$vm_line  (floor: $floor)"
echo "$vm_line" | awk -v floor="$floor" '
    /^vm_steps:/ {
        for (i = 1; i <= NF; i++)
            if (split($i, kv, "=") == 2 && kv[1] == "steps_per_sec")
                sps = kv[2]
    }
    END {
        if (sps == "" || sps + 0 < floor + 0) {
            printf "vm-steps regression: %s < %s\n", sps, floor
            exit 1
        }
    }'
echo "engine throughput within budget"

# the security-guarantee gate: a seeded sample of check-deletion mutants
# (25 per registered approach — spatial and temporal alike) against the
# safety corpus.  Any mutant that is neither killed nor carries a
# written wide-bounds justification makes the experiment raise, so a
# zero exit plus "survivors: 0" in the report certifies 100% mutation
# kill on the sample.  The temporal rows must actually be there and be
# killed by temporal corpus kinds, not vacuously absent.
echo "== mutation gate (check-deletion mutants vs the safety corpus) =="
dune exec bin/experiments.exe -- mutation > "$mut_out"
grep -q "survivors: 0" "$mut_out"
grep -q "^temporal/" "$mut_out"
grep -Eq "by (uaf_init|uaf_use|uaf_tail|double_free)" "$mut_out"
echo "all sampled check-deletion mutants killed or whitelisted"

# the fault-tolerance gate: inject a crash into every softbound+domopt
# job and a hang into every lowfat+domopt job.  Under --keep-going the
# matrix must still complete: fig9 degrades to an "(incomplete)" stub,
# table2 (built on the un-faulted full setups) stays intact, the
# failure manifest lists both failures with their retry counts, and the
# exit status is nonzero.
echo "== chaos gate (injected crash + hang under --keep-going) =="
chaos_flags="--benchmark 470lbm --keep-going --retries 1 --job-timeout 1"
chaos_inject='crash=softbound+domopt,hang=lowfat+domopt:5'
if dune exec bin/experiments.exe -- $chaos_flags -j 4 --cache-dir "$cache" \
    --inject "$chaos_inject" fig9 table2 > "$chaos1"; then
    echo "chaos run unexpectedly exited zero"; exit 1
fi
grep -q "fig9 (incomplete)" "$chaos1"
grep -q "Table 2" "$chaos1"
grep -q "== failure manifest ==" "$chaos1"
grep -q "injected crash" "$chaos1"
grep -q "wall-clock budget exceeded" "$chaos1"
echo "matrix completed with partial results + failure manifest"

# graceful degradation is deterministic: the same chaos run at -j 1,
# additionally recovering from a bit-flipped on-disk cache, must print
# byte-identical output (surviving results AND manifest)
echo "== chaos determinism (-j 1 + corrupted cache vs -j 4) =="
if dune exec bin/experiments.exe -- $chaos_flags -j 1 --cache-dir "$cache" \
    --inject "$chaos_inject,corrupt-cache=bitflip" fig9 table2 > "$chaos2"
then
    echo "chaos run unexpectedly exited zero"; exit 1
fi
cmp "$chaos1" "$chaos2"
echo "chaos output byte-identical across -j and cache corruption"

# the differential-fuzzing gate: a fixed seed block (500 safe seeds —
# zero spurious reports from any of the three checkers — and 100
# unsafe mutants, spatial on even mutant seeds, use-after-free /
# double-free on odd ones).  A zero exit certifies zero oracle
# divergences on the safe programs and every mutant detected by every
# in-scope checker (killed, or carrying a written justification); the
# JSON report must come out byte-identical at -j 4 and -j 1.
echo "== fuzz gate (seeds 1..500, mutants 1..100, 3 checkers) =="
dune exec bin/mifuzz.exe -- --seeds 1..500 --mutants 1..100 -j 4 \
    --out "$fuzz1" | tail -n 4
if command -v python3 >/dev/null 2>&1; then
    python3 - "$fuzz1" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
cases = doc["mutants"]["cases"]
tags = ("O3+sb", "O3+lf", "O3+tp")
assert cases, "no mutant cases in the fuzz report"
for c in cases:
    for t in tags:
        assert t in c, (c["name"], t)
        assert c[t] == "killed" or "whitelisted" in c[t], (c["name"], t, c[t])
kinds = {c["name"].split("/")[1].split("-")[0] for c in cases}
assert "uaf" in kinds and "dfree" in kinds, kinds       # temporal drawn
assert kinds - {"uaf", "dfree"}, kinds                  # spatial drawn
tp_kills = sum(1 for c in cases if c["O3+tp"] == "killed")
print(f"fuzz json validated: {len(cases)} mutants ({sorted(kinds)}), "
      f"{tp_kills} temporal kills")
EOF
fi
echo "== fuzz determinism (-j 1 vs -j 4) =="
dune exec bin/mifuzz.exe -- --seeds 1..500 --mutants 1..100 -j 1 \
    --out "$fuzz2" >/dev/null
cmp "$fuzz1" "$fuzz2"
echo "fuzz report byte-identical across -j"

# the persistent-profile determinism gate: the same experiments with
# coverage-carrying profile export at -j 4 and -j 1 must write
# byte-identical profile files, and mi-report's diff mode must find no
# regression between them (exit 0 — the CI-gating contract).  No shared
# --cache-dir here: a profile also records compile-phase span counts and
# static.* counters, so byte-identity is guaranteed for runs with equal
# starting cache state (a warm cache legitimately compiles nothing).
echo "== profile determinism (-j 4 vs -j 1) + mi-report diff =="
dune exec bin/experiments.exe -- --benchmark 470lbm -j 4 \
    --profile-out "$prof1" hotchecks >/dev/null
dune exec bin/experiments.exe -- --benchmark 470lbm -j 1 \
    --profile-out "$prof2" hotchecks >/dev/null
cmp "$prof1" "$prof2"
dune exec bin/mireport.exe -- diff "$prof1" "$prof2" >/dev/null
echo "profiles byte-identical across -j, mi-report diff clean"
dune exec bin/mireport.exe -- report "$prof1" --top 5 --flame "$flame" \
    >/dev/null
test -s "$flame"
echo "mi-report report + flamegraph export OK"

# the coverage-overhead gate: block/edge recording on the hot path must
# keep at least min_ratio (BENCH_coverage.json) of the plain engine
# throughput.  Best of three runs per mode: the workload is fixed, so
# the fastest run is the least-noise estimate on a shared machine.
echo "== coverage overhead gate (>= min_ratio of plain vm-steps) =="
min_ratio=$(sed -n 's/.*"min_ratio": \([0-9.]*\).*/\1/p' BENCH_coverage.json)
best_sps() {
    best=0
    for _ in 1 2 3; do
        line=$(dune exec bench/main.exe -- "$1")
        s=$(echo "$line" | sed -n 's/.*steps_per_sec=\([0-9]*\).*/\1/p')
        [ "$s" -gt "$best" ] && best=$s
    done
    echo "$best"
}
plain_sps=$(best_sps --vm-steps)
cov_sps=$(best_sps --vm-steps-cov)
echo "plain: $plain_sps steps/sec, coverage: $cov_sps steps/sec" \
     "(min ratio: $min_ratio)"
awk -v cov="$cov_sps" -v plain="$plain_sps" -v r="$min_ratio" 'BEGIN {
    if (plain + 0 <= 0 || cov + 0 < r * plain) {
        printf "coverage overhead regression: %s < %s * %s\n", cov, r, plain
        exit 1
    }
}'
echo "coverage recording overhead within budget"

# the chaos-serve gate: the mi-serve daemon under injected worker
# crashes and a hung request must answer all 200 driven fuzz jobs with
# zero drops (accepted requests survive worker death via requeue +
# supervisor restart) and byte-identical results to the batch harness;
# a second daemon on the same cache directory with every entry
# bit-flipped must quarantine, recompute and still answer identically.
echo "== chaos-serve gate (200 jobs, crashes + hang + cache bitflip) =="
serve=_build/default/bin/miserve.exe
serve_sock=$(mktemp -u /tmp/mi-ci-serve-XXXXXX.sock)
serve_cache=$(mktemp -d /tmp/mi-ci-serve-cache-XXXXXX)
drive1=$(mktemp /tmp/mi-ci-drive1-XXXXXX.txt)
drive2=$(mktemp /tmp/mi-ci-drive2-XXXXXX.txt)
trap 'rm -rf "$out" "$out_j2" "$cache" "$mut_out" "$chaos1" "$chaos2" \
     "$fuzz1" "$fuzz2" "$prof1" "$prof2" "$flame" \
     "$serve_sock" "$serve_cache" "$drive1" "$drive2"' EXIT
"$serve" --socket "$serve_sock" --workers 4 --queue 8 \
    --cache-dir "$serve_cache" --job-timeout 30 \
    --inject 'crash=fuzz-17,hang=fuzz-23:0.2' &
serve_pid=$!
"$serve" --socket "$serve_sock" --drive --seeds 1..50 -j 4 --burst 4 \
    --tenants 2 --timeout-ms 30000 --shutdown > "$drive1"
wait "$serve_pid"
cat "$drive1"
grep -q "drive: jobs=200 ok=200 failed=0 degraded=0 errors=0 dropped=0 \
mismatches=0" "$drive1"
grep -q "restarts=4" "$drive1"   # 4 crash-matched requests, each requeued
echo "200/200 answered, zero drops, 4 supervisor restarts, byte-identical"

# phase 2: same cache, every entry corrupted at startup
"$serve" --socket "$serve_sock" --workers 4 --queue 8 \
    --cache-dir "$serve_cache" --job-timeout 30 \
    --inject 'corrupt-cache=bitflip' &
serve_pid=$!
"$serve" --socket "$serve_sock" --drive --seeds 1..10 -j 4 --burst 4 \
    --tenants 2 --timeout-ms 30000 --shutdown > "$drive2"
wait "$serve_pid"
cat "$drive2"
grep -q "drive: jobs=40 ok=40 failed=0 degraded=0 errors=0 dropped=0 \
mismatches=0" "$drive2"
grep -q "cache-corrupt=40" "$drive2"  # all 40 entries quarantined+recomputed
echo "corrupted cache quarantined and recomputed, responses still identical"

# the check-elimination gate, three halves.  (1) soundness: the
# mutation-opt experiment replays every safety-corpus kind under the
# all-passes-optimized configs demanding verdict equality with the
# unoptimized basis, then runs the check-deletion mutation campaign
# over the optimized configs — the experiment raises on any mismatch
# or survivor, so a zero exit plus the grepped lines certifies that an
# eliminated check is one no mutant needed.  (2) effectiveness: every
# (benchmark x approach) row of the checkelim report must remove at
# least floor_min_static_pct of its static checks, and the suite-mean
# dynamic (profile-weighted) removal must stay above
# floor_mean_dynamic_pct — both floors recorded in
# BENCH_checkelim.json.  (3) determinism: the checkelim experiment
# JSON at -j 4 must be byte-identical to -j 1 (fresh in-memory caches
# on both sides, so cache counters agree).
echo "== checkelim gate (mutants over optimized configs: survivors 0) =="
elim_txt=$(mktemp /tmp/mi-ci-elim-XXXXXX.txt)
elim1=$(mktemp /tmp/mi-ci-elim1-XXXXXX.json)
elim2=$(mktemp /tmp/mi-ci-elim2-XXXXXX.json)
elim_mut=$(mktemp /tmp/mi-ci-elimmut-XXXXXX.txt)
trap 'rm -rf "$out" "$out_j2" "$cache" "$mut_out" "$chaos1" "$chaos2" \
     "$fuzz1" "$fuzz2" "$prof1" "$prof2" "$flame" \
     "$serve_sock" "$serve_cache" "$drive1" "$drive2" \
     "$elim_txt" "$elim1" "$elim2" "$elim_mut"' EXIT
dune exec bin/experiments.exe -- mutation-opt > "$elim_mut"
grep -q "0 mismatches" "$elim_mut"
# both campaigns must report zero survivors, and campaign 2 must actually
# exercise the spatial checkers (non-vacuity: their probes keep checks
# under dominance+hoist, so mutant rows for them must exist)
[ "$(grep -c "survivors: 0" "$elim_mut")" -eq 2 ]
! grep -q "survivors: [1-9]" "$elim_mut"
grep -q "^softbound/" "$elim_mut"
grep -q "^lowfat/" "$elim_mut"
echo "corpus verdicts unchanged by elimination, all sampled mutants killed"

echo "== checkelim gate (elimination floors from BENCH_checkelim.json) =="
dune exec bin/experiments.exe -- -j 4 --json "$elim1" checkelim > "$elim_txt"
floor_min=$(sed -n 's/.*"floor_min_static_pct": \([0-9.]*\).*/\1/p' \
    BENCH_checkelim.json)
floor_dyn=$(sed -n 's/.*"floor_mean_dynamic_pct": \([0-9.]*\).*/\1/p' \
    BENCH_checkelim.json)
awk -v fmin="$floor_min" -v fdyn="$floor_dyn" '
    NF == 10 && $10 ~ /x$/ {
        rows++; dyn += $7
        if ($5 + 0 < fmin + 0) {
            printf "static elimination floor broken: %s %s removes %s%% < %s%%\n", \
                $1, $2, $5, fmin
            bad = 1
        }
    }
    END {
        if (rows == 0) { print "no checkelim rows parsed"; exit 1 }
        if (bad) exit 1
        if (dyn / rows < fdyn + 0) {
            printf "mean dynamic elimination %.2f%% below floor %s%%\n", \
                dyn / rows, fdyn
            exit 1
        }
        printf "%d rows: every static removal >= %s%%, mean dynamic %.2f%% >= %s%%\n", \
            rows, fmin, dyn / rows, fdyn
    }' "$elim_txt"

echo "== checkelim determinism (-j 1 vs -j 4) =="
dune exec bin/experiments.exe -- -j 1 --json "$elim2" checkelim >/dev/null
cmp "$elim1" "$elim2"
echo "checkelim JSON byte-identical across -j"

# the fuzz-soak gate: a 60-second coverage-guided evolutionary soak
# over a fresh corpus (capped at 600 matrix executions so fast machines
# terminate) must discover at least soak_cells_floor coverage cells
# (BENCH_fuzz.json) with zero oracle findings and zero missed mutant
# detections.  The exec sequence is deterministic: a slower machine
# runs a prefix of the same sequence, so floor aside, a clean fast run
# certifies every slower run.
echo "== fuzz-soak gate (60s evolutionary soak, floors from BENCH_fuzz.json) =="
soak_dir=$(mktemp -d /tmp/mi-ci-soak-XXXXXX)
soak1=$(mktemp /tmp/mi-ci-soak1-XXXXXX.json)
soak2=$(mktemp /tmp/mi-ci-soak2-XXXXXX.json)
replay1=$(mktemp /tmp/mi-ci-replay1-XXXXXX.json)
replay2=$(mktemp /tmp/mi-ci-replay2-XXXXXX.json)
det_dir1=$(mktemp -d /tmp/mi-ci-soakdet1-XXXXXX)
det_dir2=$(mktemp -d /tmp/mi-ci-soakdet2-XXXXXX)
scaling=$(mktemp /tmp/mi-ci-scaling-XXXXXX.txt)
trap 'rm -rf "$out" "$out_j2" "$cache" "$mut_out" "$chaos1" "$chaos2" \
     "$fuzz1" "$fuzz2" "$prof1" "$prof2" "$flame" \
     "$serve_sock" "$serve_cache" "$drive1" "$drive2" \
     "$elim_txt" "$elim1" "$elim2" "$elim_mut" \
     "$soak_dir" "$soak1" "$soak2" "$replay1" "$replay2" \
     "$det_dir1" "$det_dir2" "$scaling"' EXIT
soak_floor=$(sed -n 's/.*"soak_cells_floor": \([0-9]*\).*/\1/p' BENCH_fuzz.json)
dune exec bin/mifuzz.exe -- --corpus "$soak_dir" --minutes 1 \
    --max-execs 600 -j 4 --out "$soak1" | tail -n 3
if command -v python3 >/dev/null 2>&1; then
    python3 - "$soak1" "$soak_floor" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
floor = int(sys.argv[2])
assert doc["findings"] == [], doc["findings"]
assert doc["mutants"]["missed"] == 0, doc["mutants"]
assert doc["mutants"]["total"] > 0, "soak ran no mutants"
cells = doc["vm_coverage"]["cells"]
assert cells >= floor, f"soak cells {cells} below floor {floor}"
c = doc["corpus"]
assert c["spliced"] > 0 and c["grown"] > 0, c
print(f"soak validated: {cells} cells (floor {floor}), "
      f"{c['entries']} entries ({c['spliced']} spliced, {c['grown']} grown), "
      f"{c['rounds']} rounds, {c['execs']} execs")
EOF
else
    grep -q '"findings":\[\]' "$soak1"
fi
echo "soak clean: floors met, zero findings, zero missed"

# corpus-replay determinism: re-executing the soak's corpus must verify
# every stored coverage fingerprint and produce byte-identical reports
# at -j 1 and -j 4
echo "== corpus replay determinism (-j 1 vs -j 4) =="
dune exec bin/mifuzz.exe -- --corpus "$soak_dir" --replay -j 4 \
    --out "$replay1" >/dev/null
dune exec bin/mifuzz.exe -- --corpus "$soak_dir" --replay -j 1 \
    --out "$replay2" >/dev/null
cmp "$replay1" "$replay2"
grep -q '"findings":\[\]' "$replay1"
echo "replay verified every fingerprint, byte-identical across -j"

# exec-budget soak determinism: a fixed 40-exec soak must produce
# byte-identical reports AND byte-identical corpora at -j 1 and -j 4
echo "== soak exec-budget determinism (-j 1 vs -j 4, corpora compared) =="
dune exec bin/mifuzz.exe -- --corpus "$det_dir1" --max-execs 40 -j 4 \
    --out "$soak1" >/dev/null
dune exec bin/mifuzz.exe -- --corpus "$det_dir2" --max-execs 40 -j 1 \
    --out "$soak2" >/dev/null
cmp "$soak1" "$soak2"
( cd "$det_dir1" && ls ) > "$scaling"
( cd "$det_dir2" && ls ) | cmp "$scaling" -
for f in "$det_dir1"/*.json; do
    cmp "$f" "$det_dir2/$(basename "$f")"
done
echo "40-exec soak: report and every corpus file byte-identical across -j"

# the fuzz-throughput gate: at the identical 40-exec budget the guided
# mode must reach at least guided_cells_floor cells and strictly more
# than blind enumeration (both counts deterministic, BENCH_fuzz.json)
echo "== fuzz-scaling gate (guided > blind at equal exec budget) =="
guided_floor=$(sed -n 's/.*"guided_cells_floor": \([0-9]*\).*/\1/p' \
    BENCH_fuzz.json)
dune exec bench/main.exe -- --fuzz-scaling > "$scaling"
cat "$scaling"
awk -v floor="$guided_floor" '
    /^fuzz_scaling:/ {
        rows++
        for (i = 1; i <= NF; i++)
            if (split($i, kv, "=") == 2) v[kv[1]] = kv[2]
        if (v["guided_cells"] + 0 < floor + 0) {
            printf "guided cells %s below floor %s\n", v["guided_cells"], floor
            exit 1
        }
        if (v["guided_cells"] + 0 <= v["blind_cells"] + 0) {
            printf "guided (%s) not above blind (%s) at j=%s\n", \
                v["guided_cells"], v["blind_cells"], v["j"]
            exit 1
        }
        if (v["findings"] + 0 != 0) {
            printf "fuzz-scaling produced %s findings\n", v["findings"]
            exit 1
        }
        if (rows > 1 && v["guided_cells"] != prev) {
            printf "guided cells vary across -j: %s vs %s\n", \
                v["guided_cells"], prev
            exit 1
        }
        prev = v["guided_cells"]
    }
    END { if (rows != 4) { print "expected 4 fuzz_scaling rows"; exit 1 } }
    ' "$scaling"
echo "guided beats blind at every -j, floors met, counts -j-invariant"

echo "== ci OK =="
