(** The Low-Fat Pointers checker scheme (Duck & Yap, CC'16): the witness
    is the allocation base pointer, recomputed from any in-bounds pointer
    by masking; the invariant (pointers stay in bounds) is established by
    escape checks at stores, calls, returns and pointer-to-integer casts
    (Table 1 row "Low-Fat"). *)

open Mi_mir
module C = Checker

let vptr = C.vptr
let call1 = C.call1

let lf_base_of (ctx : C.ctx) anchor name v : C.witness =
  let b =
    Edit.emit_after ctx.edit anchor ~name Ty.Ptr
      (call1 Intrinsics.lf_base [ v ])
  in
  [| b |]

let w_param (ctx : C.ctx) x ~idx:_ : C.witness =
  (* rely on the invariant: incoming pointers are in bounds, so the base
     can be recomputed from the value (§3.3) *)
  let b =
    Edit.emit_entry ctx.edit ~name:"argbase" Ty.Ptr
      (call1 Intrinsics.lf_base [ Value.Var x ])
  in
  [| b |]

let w_call (_ctx : C.ctx) _anchor x ~callee ~args:_ : C.witness option =
  match callee with
  | "malloc" | "calloc" | "realloc" -> Some [| Value.Var x |]
  | name when name = Intrinsics.lf_alloca -> Some [| Value.Var x |]
  | _ -> None

let invariant_check (ctx : C.ctx) ~before ~construct v =
  ctx.count_invariant ();
  let w = ctx.witness_of v in
  let site = ctx.new_site construct in
  let instr = Instr.mk (call1 Intrinsics.lf_invariant_check [ v; w.(0); site ]) in
  before instr

let emit_ptr_store (ctx : C.ctx) (s : Itarget.ptr_store) =
  (* ptr_store invariants are counted by the generic driver *)
  let w = ctx.witness_of s.s_value in
  let site = ctx.new_site ("ptr-store@" ^ C.anchor_str s.s_anchor) in
  Edit.insert_before ctx.edit s.s_anchor
    (Instr.mk (call1 Intrinsics.lf_invariant_check [ s.s_value; w.(0); site ]))

let emit_call (ctx : C.ctx) (c : Itarget.call) =
  (* establish the invariant: pointers passed to callees are in bounds *)
  List.iter
    (fun (idx, v) ->
      invariant_check ctx
        ~before:(fun i -> Edit.insert_before ctx.edit c.l_anchor i)
        ~construct:
          (Printf.sprintf "call-arg%d@%s" idx (C.anchor_str c.l_anchor))
        v)
    c.l_ptr_args

let emit_ret (ctx : C.ctx) (r : Itarget.ptr_ret) =
  let w = ctx.witness_of r.r_value in
  let site = ctx.new_site ("ret@" ^ r.r_block) in
  Edit.insert_at_end ctx.edit r.r_block
    (Instr.mk (call1 Intrinsics.lf_invariant_check [ r.r_value; w.(0); site ]))

let emit_escape (ctx : C.ctx) (e : Itarget.ptr_escape_cast) =
  (* §4.4: check at pointer-to-integer casts *)
  invariant_check ctx
    ~before:(fun i -> Edit.insert_before ctx.edit e.e_anchor i)
    ~construct:("ptrtoint@" ^ C.anchor_str e.e_anchor)
    e.e_ptr

let check_op ~ptr ~width (w : C.witness) ~site =
  call1 Intrinsics.lf_check [ ptr; width; w.(0); site ]

let checker : C.t =
  {
    name = "lowfat";
    aliases = [ "lf" ];
    descr = "Low-Fat Pointers: size-class regions, base recomputation";
    basis = Config.lowfat;
    components = [| ("phibase", "selbase", Ty.Ptr) |];
    supports_dominance_opt = true;
    supports_hoist_opt = true;
    supports_static_opt = true;
    (* a non-low-fat base: the check treats it as wide and never reports *)
    wide = [| vptr 0 |];
    w_const = (fun _ v -> [| v |]);
    w_global = (fun _ g -> [| Value.Glob g |]);
    w_param;
    w_alloca =
      (fun _ _ x ~size:_ ->
        (* reachable only with lf_stack protection off: conventional stack
           addresses are outside the low-fat regions, so the check treats
           them as wide (§4.6) *)
        [| Value.Var x |]);
    w_load =
      (fun ctx anchor x ~addr:_ ->
        (* rely on the invariant: loaded pointers are in bounds *)
        lf_base_of ctx anchor "ldbase" (Value.Var x));
    w_inttoptr =
      (fun ctx anchor x ->
        (* §4.4: Low-Fat assumes the integer still encodes an in-bounds
           pointer and recomputes — unsound if it was corrupted in the
           meantime *)
        lf_base_of ctx anchor "i2pbase" (Value.Var x));
    w_cast_other = (fun _ x -> [| Value.Var x |]);
    w_call;
    w_call_fallback =
      (fun ctx anchor x -> lf_base_of ctx anchor "retbase" (Value.Var x));
    emit_ptr_store;
    emit_call;
    emit_ret;
    emit_escape;
    emit_memop_invariant = (fun _ _ -> ());
    check_op;
    prepare_func =
      (fun config f ->
        if config.Config.lf_stack then
          C.replace_allocas Intrinsics.lf_alloca f);
    module_ctor = (fun _ _ -> None);
  }

let register () = C.register checker
