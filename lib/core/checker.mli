(** The pluggable checker interface and its registry.

    The generic instrumentation pass ([Mi_core.Instrument]) drives
    target discovery and witness memoization; everything
    approach-specific — witness shape and sources, invariant
    maintenance, the spelling of a dereference check — lives behind a
    {!t} resolved by name.  Checkers self-register at module
    initialization (see [Mi_core.Schemes]); registering also registers
    the checker's configuration basis in {!Mi_core.Config}. *)

open Mi_mir

type witness = Value.t array
(** The SSA values carrying a pointer's metadata to its uses (§3.1):
    [[|base; bound|]] for SoftBound, [[|base|]] for Low-Fat, [[|key|]]
    for the temporal checker. *)

(** Per-function instrumentation context handed to checker callbacks. *)
type ctx = {
  config : Config.t;
  m : Irmod.t;
  f : Func.t;
  edit : Edit.t;
  mutable witness_of : Value.t -> witness;
      (** memoized witness lookup (tied by the instrumenter) *)
  new_site : string -> Value.t;
      (** register a site; returns the id constant for the check call *)
  count_invariant : unit -> unit;
  set_call_ret : Edit.anchor -> witness -> unit;
  get_call_ret : Edit.anchor -> witness option;
}

type t = {
  name : string;  (** registry name; equals [basis.approach] *)
  aliases : string list;
  descr : string;
  basis : Config.t;
  components : (string * string * Ty.t) array;
      (** witness slots: (phi name, select name, slot type) *)
  supports_dominance_opt : bool;
      (** is dominance-based check elimination (§5.3) sound here?
          [false] for the temporal checker: a [free] between two
          accesses invalidates the dominated check's premise *)
  supports_hoist_opt : bool;
      (** is loop-invariant check hoisting (widened preheader check,
          early abort) sound here?  [false] for the temporal checker *)
  supports_static_opt : bool;
      (** may statically-proven-in-bounds checks be deleted?  [false]
          for the temporal checker (bounds say nothing about liveness) *)
  wide : witness;  (** the "never reports" witness (weakened checks) *)
  w_const : ctx -> Value.t -> witness;
  w_global : ctx -> string -> witness;
  w_param : ctx -> Value.var -> idx:int -> witness;
  w_alloca : ctx -> Edit.anchor -> Value.var -> size:int -> witness;
  w_load : ctx -> Edit.anchor -> Value.var -> addr:Value.t -> witness;
  w_inttoptr : ctx -> Edit.anchor -> Value.var -> witness;
  w_cast_other : ctx -> Value.var -> witness;
  w_call :
    ctx ->
    Edit.anchor ->
    Value.var ->
    callee:string ->
    args:Value.t list ->
    witness option;
  w_call_fallback : ctx -> Edit.anchor -> Value.var -> witness;
  emit_ptr_store : ctx -> Itarget.ptr_store -> unit;
  emit_call : ctx -> Itarget.call -> unit;
  emit_ret : ctx -> Itarget.ptr_ret -> unit;
  emit_escape : ctx -> Itarget.ptr_escape_cast -> unit;
  emit_memop_invariant : ctx -> Itarget.memop -> unit;
  check_op :
    ptr:Value.t -> width:Value.t -> witness -> site:Value.t -> Instr.op;
  prepare_func : Config.t -> Func.t -> unit;
  module_ctor : Config.t -> Irmod.t -> Func.t option;
}

(** {1 Helpers shared by checker schemes} *)

val wide_bound : int
(** Upper bound of the addressable space (kept in sync with
    [Mi_vm.Layout]; asserted equal by the verifier tests). *)

val vi64 : int -> Value.t
val vptr : int -> Value.t
val call1 : string -> Value.t list -> Instr.op
val anchor_str : Edit.anchor -> string
val ptr_param_slot : Func.t -> int -> int option
(** Shadow-stack slot of pointer parameter [idx]: 1 + its rank among
    the pointer-typed parameters. *)

val replace_allocas : string -> Func.t -> unit
(** Replace every alloca with a call to [intrinsic (size)] — the
    protected-stack pre-pass shared by Low-Fat and temporal. *)

(** {1 Registry} *)

val register : t -> unit
(** Self-registration; also registers [basis] in [Config].  Raises
    [Invalid_argument] on duplicates or a name/basis mismatch. *)

val find : string -> t option
(** Case-insensitive, alias-aware lookup. *)

val find_exn : string -> t
(** Like {!find} but raises [Invalid_argument] naming known checkers. *)

val known_names : unit -> string list
(** Registered checker names, in registration order. *)

val all : unit -> t list
