(** The SoftBound checker scheme (Nagarakatte et al., PLDI'09): witnesses
    are [(base, bound)] pairs, in-memory pointers keep their bounds in a
    disjoint trie keyed by the pointer's location, and bounds cross calls
    on a shadow stack (Table 1 row "SoftBound"). *)

open Mi_mir
module C = Checker

let vi64 = C.vi64
let vptr = C.vptr
let call1 = C.call1
let wide = [| vptr 0; vptr C.wide_bound |]
let null_w = [| vptr 0; vptr 0 |]

let w_global (ctx : C.ctx) g : C.witness =
  match Irmod.find_global ctx.m g with
  | None ->
      (* global from another module we cannot see; size unknown *)
      if ctx.config.Config.sb_size_zero_wide_upper then
        [| Value.Glob g; vptr C.wide_bound |]
      else null_w
  | Some gl ->
      if gl.gsize_known then
        (* bound = @g + size, materialized once at function entry *)
        let bound =
          Edit.emit_entry ctx.edit ~name:"gbound" Ty.Ptr
            (Instr.Gep (Value.Glob g, [ { stride = 1; idx = vi64 gl.gsize } ]))
        in
        [| Value.Glob g; bound |]
      else if ctx.config.Config.sb_size_zero_wide_upper then
        (* §4.3: size-zero extern array declaration -> wide upper bound *)
        [| Value.Glob g; vptr C.wide_bound |]
      else null_w

let w_param (ctx : C.ctx) _x ~idx : C.witness =
  match C.ptr_param_slot ctx.f idx with
  | Some slot ->
      (* rely on the invariant: caller pushed bounds on the shadow stack
         (Table 1) *)
      let b =
        Edit.emit_entry ctx.edit ~name:"argb" Ty.Ptr
          (call1 Intrinsics.ss_get_base [ vi64 slot ])
      in
      let e =
        Edit.emit_entry ctx.edit ~name:"arge" Ty.Ptr
          (call1 Intrinsics.ss_get_bound [ vi64 slot ])
      in
      [| b; e |]
  | None -> invalid_arg "ptr param without slot"

let w_alloca (ctx : C.ctx) anchor x ~size : C.witness =
  let bound =
    Edit.emit_after ctx.edit anchor ~name:"abound" Ty.Ptr
      (Instr.Gep (Value.Var x, [ { stride = 1; idx = vi64 size } ]))
  in
  [| Value.Var x; bound |]

let w_load (ctx : C.ctx) anchor _x ~addr : C.witness =
  (* rely on the invariant: in-memory pointers have their bounds in the
     trie, keyed by the pointer's location *)
  let b =
    Edit.emit_after ctx.edit anchor ~name:"ldb" Ty.Ptr
      (call1 Intrinsics.sb_trie_load_base [ addr ])
  in
  let e =
    Edit.emit_after ctx.edit anchor ~name:"lde" Ty.Ptr
      (call1 Intrinsics.sb_trie_load_bound [ addr ])
  in
  [| b; e |]

let w_inttoptr (ctx : C.ctx) _anchor _x : C.witness =
  (* §4.4: no metadata survives the round trip through an integer; the
     policy decides between wide and null bounds *)
  if ctx.config.Config.sb_inttoptr_wide then wide else null_w

let w_call (ctx : C.ctx) anchor x ~callee ~args : C.witness option =
  match callee with
  | "malloc" ->
      let bound =
        Edit.emit_after ctx.edit anchor ~name:"mbound" Ty.Ptr
          (Instr.Gep (Value.Var x, [ { stride = 1; idx = List.nth args 0 } ]))
      in
      Some [| Value.Var x; bound |]
  | "calloc" ->
      let total =
        Edit.emit_after ctx.edit anchor ~name:"csz" Ty.I64
          (Instr.Bin (Mul, Ty.I64, List.nth args 0, List.nth args 1))
      in
      let bound =
        Edit.emit_after ctx.edit anchor ~name:"cbound" Ty.Ptr
          (Instr.Gep (Value.Var x, [ { stride = 1; idx = total } ]))
      in
      Some [| Value.Var x; bound |]
  | _ -> None

let w_call_fallback (ctx : C.ctx) anchor _x : C.witness =
  (* no protocol was set up (e.g. an unwrapped builtin that returns a
     pointer): SoftBound reads the — possibly stale — return slot of the
     shadow stack; exactly the §4.3 hazard *)
  let b =
    Edit.emit_after ctx.edit anchor ~name:"retb" Ty.Ptr
      (call1 Intrinsics.ss_get_base [ vi64 0 ])
  in
  let e =
    Edit.emit_after ctx.edit anchor ~name:"rete" Ty.Ptr
      (call1 Intrinsics.ss_get_bound [ vi64 0 ])
  in
  [| b; e |]

let emit_ptr_store (ctx : C.ctx) (s : Itarget.ptr_store) =
  let w = ctx.witness_of s.s_value in
  Edit.insert_after ctx.edit s.s_anchor
    (Instr.mk (call1 Intrinsics.sb_trie_store [ s.s_addr; w.(0); w.(1) ]))

let emit_call (ctx : C.ctx) (c : Itarget.call) =
  match c.l_kind with
  | Itarget.Runtime_internal | Itarget.Known_alloc -> ()
  | Itarget.Plain_builtin -> ()
  | Itarget.Wrapped | Itarget.General ->
      let needs = c.l_has_ptr_ret || c.l_ptr_args <> [] in
      if needs then begin
        ctx.count_invariant ();
        let nslots = List.length c.l_ptr_args in
        Edit.insert_before ctx.edit c.l_anchor
          (Instr.mk (call1 Intrinsics.ss_enter [ vi64 nslots ]));
        List.iteri
          (fun rank (_, v) ->
            let w = ctx.witness_of v in
            Edit.insert_before ctx.edit c.l_anchor
              (Instr.mk
                 (call1 Intrinsics.ss_set_base [ vi64 (rank + 1); w.(0) ]));
            Edit.insert_before ctx.edit c.l_anchor
              (Instr.mk
                 (call1 Intrinsics.ss_set_bound [ vi64 (rank + 1); w.(1) ])))
          c.l_ptr_args;
        (if c.l_has_ptr_ret then
           let b =
             Edit.emit_after ctx.edit c.l_anchor ~name:"retb" Ty.Ptr
               (call1 Intrinsics.ss_get_base [ vi64 0 ])
           in
           let e =
             Edit.emit_after ctx.edit c.l_anchor ~name:"rete" Ty.Ptr
               (call1 Intrinsics.ss_get_bound [ vi64 0 ])
           in
           ctx.set_call_ret c.l_anchor [| b; e |]);
        Edit.insert_after ctx.edit c.l_anchor
          (Instr.mk (call1 Intrinsics.ss_leave []));
        (* wrapped libc functions are replaced by their metadata-
           maintaining wrapper (Fig. 6) *)
        if c.l_kind = Itarget.Wrapped then
          Edit.set_replacement ctx.edit c.l_anchor
            (Instr.mk ?dst:c.l_dst
               (Instr.Call (Intrinsics.sb_wrapper c.l_callee, c.l_args)))
      end

let emit_ret (ctx : C.ctx) (r : Itarget.ptr_ret) =
  let w = ctx.witness_of r.r_value in
  Edit.insert_at_end ctx.edit r.r_block
    (Instr.mk (call1 Intrinsics.ss_set_base [ vi64 0; w.(0) ]));
  Edit.insert_at_end ctx.edit r.r_block
    (Instr.mk (call1 Intrinsics.ss_set_bound [ vi64 0; w.(1) ]))

let emit_memop_invariant (ctx : C.ctx) (mo : Itarget.memop) =
  match mo.m_kind with
  | `Memcpy ->
      (* keep the trie in sync when memory is copied wholesale (the
         copy_metadata part of the memcpy wrapper, Fig. 6) *)
      ctx.count_invariant ();
      Edit.insert_after ctx.edit mo.m_anchor
        (Instr.mk
           (call1 Intrinsics.sb_meta_copy
              [ mo.m_dst; Option.get mo.m_src; mo.m_len ]))
  | `Memset -> ()

let check_op ~ptr ~width (w : C.witness) ~site =
  call1 Intrinsics.sb_check [ ptr; width; w.(0); w.(1); site ]

(* SoftBound constructor: register trie metadata for pointers appearing in
   global initializers, so loads of those pointers find valid bounds. *)
let global_init (m : Irmod.t) : Func.t option =
  let entries =
    List.concat_map
      (fun (g : Irmod.global) ->
        if g.gextern then []
        else
          let _, acc =
            List.fold_left
              (fun (off, acc) (fld : Irmod.gfield) ->
                match fld with
                | Irmod.GPtr target -> (off + 8, (g.gname, off, target) :: acc)
                | f -> (off + Irmod.field_size f, acc))
              (0, []) g.gfields
          in
          List.rev acc)
      m.globals
  in
  if entries = [] then None
  else begin
    let b = Builder.create ~name:"__mi_global_init" ~params:[] ~ret_ty:None in
    Builder.start_block b "entry";
    List.iter
      (fun (holder, off, target) ->
        let loc =
          Builder.gep b (Value.Glob holder) [ { stride = 1; idx = vi64 off } ]
        in
        let size =
          match Irmod.find_global m target with
          | Some tg when tg.gsize_known -> Some tg.gsize
          | _ -> None
        in
        let base = Value.Glob target in
        let bound =
          match size with
          | Some s -> Builder.gep b base [ { stride = 1; idx = vi64 s } ]
          | None -> vptr C.wide_bound
        in
        ignore
          (Builder.call b ~ret:None Intrinsics.sb_trie_store
             [ loc; base; bound ]))
      entries;
    Builder.ret b None;
    Some (Builder.finish b)
  end

let checker : C.t =
  {
    name = "softbound";
    aliases = [ "sb" ];
    descr = "SoftBound: disjoint (base, bound) metadata, trie + shadow stack";
    basis = Config.softbound;
    components = [| ("phib", "selb", Ty.Ptr); ("phie", "sele", Ty.Ptr) |];
    supports_dominance_opt = true;
    supports_hoist_opt = true;
    supports_static_opt = true;
    wide;
    w_const = (fun _ _ -> null_w);
    w_global;
    w_param;
    w_alloca;
    w_load;
    w_inttoptr;
    w_cast_other = (fun _ _ -> null_w);
    w_call;
    w_call_fallback;
    emit_ptr_store;
    emit_call;
    emit_ret;
    emit_escape = (fun _ _ -> ());
    emit_memop_invariant;
    check_op;
    prepare_func = (fun _ _ -> ());
    module_ctor = (fun _ m -> global_init m);
  }

let register () = C.register checker
