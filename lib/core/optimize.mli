(** Approach-independent check optimizations on instrumentation targets:
    dominance-based elimination (§5.3), static in-bounds elimination,
    and loop-invariant check hoisting with range widening.  See
    [optimize.ml] and DESIGN.md for the pass ordering and the soundness
    arguments; the per-checker capability veto lives in
    [Mi_core.Instrument]. *)

open Mi_mir

type stats = {
  before : int;  (** checks discovered *)
  after : int;  (** in-place checks surviving all passes *)
  removed_dominance : int;
  removed_static : int;
  removed_hoisted : int;
      (** in-loop checks replaced by a widened preheader check *)
}

val removed : stats -> int
(** Total checks removed or replaced: [before - after]. *)

type hoisted = {
  h_preheader : string;  (** label of the preheader block to emit into *)
  h_base : Value.t;  (** loop-invariant base pointer *)
  h_min_off : int;  (** smallest byte offset any iteration accesses *)
  h_span : int;  (** bytes covered: max offset + width - min offset *)
  h_access : Itarget.access;  (** [Astore] if any replaced check stored *)
  h_origin : Edit.anchor;  (** anchor of the first replaced check *)
  h_replaced : int;  (** how many in-loop checks it stands for *)
}
(** A widened preheader check summarizing every iteration's footprint
    of one loop-invariant base; the instrumenter emits it as an
    ordinary check of [h_span] bytes at [h_base + h_min_off]. *)

type result = {
  kept : Itarget.check list;  (** surviving checks, in discovery order *)
  hoisted : hoisted list;  (** widened preheader checks to emit *)
  stats : stats;
}

val value_key : Value.t -> string
(** Stable structural key used to group checks by checked pointer. *)

val dominance_eliminate : Func.t -> Itarget.check list -> Itarget.check list
(** Remove every check dominated by an equal-or-wider check on the same
    pointer SSA value — the elimination "frequently described in
    literature" that the paper measures removing 8–50% of checks.
    Implemented as an ancestor-stack sweep over the dominator-tree DFS
    preorder, O(n log n) per pointer group. *)

val run : Config.t -> Irmod.t -> Func.t -> Itarget.check list -> result
(** Apply the optimizations enabled by the configuration, in the order
    dominance -> static -> hoisting.  The module is needed for
    allocation sizes of globals (static pass). *)
