(** The MemInstrument module pass: discovers instrumentation targets
    (Table 1), propagates witnesses, places checks and invariant
    maintenance code for the configured approach.

    A {e witness} (§3.1) is the set of SSA values that carry a pointer's
    bounds to its uses: a [(base, bound)] pair for SoftBound, the
    allocation base pointer for Low-Fat Pointers.  Witnesses are computed
    by memoized recursion over SSA definitions; phis and selects on
    pointers get companion phis/selects on their witnesses, loads and call
    results draw on the approach's invariant (trie / shadow stack /
    recomputation from the pointer value).

    Checks are emitted as calls to the intrinsics in [Mi_mir.Intrinsics]
    {e by name}, and those names are load-bearing beyond this pass: the
    VM's execution engine fuses call sites naming the hot check
    intrinsics ([sb_check], [lf_check], trie and shadow-stack ops) into
    superinstructions at precompile time, keyed on the exact intrinsic
    name and arity. Renaming an intrinsic or changing its argument list
    silently demotes every site to generic dispatch — still correct,
    same modeled cycles, but the throughput gate in [bench/ci.sh] will
    catch the slowdown. Keep [Intrinsics], the runtime registrations
    (generic and fast twins), and the fusion table in
    [Mi_vm.Interp] in sync. *)

open Mi_mir
module Layout_wide = struct
  (* Keep in sync with Mi_vm.Layout; duplicated to avoid a core -> vm
     dependency (the instrumentation is compiler-side, the VM is the
     "hardware"). The verifier tests assert the values match. *)
  let wide_bound = 0x7FFF_FFFF_FFFF
end

type witness =
  | Wsb of Value.t * Value.t  (** base, bound *)
  | Wlf of Value.t  (** base *)

type func_stats = {
  fname : string;
  checks_found : int;
  checks_placed : int;
  checks_removed : int;
  invariants_placed : int;
  checks_mutated : int;
      (** checks deleted or weakened by an injected fault plan *)
}

type mod_stats = {
  per_func : func_stats list;
  total_checks_found : int;
  total_checks_placed : int;
  total_checks_removed : int;
  total_invariants : int;
  total_checks_mutated : int;
}

(* defsite of an SSA variable *)
type defsite =
  | Dparam of int  (** parameter index *)
  | Dinstr of Edit.anchor * Instr.t
  | Dphi of string * Instr.phi

type fctx = {
  config : Config.t;
  m : Irmod.t;
  f : Func.t;
  edit : Edit.t;
  defsites : defsite Value.VTbl.t;
  memo : (string, witness) Hashtbl.t;
  call_ret : (Edit.anchor, witness) Hashtbl.t;
      (** witness of a call's pointer result, created by the protocol *)
  sites : Mi_obs.Site.t;
      (** check-site registry: every check placed gets a stable id *)
  mutable invariants : int;
  faults : Mi_faultkit.Fault.t;
      (** fault plan; check mutations consult it per placed check *)
  mutable check_ordinal : int;
      (** next check's per-function ordinal, assigned in placement
          order before the mutation decision so mutating one check
          never renumbers the others *)
  mutable mutated : int;
}

(* Register an instrumentation site for a check placed in this function;
   the id rides along as the check call's last argument so the runtime
   can attribute executions back to it. *)
let new_site (ctx : fctx) construct =
  let id =
    Mi_obs.Site.register ctx.sites ~func:ctx.f.fname ~construct
      ~approach:(Config.approach_name ctx.config.approach)
  in
  Value.Int (Ty.I64, id)

let anchor_str (a : Edit.anchor) =
  Printf.sprintf "%s:%d" a.Edit.ablock a.Edit.apos

let value_key = Optimize.value_key

let vi64 k = Value.Int (Ty.I64, k)
let vptr k = Value.Int (Ty.Ptr, k)
let wide_sb = Wsb (vptr 0, vptr Layout_wide.wide_bound)
let null_sb = Wsb (vptr 0, vptr 0)

let build_defsites (f : Func.t) : defsite Value.VTbl.t =
  let t = Value.VTbl.create 64 in
  List.iteri (fun i p -> Value.VTbl.replace t p (Dparam i)) f.params;
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (p : Instr.phi) ->
          Value.VTbl.replace t p.pdst (Dphi (b.label, p)))
        b.phis;
      List.iteri
        (fun pos (i : Instr.t) ->
          match i.dst with
          | Some d ->
              Value.VTbl.replace t d
                (Dinstr ({ Edit.ablock = b.label; apos = pos }, i))
          | None -> ())
        b.body)
    f.blocks;
  t

(* slot index of a pointer parameter on the shadow stack: 1 + its rank
   among the pointer-typed parameters *)
let ptr_param_slot (f : Func.t) idx =
  let rank = ref 0 in
  let result = ref None in
  List.iteri
    (fun i (p : Value.var) ->
      if Ty.is_ptr p.vty then begin
        incr rank;
        if i = idx then result := Some !rank
      end)
    f.params;
  !result

let call1 name args = Instr.Call (name, args)

(* ------------------------------------------------------------------ *)
(* Witness computation                                                 *)
(* ------------------------------------------------------------------ *)

let rec witness_of (ctx : fctx) (v : Value.t) : witness =
  let key = value_key v in
  match Hashtbl.find_opt ctx.memo key with
  | Some w -> w
  | None ->
      let w = compute_witness ctx v in
      (* phis memoize themselves before recursing; replace is idempotent *)
      Hashtbl.replace ctx.memo key w;
      w

and sb_witness_of ctx v =
  match witness_of ctx v with
  | Wsb (b, e) -> (b, e)
  | Wlf _ -> invalid_arg "sb witness expected"

and lf_witness_of ctx v =
  match witness_of ctx v with
  | Wlf b -> b
  | Wsb _ -> invalid_arg "lf witness expected"

and compute_witness ctx (v : Value.t) : witness =
  let sb = ctx.config.approach = Config.Softbound in
  match v with
  | Value.Int (_, _) ->
      (* constant addresses (null and friends): SoftBound uses null
         bounds; Low-Fat recomputes — constants lie outside the low-fat
         regions, so they get wide treatment at check time *)
      if sb then null_sb else Wlf v
  | Value.Fn _ -> if sb then null_sb else Wlf v
  | Value.Flt _ -> invalid_arg "witness of float"
  | Value.Glob g -> witness_of_global ctx g
  | Value.Var x -> (
      match Value.VTbl.find_opt ctx.defsites x with
      | None ->
          invalid_arg
            (Printf.sprintf "witness: no defsite for %s in %s"
               (Value.var_to_string x) ctx.f.fname)
      | Some site -> witness_of_def ctx x site)

and witness_of_global ctx g =
  let sb = ctx.config.approach = Config.Softbound in
  match Irmod.find_global ctx.m g with
  | None ->
      (* global from another module we cannot see; size unknown *)
      if sb then
        if ctx.config.sb_size_zero_wide_upper then
          Wsb (Value.Glob g, vptr Layout_wide.wide_bound)
        else null_sb
      else Wlf (Value.Glob g)
  | Some gl ->
      if not sb then Wlf (Value.Glob g)
      else if gl.gsize_known then
        (* bound = @g + size, materialized once at function entry *)
        let bound =
          Edit.emit_entry ctx.edit ~name:"gbound" Ty.Ptr
            (Instr.Gep (Value.Glob g, [ { stride = 1; idx = vi64 gl.gsize } ]))
        in
        Wsb (Value.Glob g, bound)
      else if ctx.config.sb_size_zero_wide_upper then
        (* §4.3: size-zero extern array declaration -> wide upper bound *)
        Wsb (Value.Glob g, vptr Layout_wide.wide_bound)
      else null_sb

and witness_of_def ctx (x : Value.var) (site : defsite) : witness =
  let sb = ctx.config.approach = Config.Softbound in
  match site with
  | Dparam idx ->
      if sb then begin
        match ptr_param_slot ctx.f idx with
        | Some slot ->
            (* rely on the invariant: caller pushed bounds on the shadow
               stack (Table 1) *)
            let b =
              Edit.emit_entry ctx.edit ~name:"argb" Ty.Ptr
                (call1 Intrinsics.ss_get_base [ vi64 slot ])
            in
            let e =
              Edit.emit_entry ctx.edit ~name:"arge" Ty.Ptr
                (call1 Intrinsics.ss_get_bound [ vi64 slot ])
            in
            Wsb (b, e)
        | None -> invalid_arg "ptr param without slot"
      end
      else
        (* rely on the invariant: incoming pointers are in bounds, so the
           base can be recomputed from the value (§3.3) *)
        let b =
          Edit.emit_entry ctx.edit ~name:"argbase" Ty.Ptr
            (call1 Intrinsics.lf_base [ Value.Var x ])
        in
        Wlf b
  | Dphi (blk, p) ->
      (* create witness phis first (cycles!), recurse, then patch *)
      if sb then begin
        let bvar = Edit.fresh ctx.edit ~name:"phib" Ty.Ptr in
        let evar = Edit.fresh ctx.edit ~name:"phie" Ty.Ptr in
        let w = Wsb (Var bvar, Var evar) in
        Hashtbl.replace ctx.memo (value_key (Value.Var x)) w;
        let parts =
          List.map
            (fun (lbl, v) ->
              let b, e = sb_witness_of ctx v in
              (lbl, b, e))
            p.incoming
        in
        Edit.add_phi ctx.edit blk
          {
            Instr.pdst = bvar;
            incoming = List.map (fun (l, b, _) -> (l, b)) parts;
          };
        Edit.add_phi ctx.edit blk
          {
            Instr.pdst = evar;
            incoming = List.map (fun (l, _, e) -> (l, e)) parts;
          };
        w
      end
      else begin
        let bvar = Edit.fresh ctx.edit ~name:"phibase" Ty.Ptr in
        let w = Wlf (Var bvar) in
        Hashtbl.replace ctx.memo (value_key (Value.Var x)) w;
        let parts =
          List.map (fun (lbl, v) -> (lbl, lf_witness_of ctx v)) p.incoming
        in
        Edit.add_phi ctx.edit blk { Instr.pdst = bvar; incoming = parts };
        w
      end
  | Dinstr (anchor, i) -> (
      match i.op with
      | Instr.Gep (base, _) ->
          (* pointer arithmetic inherits the source pointer's witness *)
          witness_of ctx base
      | Instr.Select (_, c, a, b) ->
          if sb then begin
            let ab, ae = sb_witness_of ctx a in
            let bb, be = sb_witness_of ctx b in
            let wb =
              Edit.emit_after ctx.edit anchor ~name:"selb" Ty.Ptr
                (Instr.Select (Ty.Ptr, c, ab, bb))
            in
            let we =
              Edit.emit_after ctx.edit anchor ~name:"sele" Ty.Ptr
                (Instr.Select (Ty.Ptr, c, ae, be))
            in
            Wsb (wb, we)
          end
          else begin
            let ab = lf_witness_of ctx a in
            let bb = lf_witness_of ctx b in
            let wb =
              Edit.emit_after ctx.edit anchor ~name:"selbase" Ty.Ptr
                (Instr.Select (Ty.Ptr, c, ab, bb))
            in
            Wlf wb
          end
      | Instr.Alloca { size; _ } ->
          if sb then
            let bound =
              Edit.emit_after ctx.edit anchor ~name:"abound" Ty.Ptr
                (Instr.Gep (Value.Var x, [ { stride = 1; idx = vi64 size } ]))
            in
            Wsb (Value.Var x, bound)
          else
            (* reachable only with lf_stack protection off: conventional
               stack addresses are outside the low-fat regions, so the
               check treats them as wide (§4.6) *)
            Wlf (Value.Var x)
      | Instr.Load (ty, addr) ->
          if not (Ty.is_ptr ty) then
            invalid_arg "witness of non-pointer load";
          if sb then begin
            (* rely on the invariant: in-memory pointers have their bounds
               in the trie, keyed by the pointer's location *)
            let b =
              Edit.emit_after ctx.edit anchor ~name:"ldb" Ty.Ptr
                (call1 Intrinsics.sb_trie_load_base [ addr ])
            in
            let e =
              Edit.emit_after ctx.edit anchor ~name:"lde" Ty.Ptr
                (call1 Intrinsics.sb_trie_load_bound [ addr ])
            in
            Wsb (b, e)
          end
          else
            (* rely on the invariant: loaded pointers are in bounds *)
            let b =
              Edit.emit_after ctx.edit anchor ~name:"ldbase" Ty.Ptr
                (call1 Intrinsics.lf_base [ Value.Var x ])
            in
            Wlf b
      | Instr.Cast (IntToPtr, _, _, _) ->
          if sb then
            (* §4.4: no metadata survives the round trip through an
               integer; the policy decides between wide and null bounds *)
            if ctx.config.sb_inttoptr_wide then wide_sb else null_sb
          else
            (* §4.4: Low-Fat assumes the integer still encodes an
               in-bounds pointer and recomputes — unsound if it was
               corrupted in the meantime *)
            let b =
              Edit.emit_after ctx.edit anchor ~name:"i2pbase" Ty.Ptr
                (call1 Intrinsics.lf_base [ Value.Var x ])
            in
            Wlf b
      | Instr.Cast (Bitcast, from_ty, src, to_ty)
        when Ty.is_ptr from_ty && Ty.is_ptr to_ty ->
          witness_of ctx src
      | Instr.Cast (_, _, _, _) ->
          if sb then null_sb else Wlf (Value.Var x)
      | Instr.Call (callee, args) -> witness_of_call ctx x anchor callee args
      | _ ->
          invalid_arg
            (Printf.sprintf "witness: unexpected def %s for %s"
               (Printer.instr_to_string i) (Value.var_to_string x)))

and witness_of_call ctx (x : Value.var) anchor callee args : witness =
  let sb = ctx.config.approach = Config.Softbound in
  match callee with
  | "malloc" ->
      if sb then
        let bound =
          Edit.emit_after ctx.edit anchor ~name:"mbound" Ty.Ptr
            (Instr.Gep (Value.Var x, [ { stride = 1; idx = List.nth args 0 } ]))
        in
        Wsb (Value.Var x, bound)
      else Wlf (Value.Var x)
  | "calloc" ->
      if sb then begin
        let total =
          Edit.emit_after ctx.edit anchor ~name:"csz" Ty.I64
            (Instr.Bin (Mul, Ty.I64, List.nth args 0, List.nth args 1))
        in
        let bound =
          Edit.emit_after ctx.edit anchor ~name:"cbound" Ty.Ptr
            (Instr.Gep (Value.Var x, [ { stride = 1; idx = total } ]))
        in
        Wsb (Value.Var x, bound)
      end
      else Wlf (Value.Var x)
  | name when name = Intrinsics.lf_alloca -> Wlf (Value.Var x)
  | "realloc" when not sb -> Wlf (Value.Var x)
  | _ -> (
      (* general call: witness comes from the call protocol *)
      match Hashtbl.find_opt ctx.call_ret anchor with
      | Some w -> w
      | None ->
          if sb then begin
            (* no protocol was set up (e.g. an unwrapped builtin that
               returns a pointer): SoftBound reads the — possibly stale —
               return slot of the shadow stack; exactly the §4.3 hazard *)
            let b =
              Edit.emit_after ctx.edit anchor ~name:"retb" Ty.Ptr
                (call1 Intrinsics.ss_get_base [ vi64 0 ])
            in
            let e =
              Edit.emit_after ctx.edit anchor ~name:"rete" Ty.Ptr
                (call1 Intrinsics.ss_get_bound [ vi64 0 ])
            in
            let w = Wsb (b, e) in
            Hashtbl.replace ctx.call_ret anchor w;
            w
          end
          else begin
            let b =
              Edit.emit_after ctx.edit anchor ~name:"retbase" Ty.Ptr
                (call1 Intrinsics.lf_base [ Value.Var x ])
            in
            let w = Wlf b in
            Hashtbl.replace ctx.call_ret anchor w;
            w
          end)

(* ------------------------------------------------------------------ *)
(* Invariant maintenance (Table 1, rows "establish invariant")          *)
(* ------------------------------------------------------------------ *)

let emit_invariant_store ctx (s : Itarget.ptr_store) =
  ctx.invariants <- ctx.invariants + 1;
  match ctx.config.approach with
  | Config.Softbound ->
      let b, e = sb_witness_of ctx s.s_value in
      Edit.insert_after ctx.edit s.s_anchor
        (Instr.mk (call1 Intrinsics.sb_trie_store [ s.s_addr; b; e ]))
  | Config.Lowfat ->
      let b = lf_witness_of ctx s.s_value in
      let site = new_site ctx ("ptr-store@" ^ anchor_str s.s_anchor) in
      Edit.insert_before ctx.edit s.s_anchor
        (Instr.mk (call1 Intrinsics.lf_invariant_check [ s.s_value; b; site ]))

let emit_call_protocol ctx (c : Itarget.call) =
  match ctx.config.approach with
  | Config.Lowfat ->
      (* establish the invariant: pointers passed to callees are in
         bounds *)
      List.iter
        (fun (idx, v) ->
          ctx.invariants <- ctx.invariants + 1;
          let b = lf_witness_of ctx v in
          let site =
            new_site ctx
              (Printf.sprintf "call-arg%d@%s" idx (anchor_str c.l_anchor))
          in
          Edit.insert_before ctx.edit c.l_anchor
            (Instr.mk (call1 Intrinsics.lf_invariant_check [ v; b; site ])))
        c.l_ptr_args
  | Config.Softbound -> (
      match c.l_kind with
      | Itarget.Runtime_internal | Itarget.Known_alloc -> ()
      | Itarget.Plain_builtin -> ()
      | Itarget.Wrapped | Itarget.General ->
          let needs = c.l_has_ptr_ret || c.l_ptr_args <> [] in
          if needs then begin
            ctx.invariants <- ctx.invariants + 1;
            let nslots = List.length c.l_ptr_args in
            Edit.insert_before ctx.edit c.l_anchor
              (Instr.mk (call1 Intrinsics.ss_enter [ vi64 nslots ]));
            List.iteri
              (fun rank (_, v) ->
                let b, e = sb_witness_of ctx v in
                Edit.insert_before ctx.edit c.l_anchor
                  (Instr.mk
                     (call1 Intrinsics.ss_set_base [ vi64 (rank + 1); b ]));
                Edit.insert_before ctx.edit c.l_anchor
                  (Instr.mk
                     (call1 Intrinsics.ss_set_bound [ vi64 (rank + 1); e ])))
              c.l_ptr_args;
            (if c.l_has_ptr_ret then
               let b =
                 Edit.emit_after ctx.edit c.l_anchor ~name:"retb" Ty.Ptr
                   (call1 Intrinsics.ss_get_base [ vi64 0 ])
               in
               let e =
                 Edit.emit_after ctx.edit c.l_anchor ~name:"rete" Ty.Ptr
                   (call1 Intrinsics.ss_get_bound [ vi64 0 ])
               in
               Hashtbl.replace ctx.call_ret c.l_anchor (Wsb (b, e)));
            Edit.insert_after ctx.edit c.l_anchor
              (Instr.mk (call1 Intrinsics.ss_leave []));
            (* wrapped libc functions are replaced by their metadata-
               maintaining wrapper (Fig. 6) *)
            if c.l_kind = Itarget.Wrapped then
              Edit.set_replacement ctx.edit c.l_anchor
                (Instr.mk ?dst:c.l_dst
                   (Instr.Call (Intrinsics.sb_wrapper c.l_callee, c.l_args)))
          end)

let emit_ret_protocol ctx (r : Itarget.ptr_ret) =
  ctx.invariants <- ctx.invariants + 1;
  match ctx.config.approach with
  | Config.Softbound ->
      let b, e = sb_witness_of ctx r.r_value in
      Edit.insert_at_end ctx.edit r.r_block
        (Instr.mk (call1 Intrinsics.ss_set_base [ vi64 0; b ]));
      Edit.insert_at_end ctx.edit r.r_block
        (Instr.mk (call1 Intrinsics.ss_set_bound [ vi64 0; e ]))
  | Config.Lowfat ->
      let b = lf_witness_of ctx r.r_value in
      let site = new_site ctx ("ret@" ^ r.r_block) in
      Edit.insert_at_end ctx.edit r.r_block
        (Instr.mk (call1 Intrinsics.lf_invariant_check [ r.r_value; b; site ]))

let emit_escape_cast ctx (e : Itarget.ptr_escape_cast) =
  match ctx.config.approach with
  | Config.Softbound -> ()
  | Config.Lowfat ->
      (* §4.4: check at pointer-to-integer casts *)
      ctx.invariants <- ctx.invariants + 1;
      let b = lf_witness_of ctx e.e_ptr in
      let site = new_site ctx ("ptrtoint@" ^ anchor_str e.e_anchor) in
      Edit.insert_before ctx.edit e.e_anchor
        (Instr.mk (call1 Intrinsics.lf_invariant_check [ e.e_ptr; b; site ]))

let emit_memop ctx (mo : Itarget.memop) =
  (match (ctx.config.approach, mo.m_kind) with
  | Config.Softbound, `Memcpy ->
      (* keep the trie in sync when memory is copied wholesale (the
         copy_metadata part of the memcpy wrapper, Fig. 6) *)
      ctx.invariants <- ctx.invariants + 1;
      Edit.insert_after ctx.edit mo.m_anchor
        (Instr.mk
           (call1 Intrinsics.sb_meta_copy
              [ mo.m_dst; Option.get mo.m_src; mo.m_len ]))
  | _ -> ());
  if ctx.config.sb_wrapper_checks && ctx.config.mode = Config.Full then begin
    (* the wrapper-style checks disabled by default for comparability
       (§5.1.2) *)
    let check_one ptr =
      let site = new_site ctx ("memop@" ^ anchor_str mo.m_anchor) in
      match ctx.config.approach with
      | Config.Softbound ->
          let b, e = sb_witness_of ctx ptr in
          Edit.insert_before ctx.edit mo.m_anchor
            (Instr.mk (call1 Intrinsics.sb_check [ ptr; mo.m_len; b; e; site ]))
      | Config.Lowfat ->
          let b = lf_witness_of ctx ptr in
          Edit.insert_before ctx.edit mo.m_anchor
            (Instr.mk (call1 Intrinsics.lf_check [ ptr; mo.m_len; b; site ]))
    in
    check_one mo.m_dst;
    Option.iter check_one mo.m_src
  end

(* Returns [true] when the check was actually emitted ([false]: deleted
   by the fault plan).  A weakened check is emitted with a wide witness
   (SoftBound: [0, wide_bound); Low-Fat: a non-low-fat base), so it
   executes and counts but can never report. *)
let emit_check ctx (c : Itarget.check) : bool =
  let ordinal = ctx.check_ordinal in
  ctx.check_ordinal <- ordinal + 1;
  let mutation =
    Mi_faultkit.Fault.check_mutation_for ctx.faults ~func:ctx.f.fname ~ordinal
  in
  match mutation with
  | Some Mi_faultkit.Fault.Delete ->
      ctx.mutated <- ctx.mutated + 1;
      false
  | (None | Some Mi_faultkit.Fault.Weaken) as mutation ->
      let weakened = mutation <> None in
      if weakened then ctx.mutated <- ctx.mutated + 1;
      let site =
        new_site ctx
          (Printf.sprintf "%s@%s"
             (match c.c_access with Itarget.Aload -> "load" | Astore -> "store")
             (anchor_str c.c_anchor))
      in
      (match ctx.config.approach with
      | Config.Softbound ->
          let b, e =
            if weakened then (vptr 0, vptr Layout_wide.wide_bound)
            else sb_witness_of ctx c.c_ptr
          in
          Edit.insert_before ctx.edit c.c_anchor
            (Instr.mk
               (call1 Intrinsics.sb_check
                  [ c.c_ptr; vi64 c.c_width; b; e; site ]))
      | Config.Lowfat ->
          let b = if weakened then vptr 0 else lf_witness_of ctx c.c_ptr in
          Edit.insert_before ctx.edit c.c_anchor
            (Instr.mk
               (call1 Intrinsics.lf_check [ c.c_ptr; vi64 c.c_width; b; site ])));
      true

(* ------------------------------------------------------------------ *)
(* Per-function driver                                                 *)
(* ------------------------------------------------------------------ *)

(* Low-Fat stack protection [12]: mirror allocas into low-fat regions by
   replacing them with calls to the mirrored stack allocator. *)
let lf_replace_allocas (f : Func.t) : unit =
  let edit = Edit.create f in
  List.iter
    (fun (b : Block.t) ->
      List.iteri
        (fun pos (i : Instr.t) ->
          match i.op with
          | Instr.Alloca { size; _ } ->
              Edit.set_replacement edit
                { Edit.ablock = b.Block.label; apos = pos }
                { i with op = call1 Intrinsics.lf_alloca [ vi64 size ] }
          | _ -> ())
        b.body)
    f.blocks;
  Edit.apply edit

let instrument_func ?(faults = Mi_faultkit.Fault.none) (config : Config.t)
    (sites : Mi_obs.Site.t) (m : Irmod.t) (f : Func.t) : func_stats =
  if config.approach = Config.Lowfat && config.lf_stack then
    lf_replace_allocas f;
  let targets = Itarget.discover m f in
  let checks, opt_stats = Optimize.run config f targets.checks in
  let ctx =
    {
      config;
      m;
      f;
      edit = Edit.create f;
      defsites = build_defsites f;
      memo = Hashtbl.create 64;
      call_ret = Hashtbl.create 16;
      sites;
      invariants = 0;
      faults;
      check_ordinal = 0;
      mutated = 0;
    }
  in
  (* invariants first: the call protocol pre-creates return witnesses *)
  List.iter (emit_call_protocol ctx) targets.calls;
  List.iter (emit_invariant_store ctx) targets.ptr_stores;
  List.iter (emit_ret_protocol ctx) targets.ptr_rets;
  List.iter (emit_escape_cast ctx) targets.escape_casts;
  List.iter (emit_memop ctx) targets.memops;
  let placed =
    match config.mode with
    | Config.Full ->
        List.fold_left
          (fun n c -> if emit_check ctx c then n + 1 else n)
          0 checks
    | Config.Geninvariants | Config.Noop -> 0
  in
  Edit.apply ctx.edit;
  {
    fname = f.fname;
    checks_found = opt_stats.Optimize.before;
    checks_placed = placed;
    checks_removed = Optimize.removed opt_stats;
    invariants_placed = ctx.invariants;
    checks_mutated = ctx.mutated;
  }

(* ------------------------------------------------------------------ *)
(* Module-level driver                                                 *)
(* ------------------------------------------------------------------ *)

(* SoftBound constructor: register trie metadata for pointers appearing in
   global initializers, so loads of those pointers find valid bounds. *)
let sb_global_init (m : Irmod.t) : Func.t option =
  let entries =
    List.concat_map
      (fun (g : Irmod.global) ->
        if g.gextern then []
        else
          let _, acc =
            List.fold_left
              (fun (off, acc) (fld : Irmod.gfield) ->
                match fld with
                | Irmod.GPtr target -> (off + 8, (g.gname, off, target) :: acc)
                | f -> (off + Irmod.field_size f, acc))
              (0, []) g.gfields
          in
          List.rev acc)
      m.globals
  in
  if entries = [] then None
  else begin
    let b = Builder.create ~name:"__mi_global_init" ~params:[] ~ret_ty:None in
    Builder.start_block b "entry";
    List.iter
      (fun (holder, off, target) ->
        let loc =
          Builder.gep b (Value.Glob holder) [ { stride = 1; idx = vi64 off } ]
        in
        let size =
          match Irmod.find_global m target with
          | Some tg when tg.gsize_known -> Some tg.gsize
          | _ -> None
        in
        let base = Value.Glob target in
        let bound =
          match size with
          | Some s ->
              Builder.gep b base [ { stride = 1; idx = vi64 s } ]
          | None -> vptr Layout_wide.wide_bound
        in
        ignore
          (Builder.call b ~ret:None Intrinsics.sb_trie_store
             [ loc; base; bound ]))
      entries;
    Builder.ret b None;
    Some (Builder.finish b)
  end

(** Instrument every defined function of [m] in place according to
    [config].  Returns static statistics (checks found/placed/eliminated
    per function) used by the §5.3 evaluation.

    When [obs] is given, the pass runs inside a tracing span, every
    placed check is registered in [obs.sites] (the site id rides along
    as the check call's last argument), and the static statistics are
    absorbed into [obs.metrics] under the [static.*] namespace. *)
let run ?(obs : Mi_obs.Obs.t option) ?(faults = Mi_faultkit.Fault.none)
    (config : Config.t) (m : Irmod.t) : mod_stats =
  let sites =
    match obs with Some o -> o.Mi_obs.Obs.sites | None -> Mi_obs.Site.create ()
  in
  let sites_before = Mi_obs.Site.count sites in
  let instrument () =
    let per_func =
      match config.mode with
      | Config.Noop -> []
      | _ ->
          let stats =
            List.map
              (fun f -> instrument_func ~faults config sites m f)
              (Irmod.defined_funcs m)
          in
          (match config.approach with
          | Config.Softbound -> (
              match sb_global_init m with
              | Some f -> Irmod.add_func m f
              | None -> ())
          | Config.Lowfat -> ());
          stats
    in
    {
      per_func;
      total_checks_found =
        List.fold_left (fun a s -> a + s.checks_found) 0 per_func;
      total_checks_placed =
        List.fold_left (fun a s -> a + s.checks_placed) 0 per_func;
      total_checks_removed =
        List.fold_left (fun a s -> a + s.checks_removed) 0 per_func;
      total_invariants =
        List.fold_left (fun a s -> a + s.invariants_placed) 0 per_func;
      total_checks_mutated =
        List.fold_left (fun a s -> a + s.checks_mutated) 0 per_func;
    }
  in
  match obs with
  | None -> instrument ()
  | Some o ->
      let tr = o.Mi_obs.Obs.trace in
      let name = "instrument:" ^ m.Irmod.mname in
      Mi_obs.Trace.begin_span tr ~cat:"instrument"
        ~args:
          [
            ("approach", Mi_obs.Trace.Astr (Config.approach_name config.approach));
            ("instrs_before", Mi_obs.Trace.Aint (Irmod.instr_count m));
          ]
        name;
      let stats =
        try instrument ()
        with e ->
          Mi_obs.Trace.end_span tr name;
          raise e
      in
      let metrics = o.Mi_obs.Obs.metrics in
      Mi_obs.Metrics.incr ~by:stats.total_checks_found metrics
        "static.checks_found";
      Mi_obs.Metrics.incr ~by:stats.total_checks_placed metrics
        "static.checks_placed";
      Mi_obs.Metrics.incr ~by:stats.total_checks_removed metrics
        "static.checks_removed_dominance";
      Mi_obs.Metrics.incr ~by:stats.total_invariants metrics
        "static.invariants_placed";
      (* a compile-phase quantity: keep it in the [static.] namespace so
         cached (compile-skipping) runs don't make it cache-dependent *)
      if stats.total_checks_mutated > 0 then
        Mi_obs.Metrics.incr ~by:stats.total_checks_mutated metrics
          "static.checks_mutated";
      Mi_obs.Metrics.incr
        ~by:(Mi_obs.Site.count sites - sites_before)
        metrics "static.check_sites";
      Mi_obs.Trace.end_span tr
        ~args:
          [
            ("instrs_after", Mi_obs.Trace.Aint (Irmod.instr_count m));
            ("checks_placed", Mi_obs.Trace.Aint stats.total_checks_placed);
            ("checks_removed", Mi_obs.Trace.Aint stats.total_checks_removed);
            ("invariants", Mi_obs.Trace.Aint stats.total_invariants);
          ]
        name;
      stats
