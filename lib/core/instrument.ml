(** The MemInstrument module pass: discovers instrumentation targets
    (Table 1), propagates witnesses, places checks and invariant
    maintenance code for the configured approach.

    A {e witness} (§3.1) is the set of SSA values that carry a pointer's
    metadata to its uses: a [(base, bound)] pair for SoftBound, the
    allocation base pointer for Low-Fat Pointers, the allocation key for
    the temporal checker.  Witnesses are computed by memoized recursion
    over SSA definitions; phis and selects on pointers get companion
    phis/selects on each witness component.  Which values make up a
    witness, how each definition kind sources one, and how checks and
    invariants are spelled is the {e checker}'s business: this pass is
    approach-generic and dispatches through the [Mi_core.Checker]
    registry entry named by [config.approach].

    Checks are emitted as calls to the intrinsics in [Mi_mir.Intrinsics]
    {e by name}, and those names are load-bearing beyond this pass: the
    VM's execution engine fuses call sites naming the hot check
    intrinsics ([sb_check], [lf_check], [tp_check], trie and
    shadow-stack ops) into superinstructions at precompile time, keyed
    on the exact intrinsic name and arity. Renaming an intrinsic or
    changing its argument list silently demotes every site to generic
    dispatch — still correct, same modeled cycles, but the throughput
    gate in [bench/ci.sh] will catch the slowdown. Keep [Intrinsics],
    the runtime registrations (generic and fast twins), and the fusion
    table in [Mi_vm.Interp] in sync. *)

open Mi_mir

type func_stats = {
  fname : string;
  checks_found : int;
  checks_placed : int;
  checks_removed : int;  (** total over the three elimination passes *)
  checks_removed_dominance : int;
  checks_removed_static : int;
  checks_removed_hoisted : int;
      (** in-loop checks a widened preheader check stands for *)
  hoisted_checks_placed : int;  (** widened preheader checks emitted *)
  invariants_placed : int;
  checks_mutated : int;
      (** checks deleted or weakened by an injected fault plan *)
}

type mod_stats = {
  per_func : func_stats list;
  total_checks_found : int;
  total_checks_placed : int;
  total_checks_removed : int;
  total_checks_removed_dominance : int;
  total_checks_removed_static : int;
  total_checks_removed_hoisted : int;
  total_hoisted_checks_placed : int;
  total_invariants : int;
  total_checks_mutated : int;
}

(* defsite of an SSA variable *)
type defsite =
  | Dparam of int  (** parameter index *)
  | Dinstr of Edit.anchor * Instr.t
  | Dphi of string * Instr.phi

let value_key = Optimize.value_key
let vi64 = Checker.vi64
let anchor_str = Checker.anchor_str

let build_defsites (f : Func.t) : defsite Value.VTbl.t =
  let t = Value.VTbl.create 64 in
  List.iteri (fun i p -> Value.VTbl.replace t p (Dparam i)) f.params;
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (p : Instr.phi) ->
          Value.VTbl.replace t p.pdst (Dphi (b.label, p)))
        b.phis;
      List.iteri
        (fun pos (i : Instr.t) ->
          match i.dst with
          | Some d ->
              Value.VTbl.replace t d
                (Dinstr ({ Edit.ablock = b.label; apos = pos }, i))
          | None -> ())
        b.body)
    f.blocks;
  t

(* ------------------------------------------------------------------ *)
(* Per-function driver                                                 *)
(* ------------------------------------------------------------------ *)

let instrument_func ?(faults = Mi_faultkit.Fault.none) (config : Config.t)
    (sites : Mi_obs.Site.t) (m : Irmod.t) (f : Func.t) : func_stats =
  let checker = Checker.find_exn config.approach in
  checker.Checker.prepare_func config f;
  let targets = Itarget.discover m f in
  (* each optimization pass is only applied where the checker's
     semantics make it sound (temporal checks are not idempotent across
     a free, proven-in-bounds says nothing about liveness, and key
     liveness at a preheader says nothing about iteration k — so the
     checker can veto each pass independently) *)
  let opt_config =
    {
      config with
      opt_dominance =
        config.opt_dominance && checker.Checker.supports_dominance_opt;
      opt_hoist = config.opt_hoist && checker.Checker.supports_hoist_opt;
      opt_static = config.opt_static && checker.Checker.supports_static_opt;
    }
  in
  let opt = Optimize.run opt_config m f targets.checks in
  let opt_stats = opt.Optimize.stats in
  let edit = Edit.create f in
  let defsites = build_defsites f in
  let memo : (string, Checker.witness) Hashtbl.t = Hashtbl.create 64 in
  let call_ret : (Edit.anchor, Checker.witness) Hashtbl.t =
    Hashtbl.create 16
  in
  let invariants = ref 0 in
  let check_ordinal = ref 0 in
  let mutated = ref 0 in
  (* Register an instrumentation site for a check placed in this
     function; the id rides along as the check call's last argument so
     the runtime can attribute executions back to it. *)
  let new_site construct =
    let id =
      Mi_obs.Site.register sites ~func:f.fname ~construct
        ~approach:(Config.approach_name config.approach)
    in
    Value.Int (Ty.I64, id)
  in
  let ctx : Checker.ctx =
    {
      config;
      m;
      f;
      edit;
      witness_of = (fun _ -> assert false);
      new_site;
      count_invariant = (fun () -> incr invariants);
      set_call_ret = (fun a w -> Hashtbl.replace call_ret a w);
      get_call_ret = (fun a -> Hashtbl.find_opt call_ret a);
    }
  in
  (* --- witness computation (generic over the checker's components) --- *)
  let rec witness_of (v : Value.t) : Checker.witness =
    let key = value_key v in
    match Hashtbl.find_opt memo key with
    | Some w -> w
    | None ->
        let w = compute_witness v in
        (* phis memoize themselves before recursing; replace is
           idempotent *)
        Hashtbl.replace memo key w;
        w
  and compute_witness (v : Value.t) : Checker.witness =
    match v with
    | Value.Int (_, _) | Value.Fn _ -> checker.Checker.w_const ctx v
    | Value.Flt _ -> invalid_arg "witness of float"
    | Value.Glob g -> checker.Checker.w_global ctx g
    | Value.Var x -> (
        match Value.VTbl.find_opt defsites x with
        | None ->
            invalid_arg
              (Printf.sprintf "witness: no defsite for %s in %s"
                 (Value.var_to_string x) f.fname)
        | Some site -> witness_of_def x site)
  and witness_of_def (x : Value.var) (site : defsite) : Checker.witness =
    match site with
    | Dparam idx -> checker.Checker.w_param ctx x ~idx
    | Dphi (blk, p) ->
        (* create witness phis first (cycles!), recurse, then patch *)
        let vars =
          Array.map
            (fun (pname, _, ty) -> Edit.fresh edit ~name:pname ty)
            checker.Checker.components
        in
        let w = Array.map (fun v -> Value.Var v) vars in
        Hashtbl.replace memo (value_key (Value.Var x)) w;
        let parts =
          List.map (fun (lbl, v) -> (lbl, witness_of v)) p.Instr.incoming
        in
        Array.iteri
          (fun k var ->
            Edit.add_phi edit blk
              {
                Instr.pdst = var;
                incoming = List.map (fun (l, ws) -> (l, ws.(k))) parts;
              })
          vars;
        w
    | Dinstr (anchor, i) -> (
        match i.op with
        | Instr.Gep (base, _) ->
            (* pointer arithmetic inherits the source pointer's witness *)
            witness_of base
        | Instr.Select (_, c, a, b) ->
            let wa = witness_of a in
            let wb = witness_of b in
            Array.mapi
              (fun k (_, sname, ty) ->
                Edit.emit_after edit anchor ~name:sname ty
                  (Instr.Select (ty, c, wa.(k), wb.(k))))
              checker.Checker.components
        | Instr.Alloca { size; _ } -> checker.Checker.w_alloca ctx anchor x ~size
        | Instr.Load (ty, addr) ->
            if not (Ty.is_ptr ty) then
              invalid_arg "witness of non-pointer load";
            checker.Checker.w_load ctx anchor x ~addr
        | Instr.Cast (IntToPtr, _, _, _) -> checker.Checker.w_inttoptr ctx anchor x
        | Instr.Cast (Bitcast, from_ty, src, to_ty)
          when Ty.is_ptr from_ty && Ty.is_ptr to_ty ->
            witness_of src
        | Instr.Cast (_, _, _, _) -> checker.Checker.w_cast_other ctx x
        | Instr.Call (callee, args) -> (
            match checker.Checker.w_call ctx anchor x ~callee ~args with
            | Some w -> w
            | None -> (
                (* general call: witness comes from the call protocol *)
                match Hashtbl.find_opt call_ret anchor with
                | Some w -> w
                | None ->
                    let w = checker.Checker.w_call_fallback ctx anchor x in
                    Hashtbl.replace call_ret anchor w;
                    w))
        | _ ->
            invalid_arg
              (Printf.sprintf "witness: unexpected def %s for %s"
                 (Printer.instr_to_string i) (Value.var_to_string x)))
  in
  ctx.witness_of <- witness_of;
  (* --- checks and memops (generic; the checker spells the call) ------ *)
  let emit_memop (mo : Itarget.memop) =
    checker.Checker.emit_memop_invariant ctx mo;
    if config.sb_wrapper_checks && config.mode = Config.Full then begin
      (* the wrapper-style checks disabled by default for comparability
         (§5.1.2) *)
      let check_one ptr =
        let site = new_site ("memop@" ^ anchor_str mo.m_anchor) in
        let w = witness_of ptr in
        Edit.insert_before edit mo.m_anchor
          (Instr.mk (checker.Checker.check_op ~ptr ~width:mo.m_len w ~site))
      in
      check_one mo.m_dst;
      Option.iter check_one mo.m_src
    end
  in
  (* Returns [true] when the check was actually emitted ([false]:
     deleted by the fault plan).  A weakened check is emitted with the
     checker's wide witness, so it executes and counts but can never
     report. *)
  let emit_check (c : Itarget.check) : bool =
    let ordinal = !check_ordinal in
    check_ordinal := ordinal + 1;
    let mutation =
      Mi_faultkit.Fault.check_mutation_for faults ~func:f.fname ~ordinal
    in
    match mutation with
    | Some Mi_faultkit.Fault.Delete ->
        incr mutated;
        false
    | (None | Some Mi_faultkit.Fault.Weaken) as mutation ->
        let weakened = mutation <> None in
        if weakened then incr mutated;
        let site =
          new_site
            (Printf.sprintf "%s@%s"
               (match c.c_access with
               | Itarget.Aload -> "load"
               | Astore -> "store")
               (anchor_str c.c_anchor))
        in
        let w =
          if weakened then checker.Checker.wide else witness_of c.c_ptr
        in
        Edit.insert_before edit c.c_anchor
          (Instr.mk
             (checker.Checker.check_op ~ptr:c.c_ptr ~width:(vi64 c.c_width) w
                ~site));
        true
  in
  (* A widened preheader check stands for every iteration's access to a
     loop-invariant base; it goes through the same ordinal/mutation/site
     machinery as an in-place check (so mutation campaigns can delete or
     weaken it), distinguished by the "hoist:" construct infix. *)
  let emit_hoisted (h : Optimize.hoisted) : bool =
    let ordinal = !check_ordinal in
    check_ordinal := ordinal + 1;
    let mutation =
      Mi_faultkit.Fault.check_mutation_for faults ~func:f.fname ~ordinal
    in
    match mutation with
    | Some Mi_faultkit.Fault.Delete ->
        incr mutated;
        false
    | (None | Some Mi_faultkit.Fault.Weaken) as mutation ->
        let weakened = mutation <> None in
        if weakened then incr mutated;
        let site =
          new_site
            (Printf.sprintf "%s@hoist:%s"
               (match h.Optimize.h_access with
               | Itarget.Aload -> "load"
               | Astore -> "store")
               (anchor_str h.Optimize.h_origin))
        in
        let w =
          if weakened then checker.Checker.wide
          else witness_of h.Optimize.h_base
        in
        let ptr =
          if h.Optimize.h_min_off = 0 then h.Optimize.h_base
          else
            let dst = Edit.fresh edit ~name:"hoistp" Ty.Ptr in
            Edit.insert_at_end edit h.Optimize.h_preheader
              (Instr.mk ~dst
                 (Instr.Gep
                    ( h.Optimize.h_base,
                      [ { Instr.stride = 1; idx = vi64 h.Optimize.h_min_off } ]
                    )));
            Value.Var dst
        in
        Edit.insert_at_end edit h.Optimize.h_preheader
          (Instr.mk
             (checker.Checker.check_op ~ptr ~width:(vi64 h.Optimize.h_span) w
                ~site));
        true
  in
  (* invariants first: the call protocol pre-creates return witnesses *)
  List.iter (checker.Checker.emit_call ctx) targets.calls;
  List.iter
    (fun (s : Itarget.ptr_store) ->
      incr invariants;
      checker.Checker.emit_ptr_store ctx s)
    targets.ptr_stores;
  List.iter
    (fun (r : Itarget.ptr_ret) ->
      incr invariants;
      checker.Checker.emit_ret ctx r)
    targets.ptr_rets;
  List.iter (checker.Checker.emit_escape ctx) targets.escape_casts;
  List.iter emit_memop targets.memops;
  let placed, hoisted_placed =
    match config.mode with
    | Config.Full ->
        let placed =
          List.fold_left
            (fun n c -> if emit_check c then n + 1 else n)
            0 opt.Optimize.kept
        in
        let hoisted_placed =
          List.fold_left
            (fun n h -> if emit_hoisted h then n + 1 else n)
            0 opt.Optimize.hoisted
        in
        (placed + hoisted_placed, hoisted_placed)
    | Config.Geninvariants | Config.Noop -> (0, 0)
  in
  Edit.apply edit;
  {
    fname = f.fname;
    checks_found = opt_stats.Optimize.before;
    checks_placed = placed;
    checks_removed = Optimize.removed opt_stats;
    checks_removed_dominance = opt_stats.Optimize.removed_dominance;
    checks_removed_static = opt_stats.Optimize.removed_static;
    checks_removed_hoisted = opt_stats.Optimize.removed_hoisted;
    hoisted_checks_placed = hoisted_placed;
    invariants_placed = !invariants;
    checks_mutated = !mutated;
  }

(* ------------------------------------------------------------------ *)
(* Module-level driver                                                 *)
(* ------------------------------------------------------------------ *)

(* exposed for testing; SoftBound's module_ctor drives it *)
let sb_global_init = Sb_scheme.global_init

(** Instrument every defined function of [m] in place according to
    [config].  Returns static statistics (checks found/placed/eliminated
    per function) used by the §5.3 evaluation.

    When [obs] is given, the pass runs inside a tracing span, every
    placed check is registered in [obs.sites] (the site id rides along
    as the check call's last argument), and the static statistics are
    absorbed into [obs.metrics] under the [static.*] namespace. *)
let run ?(obs : Mi_obs.Obs.t option) ?(faults = Mi_faultkit.Fault.none)
    (config : Config.t) (m : Irmod.t) : mod_stats =
  let sites =
    match obs with Some o -> o.Mi_obs.Obs.sites | None -> Mi_obs.Site.create ()
  in
  let sites_before = Mi_obs.Site.count sites in
  let instrument () =
    let per_func =
      match config.mode with
      | Config.Noop -> []
      | _ ->
          let checker = Checker.find_exn config.approach in
          let stats =
            List.map
              (fun f -> instrument_func ~faults config sites m f)
              (Irmod.defined_funcs m)
          in
          (match checker.Checker.module_ctor config m with
          | Some f -> Irmod.add_func m f
          | None -> ());
          stats
    in
    {
      per_func;
      total_checks_found =
        List.fold_left (fun a s -> a + s.checks_found) 0 per_func;
      total_checks_placed =
        List.fold_left (fun a s -> a + s.checks_placed) 0 per_func;
      total_checks_removed =
        List.fold_left (fun a s -> a + s.checks_removed) 0 per_func;
      total_checks_removed_dominance =
        List.fold_left (fun a s -> a + s.checks_removed_dominance) 0 per_func;
      total_checks_removed_static =
        List.fold_left (fun a s -> a + s.checks_removed_static) 0 per_func;
      total_checks_removed_hoisted =
        List.fold_left (fun a s -> a + s.checks_removed_hoisted) 0 per_func;
      total_hoisted_checks_placed =
        List.fold_left (fun a s -> a + s.hoisted_checks_placed) 0 per_func;
      total_invariants =
        List.fold_left (fun a s -> a + s.invariants_placed) 0 per_func;
      total_checks_mutated =
        List.fold_left (fun a s -> a + s.checks_mutated) 0 per_func;
    }
  in
  match obs with
  | None -> instrument ()
  | Some o ->
      let tr = o.Mi_obs.Obs.trace in
      let name = "instrument:" ^ m.Irmod.mname in
      Mi_obs.Trace.begin_span tr ~cat:"instrument"
        ~args:
          [
            ("approach", Mi_obs.Trace.Astr (Config.approach_name config.approach));
            ("instrs_before", Mi_obs.Trace.Aint (Irmod.instr_count m));
          ]
        name;
      let stats =
        try instrument ()
        with e ->
          Mi_obs.Trace.end_span tr name;
          raise e
      in
      let metrics = o.Mi_obs.Obs.metrics in
      Mi_obs.Metrics.incr ~by:stats.total_checks_found metrics
        "static.checks_found";
      Mi_obs.Metrics.incr ~by:stats.total_checks_placed metrics
        "static.checks_placed";
      Mi_obs.Metrics.incr ~by:stats.total_checks_removed_dominance metrics
        "static.checks_removed_dominance";
      (* the static/hoist counters only exist when the passes are
         enabled, keeping dominance-only metric snapshots (and their
         goldens) unchanged *)
      if config.opt_static then
        Mi_obs.Metrics.incr ~by:stats.total_checks_removed_static metrics
          "static.checks_removed_static";
      if config.opt_hoist then begin
        Mi_obs.Metrics.incr ~by:stats.total_checks_removed_hoisted metrics
          "static.checks_removed_hoisted";
        Mi_obs.Metrics.incr ~by:stats.total_hoisted_checks_placed metrics
          "static.hoisted_checks_placed"
      end;
      Mi_obs.Metrics.incr ~by:stats.total_invariants metrics
        "static.invariants_placed";
      (* a compile-phase quantity: keep it in the [static.] namespace so
         cached (compile-skipping) runs don't make it cache-dependent *)
      if stats.total_checks_mutated > 0 then
        Mi_obs.Metrics.incr ~by:stats.total_checks_mutated metrics
          "static.checks_mutated";
      Mi_obs.Metrics.incr
        ~by:(Mi_obs.Site.count sites - sites_before)
        metrics "static.check_sites";
      Mi_obs.Trace.end_span tr
        ~args:
          [
            ("instrs_after", Mi_obs.Trace.Aint (Irmod.instr_count m));
            ("checks_placed", Mi_obs.Trace.Aint stats.total_checks_placed);
            ("checks_removed", Mi_obs.Trace.Aint stats.total_checks_removed);
            ("invariants", Mi_obs.Trace.Aint stats.total_invariants);
          ]
        name;
      stats
