(** Instrumentation configuration, mirroring the MemInstrument flags of
    the paper's artifact appendix (A.6).

    Approaches are open names resolved against a registry of bases
    populated by the checker schemes (see [Mi_core.Checker]); the two
    paper approaches plus the temporal checker register "softbound",
    "lowfat" and "temporal". *)

type approach = string
(** A registered checker name (e.g. ["softbound"], ["lowfat"],
    ["temporal"]). *)

type mode =
  | Full  (** witnesses + invariants + dereference checks *)
  | Geninvariants
      (** witnesses + invariants only — the "metadata" configuration of
          Figures 10/11 ([-mi-mode=geninvariants]) *)
  | Noop  (** leave the module untouched *)

type t = {
  approach : approach;
  mode : mode;
  opt_dominance : bool;
      (** dominance-based check elimination ([-mi-opt-dominance], §5.3) *)
  opt_hoist : bool;
      (** loop-invariant check hoisting with range widening: one widened
          preheader check replaces the per-iteration checks of a counted
          loop.  Sound only for checkers whose abort-on-failure
          semantics permit early abort (capability-vetoed). *)
  opt_static : bool;
      (** CHOP-style static in-bounds elimination: value-range
          propagation deletes checks provably inside their allocation
          (capability-vetoed). *)
  sb_size_zero_wide_upper : bool;
      (** wide upper bounds for size-less extern arrays
          ([-mi-sb-size-zero-wide-upper], §4.3) *)
  sb_inttoptr_wide : bool;
      (** wide instead of null bounds for int-to-pointer casts
          ([-mi-sb-inttoptr-wide-bounds], §4.4) *)
  sb_wrapper_checks : bool;
      (** safety checks inside libc wrappers; off by default for runtime
          comparability (§5.1.2) *)
  lf_stack : bool;  (** Low-Fat stack-variable protection *)
  lf_globals : bool;  (** Low-Fat global-variable protection *)
  tp_stack : bool;  (** temporal keying of stack variables *)
}

val softbound : t
(** The paper's SoftBound configuration basis. *)

val lowfat : t
(** The paper's Low-Fat Pointers configuration basis. *)

val temporal : t
(** The temporal lock-and-key configuration basis. *)

val register_basis : ?aliases:string list -> t -> unit
(** Register an approach's configuration basis under [t.approach].
    Called by [Mi_core.Checker.register]; raises [Invalid_argument] on a
    duplicate name. *)

val known_approaches : unit -> string list
(** Registered approach names, in registration order — narrowed by
    {!restrict_approaches} when a restriction is in force. *)

val restrict_approaches : string list -> unit
(** Narrow {!known_approaches} to the given names (resolving aliases) —
    the mechanism behind [mi-experiments --approach].  Lookups
    ({!find_approach}/{!of_approach}) stay total, so components pinned
    to a specific approach keep resolving.  Raises [Invalid_argument]
    on an unregistered name. *)

val find_approach : string -> t option
(** Alias-aware, case-insensitive lookup of a registered basis. *)

val of_approach : string -> t
(** Like {!find_approach} but raises [Invalid_argument] naming the known
    approaches when the name is not registered. *)

val optimized : t -> t
(** Enable the dominance-based check elimination (the "optimized"
    configurations of Figures 9-11). *)

val optimized_full : t -> t
(** Enable every check-elimination pass (dominance + hoisting + static)
    — the [checkelim] experiment's configuration.  Passes remain
    subject to the checker's capability veto. *)

val metadata_only : t -> t
(** Switch to [Geninvariants] (the "metadata" configurations of
    Figures 10/11). *)

val approach_name : approach -> string
val to_string : t -> string
