(** The pluggable checker interface and its registry.

    A checker (SoftBound, Low-Fat, the temporal lock-and-key checker,
    ...) is the approach-specific half of the instrumentation pass: the
    generic half ([Mi_core.Instrument]) discovers targets (Table 1),
    memoizes witnesses over SSA definitions and drives placement, while
    everything that differs between approaches — what a witness is made
    of, how each definition kind sources one, which intrinsics maintain
    the invariant, and how a dereference check is spelled — lives behind
    a {!t} record resolved by name through {!find}.

    Checkers self-register at module-initialization time (see
    [Mi_core.Schemes]), mirroring the experiment registry of
    [Mi_bench_kit.Experiments]; registering a checker also registers its
    configuration basis in {!Mi_core.Config}, so CLI approach lookup,
    the experiment matrix and the instrumenter all share one namespace.

    A checker's runtime twin (generic builtins + unboxed fast functions
    for the VM's fused superinstructions) is registered separately, on
    the VM side, through [Mi_runtimes] — the compiler half here emits
    calls {e by intrinsic name}, which is the contract binding the two
    halves together. *)

open Mi_mir

type witness = Value.t array
(** The SSA values carrying a pointer's metadata to its uses (§3.1):
    [[|base; bound|]] for SoftBound, [[|base|]] for Low-Fat, [[|key|]]
    for the temporal checker.  The array's arity and slot types are the
    checker's {!t.components}. *)

type ctx = {
  config : Config.t;
  m : Irmod.t;
  f : Func.t;
  edit : Edit.t;
  mutable witness_of : Value.t -> witness;
      (** memoized witness lookup, tied back to the instrumenter's
          witness engine after the context is created *)
  new_site : string -> Value.t;
      (** register an instrumentation site for this function; returns
          the site-id constant that rides on the check call *)
  count_invariant : unit -> unit;
  set_call_ret : Edit.anchor -> witness -> unit;
      (** pre-create the witness of a call's pointer result (the call
          protocol does this so later uses find it) *)
  get_call_ret : Edit.anchor -> witness option;
}
(** What a checker callback may see and do while instrumenting one
    function.  Edits go through [ctx.edit]; the instrumenter applies
    them once per function. *)

type t = {
  name : string;  (** registry name; equals [basis.approach] *)
  aliases : string list;
  descr : string;
  basis : Config.t;  (** the approach's default configuration *)
  components : (string * string * Ty.t) array;
      (** witness slots: (companion-phi name, companion-select name,
          slot type).  The generic engine uses these to build witness
          phis and selects of the right arity — names are load-bearing
          for instrumentation-cache keys and goldens. *)
  supports_dominance_opt : bool;
      (** whether dominance-based check elimination (§5.3) is sound for
          this checker.  False for the temporal checker: a dominating
          check only proves the key was live {e then}; a [free] between
          the two accesses invalidates the dominated check's premise. *)
  supports_hoist_opt : bool;
      (** whether loop-invariant check hoisting with range widening is
          sound: the checker's abort-on-failure semantics must permit
          aborting {e before} the loop for an access a later iteration
          would make.  False for the temporal checker — liveness at the
          preheader proves nothing about liveness at iteration [k]. *)
  supports_static_opt : bool;
      (** whether statically-proven-in-bounds checks may be deleted.
          False for the temporal checker: in-bounds says nothing about
          whether the allocation is still live at the access. *)
  wide : witness;
      (** the checker's "never reports" witness (wide bounds / key 0),
          used by weakened (fault-injected) checks *)
  w_const : ctx -> Value.t -> witness;
  w_global : ctx -> string -> witness;
  w_param : ctx -> Value.var -> idx:int -> witness;
  w_alloca : ctx -> Edit.anchor -> Value.var -> size:int -> witness;
  w_load : ctx -> Edit.anchor -> Value.var -> addr:Value.t -> witness;
  w_inttoptr : ctx -> Edit.anchor -> Value.var -> witness;
  w_cast_other : ctx -> Value.var -> witness;
  w_call :
    ctx ->
    Edit.anchor ->
    Value.var ->
    callee:string ->
    args:Value.t list ->
    witness option;
      (** witness of a call result the checker derives directly
          (allocators); [None] defers to the call protocol /
          {!t.w_call_fallback} *)
  w_call_fallback : ctx -> Edit.anchor -> Value.var -> witness;
      (** witness of a pointer-returning call no protocol covered (e.g.
          an unwrapped builtin) *)
  emit_ptr_store : ctx -> Itarget.ptr_store -> unit;
  emit_call : ctx -> Itarget.call -> unit;
  emit_ret : ctx -> Itarget.ptr_ret -> unit;
  emit_escape : ctx -> Itarget.ptr_escape_cast -> unit;
  emit_memop_invariant : ctx -> Itarget.memop -> unit;
  check_op :
    ptr:Value.t -> width:Value.t -> witness -> site:Value.t -> Instr.op;
      (** the dereference-check call for one access *)
  prepare_func : Config.t -> Func.t -> unit;
      (** pre-pass before target discovery (e.g. replacing allocas with
          a protected stack allocator) *)
  module_ctor : Config.t -> Irmod.t -> Func.t option;
      (** optional module constructor (e.g. SoftBound's global-metadata
          initializer) *)
}

(* --- shared helpers for schemes -------------------------------------- *)

(* Keep in sync with Mi_vm.Layout; duplicated to avoid a core -> vm
   dependency (the instrumentation is compiler-side, the VM is the
   "hardware").  The verifier tests assert the values match. *)
let wide_bound = 0x7FFF_FFFF_FFFF

let vi64 k = Value.Int (Ty.I64, k)
let vptr k = Value.Int (Ty.Ptr, k)
let call1 name args = Instr.Call (name, args)

let anchor_str (a : Edit.anchor) =
  Printf.sprintf "%s:%d" a.Edit.ablock a.Edit.apos

(* slot index of a pointer parameter on the shadow stack: 1 + its rank
   among the pointer-typed parameters *)
let ptr_param_slot (f : Func.t) idx =
  let rank = ref 0 in
  let result = ref None in
  List.iteri
    (fun i (p : Value.var) ->
      if Ty.is_ptr p.vty then begin
        incr rank;
        if i = idx then result := Some !rank
      end)
    f.params;
  !result

(** Replace every alloca of [f] with a call to [intrinsic (size)] — the
    mirrored/keyed stack-allocation pre-pass shared by the Low-Fat and
    temporal schemes. *)
let replace_allocas intrinsic (f : Func.t) : unit =
  let edit = Edit.create f in
  List.iter
    (fun (b : Block.t) ->
      List.iteri
        (fun pos (i : Instr.t) ->
          match i.op with
          | Instr.Alloca { size; _ } ->
              Edit.set_replacement edit
                { Edit.ablock = b.Block.label; apos = pos }
                { i with op = call1 intrinsic [ vi64 size ] }
          | _ -> ())
        b.body)
    f.blocks;
  Edit.apply edit

(* --- registry --------------------------------------------------------- *)

let registry : t list ref = ref []

let register (c : t) =
  if c.name <> c.basis.Config.approach then
    invalid_arg
      (Printf.sprintf "Checker.register: name %S <> basis approach %S" c.name
         c.basis.Config.approach);
  if List.exists (fun x -> x.name = c.name) !registry then
    invalid_arg ("Checker.register: duplicate checker " ^ c.name);
  Config.register_basis ~aliases:c.aliases c.basis;
  registry := !registry @ [ c ]

let find name =
  let n = String.lowercase_ascii name in
  List.find_opt (fun c -> c.name = n || List.mem n c.aliases) !registry

let find_exn name =
  match find name with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf "unknown checker %S (known: %s)" name
           (String.concat ", " (List.map (fun c -> c.name) !registry)))

let known_names () = List.map (fun c -> c.name) !registry
let all () = !registry
