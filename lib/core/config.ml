(** Instrumentation configuration.

    Mirrors the MemInstrument command-line flags listed in the paper's
    artifact appendix (A.6): the approach selection ([-mi-config]), the
    mode ([-mi-mode=geninvariants]), the dominance-based check elimination
    ([-mi-opt-dominance]), and the SoftBound policies for size-zero global
    declarations and integer-to-pointer casts.

    The approach is an open name resolved against a registry of
    configuration bases: each checker scheme registers its basis (and
    aliases) through {!register_basis} when it registers itself in
    [Mi_core.Checker], so adding a checker never touches this module. *)

type approach = string

type mode =
  | Full  (** witnesses + invariants + dereference checks *)
  | Geninvariants
      (** witnesses + invariants only — the "metadata" configuration of
          Figures 10/11, measuring the cost of maintaining the approach's
          invariant without any access checks *)
  | Noop  (** leave the module untouched (baseline) *)

type t = {
  approach : approach;
  mode : mode;
  opt_dominance : bool;
      (** eliminate checks dominated by an equivalent check (§5.3) *)
  opt_hoist : bool;
      (** hoist loop checks to a widened preheader check (requires the
          checker's abort-on-failure semantics to permit early abort) *)
  opt_static : bool;
      (** delete checks the constraint pass proves in-bounds statically
          (CHOP-style value-range propagation) *)
  sb_size_zero_wide_upper : bool;
      (** [-mi-sb-size-zero-wide-upper]: extern globals declared without a
          size get a wide upper bound instead of null bounds (§4.3) *)
  sb_inttoptr_wide : bool;
      (** [-mi-sb-inttoptr-wide-bounds]: pointers cast from integers get
          wide bounds instead of null bounds (§4.4) *)
  sb_wrapper_checks : bool;
      (** safety checks inside C-library wrappers; disabled by default for
          runtime comparability (§5.1.2) *)
  lf_stack : bool;  (** Low-Fat stack-variable protection [12] *)
  lf_globals : bool;  (** Low-Fat global-variable protection [11] *)
  tp_stack : bool;
      (** temporal stack protection: key stack variables so dangling
          references to dead frames are detected *)
}

(** The paper's SoftBound configuration basis (appendix A.6). *)
let softbound =
  {
    approach = "softbound";
    mode = Full;
    opt_dominance = false;
    opt_hoist = false;
    opt_static = false;
    sb_size_zero_wide_upper = true;
    sb_inttoptr_wide = true;
    sb_wrapper_checks = false;
    lf_stack = false;
    lf_globals = false;
    tp_stack = true;
  }

(** The paper's Low-Fat Pointers configuration basis (appendix A.6). *)
let lowfat =
  {
    approach = "lowfat";
    mode = Full;
    opt_dominance = false;
    opt_hoist = false;
    opt_static = false;
    sb_size_zero_wide_upper = true;
    sb_inttoptr_wide = true;
    sb_wrapper_checks = false;
    lf_stack = true;
    lf_globals = true;
    tp_stack = true;
  }

(** The temporal lock-and-key configuration basis (CETS-style). *)
let temporal =
  {
    approach = "temporal";
    mode = Full;
    opt_dominance = false;
    opt_hoist = false;
    opt_static = false;
    sb_size_zero_wide_upper = true;
    sb_inttoptr_wide = true;
    sb_wrapper_checks = false;
    lf_stack = false;
    lf_globals = false;
    tp_stack = true;
  }

(* --- approach-basis registry ---------------------------------------- *)

(* Populated by checker schemes at module-initialization time (see
   [Mi_core.Checker.register] and [Mi_core.Schemes]); kept in
   registration order so enumerations are deterministic. *)
let bases : (string * (string list * t)) list ref = ref []

let register_basis ?(aliases = []) (c : t) =
  if List.mem_assoc c.approach !bases then
    invalid_arg ("Config.register_basis: duplicate approach " ^ c.approach);
  bases := !bases @ [ (c.approach, (aliases, c)) ]

(* an optional caller-imposed filter on the enumeration (mi-experiments
   [--approach]): lookups stay total — an experiment pinned to one
   approach keeps working — only the default enumeration narrows *)
let restriction : string list option ref = ref None

let known_approaches () =
  let all = List.map fst !bases in
  match !restriction with
  | None -> all
  | Some keep -> List.filter (fun n -> List.mem n keep) all

let find_approach name =
  let n = String.lowercase_ascii name in
  List.find_map
    (fun (nm, (aliases, c)) ->
      if nm = n || List.mem n aliases then Some c else None)
    !bases

let of_approach name =
  match find_approach name with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf "unknown approach %S (known: %s)" name
           (String.concat ", " (known_approaches ())))

let restrict_approaches names =
  restriction := Some (List.map (fun n -> (of_approach n).approach) names)

(** The "optimized" configurations of Figures 9-11. *)
let optimized c = { c with opt_dominance = true }

(** Every check-elimination pass on: dominance, loop-invariant hoisting
    with range widening, and the static in-bounds constraint pass — the
    configuration the [checkelim] experiment measures.  Each pass is
    still subject to the checker's capability veto at instrumentation
    time. *)
let optimized_full c =
  { c with opt_dominance = true; opt_hoist = true; opt_static = true }

(** The "metadata" configurations of Figures 10/11. *)
let metadata_only c = { c with mode = Geninvariants }

let approach_name (a : approach) : string = a

let to_string c =
  String.concat ""
    [
      c.approach;
      (match c.mode with
      | Full -> ""
      | Geninvariants -> "+geninvariants"
      | Noop -> "+noop");
      (if c.opt_dominance then "+domopt" else "");
      (if c.opt_hoist then "+hoistopt" else "");
      (if c.opt_static then "+staticopt" else "");
      (if c.sb_size_zero_wide_upper then "" else "+sz0null");
      (if c.sb_inttoptr_wide then "" else "+i2pnull");
      (if c.sb_wrapper_checks then "+wrapchecks" else "");
      (if c.approach = "lowfat" then
         (if c.lf_stack then "" else "+nostack")
         ^ if c.lf_globals then "" else "+noglobals"
       else "");
      (if c.approach = "temporal" && not c.tp_stack then "+nostack" else "");
    ]
