(** The MemInstrument module pass: discovers targets (Table 1),
    propagates witnesses, places checks and invariant-maintenance code
    for the configured approach. *)

open Mi_mir

type func_stats = {
  fname : string;
  checks_found : int;  (** check targets discovered *)
  checks_placed : int;
      (** after optimization and mode filtering; includes hoisted
          preheader checks *)
  checks_removed : int;  (** total over the three elimination passes *)
  checks_removed_dominance : int;  (** eliminated by dominance (§5.3) *)
  checks_removed_static : int;  (** proven in bounds and deleted *)
  checks_removed_hoisted : int;
      (** in-loop checks a widened preheader check stands for *)
  hoisted_checks_placed : int;  (** widened preheader checks emitted *)
  invariants_placed : int;  (** invariant-maintenance sites *)
  checks_mutated : int;
      (** checks deleted or weakened by an injected fault plan *)
}

type mod_stats = {
  per_func : func_stats list;
  total_checks_found : int;
  total_checks_placed : int;
  total_checks_removed : int;
  total_checks_removed_dominance : int;
  total_checks_removed_static : int;
  total_checks_removed_hoisted : int;
  total_hoisted_checks_placed : int;
  total_invariants : int;
  total_checks_mutated : int;
}

val run :
  ?obs:Mi_obs.Obs.t -> ?faults:Mi_faultkit.Fault.t -> Config.t -> Irmod.t ->
  mod_stats
(** Instrument every defined function of the module in place.  For
    SoftBound, a [__mi_global_init] constructor is added when global
    initializers contain pointers (their trie metadata must exist before
    [main] runs).  Returns the static statistics of §5.3.

    With [obs], every placed check registers a stable instrumentation
    site in [obs.sites] (its id rides on the check call as a trailing
    constant argument, read back by the runtimes), the whole pass runs
    under an ["instrument:<module>"] tracing span, and the static
    statistics are absorbed into [obs.metrics] as [static.*] counters.

    With [faults], check mutations in the plan apply as checks are
    placed: a [Delete] mutation suppresses the check entirely (it is
    not placed, registers no site, and does not count in
    [checks_placed]); a [Weaken] mutation emits it with wide bounds so
    it can never report.  Mutations are matched by per-function check
    ordinal — the n-th (0-based) check in placement order, numbered
    before the mutation decision so ordinals are stable across plans.
    Mutated checks count in [checks_mutated] and, with [obs], in the
    ["static.checks_mutated"] counter (a compile-phase quantity, kept in
    the [static.] namespace so cache-hitting runs that skip the compile
    stay counter-identical to cache-missing ones).  This is the
    mutation-testing engine behind the safety-guarantee validation. *)

val sb_global_init : Irmod.t -> Func.t option
(** The constructor described above, exposed for testing. *)

val instrument_func :
  ?faults:Mi_faultkit.Fault.t ->
  Config.t -> Mi_obs.Site.t -> Irmod.t -> Func.t -> func_stats
(** Instrument a single function (exposed for testing; [run] drives it). *)
