(** Approach-independent check optimizations on instrumentation targets.

    Three passes, each vetoable per checker (capability flags on
    {!Checker.t}) and per configuration ({!Config.t} knobs), applied in
    a fixed order:

    {ol
    {- {b Dominance elimination} (§5.3, [opt_dominance]): when two
       accesses go through the same pointer SSA value and one access's
       check dominates the other with at least the same width, the
       dominated check is redundant — if the first check passes, the
       second cannot fail, and if it fails the program aborts before
       reaching the second.  This is the optimization "frequently
       described in the literature" [1, 10, 23] that the paper measures
       removing between 8% (177mesa) and 50% (256bzip2) of checks.}
    {- {b Static in-bounds elimination} ([opt_static]): a CHOP-style
       constraint pass.  The checked pointer is chased through geps and
       pointer bitcasts to an allocation of statically known size
       (alloca, sized global, [malloc]/[calloc] of constants), while the
       byte offset is bounded by interval arithmetic over constants,
       affine arithmetic and canonical loop induction variables
       ({!Mi_analysis.Indvar}).  A check whose whole offset interval
       plus access width fits inside the allocation can never fire and
       is deleted.}
    {- {b Loop-invariant check hoisting} ([opt_hoist]): checks inside a
       canonical counted loop whose address is affine in the induction
       variable over a loop-invariant base are replaced by one {e
       widened} check in the preheader covering the footprint of every
       iteration.  Sound only under early-abort semantics (the checker
       opts in via [supports_hoist_opt]): the widened check may abort
       before the loop for an access a later iteration would have made.
       The footprint argument needs every iteration to actually reach
       the check, so the check's block must dominate every latch, the
       loop must be single-exit with a known-positive trip count, and
       the body must not call anything that could terminate the program
       first ([exit]/[abort]/non-builtin callees).}}

    The passes only ever {e remove} or {e summarize} checks discovered
    by [Itarget]; emitting the surviving and hoisted checks stays the
    instrumenter's business. *)

open Mi_mir
module Dom = Mi_analysis.Dom
module Cfg = Mi_analysis.Cfg
module Loops = Mi_analysis.Loops
module Indvar = Mi_analysis.Indvar

type stats = {
  before : int;  (** checks discovered *)
  after : int;  (** in-place checks surviving all passes *)
  removed_dominance : int;
  removed_static : int;
  removed_hoisted : int;
      (** in-loop checks replaced by a widened preheader check *)
}

let removed s = s.removed_dominance + s.removed_static + s.removed_hoisted

let no_stats n =
  {
    before = n;
    after = n;
    removed_dominance = 0;
    removed_static = 0;
    removed_hoisted = 0;
  }

type hoisted = {
  h_preheader : string;  (** label of the preheader block to emit into *)
  h_base : Value.t;  (** loop-invariant base pointer *)
  h_min_off : int;  (** smallest byte offset any iteration accesses *)
  h_span : int;  (** bytes covered: max offset + width - min offset *)
  h_access : Itarget.access;  (** [Astore] if any replaced check stored *)
  h_origin : Edit.anchor;  (** anchor of the first replaced check *)
  h_replaced : int;  (** how many in-loop checks it stands for *)
}

type result = {
  kept : Itarget.check list;  (** surviving checks, in discovery order *)
  hoisted : hoisted list;  (** widened preheader checks to emit *)
  stats : stats;
}

(* A stable key for grouping checks by checked pointer value. *)
let value_key (v : Value.t) =
  match v with
  | Var x -> "v" ^ string_of_int x.vid
  | Int (ty, k) -> Printf.sprintf "i%s:%d" (Ty.to_string ty) k
  | Flt f -> Printf.sprintf "f%h" f
  | Glob g -> "g" ^ g
  | Fn g -> "fn" ^ g

(* identity of a check: anchors are unique per discovered check *)
let anchor_key (c : Itarget.check) =
  (c.Itarget.c_anchor.Edit.ablock, c.Itarget.c_anchor.Edit.apos)

(* ------------------------------------------------------------------ *)
(* Pass 1: dominance elimination                                       *)
(* ------------------------------------------------------------------ *)

(* One sweep entry: a check's position and width. *)
type dentry = { e_bi : int; e_pos : int; e_w : int; e_id : string * int }

(* Remove every check dominated by an equal-or-wider check on the same
   pointer SSA value.  A removed check still shields the checks it
   dominates (its own dominator does), so the removal decision for each
   check only depends on the set of group members above it in the
   dominator tree — which an ancestor-stack sweep over the dominator
   DFS preorder computes in O(n log n) per group instead of the naive
   all-pairs scan. *)
let dominance_eliminate_sweep (cfg : Cfg.t) (dom : Dom.t)
    (checks : Itarget.check list) : Itarget.check list =
  let groups : (string, dentry list ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (c : Itarget.check) ->
      let bi = Cfg.index cfg c.c_anchor.Edit.ablock in
      let e =
        {
          e_bi = bi;
          e_pos = c.c_anchor.Edit.apos;
          e_w = c.c_width;
          e_id = anchor_key c;
        }
      in
      let key = value_key c.c_ptr in
      match Hashtbl.find_opt groups key with
      | Some l -> l := e :: !l
      | None -> Hashtbl.add groups key (ref [ e ]))
    checks;
  let removed : (string * int, unit) Hashtbl.t = Hashtbl.create 32 in
  let sweep_group entries =
    (* Reachable entries: sort by dominator-DFS preorder (within a
       block, by position).  Processing in that order with a stack of
       dominating ancestors — popping entries that do not dominate the
       current one — keeps exactly the group members that dominate the
       current check on the stack, each entry carrying the running
       maximum width of itself and everything below it. *)
    let reach, unreach =
      List.partition (fun e -> cfg.Cfg.reachable.(e.e_bi)) entries
    in
    let arr = Array.of_list reach in
    Array.sort
      (fun a b ->
        let c = compare dom.Dom.dfs_in.(a.e_bi) dom.Dom.dfs_in.(b.e_bi) in
        if c <> 0 then c else compare a.e_pos b.e_pos)
      arr;
    let stack = ref [] in
    Array.iter
      (fun e ->
        let dominates_e (top : dentry * int) =
          let t = fst top in
          if t.e_bi = e.e_bi then t.e_pos < e.e_pos
          else Dom.dominates dom t.e_bi e.e_bi
        in
        let rec pop () =
          match !stack with
          | top :: rest when not (dominates_e top) ->
              stack := rest;
              pop ()
          | _ -> ()
        in
        pop ();
        let above = match !stack with [] -> min_int | (_, w) :: _ -> w in
        if above >= e.e_w then Hashtbl.replace removed e.e_id ();
        stack := (e, max e.e_w above) :: !stack)
      arr;
    (* Entries in unreachable blocks: [Dom.dominates] is false for
       them in either direction, so only an earlier equal-or-wider
       check in the same block shadows them. *)
    let by_block : (int, dentry list ref) Hashtbl.t = Hashtbl.create 4 in
    List.iter
      (fun e ->
        match Hashtbl.find_opt by_block e.e_bi with
        | Some l -> l := e :: !l
        | None -> Hashtbl.add by_block e.e_bi (ref [ e ]))
      unreach;
    Hashtbl.iter
      (fun _ l ->
        let es =
          List.sort (fun a b -> compare a.e_pos b.e_pos) (List.rev !l)
        in
        ignore
          (List.fold_left
             (fun above e ->
               if above >= e.e_w then Hashtbl.replace removed e.e_id ();
               max above e.e_w)
             min_int es))
      by_block
  in
  Hashtbl.iter (fun _ l -> sweep_group (List.rev !l)) groups;
  List.filter (fun c -> not (Hashtbl.mem removed (anchor_key c))) checks

let dominance_eliminate (f : Func.t) (checks : Itarget.check list) :
    Itarget.check list =
  let cfg = Cfg.build f in
  let dom = Dom.build cfg in
  dominance_eliminate_sweep cfg dom checks

(* ------------------------------------------------------------------ *)
(* Shared analysis context for the static and hoisting passes          *)
(* ------------------------------------------------------------------ *)

type def =
  | Dparam
  | Dinstr of int * Instr.t  (** defining block index + instruction *)
  | Dphi of int * Instr.phi

type actx = {
  cfg : Cfg.t;
  dom : Dom.t;
  loops : Loops.t;
  defs : def Value.VTbl.t;
  counted : (Loops.loop * Indvar.counted) Value.VTbl.t;
      (** induction phi -> its loop and closed-form interval *)
}

let build_actx (cfg : Cfg.t) (dom : Dom.t) : actx =
  let loops = Loops.build cfg dom in
  let defs = Value.VTbl.create 64 in
  List.iter (fun p -> Value.VTbl.replace defs p Dparam) cfg.Cfg.func.params;
  Array.iteri
    (fun bi (b : Block.t) ->
      List.iter
        (fun (p : Instr.phi) -> Value.VTbl.replace defs p.pdst (Dphi (bi, p)))
        b.phis;
      List.iter
        (fun (i : Instr.t) ->
          match i.dst with
          | Some d -> Value.VTbl.replace defs d (Dinstr (bi, i))
          | None -> ())
        b.body)
    cfg.Cfg.blocks;
  let counted = Value.VTbl.create 8 in
  List.iter
    (fun (l : Loops.loop) ->
      match Indvar.counted_loop cfg l with
      | Some c -> Value.VTbl.replace counted c.Indvar.iv (l, c)
      | None -> ())
    loops.Loops.loops;
  { cfg; dom; loops; defs; counted }

let def_of (a : actx) (x : Value.var) = Value.VTbl.find_opt a.defs x

(* Interval of the values an i64 expression takes when evaluated in
   block [blk]: constants, affine arithmetic over intervals, value-
   preserving casts, and — only for uses inside their loop — canonical
   induction variables with their exact [init, last] range.  [None] is
   "unknown"; the recursion depth is bounded defensively (SSA operand
   chains are acyclic outside phis, and non-induction phis fail). *)
let rec ival (a : actx) ~blk (v : Value.t) (depth : int) : (int * int) option
    =
  if depth <= 0 then None
  else
    match v with
    | Value.Int (_, k) -> Some (k, k)
    | Value.Var x -> (
        match Value.VTbl.find_opt a.counted x with
        | Some (l, c) when Indvar.in_body l blk ->
            Some (c.Indvar.init, c.Indvar.last)
        | _ -> (
            match def_of a x with
            | Some (Dinstr (_, { op = Instr.Bin (bop, _, p, q); _ })) -> (
                match (ival a ~blk p (depth - 1), ival a ~blk q (depth - 1))
                with
                | Some (plo, phi_), Some (qlo, qhi) -> (
                    match bop with
                    | Instr.Add -> Some (plo + qlo, phi_ + qhi)
                    | Instr.Sub -> Some (plo - qhi, phi_ - qlo)
                    | Instr.Mul ->
                        let products =
                          [ plo * qlo; plo * qhi; phi_ * qlo; phi_ * qhi ]
                        in
                        Some
                          ( List.fold_left min max_int products,
                            List.fold_left max min_int products )
                    | _ -> None)
                | _ -> None)
            | Some (Dinstr (_, { op = Instr.Cast (Instr.Sext, _, src, _); _ }))
              ->
                ival a ~blk src (depth - 1)
            | Some (Dinstr (_, { op = Instr.Cast (Instr.Zext, _, src, _); _ }))
              -> (
                (* zext is value-preserving only for non-negative values *)
                match ival a ~blk src (depth - 1) with
                | Some (lo, hi) when lo >= 0 -> Some (lo, hi)
                | _ -> None)
            | _ -> None))
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Pass 2: static in-bounds elimination                                *)
(* ------------------------------------------------------------------ *)

(* Chase [v] (evaluated in block [blk]) back to an allocation of
   statically known size, accumulating the interval of byte offsets
   from the allocation base: [Some (size, lo, hi)] means [v] always
   points [lo..hi] bytes past the start of a [size]-byte object. *)
let rec chase_alloc (a : actx) (m : Irmod.t) ~blk (v : Value.t) (depth : int)
    : (int * int * int) option =
  if depth <= 0 then None
  else
    match v with
    | Value.Glob g -> (
        match Irmod.find_global m g with
        | Some gl when gl.Irmod.gsize_known -> Some (gl.Irmod.gsize, 0, 0)
        | _ -> None)
    | Value.Var x -> (
        match def_of a x with
        | Some (Dinstr (_, { op = Instr.Alloca { size; _ }; _ })) ->
            Some (size, 0, 0)
        | Some (Dinstr (_, { op = Instr.Gep (base, idxs); _ })) -> (
            match chase_alloc a m ~blk base (depth - 1) with
            | None -> None
            | Some (size, lo0, hi0) ->
                let rec add_idxs lo hi = function
                  | [] -> Some (size, lo, hi)
                  | { Instr.stride; idx } :: rest -> (
                      match ival a ~blk idx 24 with
                      | None -> None
                      | Some (ilo, ihi) ->
                          let c1 = stride * ilo and c2 = stride * ihi in
                          add_idxs (lo + min c1 c2) (hi + max c1 c2) rest)
                in
                add_idxs lo0 hi0 idxs)
        | Some
            (Dinstr (_, { op = Instr.Cast (Instr.Bitcast, fty, src, tty); _ }))
          when Ty.is_ptr fty && Ty.is_ptr tty ->
            chase_alloc a m ~blk src (depth - 1)
        | Some (Dinstr (_, { op = Instr.Call (callee, args); _ })) -> (
            (* statically sized heap / protected-stack allocations; the
               call trapping (OOM) means the access is never reached *)
            match (callee, args) with
            | "malloc", [ Value.Int (_, n) ] when n >= 0 -> Some (n, 0, 0)
            | "calloc", [ Value.Int (_, n); Value.Int (_, k) ]
              when n >= 0 && k >= 0 ->
                Some (n * k, 0, 0)
            | name, [ Value.Int (_, n) ]
              when (name = Intrinsics.lf_alloca || name = Intrinsics.tp_alloca)
                   && n >= 0 ->
                (* the protected allocators return regions of at least
                   the requested size *)
                Some (n, 0, 0)
            | _ -> None)
        | _ -> None)
    | _ -> None

(* Delete every check provably in bounds: the whole offset interval
   plus the access width fits inside the root allocation. *)
let static_pass (a : actx) (m : Irmod.t) (checks : Itarget.check list) :
    Itarget.check list * int =
  let provable (c : Itarget.check) =
    let blk = Cfg.index a.cfg c.c_anchor.Edit.ablock in
    match chase_alloc a m ~blk c.c_ptr 24 with
    | Some (size, lo, hi) -> lo >= 0 && hi + c.c_width <= size
    | None -> false
  in
  let kept = List.filter (fun c -> not (provable c)) checks in
  (kept, List.length checks - List.length kept)

(* ------------------------------------------------------------------ *)
(* Pass 3: loop-invariant check hoisting with range widening           *)
(* ------------------------------------------------------------------ *)

(* Is [v] invariant in loop [l] (defined outside the body)?  Such a
   definition dominates the preheader: it dominates its in-loop use,
   sits outside the body, and the preheader is on every path from
   entry into the loop. *)
let loop_invariant (a : actx) (l : Loops.loop) (v : Value.t) =
  match v with
  | Value.Var x -> (
      match def_of a x with
      | Some (Dinstr (bi, _)) | Some (Dphi (bi, _)) ->
          not (Indvar.in_body l bi)
      | Some Dparam -> true
      | None -> false)
  | Value.Int _ | Value.Glob _ | Value.Fn _ -> true
  | Value.Flt _ -> false

(* Decompose [ptr] as base + [lo, hi] where base is loop-invariant and
   the offset interval is exact over the loop's iteration space: geps
   whose indices are constants or the loop's induction variable. *)
let rec affine_off (a : actx) (l : Loops.loop) (c : Indvar.counted)
    (ptr : Value.t) (depth : int) : (Value.t * int * int) option =
  if depth <= 0 then None
  else if loop_invariant a l ptr then Some (ptr, 0, 0)
  else
    match ptr with
    | Value.Var x -> (
        match def_of a x with
        | Some (Dinstr (_, { op = Instr.Gep (base, idxs); _ })) -> (
            match affine_off a l c base (depth - 1) with
            | None -> None
            | Some (b, lo0, hi0) ->
                let rec add_idxs lo hi = function
                  | [] -> Some (b, lo, hi)
                  | { Instr.stride; idx } :: rest -> (
                      match idx with
                      | Value.Int (_, k) ->
                          add_idxs (lo + (stride * k)) (hi + (stride * k)) rest
                      | Value.Var y when Value.var_equal y c.Indvar.iv ->
                          let c1 = stride * c.Indvar.init
                          and c2 = stride * c.Indvar.last in
                          add_idxs (lo + min c1 c2) (hi + max c1 c2) rest
                      | _ -> None)
                in
                add_idxs lo0 hi0 idxs)
        | Some
            (Dinstr (_, { op = Instr.Cast (Instr.Bitcast, fty, src, tty); _ }))
          when Ty.is_ptr fty && Ty.is_ptr tty ->
            affine_off a l c src (depth - 1)
        | _ -> None)
    | _ -> None

(* May the loop body terminate the program before a later iteration's
   check would have run?  Any call to [exit]/[abort]-capable builtins
   or to a non-builtin (which could do so transitively) vetoes
   hoisting out of this loop. *)
let body_may_exit (a : actx) (l : Loops.loop) =
  List.exists
    (fun bi ->
      let b = Cfg.block a.cfg bi in
      List.exists
        (fun (i : Instr.t) ->
          match i.op with
          | Instr.Call (name, _) ->
              (not (Intrinsics.is_builtin name)) || Intrinsics.may_abort name
          | _ -> false)
        b.Block.body)
    l.Loops.body

(* accumulator for one (loop, base) hoist group *)
type hacc = {
  mutable a_lo : int;
  mutable a_end : int;  (** max offset + width *)
  mutable a_store : bool;
  a_origin : Edit.anchor;
  a_pre : string;
  a_base : Value.t;
  mutable a_count : int;
}

let hoist_pass (a : actx) (checks : Itarget.check list) :
    Itarget.check list * hoisted list =
  let groups : (int * string, hacc) Hashtbl.t = Hashtbl.create 8 in
  let order : (int * string) list ref = ref [] in
  (* counted info by loop header *)
  let counted_of_header : (int, Indvar.counted) Hashtbl.t = Hashtbl.create 8 in
  Value.VTbl.iter
    (fun _ ((l, c) : Loops.loop * Indvar.counted) ->
      Hashtbl.replace counted_of_header l.Loops.header c)
    a.counted;
  let hoistable (chk : Itarget.check) =
    let bi = Cfg.index a.cfg chk.c_anchor.Edit.ablock in
    match Loops.innermost_header a.loops bi with
    | None -> None
    | Some h -> (
        match Loops.find_loop a.loops h with
        | None -> None
        | Some l -> (
            match Hashtbl.find_opt counted_of_header l.Loops.header with
            | None -> None
            | Some cnt ->
                if body_may_exit a l then None
                else if
                  not
                    (List.for_all
                       (fun latch -> Dom.dominates a.dom bi latch)
                       l.Loops.latches)
                then None
                else
                  Option.bind (Loops.preheader a.cfg l) (fun pre ->
                      Option.map
                        (fun (base, lo, hi) -> (l, pre, base, lo, hi))
                        (affine_off a l cnt chk.c_ptr 16))))
  in
  let kept =
    List.filter
      (fun (chk : Itarget.check) ->
        match hoistable chk with
        | None -> true
        | Some (l, pre, base, lo, hi) ->
            let key = (l.Loops.header, value_key base) in
            (match Hashtbl.find_opt groups key with
            | Some g ->
                g.a_lo <- min g.a_lo lo;
                g.a_end <- max g.a_end (hi + chk.c_width);
                g.a_store <- g.a_store || chk.c_access = Itarget.Astore;
                g.a_count <- g.a_count + 1
            | None ->
                order := key :: !order;
                Hashtbl.add groups key
                  {
                    a_lo = lo;
                    a_end = hi + chk.c_width;
                    a_store = chk.c_access = Itarget.Astore;
                    a_origin = chk.c_anchor;
                    a_pre = Cfg.label a.cfg pre;
                    a_base = base;
                    a_count = 1;
                  });
            false)
      checks
  in
  let hoisted =
    List.rev_map
      (fun key ->
        let g = Hashtbl.find groups key in
        {
          h_preheader = g.a_pre;
          h_base = g.a_base;
          h_min_off = g.a_lo;
          h_span = g.a_end - g.a_lo;
          h_access = (if g.a_store then Itarget.Astore else Itarget.Aload);
          h_origin = g.a_origin;
          h_replaced = g.a_count;
        })
      !order
  in
  (kept, hoisted)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(** Apply the target-level optimizations enabled by [config], in the
    order dominance -> static -> hoisting (the dominance pass runs
    first so its removal counts stay comparable with dominance-only
    configurations, the §5.3 series). *)
let run (config : Config.t) (m : Irmod.t) (f : Func.t)
    (checks : Itarget.check list) : result =
  let before = List.length checks in
  if not (config.opt_dominance || config.opt_static || config.opt_hoist) then
    { kept = checks; hoisted = []; stats = no_stats before }
  else begin
    let cfg = Cfg.build f in
    let dom = Dom.build cfg in
    let checks, removed_dominance =
      if config.opt_dominance then
        let kept = dominance_eliminate_sweep cfg dom checks in
        (kept, before - List.length kept)
      else (checks, 0)
    in
    let actx =
      if config.opt_static || config.opt_hoist then Some (build_actx cfg dom)
      else None
    in
    let checks, removed_static =
      match actx with
      | Some a when config.opt_static -> static_pass a m checks
      | _ -> (checks, 0)
    in
    let kept, hoisted =
      match actx with
      | Some a when config.opt_hoist -> hoist_pass a checks
      | _ -> (checks, [])
    in
    let removed_hoisted =
      List.fold_left (fun n h -> n + h.h_replaced) 0 hoisted
    in
    {
      kept;
      hoisted;
      stats =
        {
          before;
          after = List.length kept;
          removed_dominance;
          removed_static;
          removed_hoisted;
        };
    }
  end
