(** Canonical checker registration.

    Registers the built-in checker schemes in a fixed order (SoftBound,
    Low-Fat, temporal) at module-initialization time, so every binary
    linking [mi_core] sees the same registry and the same deterministic
    enumeration order.  The library is built with [-linkall] so this
    module's initializer runs even though nothing references it. *)

let () =
  Sb_scheme.register ();
  Lf_scheme.register ();
  Tp_scheme.register ()
