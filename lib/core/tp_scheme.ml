(** The temporal lock-and-key checker scheme (CETS-style; Zhou/Criswell/
    Hicks' fat-pointer temporal safety informs the witness shape, MESH
    the allocator side).

    The witness of a pointer is a single i64 {e key} naming its
    allocation: every allocation gets a fresh, never-reused key from the
    runtime; [free] (and frame exit, for keyed stack variables) kills
    the key; a dereference check tests that the key is still live.  In-
    memory pointers keep their key in a disjoint trie keyed by the
    pointer's location (like SoftBound's bounds trie), and keys cross
    calls on a dedicated shadow stack whose frames are {e zero-
    initialized} — an uninstrumented callee yields key 0 ("untracked",
    the temporal analog of wide bounds: counted, never reported) instead
    of a stale key, so metadata gaps degrade to unprotected accesses,
    never to false reports.

    Sources that carry no allocation identity (constants, globals,
    integer-to-pointer casts, non-pointer casts) are untracked: temporal
    safety of objects with static storage duration is trivial, and no
    key survives a round trip through an integer. *)

open Mi_mir
module C = Checker

let vi64 = C.vi64
let call1 = C.call1

(* key 0: untracked — the check counts it wide and never aborts *)
let untracked : C.witness = [| vi64 0 |]

(* key of the (live) allocation a just-returned allocator result points
   at, read back from the runtime's key table *)
let alloc_key (ctx : C.ctx) anchor x : C.witness =
  let k =
    Edit.emit_after ctx.edit anchor ~name:"akey" Ty.I64
      (call1 Intrinsics.tp_alloc_key [ Value.Var x ])
  in
  [| k |]

let w_param (ctx : C.ctx) _x ~idx : C.witness =
  match C.ptr_param_slot ctx.f idx with
  | Some slot ->
      (* rely on the invariant: instrumented callers push argument keys
         on the temporal shadow stack; others leave the zeroed frame *)
      let k =
        Edit.emit_entry ctx.edit ~name:"argkey" Ty.I64
          (call1 Intrinsics.tp_ss_get [ vi64 slot ])
      in
      [| k |]
  | None -> invalid_arg "ptr param without slot"

let w_call (ctx : C.ctx) anchor x ~callee ~args:_ : C.witness option =
  match callee with
  | "malloc" | "calloc" | "realloc" -> Some (alloc_key ctx anchor x)
  | name when name = Intrinsics.tp_alloca -> Some (alloc_key ctx anchor x)
  | _ -> None

let emit_ptr_store (ctx : C.ctx) (s : Itarget.ptr_store) =
  let w = ctx.witness_of s.s_value in
  Edit.insert_after ctx.edit s.s_anchor
    (Instr.mk (call1 Intrinsics.tp_trie_store [ s.s_addr; w.(0) ]))

let emit_call (ctx : C.ctx) (c : Itarget.call) =
  (* key propagation only matters for callees that are themselves
     instrumented: builtins neither read argument keys nor set the
     return slot (the zeroed frame makes their results untracked, which
     [w_call] refines for the known allocators) *)
  match c.l_kind with
  | Itarget.Runtime_internal | Itarget.Known_alloc | Itarget.Plain_builtin
  | Itarget.Wrapped ->
      ()
  | Itarget.General ->
      let needs = c.l_has_ptr_ret || c.l_ptr_args <> [] in
      if needs then begin
        ctx.count_invariant ();
        let nslots = List.length c.l_ptr_args in
        Edit.insert_before ctx.edit c.l_anchor
          (Instr.mk (call1 Intrinsics.tp_ss_enter [ vi64 nslots ]));
        List.iteri
          (fun rank (_, v) ->
            let w = ctx.witness_of v in
            Edit.insert_before ctx.edit c.l_anchor
              (Instr.mk (call1 Intrinsics.tp_ss_set [ vi64 (rank + 1); w.(0) ])))
          c.l_ptr_args;
        (if c.l_has_ptr_ret then
           let k =
             Edit.emit_after ctx.edit c.l_anchor ~name:"retkey" Ty.I64
               (call1 Intrinsics.tp_ss_get [ vi64 0 ])
           in
           ctx.set_call_ret c.l_anchor [| k |]);
        Edit.insert_after ctx.edit c.l_anchor
          (Instr.mk (call1 Intrinsics.tp_ss_leave []))
      end

let emit_ret (ctx : C.ctx) (r : Itarget.ptr_ret) =
  let w = ctx.witness_of r.r_value in
  Edit.insert_at_end ctx.edit r.r_block
    (Instr.mk (call1 Intrinsics.tp_ss_set [ vi64 0; w.(0) ]))

let emit_memop_invariant (ctx : C.ctx) (mo : Itarget.memop) =
  match mo.m_kind with
  | `Memcpy ->
      (* keys of pointers copied wholesale move with them *)
      ctx.count_invariant ();
      Edit.insert_after ctx.edit mo.m_anchor
        (Instr.mk
           (call1 Intrinsics.tp_meta_copy
              [ mo.m_dst; Option.get mo.m_src; mo.m_len ]))
  | `Memset -> ()

let check_op ~ptr ~width:_ (w : C.witness) ~site =
  (* temporal checks are width-independent: any byte of a dead object is
     a use-after-free *)
  call1 Intrinsics.tp_check [ ptr; w.(0); site ]

let checker : C.t =
  {
    name = "temporal";
    aliases = [ "tp"; "cets" ];
    descr = "Temporal lock-and-key: use-after-free / double-free detection";
    basis = Config.temporal;
    components = [| ("phikey", "selkey", Ty.I64) |];
    (* unsound here: a dominating check proves the key was live then; a
       free() on the path between the accesses kills it.  The driver
       masks opt_dominance, so "optimized" temporal configs are sound
       no-ops (see DESIGN.md). *)
    supports_dominance_opt = false;
    (* hoisting is equally unsound (key liveness at the preheader says
       nothing about iteration k), and a static in-bounds proof says
       nothing about whether the object is still live at the access *)
    supports_hoist_opt = false;
    supports_static_opt = false;
    wide = untracked;
    w_const = (fun _ _ -> untracked);
    w_global = (fun _ _ -> untracked);
    w_param;
    w_alloca =
      (fun _ _ _ ~size:_ ->
        (* reachable only with tp_stack off: conventional stack slots
           are not keyed *)
        untracked);
    w_load =
      (fun ctx anchor _x ~addr ->
        (* in-memory pointers carry their key in the temporal trie *)
        let k =
          Edit.emit_after ctx.edit anchor ~name:"ldkey" Ty.I64
            (call1 Intrinsics.tp_trie_load [ addr ])
        in
        [| k |]);
    w_inttoptr = (fun _ _ _ -> untracked);
    w_cast_other = (fun _ _ -> untracked);
    w_call;
    w_call_fallback = (fun _ _ _ -> untracked);
    emit_ptr_store;
    emit_call;
    emit_ret;
    emit_escape = (fun _ _ -> ());
    emit_memop_invariant;
    check_op;
    prepare_func =
      (fun config f ->
        if config.Config.tp_stack then
          C.replace_allocas Intrinsics.tp_alloca f);
    module_ctor = (fun _ _ -> None);
  }

let register () = C.register checker
