(** Checker-runtime installers, keyed by approach name.

    The instrumentation side of a checker registers in
    {!Mi_core.Checker}; this registry holds the execution side — how to
    attach the checker's runtime to a VM state before loading.  The two
    are separate libraries because the core (compiler) layer must not
    depend on the VM; every binary that executes instrumented code links
    this one and resolves the installer through the same approach names
    and aliases as the compile side. *)

module Config = Mi_core.Config

(** Per-global allocation override for {!Mi_vm.Interp.load}: [None]
    places the global in the unprotected data segment. *)
type alloc_global =
  Mi_vm.State.t -> name:string -> size:int -> align:int -> int option

type installer =
  Config.t ->
  modules:(Mi_mir.Irmod.t * bool) list ->
  Mi_vm.State.t ->
  alloc_global option
(** Attach a runtime configured by the given {!Config.t}.  [modules] are
    the (module, instrumented?) pairs about to be loaded — installers
    that place globals need to know which units were instrumented. *)

let installers : (string * installer) list ref = ref []

let register name (f : installer) =
  if List.mem_assoc name !installers then
    invalid_arg (Printf.sprintf "runtime installer %S already registered" name);
  installers := !installers @ [ (name, f) ]

(* resolve aliases ("sb", "cets", ...) to the canonical checker name *)
let canonical name =
  match Mi_core.Checker.find name with
  | Some c -> c.Mi_core.Checker.name
  | None -> name

let find name = List.assoc_opt (canonical name) !installers

(** Install the runtime for [config]'s approach.  Raises
    [Invalid_argument] for an approach without a registered runtime. *)
let install (config : Config.t) ~modules (st : Mi_vm.State.t) :
    alloc_global option =
  match find config.approach with
  | Some f -> f config ~modules st
  | None ->
      invalid_arg
        (Printf.sprintf "no runtime installer for approach %S (known: %s)"
           (Config.approach_name config.approach)
           (String.concat ", " (List.map fst !installers)))

(* --- built-in installers ---------------------------------------------- *)

let () =
  register "softbound" (fun cfg ~modules:_ st ->
      ignore
        (Mi_softbound.Softbound_rt.install
           ~wrapper_checks:cfg.Config.sb_wrapper_checks st);
      None);
  register "lowfat" (fun cfg ~modules st ->
      let lf =
        Mi_lowfat.Lowfat_rt.install ~stack_protection:cfg.Config.lf_stack st
      in
      if cfg.Config.lf_globals then begin
        (* mirror only globals defined by instrumented units: library
           globals stay in the unprotected segment (§4.3) *)
        let mirrored = Hashtbl.create 32 in
        List.iter
          (fun ((m : Mi_mir.Irmod.t), instrumented) ->
            if instrumented then
              List.iter
                (fun (g : Mi_mir.Irmod.global) ->
                  if not g.gextern then Hashtbl.replace mirrored g.gname ())
                m.globals)
          modules;
        Some
          (fun st ~name ~size ~align ->
            if Hashtbl.mem mirrored name then
              Some (Mi_lowfat.Lowfat_rt.alloc_global lf st ~size ~align)
            else None)
      end
      else None);
  register "temporal" (fun cfg ~modules:_ st ->
      ignore
        (Mi_temporal.Temporal_rt.install
           ~stack_protection:cfg.Config.tp_stack st);
      None)
