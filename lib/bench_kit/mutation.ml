(** Mutation testing of the safety guarantee (the paper's RQ3 angle):
    delete individual inserted checks and demand that the safety corpus
    notices.

    A mutant is one access check (identified by approach, corpus
    {!Safety_corpus.family} and per-function check ordinal) deleted via
    a {!Mi_faultkit.Fault} plan threaded into {!Mi_core.Instrument}.
    The corpus kinds of the mutant's family are the killing suite: the
    mutant is {e killed} when some kind's violation verdict flips
    against the unmutated baseline — i.e. the deleted check was the one
    reporting (or its deletion let a violation corrupt the run).

    A mutant that survives is only acceptable when its check site can
    provably never report: every dynamic execution of the site carried
    wide bounds, or the site is never reached by any kind.  Such
    mutants are {e whitelisted} with a written justification; anything
    else counts as a genuine hole in the guarantee and fails the
    campaign's consumers (the [mutation] experiment exits nonzero). *)

module Config = Mi_core.Config
module Fault = Mi_faultkit.Fault

type verdict = Violation | Clean | Abnormal of string

let verdict_of_outcome = function
  | Mi_vm.Interp.Safety_violation _ -> Violation
  | Mi_vm.Interp.Exited _ -> Clean
  | Mi_vm.Interp.Trapped msg -> Abnormal ("trap: " ^ msg)
  | Mi_vm.Interp.Exhausted _ -> Abnormal "fuel exhausted"

let is_violation = function Violation -> true | Clean | Abnormal _ -> false

type mutant = {
  mu_approach : Config.approach;
  mu_family : Safety_corpus.family;
  mu_ordinal : int;  (** per-function check ordinal in [main] *)
}

let mutant_name m =
  Printf.sprintf "%s/%s/check%d"
    (Config.approach_name m.mu_approach)
    (Safety_corpus.family_name m.mu_family)
    m.mu_ordinal

type status =
  | Killed of Safety_corpus.kind  (** the kind whose verdict flipped *)
  | Whitelisted of string  (** justification: why it can never report *)
  | Survived  (** a genuine hole: no kill, no wide-bounds excuse *)

type outcome = { mutant : mutant; status : status }

type campaign = {
  results : outcome list;
  total : int;
  killed : int;
  whitelisted : int;
  survived : int;
}

(* Try killing kinds in the order most likely to flip, so the common
   case stops after one mutant run: each of the three access-check
   ordinals in a corpus [main] (init store, body access, trailing print
   load) is the reporting site of one of the first three kinds. *)
let spatial_kill_order =
  Safety_corpus.
    [
      Init_oob; Past_class; Tail_oob; Just_past; Underflow_one; Underflow_far;
      Cross_end_width; Last_elem; In_bounds;
    ]

(* The temporal checker never reports a spatial overflow, so its
   mutants are killed by the temporal kinds (one per access-check
   ordinal, by construction of the corpus).  The spatial kinds stay in
   its list as wide/unreached evidence for families without temporal
   kinds (globals are untracked: every check is wide).  Spatial
   checkers keep their original list — temporal kinds cannot flip
   them. *)
let kill_order_for approach (fam : Safety_corpus.family) =
  if Config.approach_name approach = "temporal" then
    Safety_corpus.temporal_kinds_for fam.Safety_corpus.fam_region
    @ spatial_kill_order
  else spatial_kill_order

let run_case ?(faults = Fault.none) ?(setup_of = Safety_corpus.setup) approach
    (fam : Safety_corpus.family) kind : Harness.run =
  let src =
    Safety_corpus.program fam.Safety_corpus.fam_region
      fam.Safety_corpus.fam_elem fam.Safety_corpus.fam_access kind
  in
  Harness.run_sources ~faults (setup_of approach) [ Bench.src "t" src ]

(* The site snapshot of the mutant ordinal's check: the n-th site of
   [main] whose construct is an access check, in id order — the same
   order ordinals are assigned in. *)
let access_site ordinal (profile : Mi_obs.Site.snapshot list) =
  let is_access (s : Mi_obs.Site.snapshot) =
    s.Mi_obs.Site.sn_func = "main"
    && (String.starts_with ~prefix:"load@" s.Mi_obs.Site.sn_construct
       || String.starts_with ~prefix:"store@" s.Mi_obs.Site.sn_construct)
  in
  List.nth_opt (List.filter is_access profile) ordinal

(** Check ordinals available for mutation in a family's [main]: the
    number of access checks the unmutated compile places.  Every corpus
    kind of a family compiles [main] with the same access structure, so
    any kind works as the probe. *)
let ordinals ?setup_of approach (fam : Safety_corpus.family) : int =
  let r = run_case ?setup_of approach fam Safety_corpus.In_bounds in
  List.fold_left
    (fun a (s : Mi_core.Instrument.mod_stats) ->
      a + s.Mi_core.Instrument.total_checks_placed)
    0 r.Harness.static_stats

(** All mutants of the full (approach x family x ordinal) space, over
    every approach in the checker registry. *)
let all_mutants ?setup_of () : mutant list =
  List.concat_map
    (fun mu_approach ->
      List.concat_map
        (fun mu_family ->
          List.init
            (ordinals ?setup_of mu_approach mu_family)
            (fun mu_ordinal -> { mu_approach; mu_family; mu_ordinal }))
        Safety_corpus.families)
    (Config.known_approaches ())

(* Judge one mutant.  [baseline] memoizes unmutated runs per kind. *)
let judge ?setup_of baseline (m : mutant) : status =
  let faults =
    {
      Fault.none with
      Fault.checks =
        [
          {
            Fault.cm_action = Fault.Delete;
            cm_ordinal = m.mu_ordinal;
            cm_func = Some "main";
          };
        ];
    }
  in
  let rec try_kinds wide_evidence = function
    | [] ->
        (* no kind flipped: acceptable only with a wide-bounds or
           never-reached excuse for every kind *)
        let reached = List.filter (fun (_, hits, _) -> hits > 0) wide_evidence in
        if reached = [] then
          Whitelisted
            (Printf.sprintf
               "site unreached: check %d of main never executes in any corpus \
                kind"
               m.mu_ordinal)
        else if List.for_all (fun (_, hits, wide) -> wide = hits) reached then
          Whitelisted
            (Printf.sprintf
               "wide-bounds site: all %d executions of check %d carry wide \
                bounds (cannot report by construction)"
               (List.fold_left (fun a (_, h, _) -> a + h) 0 reached)
               m.mu_ordinal)
        else Survived
    | kind :: rest ->
        let base : Harness.run = baseline (m.mu_approach, m.mu_family, kind) in
        let base_v = verdict_of_outcome base.Harness.outcome in
        let mut = run_case ~faults ?setup_of m.mu_approach m.mu_family kind in
        let mut_v = verdict_of_outcome mut.Harness.outcome in
        if is_violation base_v <> is_violation mut_v then Killed kind
        else
          let ev =
            match access_site m.mu_ordinal base.Harness.profile with
            | Some s -> (kind, s.Mi_obs.Site.sn_hits, s.Mi_obs.Site.sn_wide)
            | None -> (kind, 0, 0)
          in
          try_kinds (ev :: wide_evidence) rest
  in
  try_kinds [] (kill_order_for m.mu_approach m.mu_family)

(** Run a campaign.  [sample_per_approach] bounds the mutants judged
    per approach (seeded Fisher-Yates sample over the full space, so
    the same [seed] always judges the same mutants); omit it to judge
    every mutant. *)
let run ?(seed = 0xC0FFEE) ?sample_per_approach ?setup_of () : campaign =
  let mutants = all_mutants ?setup_of () in
  let mutants =
    match sample_per_approach with
    | None -> mutants
    | Some k ->
        let rng = Mi_support.Rng.create seed in
        List.concat_map
          (fun approach ->
            let pool =
              Array.of_list
                (List.filter (fun m -> m.mu_approach = approach) mutants)
            in
            Mi_support.Rng.shuffle rng pool;
            Array.to_list (Array.sub pool 0 (min k (Array.length pool))))
          (Config.known_approaches ())
  in
  let baseline_tbl = Hashtbl.create 64 in
  let baseline key =
    match Hashtbl.find_opt baseline_tbl key with
    | Some r -> r
    | None ->
        let approach, fam, kind = key in
        let r = run_case ?setup_of approach fam kind in
        Hashtbl.add baseline_tbl key r;
        r
  in
  let results =
    List.map
      (fun m -> { mutant = m; status = judge ?setup_of baseline m })
      mutants
  in
  let count p = List.length (List.filter p results) in
  {
    results;
    total = List.length results;
    killed = count (fun r -> match r.status with Killed _ -> true | _ -> false);
    whitelisted =
      count (fun r ->
          match r.status with Whitelisted _ -> true | _ -> false);
    survived = count (fun r -> r.status = Survived);
  }

let render (c : campaign) : string =
  let tbl =
    Mi_support.Table.create
      ~aligns:[ Mi_support.Table.Left; Left; Left ]
      [ "mutant"; "status"; "detail" ]
  in
  List.iter
    (fun r ->
      let status, detail =
        match r.status with
        | Killed kind -> ("killed", "by " ^ Safety_corpus.kind_name kind)
        | Whitelisted why -> ("whitelisted", why)
        | Survived -> ("SURVIVED", "guarantee hole: no corpus kind notices")
      in
      Mi_support.Table.add_row tbl [ mutant_name r.mutant; status; detail ])
    c.results;
  Mi_support.Table.render tbl
  ^ Printf.sprintf "\nmutants: %d  killed: %d  whitelisted: %d  survivors: %d\n"
      c.total c.killed c.whitelisted c.survived
