(** Content-addressed cache of instrumented-and-optimized modules.

    Compiling, instrumenting and optimizing a benchmark's translation
    units is the expensive, setup-dependent half of a harness run; the
    VM execution half additionally depends on the seed.  An entry caches
    the whole compile phase of one run, keyed by the digest of
    everything that determines it: the source texts (with per-unit
    lowering modes and instrument flags), the instrumentation
    {!Mi_core.Config.t}, the optimization level and the pipeline
    extension point.  The seed is deliberately excluded — runs that
    differ only in seed share the compiled modules.

    Alongside the modules an entry carries the static statistics and the
    check-site descriptors the instrumenter registered, so a hit can
    replay the site registry into a fresh observability context: the
    site ids embedded in the cached modules then attribute dynamic hits
    exactly as a non-cached run would, and reports stay byte-identical.
    What a hit does {e not} replay are the [static.*] metric increments
    — those count actual instrumentation work, which a hit skips; tests
    use them to prove a hit did zero work.

    Entries are immutable after construction: the pipeline and the
    instrumenter mutate modules, but both ran to completion before the
    entry was stored, and the VM loader/precompiler only reads.  That
    makes entries safe to share across worker domains; the table itself
    is guarded by a mutex.

    With a [dir], entries are also persisted with [Marshal], giving
    cache hits across processes.  Disk entries are hardened: a header
    carries a magic string, the compiler version, the key digest the
    entry was stored under, and a checksum of the marshalled payload.
    A file that fails any of those checks — truncated, bit-flipped,
    renamed under the wrong digest, or written by a different compiler
    — is never unmarshalled into a wrong replay: it is quarantined
    (renamed to [*.corrupt]), counted, and the lookup degrades to a
    miss so the entry is transparently recomputed. *)

type entry = {
  e_modules : (Mi_mir.Irmod.t * bool) list;
      (** per translation unit: compiled module, instrumented flag *)
  e_stats : Mi_core.Instrument.mod_stats list;
      (** per instrumented unit, in unit order *)
  e_sites : Mi_obs.Site.info list;
      (** every check site registered while compiling, in id order *)
}

type t = {
  mem : (string, entry) Hashtbl.t;  (** digest -> entry *)
  dir : string option;
  lock : Mutex.t;
  n_hits : int Atomic.t;
  n_misses : int Atomic.t;
  n_corrupt : int Atomic.t;
}

type stats = { hits : int; misses : int; corrupt : int }

(* Marshal gives no type safety across versions; refuse anything not
   written by this exact magic + compiler version.  v2 adds the key
   digest and payload checksum to the header. *)
let magic = "mi-icache-v2"

let create ?dir () =
  Option.iter
    (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o755)
    dir;
  {
    mem = Hashtbl.create 64;
    dir;
    lock = Mutex.create ();
    n_hits = Atomic.make 0;
    n_misses = Atomic.make 0;
    n_corrupt = Atomic.make 0;
  }

let digest key = Digest.to_hex (Digest.string key)

let entry_path dir d = Filename.concat dir (d ^ ".micache")

(* Move a failed entry out of the way so it is inspectable but can
   never be read again; best-effort (a concurrent quarantine of the
   same file is fine). *)
let quarantine path =
  try Sys.rename path (path ^ ".corrupt") with Sys_error _ -> ()

(* Every integrity check funnels through here: a [None] from this
   function means the cached bytes cannot be trusted and the caller
   must recompute.  The checks, in order: magic (foreign file),
   compiler version (incompatible Marshal), key digest (entry stored
   under a name it does not belong to — a "stale" entry), payload
   checksum (truncation, bit flips, torn writes).  Only after all four
   pass is [Marshal.from_string] allowed to run. *)
let disk_find t d =
  match t.dir with
  | None -> None
  | Some dir ->
      let path = entry_path dir d in
      if not (Sys.file_exists path) then None
      else begin
        let verified =
          try
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                let m, v, key_d, payload_d =
                  (input_value ic : string * string * string * Digest.t)
                in
                if m <> magic || v <> Sys.ocaml_version || key_d <> d then None
                else begin
                  let pos = pos_in ic in
                  let len = in_channel_length ic - pos in
                  let payload = really_input_string ic len in
                  if Digest.string payload <> payload_d then None
                  else Some (Marshal.from_string payload 0 : entry)
                end)
          with _ -> None
        in
        (match verified with
        | None ->
            Atomic.incr t.n_corrupt;
            quarantine path
        | Some _ -> ());
        verified
      end

let disk_add t d entry =
  Option.iter
    (fun dir ->
      try
        (* write-to-temp + rename: concurrent processes never observe a
           half-written entry *)
        let tmp = Filename.temp_file ~temp_dir:dir "wip" ".micache" in
        let oc = open_out_bin tmp in
        let payload = Marshal.to_string entry [] in
        output_value oc (magic, Sys.ocaml_version, d, Digest.string payload);
        output_string oc payload;
        close_out oc;
        Sys.rename tmp (entry_path dir d)
      with Sys_error _ -> ())
    t.dir

(** Look up [key] (the full content string, not a digest).  Counts one
    hit or miss; a disk hit is promoted into the in-memory table. *)
let find t key : entry option =
  let d = digest key in
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.mem d with
    | Some _ as e -> e
    | None -> (
        match disk_find t d with
        | Some e ->
            Hashtbl.replace t.mem d e;
            Some e
        | None -> None)
  in
  Mutex.unlock t.lock;
  (match r with
  | Some _ -> Atomic.incr t.n_hits
  | None -> Atomic.incr t.n_misses);
  r

(** Store an entry.  Concurrent stores under the same key are benign:
    both entries are equivalent by construction (the key digests every
    input of the compile phase) and the last one wins. *)
let add t key entry =
  let d = digest key in
  Mutex.lock t.lock;
  Hashtbl.replace t.mem d entry;
  disk_add t d entry;
  Mutex.unlock t.lock

let stats t =
  {
    hits = Atomic.get t.n_hits;
    misses = Atomic.get t.n_misses;
    corrupt = Atomic.get t.n_corrupt;
  }

(** Deliberately corrupt every persisted entry (fault injection for the
    detection path above); returns how many files were damaged.
    [Truncate] halves the file, [Bitflip] flips one byte two thirds in,
    [Stale] moves the entry under a digest it does not match. *)
let corrupt t (how : Mi_faultkit.Fault.cache_corruption) : int =
  match t.dir with
  | None -> 0
  | Some dir ->
      let entries =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".micache")
        |> List.sort compare
      in
      List.iter
        (fun f ->
          let path = Filename.concat dir f in
          match how with
          | Mi_faultkit.Fault.Truncate ->
              let ic = open_in_bin path in
              let n = in_channel_length ic in
              let half = really_input_string ic (n / 2) in
              close_in ic;
              let oc = open_out_bin path in
              output_string oc half;
              close_out oc
          | Mi_faultkit.Fault.Bitflip ->
              let ic = open_in_bin path in
              let n = in_channel_length ic in
              let bytes = really_input_string ic n |> Bytes.of_string in
              close_in ic;
              let i = n * 2 / 3 in
              Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 0x40));
              let oc = open_out_bin path in
              output_bytes oc bytes;
              close_out oc
          | Mi_faultkit.Fault.Stale ->
              (* keep the payload pristine but claim the entry belongs
                 to a different key: a well-formed entry filed under the
                 wrong name, exactly what a digest/rename mixup leaves *)
              let ic = open_in_bin path in
              let _, v, key_d, payload_d =
                (input_value ic : string * string * string * Digest.t)
              in
              let pos = pos_in ic in
              let len = in_channel_length ic - pos in
              let payload = really_input_string ic len in
              close_in ic;
              let oc = open_out_bin path in
              output_value oc (magic, v, digest (key_d ^ ":stale"), payload_d);
              output_string oc payload;
              close_out oc)
        entries;
      List.length entries
