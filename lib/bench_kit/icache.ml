(** Content-addressed cache of instrumented-and-optimized modules.

    Compiling, instrumenting and optimizing a benchmark's translation
    units is the expensive, setup-dependent half of a harness run; the
    VM execution half additionally depends on the seed.  An entry caches
    the whole compile phase of one run, keyed by the digest of
    everything that determines it: the source texts (with per-unit
    lowering modes and instrument flags), the instrumentation
    {!Mi_core.Config.t}, the optimization level and the pipeline
    extension point.  The seed is deliberately excluded — runs that
    differ only in seed share the compiled modules.

    Alongside the modules an entry carries the static statistics and the
    check-site descriptors the instrumenter registered, so a hit can
    replay the site registry into a fresh observability context: the
    site ids embedded in the cached modules then attribute dynamic hits
    exactly as a non-cached run would, and reports stay byte-identical.
    What a hit does {e not} replay are the [static.*] metric increments
    — those count actual instrumentation work, which a hit skips; tests
    use them to prove a hit did zero work.

    Entries are immutable after construction: the pipeline and the
    instrumenter mutate modules, but both ran to completion before the
    entry was stored, and the VM loader/precompiler only reads.  That
    makes entries safe to share across worker domains; the table itself
    is guarded by a mutex.

    With a [dir], entries are also persisted with [Marshal] (guarded by
    a magic string and the compiler version, so a stale or foreign file
    degrades to a miss), giving cache hits across processes. *)

type entry = {
  e_modules : (Mi_mir.Irmod.t * bool) list;
      (** per translation unit: compiled module, instrumented flag *)
  e_stats : Mi_core.Instrument.mod_stats list;
      (** per instrumented unit, in unit order *)
  e_sites : Mi_obs.Site.info list;
      (** every check site registered while compiling, in id order *)
}

type t = {
  mem : (string, entry) Hashtbl.t;  (** digest -> entry *)
  dir : string option;
  lock : Mutex.t;
  n_hits : int Atomic.t;
  n_misses : int Atomic.t;
}

type stats = { hits : int; misses : int }

(* Marshal gives no type safety across versions; refuse anything not
   written by this exact magic + compiler version. *)
let magic = "mi-icache-v1"

let create ?dir () =
  Option.iter
    (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o755)
    dir;
  {
    mem = Hashtbl.create 64;
    dir;
    lock = Mutex.create ();
    n_hits = Atomic.make 0;
    n_misses = Atomic.make 0;
  }

let digest key = Digest.to_hex (Digest.string key)

let entry_path dir d = Filename.concat dir (d ^ ".micache")

let disk_find t d =
  match t.dir with
  | None -> None
  | Some dir ->
      let path = entry_path dir d in
      if not (Sys.file_exists path) then None
      else begin
        try
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              let m, v, e = (input_value ic : string * string * entry) in
              if m = magic && v = Sys.ocaml_version then Some e else None)
        with _ -> None
      end

let disk_add t d entry =
  Option.iter
    (fun dir ->
      try
        (* write-to-temp + rename: concurrent processes never observe a
           half-written entry *)
        let tmp = Filename.temp_file ~temp_dir:dir "wip" ".micache" in
        let oc = open_out_bin tmp in
        output_value oc (magic, Sys.ocaml_version, entry);
        close_out oc;
        Sys.rename tmp (entry_path dir d)
      with Sys_error _ -> ())
    t.dir

(** Look up [key] (the full content string, not a digest).  Counts one
    hit or miss; a disk hit is promoted into the in-memory table. *)
let find t key : entry option =
  let d = digest key in
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.mem d with
    | Some _ as e -> e
    | None -> (
        match disk_find t d with
        | Some e ->
            Hashtbl.replace t.mem d e;
            Some e
        | None -> None)
  in
  Mutex.unlock t.lock;
  (match r with
  | Some _ -> Atomic.incr t.n_hits
  | None -> Atomic.incr t.n_misses);
  r

(** Store an entry.  Concurrent stores under the same key are benign:
    both entries are equivalent by construction (the key digests every
    input of the compile phase) and the last one wins. *)
let add t key entry =
  let d = digest key in
  Mutex.lock t.lock;
  Hashtbl.replace t.mem d entry;
  disk_add t d entry;
  Mutex.unlock t.lock

let stats t = { hits = Atomic.get t.n_hits; misses = Atomic.get t.n_misses }
