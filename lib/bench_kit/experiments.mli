(** Self-registering registry of the paper's experiments.

    Each experiment declares the (setup x benchmark) jobs it needs and a
    reduce over the completed runs; {!run_reports} runs the deduplicated
    union of all selected experiments' jobs through a {!Harness.t}
    session (parallel, cached) and reduces afterwards.  Report output is
    byte-identical for every worker count. *)

module Config = Mi_core.Config

(** {1 Shared setups} *)

val opt_setup : Config.approach -> Harness.setup
(** The measured configuration of a registered approach: the dominance
    optimization where the checker supports it (§5.2), the plain basis
    otherwise. *)

val full_setup : Config.approach -> Harness.setup
(** The approach's basis configuration, without check elimination
    (appendix A.6). *)

val checkopt_setup : Config.approach -> Harness.setup
(** Every elimination pass the checker permits: dominance + static
    in-bounds + loop-invariant hoisting ({!Config.optimized_full}); the
    instrumenter's capability veto masks the passes the checker declares
    unsound. *)

val counter_prefix : Config.approach -> string
(** The runtime-counter namespace of the approach ("sb", "lf", "tp"). *)

val sb_opt : Harness.setup
(** SoftBound with the dominance optimization (§5.2). *)

val lf_opt : Harness.setup
(** Low-Fat Pointers with the dominance optimization (§5.2). *)

val sb_full : Harness.setup
(** SoftBound without check elimination (appendix A.6 basis). *)

val lf_full : Harness.setup
(** Low-Fat Pointers without check elimination (appendix A.6 basis). *)

(** {1 Reports} *)

type series = { label : string; points : (string * float) list }

type report = { title : string; text : string; series : series list }

val series_to_json : series -> Mi_obs.Json.t
val report_to_json : report -> Mi_obs.Json.t
val reports_to_json : report list -> Mi_obs.Json.t

val wide_fraction : Harness.run -> approach:Config.approach -> float
(** Fraction (in %) of executed checks that passed only thanks to wide
    bounds — the per-run datum behind Table 2. *)

(** {1 Registry} *)

type lookup = Harness.setup -> Bench.t -> Harness.run
(** Fetch one completed run by its job.  Raises
    {!Harness.Benchmark_failed} when the job's compile phase failed;
    the returned run may still hold a violation or trap outcome —
    wrap with {!strict} for the ran-and-matched-output contract. *)

type t = {
  name : string;  (** canonical name, lowercase *)
  aliases : string list;  (** extra names accepted by {!find} *)
  descr : string;  (** one-line description, shown by [--list] *)
  jobs : Bench.t list -> (Harness.setup * Bench.t) list;
      (** every run the reduce will look up *)
  reduce : lookup -> Bench.t list -> report;
}

val register : t -> unit
(** Add an experiment to the registry.  Raises [Invalid_argument] on a
    duplicate name.  The built-in experiments register themselves at
    module initialization. *)

val all : unit -> t list
(** All registered experiments, in registration order. *)

val find : string -> t option
(** Look up by name or alias, case-insensitively. *)

val known_names : unit -> string list

val strict : lookup -> lookup
(** Wrap a lookup to also raise {!Harness.Benchmark_failed} on runs
    {!Harness.check_run} rejects (violation, trap, output mismatch). *)

val run_reports :
  ?benchmarks:Bench.t list ->
  ?keep_going:bool ->
  Harness.t ->
  t list ->
  (string * report) list
(** The generic driver loop: run the deduplicated union of the given
    experiments' job matrices through the session, then reduce each
    experiment.  Returns [(name, report)] in the order given.
    Benchmarks default to {!Suite.all}.

    With [keep_going] (default false), an experiment whose runs failed
    reduces to a stub ["<name> (incomplete)"] report instead of raising
    {!Harness.Benchmark_failed}: the matrix's surviving results are
    still reported, and the failures stay visible through
    {!Harness.failures} / {!Harness.failure_manifest}. *)

val all_reports : ?jobs:int -> ?benchmarks:Bench.t list -> unit -> report list
(** Reduce every registered experiment through a fresh session with a
    [jobs]-sized worker pool (default {!Harness.default_jobs}). *)
