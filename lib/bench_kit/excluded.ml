(** The benchmarks §5.1.1 excludes from the runtime evaluation, as
    miniature reproductions: 7 of the 27 C benchmarks do not execute
    under both approaches, for reasons the paper pins down precisely.
    Each case here reproduces the offending code pattern and the
    resulting per-approach verdict.

    These reuse the {!Usability.case} record so the same runner and test
    machinery applies. *)

open Usability

(* 253perlbmk/400perlbench: pseudo-base-one arrays, and perl additionally
   has known real violations that SoftBound reports. *)
let perl_like =
  {
    case_name = "excluded_perl";
    section = "5.1.1 (253perlbmk / 400perlbench)";
    explain =
      "perl builds pseudo-base-one arrays (a pointer one element before \
       an allocation) and also commits real out-of-bounds accesses \
       through them: SoftBound reports the known violations, Low-Fat \
       reports the escaping out-of-bounds pointer — the benchmark runs \
       under neither.";
    sources =
      [
        Bench.src "perl"
          {|
long *stack_base;

int main(void) {
  long *mem = (long *)malloc(16 * sizeof(long));
  stack_base = mem - 1;        /* pseudo-base-one */
  long i;
  for (i = 1; i <= 16; i++) stack_base[i] = i;
  /* the known violation: index 0 touches memory before the object */
  print_int(stack_base[0]);
  return 0;
}
|};
      ];
    expect_sb = Reports;
    expect_lf = Reports;
    expect_tp = Works;
    is_actual_bug = true;
  }

(* 254gap: pseudo-base-one arrays, but all accesses stay at index >= 1:
   SoftBound runs it, Low-Fat rejects the escaping pointer. *)
let gap_like =
  {
    case_name = "excluded_gap";
    section = "5.1.1 (254gap)";
    explain =
      "gap uses pseudo-base-one arrays but only ever accesses indices \
       >= 1, so every dereference is in bounds: SoftBound accepts the \
       program, while Low-Fat reports the out-of-bounds pointer the \
       moment it escapes into the global.";
    sources =
      [
        Bench.src "gap"
          {|
long *bag;

int main(void) {
  long *mem = (long *)malloc(64 * sizeof(long));
  bag = mem - 1;               /* one element before the allocation:
                                  a negative offset from the base is
                                  always outside the size class */
  long i;
  long s = 0;
  for (i = 1; i <= 64; i++) bag[i] = i;
  for (i = 1; i <= 64; i++) s += bag[i];
  print_int(s);
  return 0;
}
|};
      ];
    expect_sb = Works;
    expect_lf = Reports;
    expect_tp = Works;
    is_actual_bug = true (* UB: the pointer itself is out of bounds *);
  }

(* 176gcc/403gcc: genuine spatial violations (obstack-style overflows),
   reported by both. *)
let gcc_like =
  {
    case_name = "excluded_gcc";
    section = "5.1.1 (176gcc / 403gcc)";
    explain =
      "gcc grows obstack-like buffers past their allocation and performs \
       out-of-bounds pointer arithmetic; both approaches report errors \
       and the benchmark is excluded.";
    sources =
      [
        Bench.src "gcc"
          {|
int main(void) {
  /* an obstack chunk that code grows past its end */
  long *chunk = (long *)malloc(32 * sizeof(long));
  long fill = 0;
  while (fill <= 70) {         /* overflows the 32-element chunk and
                                  even its padded 512-byte size class */
    chunk[fill] = fill;
    fill++;
  }
  print_int(chunk[0]);
  return 0;
}
|};
      ];
    expect_sb = Reports;
    expect_lf = Reports;
    expect_tp = Works;
    is_actual_bug = true;
  }

(* 175vpr: out-of-bounds pointer arithmetic that stays un-dereferenced
   until brought back: Low-Fat reports, SoftBound does not. *)
let vpr_like =
  {
    case_name = "excluded_vpr";
    section = "5.1.1 (175vpr)";
    explain =
      "vpr moves pointers far out of bounds during grid walks and brings \
       them back before dereferencing — accepted by SoftBound (accesses \
       are in bounds) but rejected by Low-Fat when the out-of-bounds \
       pointer crosses a function boundary (§4.2).";
    sources =
      [
        Bench.src "vpr"
          {|
long *grid_row;   /* escaping through this global triggers the check */

int main(void) {
  long *grid = (long *)malloc(32 * sizeof(long));
  long i;
  for (i = 0; i < 32; i++) grid[i] = i;
  /* walk off the end, store the cursor, come back: the 256-byte object
     pads to a 512-byte class, and +70 elements = +560 bytes leaves it */
  grid_row = grid + 70;
  long *cursor = grid_row;
  cursor = cursor - 70;
  print_int(cursor[5]);
  return 0;
}
|};
      ];
    expect_sb = Works;
    expect_lf = Reports;
    expect_tp = Works;
    is_actual_bug = true;
  }

(* 255vortex: the same pattern in its object store. *)
let vortex_like =
  {
    case_name = "excluded_vortex";
    section = "5.1.1 (255vortex)";
    explain =
      "vortex's object store computes addresses past its chunk ends \
       before clamping them — SoftBound accepts (no out-of-bounds \
       dereference), Low-Fat reports the escaping pointer.";
    sources =
      [
        Bench.src "vortex"
          {|
/* kept out of line (recursion blocks inlining) so the pointer escapes
   through the call */
long chunk_probe(long *past_end) {
  if (past_end == NULL) return chunk_probe(past_end);
  return past_end[-80];
}

int main(void) {
  long *chunk = (long *)malloc(40 * sizeof(long));
  long i;
  for (i = 0; i < 40; i++) chunk[i] = 2 * i;
  /* 40*8+1 pads to 512 bytes = 64 elements; +85 escapes the class */
  print_int(chunk_probe(chunk + 85));
  return 0;
}
|};
      ];
    expect_sb = Works;
    expect_lf = Reports;
    expect_tp = Works;
    is_actual_bug = true;
  }

let all : case list = [ perl_like; gap_like; gcc_like; vpr_like; vortex_like ]
