(** Experiment harness: compile, instrument, link, run, collect.

    One [setup] fixes everything the paper varies: the instrumentation
    configuration (or none, for the baseline), the optimization level, the
    extension point where the instrumentation runs, and the MiniC lowering
    mode (for the Figure 7 compiler-version experiment). *)

module Config = Mi_core.Config
module Pipeline = Mi_passes.Pipeline

type setup = {
  config : Config.t option;  (** [None]: uninstrumented baseline *)
  level : Pipeline.level;
  ep : Pipeline.extension_point;
  lowering : Mi_minic.Lower.mode;
  seed : int;
}

let baseline =
  {
    config = None;
    level = Pipeline.O3;
    ep = Pipeline.VectorizerStart;
    lowering = Mi_minic.Lower.default_mode;
    seed = 42;
  }

let with_config c s = { s with config = Some c }

type run = {
  outcome : Mi_vm.Interp.outcome;
  cycles : int;
  steps : int;
  output : string;
  counters : (string * int) list;
  static_stats : Mi_core.Instrument.mod_stats list;
      (** per instrumented translation unit *)
  program_instrs : int;  (** static instruction count after everything *)
  profile : Mi_obs.Site.snapshot list;
      (** per-check-site attribution ({!Mi_obs.Site}); empty when the
          setup is uninstrumented *)
}

let counter run key =
  Option.value ~default:0 (List.assoc_opt key run.counters)

(** Compile the translation units under [setup], link, execute.  Every
    run carries an observability context ({!Mi_obs.Obs}); pass [obs] to
    share one across runs (e.g. to export a trace spanning compile and
    execute, or to accumulate metrics). *)
let run_sources ?(obs = Mi_obs.Obs.create ()) (setup : setup)
    (sources : Bench.source list) : run =
  let tracer = obs.Mi_obs.Obs.trace in
  let stats = ref [] in
  let modules =
    Mi_obs.Trace.with_span tracer ~cat:"harness" "compile" (fun () ->
        List.map
          (fun (s : Bench.source) ->
            let mode = Option.value ~default:setup.lowering s.mode_override in
            let m =
              Mi_obs.Trace.with_span tracer ~cat:"harness"
                ("lower:" ^ s.src_name)
                (fun () ->
                  Mi_minic.Lower.compile ~mode ~name:s.src_name s.code)
            in
            let instrument =
              match setup.config with
              | Some cfg when s.instrument ->
                  Some
                    (fun m ->
                      let st = Mi_core.Instrument.run ~obs cfg m in
                      stats := st :: !stats)
              | _ -> None
            in
            Pipeline.run ~level:setup.level ?instrument ~ep:setup.ep ~tracer
              m;
            (m, s.instrument))
          sources)
  in
  let st =
    Mi_vm.State.create ~seed:setup.seed ~metrics:obs.Mi_obs.Obs.metrics
      ~sites:obs.Mi_obs.Obs.sites ()
  in
  Mi_vm.Builtins.install st;
  let alloc_global = ref None in
  (match setup.config with
  | Some cfg -> (
      match cfg.approach with
      | Config.Lowfat ->
          let lf =
            Mi_lowfat.Lowfat_rt.install ~stack_protection:cfg.lf_stack st
          in
          if cfg.lf_globals then begin
            (* mirror only globals defined by instrumented units: library
               globals stay in the unprotected segment (§4.3) *)
            let mirrored = Hashtbl.create 32 in
            List.iter
              (fun ((m : Mi_mir.Irmod.t), instrumented) ->
                if instrumented then
                  List.iter
                    (fun (g : Mi_mir.Irmod.global) ->
                      if not g.gextern then
                        Hashtbl.replace mirrored g.gname ())
                    m.globals)
              modules;
            alloc_global :=
              Some
                (fun st ~name ~size ~align ->
                  if Hashtbl.mem mirrored name then
                    Some (Mi_lowfat.Lowfat_rt.alloc_global lf st ~size ~align)
                  else None)
          end
      | Config.Softbound ->
          ignore
            (Mi_softbound.Softbound_rt.install
               ~wrapper_checks:cfg.sb_wrapper_checks st))
  | None -> ());
  let img =
    Mi_obs.Trace.with_span tracer ~cat:"harness" "load" (fun () ->
        Mi_vm.Interp.load ?alloc_global:!alloc_global st
          (List.map fst modules))
  in
  let program_instrs =
    Mi_mir.Irmod.instr_count (Mi_vm.Interp.merged_module img)
  in
  let res =
    Mi_obs.Trace.with_span tracer ~cat:"harness" "execute" (fun () ->
        Mi_vm.Interp.run st img)
  in
  {
    outcome = res.outcome;
    cycles = res.cycles;
    steps = res.steps;
    output = res.output;
    counters = res.counters;
    static_stats = List.rev !stats;
    program_instrs;
    profile = Mi_obs.Site.snapshot obs.Mi_obs.Obs.sites;
  }

let run_benchmark ?(obs = Mi_obs.Obs.create ()) (setup : setup) (b : Bench.t)
    : run =
  Mi_obs.Trace.with_span obs.Mi_obs.Obs.trace ~cat:"benchmark"
    ("benchmark:" ^ b.name)
    (fun () -> run_sources ~obs setup b.sources)

(** Normalized execution time (cycles / baseline cycles), the y-axis of
    Figures 9-13. *)
let overhead ~(baseline : run) (r : run) : float =
  float_of_int r.cycles /. float_of_int baseline.cycles

exception Benchmark_failed of string * string

(** Like {!run_benchmark} but raises unless the program exits normally and
    matches its expected output. *)
let run_benchmark_exn (setup : setup) (b : Bench.t) : run =
  let r = run_benchmark setup b in
  (match r.outcome with
  | Mi_vm.Interp.Exited _ -> ()
  | Mi_vm.Interp.Trapped msg ->
      raise (Benchmark_failed (b.name, "trap: " ^ msg))
  | Mi_vm.Interp.Safety_violation { checker; reason } ->
      raise
        (Benchmark_failed
           (b.name, Printf.sprintf "%s violation: %s" checker reason)));
  (match b.expect_output with
  | Some expected when expected <> r.output ->
      raise
        (Benchmark_failed
           ( b.name,
             Printf.sprintf "output mismatch: expected %S, got %S" expected
               r.output ))
  | _ -> ());
  r
