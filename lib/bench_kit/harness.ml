(** Experiment harness: compile, instrument, link, run, collect — and
    scale.

    One [setup] fixes everything the paper varies: the instrumentation
    configuration (or none, for the baseline), the optimization level,
    the extension point where the instrumentation runs, and the MiniC
    lowering mode (for the Figure 7 compiler-version experiment).

    A {!t} session owns the machinery that makes many runs cheap: an
    observability context that aggregates every run, an instrumentation
    cache ({!Icache}) that skips re-compiling identical setups, and a
    fixed-size pool of OCaml 5 domains ({!run_jobs}) that shards a
    (setup x benchmark) job matrix.  Every worker runs against a private
    {!Mi_obs.Obs} context; contexts are merged into the session in job
    order, and the VM is deterministic, so parallel results are
    byte-identical to sequential ones. *)

module Config = Mi_core.Config
module Pipeline = Mi_passes.Pipeline
module Obs = Mi_obs.Obs
module Fault = Mi_faultkit.Fault

(** How the VM dispatches runtime-intrinsic calls: [Fast] (the default)
    lets the loader fuse check calls into superinstructions; [Generic]
    forces every call through the boxed builtin path
    ({!Mi_vm.State.t.fast_dispatch}).  Execution-only — like [seed], it
    never affects compilation, so both variants share one
    instrumentation-cache entry. *)
type dispatch = Fast | Generic

type setup = {
  config : Config.t option;  (** [None]: uninstrumented baseline *)
  level : Pipeline.level;
  ep : Pipeline.extension_point;
  lowering : Mi_minic.Lower.mode;
  seed : int;
  dispatch : dispatch;
}

let baseline =
  {
    config = None;
    level = Pipeline.O3;
    ep = Pipeline.VectorizerStart;
    lowering = Mi_minic.Lower.default_mode;
    seed = 42;
    dispatch = Fast;
  }

let with_config c s = { s with config = Some c }

let level_name = function
  | Pipeline.O0 -> "O0"
  | Pipeline.O1 -> "O1"
  | Pipeline.O3 -> "O3"

(** Canonical setup description: injective over every field, so it
    doubles as a job key. *)
let setup_key (s : setup) =
  Printf.sprintf "%s/%s/%s/%s/seed=%d%s"
    (match s.config with None -> "base" | Some c -> Config.to_string c)
    (level_name s.level) (Pipeline.ep_name s.ep)
    (if s.lowering.Mi_minic.Lower.ptr_mem_as_i64 then "i64ptr" else "std")
    s.seed
    (* suffix only in the non-default case, so every pre-existing key
       (goldens, cache dirs) is unchanged *)
    (match s.dispatch with Fast -> "" | Generic -> "/generic")

type run = {
  outcome : Mi_vm.Interp.outcome;
  cycles : int;
  steps : int;
  output : string;
  counters : (string * int) array;  (** sorted by name — use {!counter} *)
  static_stats : Mi_core.Instrument.mod_stats list;
      (** per instrumented translation unit *)
  program_instrs : int;  (** static instruction count after everything *)
  profile : Mi_obs.Site.snapshot list;
      (** per-check-site attribution ({!Mi_obs.Site}); empty when the
          setup is uninstrumented *)
  coverage : Mi_obs.Coverage.snapshot list;
      (** per-function block/edge coverage; empty unless the obs context
          carries a coverage registry ([Obs.create ~coverage:true]) *)
}

(* counters are sorted by State.counters_alist; binary search replaces
   the former List.assoc_opt linear scan per report row *)
let counter (r : run) key =
  let a = r.counters in
  let rec go lo hi =
    if lo >= hi then 0
    else begin
      let mid = (lo + hi) / 2 in
      let k, v = a.(mid) in
      let c = String.compare key k in
      if c = 0 then v else if c < 0 then go lo mid else go (mid + 1) hi
    end
  in
  go 0 (Array.length a)

let counters_alist (r : run) = Array.to_list r.counters

(* ------------------------------------------------------------------ *)
(* Compile and execute phases                                          *)
(* ------------------------------------------------------------------ *)

(* Lower + instrument + optimize every translation unit.  Returns the
   modules (with their instrumented flags) and per-unit static stats.
   All sites registered during this phase land in [obs.sites]. *)
let compile ?(faults = Fault.none) ~obs (setup : setup)
    (sources : Bench.source list) :
    (Mi_mir.Irmod.t * bool) list * Mi_core.Instrument.mod_stats list =
  let tracer = obs.Obs.trace in
  let stats = ref [] in
  let modules =
    Mi_obs.Trace.with_span tracer ~cat:"harness" "compile" (fun () ->
        List.map
          (fun (s : Bench.source) ->
            let mode = Option.value ~default:setup.lowering s.mode_override in
            let m =
              Mi_obs.Trace.with_span tracer ~cat:"harness"
                ("lower:" ^ s.src_name)
                (fun () ->
                  Mi_minic.Lower.compile ~mode ~name:s.src_name s.code)
            in
            let instrument =
              match setup.config with
              | Some cfg when s.instrument ->
                  Some
                    (fun m ->
                      let st = Mi_core.Instrument.run ~obs ~faults cfg m in
                      stats := st :: !stats)
              | _ -> None
            in
            Pipeline.run ~level:setup.level ?instrument ~ep:setup.ep ~tracer
              m;
            (m, s.instrument))
          sources)
  in
  (modules, List.rev !stats)

(* Load the compiled modules into a fresh VM with the configured runtime
   and execute.  Reads the modules but never mutates them, so cached
   modules can be shared across runs and domains. *)
let execute ?(faults = Fault.none) ?deadline ~obs (setup : setup)
    (modules : (Mi_mir.Irmod.t * bool) list)
    ~(static_stats : Mi_core.Instrument.mod_stats list) : run =
  let tracer = obs.Obs.trace in
  let st =
    Mi_vm.State.create ~seed:setup.seed ~metrics:obs.Obs.metrics
      ~sites:obs.Obs.sites ?coverage:obs.Obs.coverage ()
  in
  (* must precede [Interp.load]: fusion is a load-time decision *)
  (match setup.dispatch with
  | Fast -> ()
  | Generic -> st.Mi_vm.State.fast_dispatch <- false);
  Mi_vm.Inject.install faults st;
  Option.iter
    (fun (at, budget) -> Mi_vm.Inject.arm_deadline st ~deadline:at ~budget)
    deadline;
  Mi_vm.Builtins.install st;
  let alloc_global =
    match setup.config with
    | Some cfg -> Mi_runtimes.Runtimes.install cfg ~modules st
    | None -> None
  in
  let img =
    Mi_obs.Trace.with_span tracer ~cat:"harness" "load" (fun () ->
        Mi_vm.Interp.load ?alloc_global st (List.map fst modules))
  in
  let program_instrs =
    Mi_mir.Irmod.instr_count (Mi_vm.Interp.merged_module img)
  in
  let res =
    Mi_obs.Trace.with_span tracer ~cat:"harness" "execute" (fun () ->
        Mi_vm.Interp.run st img)
  in
  {
    outcome = res.outcome;
    cycles = res.cycles;
    steps = res.steps;
    output = res.output;
    (* runtime counters only: the registry also holds compile-phase
       [static.*] counters, which a cached run legitimately skips —
       static data belongs to [static_stats] *)
    counters =
      Array.of_list
        (List.filter
           (fun (k, _) -> not (String.starts_with ~prefix:"static." k))
           res.counters);
    static_stats;
    program_instrs;
    profile = Mi_obs.Site.snapshot obs.Obs.sites;
    coverage =
      (match obs.Obs.coverage with
      | None -> []
      | Some c -> Mi_obs.Coverage.snapshot c);
  }

(** Compile the translation units under [setup], link, execute.  Every
    run carries an observability context ({!Mi_obs.Obs}); pass [obs] to
    share one across runs (e.g. to export a trace spanning compile and
    execute, or to accumulate metrics).  This entry point never consults
    a cache — sessions do ({!run}, {!run_jobs}). *)
let run_sources ?(obs = Obs.create ()) ?(faults = Fault.none) ?budget
    (setup : setup) (sources : Bench.source list) : run =
  let modules, stats = compile ~faults ~obs setup sources in
  let deadline =
    Option.map (fun b -> (Mi_support.Mclock.deadline b, b)) budget
  in
  execute ~faults ?deadline ~obs setup modules ~static_stats:stats

let run_benchmark ?(obs = Obs.create ()) (setup : setup) (b : Bench.t) : run
    =
  Mi_obs.Trace.with_span obs.Obs.trace ~cat:"benchmark"
    ("benchmark:" ^ b.name)
    (fun () -> run_sources ~obs setup b.sources)

(** Normalized execution time (cycles / baseline cycles), the y-axis of
    Figures 9-13. *)
let overhead ~(baseline : run) (r : run) : float =
  float_of_int r.cycles /. float_of_int baseline.cycles

(* ------------------------------------------------------------------ *)
(* Errors                                                              *)
(* ------------------------------------------------------------------ *)

type error = { bench : string; reason : string }

exception Benchmark_failed of string * string

let () =
  Printexc.register_printer (function
    | Benchmark_failed (b, msg) ->
        Some (Printf.sprintf "Benchmark_failed(%s: %s)" b msg)
    | _ -> None)

(** Enforce the classic strictness contract on a completed run: the
    program must exit normally and match its expected output. *)
let check_run (b : Bench.t) (r : run) : (run, error) result =
  match r.outcome with
  | Mi_vm.Interp.Trapped msg -> Error { bench = b.name; reason = "trap: " ^ msg }
  | Mi_vm.Interp.Exhausted budget ->
      Error
        {
          bench = b.name;
          reason =
            Printf.sprintf "resource exhaustion: fuel budget of %d spent"
              budget;
        }
  | Mi_vm.Interp.Safety_violation { checker; reason } ->
      Error
        {
          bench = b.name;
          reason = Printf.sprintf "%s violation: %s" checker reason;
        }
  | Mi_vm.Interp.Exited _ -> (
      match b.expect_output with
      | Some expected when expected <> r.output ->
          Error
            {
              bench = b.name;
              reason =
                Printf.sprintf "output mismatch: expected %S, got %S"
                  expected r.output;
            }
      | _ -> Ok r)

(** Unwrap a strict result, raising {!Benchmark_failed} on any error —
    including a run that completed with a violation, trap or output
    mismatch. *)
let expect_ok (b : Bench.t) (res : (run, error) result) : run =
  match Result.bind res (check_run b) with
  | Ok r -> r
  | Error e -> raise (Benchmark_failed (e.bench, e.reason))

(* ------------------------------------------------------------------ *)
(* Sessions: obs + cache + worker pool                                 *)
(* ------------------------------------------------------------------ *)

type failure_kind =
  | Crash  (** the worker raised (a bug, or an un-typed injected fault) *)
  | Timeout  (** the per-job wall-clock budget ran out *)
  | Injected  (** an injected crash from the fault plan *)

type job_failure = {
  jf_setup : string;  (** {!setup_key} of the failed job *)
  jf_bench : string;
  jf_kind : failure_kind;
  jf_reason : string;
  jf_retries : int;  (** retries consumed before giving up *)
}

type t = {
  s_obs : Obs.t;
  s_cache : Icache.t;
  s_jobs : int;
  s_faults : Fault.t;
  mutable s_job_timeout : float option;
      (** mutable so a long-lived session (the server) can apply a
          per-request deadline override; see {!set_job_timeout} *)
  s_retries : int;
  s_backoff_cap_ms : int;  (** upper bound on one retry backoff sleep *)
  mutable s_failures : job_failure list;  (** newest first; see {!failures} *)
  mutable s_corrupt_seen : int;
      (** cache corruptions already folded into the session metrics *)
}

type cache_stats = Icache.stats = { hits : int; misses : int; corrupt : int }

let default_jobs () = max 1 (Domain.recommended_domain_count ())
let default_backoff_cap_ms = 250

let create ?jobs ?cache_dir ?cache ?obs ?(faults = Fault.none) ?job_timeout
    ?(retries = 0) ?(retry_backoff_ms = default_backoff_cap_ms) () =
  let cache =
    match cache with
    | Some c -> c  (* shared with other sessions; [cache_dir] ignored *)
    | None -> Icache.create ?dir:cache_dir ()
  in
  (* the fault plan corrupts persisted entries up front, so the first
     lookups of this session exercise the detection path *)
  (match faults.Fault.cache with
  | Some how -> ignore (Icache.corrupt cache how)
  | None -> ());
  {
    s_obs = (match obs with Some o -> o | None -> Obs.create ());
    s_cache = cache;
    s_jobs =
      (match jobs with Some j -> max 1 j | None -> default_jobs ());
    s_faults = faults;
    s_job_timeout = job_timeout;
    s_retries = max 0 retries;
    s_backoff_cap_ms = max 1 retry_backoff_ms;
    s_failures = [];
    s_corrupt_seen = 0;
  }

let obs t = t.s_obs
let jobs t = t.s_jobs
let cache t = t.s_cache
let cache_stats t = Icache.stats t.s_cache
let set_job_timeout t timeout = t.s_job_timeout <- timeout

(* The k-th (0-based) retry backoff in milliseconds: 10ms doubling,
   clamped to the session cap so a deep retry budget cannot sleep
   unboundedly (2^k grows past any useful delay within a dozen
   retries).  Pure, so the session metric can account sleeps exactly
   without measuring them. *)
let backoff_ms t k = min t.s_backoff_cap_ms (10 * (1 lsl min k 20))

(* total backoff consumed by a job that went through [retries] retries *)
let backoff_total_ms t retries =
  let rec go k acc = if k >= retries then acc else go (k + 1) (acc + backoff_ms t k) in
  go 0 0

let failures t = List.rev t.s_failures

let kind_name = function
  | Crash -> "crash"
  | Timeout -> "timeout"
  | Injected -> "injected"

(** Deterministic plain-text manifest of every job failure, in job
    order; [""] when nothing failed. *)
let failure_manifest t =
  match failures t with
  | [] -> ""
  | fs ->
      let tbl =
        Mi_support.Table.create
          ~aligns:[ Mi_support.Table.Left; Left; Left; Right; Left ]
          [ "setup"; "benchmark"; "cause"; "retries"; "reason" ]
      in
      List.iter
        (fun f ->
          Mi_support.Table.add_row tbl
            [
              f.jf_setup;
              f.jf_bench;
              kind_name f.jf_kind;
              string_of_int f.jf_retries;
              f.jf_reason;
            ])
        fs;
      Mi_support.Table.render tbl

let failures_to_json t : Mi_obs.Json.t =
  Mi_obs.Json.List
    (List.map
       (fun f ->
         Mi_obs.Json.Obj
           [
             ("setup", Mi_obs.Json.Str f.jf_setup);
             ("benchmark", Mi_obs.Json.Str f.jf_bench);
             ("cause", Mi_obs.Json.Str (kind_name f.jf_kind));
             ("retries", Mi_obs.Json.Int f.jf_retries);
             ("reason", Mi_obs.Json.Str f.jf_reason);
           ])
       (failures t))

(* Everything the compile phase depends on, as cache-key content; the
   seed only affects execution and is deliberately left out. *)
let compile_key (setup : setup) (sources : Bench.source list) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (match setup.config with None -> "base" | Some c -> Config.to_string c);
  Buffer.add_string b
    (Printf.sprintf "\n%s/%s\n" (level_name setup.level)
       (Pipeline.ep_name setup.ep));
  List.iter
    (fun (s : Bench.source) ->
      let mode = Option.value ~default:setup.lowering s.mode_override in
      Buffer.add_string b
        (Printf.sprintf "--unit %s instrument=%b i64ptr=%b\n" s.src_name
           s.instrument mode.Mi_minic.Lower.ptr_mem_as_i64);
      Buffer.add_string b s.code;
      Buffer.add_char b '\n')
    sources;
  Buffer.contents b

(* One cache-aware run on a private (freshly created) obs context.  The
   context MUST be empty: a cache hit replays the cached site registry
   from id 0, which is what the site ids embedded in the cached modules
   refer to. *)
let run_cached ?deadline t ~obs (setup : setup) (b : Bench.t) : run =
  let key =
    (* a mutated compile must never alias the unmutated entry *)
    match Fault.compile_sig t.s_faults with
    | "" -> compile_key setup b.sources
    | sig_ -> compile_key setup b.sources ^ "\n--faults " ^ sig_ ^ "\n"
  in
  let modules, stats =
    match Icache.find t.s_cache key with
    | Some e ->
        List.iter
          (Mi_obs.Site.register_info obs.Obs.sites)
          e.Icache.e_sites;
        (e.Icache.e_modules, e.Icache.e_stats)
    | None ->
        let modules, stats =
          compile ~faults:t.s_faults ~obs setup b.sources
        in
        Icache.add t.s_cache key
          {
            Icache.e_modules = modules;
            e_stats = stats;
            e_sites = Mi_obs.Site.infos obs.Obs.sites;
          };
        (modules, stats)
  in
  Mi_obs.Trace.with_span obs.Obs.trace ~cat:"benchmark"
    ("benchmark:" ^ b.name)
    (fun () ->
      execute ~faults:t.s_faults ?deadline ~obs setup modules
        ~static_stats:stats)

(** Shard [jobs] across the session's worker domains.  Duplicate jobs
    (same {!setup_key} and benchmark) are executed once and share their
    run.  Results are returned in input order; every worker used a
    private obs context, and the contexts are merged into the session's
    in (deduplicated) job order — never in completion order — so the
    returned runs and the session context are byte-identical no matter
    how many domains ran, or how the scheduler interleaved them. *)
(* One attempt of one job, on a fresh obs context.  Injected job faults
   fire first: a crash raises before any work, a hang busy-waits (still
   honouring the wall-clock deadline) and then runs the job normally.
   [wid] is the worker index, used only for trace thread labels. *)
let attempt_job t ~job_desc ~wid (setup : setup) (b : Bench.t) : Obs.t * run =
  let deadline =
    Option.map
      (fun budget -> (Mi_support.Mclock.deadline budget, budget))
      t.s_job_timeout
  in
  (match Fault.job_fault_for t.s_faults job_desc with
  | Some (Fault.Crash_job _) -> raise (Fault.Injected_crash job_desc)
  | Some (Fault.Hang_job (_, dur)) ->
      let until = Mi_support.Mclock.deadline dur in
      while not (Mi_support.Mclock.expired until) do
        (match deadline with
        | Some (at, budget) ->
            if Mi_support.Mclock.expired at then
              raise (Fault.Job_timeout budget)
        | None -> ());
        Domain.cpu_relax ()
      done
  | None -> ());
  let obs = Obs.create ~coverage:(Option.is_some t.s_obs.Obs.coverage) () in
  Mi_obs.Trace.set_thread obs.Obs.trace ~tid:(wid + 1)
    ~name:(if wid = 0 then "main" else Printf.sprintf "worker-%d" wid);
  (obs, run_cached ?deadline t ~obs setup b)

(* Classify an exception that escaped a job attempt.  Reasons must be
   deterministic (no measured times, no addresses): they feed the
   failure manifest, which is part of the byte-identical output. *)
let classify_failure ~setup_key:sk ~bench ~retries = function
  | Fault.Injected_crash what ->
      {
        jf_setup = sk;
        jf_bench = bench;
        jf_kind = Injected;
        jf_reason = "injected crash: " ^ what;
        jf_retries = retries;
      }
  | Fault.Job_timeout budget ->
      {
        jf_setup = sk;
        jf_bench = bench;
        jf_kind = Timeout;
        jf_reason =
          Printf.sprintf "wall-clock budget exceeded (%gs)" budget;
        jf_retries = retries;
      }
  | e ->
      {
        jf_setup = sk;
        jf_bench = bench;
        jf_kind = Crash;
        jf_reason = Printexc.to_string e;
        jf_retries = retries;
      }

let run_jobs t (jobs : (setup * Bench.t) list) :
    (run, error) result list =
  let job_key (s, (b : Bench.t)) = (setup_key s, b.name) in
  (* distinct jobs, first-occurrence order *)
  let index = Hashtbl.create 64 in
  let distinct = ref [] in
  let n = ref 0 in
  List.iter
    (fun job ->
      let k = job_key job in
      if not (Hashtbl.mem index k) then begin
        Hashtbl.add index k !n;
        distinct := job :: !distinct;
        incr n
      end)
    jobs;
  let arr = Array.of_list (List.rev !distinct) in
  let n = Array.length arr in
  let unscheduled =
    {
      jf_setup = "";
      jf_bench = "";
      jf_kind = Crash;
      jf_reason = "job was not scheduled";
      jf_retries = 0;
    }
  in
  let out : (run, job_failure) result array = Array.make n (Error unscheduled) in
  (* obs of SUCCESSFUL attempts only: a failed attempt's partial context
     (half-registered sites, partial counters) would poison the merge
     and break -j determinism, so it is discarded with the attempt *)
  let obss : Obs.t option array = Array.make n None in
  let retried = Array.make n 0 in
  let next = Atomic.make 0 in
  let worker wid =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let setup, b = arr.(i) in
        let sk = setup_key setup in
        let job_desc = sk ^ "/" ^ b.Bench.name in
        (* bounded retry with exponential backoff; the try captures
           EVERYTHING, so no exception ever escapes the worker and the
           pool can neither orphan queued jobs nor hang Domain.join *)
        let rec attempt k =
          match attempt_job t ~job_desc ~wid setup b with
          | obs, r ->
              obss.(i) <- Some obs;
              retried.(i) <- k;
              out.(i) <- Ok r
          | exception e ->
              if k < t.s_retries then begin
                (* capped exponential backoff (see [backoff_ms]); the
                   slept total is accounted in harness.backoff_ms when
                   the job folds into the session *)
                Unix.sleepf (Float.of_int (backoff_ms t k) /. 1000.);
                attempt (k + 1)
              end
              else
                out.(i) <-
                  Error
                    (classify_failure ~setup_key:sk ~bench:b.Bench.name
                       ~retries:k e)
        in
        attempt 0;
        loop ()
      end
    in
    loop ()
  in
  let workers = min t.s_jobs (max 1 n) in
  if workers <= 1 then worker 0
  else begin
    let domains =
      List.init (workers - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
    in
    (* even if the main-thread worker raises (it cannot, see above, but
       defence in depth), every spawned domain is still joined *)
    Fun.protect
      ~finally:(fun () -> List.iter Domain.join domains)
      (fun () -> worker 0)
  end;
  (* fold per-job results into the session, strictly in job order *)
  Array.iteri
    (fun i res ->
      (match obss.(i) with Some o -> Obs.merge t.s_obs o | None -> ());
      (* backoff sleeps are accounted from the deterministic schedule,
         not measured: the metric stays byte-identical across -j *)
      let account_backoff retries =
        if retries > 0 then
          Mi_obs.Metrics.incr
            ~by:(backoff_total_ms t retries)
            t.s_obs.Obs.metrics "harness.backoff_ms"
      in
      match res with
      | Ok _ ->
          if retried.(i) > 0 then begin
            Mi_obs.Metrics.incr ~by:retried.(i) t.s_obs.Obs.metrics
              "harness.job_retried";
            account_backoff retried.(i)
          end
      | Error f ->
          Mi_obs.Metrics.incr t.s_obs.Obs.metrics "harness.job_failed";
          if f.jf_retries > 0 then begin
            Mi_obs.Metrics.incr ~by:f.jf_retries t.s_obs.Obs.metrics
              "harness.job_retried";
            account_backoff f.jf_retries
          end;
          if f.jf_kind = Injected then
            Mi_obs.Metrics.incr ~by:(f.jf_retries + 1) t.s_obs.Obs.metrics
              "fault.injected";
          t.s_failures <- f :: t.s_failures)
    out;
  (* quarantined cache entries detected since the last sync *)
  let corrupt_now = (Icache.stats t.s_cache).corrupt in
  if corrupt_now > t.s_corrupt_seen then begin
    Mi_obs.Metrics.incr
      ~by:(corrupt_now - t.s_corrupt_seen)
      t.s_obs.Obs.metrics "icache.corrupt";
    t.s_corrupt_seen <- corrupt_now
  end;
  List.map
    (fun job ->
      match out.(Hashtbl.find index (job_key job)) with
      | Ok r -> Ok r
      | Error f -> Error { bench = f.jf_bench; reason = f.jf_reason })
    jobs

(** The session entry point: one cache-aware run.  Errors are compile,
    link or internal failures; a safety violation or VM trap is an [Ok]
    run — inspect {!run.outcome} (or pass the result through
    {!expect_ok} for the strict behaviour). *)
let run t (setup : setup) (b : Bench.t) : (run, error) result =
  match run_jobs t [ (setup, b) ] with [ r ] -> r | _ -> assert false
