(** Experiment harness: compile, instrument, link, run, collect — and,
    through {!t} sessions, cache and parallelize.

    The classic per-call entry points ({!run_sources}, {!run_benchmark})
    still exist for one-off runs and for sharing a single observability
    context across heterogeneous work (as [memsafe] does).  Everything
    at experiment scale goes through a session: [create] one, submit a
    job matrix with {!run_jobs} (or single jobs with {!run}), and read
    the aggregated observability off {!obs}. *)

module Config = Mi_core.Config
module Pipeline = Mi_passes.Pipeline

(** {1 Setups} *)

(** One [setup] fixes everything the paper varies. *)
type setup = {
  config : Config.t option;  (** [None]: uninstrumented baseline *)
  level : Pipeline.level;
  ep : Pipeline.extension_point;
  lowering : Mi_minic.Lower.mode;
  seed : int;
}

val baseline : setup
(** Uninstrumented [-O3], the denominator of every overhead figure. *)

val with_config : Config.t -> setup -> setup

val setup_key : setup -> string
(** Canonical, injective description of a setup — the job key used for
    deduplication, deterministic merging and caching. *)

(** {1 Runs} *)

type run = {
  outcome : Mi_vm.Interp.outcome;
  cycles : int;
  steps : int;
  output : string;
  counters : (string * int) array;
      (** runtime counters sorted by name; query with {!counter} *)
  static_stats : Mi_core.Instrument.mod_stats list;
      (** per instrumented translation unit *)
  program_instrs : int;  (** static instruction count after everything *)
  profile : Mi_obs.Site.snapshot list;
      (** per-check-site attribution; empty when uninstrumented *)
}

val counter : run -> string -> int
(** Binary search over the sorted counter array; 0 when absent. *)

val counters_alist : run -> (string * int) list
(** The counters as a sorted association list (a copy). *)

val overhead : baseline:run -> run -> float
(** Normalized execution time (cycles / baseline cycles), the y-axis of
    Figures 9-13. *)

(** {1 Errors} *)

type error = { bench : string; reason : string }

exception Benchmark_failed of string * string

val check_run : Bench.t -> run -> (run, error) result
(** [Ok] iff the run exited normally and matched the benchmark's
    expected output; otherwise an [Error] describing the violation,
    trap, or mismatch. *)

val expect_ok : Bench.t -> (run, error) result -> run
(** Unwrap a result strictly: raises {!Benchmark_failed} on [Error] and
    on completed runs that {!check_run} rejects. *)

(** {1 Sessions} *)

type t
(** A harness session: one aggregated observability context, one
    instrumentation cache, one worker pool.  Create it once and push
    every run of an experiment campaign through it. *)

val default_jobs : unit -> int
(** The recognized core count ([Domain.recommended_domain_count]). *)

val create : ?jobs:int -> ?cache_dir:string -> ?obs:Mi_obs.Obs.t -> unit -> t
(** [jobs] is the worker-pool size (default {!default_jobs}; clamped to
    at least 1).  [cache_dir] additionally persists the instrumentation
    cache on disk, giving hits across processes.  [obs] is the session
    context every run's private context is merged into (a fresh one by
    default). *)

val obs : t -> Mi_obs.Obs.t
(** The session context: metrics, check sites and trace events of every
    run so far, merged deterministically (in job order). *)

val jobs : t -> int

type cache_stats = Icache.stats = { hits : int; misses : int }

val cache_stats : t -> cache_stats
(** Exact instrumentation-cache accounting: one hit or miss is counted
    per executed job (deduplicated jobs consult the cache once). *)

val run : t -> setup -> Bench.t -> (run, error) result
(** The session entry point: one cache-aware run.  [Error] means the
    compile or link phase failed; a safety violation or VM trap is an
    [Ok] run — inspect {!run.outcome}, or compose with {!expect_ok} for
    the strict contract. *)

val run_jobs : t -> (setup * Bench.t) list -> (run, error) result list
(** Shard a job matrix across the session's domains.  Duplicate jobs run
    once and share their result; results come back in input order.
    Determinism guarantee: the runs and the session's merged context are
    byte-identical for every [jobs] setting, because each worker uses a
    private context, contexts merge in job order (never completion
    order), and the VM itself is deterministic. *)

(** {1 Classic per-call entry points} *)

val run_sources :
  ?obs:Mi_obs.Obs.t -> setup -> Bench.source list -> run
(** Compile the translation units under [setup], link, execute — no
    session, no cache.  Pass [obs] to share one context across runs. *)

val run_benchmark : ?obs:Mi_obs.Obs.t -> setup -> Bench.t -> run

val run_benchmark_exn : setup -> Bench.t -> run
[@@ocaml.deprecated
  "use a session: Harness.expect_ok b (Harness.run t setup b)"]
(** @deprecated Raises on any non-clean outcome.  Use a session's
    result-returning {!run} (with {!expect_ok} where strictness is
    wanted) instead. *)
