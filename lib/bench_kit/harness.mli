(** Experiment harness: compile, instrument, link, run, collect — and,
    through {!t} sessions, cache and parallelize.

    The classic per-call entry points ({!run_sources}, {!run_benchmark})
    still exist for one-off runs and for sharing a single observability
    context across heterogeneous work (as [memsafe] does).  Everything
    at experiment scale goes through a session: [create] one, submit a
    job matrix with {!run_jobs} (or single jobs with {!run}), and read
    the aggregated observability off {!obs}. *)

module Config = Mi_core.Config
module Pipeline = Mi_passes.Pipeline

(** {1 Setups} *)

(** How the VM dispatches runtime-intrinsic calls: [Fast] (the default)
    lets the loader fuse check calls into superinstructions; [Generic]
    forces every call through the boxed builtin path.  Execution-only —
    both variants share one instrumentation-cache entry, which is what
    makes the fast-path engine differentially testable at fuzzing
    scale. *)
type dispatch = Fast | Generic

(** One [setup] fixes everything the paper varies. *)
type setup = {
  config : Config.t option;  (** [None]: uninstrumented baseline *)
  level : Pipeline.level;
  ep : Pipeline.extension_point;
  lowering : Mi_minic.Lower.mode;
  seed : int;
  dispatch : dispatch;
      (** VM call dispatch; {!baseline} uses [Fast].  [Generic] appends
          ["/generic"] to {!setup_key} (default keys are unchanged). *)
}

val baseline : setup
(** Uninstrumented [-O3], the denominator of every overhead figure. *)

val with_config : Config.t -> setup -> setup

val setup_key : setup -> string
(** Canonical, injective description of a setup — the job key used for
    deduplication, deterministic merging and caching. *)

(** {1 Runs} *)

type run = {
  outcome : Mi_vm.Interp.outcome;
  cycles : int;
  steps : int;
  output : string;
  counters : (string * int) array;
      (** runtime counters sorted by name; query with {!counter} *)
  static_stats : Mi_core.Instrument.mod_stats list;
      (** per instrumented translation unit *)
  program_instrs : int;  (** static instruction count after everything *)
  profile : Mi_obs.Site.snapshot list;
      (** per-check-site attribution; empty when uninstrumented *)
  coverage : Mi_obs.Coverage.snapshot list;
      (** per-function block/edge coverage; empty unless the run's obs
          context carries a coverage registry
          ([Obs.create ~coverage:true]).  Recording is a pure side band:
          cycles, steps and counters are identical with and without
          it. *)
}

val counter : run -> string -> int
(** Binary search over the sorted counter array; 0 when absent. *)

val counters_alist : run -> (string * int) list
(** The counters as a sorted association list (a copy). *)

val overhead : baseline:run -> run -> float
(** Normalized execution time (cycles / baseline cycles), the y-axis of
    Figures 9-13. *)

(** {1 Errors} *)

type error = { bench : string; reason : string }

exception Benchmark_failed of string * string

val check_run : Bench.t -> run -> (run, error) result
(** [Ok] iff the run exited normally and matched the benchmark's
    expected output; otherwise an [Error] describing the violation,
    trap, or mismatch. *)

val expect_ok : Bench.t -> (run, error) result -> run
(** Unwrap a result strictly: raises {!Benchmark_failed} on [Error] and
    on completed runs that {!check_run} rejects. *)

(** {1 Job failures}

    A failed job never aborts a matrix: the worker captures the
    exception, classifies it, retries within the session's budget, and
    finally records a typed {!job_failure}.  The matrix always
    completes with partial results plus a deterministic failure
    manifest. *)

type failure_kind =
  | Crash  (** the worker raised (a bug, or an un-typed injected fault) *)
  | Timeout  (** the per-job wall-clock budget ran out *)
  | Injected  (** an injected crash from the fault plan *)

type job_failure = {
  jf_setup : string;  (** {!setup_key} of the failed job *)
  jf_bench : string;
  jf_kind : failure_kind;
  jf_reason : string;  (** deterministic — safe to diff across [-j] *)
  jf_retries : int;  (** retries consumed before giving up *)
}

(** {1 Sessions} *)

type t
(** A harness session: one aggregated observability context, one
    instrumentation cache, one worker pool.  Create it once and push
    every run of an experiment campaign through it. *)

val default_jobs : unit -> int
(** The recognized core count ([Domain.recommended_domain_count]). *)

val create :
  ?jobs:int ->
  ?cache_dir:string ->
  ?cache:Icache.t ->
  ?obs:Mi_obs.Obs.t ->
  ?faults:Mi_faultkit.Fault.t ->
  ?job_timeout:float ->
  ?retries:int ->
  ?retry_backoff_ms:int ->
  unit ->
  t
(** [jobs] is the worker-pool size (default {!default_jobs}; clamped to
    at least 1).  [cache_dir] additionally persists the instrumentation
    cache on disk, giving hits across processes.  [cache] makes the
    session use an existing instrumentation cache instead of creating
    its own — the sharing mechanism behind the server's per-tenant
    sessions over one content-addressed cache ([cache_dir] is ignored
    when given; the cache's own directory governs persistence).  [obs]
    is the session context every run's private context is merged into
    (a fresh one by default).

    [faults] is the fault plan every run of the session suffers: check
    mutations apply during instrumentation (and key the cache, so
    mutants never alias clean entries), VM faults install on every VM,
    job faults fire in {!run_jobs} workers, and a cache corruption is
    applied to the persisted cache right here, at session creation.
    [job_timeout] is a per-job budget in seconds on the monotonic
    timeline ({!Mi_support.Mclock}), enforced from the VM's poll hook;
    a job over budget fails with {!failure_kind.Timeout}.  [retries]
    (default 0) re-attempts a failed job with exponential backoff
    before recording a failure; each backoff sleep doubles from 10ms
    and is clamped to [retry_backoff_ms] (default 250), and the total
    slept is accounted — from the deterministic schedule, not measured
    — in the session's [harness.backoff_ms] counter. *)

val obs : t -> Mi_obs.Obs.t
(** The session context: metrics, check sites and trace events of every
    run so far, merged deterministically (in job order). *)

val jobs : t -> int

val cache : t -> Icache.t
(** The session's instrumentation cache — pass it to another session's
    [create ~cache] to share compiled modules across sessions. *)

val set_job_timeout : t -> float option -> unit
(** Replace the session's per-job budget.  Not synchronized: callers
    that share a session across domains (the server's per-tenant
    sessions) must serialize runs themselves. *)

type cache_stats = Icache.stats = { hits : int; misses : int; corrupt : int }

val cache_stats : t -> cache_stats
(** Exact instrumentation-cache accounting: one hit or miss is counted
    per executed job (deduplicated jobs consult the cache once).
    [corrupt] counts disk entries that failed verification and were
    quarantined — each was also a miss. *)

val failures : t -> job_failure list
(** Every job failure recorded by the session so far, in job order. *)

val failure_manifest : t -> string
(** Deterministic plain-text table of {!failures} (setup, benchmark,
    cause, retries, reason); [""] when nothing failed. *)

val failures_to_json : t -> Mi_obs.Json.t
(** {!failures} as a JSON list, same fields as the manifest. *)

val run : t -> setup -> Bench.t -> (run, error) result
(** The session entry point: one cache-aware run.  [Error] means the
    compile or link phase failed; a safety violation or VM trap is an
    [Ok] run — inspect {!run.outcome}, or compose with {!expect_ok} for
    the strict contract. *)

val run_jobs : t -> (setup * Bench.t) list -> (run, error) result list
(** Shard a job matrix across the session's domains.  Duplicate jobs run
    once and share their result; results come back in input order.
    Determinism guarantee: the runs and the session's merged context are
    byte-identical for every [jobs] setting, because each worker uses a
    private context, contexts merge in job order (never completion
    order), and the VM itself is deterministic.

    Containment guarantee: no exception escapes a worker — a crashing,
    hanging or injected-fault job is captured as a typed
    {!job_failure} (surfaced here as an [Error] and recorded in
    {!failures}), queued jobs still run, and every spawned domain is
    joined.  Only successful jobs' contexts are merged, so partial
    state from failed attempts can never skew the session metrics or
    the [-j] determinism. *)

(** {1 Classic per-call entry points} *)

val run_sources :
  ?obs:Mi_obs.Obs.t ->
  ?faults:Mi_faultkit.Fault.t ->
  ?budget:float ->
  setup ->
  Bench.source list ->
  run
(** Compile the translation units under [setup], link, execute — no
    session, no cache.  Pass [obs] to share one context across runs.
    [faults] applies the plan's check mutations and VM faults to this
    run; [budget] arms a wall-clock deadline (seconds) that raises
    {!Mi_faultkit.Fault.Job_timeout} when exceeded. *)

val run_benchmark : ?obs:Mi_obs.Obs.t -> setup -> Bench.t -> run
