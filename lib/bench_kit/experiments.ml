(** The paper's evaluation as a self-registering experiment registry.

    An {!t} declares a [name], a [descr]iption, the (setup x benchmark)
    [jobs] it needs, and a [reduce] that renders a {!report} from the
    completed runs.  The generic driver ({!run_reports}) gathers the
    jobs of every selected experiment, deduplicates them, shards them
    across a {!Harness.t} session's worker domains, and only then runs
    each [reduce] — so every experiment is parallel (and shares runs
    with its siblings, e.g. the baseline runs of Figures 9-13) for free,
    and adding an experiment is ~20 lines: build setups, list jobs,
    fold the runs into a table.

    Where the paper states reference values, reduces print them side by
    side (columns suffixed [(paper)]). *)

module Config = Mi_core.Config
module Pipeline = Mi_passes.Pipeline
module Table = Mi_support.Table
module Util = Mi_support.Util

(* The measured configuration of a registered approach (§5.2): the
   dominance optimization where the checker supports it (both paper
   approaches, at VectorizerStart), the plain basis otherwise (the
   temporal checker, where the elimination is unsound). *)
let opt_setup (approach : Config.approach) =
  let cfg = Config.of_approach approach in
  let cfg =
    if (Mi_core.Checker.find_exn approach).Mi_core.Checker.supports_dominance_opt
    then Config.optimized cfg
    else cfg
  in
  Harness.with_config cfg Harness.baseline

(* the basis configuration of appendix A.6 (no check elimination) — the
   §4.6 safety statistics are gathered with these *)
let full_setup (approach : Config.approach) =
  Harness.with_config (Config.of_approach approach) Harness.baseline

let sb_opt = opt_setup "softbound"
let lf_opt = opt_setup "lowfat"
let sb_full = full_setup "softbound"
let lf_full = full_setup "lowfat"

(* Every elimination pass the checker permits (dominance + static
   in-bounds + loop-invariant hoisting); the instrumenter masks the
   unsound ones per checker, so this is safe for any approach, but the
   checkelim experiment only reports approaches where at least one pass
   can fire. *)
let checkopt_setup (approach : Config.approach) =
  Harness.with_config
    (Config.optimized_full (Config.of_approach approach))
    Harness.baseline

(* approaches with at least one elimination pass enabled *)
let elim_capable () =
  List.filter
    (fun a ->
      let c = Mi_core.Checker.find_exn a in
      c.Mi_core.Checker.supports_dominance_opt
      || c.Mi_core.Checker.supports_static_opt
      || c.Mi_core.Checker.supports_hoist_opt)
    (Config.known_approaches ())

(* Counter namespace of each runtime ("sb.checks", "lf.checks_wide",
   "tp.checks", ...).  Kept alongside the display name used in table
   headers; both are pure renderings of the registry name. *)
let counter_prefix (approach : Config.approach) =
  match Config.approach_name approach with
  | "softbound" -> "sb"
  | "lowfat" -> "lf"
  | "temporal" -> "tp"
  | other -> invalid_arg ("Experiments: no counter prefix for " ^ other)

let display_name (approach : Config.approach) =
  match Config.approach_name approach with
  | "softbound" -> "SoftBound"
  | "lowfat" -> "Low-Fat"
  | "temporal" -> "Temporal"
  | other -> other

let fmt_x f = Printf.sprintf "%.2fx" f
let fmt_pct f = Printf.sprintf "%.2f" f

type series = { label : string; points : (string * float) list }

type report = { title : string; text : string; series : series list }

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type lookup = Harness.setup -> Bench.t -> Harness.run
(** Fetch one completed run by its job.  Inside {!run_reports} this is a
    table lookup into the already-executed job matrix (falling back to
    an on-demand run for jobs an experiment did not declare); it raises
    {!Harness.Benchmark_failed} when the job's compile phase failed. *)

type t = {
  name : string;
  aliases : string list;
  descr : string;
  jobs : Bench.t list -> (Harness.setup * Bench.t) list;
      (** every run the reduce will look up *)
  reduce : lookup -> Bench.t list -> report;
}

let registry : t list ref = ref []

let register (e : t) =
  if List.exists (fun x -> x.name = e.name) !registry then
    invalid_arg ("Experiments.register: duplicate " ^ e.name);
  registry := e :: !registry

let all () = List.rev !registry

let find name =
  let n = String.lowercase_ascii name in
  List.find_opt (fun e -> e.name = n || List.mem n e.aliases) (all ())

let known_names () = List.map (fun e -> e.name) (all ())

(** Wrap a lookup with the strict contract: raise
    {!Harness.Benchmark_failed} unless the run exited normally and
    matched its expected output.  Experiments that measure healthy runs
    (every figure/table) use this; ablations that expect violations use
    the plain lookup. *)
let strict (lookup : lookup) : lookup =
 fun setup b ->
  match Harness.check_run b (lookup setup b) with
  | Ok r -> r
  | Error e -> raise (Harness.Benchmark_failed (e.Harness.bench, e.Harness.reason))

(** The generic driver loop: gather every experiment's jobs, run the
    deduplicated matrix through the session ({!Harness.run_jobs}), then
    reduce sequentially.  Because the matrix is shared, experiments
    reuse each other's runs (one baseline run serves Figures 9-13), and
    because reduces see a completed table, report output is independent
    of the session's [jobs] setting. *)
let run_reports ?(benchmarks = Suite.all) ?(keep_going = false)
    (h : Harness.t) (exps : t list) : (string * report) list =
  let jobs = List.concat_map (fun e -> e.jobs benchmarks) exps in
  let results = Harness.run_jobs h jobs in
  let table = Hashtbl.create 256 in
  List.iter2
    (fun (s, (b : Bench.t)) r ->
      Hashtbl.replace table (Harness.setup_key s, b.name) r)
    jobs results;
  let lookup setup (b : Bench.t) =
    let res =
      match Hashtbl.find_opt table (Harness.setup_key setup, b.name) with
      | Some r -> r
      | None ->
          (* a reduce asked for an undeclared job: run it now, memoized *)
          let r = Harness.run h setup b in
          Hashtbl.replace table (Harness.setup_key setup, b.name) r;
          r
    in
    match res with
    | Ok r -> r
    | Error e ->
        raise (Harness.Benchmark_failed (e.Harness.bench, e.Harness.reason))
  in
  List.map
    (fun e ->
      let report =
        if not keep_going then e.reduce lookup benchmarks
        else
          (* graceful degradation: an experiment whose runs failed
             yields a stub report instead of aborting the other
             experiments — the failed jobs stay visible through the
             session's failure manifest *)
          try e.reduce lookup benchmarks
          with Harness.Benchmark_failed (bench, reason) ->
            {
              title = e.name ^ " (incomplete)";
              text =
                Printf.sprintf
                  "experiment skipped: benchmark %s failed: %s\n" bench
                  reason;
              series = [];
            }
      in
      (e.name, report))
    exps

(* ------------------------------------------------------------------ *)
(* Figure 9: execution-time comparison                                 *)
(* ------------------------------------------------------------------ *)

(* One column per registered checker, enumerated from the registry: a
   fourth approach gets a Figure 9 column by registering, not by
   editing this file. *)
let fig9_jobs benchmarks =
  let setups = List.map opt_setup (Config.known_approaches ()) in
  List.concat_map
    (fun b -> (Harness.baseline, b) :: List.map (fun s -> (s, b)) setups)
    benchmarks

let fig9_reduce lookup benchmarks : report =
  let run = strict lookup in
  let approaches = Config.known_approaches () in
  let tbl =
    Table.create
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) approaches @ [ Table.Right ])
      (("Benchmark" :: List.map display_name approaches) @ [ "baseline cycles" ])
  in
  let acc = List.map (fun a -> (a, ref [])) approaches in
  let pts = List.map (fun a -> (a, ref [])) approaches in
  List.iter
    (fun (b : Bench.t) ->
      let base = run Harness.baseline b in
      let cells =
        List.map
          (fun a ->
            let o = Harness.overhead ~baseline:base (run (opt_setup a) b) in
            (List.assoc a acc) := o :: !(List.assoc a acc);
            (List.assoc a pts) := (b.name, o) :: !(List.assoc a pts);
            fmt_x o)
          approaches
      in
      Table.add_row tbl ((b.name :: cells) @ [ string_of_int base.cycles ]))
    benchmarks;
  Table.add_row tbl
    (("geomean"
     :: List.map (fun a -> fmt_x (Util.geomean !(List.assoc a acc))) approaches)
    @ [ "" ]);
  Table.add_row tbl
    (("geomean (paper)"
     :: List.map
          (fun a ->
            match Config.approach_name a with
            | "softbound" -> fmt_x Paper_data.fig9_mean_sb
            | "lowfat" -> fmt_x Paper_data.fig9_mean_lf
            | _ -> "-")
          approaches)
    @ [ "" ]);
  {
    title = "Figure 9: Execution Time Comparison (normalized to -O3)";
    text = Table.render tbl;
    series =
      List.map
        (fun a ->
          { label = Config.approach_name a; points = List.rev !(List.assoc a pts) })
        approaches;
  }

(* ------------------------------------------------------------------ *)
(* Figures 10/11: optimized vs unoptimized vs metadata-only            *)
(* ------------------------------------------------------------------ *)

let opt_variant_setups (approach : Config.approach) =
  let base_cfg = Config.of_approach approach in
  [
    ("optimized", Harness.with_config (Config.optimized base_cfg) Harness.baseline);
    ("unoptimized", Harness.with_config base_cfg Harness.baseline);
    ("metadata", Harness.with_config (Config.metadata_only base_cfg) Harness.baseline);
  ]

let fig_opt_variants_jobs ~approach benchmarks =
  let setups = opt_variant_setups approach in
  List.concat_map
    (fun b ->
      (Harness.baseline, b) :: List.map (fun (_, s) -> (s, b)) setups)
    benchmarks

let fig_opt_variants_reduce ~title ~(approach : Config.approach) lookup
    benchmarks : report =
  let run = strict lookup in
  let setups = opt_variant_setups approach in
  let tbl =
    Table.create
      ~aligns:[ Table.Left; Right; Right; Right ]
      [ "Benchmark"; "optimized"; "unoptimized"; "metadata" ]
  in
  let acc = List.map (fun (l, _) -> (l, ref [])) setups in
  let pts = List.map (fun (l, _) -> (l, ref [])) setups in
  List.iter
    (fun (b : Bench.t) ->
      let base = run Harness.baseline b in
      let cells =
        List.map
          (fun (label, setup) ->
            let o = Harness.overhead ~baseline:base (run setup b) in
            (List.assoc label acc) := o :: !(List.assoc label acc);
            (List.assoc label pts) := (b.name, o) :: !(List.assoc label pts);
            fmt_x o)
          setups
      in
      Table.add_row tbl (b.name :: cells))
    benchmarks;
  Table.add_row tbl
    ("geomean"
    :: List.map (fun (l, _) -> fmt_x (Util.geomean !(List.assoc l acc))) setups);
  {
    title;
    text = Table.render tbl;
    series =
      List.map (fun (l, _) -> { label = l; points = List.rev !(List.assoc l pts) }) setups;
  }

let fig10_title =
  "Figure 10: SoftBound — optimized / unoptimized / metadata-only \
   overhead (normalized to -O3)"

let fig11_title =
  "Figure 11: Low-Fat Pointers — optimized / unoptimized / \
   metadata-only overhead (normalized to -O3)"

(* ------------------------------------------------------------------ *)
(* Figures 12/13: extension points                                     *)
(* ------------------------------------------------------------------ *)

let ep_setup (approach : Config.approach) ep =
  let cfg = Config.optimized (Config.of_approach approach) in
  { (Harness.with_config cfg Harness.baseline) with ep }

let fig_eps_jobs ~approach benchmarks =
  List.concat_map
    (fun b ->
      (Harness.baseline, b)
      :: List.map
           (fun ep -> (ep_setup approach ep, b))
           Pipeline.all_extension_points)
    benchmarks

let fig_eps_reduce ~title ~(approach : Config.approach) lookup benchmarks :
    report =
  let run = strict lookup in
  let eps = Pipeline.all_extension_points in
  let tbl =
    Table.create
      ~aligns:[ Table.Left; Right; Right; Right ]
      ("Benchmark" :: List.map Pipeline.ep_name eps)
  in
  let acc = List.map (fun ep -> (ep, ref [])) eps in
  let pts = List.map (fun ep -> (ep, ref [])) eps in
  List.iter
    (fun (b : Bench.t) ->
      let base = run Harness.baseline b in
      let cells =
        List.map
          (fun ep ->
            let o = Harness.overhead ~baseline:base (run (ep_setup approach ep) b) in
            (List.assoc ep acc) := o :: !(List.assoc ep acc);
            (List.assoc ep pts) := (b.name, o) :: !(List.assoc ep pts);
            fmt_x o)
          eps
      in
      Table.add_row tbl (b.name :: cells))
    benchmarks;
  Table.add_row tbl
    ("geomean"
    :: List.map (fun ep -> fmt_x (Util.geomean !(List.assoc ep acc))) eps);
  {
    title;
    text = Table.render tbl;
    series =
      List.map
        (fun ep ->
          { label = Pipeline.ep_name ep; points = List.rev !(List.assoc ep pts) })
        eps;
  }

let fig12_title =
  "Figure 12: Impact of Compiler Pipeline Extension Points on \
   SoftBound (normalized to -O3)"

let fig13_title =
  "Figure 13: Impact of Compiler Pipeline Extension Points on \
   Low-Fat Pointers (normalized to -O3)"

(* ------------------------------------------------------------------ *)
(* Table 2: unsafe (wide-bounds) dereferences                          *)
(* ------------------------------------------------------------------ *)

let wide_fraction (r : Harness.run) ~approach =
  let p = counter_prefix approach in
  Util.percent
    (Harness.counter r (p ^ ".checks_wide"))
    (Harness.counter r (p ^ ".checks"))

let star fraction wide_count =
  if wide_count = 0 then Printf.sprintf "%s*" (fmt_pct fraction)
  else fmt_pct fraction

let table2_jobs benchmarks =
  let setups = List.map full_setup (Config.known_approaches ()) in
  List.concat_map (fun b -> List.map (fun s -> (s, b)) setups) benchmarks

(* Paper reference cells exist only for the two paper approaches; every
   other registered checker renders "-" in its (paper) column. *)
let table2_paper_cell (b : Bench.t) approach =
  let cell get get_star =
    match List.assoc_opt b.Bench.name Paper_data.table2 with
    | None -> "-"
    | Some p -> (
        match get p with
        | None -> "n/a"
        | Some v ->
            if get_star p then Printf.sprintf "%.2f*" v
            else Printf.sprintf "%.2f" v)
  in
  match Config.approach_name approach with
  | "softbound" -> cell (fun p -> p.Paper_data.sb) (fun p -> p.Paper_data.sb_star)
  | "lowfat" -> cell (fun p -> p.Paper_data.lf) (fun p -> p.Paper_data.lf_star)
  | _ -> "-"

let table2_reduce lookup benchmarks : report =
  let run = strict lookup in
  let approaches = Config.known_approaches () in
  let short a = String.uppercase_ascii (counter_prefix a) in
  let tbl =
    Table.create
      ~aligns:
        (Table.Left
        :: List.concat_map (fun _ -> [ Table.Right; Table.Right ]) approaches)
      ("Benchmark"
      :: List.concat_map (fun a -> [ short a; short a ^ " (paper)" ]) approaches)
  in
  let pts = List.map (fun a -> (a, ref [])) approaches in
  List.iter
    (fun (b : Bench.t) ->
      let cells =
        List.concat_map
          (fun a ->
            let r = run (full_setup a) b in
            let f = wide_fraction r ~approach:a in
            (List.assoc a pts) := (b.name, f) :: !(List.assoc a pts);
            [
              star f (Harness.counter r (counter_prefix a ^ ".checks_wide"));
              table2_paper_cell b a;
            ])
          approaches
      in
      let name = if b.size_zero_arrays then b.name ^ " [sz0]" else b.name in
      Table.add_row tbl (name :: cells))
    benchmarks;
  (* raw wide-bounds counters ride along as extra series so machine
     consumers (--json) need not re-derive them from percentages *)
  let raw label key setup =
    {
      label;
      points =
        List.map
          (fun (b : Bench.t) ->
            (b.name, float_of_int (Harness.counter (run setup b) key)))
          benchmarks;
    }
  in
  {
    title =
      "Table 2: Unsafe (wide-bounds) dereferences in %. [sz0] marks \
       benchmarks with size-zero array declarations; * marks zero wide \
       checks.";
    text = Table.render tbl;
    series =
      List.map
        (fun a ->
          {
            label = counter_prefix a ^ "_wide_pct";
            points = List.rev !(List.assoc a pts);
          })
        approaches
      @ List.concat_map
          (fun a ->
            let p = counter_prefix a in
            [
              raw (p ^ "_checks_wide") (p ^ ".checks_wide") (full_setup a);
              raw (p ^ "_checks") (p ^ ".checks") (full_setup a);
            ])
          approaches;
  }

(* ------------------------------------------------------------------ *)
(* §5.3: checks removed by the dominance optimization                  *)
(* ------------------------------------------------------------------ *)

let optstats_jobs benchmarks = List.map (fun b -> (sb_opt, b)) benchmarks

let optstats_reduce lookup benchmarks : report =
  let run = strict lookup in
  let tbl =
    Table.create
      ~aligns:[ Table.Left; Right; Right; Right ]
      [ "Benchmark"; "checks found"; "removed"; "removed %" ]
  in
  let pts = ref [] in
  List.iter
    (fun (b : Bench.t) ->
      let sb = run sb_opt b in
      let found =
        List.fold_left
          (fun a (s : Mi_core.Instrument.mod_stats) ->
            a + s.total_checks_found)
          0 sb.static_stats
      in
      let removed =
        (* the dominance pass's own counter: [total_checks_removed] is
           the total over all three elimination passes and would
           over-report this §5.3 series the moment another pass is on *)
        List.fold_left
          (fun a (s : Mi_core.Instrument.mod_stats) ->
            a + s.total_checks_removed_dominance)
          0 sb.static_stats
      in
      let pct = Util.percent removed found in
      pts := (b.name, pct) :: !pts;
      Table.add_row tbl
        [ b.name; string_of_int found; string_of_int removed; fmt_pct pct ])
    benchmarks;
  {
    title =
      Printf.sprintf
        "§5.3: static checks removed by dominance-based elimination \
         (paper: %.0f%% on %s to %.0f%% on %s)"
        (fst Paper_data.opt_removed_min)
        (snd Paper_data.opt_removed_min)
        (fst Paper_data.opt_removed_max)
        (snd Paper_data.opt_removed_max);
    text = Table.render tbl;
    series = [ { label = "removed_pct"; points = List.rev !pts } ];
  }

(* ------------------------------------------------------------------ *)
(* Table 1: instrumentation locations (structural)                     *)
(* ------------------------------------------------------------------ *)

let table1 () : report =
  let tbl =
    Table.create [ "Instrumentation target"; "Task"; "SoftBound"; "Low-Fat Pointers" ]
  in
  List.iter
    (fun row -> Table.add_row tbl row)
    [
      [ "load / store"; "ensure safety"; "in-bounds check"; "in-bounds check" ];
      [
        "global / alloca / malloc";
        "record allocation";
        "determine size";
        "mirror or custom malloc";
      ];
      [ "phi / select on pointers"; "propagate"; "companion phi/select"; "companion phi/select" ];
      [ "gep"; "propagate"; "witness of source"; "witness of source" ];
      [
        "load of pointer";
        "rely on invariant";
        "load bounds from trie";
        "recompute base from value";
      ];
      [
        "call result / parameter";
        "rely on invariant";
        "load from shadow stack";
        "recompute base (assumes in-bounds)";
      ];
      [
        "store of pointer";
        "establish invariant";
        "store bounds to trie";
        "in-bounds (escape) check";
      ];
      [
        "call argument / return";
        "establish invariant";
        "store to shadow stack";
        "in-bounds (escape) check";
      ];
    ];
  {
    title = "Table 1: Locations for instrumentation (as implemented)";
    text = Table.render tbl;
    series = [];
  }

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out                   *)
(* ------------------------------------------------------------------ *)

(* Low-Fat protection scope: the stack [Duck & Yap NDSS'17] and global
   [arXiv'18] extensions cost little runtime but carry the coverage —
   disabling them floods the wide-bounds statistics. *)
let lf_scope_variants =
  [
    ("full", Config.lowfat);
    ("no-stack", { Config.lowfat with lf_stack = false });
    ("no-globals", { Config.lowfat with lf_globals = false });
    ( "heap-only",
      { Config.lowfat with lf_stack = false; lf_globals = false } );
  ]

let ablation_lf_jobs benchmarks =
  List.concat_map
    (fun b ->
      (Harness.baseline, b)
      :: List.map
           (fun (_, cfg) -> (Harness.with_config cfg Harness.baseline, b))
           lf_scope_variants)
    benchmarks

let ablation_lf_reduce lookup benchmarks : report =
  let run = strict lookup in
  let variants = lf_scope_variants in
  let tbl =
    Table.create
      ~aligns:[ Table.Left; Right; Right; Right; Right; Right; Right; Right; Right ]
      ("Benchmark"
      :: List.concat_map
           (fun (l, _) -> [ l ^ " ov"; l ^ " wide%" ])
           variants)
  in
  let pts = List.map (fun (l, _) -> (l, ref [])) variants in
  List.iter
    (fun (b : Bench.t) ->
      let base = run Harness.baseline b in
      let cells =
        List.concat_map
          (fun (label, cfg) ->
            let r = run (Harness.with_config cfg Harness.baseline) b in
            let ov = Harness.overhead ~baseline:base r in
            let w = wide_fraction r ~approach:"lowfat" in
            (List.assoc label pts) := (b.name, w) :: !(List.assoc label pts);
            [ fmt_x ov; fmt_pct w ])
          variants
      in
      Table.add_row tbl (b.name :: cells))
    benchmarks;
  {
    title =
      "Ablation: Low-Fat protection scope (stack/global mirroring) — \
       runtime overhead and wide-bounds fraction per variant";
    text = Table.render tbl;
    series =
      List.map
        (fun (l, _) -> { label = "wide_" ^ l; points = List.rev !(List.assoc l pts) })
        variants;
  }

(* SoftBound's policy for size-zero extern arrays (§4.3): wide upper
   bounds keep the programs running but unprotected; null bounds reject
   the first access — the "likely resulting in spurious violation
   reports" alternative. *)
let sb_sz0_null =
  Harness.with_config
    { Config.softbound with sb_size_zero_wide_upper = false }
    Harness.baseline

let sz0_benchmarks benchmarks =
  List.filter (fun (b : Bench.t) -> b.Bench.size_zero_arrays) benchmarks

let ablation_sz0_jobs benchmarks =
  List.concat_map
    (fun b -> [ (sb_full, b); (sb_sz0_null, b) ])
    (sz0_benchmarks benchmarks)

let ablation_sz0_reduce (lookup : lookup) benchmarks : report =
  let sz0 = sz0_benchmarks benchmarks in
  let tbl =
    Table.create
      ~aligns:[ Table.Left; Right; Right ]
      [ "Benchmark [sz0]"; "wide upper (default)"; "null bounds" ]
  in
  let outcome_cell (r : Harness.run) =
    match r.outcome with
    | Mi_vm.Interp.Exited _ -> "runs"
    | Mi_vm.Interp.Safety_violation _ -> "SPURIOUS VIOLATION"
    | Mi_vm.Interp.Trapped _ -> "trap"
    | Mi_vm.Interp.Exhausted _ -> "exhausted"
  in
  let spurious = ref 0 in
  List.iter
    (fun (b : Bench.t) ->
      (* violations are the expected data here: plain lookup, no strictness *)
      let wide = lookup sb_full b in
      let null = lookup sb_sz0_null b in
      (match null.outcome with
      | Mi_vm.Interp.Safety_violation _ -> incr spurious
      | _ -> ());
      Table.add_row tbl [ b.name; outcome_cell wide; outcome_cell null ])
    sz0;
  {
    title =
      Printf.sprintf
        "Ablation: SoftBound size-zero extern array policy (§4.3) — null \
         bounds spuriously reject %d of %d affected benchmarks"
        !spurious (List.length sz0);
    text = Table.render tbl;
    series = [];
  }

(* ------------------------------------------------------------------ *)
(* Hottest check sites (observability: per-site profile)               *)
(* ------------------------------------------------------------------ *)

(* Where does the modeled check time actually go?  Reuses the optimized
   runs of Figure 9: every {!Harness.run} carries the per-site profile. *)
let hotchecks_jobs benchmarks =
  let setups = List.map opt_setup (Config.known_approaches ()) in
  List.concat_map (fun b -> List.map (fun s -> (s, b)) setups) benchmarks

let hotchecks_reduce ?(n = 5) lookup benchmarks : report =
  let run = strict lookup in
  let approaches = Config.known_approaches () in
  let buf = Buffer.create 1024 in
  let pts = List.map (fun a -> (a, ref [])) approaches in
  List.iter
    (fun (b : Bench.t) ->
      List.iter
        (fun a ->
          let r = run (opt_setup a) b in
          (List.assoc a pts) :=
            (b.name, float_of_int (Mi_obs.Site.total_cycles r.Harness.profile))
            :: !(List.assoc a pts);
          Buffer.add_string buf
            (Printf.sprintf "-- %s / %s --\n%s\n" b.name
               (Config.approach_name a)
               (Mi_obs.Site.render ~n r.Harness.profile)))
        approaches)
    benchmarks;
  {
    title =
      Printf.sprintf
        "Hottest check sites: top %d instrumentation sites by modeled \
         check cycles, per benchmark and approach"
        n;
    text = Buffer.contents buf;
    series =
      List.map
        (fun a ->
          {
            label = counter_prefix a ^ "_check_cycles";
            points = List.rev !(List.assoc a pts);
          })
        approaches;
  }

(* ------------------------------------------------------------------ *)
(* Machine-readable report output                                      *)
(* ------------------------------------------------------------------ *)

module Json = Mi_obs.Json

let series_to_json (s : series) : Json.t =
  Json.Obj
    [
      ("label", Json.Str s.label);
      ( "points",
        Json.List
          (List.map
             (fun (name, v) ->
               Json.Obj [ ("name", Json.Str name); ("value", Json.Float v) ])
             s.points) );
    ]

let report_to_json (r : report) : Json.t =
  Json.Obj
    [
      ("title", Json.Str r.title);
      ("text", Json.Str r.text);
      ("series", Json.List (List.map series_to_json r.series));
    ]

let reports_to_json (rs : report list) : Json.t =
  Json.Obj [ ("reports", Json.List (List.map report_to_json rs)) ]

(* ------------------------------------------------------------------ *)
(* Mutation campaign: the security-guarantee gate                      *)
(* ------------------------------------------------------------------ *)

(* Runs its own corpus programs rather than the benchmark matrix: the
   mutants are per-check deletions judged by the safety corpus.  A
   survivor is a guarantee hole, so the reduce raises — under
   [--keep-going] that degrades to an incomplete report, but the CI
   gate runs it strictly. *)
let mutation_reduce _lookup _benchmarks : report =
  let c = Mutation.run ~sample_per_approach:25 () in
  if c.Mutation.survived > 0 then
    raise
      (Harness.Benchmark_failed
         ( "mutation",
           Printf.sprintf
             "%d of %d check-deletion mutants survived the safety corpus"
             c.Mutation.survived c.Mutation.total ));
  {
    title =
      "Mutation campaign: check-deletion mutants vs the safety corpus";
    text = Mutation.render c;
    series =
      [
        {
          label = "mutants";
          points =
            [
              ("total", float_of_int c.Mutation.total);
              ("killed", float_of_int c.Mutation.killed);
              ("whitelisted", float_of_int c.Mutation.whitelisted);
              ("survived", float_of_int c.Mutation.survived);
            ];
        };
      ];
  }

(* ------------------------------------------------------------------ *)
(* checkelim: static + profile-guided check elimination                *)
(* ------------------------------------------------------------------ *)

(* Three runs per (benchmark x approach): the uninstrumented baseline,
   the unoptimized basis, and the fully-optimized configuration.  The
   static side comes from the instrumenter's per-pass counters; the
   dynamic side joins the per-check-site profiles (hit counts and
   modeled check cycles) of the unoptimized vs optimized runs — the
   profile-guided report the elimination work is judged by. *)
let checkelim_jobs benchmarks =
  let approaches = elim_capable () in
  List.concat_map
    (fun b ->
      (Harness.baseline, b)
      :: List.concat_map
           (fun a -> [ (full_setup a, b); (checkopt_setup a, b) ])
           approaches)
    benchmarks

let checkelim_reduce lookup benchmarks : report =
  let run = strict lookup in
  let approaches = elim_capable () in
  let tbl =
    Table.create
      ~aligns:
        [
          Table.Left; Left; Right; Right; Right; Right; Right; Right; Right;
          Right;
        ]
      [
        "Benchmark"; "Approach"; "checks found"; "removed (d/s/h)"; "static %";
        "dyn checks"; "dyn removed %"; "cyc saved %"; "ov unopt"; "ov opt";
      ]
  in
  let mk () = List.map (fun a -> (a, ref [])) approaches in
  let static_pts = mk () in
  let dyn_pts = mk () in
  let cyc_pts = mk () in
  let ov_unopt_pts = mk () in
  let ov_opt_pts = mk () in
  let push pts a name v = (List.assoc a pts) := (name, v) :: !(List.assoc a pts) in
  List.iter
    (fun (b : Bench.t) ->
      let base = run Harness.baseline b in
      List.iter
        (fun a ->
          let unopt = run (full_setup a) b in
          let opt = run (checkopt_setup a) b in
          let sum f =
            List.fold_left
              (fun acc (s : Mi_core.Instrument.mod_stats) -> acc + f s)
              0 opt.Harness.static_stats
          in
          let found = sum (fun s -> s.total_checks_found) in
          let rd = sum (fun s -> s.total_checks_removed_dominance) in
          let rs = sum (fun s -> s.total_checks_removed_static) in
          let rh = sum (fun s -> s.total_checks_removed_hoisted) in
          let removed = rd + rs + rh in
          let static_pct = Util.percent removed found in
          let p = counter_prefix a in
          let dyn_unopt = Harness.counter unopt (p ^ ".checks") in
          let dyn_opt = Harness.counter opt (p ^ ".checks") in
          let dyn_pct = Util.percent (dyn_unopt - dyn_opt) dyn_unopt in
          let cyc_unopt = Mi_obs.Site.total_cycles unopt.Harness.profile in
          let cyc_opt = Mi_obs.Site.total_cycles opt.Harness.profile in
          let cyc_pct = Util.percent (cyc_unopt - cyc_opt) cyc_unopt in
          let ov_unopt = Harness.overhead ~baseline:base unopt in
          let ov_opt = Harness.overhead ~baseline:base opt in
          push static_pts a b.name static_pct;
          push dyn_pts a b.name dyn_pct;
          push cyc_pts a b.name cyc_pct;
          push ov_unopt_pts a b.name ov_unopt;
          push ov_opt_pts a b.name ov_opt;
          Table.add_row tbl
            [
              b.name;
              display_name a;
              string_of_int found;
              Printf.sprintf "%d/%d/%d" rd rs rh;
              fmt_pct static_pct;
              Printf.sprintf "%d->%d" dyn_unopt dyn_opt;
              fmt_pct dyn_pct;
              fmt_pct cyc_pct;
              fmt_x ov_unopt;
              fmt_x ov_opt;
            ])
        approaches)
    benchmarks;
  let ser pts suffix =
    List.map
      (fun a ->
        {
          label = counter_prefix a ^ suffix;
          points = List.rev !(List.assoc a pts);
        })
      approaches
  in
  {
    title =
      "Check elimination: dominance + static in-bounds + loop-invariant \
       hoisting — static checks removed (d/s/h = per pass), dynamic \
       (profile-weighted) checks removed, and modeled check-cycle \
       savings vs the unoptimized basis";
    text = Table.render tbl;
    series =
      ser static_pts "_static_removed_pct"
      @ ser dyn_pts "_dynamic_removed_pct"
      @ ser cyc_pts "_check_cycles_saved_pct"
      @ ser ov_unopt_pts "_overhead_unopt_x"
      @ ser ov_opt_pts "_overhead_opt_x";
  }

(* ------------------------------------------------------------------ *)
(* mutation-opt: soundness gate over the optimized configurations      *)
(* ------------------------------------------------------------------ *)

(* The corpus setup with every elimination pass requested (the checker
   capability veto still masks the unsound ones), at the corpus's O1
   level — mirrors {!Safety_corpus.setup}. *)
let checkopt_corpus_setup (approach : Config.approach) : Harness.setup =
  {
    (Harness.with_config
       (Config.optimized_full (Config.of_approach approach))
       Harness.baseline)
    with
    level = Mi_passes.Pipeline.O1;
  }

(* Dominance + hoisting but no static prover: under the full config the
   static pass deletes {e every} check of the in-bounds corpus probe for
   the spatial checkers, leaving them no ordinals to mutate — vacuously
   sound.  This setup keeps the checks (possibly as hoisted preheader
   checks, which carry ordinals like any other), so the campaign
   exercises check deletion under the optimizer for every approach. *)
let hoistdom_corpus_setup (approach : Config.approach) : Harness.setup =
  let cfg = Config.of_approach approach in
  {
    (Harness.with_config
       { cfg with Config.opt_dominance = true; opt_hoist = true }
       Harness.baseline)
    with
    level = Mi_passes.Pipeline.O1;
  }

(* Two soundness obligations, both fatal on failure: (1) elimination
   must never flip a corpus case's violation verdict against the
   unoptimized basis (a flipped Clean->Violation is a widening false
   positive; Violation->Clean is a deleted load-bearing check); (2) the
   check-deletion campaign re-run over the optimized configurations —
   every check elimination {e keeps} must still be load-bearing, so a
   survivor there is a guarantee hole in the optimized pipeline. *)
let mutation_opt_reduce _lookup _benchmarks : report =
  let mismatches = ref [] in
  let cases = ref 0 in
  List.iter
    (fun a ->
      List.iter
        (fun (fam : Safety_corpus.family) ->
          List.iter
            (fun kind ->
              incr cases;
              let verdict setup_of =
                Mutation.verdict_of_outcome
                  (Mutation.run_case ~setup_of a fam kind).Harness.outcome
              in
              let plain = verdict Safety_corpus.setup in
              let opt = verdict checkopt_corpus_setup in
              if Mutation.is_violation plain <> Mutation.is_violation opt then
                mismatches :=
                  Printf.sprintf "%s/%s/%s"
                    (Config.approach_name a)
                    (Safety_corpus.family_name fam)
                    (Safety_corpus.kind_name kind)
                  :: !mismatches)
            (Safety_corpus.all_kinds
            @ Safety_corpus.temporal_kinds_for fam.Safety_corpus.fam_region))
        Safety_corpus.families)
    (elim_capable ());
  if !mismatches <> [] then
    raise
      (Harness.Benchmark_failed
         ( "mutation-opt",
           Printf.sprintf
             "check elimination changed the violation verdict of %d corpus \
              case(s): %s"
             (List.length !mismatches)
             (String.concat ", " (List.rev !mismatches)) ));
  (* campaign 1: full elimination.  The static prover deletes every
     spatial check of the in-bounds probe, so only checkers that kept
     checks (the temporal one, which vetoes the passes) contribute
     mutants — the spatial half of the soundness story is the verdict
     equivalence above plus campaign 2. *)
  let campaign label setup_of =
    let c = Mutation.run ~sample_per_approach:25 ~setup_of () in
    if c.Mutation.survived > 0 then
      raise
        (Harness.Benchmark_failed
           ( "mutation-opt",
             Printf.sprintf
               "%d of %d check-deletion mutants survived the safety corpus \
                under the %s configurations"
               c.Mutation.survived c.Mutation.total label ));
    c
  in
  let c_full = campaign "fully-optimized" checkopt_corpus_setup in
  (* campaign 2: dominance + hoisting only — every approach keeps its
     checks (spatial ones possibly hoisted into the preheader), so
     deleting any of them, hoisted included, must flip a corpus kind. *)
  let c_hd = campaign "dominance+hoist" hoistdom_corpus_setup in
  let mutant_series label (c : Mutation.campaign) =
    {
      label;
      points =
        [
          ("total", float_of_int c.Mutation.total);
          ("killed", float_of_int c.Mutation.killed);
          ("whitelisted", float_of_int c.Mutation.whitelisted);
          ("survived", float_of_int c.Mutation.survived);
        ];
    }
  in
  {
    title =
      "Mutation campaign over optimized configs: verdict equivalence + \
       check-deletion mutants vs the safety corpus";
    text =
      Printf.sprintf
        "verdict equivalence: %d corpus cases, optimized vs unoptimized, 0 \
         mismatches\n\n\
         campaign 1 — every elimination pass (spatial probes fully \
         eliminated, so spatial pools are empty by construction):\n\
         %s\n\
         campaign 2 — dominance + hoisting (checks survive, hoisted ones \
         included, and every deletion must be noticed):\n\
         %s"
        !cases (Mutation.render c_full) (Mutation.render c_hd);
    series =
      [
        {
          label = "equivalence";
          points =
            [
              ("cases", float_of_int !cases);
              ("mismatches", float_of_int (List.length !mismatches));
            ];
        };
        mutant_series "mutants_full" c_full;
        mutant_series "mutants_hoistdom" c_hd;
      ];
  }

(* ------------------------------------------------------------------ *)
(* Registrations                                                       *)
(* ------------------------------------------------------------------ *)

let () =
  List.iter register
    [
      {
        name = "table1";
        aliases = [ "t1" ];
        descr = "instrumentation locations (structural)";
        jobs = (fun _ -> []);
        reduce = (fun _ _ -> table1 ());
      };
      {
        name = "fig9";
        aliases = [ "f9" ];
        descr = "execution-time comparison, SB vs LF";
        jobs = fig9_jobs;
        reduce = fig9_reduce;
      };
      {
        name = "fig10";
        aliases = [ "f10" ];
        descr = "SoftBound optimized/unoptimized/metadata overhead";
        jobs = fig_opt_variants_jobs ~approach:"softbound";
        reduce =
          fig_opt_variants_reduce ~title:fig10_title
            ~approach:"softbound";
      };
      {
        name = "fig11";
        aliases = [ "f11" ];
        descr = "Low-Fat optimized/unoptimized/metadata overhead";
        jobs = fig_opt_variants_jobs ~approach:"lowfat";
        reduce =
          fig_opt_variants_reduce ~title:fig11_title ~approach:"lowfat";
      };
      {
        name = "fig12";
        aliases = [ "f12" ];
        descr = "extension-point impact on SoftBound";
        jobs = fig_eps_jobs ~approach:"softbound";
        reduce =
          fig_eps_reduce ~title:fig12_title ~approach:"softbound";
      };
      {
        name = "fig13";
        aliases = [ "f13" ];
        descr = "extension-point impact on Low-Fat";
        jobs = fig_eps_jobs ~approach:"lowfat";
        reduce = fig_eps_reduce ~title:fig13_title ~approach:"lowfat";
      };
      {
        name = "table2";
        aliases = [ "t2" ];
        descr = "unsafe (wide-bounds) dereference fractions";
        jobs = table2_jobs;
        reduce = table2_reduce;
      };
      {
        name = "optstats";
        aliases = [];
        descr = "static checks removed by dominance elimination (§5.3)";
        jobs = optstats_jobs;
        reduce = optstats_reduce;
      };
      {
        name = "ablation-lf";
        aliases = [];
        descr = "Low-Fat protection-scope ablation";
        jobs = ablation_lf_jobs;
        reduce = ablation_lf_reduce;
      };
      {
        name = "ablation-sz0";
        aliases = [];
        descr = "SoftBound size-zero extern array policy ablation";
        jobs = ablation_sz0_jobs;
        reduce = ablation_sz0_reduce;
      };
      {
        name = "hotchecks";
        aliases = [];
        descr = "hottest instrumentation sites by modeled check cycles";
        jobs = hotchecks_jobs;
        reduce = (fun lookup benchmarks -> hotchecks_reduce lookup benchmarks);
      };
      {
        name = "mutation";
        aliases = [ "mutants" ];
        descr = "check-deletion mutation campaign vs the safety corpus";
        jobs = (fun _ -> []);
        reduce = mutation_reduce;
      };
      {
        name = "checkelim";
        aliases = [ "elim" ];
        descr =
          "static + profile-guided check elimination (dominance, static \
           in-bounds, loop hoisting)";
        jobs = checkelim_jobs;
        reduce = checkelim_reduce;
      };
      {
        name = "mutation-opt";
        aliases = [ "mutants-opt" ];
        descr =
          "soundness gate: verdict equivalence + mutation campaign over \
           optimized configs";
        jobs = (fun _ -> []);
        reduce = mutation_opt_reduce;
      };
    ]

(** Every registered report, regenerated through a fresh session with
    the default worker pool — the convenience the bench harness and the
    [--all] driver path share. *)
let all_reports ?(jobs = Harness.default_jobs ()) ?benchmarks () :
    report list =
  let h = Harness.create ~jobs () in
  List.map snd (run_reports ?benchmarks h (all ()))
