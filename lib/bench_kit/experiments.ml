(** The paper's evaluation, experiment by experiment.

    Every public function regenerates one table or figure of the paper and
    returns the rendered text plus the raw series, so both the
    [experiments] binary and the Bechamel harness can reuse them.  Where
    the paper states reference values, they are printed side by side
    (columns suffixed [(paper)]). *)

module Config = Mi_core.Config
module Pipeline = Mi_passes.Pipeline
module Table = Mi_support.Table
module Util = Mi_support.Util

(* ------------------------------------------------------------------ *)
(* Shared run cache                                                    *)
(* ------------------------------------------------------------------ *)

(* Experiments share runs (e.g. Table 2 reuses Figure 9's SB/LF full
   runs); cache them per (benchmark, setup) within a process. *)

let cache : (string, Harness.run) Hashtbl.t = Hashtbl.create 64

let setup_key (s : Harness.setup) =
  Printf.sprintf "%s/%s/%s/%b"
    (match s.config with None -> "base" | Some c -> Config.to_string c)
    (match s.level with Pipeline.O0 -> "O0" | O1 -> "O1" | O3 -> "O3")
    (Pipeline.ep_name s.ep) s.lowering.Mi_minic.Lower.ptr_mem_as_i64

let run (setup : Harness.setup) (b : Bench.t) : Harness.run =
  let key = b.name ^ "@" ^ setup_key setup in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
      let r = Harness.run_benchmark_exn setup b in
      Hashtbl.add cache key r;
      r

let clear_cache () = Hashtbl.reset cache

(* The paper's measured configurations (§5.2): both approaches with the
   dominance optimization, inserted at VectorizerStart. *)
let sb_opt = Harness.with_config (Config.optimized Config.softbound) Harness.baseline
let lf_opt = Harness.with_config (Config.optimized Config.lowfat) Harness.baseline

(* the basis configurations of appendix A.6 (no check elimination) — the
   §4.6 safety statistics are gathered with these *)
let sb_full = Harness.with_config Config.softbound Harness.baseline
let lf_full = Harness.with_config Config.lowfat Harness.baseline

let fmt_x f = Printf.sprintf "%.2fx" f
let fmt_pct f = Printf.sprintf "%.2f" f

type series = { label : string; points : (string * float) list }

type report = { title : string; text : string; series : series list }

(* ------------------------------------------------------------------ *)
(* Figure 9: execution-time comparison                                 *)
(* ------------------------------------------------------------------ *)

let fig9 ?(benchmarks = Suite.all) () : report =
  let tbl =
    Table.create
      ~aligns:[ Table.Left; Right; Right; Right ]
      [ "Benchmark"; "SoftBound"; "Low-Fat"; "baseline cycles" ]
  in
  let sbs = ref [] and lfs = ref [] in
  let pts_sb = ref [] and pts_lf = ref [] in
  List.iter
    (fun (b : Bench.t) ->
      let base = run Harness.baseline b in
      let sb = run sb_opt b in
      let lf = run lf_opt b in
      let osb = Harness.overhead ~baseline:base sb in
      let olf = Harness.overhead ~baseline:base lf in
      sbs := osb :: !sbs;
      lfs := olf :: !lfs;
      pts_sb := (b.name, osb) :: !pts_sb;
      pts_lf := (b.name, olf) :: !pts_lf;
      Table.add_row tbl
        [ b.name; fmt_x osb; fmt_x olf; string_of_int base.cycles ])
    benchmarks;
  let mean_sb = Util.geomean !sbs and mean_lf = Util.geomean !lfs in
  Table.add_row tbl [ "geomean"; fmt_x mean_sb; fmt_x mean_lf; "" ];
  Table.add_row tbl
    [
      "geomean (paper)";
      fmt_x Paper_data.fig9_mean_sb;
      fmt_x Paper_data.fig9_mean_lf;
      "";
    ];
  {
    title = "Figure 9: Execution Time Comparison (normalized to -O3)";
    text = Table.render tbl;
    series =
      [
        { label = "softbound"; points = List.rev !pts_sb };
        { label = "lowfat"; points = List.rev !pts_lf };
      ];
  }

(* ------------------------------------------------------------------ *)
(* Figures 10/11: optimized vs unoptimized vs metadata-only            *)
(* ------------------------------------------------------------------ *)

let fig_opt_variants ~title ~(approach : Config.approach)
    ?(benchmarks = Suite.all) () : report =
  let base_cfg = Config.of_approach approach in
  let setups =
    [
      ("optimized", Harness.with_config (Config.optimized base_cfg) Harness.baseline);
      ("unoptimized", Harness.with_config base_cfg Harness.baseline);
      ("metadata", Harness.with_config (Config.metadata_only base_cfg) Harness.baseline);
    ]
  in
  let tbl =
    Table.create
      ~aligns:[ Table.Left; Right; Right; Right ]
      [ "Benchmark"; "optimized"; "unoptimized"; "metadata" ]
  in
  let acc = List.map (fun (l, _) -> (l, ref [])) setups in
  let pts = List.map (fun (l, _) -> (l, ref [])) setups in
  List.iter
    (fun (b : Bench.t) ->
      let base = run Harness.baseline b in
      let cells =
        List.map
          (fun (label, setup) ->
            let o = Harness.overhead ~baseline:base (run setup b) in
            (List.assoc label acc) := o :: !(List.assoc label acc);
            (List.assoc label pts) := (b.name, o) :: !(List.assoc label pts);
            fmt_x o)
          setups
      in
      Table.add_row tbl (b.name :: cells))
    benchmarks;
  Table.add_row tbl
    ("geomean"
    :: List.map (fun (l, _) -> fmt_x (Util.geomean !(List.assoc l acc))) setups);
  {
    title;
    text = Table.render tbl;
    series =
      List.map (fun (l, _) -> { label = l; points = List.rev !(List.assoc l pts) }) setups;
  }

let fig10 ?benchmarks () =
  fig_opt_variants
    ~title:
      "Figure 10: SoftBound — optimized / unoptimized / metadata-only \
       overhead (normalized to -O3)"
    ~approach:Config.Softbound ?benchmarks ()

let fig11 ?benchmarks () =
  fig_opt_variants
    ~title:
      "Figure 11: Low-Fat Pointers — optimized / unoptimized / \
       metadata-only overhead (normalized to -O3)"
    ~approach:Config.Lowfat ?benchmarks ()

(* ------------------------------------------------------------------ *)
(* Figures 12/13: extension points                                     *)
(* ------------------------------------------------------------------ *)

let fig_eps ~title ~(approach : Config.approach) ?(benchmarks = Suite.all) ()
    : report =
  let cfg = Config.optimized (Config.of_approach approach) in
  let eps = Pipeline.all_extension_points in
  let tbl =
    Table.create
      ~aligns:[ Table.Left; Right; Right; Right ]
      ("Benchmark" :: List.map Pipeline.ep_name eps)
  in
  let acc = List.map (fun ep -> (ep, ref [])) eps in
  let pts = List.map (fun ep -> (ep, ref [])) eps in
  List.iter
    (fun (b : Bench.t) ->
      let base = run Harness.baseline b in
      let cells =
        List.map
          (fun ep ->
            let setup = { (Harness.with_config cfg Harness.baseline) with ep } in
            let o = Harness.overhead ~baseline:base (run setup b) in
            (List.assoc ep acc) := o :: !(List.assoc ep acc);
            (List.assoc ep pts) := (b.name, o) :: !(List.assoc ep pts);
            fmt_x o)
          eps
      in
      Table.add_row tbl (b.name :: cells))
    benchmarks;
  Table.add_row tbl
    ("geomean"
    :: List.map (fun ep -> fmt_x (Util.geomean !(List.assoc ep acc))) eps);
  {
    title;
    text = Table.render tbl;
    series =
      List.map
        (fun ep ->
          { label = Pipeline.ep_name ep; points = List.rev !(List.assoc ep pts) })
        eps;
  }

let fig12 ?benchmarks () =
  fig_eps
    ~title:
      "Figure 12: Impact of Compiler Pipeline Extension Points on \
       SoftBound (normalized to -O3)"
    ~approach:Config.Softbound ?benchmarks ()

let fig13 ?benchmarks () =
  fig_eps
    ~title:
      "Figure 13: Impact of Compiler Pipeline Extension Points on \
       Low-Fat Pointers (normalized to -O3)"
    ~approach:Config.Lowfat ?benchmarks ()

(* ------------------------------------------------------------------ *)
(* Table 2: unsafe (wide-bounds) dereferences                          *)
(* ------------------------------------------------------------------ *)

let wide_fraction (r : Harness.run) ~approach =
  match (approach : Config.approach) with
  | Config.Softbound ->
      Util.percent (Harness.counter r "sb.checks_wide")
        (Harness.counter r "sb.checks")
  | Config.Lowfat ->
      Util.percent (Harness.counter r "lf.checks_wide")
        (Harness.counter r "lf.checks")

let star fraction wide_count =
  if wide_count = 0 then Printf.sprintf "%s*" (fmt_pct fraction)
  else fmt_pct fraction

let table2 ?(benchmarks = Suite.all) () : report =
  let tbl =
    Table.create
      ~aligns:[ Table.Left; Right; Right; Right; Right ]
      [ "Benchmark"; "SB"; "SB (paper)"; "LF"; "LF (paper)" ]
  in
  let pts_sb = ref [] and pts_lf = ref [] in
  List.iter
    (fun (b : Bench.t) ->
      let sb = run sb_full b in
      let lf = run lf_full b in
      let fsb = wide_fraction sb ~approach:Config.Softbound in
      let flf = wide_fraction lf ~approach:Config.Lowfat in
      pts_sb := (b.name, fsb) :: !pts_sb;
      pts_lf := (b.name, flf) :: !pts_lf;
      let paper =
        List.assoc_opt b.name Paper_data.table2
      in
      let paper_cell get get_star =
        match paper with
        | None -> "-"
        | Some p -> (
            match get p with
            | None -> "n/a"
            | Some v ->
                if get_star p then Printf.sprintf "%.2f*" v
                else Printf.sprintf "%.2f" v)
      in
      let name = if b.size_zero_arrays then b.name ^ " [sz0]" else b.name in
      Table.add_row tbl
        [
          name;
          star fsb (Harness.counter sb "sb.checks_wide");
          paper_cell (fun p -> p.Paper_data.sb) (fun p -> p.Paper_data.sb_star);
          star flf (Harness.counter lf "lf.checks_wide");
          paper_cell (fun p -> p.Paper_data.lf) (fun p -> p.Paper_data.lf_star);
        ])
    benchmarks;
  (* raw wide-bounds counters ride along as extra series so machine
     consumers (--json) need not re-derive them from percentages *)
  let raw label key setup =
    {
      label;
      points =
        List.map
          (fun (b : Bench.t) ->
            (b.name, float_of_int (Harness.counter (run setup b) key)))
          benchmarks;
    }
  in
  {
    title =
      "Table 2: Unsafe (wide-bounds) dereferences in %. [sz0] marks \
       benchmarks with size-zero array declarations; * marks zero wide \
       checks.";
    text = Table.render tbl;
    series =
      [
        { label = "sb_wide_pct"; points = List.rev !pts_sb };
        { label = "lf_wide_pct"; points = List.rev !pts_lf };
        raw "sb_checks_wide" "sb.checks_wide" sb_full;
        raw "sb_checks" "sb.checks" sb_full;
        raw "lf_checks_wide" "lf.checks_wide" lf_full;
        raw "lf_checks" "lf.checks" lf_full;
      ];
  }

(* ------------------------------------------------------------------ *)
(* §5.3: checks removed by the dominance optimization                  *)
(* ------------------------------------------------------------------ *)

let optstats ?(benchmarks = Suite.all) () : report =
  let tbl =
    Table.create
      ~aligns:[ Table.Left; Right; Right; Right ]
      [ "Benchmark"; "checks found"; "removed"; "removed %" ]
  in
  let pts = ref [] in
  List.iter
    (fun (b : Bench.t) ->
      let sb = run sb_opt b in
      let found =
        List.fold_left
          (fun a (s : Mi_core.Instrument.mod_stats) ->
            a + s.total_checks_found)
          0 sb.static_stats
      in
      let removed =
        List.fold_left
          (fun a (s : Mi_core.Instrument.mod_stats) ->
            a + s.total_checks_removed)
          0 sb.static_stats
      in
      let pct = Util.percent removed found in
      pts := (b.name, pct) :: !pts;
      Table.add_row tbl
        [ b.name; string_of_int found; string_of_int removed; fmt_pct pct ])
    benchmarks;
  {
    title =
      Printf.sprintf
        "§5.3: static checks removed by dominance-based elimination \
         (paper: %.0f%% on %s to %.0f%% on %s)"
        (fst Paper_data.opt_removed_min)
        (snd Paper_data.opt_removed_min)
        (fst Paper_data.opt_removed_max)
        (snd Paper_data.opt_removed_max);
    text = Table.render tbl;
    series = [ { label = "removed_pct"; points = List.rev !pts } ];
  }

(* ------------------------------------------------------------------ *)
(* Table 1: instrumentation locations (structural)                     *)
(* ------------------------------------------------------------------ *)

let table1 () : report =
  let tbl =
    Table.create [ "Instrumentation target"; "Task"; "SoftBound"; "Low-Fat Pointers" ]
  in
  List.iter
    (fun row -> Table.add_row tbl row)
    [
      [ "load / store"; "ensure safety"; "in-bounds check"; "in-bounds check" ];
      [
        "global / alloca / malloc";
        "record allocation";
        "determine size";
        "mirror or custom malloc";
      ];
      [ "phi / select on pointers"; "propagate"; "companion phi/select"; "companion phi/select" ];
      [ "gep"; "propagate"; "witness of source"; "witness of source" ];
      [
        "load of pointer";
        "rely on invariant";
        "load bounds from trie";
        "recompute base from value";
      ];
      [
        "call result / parameter";
        "rely on invariant";
        "load from shadow stack";
        "recompute base (assumes in-bounds)";
      ];
      [
        "store of pointer";
        "establish invariant";
        "store bounds to trie";
        "in-bounds (escape) check";
      ];
      [
        "call argument / return";
        "establish invariant";
        "store to shadow stack";
        "in-bounds (escape) check";
      ];
    ];
  {
    title = "Table 1: Locations for instrumentation (as implemented)";
    text = Table.render tbl;
    series = [];
  }

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out                   *)
(* ------------------------------------------------------------------ *)

(* Low-Fat protection scope: the stack [Duck & Yap NDSS'17] and global
   [arXiv'18] extensions cost little runtime but carry the coverage —
   disabling them floods the wide-bounds statistics. *)
let ablation_lf ?(benchmarks = Suite.all) () : report =
  let variants =
    [
      ("full", Config.lowfat);
      ("no-stack", { Config.lowfat with lf_stack = false });
      ("no-globals", { Config.lowfat with lf_globals = false });
      ( "heap-only",
        { Config.lowfat with lf_stack = false; lf_globals = false } );
    ]
  in
  let tbl =
    Table.create
      ~aligns:[ Table.Left; Right; Right; Right; Right; Right; Right; Right; Right ]
      ("Benchmark"
      :: List.concat_map
           (fun (l, _) -> [ l ^ " ov"; l ^ " wide%" ])
           variants)
  in
  let pts = List.map (fun (l, _) -> (l, ref [])) variants in
  List.iter
    (fun (b : Bench.t) ->
      let base = run Harness.baseline b in
      let cells =
        List.concat_map
          (fun (label, cfg) ->
            let r = run (Harness.with_config cfg Harness.baseline) b in
            let ov = Harness.overhead ~baseline:base r in
            let w = wide_fraction r ~approach:Config.Lowfat in
            (List.assoc label pts) := (b.name, w) :: !(List.assoc label pts);
            [ fmt_x ov; fmt_pct w ])
          variants
      in
      Table.add_row tbl (b.name :: cells))
    benchmarks;
  {
    title =
      "Ablation: Low-Fat protection scope (stack/global mirroring) — \
       runtime overhead and wide-bounds fraction per variant";
    text = Table.render tbl;
    series =
      List.map
        (fun (l, _) -> { label = "wide_" ^ l; points = List.rev !(List.assoc l pts) })
        variants;
  }

(* SoftBound's policy for size-zero extern arrays (§4.3): wide upper
   bounds keep the programs running but unprotected; null bounds reject
   the first access — the "likely resulting in spurious violation
   reports" alternative. *)
let ablation_sb_sizezero ?(benchmarks = Suite.all) () : report =
  let sz0 = List.filter (fun (b : Bench.t) -> b.size_zero_arrays) benchmarks in
  let tbl =
    Table.create
      ~aligns:[ Table.Left; Right; Right ]
      [ "Benchmark [sz0]"; "wide upper (default)"; "null bounds" ]
  in
  let outcome_cell (r : Harness.run) =
    match r.outcome with
    | Mi_vm.Interp.Exited _ -> "runs"
    | Mi_vm.Interp.Safety_violation _ -> "SPURIOUS VIOLATION"
    | Mi_vm.Interp.Trapped _ -> "trap"
  in
  let spurious = ref 0 in
  List.iter
    (fun (b : Bench.t) ->
      let wide = Harness.run_benchmark sb_full b in
      let null_cfg =
        { Config.softbound with sb_size_zero_wide_upper = false }
      in
      let null = Harness.run_benchmark (Harness.with_config null_cfg Harness.baseline) b in
      (match null.outcome with
      | Mi_vm.Interp.Safety_violation _ -> incr spurious
      | _ -> ());
      Table.add_row tbl [ b.name; outcome_cell wide; outcome_cell null ])
    sz0;
  {
    title =
      Printf.sprintf
        "Ablation: SoftBound size-zero extern array policy (§4.3) — null \
         bounds spuriously reject %d of %d affected benchmarks"
        !spurious (List.length sz0);
    text = Table.render tbl;
    series = [];
  }

(* ------------------------------------------------------------------ *)
(* Hottest check sites (observability: per-site profile)               *)
(* ------------------------------------------------------------------ *)

(* Where does the modeled check time actually go?  Reuses the cached
   optimized runs: every {!Harness.run} carries the per-site profile. *)
let hotchecks ?(benchmarks = Suite.all) ?(n = 5) () : report =
  let buf = Buffer.create 1024 in
  let pts_sb = ref [] and pts_lf = ref [] in
  List.iter
    (fun (b : Bench.t) ->
      List.iter
        (fun (label, setup, pts) ->
          let r = run setup b in
          pts :=
            (b.name, float_of_int (Mi_obs.Site.total_cycles r.Harness.profile))
            :: !pts;
          Buffer.add_string buf
            (Printf.sprintf "-- %s / %s --\n%s\n" b.name label
               (Mi_obs.Site.render ~n r.Harness.profile)))
        [ ("softbound", sb_opt, pts_sb); ("lowfat", lf_opt, pts_lf) ])
    benchmarks;
  {
    title =
      Printf.sprintf
        "Hottest check sites: top %d instrumentation sites by modeled \
         check cycles, per benchmark and approach"
        n;
    text = Buffer.contents buf;
    series =
      [
        { label = "sb_check_cycles"; points = List.rev !pts_sb };
        { label = "lf_check_cycles"; points = List.rev !pts_lf };
      ];
  }

(* ------------------------------------------------------------------ *)
(* Machine-readable report output                                      *)
(* ------------------------------------------------------------------ *)

module Json = Mi_obs.Json

let series_to_json (s : series) : Json.t =
  Json.Obj
    [
      ("label", Json.Str s.label);
      ( "points",
        Json.List
          (List.map
             (fun (name, v) ->
               Json.Obj [ ("name", Json.Str name); ("value", Json.Float v) ])
             s.points) );
    ]

let report_to_json (r : report) : Json.t =
  Json.Obj
    [
      ("title", Json.Str r.title);
      ("text", Json.Str r.text);
      ("series", Json.List (List.map series_to_json r.series));
    ]

let reports_to_json (rs : report list) : Json.t =
  Json.Obj [ ("reports", Json.List (List.map report_to_json rs)) ]

let all_reports ?benchmarks () : report list =
  [
    table1 ();
    fig9 ?benchmarks ();
    fig10 ?benchmarks ();
    fig11 ?benchmarks ();
    fig12 ?benchmarks ();
    fig13 ?benchmarks ();
    table2 ?benchmarks ();
    optstats ?benchmarks ();
    ablation_lf ?benchmarks ();
    ablation_sb_sizezero ?benchmarks ();
    hotchecks ?benchmarks ();
  ]

let by_name name : (?benchmarks:Bench.t list -> unit -> report) option =
  match String.lowercase_ascii name with
  | "table1" | "t1" -> Some (fun ?benchmarks () -> ignore benchmarks; table1 ())
  | "fig9" | "f9" -> Some (fun ?benchmarks () -> fig9 ?benchmarks ())
  | "fig10" | "f10" -> Some (fun ?benchmarks () -> fig10 ?benchmarks ())
  | "fig11" | "f11" -> Some (fun ?benchmarks () -> fig11 ?benchmarks ())
  | "fig12" | "f12" -> Some (fun ?benchmarks () -> fig12 ?benchmarks ())
  | "fig13" | "f13" -> Some (fun ?benchmarks () -> fig13 ?benchmarks ())
  | "table2" | "t2" -> Some (fun ?benchmarks () -> table2 ?benchmarks ())
  | "optstats" -> Some (fun ?benchmarks () -> optstats ?benchmarks ())
  | "ablation-lf" -> Some (fun ?benchmarks () -> ablation_lf ?benchmarks ())
  | "ablation-sz0" ->
      Some (fun ?benchmarks () -> ablation_sb_sizezero ?benchmarks ())
  | "hotchecks" -> Some (fun ?benchmarks () -> hotchecks ?benchmarks ())
  | _ -> None

let known_names =
  [
    "table1"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13"; "table2";
    "optstats"; "ablation-lf"; "ablation-sz0"; "hotchecks";
  ]

