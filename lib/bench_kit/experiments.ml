(** The paper's evaluation as a self-registering experiment registry.

    An {!t} declares a [name], a [descr]iption, the (setup x benchmark)
    [jobs] it needs, and a [reduce] that renders a {!report} from the
    completed runs.  The generic driver ({!run_reports}) gathers the
    jobs of every selected experiment, deduplicates them, shards them
    across a {!Harness.t} session's worker domains, and only then runs
    each [reduce] — so every experiment is parallel (and shares runs
    with its siblings, e.g. the baseline runs of Figures 9-13) for free,
    and adding an experiment is ~20 lines: build setups, list jobs,
    fold the runs into a table.

    Where the paper states reference values, reduces print them side by
    side (columns suffixed [(paper)]). *)

module Config = Mi_core.Config
module Pipeline = Mi_passes.Pipeline
module Table = Mi_support.Table
module Util = Mi_support.Util

(* The paper's measured configurations (§5.2): both approaches with the
   dominance optimization, inserted at VectorizerStart. *)
let sb_opt = Harness.with_config (Config.optimized Config.softbound) Harness.baseline
let lf_opt = Harness.with_config (Config.optimized Config.lowfat) Harness.baseline

(* the basis configurations of appendix A.6 (no check elimination) — the
   §4.6 safety statistics are gathered with these *)
let sb_full = Harness.with_config Config.softbound Harness.baseline
let lf_full = Harness.with_config Config.lowfat Harness.baseline

let fmt_x f = Printf.sprintf "%.2fx" f
let fmt_pct f = Printf.sprintf "%.2f" f

type series = { label : string; points : (string * float) list }

type report = { title : string; text : string; series : series list }

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type lookup = Harness.setup -> Bench.t -> Harness.run
(** Fetch one completed run by its job.  Inside {!run_reports} this is a
    table lookup into the already-executed job matrix (falling back to
    an on-demand run for jobs an experiment did not declare); it raises
    {!Harness.Benchmark_failed} when the job's compile phase failed. *)

type t = {
  name : string;
  aliases : string list;
  descr : string;
  jobs : Bench.t list -> (Harness.setup * Bench.t) list;
      (** every run the reduce will look up *)
  reduce : lookup -> Bench.t list -> report;
}

let registry : t list ref = ref []

let register (e : t) =
  if List.exists (fun x -> x.name = e.name) !registry then
    invalid_arg ("Experiments.register: duplicate " ^ e.name);
  registry := e :: !registry

let all () = List.rev !registry

let find name =
  let n = String.lowercase_ascii name in
  List.find_opt (fun e -> e.name = n || List.mem n e.aliases) (all ())

let known_names () = List.map (fun e -> e.name) (all ())

(** Wrap a lookup with the strict contract: raise
    {!Harness.Benchmark_failed} unless the run exited normally and
    matched its expected output.  Experiments that measure healthy runs
    (every figure/table) use this; ablations that expect violations use
    the plain lookup. *)
let strict (lookup : lookup) : lookup =
 fun setup b ->
  match Harness.check_run b (lookup setup b) with
  | Ok r -> r
  | Error e -> raise (Harness.Benchmark_failed (e.Harness.bench, e.Harness.reason))

(** The generic driver loop: gather every experiment's jobs, run the
    deduplicated matrix through the session ({!Harness.run_jobs}), then
    reduce sequentially.  Because the matrix is shared, experiments
    reuse each other's runs (one baseline run serves Figures 9-13), and
    because reduces see a completed table, report output is independent
    of the session's [jobs] setting. *)
let run_reports ?(benchmarks = Suite.all) ?(keep_going = false)
    (h : Harness.t) (exps : t list) : (string * report) list =
  let jobs = List.concat_map (fun e -> e.jobs benchmarks) exps in
  let results = Harness.run_jobs h jobs in
  let table = Hashtbl.create 256 in
  List.iter2
    (fun (s, (b : Bench.t)) r ->
      Hashtbl.replace table (Harness.setup_key s, b.name) r)
    jobs results;
  let lookup setup (b : Bench.t) =
    let res =
      match Hashtbl.find_opt table (Harness.setup_key setup, b.name) with
      | Some r -> r
      | None ->
          (* a reduce asked for an undeclared job: run it now, memoized *)
          let r = Harness.run h setup b in
          Hashtbl.replace table (Harness.setup_key setup, b.name) r;
          r
    in
    match res with
    | Ok r -> r
    | Error e ->
        raise (Harness.Benchmark_failed (e.Harness.bench, e.Harness.reason))
  in
  List.map
    (fun e ->
      let report =
        if not keep_going then e.reduce lookup benchmarks
        else
          (* graceful degradation: an experiment whose runs failed
             yields a stub report instead of aborting the other
             experiments — the failed jobs stay visible through the
             session's failure manifest *)
          try e.reduce lookup benchmarks
          with Harness.Benchmark_failed (bench, reason) ->
            {
              title = e.name ^ " (incomplete)";
              text =
                Printf.sprintf
                  "experiment skipped: benchmark %s failed: %s\n" bench
                  reason;
              series = [];
            }
      in
      (e.name, report))
    exps

(* ------------------------------------------------------------------ *)
(* Figure 9: execution-time comparison                                 *)
(* ------------------------------------------------------------------ *)

let fig9_jobs benchmarks =
  List.concat_map
    (fun b -> [ (Harness.baseline, b); (sb_opt, b); (lf_opt, b) ])
    benchmarks

let fig9_reduce lookup benchmarks : report =
  let run = strict lookup in
  let tbl =
    Table.create
      ~aligns:[ Table.Left; Right; Right; Right ]
      [ "Benchmark"; "SoftBound"; "Low-Fat"; "baseline cycles" ]
  in
  let sbs = ref [] and lfs = ref [] in
  let pts_sb = ref [] and pts_lf = ref [] in
  List.iter
    (fun (b : Bench.t) ->
      let base = run Harness.baseline b in
      let sb = run sb_opt b in
      let lf = run lf_opt b in
      let osb = Harness.overhead ~baseline:base sb in
      let olf = Harness.overhead ~baseline:base lf in
      sbs := osb :: !sbs;
      lfs := olf :: !lfs;
      pts_sb := (b.name, osb) :: !pts_sb;
      pts_lf := (b.name, olf) :: !pts_lf;
      Table.add_row tbl
        [ b.name; fmt_x osb; fmt_x olf; string_of_int base.cycles ])
    benchmarks;
  let mean_sb = Util.geomean !sbs and mean_lf = Util.geomean !lfs in
  Table.add_row tbl [ "geomean"; fmt_x mean_sb; fmt_x mean_lf; "" ];
  Table.add_row tbl
    [
      "geomean (paper)";
      fmt_x Paper_data.fig9_mean_sb;
      fmt_x Paper_data.fig9_mean_lf;
      "";
    ];
  {
    title = "Figure 9: Execution Time Comparison (normalized to -O3)";
    text = Table.render tbl;
    series =
      [
        { label = "softbound"; points = List.rev !pts_sb };
        { label = "lowfat"; points = List.rev !pts_lf };
      ];
  }

(* ------------------------------------------------------------------ *)
(* Figures 10/11: optimized vs unoptimized vs metadata-only            *)
(* ------------------------------------------------------------------ *)

let opt_variant_setups (approach : Config.approach) =
  let base_cfg = Config.of_approach approach in
  [
    ("optimized", Harness.with_config (Config.optimized base_cfg) Harness.baseline);
    ("unoptimized", Harness.with_config base_cfg Harness.baseline);
    ("metadata", Harness.with_config (Config.metadata_only base_cfg) Harness.baseline);
  ]

let fig_opt_variants_jobs ~approach benchmarks =
  let setups = opt_variant_setups approach in
  List.concat_map
    (fun b ->
      (Harness.baseline, b) :: List.map (fun (_, s) -> (s, b)) setups)
    benchmarks

let fig_opt_variants_reduce ~title ~(approach : Config.approach) lookup
    benchmarks : report =
  let run = strict lookup in
  let setups = opt_variant_setups approach in
  let tbl =
    Table.create
      ~aligns:[ Table.Left; Right; Right; Right ]
      [ "Benchmark"; "optimized"; "unoptimized"; "metadata" ]
  in
  let acc = List.map (fun (l, _) -> (l, ref [])) setups in
  let pts = List.map (fun (l, _) -> (l, ref [])) setups in
  List.iter
    (fun (b : Bench.t) ->
      let base = run Harness.baseline b in
      let cells =
        List.map
          (fun (label, setup) ->
            let o = Harness.overhead ~baseline:base (run setup b) in
            (List.assoc label acc) := o :: !(List.assoc label acc);
            (List.assoc label pts) := (b.name, o) :: !(List.assoc label pts);
            fmt_x o)
          setups
      in
      Table.add_row tbl (b.name :: cells))
    benchmarks;
  Table.add_row tbl
    ("geomean"
    :: List.map (fun (l, _) -> fmt_x (Util.geomean !(List.assoc l acc))) setups);
  {
    title;
    text = Table.render tbl;
    series =
      List.map (fun (l, _) -> { label = l; points = List.rev !(List.assoc l pts) }) setups;
  }

let fig10_title =
  "Figure 10: SoftBound — optimized / unoptimized / metadata-only \
   overhead (normalized to -O3)"

let fig11_title =
  "Figure 11: Low-Fat Pointers — optimized / unoptimized / \
   metadata-only overhead (normalized to -O3)"

(* ------------------------------------------------------------------ *)
(* Figures 12/13: extension points                                     *)
(* ------------------------------------------------------------------ *)

let ep_setup (approach : Config.approach) ep =
  let cfg = Config.optimized (Config.of_approach approach) in
  { (Harness.with_config cfg Harness.baseline) with ep }

let fig_eps_jobs ~approach benchmarks =
  List.concat_map
    (fun b ->
      (Harness.baseline, b)
      :: List.map
           (fun ep -> (ep_setup approach ep, b))
           Pipeline.all_extension_points)
    benchmarks

let fig_eps_reduce ~title ~(approach : Config.approach) lookup benchmarks :
    report =
  let run = strict lookup in
  let eps = Pipeline.all_extension_points in
  let tbl =
    Table.create
      ~aligns:[ Table.Left; Right; Right; Right ]
      ("Benchmark" :: List.map Pipeline.ep_name eps)
  in
  let acc = List.map (fun ep -> (ep, ref [])) eps in
  let pts = List.map (fun ep -> (ep, ref [])) eps in
  List.iter
    (fun (b : Bench.t) ->
      let base = run Harness.baseline b in
      let cells =
        List.map
          (fun ep ->
            let o = Harness.overhead ~baseline:base (run (ep_setup approach ep) b) in
            (List.assoc ep acc) := o :: !(List.assoc ep acc);
            (List.assoc ep pts) := (b.name, o) :: !(List.assoc ep pts);
            fmt_x o)
          eps
      in
      Table.add_row tbl (b.name :: cells))
    benchmarks;
  Table.add_row tbl
    ("geomean"
    :: List.map (fun ep -> fmt_x (Util.geomean !(List.assoc ep acc))) eps);
  {
    title;
    text = Table.render tbl;
    series =
      List.map
        (fun ep ->
          { label = Pipeline.ep_name ep; points = List.rev !(List.assoc ep pts) })
        eps;
  }

let fig12_title =
  "Figure 12: Impact of Compiler Pipeline Extension Points on \
   SoftBound (normalized to -O3)"

let fig13_title =
  "Figure 13: Impact of Compiler Pipeline Extension Points on \
   Low-Fat Pointers (normalized to -O3)"

(* ------------------------------------------------------------------ *)
(* Table 2: unsafe (wide-bounds) dereferences                          *)
(* ------------------------------------------------------------------ *)

let wide_fraction (r : Harness.run) ~approach =
  match (approach : Config.approach) with
  | Config.Softbound ->
      Util.percent (Harness.counter r "sb.checks_wide")
        (Harness.counter r "sb.checks")
  | Config.Lowfat ->
      Util.percent (Harness.counter r "lf.checks_wide")
        (Harness.counter r "lf.checks")

let star fraction wide_count =
  if wide_count = 0 then Printf.sprintf "%s*" (fmt_pct fraction)
  else fmt_pct fraction

let table2_jobs benchmarks =
  List.concat_map (fun b -> [ (sb_full, b); (lf_full, b) ]) benchmarks

let table2_reduce lookup benchmarks : report =
  let run = strict lookup in
  let tbl =
    Table.create
      ~aligns:[ Table.Left; Right; Right; Right; Right ]
      [ "Benchmark"; "SB"; "SB (paper)"; "LF"; "LF (paper)" ]
  in
  let pts_sb = ref [] and pts_lf = ref [] in
  List.iter
    (fun (b : Bench.t) ->
      let sb = run sb_full b in
      let lf = run lf_full b in
      let fsb = wide_fraction sb ~approach:Config.Softbound in
      let flf = wide_fraction lf ~approach:Config.Lowfat in
      pts_sb := (b.name, fsb) :: !pts_sb;
      pts_lf := (b.name, flf) :: !pts_lf;
      let paper =
        List.assoc_opt b.name Paper_data.table2
      in
      let paper_cell get get_star =
        match paper with
        | None -> "-"
        | Some p -> (
            match get p with
            | None -> "n/a"
            | Some v ->
                if get_star p then Printf.sprintf "%.2f*" v
                else Printf.sprintf "%.2f" v)
      in
      let name = if b.size_zero_arrays then b.name ^ " [sz0]" else b.name in
      Table.add_row tbl
        [
          name;
          star fsb (Harness.counter sb "sb.checks_wide");
          paper_cell (fun p -> p.Paper_data.sb) (fun p -> p.Paper_data.sb_star);
          star flf (Harness.counter lf "lf.checks_wide");
          paper_cell (fun p -> p.Paper_data.lf) (fun p -> p.Paper_data.lf_star);
        ])
    benchmarks;
  (* raw wide-bounds counters ride along as extra series so machine
     consumers (--json) need not re-derive them from percentages *)
  let raw label key setup =
    {
      label;
      points =
        List.map
          (fun (b : Bench.t) ->
            (b.name, float_of_int (Harness.counter (run setup b) key)))
          benchmarks;
    }
  in
  {
    title =
      "Table 2: Unsafe (wide-bounds) dereferences in %. [sz0] marks \
       benchmarks with size-zero array declarations; * marks zero wide \
       checks.";
    text = Table.render tbl;
    series =
      [
        { label = "sb_wide_pct"; points = List.rev !pts_sb };
        { label = "lf_wide_pct"; points = List.rev !pts_lf };
        raw "sb_checks_wide" "sb.checks_wide" sb_full;
        raw "sb_checks" "sb.checks" sb_full;
        raw "lf_checks_wide" "lf.checks_wide" lf_full;
        raw "lf_checks" "lf.checks" lf_full;
      ];
  }

(* ------------------------------------------------------------------ *)
(* §5.3: checks removed by the dominance optimization                  *)
(* ------------------------------------------------------------------ *)

let optstats_jobs benchmarks = List.map (fun b -> (sb_opt, b)) benchmarks

let optstats_reduce lookup benchmarks : report =
  let run = strict lookup in
  let tbl =
    Table.create
      ~aligns:[ Table.Left; Right; Right; Right ]
      [ "Benchmark"; "checks found"; "removed"; "removed %" ]
  in
  let pts = ref [] in
  List.iter
    (fun (b : Bench.t) ->
      let sb = run sb_opt b in
      let found =
        List.fold_left
          (fun a (s : Mi_core.Instrument.mod_stats) ->
            a + s.total_checks_found)
          0 sb.static_stats
      in
      let removed =
        List.fold_left
          (fun a (s : Mi_core.Instrument.mod_stats) ->
            a + s.total_checks_removed)
          0 sb.static_stats
      in
      let pct = Util.percent removed found in
      pts := (b.name, pct) :: !pts;
      Table.add_row tbl
        [ b.name; string_of_int found; string_of_int removed; fmt_pct pct ])
    benchmarks;
  {
    title =
      Printf.sprintf
        "§5.3: static checks removed by dominance-based elimination \
         (paper: %.0f%% on %s to %.0f%% on %s)"
        (fst Paper_data.opt_removed_min)
        (snd Paper_data.opt_removed_min)
        (fst Paper_data.opt_removed_max)
        (snd Paper_data.opt_removed_max);
    text = Table.render tbl;
    series = [ { label = "removed_pct"; points = List.rev !pts } ];
  }

(* ------------------------------------------------------------------ *)
(* Table 1: instrumentation locations (structural)                     *)
(* ------------------------------------------------------------------ *)

let table1 () : report =
  let tbl =
    Table.create [ "Instrumentation target"; "Task"; "SoftBound"; "Low-Fat Pointers" ]
  in
  List.iter
    (fun row -> Table.add_row tbl row)
    [
      [ "load / store"; "ensure safety"; "in-bounds check"; "in-bounds check" ];
      [
        "global / alloca / malloc";
        "record allocation";
        "determine size";
        "mirror or custom malloc";
      ];
      [ "phi / select on pointers"; "propagate"; "companion phi/select"; "companion phi/select" ];
      [ "gep"; "propagate"; "witness of source"; "witness of source" ];
      [
        "load of pointer";
        "rely on invariant";
        "load bounds from trie";
        "recompute base from value";
      ];
      [
        "call result / parameter";
        "rely on invariant";
        "load from shadow stack";
        "recompute base (assumes in-bounds)";
      ];
      [
        "store of pointer";
        "establish invariant";
        "store bounds to trie";
        "in-bounds (escape) check";
      ];
      [
        "call argument / return";
        "establish invariant";
        "store to shadow stack";
        "in-bounds (escape) check";
      ];
    ];
  {
    title = "Table 1: Locations for instrumentation (as implemented)";
    text = Table.render tbl;
    series = [];
  }

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out                   *)
(* ------------------------------------------------------------------ *)

(* Low-Fat protection scope: the stack [Duck & Yap NDSS'17] and global
   [arXiv'18] extensions cost little runtime but carry the coverage —
   disabling them floods the wide-bounds statistics. *)
let lf_scope_variants =
  [
    ("full", Config.lowfat);
    ("no-stack", { Config.lowfat with lf_stack = false });
    ("no-globals", { Config.lowfat with lf_globals = false });
    ( "heap-only",
      { Config.lowfat with lf_stack = false; lf_globals = false } );
  ]

let ablation_lf_jobs benchmarks =
  List.concat_map
    (fun b ->
      (Harness.baseline, b)
      :: List.map
           (fun (_, cfg) -> (Harness.with_config cfg Harness.baseline, b))
           lf_scope_variants)
    benchmarks

let ablation_lf_reduce lookup benchmarks : report =
  let run = strict lookup in
  let variants = lf_scope_variants in
  let tbl =
    Table.create
      ~aligns:[ Table.Left; Right; Right; Right; Right; Right; Right; Right; Right ]
      ("Benchmark"
      :: List.concat_map
           (fun (l, _) -> [ l ^ " ov"; l ^ " wide%" ])
           variants)
  in
  let pts = List.map (fun (l, _) -> (l, ref [])) variants in
  List.iter
    (fun (b : Bench.t) ->
      let base = run Harness.baseline b in
      let cells =
        List.concat_map
          (fun (label, cfg) ->
            let r = run (Harness.with_config cfg Harness.baseline) b in
            let ov = Harness.overhead ~baseline:base r in
            let w = wide_fraction r ~approach:Config.Lowfat in
            (List.assoc label pts) := (b.name, w) :: !(List.assoc label pts);
            [ fmt_x ov; fmt_pct w ])
          variants
      in
      Table.add_row tbl (b.name :: cells))
    benchmarks;
  {
    title =
      "Ablation: Low-Fat protection scope (stack/global mirroring) — \
       runtime overhead and wide-bounds fraction per variant";
    text = Table.render tbl;
    series =
      List.map
        (fun (l, _) -> { label = "wide_" ^ l; points = List.rev !(List.assoc l pts) })
        variants;
  }

(* SoftBound's policy for size-zero extern arrays (§4.3): wide upper
   bounds keep the programs running but unprotected; null bounds reject
   the first access — the "likely resulting in spurious violation
   reports" alternative. *)
let sb_sz0_null =
  Harness.with_config
    { Config.softbound with sb_size_zero_wide_upper = false }
    Harness.baseline

let sz0_benchmarks benchmarks =
  List.filter (fun (b : Bench.t) -> b.Bench.size_zero_arrays) benchmarks

let ablation_sz0_jobs benchmarks =
  List.concat_map
    (fun b -> [ (sb_full, b); (sb_sz0_null, b) ])
    (sz0_benchmarks benchmarks)

let ablation_sz0_reduce (lookup : lookup) benchmarks : report =
  let sz0 = sz0_benchmarks benchmarks in
  let tbl =
    Table.create
      ~aligns:[ Table.Left; Right; Right ]
      [ "Benchmark [sz0]"; "wide upper (default)"; "null bounds" ]
  in
  let outcome_cell (r : Harness.run) =
    match r.outcome with
    | Mi_vm.Interp.Exited _ -> "runs"
    | Mi_vm.Interp.Safety_violation _ -> "SPURIOUS VIOLATION"
    | Mi_vm.Interp.Trapped _ -> "trap"
    | Mi_vm.Interp.Exhausted _ -> "exhausted"
  in
  let spurious = ref 0 in
  List.iter
    (fun (b : Bench.t) ->
      (* violations are the expected data here: plain lookup, no strictness *)
      let wide = lookup sb_full b in
      let null = lookup sb_sz0_null b in
      (match null.outcome with
      | Mi_vm.Interp.Safety_violation _ -> incr spurious
      | _ -> ());
      Table.add_row tbl [ b.name; outcome_cell wide; outcome_cell null ])
    sz0;
  {
    title =
      Printf.sprintf
        "Ablation: SoftBound size-zero extern array policy (§4.3) — null \
         bounds spuriously reject %d of %d affected benchmarks"
        !spurious (List.length sz0);
    text = Table.render tbl;
    series = [];
  }

(* ------------------------------------------------------------------ *)
(* Hottest check sites (observability: per-site profile)               *)
(* ------------------------------------------------------------------ *)

(* Where does the modeled check time actually go?  Reuses the optimized
   runs of Figure 9: every {!Harness.run} carries the per-site profile. *)
let hotchecks_jobs benchmarks =
  List.concat_map (fun b -> [ (sb_opt, b); (lf_opt, b) ]) benchmarks

let hotchecks_reduce ?(n = 5) lookup benchmarks : report =
  let run = strict lookup in
  let buf = Buffer.create 1024 in
  let pts_sb = ref [] and pts_lf = ref [] in
  List.iter
    (fun (b : Bench.t) ->
      List.iter
        (fun (label, setup, pts) ->
          let r = run setup b in
          pts :=
            (b.name, float_of_int (Mi_obs.Site.total_cycles r.Harness.profile))
            :: !pts;
          Buffer.add_string buf
            (Printf.sprintf "-- %s / %s --\n%s\n" b.name label
               (Mi_obs.Site.render ~n r.Harness.profile)))
        [ ("softbound", sb_opt, pts_sb); ("lowfat", lf_opt, pts_lf) ])
    benchmarks;
  {
    title =
      Printf.sprintf
        "Hottest check sites: top %d instrumentation sites by modeled \
         check cycles, per benchmark and approach"
        n;
    text = Buffer.contents buf;
    series =
      [
        { label = "sb_check_cycles"; points = List.rev !pts_sb };
        { label = "lf_check_cycles"; points = List.rev !pts_lf };
      ];
  }

(* ------------------------------------------------------------------ *)
(* Machine-readable report output                                      *)
(* ------------------------------------------------------------------ *)

module Json = Mi_obs.Json

let series_to_json (s : series) : Json.t =
  Json.Obj
    [
      ("label", Json.Str s.label);
      ( "points",
        Json.List
          (List.map
             (fun (name, v) ->
               Json.Obj [ ("name", Json.Str name); ("value", Json.Float v) ])
             s.points) );
    ]

let report_to_json (r : report) : Json.t =
  Json.Obj
    [
      ("title", Json.Str r.title);
      ("text", Json.Str r.text);
      ("series", Json.List (List.map series_to_json r.series));
    ]

let reports_to_json (rs : report list) : Json.t =
  Json.Obj [ ("reports", Json.List (List.map report_to_json rs)) ]

(* ------------------------------------------------------------------ *)
(* Mutation campaign: the security-guarantee gate                      *)
(* ------------------------------------------------------------------ *)

(* Runs its own corpus programs rather than the benchmark matrix: the
   mutants are per-check deletions judged by the safety corpus.  A
   survivor is a guarantee hole, so the reduce raises — under
   [--keep-going] that degrades to an incomplete report, but the CI
   gate runs it strictly. *)
let mutation_reduce _lookup _benchmarks : report =
  let c = Mutation.run ~sample_per_approach:25 () in
  if c.Mutation.survived > 0 then
    raise
      (Harness.Benchmark_failed
         ( "mutation",
           Printf.sprintf
             "%d of %d check-deletion mutants survived the safety corpus"
             c.Mutation.survived c.Mutation.total ));
  {
    title =
      "Mutation campaign: check-deletion mutants vs the safety corpus";
    text = Mutation.render c;
    series =
      [
        {
          label = "mutants";
          points =
            [
              ("total", float_of_int c.Mutation.total);
              ("killed", float_of_int c.Mutation.killed);
              ("whitelisted", float_of_int c.Mutation.whitelisted);
              ("survived", float_of_int c.Mutation.survived);
            ];
        };
      ];
  }

(* ------------------------------------------------------------------ *)
(* Registrations                                                       *)
(* ------------------------------------------------------------------ *)

let () =
  List.iter register
    [
      {
        name = "table1";
        aliases = [ "t1" ];
        descr = "instrumentation locations (structural)";
        jobs = (fun _ -> []);
        reduce = (fun _ _ -> table1 ());
      };
      {
        name = "fig9";
        aliases = [ "f9" ];
        descr = "execution-time comparison, SB vs LF";
        jobs = fig9_jobs;
        reduce = fig9_reduce;
      };
      {
        name = "fig10";
        aliases = [ "f10" ];
        descr = "SoftBound optimized/unoptimized/metadata overhead";
        jobs = fig_opt_variants_jobs ~approach:Config.Softbound;
        reduce =
          fig_opt_variants_reduce ~title:fig10_title
            ~approach:Config.Softbound;
      };
      {
        name = "fig11";
        aliases = [ "f11" ];
        descr = "Low-Fat optimized/unoptimized/metadata overhead";
        jobs = fig_opt_variants_jobs ~approach:Config.Lowfat;
        reduce =
          fig_opt_variants_reduce ~title:fig11_title ~approach:Config.Lowfat;
      };
      {
        name = "fig12";
        aliases = [ "f12" ];
        descr = "extension-point impact on SoftBound";
        jobs = fig_eps_jobs ~approach:Config.Softbound;
        reduce =
          fig_eps_reduce ~title:fig12_title ~approach:Config.Softbound;
      };
      {
        name = "fig13";
        aliases = [ "f13" ];
        descr = "extension-point impact on Low-Fat";
        jobs = fig_eps_jobs ~approach:Config.Lowfat;
        reduce = fig_eps_reduce ~title:fig13_title ~approach:Config.Lowfat;
      };
      {
        name = "table2";
        aliases = [ "t2" ];
        descr = "unsafe (wide-bounds) dereference fractions";
        jobs = table2_jobs;
        reduce = table2_reduce;
      };
      {
        name = "optstats";
        aliases = [];
        descr = "static checks removed by dominance elimination (§5.3)";
        jobs = optstats_jobs;
        reduce = optstats_reduce;
      };
      {
        name = "ablation-lf";
        aliases = [];
        descr = "Low-Fat protection-scope ablation";
        jobs = ablation_lf_jobs;
        reduce = ablation_lf_reduce;
      };
      {
        name = "ablation-sz0";
        aliases = [];
        descr = "SoftBound size-zero extern array policy ablation";
        jobs = ablation_sz0_jobs;
        reduce = ablation_sz0_reduce;
      };
      {
        name = "hotchecks";
        aliases = [];
        descr = "hottest instrumentation sites by modeled check cycles";
        jobs = hotchecks_jobs;
        reduce = (fun lookup benchmarks -> hotchecks_reduce lookup benchmarks);
      };
      {
        name = "mutation";
        aliases = [ "mutants" ];
        descr = "check-deletion mutation campaign vs the safety corpus";
        jobs = (fun _ -> []);
        reduce = mutation_reduce;
      };
    ]

(** Every registered report, regenerated through a fresh session with
    the default worker pool — the convenience the bench harness and the
    [--all] driver path share. *)
let all_reports ?(jobs = Harness.default_jobs ()) ?benchmarks () :
    report list =
  let h = Harness.create ~jobs () in
  List.map snd (run_reports ?benchmarks h (all ()))
