(** The artifact-style safety corpus (appendix A.5) as a library: small
    generated programs with heap, stack, and global out-of-bounds reads
    and writes, each with an oracle for the expected verdict of both
    instrumentations.

    [test_safety_corpus] runs every case against its oracle; the
    mutation engine ({!Mutation}) reuses the same programs as the
    killing test suite for check-deletion mutants.  The corpus is
    structured so that {e every} access check the instrumenter places in
    a generated [main] is the reporting check of at least one kind:

    - the body access is the reporting site of the classic kinds
      ([Just_past], [Past_class], underflows, ...);
    - [Init_oob] drives the {e init-loop store} out of bounds (the loop
      upper bound extends past the size class) while the body access
      stays in bounds — the init store check reports;
    - [Tail_oob] keeps init and body in bounds but reads past the size
      class in the {e trailing print} — the print load check reports.

    Expected verdicts follow the approaches' documented guarantees:
    SoftBound keeps exact allocation bounds (every spatial violation in
    an instrumented access is reported); Low-Fat pads allocations to
    their power-of-two size class, so accesses into the padding are not
    reported while accesses beyond the class or before the base are. *)

module Config = Mi_core.Config

type region = Heap | Stack | Global
type elem = Char | Long
type access = Read | Write

type kind =
  | In_bounds
  | Last_elem
  | Just_past  (** first element past the object *)
  | Past_class  (** beyond the low-fat size class *)
  | Underflow_one
  | Underflow_far
  | Cross_end_width  (** 8-byte access straddling the exact bound *)
  | Init_oob  (** the init loop itself runs past the size class *)
  | Tail_oob  (** the trailing print reads past the size class *)
  | Uaf_init  (** the init loop writes a dead object (others stay live) *)
  | Uaf_use  (** the body access reads/writes a dead object *)
  | Uaf_tail  (** the trailing print reads a dead object *)
  | Double_free  (** the object is freed twice (heap only) *)
  | Temporal_ok  (** free after the last use: must stay clean everywhere *)

let regions = [ Heap; Stack; Global ]
let elems = [ Char; Long ]
let accesses = [ Read; Write ]

(** The spatial kinds, valid for every family. *)
let all_kinds =
  [
    In_bounds; Last_elem; Just_past; Past_class; Underflow_one; Underflow_far;
    Cross_end_width; Init_oob; Tail_oob;
  ]

(** Temporal kinds valid for a family of the given region.  Heap
    families free [malloc]ed objects; stack families materialize the
    dead object as a {e dangling stack reference} (a helper returns a
    pointer to its local array, dead once the frame exits).  Globals
    have static storage duration — temporal safety is trivial, so no
    temporal kinds exist for them. *)
let temporal_kinds_for = function
  | Heap -> [ Uaf_init; Uaf_use; Uaf_tail; Double_free; Temporal_ok ]
  | Stack -> [ Uaf_init; Uaf_use; Uaf_tail ]
  | Global -> []

let is_temporal_kind = function
  | Uaf_init | Uaf_use | Uaf_tail | Double_free | Temporal_ok -> true
  | _ -> false

let region_name = function Heap -> "heap" | Stack -> "stack" | Global -> "global"
let elem_name = function Char -> "char" | Long -> "long"
let access_name = function Read -> "read" | Write -> "write"

let kind_name = function
  | In_bounds -> "in_bounds"
  | Last_elem -> "last_elem"
  | Just_past -> "just_past"
  | Past_class -> "past_class"
  | Underflow_one -> "underflow1"
  | Underflow_far -> "underflow_far"
  | Cross_end_width -> "cross_end_width"
  | Init_oob -> "init_oob"
  | Tail_oob -> "tail_oob"
  | Uaf_init -> "uaf_init"
  | Uaf_use -> "uaf_use"
  | Uaf_tail -> "uaf_tail"
  | Double_free -> "double_free"
  | Temporal_ok -> "temporal_ok"

(* array extents chosen so that "just past" lands in low-fat padding *)
let n_elems = function Char -> 20 | Long -> 10
let elem_size = function Char -> 1 | Long -> 8

(* first index beyond the low-fat size class:
   object size char 20 -> class 32; long 80 -> class 128 *)
let past_class_index = function Char -> 40 | Long -> 17

let index_of_kind elem = function
  | In_bounds -> 1
  | Last_elem -> n_elems elem - 1
  | Just_past -> n_elems elem
  | Past_class -> past_class_index elem
  | Underflow_one -> -1
  | Underflow_far -> -50
  | Cross_end_width -> n_elems elem (* only used with the i64 overlay *)
  | Init_oob | Tail_oob -> 1 (* the body access stays in bounds *)
  | Uaf_init | Uaf_use | Uaf_tail | Double_free | Temporal_ok ->
      1 (* spatially in bounds: the violation, if any, is temporal *)

(* geometry oracle mirroring the runtime *)
let lf_detects elem kind =
  let size = n_elems elem * elem_size elem in
  let cls = Mi_support.Util.round_up_pow2 (size + 1) in
  match kind with
  | Cross_end_width ->
      (* 8-byte access at byte offset (size - 1) *)
      let off = size - 1 in
      off + 8 > cls
  | Init_oob | Tail_oob ->
      (* both reach past_class_index, past the class by construction *)
      (past_class_index elem * elem_size elem) + elem_size elem > cls
  | k ->
      let off = index_of_kind elem k * elem_size elem in
      let width = elem_size elem in
      off < 0 || off + width > cls

let sb_detects kind =
  if is_temporal_kind kind then false
  else match kind with In_bounds | Last_elem -> false | _ -> true

(* the temporal oracle: lock-and-key reports every access to a dead
   object and every double free; spatial overflows within a live
   allocation carry a live key and pass *)
let tp_detects kind = is_temporal_kind kind && kind <> Temporal_ok

(** Whether a clean (non-reporting) run of this case may legitimately
    end in a VM trap instead of a normal exit: the double-free program
    run under an approach whose [free] forwards to the standard
    allocator traps there ("free of non-allocated").  Callers that
    demand [Exited] must excuse these. *)
let may_trap approach kind =
  kind = Double_free && Mi_core.Config.approach_name approach <> "temporal"

let spatial_program region elem access kind : string =
  let n = n_elems elem in
  let ty = elem_name elem in
  let decl =
    match region with
    | Heap ->
        Printf.sprintf "  %s *a = (%s *)malloc(%d * sizeof(%s));" ty ty n ty
    | Stack -> Printf.sprintf "  %s a[%d];" ty n
    | Global -> "  /* global */"
  in
  let global_decl =
    match region with
    | Global -> Printf.sprintf "%s a[%d];\n" ty n
    | _ -> ""
  in
  (* Init_oob: the loop bound extends one past the class-crossing index,
     so the loop's store check is the reporting site *)
  let init_bound =
    match kind with Init_oob -> past_class_index elem + 1 | _ -> n
  in
  let body =
    match kind with
    | Cross_end_width ->
        (* overlay an 8-byte access on the last byte of the object *)
        let off = (n * elem_size elem) - 1 in
        (match access with
        | Read -> Printf.sprintf "  print_int(*(long *)((char *)a + %d));" off
        | Write -> Printf.sprintf "  *(long *)((char *)a + %d) = 7;" off)
    | k -> (
        let idx = index_of_kind elem k in
        match access with
        | Read -> Printf.sprintf "  print_int(a[%d]);" idx
        | Write -> Printf.sprintf "  a[%d] = 7;" idx)
  in
  (* Tail_oob: the trailing print is the out-of-bounds access, so the
     print's load check is the reporting site *)
  let tail_index = match kind with Tail_oob -> past_class_index elem | _ -> 0 in
  Printf.sprintf
    {|%s
int main(void) {
%s
  long i;
  for (i = 0; i < %d; i++) a[i] = (%s)i;
%s
  print_int(a[%d]);
  return 0;
}
|}
    global_decl decl init_bound ty body tail_index

(* Temporal corpus programs.  Like the spatial ones, every program
   places exactly three access checks in [main] — the init-loop store,
   the body access, the trailing print — and each Uaf_* kind makes
   exactly one of them the unique reporting site (the accesses after the
   kill touch only the dead object; the others touch a live one), so
   deleting that check flips the verdict and the mutation engine can
   kill every temporal mutant. *)

let body_access ty access target idx =
  match access with
  | Read -> Printf.sprintf "  print_int(%s[%d]);" target idx
  | Write -> Printf.sprintf "  %s[%d] = (%s)7;" target idx ty

(* heap: the dead object is a freed malloc block *)
let temporal_heap_program elem access kind : string =
  let n = n_elems elem in
  let ty = elem_name elem in
  let alloc v = Printf.sprintf "  %s *%s = (%s *)malloc(%d * sizeof(%s));" ty v ty n ty in
  match kind with
  | Uaf_init ->
      (* only the init loop touches the dead object *)
      Printf.sprintf "int main(void) {\n%s\n%s\n  long i;\n  free(a);\n\
        \  for (i = 0; i < %d; i++) a[i] = (%s)i;\n%s\n  print_int(b[0]);\n\
        \  return 0;\n}\n"
        (alloc "a") (alloc "b") n ty (body_access ty access "b" 1)
  | Uaf_use ->
      (* only the body access touches the dead object *)
      Printf.sprintf "int main(void) {\n%s\n%s\n  long i;\n\
        \  for (i = 0; i < %d; i++) a[i] = (%s)i;\n  free(a);\n%s\n\
        \  print_int(b[0]);\n  return 0;\n}\n"
        (alloc "a") (alloc "b") n ty (body_access ty access "a" 1)
  | Uaf_tail ->
      (* only the trailing print touches the dead object *)
      Printf.sprintf "int main(void) {\n%s\n  long i;\n\
        \  for (i = 0; i < %d; i++) a[i] = (%s)i;\n%s\n  free(a);\n\
        \  print_int(a[0]);\n  return 0;\n}\n"
        (alloc "a") n ty (body_access ty access "a" 1)
  | Double_free ->
      Printf.sprintf "int main(void) {\n%s\n  long i;\n\
        \  for (i = 0; i < %d; i++) a[i] = (%s)i;\n%s\n  print_int(a[0]);\n\
        \  free(a);\n  free(a);\n  return 0;\n}\n"
        (alloc "a") n ty (body_access ty access "a" 1)
  | Temporal_ok ->
      Printf.sprintf "int main(void) {\n%s\n  long i;\n\
        \  for (i = 0; i < %d; i++) a[i] = (%s)i;\n%s\n  print_int(a[0]);\n\
        \  free(a);\n  return 0;\n}\n"
        (alloc "a") n ty (body_access ty access "a" 1)
  | _ -> invalid_arg "not a temporal kind"

(* stack: the dead object is a helper's local array, dead once the
   helper's frame exits (a dangling stack reference) *)
let temporal_stack_program elem access kind : string =
  let n = n_elems elem in
  let ty = elem_name elem in
  let mk = Printf.sprintf "%s *mk(void) {\n  %s x[%d];\n  return x;\n}\n" ty ty n in
  match kind with
  | Uaf_init ->
      (* the init loop writes through the dangling reference *)
      mk
      ^ Printf.sprintf "int main(void) {\n  %s b[%d];\n  %s *p;\n  long i;\n\
          \  p = mk();\n  for (i = 0; i < %d; i++) p[i] = (%s)i;\n%s\n\
          \  print_int(b[0]);\n  return 0;\n}\n"
          ty n ty n ty (body_access ty access "b" 1)
  | Uaf_use ->
      mk
      ^ Printf.sprintf "int main(void) {\n  %s a[%d];\n  %s *p;\n  long i;\n\
          \  for (i = 0; i < %d; i++) a[i] = (%s)i;\n  p = mk();\n%s\n\
          \  print_int(a[0]);\n  return 0;\n}\n"
          ty n ty n ty (body_access ty access "p" 1)
  | Uaf_tail ->
      mk
      ^ Printf.sprintf "int main(void) {\n  %s a[%d];\n  %s *p;\n  long i;\n\
          \  for (i = 0; i < %d; i++) a[i] = (%s)i;\n%s\n  p = mk();\n\
          \  print_int(p[0]);\n  return 0;\n}\n"
          ty n ty n ty (body_access ty access "a" 1)
  | _ -> invalid_arg "temporal stack kind without a stack realization"

let program region elem access kind : string =
  if is_temporal_kind kind then
    match region with
    | Heap -> temporal_heap_program elem access kind
    | Stack -> temporal_stack_program elem access kind
    | Global -> invalid_arg "no temporal kinds for globals"
  else spatial_program region elem access kind

(** Expected verdict of the oracle: does [approach] report a violation
    for this case? *)
let detects approach elem kind =
  match Config.approach_name approach with
  | "softbound" -> sb_detects kind
  | "lowfat" -> (not (is_temporal_kind kind)) && lf_detects elem kind
  | "temporal" -> tp_detects kind
  | a -> invalid_arg (Printf.sprintf "no corpus oracle for approach %S" a)

(** The setup every corpus case runs under: the approach's basis
    configuration at O1 (all checks kept). *)
let setup approach : Harness.setup =
  {
    (Harness.with_config (Config.of_approach approach) Harness.baseline) with
    level = Mi_passes.Pipeline.O1;
  }

type family = { fam_region : region; fam_elem : elem; fam_access : access }

let family_name f =
  Printf.sprintf "%s_%s_%s" (region_name f.fam_region) (elem_name f.fam_elem)
    (access_name f.fam_access)

(** The 12 (region x elem x access) program families. *)
let families =
  List.concat_map
    (fun fam_region ->
      List.concat_map
        (fun fam_elem ->
          List.map
            (fun fam_access -> { fam_region; fam_elem; fam_access })
            accesses)
        elems)
    regions
