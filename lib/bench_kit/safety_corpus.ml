(** The artifact-style safety corpus (appendix A.5) as a library: small
    generated programs with heap, stack, and global out-of-bounds reads
    and writes, each with an oracle for the expected verdict of both
    instrumentations.

    [test_safety_corpus] runs every case against its oracle; the
    mutation engine ({!Mutation}) reuses the same programs as the
    killing test suite for check-deletion mutants.  The corpus is
    structured so that {e every} access check the instrumenter places in
    a generated [main] is the reporting check of at least one kind:

    - the body access is the reporting site of the classic kinds
      ([Just_past], [Past_class], underflows, ...);
    - [Init_oob] drives the {e init-loop store} out of bounds (the loop
      upper bound extends past the size class) while the body access
      stays in bounds — the init store check reports;
    - [Tail_oob] keeps init and body in bounds but reads past the size
      class in the {e trailing print} — the print load check reports.

    Expected verdicts follow the approaches' documented guarantees:
    SoftBound keeps exact allocation bounds (every spatial violation in
    an instrumented access is reported); Low-Fat pads allocations to
    their power-of-two size class, so accesses into the padding are not
    reported while accesses beyond the class or before the base are. *)

module Config = Mi_core.Config

type region = Heap | Stack | Global
type elem = Char | Long
type access = Read | Write

type kind =
  | In_bounds
  | Last_elem
  | Just_past  (** first element past the object *)
  | Past_class  (** beyond the low-fat size class *)
  | Underflow_one
  | Underflow_far
  | Cross_end_width  (** 8-byte access straddling the exact bound *)
  | Init_oob  (** the init loop itself runs past the size class *)
  | Tail_oob  (** the trailing print reads past the size class *)

let regions = [ Heap; Stack; Global ]
let elems = [ Char; Long ]
let accesses = [ Read; Write ]

let all_kinds =
  [
    In_bounds; Last_elem; Just_past; Past_class; Underflow_one; Underflow_far;
    Cross_end_width; Init_oob; Tail_oob;
  ]

let region_name = function Heap -> "heap" | Stack -> "stack" | Global -> "global"
let elem_name = function Char -> "char" | Long -> "long"
let access_name = function Read -> "read" | Write -> "write"

let kind_name = function
  | In_bounds -> "in_bounds"
  | Last_elem -> "last_elem"
  | Just_past -> "just_past"
  | Past_class -> "past_class"
  | Underflow_one -> "underflow1"
  | Underflow_far -> "underflow_far"
  | Cross_end_width -> "cross_end_width"
  | Init_oob -> "init_oob"
  | Tail_oob -> "tail_oob"

(* array extents chosen so that "just past" lands in low-fat padding *)
let n_elems = function Char -> 20 | Long -> 10
let elem_size = function Char -> 1 | Long -> 8

(* first index beyond the low-fat size class:
   object size char 20 -> class 32; long 80 -> class 128 *)
let past_class_index = function Char -> 40 | Long -> 17

let index_of_kind elem = function
  | In_bounds -> 1
  | Last_elem -> n_elems elem - 1
  | Just_past -> n_elems elem
  | Past_class -> past_class_index elem
  | Underflow_one -> -1
  | Underflow_far -> -50
  | Cross_end_width -> n_elems elem (* only used with the i64 overlay *)
  | Init_oob | Tail_oob -> 1 (* the body access stays in bounds *)

(* geometry oracle mirroring the runtime *)
let lf_detects elem kind =
  let size = n_elems elem * elem_size elem in
  let cls = Mi_support.Util.round_up_pow2 (size + 1) in
  match kind with
  | Cross_end_width ->
      (* 8-byte access at byte offset (size - 1) *)
      let off = size - 1 in
      off + 8 > cls
  | Init_oob | Tail_oob ->
      (* both reach past_class_index, past the class by construction *)
      (past_class_index elem * elem_size elem) + elem_size elem > cls
  | k ->
      let off = index_of_kind elem k * elem_size elem in
      let width = elem_size elem in
      off < 0 || off + width > cls

let sb_detects kind =
  match kind with In_bounds | Last_elem -> false | _ -> true

let program region elem access kind : string =
  let n = n_elems elem in
  let ty = elem_name elem in
  let decl =
    match region with
    | Heap ->
        Printf.sprintf "  %s *a = (%s *)malloc(%d * sizeof(%s));" ty ty n ty
    | Stack -> Printf.sprintf "  %s a[%d];" ty n
    | Global -> "  /* global */"
  in
  let global_decl =
    match region with
    | Global -> Printf.sprintf "%s a[%d];\n" ty n
    | _ -> ""
  in
  (* Init_oob: the loop bound extends one past the class-crossing index,
     so the loop's store check is the reporting site *)
  let init_bound =
    match kind with Init_oob -> past_class_index elem + 1 | _ -> n
  in
  let body =
    match kind with
    | Cross_end_width ->
        (* overlay an 8-byte access on the last byte of the object *)
        let off = (n * elem_size elem) - 1 in
        (match access with
        | Read -> Printf.sprintf "  print_int(*(long *)((char *)a + %d));" off
        | Write -> Printf.sprintf "  *(long *)((char *)a + %d) = 7;" off)
    | k -> (
        let idx = index_of_kind elem k in
        match access with
        | Read -> Printf.sprintf "  print_int(a[%d]);" idx
        | Write -> Printf.sprintf "  a[%d] = 7;" idx)
  in
  (* Tail_oob: the trailing print is the out-of-bounds access, so the
     print's load check is the reporting site *)
  let tail_index = match kind with Tail_oob -> past_class_index elem | _ -> 0 in
  Printf.sprintf
    {|%s
int main(void) {
%s
  long i;
  for (i = 0; i < %d; i++) a[i] = (%s)i;
%s
  print_int(a[%d]);
  return 0;
}
|}
    global_decl decl init_bound ty body tail_index

(** Expected verdict of the oracle: does [approach] report a violation
    for this case? *)
let detects approach elem kind =
  match approach with
  | Config.Softbound -> sb_detects kind
  | Config.Lowfat -> lf_detects elem kind

(** The setup every corpus case runs under: the approach's basis
    configuration at O1 (all checks kept). *)
let setup approach : Harness.setup =
  {
    (Harness.with_config (Config.of_approach approach) Harness.baseline) with
    level = Mi_passes.Pipeline.O1;
  }

type family = { fam_region : region; fam_elem : elem; fam_access : access }

let family_name f =
  Printf.sprintf "%s_%s_%s" (region_name f.fam_region) (elem_name f.fam_elem)
    (access_name f.fam_access)

(** The 12 (region x elem x access) program families. *)
let families =
  List.concat_map
    (fun fam_region ->
      List.concat_map
        (fun fam_elem ->
          List.map
            (fun fam_access -> { fam_region; fam_elem; fam_access })
            accesses)
        elems)
    regions
