(** The usability case studies of §4 and appendix B: small programs on
    which SoftBound and Low-Fat Pointers disagree with each other, with
    the C standard, or with programmer expectations.

    Each case records what each approach is expected to do; the test
    suite asserts those verdicts and the [usability_pitfalls] example
    walks through them narratively. *)

module Config = Mi_core.Config

type verdict =
  | Works  (** runs to completion *)
  | Reports  (** the instrumentation aborts with a violation *)

type case = {
  case_name : string;
  section : string;  (** where the paper discusses it *)
  explain : string;
  sources : Bench.source list;
  expect_sb : verdict;
  expect_lf : verdict;
  expect_tp : verdict;
      (** the temporal checker: [Works] on every spatial pitfall (out of
          its scope), [Reports] on the temporal ones *)
  is_actual_bug : bool;
      (** does the program really violate C (so a report is a true
          positive)? *)
}

let i64_mode = { Mi_minic.Lower.ptr_mem_as_i64 = true }

(* ------------------------------------------------------------------ *)

(* §4.4 / Figure 7: the swap program. In the clean lowering both
   instrumentations track the pointer stores. *)
let swap_clean =
  {
    case_name = "swap_clean";
    section = "4.4 (Fig. 7, left)";
    explain =
      "swap of two double* values lowered with pointer-typed loads and \
       stores: both approaches maintain their metadata and the later \
       dereference is correctly accepted.";
    sources =
      [
        Bench.src "swap"
          {|
void swap(double **one, double **two) {
  double *tmp = *one;
  *one = *two;
  *two = tmp;
}

int main(void) {
  double *a = (double *)malloc(4 * sizeof(double));
  double *b = (double *)malloc(8 * sizeof(double));
  a[0] = 1.5; b[0] = 2.5;
  swap(&a, &b);
  /* a now points to the 8-element buffer; element 5 is in bounds */
  a[5] = 3.5;
  print_f64(a[0] + b[0] + a[5]);
  print_newline();
  return 0;
}
|};
      ];
    expect_sb = Works;
    expect_lf = Works;
    expect_tp = Works;
    is_actual_bug = false;
  }

(* §4.4 / Figure 7 right: the swap unit is compiled by a compiler version
   that lowers the pointer moves through i64. The stores bypass
   SoftBound's trie, so the subsequent dereference checks against stale
   bounds: a spurious report on a correct program. *)
let swap_i64 =
  let swap_unit =
    Bench.src ~mode_override:i64_mode "swap_i64unit"
      {|
void swap(double **one, double **two) {
  double *tmp = *one;
  *one = *two;
  *two = tmp;
}
|}
  and main_unit =
    Bench.src "main"
      {|
void swap(double **one, double **two);

int main(void) {
  double *a = (double *)malloc(4 * sizeof(double));
  double *b = (double *)malloc(8 * sizeof(double));
  a[0] = 1.5; b[0] = 2.5;
  swap(&a, &b);
  a[5] = 3.5;   /* in bounds of the swapped-in 8-element buffer */
  print_f64(a[0] + b[0] + a[5]);
  print_newline();
  return 0;
}
|}
  in
  {
    case_name = "swap_i64";
    section = "4.4 (Fig. 7, right)";
    explain =
      "the same swap, but its translation unit was lowered with \
       i64-typed pointer moves (as LLVM 11 vs 12 differ): the stores do \
       not update SoftBound's trie, the later load reads outdated \
       bounds, and a valid access is reported as a violation. Low-Fat \
       recomputes the base from the loaded value and is unaffected.";
    sources = [ swap_unit; main_unit ];
    expect_sb = Reports;
    expect_lf = Works;
    expect_tp = Works;
    is_actual_bug = false;
  }

(* §4.5: byte-wise copying of a struct that contains a pointer. *)
let byte_copy =
  {
    case_name = "byte_copy";
    section = "4.5";
    explain =
      "copying a pointer-holding struct byte by byte (legal C via char*) \
       moves the pointer value but not SoftBound's metadata: the \
       dereference through the copy checks null bounds and reports a \
       spurious violation. Low-Fat derives everything from the pointer \
       value and accepts it. The paper fixed this pattern in 300twolf \
       by using memcpy (§5.1.2).";
    sources =
      [
        Bench.src "bytecopy"
          {|
struct holder { long tag; long *payload; };

int main(void) {
  struct holder src;
  struct holder dst;
  long i;
  src.tag = 7;
  src.payload = (long *)malloc(4 * sizeof(long));
  src.payload[0] = 41;
  /* byte-wise copy, as 300twolf did */
  char *from = (char *)&src;
  char *to = (char *)&dst;
  for (i = 0; i < (long)sizeof(struct holder); i++) {
    to[i] = from[i];
  }
  print_int(dst.payload[0] + dst.tag);
  print_newline();
  return 0;
}
|};
      ];
    expect_sb = Reports;
    expect_lf = Works;
    expect_tp = Works;
    is_actual_bug = false;
  }

(* §4.2: out-of-bounds pointer arithmetic brought back in bounds. *)
let oob_arith =
  {
    case_name = "oob_arith";
    section = "4.2";
    explain =
      "a pointer is moved past the end of its array, handed to a \
       function, and moved back in bounds before the access — undefined \
       behavior in C, but 73% of surveyed C experts expect it to work \
       (Memarian et al.). Low-Fat must establish its in-bounds invariant \
       at the call and reports the escaping out-of-bounds pointer; \
       SoftBound only checks at the dereference and accepts.";
    sources =
      [
        Bench.src "oob"
          {|
/* kept out of line (the recursion blocks inlining) so the pointer
   actually escapes through the call, as with any larger function */
long peek_before(long *p) {
  if (p == NULL) return peek_before(p);
  /* bring the pointer back in bounds, then access */
  return p[-14];
}

int main(void) {
  long *arr = (long *)malloc(10 * sizeof(long));
  long i;
  for (i = 0; i < 10; i++) arr[i] = i * 3;
  /* arr + 22 is far out of bounds (allocation holds 10 elements, and
     even the 128-byte low-fat size class ends at element 16) */
  print_int(peek_before(arr + 22));
  print_newline();
  return 0;
}
|};
      ];
    expect_sb = Works;
    expect_lf = Reports;
    expect_tp = Works;
    is_actual_bug = true (* UB per C, but idiomatic code *);
  }

(* §5.1.1: pseudo-base-one arrays (253perl / 254gap). *)
let pseudo_base_one =
  {
    case_name = "pseudo_base_one";
    section = "5.1.1";
    explain =
      "perl and gap create a pointer one element *before* an array so \
       that indexing can start at 1. Storing that pointer makes it \
       escape, and Low-Fat's escape check reports it; SoftBound does not \
       report gap-style usage because every access lands in bounds.";
    sources =
      [
        Bench.src "base1"
          {|
long *base1;   /* global: storing to it makes the pointer escape */

int main(void) {
  long *arr = (long *)malloc(8 * sizeof(long));
  long i;
  base1 = arr - 1;   /* one element before the allocation */
  for (i = 1; i <= 8; i++) base1[i] = i;
  print_int(base1[1] + base1[8]);
  print_newline();
  return 0;
}
|};
      ];
    expect_sb = Works;
    expect_lf = Reports;
    expect_tp = Works;
    is_actual_bug = true;
  }

(* §5.1.2: an overflow into Low-Fat's allocation padding (197parser). *)
let padding_overflow =
  {
    case_name = "padding_overflow";
    section = "4 / 5.1.2";
    explain =
      "an off-by-a-few write past a 20-byte allocation: Low-Fat pads the \
       object to its 32-byte size class, so the access hits padding and \
       goes unreported ('hardened but undetected'); SoftBound keeps the \
       exact 20-byte bounds and reports it — the 197parser situation.";
    sources =
      [
        Bench.src "padding"
          {|
int main(void) {
  char *buf = (char *)malloc(20);
  long i;
  for (i = 0; i < 20; i++) buf[i] = (char)i;
  buf[22] = 7;   /* past the object, inside the 32-byte class padding */
  print_int(buf[3]);
  print_newline();
  return 0;
}
|};
      ];
    expect_sb = Reports;
    expect_lf = Works;
    expect_tp = Works;
    is_actual_bug = true;
  }

(* A genuine cross-object overflow: both approaches must report it. *)
let cross_object =
  {
    case_name = "cross_object";
    section = "2 / A.5";
    explain =
      "a loop runs far past the end of a heap array, well beyond any \
       padding: both approaches report it.";
    sources =
      [
        Bench.src "cross"
          {|
int main(void) {
  long *a = (long *)malloc(8 * sizeof(long));
  long i;
  for (i = 0; i < 20; i++) a[i] = i;   /* 12 elements too far */
  print_int(a[0]);
  print_newline();
  return 0;
}
|};
      ];
    expect_sb = Reports;
    expect_lf = Reports;
    expect_tp = Works;
    is_actual_bug = true;
  }

(* §4.4: integer-to-pointer round trip. With the artifact's
   -mi-sb-inttoptr-wide-bounds both tools accept it (SoftBound by giving
   up protection, Low-Fat by recomputation). *)
let inttoptr_roundtrip =
  {
    case_name = "inttoptr_roundtrip";
    section = "4.4";
    explain =
      "a pointer is cast to long and back before the access — allowed by \
       C and LLVM. With wide inttoptr bounds (the artifact's default) \
       SoftBound accepts but no longer protects the access; Low-Fat \
       recomputes base and size from the value and keeps checking.";
    sources =
      [
        Bench.src "roundtrip"
          {|
int main(void) {
  long *arr = (long *)malloc(6 * sizeof(long));
  arr[2] = 99;
  long addr = (long)(arr + 2);
  long *p = (long *)addr;
  print_int(*p);
  print_newline();
  return 0;
}
|};
      ];
    expect_sb = Works;
    expect_lf = Works;
    expect_tp = Works;
    is_actual_bug = false;
  }

(* §4.4, the dangerous direction: the integer is corrupted so the
   recreated "pointer" aims at a different object. Low-Fat assumes
   in-bounds and misses it; SoftBound with wide bounds misses it too —
   a false negative for both, as the paper warns. *)
let inttoptr_corrupted =
  {
    case_name = "inttoptr_corrupted";
    section = "4.4";
    explain =
      "the integer holding a pointer is corrupted to address a \
       neighbouring object before being cast back: Low-Fat's in-bounds \
       assumption and SoftBound's wide inttoptr bounds both let the \
       rogue access through — programs using integer/pointer casts can \
       remain unsafe under full instrumentation.";
    sources =
      [
        Bench.src "corrupt"
          {|
int main(void) {
  long *a = (long *)malloc(64 * sizeof(long));
  long *b = (long *)malloc(64 * sizeof(long));
  b[0] = 1234;
  long addr = (long)a;
  /* "corruption": redirect the integer into object b */
  addr = addr + ((long)b - (long)a);
  long *p = (long *)addr;
  p[0] = 4321;   /* writes b[0] through a pointer derived from a */
  print_int(b[0]);
  print_newline();
  return 0;
}
|};
      ];
    expect_sb = Works (* false negative *);
    expect_lf = Works (* false negative *);
    expect_tp = Works;
    is_actual_bug = true;
  }

(* Appendix B: intra-object overflow disappears at IR level. *)
let intra_object =
  {
    case_name = "intra_object";
    section = "appendix B (Fig. 14)";
    explain =
      "&P.y - 1 inside a struct: constant-folding turns the gep \
       arithmetic into a direct reference to P.x, so there is no \
       out-of-bounds address left to check at IR level; neither approach \
       reports (and Low-Fat cannot detect intra-object overflows by \
       design).";
    sources =
      [
        Bench.src "intra"
          {|
struct simple_pair { int x; int y; };

struct simple_pair P;

int main(void) {
  P.x = 11;
  P.y = 22;
  int *q = &P.y - 1;   /* folds to &P.x */
  print_int(*q);
  print_newline();
  return 0;
}
|};
      ];
    expect_sb = Works;
    expect_lf = Works;
    expect_tp = Works;
    is_actual_bug = true (* per C, the padding bytes are unspecified *);
  }

(* §4.3: calling an uninstrumented library function that returns a
   pointer, without a wrapper: SoftBound reads stale bounds from the
   shadow stack and rejects the valid access. Low-Fat needs no wrapper
   because the returned heap pointer is low-fat anyway. *)
let unwrapped_external =
  {
    case_name = "unwrapped_external";
    section = "4.3";
    explain =
      "an uninstrumented library function returns a heap pointer. \
       SoftBound expects the callee to have pushed bounds onto the \
       shadow stack; the library did not, so the caller checks against \
       stale/null bounds and reports a valid access — the reason \
       SoftBound needs wrappers for external libraries. The library's \
       allocation went through the process-wide low-fat malloc, so \
       Low-Fat protects it out of the box.";
    sources =
      [
        Bench.src ~instrument:false "extlib"
          {|
double *lib_make_buffer(long n) {
  double *p = (double *)malloc(n * sizeof(double));
  long i;
  for (i = 0; i < n; i++) p[i] = 0.5 * (double)i;
  return p;
}
|};
        Bench.src "app"
          {|
double *lib_make_buffer(long n);

int main(void) {
  double *buf = lib_make_buffer(16);
  print_f64(buf[3]);   /* valid, but SoftBound has no bounds for it */
  print_newline();
  return 0;
}
|};
      ];
    expect_sb = Reports;
    expect_lf = Works;
    expect_tp = Works;
    is_actual_bug = false;
  }


(* Temporal errors are out of scope for both approaches: a use after free
   hits memory that is spatially "in bounds" of the stale object. *)
let use_after_free =
  {
    case_name = "use_after_free";
    section = "2 (scope)";
    explain =
      "a temporal violation: the object is freed and its slot possibly \
       reused, but the stale pointer still satisfies both approaches' \
       spatial bounds — neither SoftBound nor Low-Fat Pointers targets \
       temporal safety (the paper's scope is spatial; CETS-style \
       extensions would be needed).";
    sources =
      [
        Bench.src "uaf"
          {|
int main(void) {
  long *a = (long *)malloc(8 * sizeof(long));
  a[0] = 77;
  free(a);
  /* temporal bug: read through the dangling pointer */
  print_int(a[0]);
  print_newline();
  return 0;
}
|};
      ];
    expect_sb = Works (* undetected: temporal, not spatial *);
    expect_lf = Works;
    expect_tp = Reports (* exactly the gap the temporal checker closes *);
    is_actual_bug = true;
  }

(* Pointers in global initializers: SoftBound's constructor must register
   their trie metadata before main runs, or the first dereference through
   them would be rejected. *)
let global_init_pointers =
  {
    case_name = "global_init_pointers";
    section = "3.2 (global metadata initialization)";
    explain =
      "a global array of string pointers: the pointers live in memory \
       before any store instruction runs, so SoftBound's instrumentation \
       emits a constructor that seeds the trie from the initializers — \
       without it, reading through msgs[i] would check null bounds.";
    sources =
      [
        Bench.src "ginit"
          {|
char *msgs[3] = {"alpha", "beta", "gamma"};

int main(void) {
  print_str(msgs[1]);
  print_int((long)strlen(msgs[2]));
  print_newline();
  return 0;
}
|};
      ];
    expect_sb = Works;
    expect_lf = Works;
    expect_tp = Works;
    is_actual_bug = false;
  }

let all : case list =
  [
    swap_clean;
    swap_i64;
    byte_copy;
    oob_arith;
    pseudo_base_one;
    padding_overflow;
    cross_object;
    inttoptr_roundtrip;
    inttoptr_corrupted;
    intra_object;
    unwrapped_external;
    use_after_free;
    global_init_pointers;
  ]

(* ------------------------------------------------------------------ *)

let verdict_of_outcome (o : Mi_vm.Interp.outcome) : verdict =
  match o with
  | Mi_vm.Interp.Exited _ -> Works
  | Mi_vm.Interp.Safety_violation _ -> Reports
  | Mi_vm.Interp.Trapped msg -> failwith ("usability case trapped: " ^ msg)
  | Mi_vm.Interp.Exhausted _ -> failwith "usability case exhausted its fuel"

(** Run a case under the given approach's basis configuration; returns
    the observed verdict and the run. *)
let run_case ?(level = Mi_passes.Pipeline.O3) (c : case)
    (approach : Config.approach) : verdict * Harness.run =
  let cfg = Config.of_approach approach in
  let setup = { (Harness.with_config cfg Harness.baseline) with level } in
  let r = Harness.run_sources setup c.sources in
  (verdict_of_outcome r.outcome, r)

let expected (c : case) approach =
  match Config.approach_name approach with
  | "softbound" -> c.expect_sb
  | "lowfat" -> c.expect_lf
  | "temporal" -> c.expect_tp
  | a -> invalid_arg (Printf.sprintf "no usability expectation for %S" a)

let verdict_to_string = function
  | Works -> "runs"
  | Reports -> "reports violation"
