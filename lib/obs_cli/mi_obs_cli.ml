(** Shared observability command line.

    Every driver (mic, memsafe, mi-experiments) used to declare its own
    [--profile]/[--trace] flags with slightly different wording and
    output conventions.  This module gives all of them one {!term} and
    one {!finish} renderer, so observability options parse and render
    identically everywhere:

    - [--profile] prints the top-N hottest instrumentation sites to
      stderr (N from [--profile-top], default 20);
    - [--trace FILE.json] writes a Chrome trace_event document;
    - [--metrics FILE.json] writes the metrics registry (counters,
      gauges, histograms) as deterministic JSON.

    Diagnostics are prefixed with the application name and go to stderr;
    unwritable output files exit with the usage status (2). *)

open Cmdliner

type t = {
  profile : bool;
  profile_n : int;
  trace : string option;
  metrics : string option;
}

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "print the hottest instrumentation sites (hits, wide hits, \
           modeled check cycles) to stderr at exit; see $(b,--profile-top)")

let profile_n_arg =
  Arg.(
    value & opt int 20
    & info [ "profile-top" ] ~docv:"N"
        ~doc:"number of sites $(b,--profile) prints (default 20)")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE.json"
        ~doc:
          "write a Chrome trace_event JSON of the compile and execute \
           spans (load in chrome://tracing or Perfetto)")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE.json"
        ~doc:
          "write the metrics registry (counters, gauges, histograms) as \
           deterministic JSON")

let term : t Term.t =
  let mk profile profile_n trace metrics =
    { profile; profile_n; trace; metrics }
  in
  Term.(const mk $ profile_arg $ profile_n_arg $ trace_arg $ metrics_arg)

let quiet = { profile = false; profile_n = 20; trace = None; metrics = None }

let write_text ~app ~what path text =
  try
    let oc = open_out path in
    output_string oc text;
    output_char oc '\n';
    close_out oc;
    Printf.eprintf "[%s] %s written to %s\n" app what path
  with Sys_error msg ->
    Printf.eprintf "[%s] cannot write %s: %s\n" app what msg;
    exit 2

(** Render everything the options requested from [obs].  Call once,
    after the run; safe to call with {!quiet} (does nothing). *)
let finish ~app (o : t) (obs : Mi_obs.Obs.t) =
  if o.profile then
    prerr_string
      (Mi_obs.Site.render ~n:o.profile_n
         (Mi_obs.Site.snapshot obs.Mi_obs.Obs.sites));
  Option.iter
    (fun path ->
      write_text ~app ~what:"metrics" path
        (Mi_obs.Metrics.to_string obs.Mi_obs.Obs.metrics))
    o.metrics;
  Option.iter
    (fun path ->
      (try Mi_obs.Trace.write_file obs.Mi_obs.Obs.trace path
       with Sys_error msg ->
         Printf.eprintf "[%s] cannot write trace: %s\n" app msg;
         exit 2);
      Printf.eprintf "[%s] trace written to %s (%d events)\n" app path
        (Mi_obs.Trace.event_count obs.Mi_obs.Obs.trace))
    o.trace
