(** Shared observability command line.

    Every driver (mic, memsafe, mi-experiments) used to declare its own
    [--profile]/[--trace] flags with slightly different wording and
    output conventions.  This module gives all of them one {!term} and
    one {!finish} renderer, so observability options parse and render
    identically everywhere:

    - [--profile] prints the top-N hottest instrumentation sites to
      stderr (N from [--profile-top], default 20);
    - [--trace FILE.json] writes a Chrome trace_event document;
    - [--metrics FILE.json] writes the metrics registry (counters,
      gauges, histograms) as deterministic JSON;
    - [--profile-out FILE.json] writes a persistent profile
      ({!Mi_obs.Profile}: check sites, VM coverage maps, metrics
      snapshot, span counts) and turns VM coverage recording on;
    - [--profile-in FILE.json] loads and validates a prior profile; with
      [--profile-out] the new profile accumulates onto it (the
      profile-guided workflow: run, merge, feed back).

    Diagnostics are prefixed with the application name and go to stderr;
    unwritable output files and invalid input profiles exit with the
    usage status (2). *)

open Cmdliner

type t = {
  profile : bool;
  profile_n : int;
  trace : string option;
  metrics : string option;
  profile_out : string option;
  profile_in : string option;
}

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "print the hottest instrumentation sites (hits, wide hits, \
           modeled check cycles) to stderr at exit; see $(b,--profile-top)")

let profile_n_arg =
  Arg.(
    value & opt int 20
    & info [ "profile-top" ] ~docv:"N"
        ~doc:"number of sites $(b,--profile) prints (default 20)")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE.json"
        ~doc:
          "write a Chrome trace_event JSON of the compile and execute \
           spans (load in chrome://tracing or Perfetto)")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE.json"
        ~doc:
          "write the metrics registry (counters, gauges, histograms) as \
           deterministic JSON")

let profile_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-out" ] ~docv:"FILE.json"
        ~doc:
          "write a persistent profile (check sites, VM block/edge \
           coverage, metrics snapshot, span counts) as deterministic \
           JSON; also enables VM coverage recording for this run.  \
           Inspect or diff it with $(b,mireport)")

let profile_in_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-in" ] ~docv:"FILE.json"
        ~doc:
          "load and validate a profile written by $(b,--profile-out); \
           with $(b,--profile-out) the new profile is merged onto it, \
           accumulating counts across runs")

let term : t Term.t =
  let mk profile profile_n trace metrics profile_out profile_in =
    { profile; profile_n; trace; metrics; profile_out; profile_in }
  in
  Term.(
    const mk $ profile_arg $ profile_n_arg $ trace_arg $ metrics_arg
    $ profile_out_arg $ profile_in_arg)

let quiet =
  {
    profile = false;
    profile_n = 20;
    trace = None;
    metrics = None;
    profile_out = None;
    profile_in = None;
  }

(** Whether this invocation needs VM coverage recording — used to decide
    the [~coverage] flag of the observability context. *)
let wants_coverage (o : t) = o.profile_out <> None

(** The observability context matching the parsed options: coverage
    recording is on exactly when a persistent profile was requested. *)
let create_obs (o : t) = Mi_obs.Obs.create ~coverage:(wants_coverage o) ()

let write_text ~app ~what path text =
  try
    let oc = open_out path in
    output_string oc text;
    output_char oc '\n';
    close_out oc;
    Printf.eprintf "[%s] %s written to %s\n" app what path
  with Sys_error msg ->
    Printf.eprintf "[%s] cannot write %s: %s\n" app what msg;
    exit 2

(** Load [--profile-in] (exits 2 with a diagnostic when invalid).  Call
    early so a bad input fails before any expensive work; {!finish}
    reuses the result when merging.  [None] when the option is absent. *)
let load_profile_in ~app (o : t) =
  Option.map
    (fun path ->
      try Mi_obs.Profile.load path
      with Mi_obs.Profile.Invalid_profile msg ->
        Printf.eprintf "[%s] invalid profile %s: %s\n" app path msg;
        exit 2)
    o.profile_in

(** Render everything the options requested from [obs].  Call once,
    after the run; safe to call with {!quiet} (does nothing). *)
let finish ~app (o : t) (obs : Mi_obs.Obs.t) =
  if o.profile then
    prerr_string
      (Mi_obs.Site.render ~n:o.profile_n
         (Mi_obs.Site.snapshot obs.Mi_obs.Obs.sites));
  Option.iter
    (fun path ->
      write_text ~app ~what:"metrics" path
        (Mi_obs.Metrics.to_string obs.Mi_obs.Obs.metrics))
    o.metrics;
  Option.iter
    (fun path ->
      (try Mi_obs.Trace.write_file obs.Mi_obs.Obs.trace path
       with Sys_error msg ->
         Printf.eprintf "[%s] cannot write trace: %s\n" app msg;
         exit 2);
      Printf.eprintf "[%s] trace written to %s (%d events)\n" app path
        (Mi_obs.Trace.event_count obs.Mi_obs.Obs.trace))
    o.trace;
  Option.iter
    (fun path ->
      let p = Mi_obs.Profile.of_obs obs in
      let p =
        match load_profile_in ~app o with
        | Some prior -> Mi_obs.Profile.merge prior p
        | None -> p
      in
      (try Mi_obs.Profile.save p path
       with Sys_error msg ->
         Printf.eprintf "[%s] cannot write profile: %s\n" app msg;
         exit 2);
      Printf.eprintf "[%s] profile written to %s (%d sites, %d functions)\n"
        app path
        (List.length p.Mi_obs.Profile.pr_sites)
        (List.length p.Mi_obs.Profile.pr_coverage))
    o.profile_out;
  (* --profile-in without --profile-out: validation only *)
  if o.profile_out = None then
    match load_profile_in ~app o with
    | Some p ->
        Printf.eprintf "[%s] profile %s is valid (%d sites, %d functions)\n"
          app
          (Option.get o.profile_in)
          (List.length p.Mi_obs.Profile.pr_sites)
          (List.length p.Mi_obs.Profile.pr_coverage)
    | None -> ()
