(** CFG simplification:
    - fold conditional branches on constants (dropping the dead edge from
      the target's phis);
    - remove blocks unreachable from entry;
    - merge a block into its unique successor when that successor has no
      other predecessors;
    - thread jumps through empty forwarding blocks when the final target
      has no phis. *)

open Mi_mir

let fold_const_branches (f : Func.t) : bool =
  let changed = ref false in
  let removed_edges = ref [] in
  f.blocks <-
    List.map
      (fun (b : Block.t) ->
        match b.term with
        | Instr.Cbr (Value.Int (_, k), l1, l2) when l1 <> l2 ->
            changed := true;
            let taken, dead = if k <> 0 then (l1, l2) else (l2, l1) in
            removed_edges := (b.label, dead) :: !removed_edges;
            { b with term = Instr.Br taken }
        | Instr.Cbr (Value.Int _, l1, _) ->
            changed := true;
            { b with term = Instr.Br l1 }
        | _ -> b)
      f.blocks;
  if !removed_edges <> [] then
    f.blocks <-
      List.map
        (fun (b : Block.t) ->
          let phis =
            List.map
              (fun (p : Instr.phi) ->
                {
                  p with
                  incoming =
                    List.filter
                      (fun (l, _) ->
                        not (List.mem (l, b.label) !removed_edges))
                      p.incoming;
                })
              b.phis
          in
          { b with phis })
        f.blocks;
  !changed

(* Merge B into A when A's terminator is `br B` and B has exactly one
   predecessor (A). B's phis then have a single incoming value and become
   substitutions. The entry block keeps its label. *)
let merge_blocks (f : Func.t) : bool =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    let cfg = Mi_analysis.Cfg.build f in
    let candidate =
      List.find_opt
        (fun (a : Block.t) ->
          match a.term with
          | Instr.Br lb -> (
              let bi = Mi_analysis.Cfg.index cfg lb in
              (not (String.equal a.label lb))
              && cfg.Mi_analysis.Cfg.preds.(bi) = [ Mi_analysis.Cfg.index cfg a.label ]
              &&
              (* do not merge a block into itself via a cycle *)
              match cfg.Mi_analysis.Cfg.preds.(bi) with
              | [ _ ] -> true
              | _ -> false)
          | _ -> false)
        f.blocks
    in
    match candidate with
    | None -> continue_ := false
    | Some a ->
        let lb = match a.term with Instr.Br l -> l | _ -> assert false in
        let bblk = Func.find_block_exn f lb in
        (* single-pred phis become substitutions *)
        let subst = Value.VTbl.create 4 in
        List.iter
          (fun (p : Instr.phi) ->
            match p.incoming with
            | [ (_, v) ] -> Value.VTbl.replace subst p.pdst v
            | _ ->
                (* verifier guarantees exactly one incoming per pred *)
                invalid_arg "merge_blocks: phi arity mismatch")
          bblk.phis;
        let merged =
          {
            a with
            body = a.body @ bblk.body;
            term = bblk.term;
          }
        in
        (* successors of B now have A as predecessor.  A itself can be
           such a successor (B's terminator closes a loop back to A), so
           the merged block's own phis may need their incoming edge
           renamed too. *)
        let succ_labels = Instr.successors bblk.term in
        let rename_phis (blk : Block.t) =
          {
            blk with
            phis =
              List.map
                (fun (p : Instr.phi) ->
                  {
                    p with
                    incoming =
                      List.map
                        (fun (l, v) ->
                          if String.equal l lb then (a.label, v) else (l, v))
                        p.incoming;
                  })
                blk.phis;
          }
        in
        f.blocks <-
          List.filter_map
            (fun (blk : Block.t) ->
              if String.equal blk.label a.label then
                Some
                  (if List.mem a.label succ_labels then rename_phis merged
                   else merged)
              else if String.equal blk.label lb then None
              else if List.mem blk.label succ_labels then
                Some (rename_phis blk)
              else Some blk)
            f.blocks;
        Putils.substitute f subst;
        changed := true
  done;
  !changed

(* Thread `br E` where E contains only `br T` and T has no phis: replace
   the edge by a direct jump to T.  (With phis in T the edge identity
   matters, so we leave those alone.) *)
let thread_empty_blocks (f : Func.t) : bool =
  let changed = ref false in
  let forwards = Hashtbl.create 8 in
  List.iter
    (fun (b : Block.t) ->
      match (b.phis, b.body, b.term) with
      | [], [], Instr.Br t when not (String.equal t b.label) -> (
          match Func.find_block f t with
          | Some tb when tb.phis = [] -> Hashtbl.replace forwards b.label t
          | _ -> ())
      | _ -> ())
    f.blocks;
  if Hashtbl.length forwards = 0 then false
  else begin
    let rec final l seen =
      if List.mem l seen then l
      else
        match Hashtbl.find_opt forwards l with
        | Some t -> final t (l :: seen)
        | None -> l
    in
    let entry_label =
      match f.blocks with b :: _ -> b.Block.label | [] -> ""
    in
    f.blocks <-
      List.map
        (fun (b : Block.t) ->
          let redirect l =
            if String.equal b.label entry_label && false then l
            else
              let t = final l [] in
              if not (String.equal t l) then changed := true;
              t
          in
          match b.term with
          | Instr.Br l -> { b with term = Instr.Br (redirect l) }
          | Instr.Cbr (c, l1, l2) ->
              { b with term = Instr.Cbr (c, redirect l1, redirect l2) }
          | _ -> b)
        f.blocks;
    !changed
  end

let run_func (f : Func.t) : bool =
  let c1 = fold_const_branches f in
  let c2 = Putils.remove_unreachable f in
  let c3 = thread_empty_blocks f in
  let c4 = Putils.remove_unreachable f in
  let c5 = merge_blocks f in
  c1 || c2 || c3 || c4 || c5

let pass = Pass.func_pass "simplifycfg" run_func
