(** Compiler pipelines with instrumentation extension points (the
    paper's Figure 8).

    The MemInstrument pass can be plugged into the -O3 pipeline at
    [ModuleOptimizerEarly] (before the main scalar optimizations, but —
    as in clang — after the frontend's per-function mem2reg/cleanup),
    [ScalarOptimizerLate], or [VectorizerStart].  Because inserted checks
    may abort, early instrumentation blocks inlining, GVN and LICM — the
    extension-point effect of Figures 12/13. *)

open Mi_mir

type extension_point =
  | ModuleOptimizerEarly
  | ScalarOptimizerLate
  | VectorizerStart

val ep_name : extension_point -> string
val all_extension_points : extension_point list

(** Optimization levels.  [O3] is the baseline of the paper's runtime
    evaluation; [O0] leaves the naive lowering untouched. *)
type level = O0 | O1 | O3

val canonicalize : Pass.t list
(** The frontend per-function simplification that runs before any
    extension point. *)

val scalar_opts : Pass.t list
val late_scalar : Pass.t list
val late_cleanup : Pass.t list

val run :
  ?level:level ->
  ?instrument:(Irmod.t -> unit) ->
  ?ep:extension_point ->
  ?tracer:Mi_obs.Trace.t ->
  Irmod.t ->
  unit
(** Optimize [m] in place at [level] (default [O3]), invoking
    [instrument] at extension point [ep] (default [VectorizerStart]).
    Instrumentation-inserted code is subject to every pass that runs
    after its extension point.  At [O0] the instrumentation runs on the
    unoptimized module (all extension points coincide).

    With [tracer], every pipeline phase and every pass within it is
    wrapped in a {!Mi_obs.Trace} span whose arguments record the
    instruction-count delta the pass caused, and an instant event marks
    where the instrumentation extension point fired. *)
