(** Function inlining.

    Inlines small, non-recursive, not-address-taken callees.  Inlining is
    instrumentation-transparent: the SoftBound shadow-stack protocol calls
    around and inside the callee stay correctly bracketed when the body is
    spliced between them, and the callee's static allocations (constant
    [alloca]/[__mi_lf_alloca]) are moved to the caller's entry block, as
    LLVM does, so loops around inlined calls do not grow the stack. *)

open Mi_mir

let size_threshold = 40
let max_inlines_per_func = 24

(* Is the address of [name] taken anywhere in the module? *)
let address_taken (m : Irmod.t) : (string, unit) Hashtbl.t =
  let t = Hashtbl.create 8 in
  let note (v : Value.t) =
    match v with Value.Fn n -> Hashtbl.replace t n () | _ -> ()
  in
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun (b : Block.t) ->
          List.iter
            (fun (p : Instr.phi) ->
              List.iter (fun (_, v) -> note v) p.incoming)
            b.phis;
          List.iter
            (fun (i : Instr.t) -> List.iter note (Instr.operands i))
            b.body;
          List.iter note (Instr.term_operands b.term))
        f.blocks)
    m.funcs;
  t

let directly_recursive (f : Func.t) =
  List.exists
    (fun (b : Block.t) ->
      List.exists
        (fun (i : Instr.t) ->
          match i.op with
          | Instr.Call (callee, _) -> String.equal callee f.fname
          | _ -> false)
        b.body)
    f.blocks

let is_const_operand (v : Value.t) =
  match v with Value.Var _ -> false | _ -> true

(* Splice callee into caller at the given call site.  Returns false if the
   site shape is unexpected. *)
let inline_site (caller : Func.t) (callee : Func.t) ~(block : string)
    ~(pos : int) ~(uid : int) : bool =
  let b = Func.find_block_exn caller block in
  let call_instr = List.nth b.body pos in
  let args =
    match call_instr.op with
    | Instr.Call (_, args) -> args
    | _ -> invalid_arg "inline_site: not a call"
  in
  (* fresh names for everything in the callee *)
  let vmap : Value.t Value.VTbl.t = Value.VTbl.create 32 in
  List.iteri
    (fun i (p : Value.var) -> Value.VTbl.replace vmap p (List.nth args i))
    callee.params;
  let fresh_of : Value.var Value.VTbl.t = Value.VTbl.create 32 in
  let fresh_var (v : Value.var) =
    match Value.VTbl.find_opt fresh_of v with
    | Some nv -> nv
    | None ->
        let nv = Func.fresh_var caller ~name:v.vname v.vty in
        Value.VTbl.add fresh_of v nv;
        Value.VTbl.replace vmap v (Value.Var nv);
        nv
  in
  (* pre-create fresh vars for all defs so forward refs resolve *)
  List.iter
    (fun (bb : Block.t) ->
      List.iter (fun v -> ignore (fresh_var v)) (Block.defs bb))
    callee.blocks;
  let label_of l = Printf.sprintf "inl%d_%s" uid l in
  let map_v (v : Value.t) =
    match v with
    | Value.Var x -> (
        match Value.VTbl.find_opt vmap x with Some r -> r | None -> v)
    | _ -> v
  in
  let cont_label = Printf.sprintf "inl%d_cont" uid in
  let rets = ref [] in
  let copied =
    List.map
      (fun (bb : Block.t) ->
        let nb =
          Block.map_operands map_v
            (Block.map_labels label_of
               {
                 bb with
                 label = label_of bb.label;
                 phis =
                   List.map
                     (fun (p : Instr.phi) ->
                       { p with pdst = fresh_var p.pdst })
                     bb.phis;
                 body =
                   List.map
                     (fun (i : Instr.t) ->
                       {
                         i with
                         dst = Option.map fresh_var i.dst;
                       })
                     bb.body;
               })
        in
        match nb.term with
        | Instr.Ret v ->
            rets := (nb.label, v) :: !rets;
            { nb with term = Instr.Br cont_label }
        | _ -> nb)
      callee.blocks
  in
  (* pull constant-operand static allocations out of the inlined entry *)
  let statics, copied =
    match copied with
    | entry :: rest ->
        let statics, dynamic =
          List.partition
            (fun (i : Instr.t) ->
              match i.op with
              | Instr.Alloca _ -> true
              | Instr.Call (n, cargs)
                when String.equal n Intrinsics.lf_alloca ->
                  List.for_all is_const_operand cargs
              | _ -> false)
            entry.body
        in
        (statics, { entry with body = dynamic } :: rest)
    | [] -> invalid_arg "inline_site: callee with no blocks"
  in
  (* split the caller block *)
  let prefix = List.filteri (fun i _ -> i < pos) b.body in
  let suffix = List.filteri (fun i _ -> i > pos) b.body in
  let entry_label = (Func.entry caller).Block.label in
  let prefix =
    if statics <> [] && String.equal block entry_label then
      statics @ prefix
    else begin
      if statics <> [] then begin
        let caller_entry = Func.entry caller in
        Func.update_block caller
          { caller_entry with body = statics @ caller_entry.body }
      end;
      prefix
    end
  in
  (* refetch in case the entry block was just rewritten *)
  let b = Func.find_block_exn caller block in
  let head =
    { b with body = prefix; term = Instr.Br (label_of (Func.entry callee).Block.label) }
  in
  (* note: values in [rets] were already renamed by [map_v] during the
     block copy; they live in the caller's variable space *)
  let ret_phis, subst =
    match (call_instr.dst, !rets) with
    | None, _ -> ([], None)
    | Some d, [ (_, Some v) ] -> ([], Some (d, v))
    | Some d, rets ->
        let incoming =
          List.map
            (fun (l, v) ->
              match v with
              | Some v -> (l, v)
              | None -> (l, Value.Int (d.vty, 0)))
            rets
        in
        ([ { Instr.pdst = d; incoming } ], None)
  in
  let cont =
    { Block.label = cont_label; phis = ret_phis; body = suffix; term = b.term }
  in
  (* rename phi predecessors in original successors: block -> cont (the
     old terminator, and with it every outgoing edge, now lives in
     [cont]).  The split block can be its own successor — a do-while
     whose body branches back to itself — so [head] itself may need its
     loop-header phis renamed too. *)
  let succ_labels = Instr.successors b.term in
  let rename_phis (blk : Block.t) =
    {
      blk with
      phis =
        List.map
          (fun (p : Instr.phi) ->
            {
              p with
              incoming =
                List.map
                  (fun (l, v) ->
                    if String.equal l block then (cont_label, v) else (l, v))
                  p.incoming;
            })
          blk.phis;
    }
  in
  let blocks =
    List.concat_map
      (fun (blk : Block.t) ->
        if String.equal blk.label block then
          let head =
            if List.mem block succ_labels then rename_phis head else head
          in
          (head :: copied) @ [ cont ]
        else if List.mem blk.label succ_labels then [ rename_phis blk ]
        else [ blk ])
      caller.blocks
  in
  caller.blocks <- blocks;
  (match subst with
  | Some (d, v) ->
      let s = Value.VTbl.create 1 in
      Value.VTbl.replace s d v;
      Putils.substitute caller s
  | None -> ());
  true

let run (m : Irmod.t) : bool =
  let taken = address_taken m in
  let inlinable : (string, Func.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (f : Func.t) ->
      if
        (not f.is_external)
        && (not (Hashtbl.mem taken f.fname))
        && (not (directly_recursive f))
        && Func.instr_count f <= size_threshold
        && not (String.equal f.fname "main")
      then Hashtbl.replace inlinable f.fname f)
    m.funcs;
  if Hashtbl.length inlinable = 0 then false
  else begin
    let changed = ref false in
    let uid = ref 0 in
    List.iter
      (fun (caller : Func.t) ->
        if not caller.is_external then begin
          let budget = ref max_inlines_per_func in
          let continue_ = ref true in
          while !continue_ && !budget > 0 do
            (* find the first inlinable call site *)
            let site = ref None in
            List.iter
              (fun (blk : Block.t) ->
                if !site = None then
                  List.iteri
                    (fun pos (i : Instr.t) ->
                      if !site = None then
                        match i.op with
                        | Instr.Call (callee, _)
                          when Hashtbl.mem inlinable callee
                               && not (String.equal callee caller.fname) ->
                            site := Some (blk.label, pos, callee)
                        | _ -> ())
                    blk.body)
              caller.blocks;
            match !site with
            | None -> continue_ := false
            | Some (block, pos, callee) ->
                incr uid;
                decr budget;
                if
                  inline_site caller
                    (Hashtbl.find inlinable callee)
                    ~block ~pos ~uid:!uid
                then changed := true
                else continue_ := false
          done
        end)
      m.funcs;
    !changed
  end

let pass : Pass.t = { name = "inline"; run }
