(** Pass interface and manager.

    Passes rewrite functions or modules in place and report whether they
    changed anything, which lets the manager iterate cleanup groups to a
    fixed point (bounded, to stay predictable). *)

open Mi_mir

type t = { name : string; run : Irmod.t -> bool }

(** Lift a per-function transformation to a module pass over defined,
    non-runtime functions. *)
let func_pass name (run_func : Func.t -> bool) : t =
  {
    name;
    run =
      (fun m ->
        List.fold_left
          (fun changed f -> run_func f || changed)
          false (Irmod.defined_funcs m));
  }

(* [MI_PASS_DEBUG=1] prints each pass as it starts — the low-tech way to
   find a looping or crashing pass when tracing never gets to flush *)
let debug = try Sys.getenv "MI_PASS_DEBUG" = "1" with Not_found -> false

let debug_announce (p : t) (m : Irmod.t) =
  if debug then
    Printf.eprintf "[pass] %s (%d instrs)\n%!" p.name (Irmod.instr_count m)

let run_one (p : t) (m : Irmod.t) : bool =
  debug_announce p m;
  p.run m

(* With a tracer, each pass runs under its own span carrying the
   instruction-count delta it caused. *)
let traced_run tracer (p : t) (m : Irmod.t) : bool =
  match tracer with
  | None -> run_one p m
  | Some tr ->
      debug_announce p m;
      let before = Irmod.instr_count m in
      Mi_obs.Trace.begin_span tr ~cat:"pass"
        ~args:[ ("instrs_before", Mi_obs.Trace.Aint before) ]
        p.name;
      let finish changed =
        let after = Irmod.instr_count m in
        Mi_obs.Trace.end_span tr
          ~args:
            [
              ("instrs_after", Mi_obs.Trace.Aint after);
              ("instrs_delta", Mi_obs.Trace.Aint (after - before));
              ("changed", Mi_obs.Trace.Astr (string_of_bool changed));
            ]
          p.name
      in
      let changed =
        try p.run m
        with e ->
          finish true;
          raise e
      in
      finish changed;
      changed

(** Run [passes] in order once; true if any changed the module. *)
let run_list ?tracer (passes : t list) (m : Irmod.t) : bool =
  List.fold_left
    (fun changed p -> traced_run tracer p m || changed)
    false passes

(** Iterate [passes] until no pass changes the module, at most
    [max_rounds] times. *)
let run_fixpoint ?tracer ?(max_rounds = 4) (passes : t list) (m : Irmod.t) :
    bool =
  let changed_any = ref false in
  let rec go n =
    if n < max_rounds && run_list ?tracer passes m then begin
      changed_any := true;
      go (n + 1)
    end
  in
  go 0;
  !changed_any

(** Call-effect summaries used by the optimization passes.  Calls into the
    check runtime may abort; unknown calls may do anything. *)
module Effects = struct
  let is_pure_call name =
    match Intrinsics.classify name with
    | Intrinsics.Pure -> true
    | _ -> false

  let removable_call name = Intrinsics.removable_if_unused name

  let may_abort_call name =
    if Intrinsics.is_builtin name then Intrinsics.may_abort name
    else true (* unknown callee: assume the worst *)

  let may_write_call name =
    if Intrinsics.is_builtin name then
      match Intrinsics.classify name with
      | Intrinsics.Pure -> false
      | Intrinsics.Read_meta -> false
      | Intrinsics.May_abort ->
          (* checks read nothing and write nothing in user memory *)
          false
      | Intrinsics.Effectful | Intrinsics.Allocating -> true
    else true

  (** Is this instruction free of side effects (it may still read
      memory)? Such instructions are removable when their result is
      unused. *)
  let removable (i : Instr.t) =
    match i.op with
    | Bin (_, _, _, _)
    | FBin _ | Icmp _ | Fcmp _ | Cast _ | Load _ | Gep _ | Select _
    | Alloca _ ->
        true
    | Store _ | Memcpy _ | Memset _ -> false
    | Call (callee, _) -> removable_call callee

  (** Can this instruction be executed speculatively (hoisted past
      branches and aborting calls)?  Loads are not speculatable; neither
      are divisions (divide-by-zero traps). *)
  let speculatable (i : Instr.t) =
    match i.op with
    | Bin ((SDiv | UDiv | SRem | URem), _, _, _) -> false
    | Bin _ | FBin _ | Icmp _ | Fcmp _ | Cast _ | Gep _ | Select _ -> true
    | Call (callee, _) -> is_pure_call callee
    | Load _ | Store _ | Memcpy _ | Memset _ | Alloca _ -> false

  (** Does the instruction possibly write user memory? *)
  let may_write (i : Instr.t) =
    match i.op with
    | Store _ | Memcpy _ | Memset _ -> true
    | Call (callee, _) -> may_write_call callee
    | _ -> false

  (** Does the instruction possibly abort or not return? *)
  let may_abort (i : Instr.t) =
    match i.op with
    | Call (callee, _) -> may_abort_call callee
    | _ -> false
end
