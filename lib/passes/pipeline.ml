(** Compiler pipelines with instrumentation extension points.

    Mirrors Figure 8 of the paper: the MemInstrument pass can be plugged
    into the -O3 pipeline at [ModuleOptimizerEarly] (before the main
    scalar optimizations), [ScalarOptimizerLate] (after them), or
    [VectorizerStart] (just before late/vectorization cleanup).  Because
    inserted checks may abort, instrumenting early blocks mem2reg, LICM
    and friends — the ~30% effect of Figures 12/13. *)

open Mi_mir

type extension_point =
  | ModuleOptimizerEarly
  | ScalarOptimizerLate
  | VectorizerStart

let ep_name = function
  | ModuleOptimizerEarly -> "ModuleOptimizerEarly"
  | ScalarOptimizerLate -> "ScalarOptimizerLate"
  | VectorizerStart -> "VectorizerStart"

let all_extension_points =
  [ ModuleOptimizerEarly; ScalarOptimizerLate; VectorizerStart ]

(* The pipeline stages.  Like clang, the frontend already runs a
   per-function simplification (SROA/mem2reg and cleanup) before the
   module optimization pipeline begins — so code reaching the
   ModuleOptimizerEarly extension point is in promoted SSA form, and the
   early-vs-late gap of Figures 12/13 comes from the inlining, GVN and
   LICM that checks subsequently block, not from unpromoted allocas. *)

let canonicalize : Pass.t list =
  [ Simplifycfg.pass; Mem2reg.pass; Instcombine.pass; Simplifycfg.pass ]

let scalar_opts : Pass.t list =
  [
    Instcombine.pass;
    Simplifycfg.pass;
    Inline.pass;
    Mem2reg.pass;
    Instcombine.pass;
    Gvn.pass;
    Licm.pass;
    Dce.pass;
    Simplifycfg.pass;
    Instcombine.pass;
    Gvn.pass;
    Dce.pass;
  ]

let late_scalar : Pass.t list =
  [ Instcombine.pass; Gvn.pass; Licm.pass; Dce.pass; Simplifycfg.pass ]

(* stands in for the vectorizer + final cleanup; the paper's SoftBound
   implementation does not support vectorized code, so the placeholder is
   cleanup only *)
let late_cleanup : Pass.t list =
  [ Instcombine.pass; Dce.pass; Simplifycfg.pass ]

(** Optimization levels.  [O3] is the baseline of the runtime evaluation;
    [O0] leaves the naive lowering untouched. *)
type level = O0 | O1 | O3

(** Run the pipeline at [level] on [m], invoking [instrument] (if any) at
    extension point [ep].  Instrumentation-inserted code is subject to all
    passes that run after its extension point, exactly as in Fig. 8.  With
    [tracer], each phase and each pass within it runs under a tracing
    span ({!Mi_obs.Trace}) carrying instruction-count deltas. *)
let run ?(level = O3) ?instrument ?(ep = VectorizerStart) ?tracer
    (m : Irmod.t) : unit =
  let maybe_instrument p =
    match instrument with
    | Some f when p = ep ->
        (match tracer with
        | None -> ()
        | Some tr ->
            Mi_obs.Trace.instant tr ~cat:"pipeline"
              ~args:[ ("ep", Mi_obs.Trace.Astr (ep_name p)) ]
              "extension-point");
        f m
    | _ -> ()
  in
  let phase name body =
    match tracer with
    | None -> body ()
    | Some tr ->
        Mi_obs.Trace.with_span tr ~cat:"phase"
          ~args:[ ("instrs", Mi_obs.Trace.Aint (Irmod.instr_count m)) ]
          name body
  in
  (match level with
  | O0 ->
      (* clang -O0 performs no optimization; all EPs coincide *)
      ()
  | O1 ->
      phase "canonicalize" (fun () ->
          ignore (Pass.run_list ?tracer canonicalize m));
      maybe_instrument ModuleOptimizerEarly;
      phase "scalar-opts" (fun () ->
          ignore
            (Pass.run_list ?tracer
               [ Instcombine.pass; Dce.pass; Simplifycfg.pass ]
               m));
      maybe_instrument ScalarOptimizerLate;
      maybe_instrument VectorizerStart;
      phase "late-cleanup" (fun () ->
          ignore (Pass.run_list ?tracer late_cleanup m))
  | O3 ->
      phase "canonicalize" (fun () ->
          ignore (Pass.run_list ?tracer canonicalize m));
      maybe_instrument ModuleOptimizerEarly;
      phase "scalar-opts" (fun () ->
          ignore (Pass.run_fixpoint ?tracer ~max_rounds:2 scalar_opts m));
      maybe_instrument ScalarOptimizerLate;
      phase "late-scalar" (fun () ->
          ignore (Pass.run_list ?tracer late_scalar m));
      maybe_instrument VectorizerStart;
      phase "late-cleanup" (fun () ->
          ignore (Pass.run_list ?tracer late_cleanup m)));
  if level = O0 then
    match instrument with Some f -> f m | None -> ()
