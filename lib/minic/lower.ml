(** Lowering of MiniC to MIR.

    One pass, clang-like: locals become [alloca]s (hoisted to the entry
    block afterwards, as clang does with static allocas), every
    struct/array access becomes address arithmetic ([gep]), and implicit C
    conversions are materialized as casts.

    The [ptr_mem_as_i64] mode reproduces the compiler-version difference
    of the paper's Figure 7: loads and stores of pointer values go through
    [i64] with [ptrtoint]/[inttoptr] around them, which hides pointer
    stores from the instrumentation and breaks SoftBound's metadata —
    the §4.4 usability finding. *)

open Ast
open Mi_mir
module C = Ctypes

exception Lower_error of pos * string

let failp pos fmt =
  Printf.ksprintf (fun s -> raise (Lower_error (pos, s))) fmt

type mode = { ptr_mem_as_i64 : bool }

let default_mode = { ptr_mem_as_i64 = false }

(* builtin signatures: name -> (return type, parameter types) *)
let builtin_sigs : (string * (C.t * C.t list)) list =
  let vp = C.Cptr C.Cvoid and cp = C.Cptr C.Cchar in
  [
    ("malloc", (vp, [ C.Clong ]));
    ("calloc", (vp, [ C.Clong; C.Clong ]));
    ("realloc", (vp, [ vp; C.Clong ]));
    ("free", (C.Cvoid, [ vp ]));
    ("memcpy", (vp, [ vp; vp; C.Clong ]));
    ("memmove", (vp, [ vp; vp; C.Clong ]));
    ("memset", (vp, [ vp; C.Cint; C.Clong ]));
    ("memcmp", (C.Cint, [ vp; vp; C.Clong ]));
    ("strlen", (C.Clong, [ cp ]));
    ("strcpy", (cp, [ cp; cp ]));
    ("strncpy", (cp, [ cp; cp; C.Clong ]));
    ("strcat", (cp, [ cp; cp ]));
    ("strcmp", (C.Cint, [ cp; cp ]));
    ("strchr", (cp, [ cp; C.Cint ]));
    ("abs", (C.Cint, [ C.Cint ]));
    ("labs", (C.Clong, [ C.Clong ]));
    ("sqrt", (C.Cdouble, [ C.Cdouble ]));
    ("fabs", (C.Cdouble, [ C.Cdouble ]));
    ("sin", (C.Cdouble, [ C.Cdouble ]));
    ("cos", (C.Cdouble, [ C.Cdouble ]));
    ("exp", (C.Cdouble, [ C.Cdouble ]));
    ("log", (C.Cdouble, [ C.Cdouble ]));
    ("floor", (C.Cdouble, [ C.Cdouble ]));
    ("ceil", (C.Cdouble, [ C.Cdouble ]));
    ("pow", (C.Cdouble, [ C.Cdouble; C.Cdouble ]));
    ("print_int", (C.Cvoid, [ C.Clong ]));
    ("print_f64", (C.Cvoid, [ C.Cdouble ]));
    ("print_str", (C.Cvoid, [ cp ]));
    ("putchar", (C.Cvoid, [ C.Cint ]));
    ("print_newline", (C.Cvoid, []));
    ("mi_rand", (C.Clong, []));
    ("mi_srand", (C.Cvoid, [ C.Clong ]));
    ("exit", (C.Cvoid, [ C.Cint ]));
    ("abort", (C.Cvoid, []));
  ]

type genv = {
  reg : C.registry;
  sigs : (string, C.t * C.t list) Hashtbl.t;
  globals : (string, C.t) Hashtbl.t;
  m : Irmod.t;
  mode : mode;
  mutable str_count : int;
}

type loop_labels = { break_to : string; continue_to : string }

type lenv = {
  g : genv;
  b : Builder.t;
  f_ret : C.t;
  mutable vars : (string * (Value.t * C.t)) list;  (** scoped bindings *)
  mutable label_count : int;
  mutable loops : loop_labels list;
}

let fresh_label (env : lenv) stem =
  env.label_count <- env.label_count + 1;
  Printf.sprintf "%s%d" stem env.label_count

let lookup_var (env : lenv) pos name : Value.t * C.t =
  match List.assoc_opt name env.vars with
  | Some (addr, ty) -> (addr, ty)
  | None -> (
      match Hashtbl.find_opt env.g.globals name with
      | Some ty -> (Value.Glob name, ty)
      | None -> failp pos "undeclared identifier %s" name)

(* intern a string literal as an anonymous global *)
let intern_string (g : genv) (s : string) : string
    =
  let name = Printf.sprintf "str.%d" g.str_count in
  g.str_count <- g.str_count + 1;
  Irmod.add_global g.m
    (Irmod.mk_global ~align:1 ~name ~size:(String.length s + 1)
       [ Irmod.GBytes (s ^ "\000") ]);
  name

(* --- conversions ------------------------------------------------------ *)

(* usual arithmetic conversions: both operands to the common type *)
let common_arith_type (a : C.t) (b : C.t) : C.t =
  if a = C.Cdouble || b = C.Cdouble then C.Cdouble
  else
    let r = max (C.rank a) (C.rank b) in
    if r <= C.rank C.Cint then C.Cint else C.Clong

(* promote small ints to int for unary/shift contexts *)
let promote (t : C.t) : C.t =
  match t with C.Cchar | C.Cshort -> C.Cint | t -> t

let convert (env : lenv) pos (v : Value.t) (from_ty : C.t) (to_ty : C.t) :
    Value.t =
  let b = env.b in
  if C.equal (C.decay from_ty) (C.decay to_ty) then v
  else
    match (C.decay from_ty, C.decay to_ty) with
    | (C.Cptr _ as p1), (C.Cptr _ as p2) when p1 <> p2 -> v (* ptr casts free *)
    | fi, ti when C.is_integer fi && C.is_integer ti ->
        let f = C.to_mir fi and t = C.to_mir ti in
        if Ty.bits f = Ty.bits t then v
        else if Ty.bits f < Ty.bits t then
          Builder.cast b Instr.Sext ~from:f ~into:t v
        else Builder.cast b Instr.Trunc ~from:f ~into:t v
    | fi, C.Cdouble when C.is_integer fi ->
        Builder.cast b Instr.SiToFp ~from:(C.to_mir fi) ~into:Ty.F64 v
    | C.Cdouble, ti when C.is_integer ti ->
        Builder.cast b Instr.FpToSi ~from:Ty.F64 ~into:(C.to_mir ti) v
    | fi, C.Cptr _ when C.is_integer fi ->
        let v64 =
          if Ty.bits (C.to_mir fi) < 64 then
            Builder.cast b Instr.Sext ~from:(C.to_mir fi) ~into:Ty.I64 v
          else v
        in
        (match v64 with
        | Value.Int (_, 0) -> Value.null
        | _ -> Builder.cast b Instr.IntToPtr ~from:Ty.I64 ~into:Ty.Ptr v64)
    | C.Cptr _, ti when C.is_integer ti ->
        let v64 = Builder.cast b Instr.PtrToInt ~from:Ty.Ptr ~into:Ty.I64 v in
        if Ty.bits (C.to_mir ti) < 64 then
          Builder.cast b Instr.Trunc ~from:Ty.I64 ~into:(C.to_mir ti) v64
        else v64
    | f, t ->
        failp pos "unsupported conversion from %s to %s" (C.to_string f)
          (C.to_string t)

(* --- memory access ----------------------------------------------------- *)

(* load an rvalue of object type [ty] from address [addr] *)
let load_value (env : lenv) pos (addr : Value.t) (ty : C.t) : Value.t * C.t =
  match ty with
  | C.Carr (elt, _) -> (addr, C.Cptr elt) (* array decays to its address *)
  | C.Cstruct _ -> (addr, ty) (* aggregate rvalue = its address *)
  | C.Cvoid -> failp pos "load of void"
  | _ ->
      if env.g.mode.ptr_mem_as_i64 && C.is_ptr_like ty then begin
        (* Figure 7, right-hand lowering: the pointer is loaded as i64 *)
        let as_int = Builder.load env.b Ty.I64 addr in
        ( Builder.cast env.b Instr.IntToPtr ~from:Ty.I64 ~into:Ty.Ptr as_int,
          ty )
      end
      else (Builder.load env.b (C.to_mir ty) addr, ty)

let store_value (env : lenv) pos (addr : Value.t) (ty : C.t) (v : Value.t) :
    unit =
  match ty with
  | C.Cstruct name ->
      (* struct assignment: bulk copy *)
      let sz = C.size_of env.g.reg (C.Cstruct name) in
      Builder.memcpy env.b addr v (Value.i64 sz)
  | C.Carr _ -> failp pos "assignment to array"
  | C.Cvoid -> failp pos "store of void"
  | _ ->
      if env.g.mode.ptr_mem_as_i64 && C.is_ptr_like ty then begin
        let as_int =
          Builder.cast env.b Instr.PtrToInt ~from:Ty.Ptr ~into:Ty.I64 v
        in
        Builder.store env.b Ty.I64 as_int addr
      end
      else Builder.store env.b (C.to_mir ty) v addr

(* --- expressions -------------------------------------------------------- *)

let rec lower_expr (env : lenv) (e : expr) : Value.t * C.t =
  let pos = e.epos in
  match e.e with
  | Eint v -> (Value.i32 v, C.Cint)
  | Efloat v -> (Value.Flt v, C.Cdouble)
  | Estr s ->
      let name = intern_string env.g s in
      (Value.Glob name, C.Cptr C.Cchar)
  | Eident _ | Eindex _ | Emember _ | Earrow _ | Ederef _ ->
      let addr, ty = lower_lvalue env e in
      load_value env pos addr ty
  | Eaddr lv ->
      let addr, ty = lower_lvalue env lv in
      (addr, C.Cptr ty)
  | Ecast (to_ty, inner) ->
      let v, from_ty = lower_expr env inner in
      if to_ty = C.Cvoid then (Value.i32 0, C.Cvoid)
      else (convert env pos v from_ty to_ty, to_ty)
  | Esizeof_ty t -> (Value.i64 (C.size_of env.g.reg t), C.Clong)
  | Esizeof_e inner ->
      let t = type_of_expr env inner in
      (Value.i64 (C.size_of env.g.reg t), C.Clong)
  | Eun (Uneg, a) ->
      let v, ty = lower_expr env a in
      let ty = promote ty in
      if ty = C.Cdouble then
        (Builder.fbinop env.b Instr.FSub (Value.Flt 0.0) v, ty)
      else
        let v = convert env pos v (type_of_expr env a) ty in
        (Builder.binop env.b Instr.Sub (C.to_mir ty) (Value.Int (C.to_mir ty, 0)) v, ty)
  | Eun (Ubnot, a) ->
      let v, ty0 = lower_expr env a in
      let ty = promote ty0 in
      let v = convert env pos v ty0 ty in
      ( Builder.binop env.b Instr.Xor (C.to_mir ty) v
          (Value.Int (C.to_mir ty, -1)),
        ty )
  | Eun (Unot, a) ->
      let c = lower_cond env a in
      let inv = Builder.binop env.b Instr.Xor Ty.I1 c (Value.i1 true) in
      (Builder.cast env.b Instr.Zext ~from:Ty.I1 ~into:Ty.I32 inv, C.Cint)
  | Ebin ((Bland | Blor), _, _) ->
      let c = lower_cond env e in
      (Builder.cast env.b Instr.Zext ~from:Ty.I1 ~into:Ty.I32 c, C.Cint)
  | Ebin ((Blt | Ble | Bgt | Bge | Beq | Bne), _, _) ->
      let c = lower_cond env e in
      (Builder.cast env.b Instr.Zext ~from:Ty.I1 ~into:Ty.I32 c, C.Cint)
  | Ebin (op, a, bb) -> lower_arith env pos op a bb
  | Eassign (lv, rhs) ->
      let addr, ty = lower_lvalue env lv in
      let v, vty = lower_expr env rhs in
      let v = convert env pos v vty ty in
      store_value env pos addr ty v;
      (v, ty)
  | Eopassign (op, lv, rhs) ->
      let addr, ty = lower_lvalue env lv in
      let cur, _ = load_value env pos addr ty in
      let v = lower_binop_values env pos op (cur, ty) (lower_expr env rhs) in
      let v = convert env pos (fst v) (snd v) ty in
      store_value env pos addr ty v;
      (v, ty)
  | Eincdec (order, dir, lv) ->
      let addr, ty = lower_lvalue env lv in
      let cur, _ = load_value env pos addr ty in
      let delta = match dir with `Inc -> 1 | `Dec -> -1 in
      let next =
        match C.decay ty with
        | C.Cptr elt ->
            Builder.gep env.b cur
              [ { stride = delta * C.size_of env.g.reg elt; idx = Value.i64 1 } ]
        | C.Cdouble ->
            Builder.fbinop env.b Instr.FAdd cur (Value.Flt (float_of_int delta))
        | t when C.is_integer t ->
            Builder.binop env.b Instr.Add (C.to_mir t) cur
              (Value.Int (C.to_mir t, delta))
        | t -> failp pos "cannot increment %s" (C.to_string t)
      in
      store_value env pos addr ty next;
      (match order with `Pre -> (next, ty) | `Post -> (cur, ty))
  | Ecall (name, args) -> lower_call env pos name args
  | Econd (c, a, bb) ->
      let cv = lower_cond env c in
      let lthen = fresh_label env "cond_t" in
      let lelse = fresh_label env "cond_f" in
      let ljoin = fresh_label env "cond_j" in
      Builder.cbr env.b cv lthen lelse;
      Builder.start_block env.b lthen;
      let av, aty = lower_expr env a in
      let lthen_end = current_label env in
      Builder.br env.b ljoin;
      Builder.start_block env.b lelse;
      let bv, bty = lower_expr env bb in
      let ty =
        if C.is_arith aty && C.is_arith bty then common_arith_type aty bty
        else C.decay aty
      in
      let bv = convert env pos bv bty ty in
      let lelse_end = current_label env in
      Builder.br env.b ljoin;
      Builder.start_block env.b ljoin;
      (* convert [av] in its own block: we could not convert before
         emitting the branch, so require arm types to agree modulo decay
         when conversions would be needed after the fact *)
      let av =
        if C.equal (C.decay aty) ty then av
        else
          match av with
          | Value.Int (_, k) -> Value.Int (C.to_mir ty, k)
          | _ -> failp pos "ternary arms have incompatible types"
      in
      let dst = Builder.fresh_var env.b ~name:"cond" (C.to_mir ty) in
      Builder.add_phi env.b
        {
          Instr.pdst = dst;
          incoming = [ (lthen_end, av); (lelse_end, bv) ];
        };
      (Value.Var dst, ty)

and current_label (env : lenv) : string =
  (* label of the block currently being built *)
  match env.b.Builder.cur_label with
  | Some l -> l
  | None -> invalid_arg "current_label: no open block"

and lower_arith (env : lenv) pos op a bb : Value.t * C.t =
  lower_binop_values env pos op (lower_expr env a) (lower_expr env bb)

and lower_binop_values (env : lenv) pos op ((va, ta) : Value.t * C.t)
    ((vb, tb) : Value.t * C.t) : Value.t * C.t =
  let ta = C.decay ta and tb = C.decay tb in
  match (op, ta, tb) with
  | Badd, C.Cptr elt, ti when C.is_integer ti ->
      let idx = convert env pos vb ti C.Clong in
      ( Builder.gep env.b va
          [ { stride = C.size_of env.g.reg elt; idx } ],
        C.Cptr elt )
  | Badd, ti, C.Cptr elt when C.is_integer ti ->
      let idx = convert env pos va ti C.Clong in
      ( Builder.gep env.b vb
          [ { stride = C.size_of env.g.reg elt; idx } ],
        C.Cptr elt )
  | Bsub, C.Cptr elt, ti when C.is_integer ti ->
      let idx = convert env pos vb ti C.Clong in
      ( Builder.gep env.b va
          [ { stride = -C.size_of env.g.reg elt; idx } ],
        C.Cptr elt )
  | Bsub, C.Cptr elt, C.Cptr _ ->
      let ia = Builder.cast env.b Instr.PtrToInt ~from:Ty.Ptr ~into:Ty.I64 va in
      let ib = Builder.cast env.b Instr.PtrToInt ~from:Ty.Ptr ~into:Ty.I64 vb in
      let diff = Builder.binop env.b Instr.Sub Ty.I64 ia ib in
      ( Builder.binop env.b Instr.SDiv Ty.I64 diff
          (Value.i64 (C.size_of env.g.reg elt)),
        C.Clong )
  | (Bshl | Bshr), ta, tb when C.is_integer ta && C.is_integer tb ->
      let ty = promote ta in
      let va = convert env pos va ta ty in
      let vb = convert env pos vb tb ty in
      let o = match op with Bshl -> Instr.Shl | _ -> Instr.AShr in
      (Builder.binop env.b o (C.to_mir ty) va vb, ty)
  | _, ta, tb when C.is_arith ta && C.is_arith tb ->
      let ty = common_arith_type ta tb in
      let va = convert env pos va ta ty in
      let vb = convert env pos vb tb ty in
      if ty = C.Cdouble then
        let o =
          match op with
          | Badd -> Instr.FAdd
          | Bsub -> Instr.FSub
          | Bmul -> Instr.FMul
          | Bdiv -> Instr.FDiv
          | _ -> failp pos "invalid float operation"
        in
        (Builder.fbinop env.b o va vb, ty)
      else
        let o =
          match op with
          | Badd -> Instr.Add
          | Bsub -> Instr.Sub
          | Bmul -> Instr.Mul
          | Bdiv -> Instr.SDiv
          | Bmod -> Instr.SRem
          | Band -> Instr.And
          | Bor -> Instr.Or
          | Bxor -> Instr.Xor
          | _ -> failp pos "unexpected operator"
        in
        (Builder.binop env.b o (C.to_mir ty) va vb, ty)
  | _ ->
      failp pos "invalid operands %s and %s" (C.to_string ta) (C.to_string tb)

(* condition: i1 value, short-circuiting for && / || *)
and lower_cond (env : lenv) (e : expr) : Value.t =
  let pos = e.epos in
  match e.e with
  | Ebin (Bland, a, bb) ->
      let la = lower_cond env a in
      let l_rhs = fresh_label env "and_rhs" in
      let l_join = fresh_label env "and_j" in
      let l_cur = current_label env in
      Builder.cbr env.b la l_rhs l_join;
      Builder.start_block env.b l_rhs;
      let lb = lower_cond env bb in
      let l_rhs_end = current_label env in
      Builder.br env.b l_join;
      Builder.start_block env.b l_join;
      let dst = Builder.fresh_var env.b ~name:"and" Ty.I1 in
      Builder.add_phi env.b
        {
          Instr.pdst = dst;
          incoming = [ (l_cur, Value.i1 false); (l_rhs_end, lb) ];
        };
      Value.Var dst
  | Ebin (Blor, a, bb) ->
      let la = lower_cond env a in
      let l_rhs = fresh_label env "or_rhs" in
      let l_join = fresh_label env "or_j" in
      let l_cur = current_label env in
      Builder.cbr env.b la l_join l_rhs;
      Builder.start_block env.b l_rhs;
      let lb = lower_cond env bb in
      let l_rhs_end = current_label env in
      Builder.br env.b l_join;
      Builder.start_block env.b l_join;
      let dst = Builder.fresh_var env.b ~name:"or" Ty.I1 in
      Builder.add_phi env.b
        {
          Instr.pdst = dst;
          incoming = [ (l_cur, Value.i1 true); (l_rhs_end, lb) ];
        };
      Value.Var dst
  | Ebin (((Blt | Ble | Bgt | Bge | Beq | Bne) as op), a, bb) ->
      let va, ta = lower_expr env a in
      let vb, tb = lower_expr env bb in
      let ta = C.decay ta and tb = C.decay tb in
      let icmp_of = function
        | Blt -> Instr.Slt
        | Ble -> Instr.Sle
        | Bgt -> Instr.Sgt
        | Bge -> Instr.Sge
        | Beq -> Instr.Eq
        | Bne -> Instr.Ne
        | _ -> assert false
      in
      if C.is_ptr_like ta || C.is_ptr_like tb then begin
        (* pointer comparisons are unsigned *)
        let uop =
          match op with
          | Blt -> Instr.Ult
          | Ble -> Instr.Ule
          | Bgt -> Instr.Ugt
          | Bge -> Instr.Uge
          | Beq -> Instr.Eq
          | Bne -> Instr.Ne
          | _ -> assert false
        in
        let va = if C.is_ptr_like ta then va else convert env pos va ta (C.Cptr C.Cvoid) in
        let vb = if C.is_ptr_like tb then vb else convert env pos vb tb (C.Cptr C.Cvoid) in
        Builder.icmp env.b uop Ty.Ptr va vb
      end
      else begin
        let ty = common_arith_type ta tb in
        let va = convert env pos va ta ty in
        let vb = convert env pos vb tb ty in
        if ty = C.Cdouble then
          let fop =
            match op with
            | Blt -> Instr.FLt
            | Ble -> Instr.FLe
            | Bgt -> Instr.FGt
            | Bge -> Instr.FGe
            | Beq -> Instr.FEq
            | Bne -> Instr.FNe
            | _ -> assert false
          in
          Builder.fcmp env.b fop va vb
        else Builder.icmp env.b (icmp_of op) (C.to_mir ty) va vb
      end
  | Eun (Unot, a) ->
      let c = lower_cond env a in
      Builder.binop env.b Instr.Xor Ty.I1 c (Value.i1 true)
  | _ ->
      let v, ty = lower_expr env e in
      let ty = C.decay ty in
      if ty = C.Cdouble then Builder.fcmp env.b Instr.FNe v (Value.Flt 0.0)
      else if C.is_ptr_like ty then
        Builder.icmp env.b Instr.Ne Ty.Ptr v Value.null
      else
        Builder.icmp env.b Instr.Ne (C.to_mir ty) v
          (Value.Int (C.to_mir ty, 0))

and lower_call (env : lenv) pos name (args : expr list) : Value.t * C.t =
  (* memcpy/memset/memmove become MIR intrinsic ops *)
  match name with
  | "memcpy" | "memmove" ->
      let d, _ = lower_expr env (List.nth args 0) in
      let s, _ = lower_expr env (List.nth args 1) in
      let n, nt = lower_expr env (List.nth args 2) in
      let n = convert env pos n nt C.Clong in
      Builder.memcpy env.b d s n;
      (d, C.Cptr C.Cvoid)
  | "memset" ->
      let d, _ = lower_expr env (List.nth args 0) in
      let c, ct = lower_expr env (List.nth args 1) in
      let c = convert env pos c ct C.Cint in
      let n, nt = lower_expr env (List.nth args 2) in
      let n = convert env pos n nt C.Clong in
      Builder.memset env.b d c n;
      (d, C.Cptr C.Cvoid)
  | _ -> (
      match Hashtbl.find_opt env.g.sigs name with
      | None -> failp pos "call to undeclared function %s" name
      | Some (ret, param_tys) ->
          if List.length param_tys <> List.length args then
            failp pos "%s expects %d arguments, got %d" name
              (List.length param_tys) (List.length args);
          let vargs =
            List.map2
              (fun pty arg ->
                let v, aty = lower_expr env arg in
                convert env pos v aty pty)
              param_tys args
          in
          if ret = C.Cvoid then begin
            ignore (Builder.call env.b ~ret:None name vargs);
            (Value.i32 0, C.Cvoid)
          end
          else
            let v = Builder.call_val env.b (C.to_mir ret) name vargs in
            (v, ret))

(* static type of an expression, for sizeof(expr); no code emitted *)
and type_of_expr (env : lenv) (e : expr) : C.t =
  match e.e with
  | Eint _ -> C.Cint
  | Efloat _ -> C.Cdouble
  | Estr s -> C.Carr (C.Cchar, Some (String.length s + 1))
  | Eident name -> (
      match List.assoc_opt name env.vars with
      | Some (_, ty) -> ty
      | None -> (
          match Hashtbl.find_opt env.g.globals name with
          | Some ty -> ty
          | None -> failp e.epos "undeclared identifier %s" name))
  | Ederef inner -> C.pointee (C.decay (type_of_expr env inner))
  | Eindex (a, _) -> C.pointee (C.decay (type_of_expr env a))
  | Emember (s, f) -> (
      match C.decay (type_of_expr env s) with
      | C.Cstruct sn -> (C.find_field env.g.reg sn f).fld_ty
      | t -> failp e.epos "member of non-struct %s" (C.to_string t))
  | Earrow (p, f) -> (
      match C.decay (type_of_expr env p) with
      | C.Cptr (C.Cstruct sn) -> (C.find_field env.g.reg sn f).fld_ty
      | t -> failp e.epos "arrow on %s" (C.to_string t))
  | Eaddr lv -> C.Cptr (type_of_expr env lv)
  | Ecast (t, _) -> t
  | Ecall (name, _) -> (
      match Hashtbl.find_opt env.g.sigs name with
      | Some (ret, _) -> ret
      | None -> failp e.epos "undeclared function %s" name)
  | Ebin ((Blt | Ble | Bgt | Bge | Beq | Bne | Bland | Blor), _, _)
  | Eun (Unot, _) ->
      C.Cint
  | Ebin (op, a, b) -> (
      let ta = C.decay (type_of_expr env a)
      and tb = C.decay (type_of_expr env b) in
      match (op, ta, tb) with
      | Badd, C.Cptr _, _ | Bsub, C.Cptr _, _ ->
          if op = Bsub && C.is_ptr_like tb then C.Clong else ta
      | Badd, _, C.Cptr _ -> tb
      | (Bshl | Bshr), _, _ -> promote ta
      | _ -> common_arith_type ta tb)
  | Eun (_, a) -> promote (type_of_expr env a)
  | Eassign (lv, _) | Eopassign (_, lv, _) | Eincdec (_, _, lv) ->
      type_of_expr env lv
  | Esizeof_ty _ | Esizeof_e _ -> C.Clong
  | Econd (_, a, _) -> C.decay (type_of_expr env a)

(* address of an lvalue; returns (address, object type) *)
and lower_lvalue (env : lenv) (e : expr) : Value.t * C.t =
  let pos = e.epos in
  match e.e with
  | Eident name -> lookup_var env pos name
  | Ederef inner ->
      let v, ty = lower_expr env inner in
      (v, C.pointee (C.decay ty))
  | Eindex (a, i) ->
      let base, ty = lower_expr env a in
      let elt = C.pointee (C.decay ty) in
      let iv, ity = lower_expr env i in
      let iv = convert env pos iv ity C.Clong in
      ( Builder.gep env.b base
          [ { stride = C.size_of env.g.reg elt; idx = iv } ],
        elt )
  | Emember (s, f) -> (
      let addr, ty = lower_lvalue env s in
      match C.decay ty with
      | C.Cstruct sn ->
          let fld = C.find_field env.g.reg sn f in
          ( Builder.gep env.b addr
              [ { stride = 1; idx = Value.i64 fld.fld_off } ],
            fld.fld_ty )
      | t -> failp pos "member access on %s" (C.to_string t))
  | Earrow (p, f) -> (
      let v, ty = lower_expr env p in
      match C.decay ty with
      | C.Cptr (C.Cstruct sn) ->
          let fld = C.find_field env.g.reg sn f in
          ( Builder.gep env.b v
              [ { stride = 1; idx = Value.i64 fld.fld_off } ],
            fld.fld_ty )
      | t -> failp pos "arrow on %s" (C.to_string t))
  | _ -> failp pos "expression is not an lvalue"

(* --- statements --------------------------------------------------------- *)

(* Initialize the object at [addr] of type [ty] from an initializer. *)
let rec lower_init (env : lenv) pos (addr : Value.t) (ty : C.t)
    (init : init) : unit =
  match (init, ty) with
  | Iexpr e, _ ->
      let v, vty = lower_expr env e in
      let v = convert env pos v vty ty in
      store_value env pos addr ty v
  | Ilist items, C.Carr (elt, _) ->
      let esz = C.size_of env.g.reg elt in
      List.iteri
        (fun k item ->
          let a =
            Builder.gep env.b addr [ { stride = 1; idx = Value.i64 (k * esz) } ]
          in
          lower_init env pos a elt item)
        items
  | Ilist items, C.Cstruct sn ->
      let s =
        match Hashtbl.find_opt env.g.reg sn with
        | Some s -> s
        | None -> failp pos "undeclared struct %s" sn
      in
      List.iteri
        (fun k item ->
          match List.nth_opt s.s_fields k with
          | None -> failp pos "too many initializers for struct %s" sn
          | Some fld ->
              let a =
                Builder.gep env.b addr
                  [ { stride = 1; idx = Value.i64 fld.fld_off } ]
              in
              lower_init env pos a fld.fld_ty item)
        items
  | Ilist _, t -> failp pos "brace initializer for %s" (C.to_string t)

(* ensure the current block is terminated; statements after return etc.
   land in a fresh dead block that simplifycfg removes *)
let ensure_open (env : lenv) =
  if not (Builder.in_block env.b) then
    Builder.start_block env.b (fresh_label env "dead")

let rec lower_stmt (env : lenv) (st : stmt) : unit =
  ensure_open env;
  let pos = st.spos in
  match st.s with
  | Sexpr e -> ignore (lower_expr env e)
  | Sblock stmts -> lower_scope env stmts
  | Sseq stmts -> List.iter (lower_stmt env) stmts
  | Sdecl (ty, name, init) ->
      let ty =
        (* char s[] = "..." infers its size *)
        match (ty, init) with
        | C.Carr (C.Cchar, None), Some (Iexpr { e = Estr s; _ }) ->
            C.Carr (C.Cchar, Some (String.length s + 1))
        | C.Carr (elt, None), Some (Ilist items) ->
            C.Carr (elt, Some (List.length items))
        | _ -> ty
      in
      let size = C.size_of env.g.reg ty in
      let align = C.align_of env.g.reg ty in
      let addr = Builder.alloca env.b ~align size in
      env.vars <- (name, (addr, ty)) :: env.vars;
      (match (ty, init) with
      | C.Carr (C.Cchar, Some _), Some (Iexpr { e = Estr s; _ }) ->
          (* copy the string into the array *)
          let strg = intern_string env.g s in
          Builder.memcpy env.b addr (Value.Glob strg)
            (Value.i64 (String.length s + 1))
      | _, Some init -> lower_init env pos addr ty init
      | _, None -> ())
  | Sif (c, thn, els) ->
      let cv = lower_cond env c in
      let lt = fresh_label env "if_t" in
      let lf = fresh_label env "if_f" in
      let lj = fresh_label env "if_j" in
      if els = [] then begin
        Builder.cbr env.b cv lt lj;
        Builder.start_block env.b lt;
        lower_scope env thn;
        if Builder.in_block env.b then Builder.br env.b lj;
        Builder.start_block env.b lj
      end
      else begin
        Builder.cbr env.b cv lt lf;
        Builder.start_block env.b lt;
        lower_scope env thn;
        if Builder.in_block env.b then Builder.br env.b lj;
        Builder.start_block env.b lf;
        lower_scope env els;
        if Builder.in_block env.b then Builder.br env.b lj;
        Builder.start_block env.b lj
      end
  | Swhile (c, body) ->
      let lph = fresh_label env "while_ph" in
      let lh = fresh_label env "while_h" in
      let lb = fresh_label env "while_b" in
      let lx = fresh_label env "while_x" in
      Builder.br env.b lph;
      Builder.start_block env.b lph;
      Builder.br env.b lh;
      Builder.start_block env.b lh;
      let cv = lower_cond env c in
      Builder.cbr env.b cv lb lx;
      Builder.start_block env.b lb;
      env.loops <- { break_to = lx; continue_to = lh } :: env.loops;
      lower_scope env body;
      env.loops <- List.tl env.loops;
      if Builder.in_block env.b then Builder.br env.b lh;
      Builder.start_block env.b lx
  | Sdo (body, c) ->
      let lph = fresh_label env "do_ph" in
      let lb = fresh_label env "do_b" in
      let lc = fresh_label env "do_c" in
      let lx = fresh_label env "do_x" in
      Builder.br env.b lph;
      Builder.start_block env.b lph;
      Builder.br env.b lb;
      Builder.start_block env.b lb;
      env.loops <- { break_to = lx; continue_to = lc } :: env.loops;
      lower_scope env body;
      env.loops <- List.tl env.loops;
      if Builder.in_block env.b then Builder.br env.b lc;
      Builder.start_block env.b lc;
      let cv = lower_cond env c in
      Builder.cbr env.b cv lb lx;
      Builder.start_block env.b lx
  | Sfor (init, cond, step, body) ->
      let saved_vars = env.vars in
      (match init with Some st -> lower_stmt env st | None -> ());
      let lph = fresh_label env "for_ph" in
      let lh = fresh_label env "for_h" in
      let lb = fresh_label env "for_b" in
      let ls = fresh_label env "for_s" in
      let lx = fresh_label env "for_x" in
      Builder.br env.b lph;
      Builder.start_block env.b lph;
      Builder.br env.b lh;
      Builder.start_block env.b lh;
      (match cond with
      | Some c ->
          let cv = lower_cond env c in
          Builder.cbr env.b cv lb lx
      | None -> Builder.br env.b lb);
      Builder.start_block env.b lb;
      env.loops <- { break_to = lx; continue_to = ls } :: env.loops;
      lower_scope env body;
      env.loops <- List.tl env.loops;
      if Builder.in_block env.b then Builder.br env.b ls;
      Builder.start_block env.b ls;
      (match step with Some e -> ignore (lower_expr env e) | None -> ());
      Builder.br env.b lh;
      Builder.start_block env.b lx;
      env.vars <- saved_vars
  | Sreturn None ->
      if env.f_ret <> C.Cvoid then failp pos "return without value";
      Builder.ret env.b None
  | Sreturn (Some e) ->
      let v, ty = lower_expr env e in
      let v = convert env pos v ty env.f_ret in
      Builder.ret env.b (Some v)
  | Sbreak -> (
      match env.loops with
      | { break_to; _ } :: _ -> Builder.br env.b break_to
      | [] -> failp pos "break outside loop")
  | Scontinue -> (
      match env.loops with
      | { continue_to; _ } :: _ -> Builder.br env.b continue_to
      | [] -> failp pos "continue outside loop")

and lower_scope (env : lenv) (stmts : stmt list) : unit =
  let saved = env.vars in
  List.iter (lower_stmt env) stmts;
  env.vars <- saved

(* --- functions ----------------------------------------------------------- *)

(* Move all constant allocas to the start of the entry block, preserving
   order, as clang does for static allocas. *)
let hoist_allocas (f : Func.t) : unit =
  let allocas = ref [] in
  let blocks =
    List.map
      (fun (b : Block.t) ->
        let keep =
          List.filter
            (fun (i : Instr.t) ->
              match i.op with
              | Instr.Alloca _ ->
                  allocas := i :: !allocas;
                  false
              | _ -> true)
            b.body
        in
        { b with body = keep })
      f.blocks
  in
  match blocks with
  | entry :: rest ->
      f.blocks <-
        { entry with body = List.rev !allocas @ entry.body } :: rest
  | [] -> ()

let lower_func (g : genv) (fd : func) : Func.t =
  let ret_mir =
    if fd.f_ret = C.Cvoid then None else Some (C.to_mir fd.f_ret)
  in
  (* parameters become MIR params; locals for address-taken semantics *)
  let params =
    List.mapi
      (fun i (p : param) ->
        { Value.vid = i; vname = p.p_name; vty = C.to_mir p.p_ty })
      fd.f_params
  in
  let b = Builder.create ~name:fd.f_name ~params ~ret_ty:ret_mir in
  let env =
    { g; b; f_ret = fd.f_ret; vars = []; label_count = 0; loops = [] }
  in
  Builder.start_block b "entry";
  (* spill parameters to allocas so their address can be taken; mem2reg
     promotes them back, exactly like clang -O0 output *)
  List.iteri
    (fun i (p : param) ->
      let size = C.size_of g.reg p.p_ty in
      let addr = Builder.alloca b ~align:(C.align_of g.reg p.p_ty) size in
      store_value env fd.f_pos addr p.p_ty (Value.Var (List.nth params i));
      env.vars <- (p.p_name, (addr, p.p_ty)) :: env.vars)
    fd.f_params;
  List.iter (lower_stmt env) fd.f_body;
  (* fall off the end *)
  if Builder.in_block b then begin
    if fd.f_ret = C.Cvoid then Builder.ret b None
    else if fd.f_name = "main" then
      Builder.ret b (Some (Value.Int (C.to_mir fd.f_ret, 0)))
    else Builder.ret b (Some (Value.Int (C.to_mir fd.f_ret, 0)))
  end;
  let f = Builder.finish b in
  hoist_allocas f;
  f

(* --- global initializers -------------------------------------------------- *)

type cval = CI of int | CF of float | CPtrG of string

let rec const_eval (g : genv) (e : expr) : cval =
  match e.e with
  | Eint v -> CI v
  | Efloat v -> CF v
  | Estr s -> CPtrG (intern_string g s)
  | Eun (Uneg, a) -> (
      match const_eval g a with
      | CI v -> CI (-v)
      | CF v -> CF (-.v)
      | CPtrG _ -> failp e.epos "cannot negate address constant")
  | Ecast (_, a) -> const_eval g a
  | Esizeof_ty t -> CI (C.size_of g.reg t)
  | Ebin (op, a, b) -> (
      match (const_eval g a, const_eval g b) with
      | CI x, CI y ->
          CI
            (match op with
            | Badd -> x + y
            | Bsub -> x - y
            | Bmul -> x * y
            | Bdiv -> x / y
            | Bmod -> x mod y
            | Bshl -> x lsl y
            | Bshr -> x asr y
            | Band -> x land y
            | Bor -> x lor y
            | Bxor -> x lxor y
            | _ -> failp e.epos "unsupported constant operator")
      | _ -> failp e.epos "non-integer constant arithmetic")
  | Eaddr { e = Eident n; _ } -> CPtrG n
  | Eident n -> CPtrG n (* array global decaying to pointer *)
  | _ -> failp e.epos "initializer is not a constant expression"

let bytes_of_int width v =
  String.init width (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))

(* Double initializers need all 64 bits of the IEEE pattern: going
   through a 63-bit OCaml int would clip the sign bit, so negative
   double globals would read back positive. *)
let bytes_of_int64 (v : int64) =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))

let rec global_fields (g : genv) pos (ty : C.t) (init : init option) :
    Irmod.gfield list =
  let size = C.size_of g.reg ty in
  match init with
  | None -> [ Irmod.GZero size ]
  | Some (Iexpr e) -> (
      match (ty, e.e) with
      | C.Carr (C.Cchar, Some n), Estr s ->
          let s = s ^ "\000" in
          if String.length s > n then failp pos "string too long";
          [ Irmod.GBytes s; Irmod.GZero (n - String.length s) ]
          |> List.filter (fun f -> Irmod.field_size f > 0)
      | _, _ -> (
          match const_eval g e with
          | CI v ->
              if C.is_integer ty then [ Irmod.GBytes (bytes_of_int size v) ]
              else if C.is_ptr_like ty && v = 0 then [ Irmod.GZero 8 ]
              else if C.is_ptr_like ty then
                [ Irmod.GBytes (bytes_of_int 8 v) ]
              else if ty = C.Cdouble then
                [
                  Irmod.GBytes
                    (bytes_of_int64 (Int64.bits_of_float (float_of_int v)));
                ]
              else failp pos "bad scalar initializer"
          | CF v ->
              [ Irmod.GBytes (bytes_of_int64 (Int64.bits_of_float v)) ]
          | CPtrG name -> [ Irmod.GPtr name ]))
  | Some (Ilist items) -> (
      match ty with
      | C.Carr (elt, Some n) ->
          let esz = C.size_of g.reg elt in
          let fields =
            List.concat_map
              (fun item -> global_fields g pos elt (Some item))
              items
          in
          let used = List.length items * esz in
          if List.length items > n then failp pos "too many initializers";
          if used < size then fields @ [ Irmod.GZero (size - used) ]
          else fields
      | C.Cstruct sn ->
          let s = Hashtbl.find g.reg sn in
          let off = ref 0 in
          let fields = ref [] in
          List.iteri
            (fun k item ->
              match List.nth_opt s.s_fields k with
              | None -> failp pos "too many initializers for struct"
              | Some fld ->
                  if fld.fld_off > !off then
                    fields := Irmod.GZero (fld.fld_off - !off) :: !fields;
                  fields :=
                    List.rev (global_fields g pos fld.fld_ty (Some item))
                    @ !fields;
                  off := fld.fld_off + C.size_of g.reg fld.fld_ty)
            items;
          if !off < size then fields := Irmod.GZero (size - !off) :: !fields;
          List.rev !fields
      | _ -> failp pos "brace initializer for scalar")

(* --- program ---------------------------------------------------------------- *)

exception Compile_error of string

(** Compile a MiniC translation unit to a MIR module. *)
let compile ?(mode = default_mode) ?(name = "tu") (src : string) : Irmod.t =
  let decls =
    try Cparse.parse_program src with
    | Cparse.Parse_error (p, msg) ->
        raise
          (Compile_error
             (Printf.sprintf "parse error at %d:%d: %s" p.line p.col msg))
    | Lexer.Lex_error (p, msg) ->
        raise
          (Compile_error
             (Printf.sprintf "lex error at %d:%d: %s" p.line p.col msg))
  in
  let g =
    {
      reg = C.create_registry ();
      sigs = Hashtbl.create 32;
      globals = Hashtbl.create 32;
      m = Irmod.mk name;
      mode;
      str_count = 0;
    }
  in
  List.iter (fun (n, s) -> Hashtbl.replace g.sigs n s) builtin_sigs;
  try
    (* first pass: declare structs, signatures, globals *)
    List.iter
      (fun d ->
        match d with
        | Dstruct (n, fields, _) -> ignore (C.define_struct g.reg n fields)
        | Dproto (n, ret, ptys, _) ->
            Hashtbl.replace g.sigs n (ret, List.map C.decay ptys)
        | Dfunc fd ->
            Hashtbl.replace g.sigs fd.f_name
              (fd.f_ret, List.map (fun p -> C.decay p.p_ty) fd.f_params)
        | Dglobal gd ->
            let ty =
              match (gd.g_ty, gd.g_init) with
              | C.Carr (C.Cchar, None), Some (Iexpr { e = Estr s; _ }) ->
                  C.Carr (C.Cchar, Some (String.length s + 1))
              | C.Carr (elt, None), Some (Ilist items) ->
                  C.Carr (elt, Some (List.length items))
              | t, _ -> t
            in
            Hashtbl.replace g.globals gd.g_name ty)
      decls;
    (* second pass: emit globals and functions *)
    List.iter
      (fun d ->
        match d with
        | Dstruct _ -> ()
        | Dproto (n, ret, ptys, _) ->
            (* extern function declaration: if not defined in this unit,
               declare it in MIR too *)
            if
              (not (List.mem_assoc n builtin_sigs))
              && not
                   (List.exists
                      (function Dfunc fd -> fd.f_name = n | _ -> false)
                      decls)
            then begin
              let params =
                List.mapi
                  (fun i t ->
                    {
                      Value.vid = i;
                      vname = Printf.sprintf "a%d" i;
                      vty = C.to_mir (C.decay t);
                    })
                  ptys
              in
              let ret_ty = if ret = C.Cvoid then None else Some (C.to_mir ret) in
              Irmod.add_func g.m
                (Func.mk ~is_external:true ~name:n ~params ~ret_ty [])
            end
        | Dglobal gd ->
            let ty = Hashtbl.find g.globals gd.g_name in
            let size_known =
              match ty with C.Carr (_, None) -> false | _ -> true
            in
            let size =
              if size_known then C.size_of g.reg ty else 0
            in
            let align = if size_known then C.align_of g.reg ty else 8 in
            if gd.g_extern then
              Irmod.add_global g.m
                (Irmod.mk_global ~align ~extern:true ~size_known
                   ~name:gd.g_name ~size [])
            else if not size_known then
              raise
                (Compile_error
                   (Printf.sprintf
                      "global %s: size-less array must be extern" gd.g_name))
            else
              Irmod.add_global g.m
                (Irmod.mk_global ~align ~name:gd.g_name ~size
                   (global_fields g gd.g_pos ty gd.g_init))
        | Dfunc fd -> Irmod.add_func g.m (lower_func g fd))
      decls;
    g.m
  with
  | Lower_error (p, msg) ->
      raise
        (Compile_error (Printf.sprintf "error at %d:%d: %s" p.line p.col msg))
  | C.Type_error msg -> raise (Compile_error ("type error: " ^ msg))
