(** Low-Fat Pointers runtime (Duck & Yap, CC'16; stack protection NDSS'17;
    globals arXiv'18).

    The virtual address space is partitioned into regions, one per
    power-of-two size class from 2^4 to 2^30 bytes (see {!Mi_vm.Layout});
    an allocation of size [s] is served from the region of class
    [2^ceil(log2 (s+1))] — the extra byte implements the paper's
    footnote 3, making one-past-the-end pointers in-bounds.  Base and size
    of an object are recomputed from any pointer into it by masking, which
    is what {!base} and the checks do.

    Allocations larger than the largest class, or allocations in an
    exhausted region, fall back to the standard allocator and yield
    non-low-fat pointers with wide bounds (§4.6 — the 429mcf case). *)

open Mi_vm
module Layout = Mi_vm.Layout
module Util = Mi_support.Util

type t = {
  st : State.t;
  bump : int array;  (** per region index: next unallocated address *)
  free : int list ref array;  (** per region: free list *)
  mutable frames : int list list;
      (** mirrored stack allocations per active frame (stack protection) *)
  saved_frame_enter : State.t -> unit;
  saved_frame_exit : State.t -> unit;
}

(* --- pointer arithmetic (mirrors Figures 4/5 of the paper) ----------- *)

let region_of_addr addr = Layout.region_index addr

let is_low_fat = Layout.is_low_fat

(** Size class (bytes) of the object containing [addr]; [None] if the
    address is not in a low-fat region ("wide bounds"). *)
let alloc_size addr =
  if is_low_fat addr then Some (Layout.size_of_region (region_of_addr addr))
  else None

(** Base pointer of the object containing [addr]: mask away the offset
    bits.  Non-low-fat pointers are returned unchanged (their region has
    no mask — they get wide bounds at check time). *)
let base addr =
  match alloc_size addr with
  | Some size -> addr land lnot (size - 1)
  | None -> addr

(** Smallest region able to hold [padded] bytes. *)
let class_of_size padded =
  let k = max Layout.min_size_log (Util.log2_exact (Util.round_up_pow2 padded)) in
  if k > Layout.max_size_log then None else Some (Layout.region_of_size_log k)

(* --- allocation ------------------------------------------------------ *)

let lf_malloc (t : t) st sz =
  if sz < 0 then raise (State.Trap "malloc with negative size");
  State.charge st st.State.cost.Cost.lf_alloc;
  State.bump st "lf.malloc";
  (* +1 byte of padding for one-past-the-end pointers (footnote 3) *)
  match class_of_size (max sz 1 + 1) with
  | None ->
      (* larger than the largest supported size: standard allocator *)
      State.bump st "lf.fallback_large";
      State.std_malloc st sz
  | Some r -> (
      let size = Layout.size_of_region r in
      match !(t.free.(r)) with
      | a :: rest ->
          t.free.(r) := rest;
          State.observe st "alloc.bytes" sz;
          Hashtbl.replace st.State.alloc_sizes a sz;
          a
      | [] ->
          let a = t.bump.(r) in
          if a + size > Layout.region_start (r + 1) then begin
            (* region exhausted: fall back, pointer is not low-fat *)
            State.bump st "lf.fallback_exhausted";
            State.std_malloc st sz
          end
          else begin
            t.bump.(r) <- a + size;
            State.observe st "alloc.bytes" sz;
            Hashtbl.replace st.State.alloc_sizes a sz;
            a
          end)

let lf_free (t : t) st addr =
  if addr <> 0 then
    if is_low_fat addr then begin
      State.charge st st.State.cost.Cost.lf_alloc;
      State.bump st "lf.free";
      let r = region_of_addr addr in
      let size = Layout.size_of_region r in
      if addr land (size - 1) <> 0 then
        raise (State.Trap "free of interior low-fat pointer");
      Hashtbl.remove st.State.alloc_sizes addr;
      t.free.(r) := addr :: !(t.free.(r))
    end
    else State.std_free st addr

(* --- checks ----------------------------------------------------------- *)

(* Dereference check, Figure 5 of the paper:
   fail iff (ptr - base) > alloc_size - width, computed unsigned. *)
let check ?(site = -1) st ptr width b =
  State.charge st st.State.cost.Cost.lf_check;
  State.bump st "lf.checks";
  match alloc_size b with
  | None ->
      (* non-low-fat base: wide bounds, access unprotected (§4.6) *)
      State.bump st "lf.checks_wide";
      State.site_hit st site ~wide:true ~cycles:st.State.cost.Cost.lf_check
  | Some size ->
      State.site_hit st site ~wide:false ~cycles:st.State.cost.Cost.lf_check;
      let off = ptr - b in
      if off < 0 || off > size - width then
        raise
          (State.Safety_abort
             {
               checker = "lowfat";
               reason =
                 Printf.sprintf
                   "out-of-bounds access: ptr=%#x base=%#x size=%d width=%d"
                   ptr b size width;
             })

(* Escape check establishing the in-bounds invariant (Table 1, §4.2):
   a pointer leaving the function must point into its witness's object. *)
let invariant_check ?(site = -1) st ptr b =
  State.charge st st.State.cost.Cost.lf_check;
  State.bump st "lf.inv_checks";
  match alloc_size b with
  | None ->
      State.bump st "lf.inv_checks_wide";
      State.site_hit st site ~wide:true ~cycles:st.State.cost.Cost.lf_check
  | Some size ->
      State.site_hit st site ~wide:false ~cycles:st.State.cost.Cost.lf_check;
      let off = ptr - b in
      if off < 0 || off > size - 1 then
        raise
          (State.Safety_abort
             {
               checker = "lowfat";
               reason =
                 Printf.sprintf
                   "out-of-bounds pointer escapes: ptr=%#x base=%#x size=%d"
                   ptr b size;
             })

(* --- installation ----------------------------------------------------- *)

(** Attach the Low-Fat runtime to a VM state.  [stack_protection] mirrors
    instrumented [alloca]s into low-fat regions and frees them on frame
    exit; it must be on when the instrumentation was configured with
    [lf_stack]. *)
let install ?(stack_protection = true) (st : State.t) : t =
  let n = Layout.max_region + 2 in
  let t =
    {
      st;
      bump = Array.init n (fun r -> Layout.region_start r);
      free = Array.init n (fun _ -> ref []);
      frames = [];
      saved_frame_enter = st.frame_enter_hook;
      saved_frame_exit = st.frame_exit_hook;
    }
  in
  (* the process-wide allocator becomes low-fat: external libraries get
     protected heap objects automatically (§4.3) *)
  st.malloc_hook <- (fun st sz -> lf_malloc t st sz);
  st.free_hook <- (fun st a -> lf_free t st a);
  let base_recompute st ptr =
    State.charge st st.State.cost.Cost.lf_base;
    State.bump st "lf.base_recompute";
    base ptr
  in
  (* Generic builtins paired with their typed fast twins — same
     underlying functions, so charges, counters, site attribution and
     aborts are identical. *)
  Runtime.register st
    [
      Runtime.entry Mi_mir.Intrinsics.lf_base
        (fun st args ->
          Some (State.I (base_recompute st (State.as_int args.(0)))))
        ~fast:(State.FR1 base_recompute);
      Runtime.entry Mi_mir.Intrinsics.lf_check
        (fun st args ->
          (* the optional 4th argument is the instrumentation site id *)
          let site =
            if Array.length args > 3 then State.as_int args.(3) else -1
          in
          check ~site st
            (State.as_int args.(0))
            (State.as_int args.(1))
            (State.as_int args.(2));
          None)
        ~fast:(State.F4 (fun st ptr width b site -> check ~site st ptr width b));
      Runtime.entry Mi_mir.Intrinsics.lf_invariant_check
        (fun st args ->
          let site =
            if Array.length args > 2 then State.as_int args.(2) else -1
          in
          invariant_check ~site st (State.as_int args.(0))
            (State.as_int args.(1));
          None)
        ~fast:(State.F3 (fun st ptr b site -> invariant_check ~site st ptr b));
    ];
  if stack_protection then begin
    let alloca_impl st sz =
      let a = lf_malloc t st sz in
      (match t.frames with
      | f :: rest -> t.frames <- (a :: f) :: rest
      | [] -> t.frames <- [ [ a ] ]);
      a
    in
    Runtime.register st
      [
        Runtime.entry Mi_mir.Intrinsics.lf_alloca
          (fun st args ->
            Some (State.I (alloca_impl st (State.as_int args.(0)))))
          ~fast:(State.FR1 alloca_impl);
      ];
    st.frame_enter_hook <-
      (fun st ->
        t.saved_frame_enter st;
        t.frames <- [] :: t.frames);
    st.frame_exit_hook <-
      (fun st ->
        (match t.frames with
        | f :: rest ->
            List.iter (fun a -> lf_free t st a) f;
            t.frames <- rest
        | [] -> ());
        t.saved_frame_exit st)
  end;
  t

(** Global-variable mirroring ([Duck & Yap 2018]): place defined globals in
    low-fat regions so accesses to them are protected.  Pass as
    [~alloc_global] to {!Mi_vm.Interp.load}. *)
let alloc_global (t : t) (st : State.t) ~size ~align =
  ignore align;
  State.bump st "lf.global_mirror";
  lf_malloc t st size
