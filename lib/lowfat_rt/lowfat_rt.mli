(** Low-Fat Pointers runtime (Duck & Yap CC'16, NDSS'17 stack protection,
    arXiv'18 globals).

    The VM's address space is partitioned into regions, one per
    power-of-two size class from 2^4 to 2^30 bytes; base and size of any
    allocation are recomputed from a pointer's value by masking.
    Allocations beyond the largest class or in an exhausted region fall
    back to the standard allocator and receive wide bounds (§4.6). *)

open Mi_vm

type t
(** Runtime state: per-region bump pointers and free lists, plus the
    mirrored stack-allocation frames. *)

(** {1 Pointer arithmetic (Figures 4/5 of the paper)} *)

val region_of_addr : int -> int
val is_low_fat : int -> bool

val alloc_size : int -> int option
(** Size class of the object containing the address; [None] if the
    address is not low-fat (wide bounds). *)

val base : int -> int
(** Base pointer of the containing object, by masking away the offset
    bits.  Non-low-fat addresses are returned unchanged. *)

val class_of_size : int -> int option
(** Smallest region index able to hold the given padded byte count;
    [None] beyond the largest class. *)

(** {1 Allocation} *)

val lf_malloc : t -> State.t -> int -> int
(** Allocate with +1 byte of padding (one-past-the-end support,
    footnote 3); falls back to {!State.std_malloc} for oversized requests
    or exhausted regions, bumping the [lf.fallback_*] counters. *)

val lf_free : t -> State.t -> int -> unit
(** Return a low-fat object to its region's free list; forwards
    non-low-fat pointers to the standard allocator.  Traps on interior
    pointers. *)

(** {1 Checks} *)

val check : ?site:int -> State.t -> int -> int -> int -> unit
(** [check st ptr width base]: the dereference check of Figure 5.
    Raises {!State.Safety_abort} when [ptr..ptr+width) leaves the object;
    counts wide (unprotected) checks when [base] is not low-fat.  [site]
    attributes the execution to an instrumentation site
    ({!Mi_obs.Site}). *)

val invariant_check : ?site:int -> State.t -> int -> int -> unit
(** [invariant_check st ptr base]: the escape check establishing the
    in-bounds invariant (Table 1, §4.2). *)

(** {1 Installation} *)

val install : ?stack_protection:bool -> State.t -> t
(** Attach the runtime: replaces the process-wide allocator (external
    libraries get low-fat heap objects automatically, §4.3), registers
    the [__mi_lf_*] builtins, and — with [stack_protection] — the
    mirrored [__mi_lf_alloca] with frame-exit cleanup. *)

val alloc_global : t -> State.t -> size:int -> align:int -> int
(** Global-variable mirroring: place a global in a low-fat region.  Pass
    via [~alloc_global] to {!Mi_vm.Interp.load} for globals defined in
    instrumented translation units. *)
