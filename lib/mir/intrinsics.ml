(** Registry of runtime functions the instrumentation and the VM know
    about, with the effect information the optimizer needs.

    Instrumentation code is inserted as calls to these functions (the
    paper's "calls to check functions", Fig. 8): checks may abort the
    program and therefore act as barriers for code motion, while metadata
    loads are removable when their result is unused — the exact property
    the paper observes when the compiler deletes unused trie loads
    (§5.4). *)

(* --- memory-safety runtime ---------------------------------------- *)

(* SoftBound *)
let sb_check = "__mi_sb_check" (* (ptr, width, base, bound) *)
let sb_trie_load_base = "__mi_sb_trie_load_base" (* (addr) -> ptr *)
let sb_trie_load_bound = "__mi_sb_trie_load_bound" (* (addr) -> ptr *)
let sb_trie_store = "__mi_sb_trie_store" (* (addr, base, bound) *)
let sb_meta_copy = "__mi_sb_meta_copy" (* (dst, src, len) *)

(* shadow stack (shared protocol; only SoftBound uses it) *)
let ss_enter = "__mi_ss_enter" (* (nslots) *)
let ss_leave = "__mi_ss_leave" (* () *)
let ss_set_base = "__mi_ss_set_base" (* (slot, base) *)
let ss_set_bound = "__mi_ss_set_bound" (* (slot, bound) *)
let ss_get_base = "__mi_ss_get_base" (* (slot) -> ptr *)
let ss_get_bound = "__mi_ss_get_bound" (* (slot) -> ptr *)

(* Low-Fat Pointers *)
let lf_check = "__mi_lf_check" (* (ptr, width, base) *)
let lf_invariant_check = "__mi_lf_invariant_check" (* (ptr) escape check *)
let lf_base = "__mi_lf_base" (* (ptr) -> ptr : recompute base *)
let lf_alloca = "__mi_lf_alloca" (* (size) -> ptr : mirrored stack alloc *)

(* Temporal lock-and-key (CETS-style): every allocation gets a fresh,
   never-reused key; [free] kills the key; a dereference check tests the
   key's liveness.  Key 0 means "untracked" (globals, integers cast to
   pointers, uninstrumented callees) and always passes — the temporal
   analog of wide bounds. *)
let tp_check = "__mi_tp_check" (* (ptr, key) *)
let tp_alloc_key = "__mi_tp_alloc_key" (* (base) -> key of live allocation *)
let tp_trie_load = "__mi_tp_trie_load" (* (addr) -> key *)
let tp_trie_store = "__mi_tp_trie_store" (* (addr, key) *)
let tp_meta_copy = "__mi_tp_meta_copy" (* (dst, src, len) *)
let tp_alloca = "__mi_tp_alloca" (* (size) -> ptr : keyed stack alloc *)

(* temporal shadow stack (key per pointer argument / return; frames are
   zero-initialized so uninstrumented callees yield key 0, not stale keys) *)
let tp_ss_enter = "__mi_tp_ss_enter" (* (nslots) *)
let tp_ss_leave = "__mi_tp_ss_leave" (* () *)
let tp_ss_set = "__mi_tp_ss_set" (* (slot, key) *)
let tp_ss_get = "__mi_tp_ss_get" (* (slot) -> key *)

(* global-bounds helper: bounds of a global by address (for SoftBound
   globals whose size the module knows) *)
let global_size = "__mi_global_size" (* (addr) -> i64 *)

(* --- C library / OS builtins implemented by the VM ------------------ *)

let c_library =
  [
    "malloc"; "calloc"; "realloc"; "free";
    "memcmp"; "strlen"; "strcpy"; "strncpy"; "strcmp"; "strcat"; "strchr";
    "abs"; "labs";
    "print_int"; "print_f64"; "print_str"; "putchar"; "print_newline";
    "mi_rand"; "mi_srand";
    "exit"; "abort";
    "sqrt"; "fabs"; "sin"; "cos"; "exp"; "log"; "floor"; "ceil"; "pow";
  ]

(* SoftBound wrappers for C library functions that handle pointers in
   memory or return pointers (Fig. 6 of the paper). *)
let sb_wrapped = [ "strcpy"; "strncpy"; "strcat"; "strchr"; "realloc" ]

let sb_wrapper name = "__sbw_" ^ name

(* ------------------------------------------------------------------ *)

type effect_class =
  | Pure  (** no side effect, no memory read; removable and movable *)
  | Read_meta
      (** reads instrumentation metadata (trie / shadow stack); removable
          when unused, but not movable across metadata writes or calls *)
  | Effectful  (** writes memory or metadata, or performs I/O *)
  | May_abort  (** may terminate the program: checks, [abort], [exit] *)
  | Allocating  (** returns fresh memory: [malloc] and friends *)

let classify name : effect_class =
  if
    name = sb_check || name = lf_check || name = lf_invariant_check
    || name = tp_check
  then May_abort
  else if name = lf_base || name = global_size then Pure
  else if
    name = sb_trie_load_base || name = sb_trie_load_bound
    || name = ss_get_base || name = ss_get_bound
    || name = tp_alloc_key || name = tp_trie_load || name = tp_ss_get
  then Read_meta
  else if
    name = sb_trie_store || name = sb_meta_copy || name = ss_enter
    || name = ss_leave || name = ss_set_base || name = ss_set_bound
    || name = tp_trie_store || name = tp_meta_copy || name = tp_ss_enter
    || name = tp_ss_leave || name = tp_ss_set
  then Effectful
  else if name = "malloc" || name = "calloc" || name = "realloc"
          || name = lf_alloca || name = tp_alloca
  then Allocating
  else if name = "abort" || name = "exit" then May_abort
  else if
    name = "memcmp" || name = "strlen" || name = "strcmp" || name = "abs"
    || name = "labs" || name = "mi_rand" || name = "sqrt" || name = "fabs"
    || name = "sin" || name = "cos" || name = "exp" || name = "log"
    || name = "floor" || name = "ceil" || name = "pow"
  then Pure
    (* memcmp/strlen/strcmp read user memory; we separately flag them as
       memory readers in [reads_memory] below *)
  else Effectful

(** True for calls whose only effect is computing a result: safe to delete
    when the result is unused.  This is what lets DCE remove unused trie
    loads, reproducing the paper's §5.4 observation. *)
let removable_if_unused name =
  match classify name with
  | Pure | Read_meta | Allocating -> true
  | Effectful | May_abort -> false

(** True if deleting or reordering the call can change whether the program
    aborts. Code motion must not move loads/stores across these. *)
let may_abort name =
  match classify name with May_abort -> true | _ -> false

(** True if the call reads user (non-metadata) memory. *)
let reads_memory name =
  List.mem name [ "memcmp"; "strlen"; "strcmp"; "strchr" ]

(** True if the call writes user memory. *)
let writes_memory name =
  List.mem name
    [ "strcpy"; "strncpy"; "strcat"; "realloc"; "free"; "mi_srand" ]
  || String.length name > 6
     && String.sub name 0 6 = "__sbw_" (* wrappers write through args *)

(** True for functions the VM implements natively (no MIR body needed). *)
let is_builtin name =
  List.mem name c_library
  || (String.length name >= 5 && String.sub name 0 5 = "__mi_")
  || (String.length name >= 6 && String.sub name 0 6 = "__sbw_")

(** Does this intrinsic never return normally into instrumented code in a
    way that needs metadata? Used to skip shadow-stack setup for calls to
    the runtime itself. *)
let is_runtime_internal name =
  (String.length name >= 5 && String.sub name 0 5 = "__mi_")
  || (String.length name >= 6 && String.sub name 0 6 = "__sbw_")
