(** Registry of runtime functions the instrumentation and the VM know
    about, with the effect information the optimizer needs.

    Instrumentation code is inserted as calls to these functions: checks
    may abort and therefore act as code-motion barriers, while metadata
    loads are removable when unused — the property behind the paper's
    §5.4/§5.5 observations. *)

(** {1 SoftBound runtime} *)

(** [(ptr, width, base, bound)] *)
val sb_check : string

(** [(addr) -> ptr] *)
val sb_trie_load_base : string

(** [(addr) -> ptr] *)
val sb_trie_load_bound : string

(** [(addr, base, bound)] *)
val sb_trie_store : string

(** [(dst, src, len)] *)
val sb_meta_copy : string

(** {1 Shadow stack} *)

(** [(nslots)] *)
val ss_enter : string

val ss_leave : string

(** [(slot, base)] *)
val ss_set_base : string

val ss_set_bound : string

(** [(slot) -> ptr] *)
val ss_get_base : string

val ss_get_bound : string

(** {1 Low-Fat runtime} *)

(** [(ptr, width, base)] *)
val lf_check : string

(** [(ptr, base): escape check] *)
val lf_invariant_check : string

(** [(ptr) -> ptr: recompute the base] *)
val lf_base : string

(** [(size) -> ptr: mirrored stack allocation] *)
val lf_alloca : string

(** {1 Temporal lock-and-key runtime}

    Every allocation gets a fresh, never-reused key; [free] kills the
    key; checks test liveness.  Key [0] is "untracked" and always
    passes (the temporal analog of wide bounds). *)

(** [(ptr, key)] *)
val tp_check : string

(** [(base) -> key: key of the live allocation starting at [base]] *)
val tp_alloc_key : string

(** [(addr) -> key] *)
val tp_trie_load : string

(** [(addr, key)] *)
val tp_trie_store : string

(** [(dst, src, len)] *)
val tp_meta_copy : string

(** [(size) -> ptr: keyed stack allocation] *)
val tp_alloca : string

(** [(nslots)]; frames are zero-initialized (no stale keys) *)
val tp_ss_enter : string

val tp_ss_leave : string

(** [(slot, key)] *)
val tp_ss_set : string

(** [(slot) -> key] *)
val tp_ss_get : string

val global_size : string

(** {1 C library} *)

val c_library : string list
(** Builtins the VM implements natively. *)

val sb_wrapped : string list
(** libc functions with a SoftBound metadata wrapper (Fig. 6). *)

val sb_wrapper : string -> string
(** Wrapper name for a wrapped function ([__sbw_<name>]). *)

(** {1 Effect classification} *)

type effect_class =
  | Pure  (** no side effect, no memory read; removable and movable *)
  | Read_meta
      (** reads instrumentation metadata; removable when unused, not
          movable across metadata writes *)
  | Effectful
  | May_abort  (** checks, [abort], [exit] *)
  | Allocating

val classify : string -> effect_class

val removable_if_unused : string -> bool
(** Lets DCE delete unused metadata loads (§5.4). *)

val may_abort : string -> bool
val reads_memory : string -> bool
val writes_memory : string -> bool
val is_builtin : string -> bool
val is_runtime_internal : string -> bool
