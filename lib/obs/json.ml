(** Minimal JSON tree, deterministic serializer, and parser.

    The observability layer emits machine-readable reports (metrics
    snapshots, Chrome traces, experiment series) and the CI check
    re-parses them, so both directions live here with no external
    dependency.  Serialization is deterministic: object fields are
    emitted in the order given (callers sort where determinism across
    runs matters), and floats always use the same shortest round-trip
    format. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- serialization -------------------------------------------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* shortest representation that round-trips a double *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write b (v : t) =
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if Float.is_nan f || Float.is_integer f = false && Float.abs f = infinity
      then Buffer.add_string b "null"
      else if Float.abs f = infinity then Buffer.add_string b "null"
      else Buffer.add_string b (float_repr f)
  | Str s -> escape_string b s
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          write b x)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* --- parsing -------------------------------------------------------- *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let fail c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let parse_literal c lit value =
  if
    c.pos + String.length lit <= String.length c.s
    && String.sub c.s c.pos (String.length lit) = lit
  then begin
    c.pos <- c.pos + String.length lit;
    value
  end
  else fail c ("expected " ^ lit)

let parse_string_raw c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char b '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char b '/'; go ()
        | Some 'n' -> advance c; Buffer.add_char b '\n'; go ()
        | Some 'r' -> advance c; Buffer.add_char b '\r'; go ()
        | Some 't' -> advance c; Buffer.add_char b '\t'; go ()
        | Some 'b' -> advance c; Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char b '\012'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.s then fail c "bad \\u escape";
            let hex = String.sub c.s c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail c "bad \\u escape"
            in
            c.pos <- c.pos + 4;
            (* encode as UTF-8 *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> fail c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let text = String.sub c.s start (c.pos - start) in
  (* reject non-JSON number shapes int_of_string would accept: leading
     zeros ("01"), explicit plus, hex/underscores *)
  let digits = match text with
    | "" -> ""
    | _ when text.[0] = '-' -> String.sub text 1 (String.length text - 1)
    | _ -> text
  in
  let plain_int =
    digits <> ""
    && String.for_all (fun ch -> ch >= '0' && ch <= '9') digits
    && (String.length digits = 1 || digits.[0] <> '0')
  in
  if plain_int then
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> fail c ("bad number " ^ text)
  else if
    digits <> ""
    && String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') text
    && (not (String.contains text 'x'))
    && digits.[0] >= '0'
    && digits.[0] <= '9'
    && (digits.[0] <> '0' || String.length digits = 1 || digits.[1] = '.'
        || digits.[1] = 'e' || digits.[1] = 'E')
  then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail c ("bad number " ^ text)
  else fail c ("bad number " ^ text)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> parse_literal c "null" Null
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some '"' -> Str (parse_string_raw c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [] in
        let rec go () =
          items := parse_value c :: !items;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              go ()
          | Some ']' -> advance c
          | _ -> fail c "expected ',' or ']'"
        in
        go ();
        List (List.rev !items)
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec go () =
          skip_ws c;
          let k = parse_string_raw c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          fields := (k, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              go ()
          | Some '}' -> advance c
          | _ -> fail c "expected ',' or '}'"
        in
        go ();
        Obj (List.rev !fields)
      end
  | Some _ -> parse_number c

let of_string s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

(* --- accessors (for tests and report validation) --------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None
