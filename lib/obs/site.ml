(** Per-check-site profiling.

    Every check the instrumenter places gets a stable site id — stable
    because the instrumenter walks functions and targets in
    deterministic order, so the same program under the same
    configuration always yields the same numbering.  The id is embedded
    as an extra argument of the check intrinsic call; the VM's check
    builtins attribute hits, wide-bounds hits and modeled cycles back to
    the site.  The hot-site report this enables is the profile CHOP-style
    bounds-check elision needs as input: which few sites carry most of
    the checking cost. *)

type info = {
  si_id : int;
  si_func : string;  (** enclosing function *)
  si_construct : string;  (** source construct, e.g. [load@bb3:7] *)
  si_approach : string;  (** softbound / lowfat *)
}

type cell = {
  mutable c_hits : int;
  mutable c_wide : int;  (** hits that took the wide-bounds fallback *)
  mutable c_cycles : int;  (** modeled cycles spent in the check *)
}

type t = {
  mutable infos : info array;
  mutable cells : cell array;
  mutable n : int;
}

let create () = { infos = [||]; cells = [||]; n = 0 }

let count t = t.n

let ensure_capacity t =
  let cap = Array.length t.infos in
  if t.n >= cap then begin
    let ncap = max 16 (cap * 2) in
    let infos =
      Array.make ncap { si_id = -1; si_func = ""; si_construct = ""; si_approach = "" }
    in
    let cells =
      Array.init ncap (fun _ -> { c_hits = 0; c_wide = 0; c_cycles = 0 })
    in
    Array.blit t.infos 0 infos 0 t.n;
    Array.blit t.cells 0 cells 0 t.n;
    t.infos <- infos;
    t.cells <- cells
  end

(** Register a check site; returns its id.  Ids are dense and allocated
    in registration order. *)
let register t ~func ~construct ~approach =
  ensure_capacity t;
  let id = t.n in
  t.infos.(id) <- { si_id = id; si_func = func; si_construct = construct; si_approach = approach };
  t.cells.(id) <- { c_hits = 0; c_wide = 0; c_cycles = 0 };
  t.n <- t.n + 1;
  id

(** All site descriptors in registration order — the replayable part of
    a registry.  A cached instrumentation result stores these so that a
    cache hit can rebuild the registry the cached module's embedded site
    ids refer to, without re-running the instrumenter. *)
let infos t : info list = List.init t.n (fun i -> t.infos.(i))

(** Append a site descriptor verbatim, keeping its recorded id.  When
    replaying a cached registry into a fresh one in registration order,
    slot indices coincide with the recorded ids, so dynamic attribution
    through {!hit} behaves exactly as if the instrumenter had registered
    the sites itself. *)
let register_info t (inf : info) =
  ensure_capacity t;
  let slot = t.n in
  t.infos.(slot) <- inf;
  t.cells.(slot) <- { c_hits = 0; c_wide = 0; c_cycles = 0 };
  t.n <- t.n + 1

(** Merge [src] into [dst].  Sites are identified by their full
    descriptor (id, function, construct, approach): matching sites add
    their cells, unmatched sites are appended with their descriptor (and
    recorded id) preserved.  Cell addition is associative and
    commutative, so merging any grouping of registries yields the same
    set of (descriptor, cells) pairs; only the slot order — and hence
    {!snapshot} order — depends on merge order.  Merged registries are
    aggregates for reporting: do not use them for further {!hit}
    attribution (slots may no longer coincide with recorded ids). *)
let merge dst src =
  if dst == src then invalid_arg "Site.merge: dst and src are the same";
  let key (i : info) = (i.si_id, i.si_func, i.si_construct, i.si_approach) in
  let idx = Hashtbl.create (max 16 dst.n) in
  for i = 0 to dst.n - 1 do
    Hashtbl.replace idx (key dst.infos.(i)) i
  done;
  for j = 0 to src.n - 1 do
    let inf = src.infos.(j) and c = src.cells.(j) in
    match Hashtbl.find_opt idx (key inf) with
    | Some i ->
        let d = dst.cells.(i) in
        d.c_hits <- d.c_hits + c.c_hits;
        d.c_wide <- d.c_wide + c.c_wide;
        d.c_cycles <- d.c_cycles + c.c_cycles
    | None ->
        ensure_capacity dst;
        let slot = dst.n in
        dst.infos.(slot) <- inf;
        dst.cells.(slot) <-
          { c_hits = c.c_hits; c_wide = c.c_wide; c_cycles = c.c_cycles };
        dst.n <- dst.n + 1;
        Hashtbl.replace idx (key inf) slot
  done

(** Attribute one executed check to site [id].  Unknown ids (a program
    instrumented against a different registry, or an un-instrumented
    check call) are ignored. *)
let hit t id ~wide ~cycles =
  if id >= 0 && id < t.n then begin
    let c = t.cells.(id) in
    c.c_hits <- c.c_hits + 1;
    if wide then c.c_wide <- c.c_wide + 1;
    c.c_cycles <- c.c_cycles + cycles
  end

type snapshot = {
  sn_id : int;
  sn_func : string;
  sn_construct : string;
  sn_approach : string;
  sn_hits : int;
  sn_wide : int;
  sn_cycles : int;
}

(** All sites in id order (deterministic). *)
let snapshot t : snapshot list =
  List.init t.n (fun i ->
      let inf = t.infos.(i) and c = t.cells.(i) in
      {
        sn_id = inf.si_id;
        sn_func = inf.si_func;
        sn_construct = inf.si_construct;
        sn_approach = inf.si_approach;
        sn_hits = c.c_hits;
        sn_wide = c.c_wide;
        sn_cycles = c.c_cycles;
      })

let total_hits (sns : snapshot list) =
  List.fold_left (fun a s -> a + s.sn_hits) 0 sns

let total_cycles (sns : snapshot list) =
  List.fold_left (fun a s -> a + s.sn_cycles) 0 sns

(** Hottest sites: by modeled cycles descending, then hits, then id
    (total order, so reports are deterministic). *)
let top ?(n = 10) (sns : snapshot list) : snapshot list =
  let sorted =
    List.sort
      (fun a b ->
        match compare b.sn_cycles a.sn_cycles with
        | 0 -> (
            match compare b.sn_hits a.sn_hits with
            | 0 -> compare a.sn_id b.sn_id
            | c -> c)
        | c -> c)
      sns
  in
  List.filteri (fun i _ -> i < n) sorted

(** [perf annotate]-style table of the hottest check sites. *)
let render ?(n = 10) (sns : snapshot list) : string =
  let live = List.filter (fun s -> s.sn_hits > 0) sns in
  if live = [] then "(no check sites were executed)\n"
  else begin
    let total = total_cycles live in
    let hot = top ~n live in
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf "%7s %9s %6s %10s %10s %-9s %-18s %s\n" "cyc%" "cycles"
         "site" "hits" "wide" "approach" "function" "construct");
    List.iter
      (fun s ->
        Buffer.add_string b
          (Printf.sprintf "%6.2f%% %9d %6d %10d %10d %-9s %-18s %s\n"
             (if total = 0 then 0.0
              else 100.0 *. float_of_int s.sn_cycles /. float_of_int total)
             s.sn_cycles s.sn_id s.sn_hits s.sn_wide s.sn_approach s.sn_func
             s.sn_construct))
      hot;
    let shown = List.length hot and all = List.length live in
    if all > shown then
      Buffer.add_string b
        (Printf.sprintf "... and %d more sites (%d registered, %d executed)\n"
           (all - shown) (List.length sns) all);
    Buffer.contents b
  end

let snapshot_to_json (s : snapshot) : Json.t =
  Json.Obj
    [
      ("id", Json.Int s.sn_id);
      ("func", Json.Str s.sn_func);
      ("construct", Json.Str s.sn_construct);
      ("approach", Json.Str s.sn_approach);
      ("hits", Json.Int s.sn_hits);
      ("wide", Json.Int s.sn_wide);
      ("cycles", Json.Int s.sn_cycles);
    ]

let to_json (sns : snapshot list) : Json.t =
  Json.List (List.map snapshot_to_json sns)
