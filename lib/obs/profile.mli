(** Persistent profiles: the on-disk artifact of an observed run.

    A profile bundles the per-check-site counters, the VM coverage
    maps, a metrics snapshot (counters + gauges) and the collapsed span
    stacks of one {!Obs.t} context into a single versioned JSON file.
    Everything stored is deterministic — byte-identical for identical
    runs at any [-j] — which is what makes profiles diffable and CI
    gateable.  (Span durations and other wall-clock data stay in the
    Chrome trace export; a profile stores span {e counts}.)

    This file format is the declared input contract for profile-guided
    check elimination: a consumer reads site hit counts and coverage
    maps from here, never from a live process.  Compatibility rule: the
    [version] field bumps on any incompatible change and {!load}
    rejects versions it does not know. *)

type t = {
  pr_sites : Site.snapshot list;
  pr_coverage : Coverage.snapshot list;
  pr_counters : (string * int) list;
  pr_gauges : (string * int) list;
  pr_spans : (string * int) list;  (** collapsed span stack -> count *)
}

val version : int
(** Current file-format version (serialized in the [version] field). *)

exception Invalid_profile of string
(** Raised by {!of_json} / {!load} on an unreadable, malformed,
    version-mismatched or internally inconsistent document. *)

val of_obs : Obs.t -> t
(** Snapshot a live observability context. *)

val to_json : t -> Json.t
val of_json : Json.t -> t

val save : t -> string -> unit
(** Write the profile as deterministic JSON (one trailing newline). *)

val load : string -> t
(** Read and validate a profile file; raises {!Invalid_profile}. *)

val merge : t -> t -> t
(** Pure offline merge, mirroring {!Obs.merge}: site cells and coverage
    arrays add by descriptor, counters and span counts add, gauges take
    the maximum.  Associative and commutative. *)

(** One flagged regression between two profiles. *)
type change =
  | Coverage_drop of {
      cd_func : string;
      cd_blocks : int * int;  (** baseline blocks hit, current *)
      cd_edges : int * int;  (** baseline edges hit, current *)
    }
  | Hits_increase of {
      hi_func : string;
      hi_construct : string;
      hi_approach : string;
      hi_old : int;
      hi_new : int;
    }

val diff : ?min_hits:int -> threshold:float -> baseline:t -> t -> change list
(** Regressions of [current] against [baseline]: functions (matched by
    name + CFG geometry) whose hit-block or hit-edge count dropped by
    more than [threshold * baseline], and check-site descriptors whose
    dynamic hit count grew by more than [threshold * baseline] {e and}
    by at least [min_hits] (default 32) hits in absolute terms — the
    absolute floor keeps sites the baseline never (or barely) executed
    from flagging on a handful of hits.  Equal profiles yield [[]]. *)

val change_to_string : change -> string

val coverage_summary : t -> string
(** Per-function "blocks hit / edges hit" table plus never-executed
    check sites, sorted and deterministic. *)
