(** The observability context: one span tracer, one metrics registry
    and one check-site registry, created per compile-and-run and
    threaded through compile -> optimize -> instrument -> execute.

    The harness creates one automatically when the caller does not care
    (so every {!Mi_bench_kit.Harness.run} carries a profile); the
    binaries create one explicitly to export traces and profiles. *)

type t = {
  trace : Trace.t;
  metrics : Metrics.t;
  sites : Site.t;
}

let create () =
  { trace = Trace.create (); metrics = Metrics.create (); sites = Site.create () }
