(** The observability context: one span tracer, one metrics registry
    and one check-site registry, created per compile-and-run and
    threaded through compile -> optimize -> instrument -> execute.

    The harness creates one automatically when the caller does not care
    (so every {!Mi_bench_kit.Harness.run} carries a profile); the
    binaries create one explicitly to export traces and profiles. *)

type t = {
  trace : Trace.t;
  metrics : Metrics.t;
  sites : Site.t;
}

let create () =
  { trace = Trace.create (); metrics = Metrics.create (); sites = Site.create () }

(** [merge dst src] folds one context into another: counters and
    histograms add, gauges take the maximum, check sites with identical
    descriptors add their cells, completed trace events are appended.
    Each component merge is associative and commutative (sites up to
    snapshot order), which is what lets the parallel harness give every
    worker a private context and still produce one deterministic
    aggregate: contexts are merged in job order, not completion order.
    Raises [Invalid_argument] when [dst == src]. *)
let merge dst src =
  if dst == src then invalid_arg "Obs.merge: dst and src are the same";
  Trace.merge dst.trace src.trace;
  Metrics.merge dst.metrics src.metrics;
  Site.merge dst.sites src.sites
