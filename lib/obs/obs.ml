(** The observability context: one span tracer, one metrics registry,
    one check-site registry, and — when the caller opted in — one VM
    coverage registry, created per compile-and-run and threaded through
    compile -> optimize -> instrument -> execute.

    The harness creates one automatically when the caller does not care
    (so every {!Mi_bench_kit.Harness.run} carries a profile); the
    binaries create one explicitly to export traces and profiles.

    Coverage recording is opt-in ([~coverage:true]) because it is the
    one component with a hot-path cost: the VM records a block/edge hit
    on every block transition when the context carries a registry and
    pays nothing when it does not. *)

type t = {
  trace : Trace.t;
  metrics : Metrics.t;
  sites : Site.t;
  mutable coverage : Coverage.t option;
}

let create ?(coverage = false) () =
  {
    trace = Trace.create ();
    metrics = Metrics.create ();
    sites = Site.create ();
    coverage = (if coverage then Some (Coverage.create ()) else None);
  }

(** [merge dst src] folds one context into another: counters and
    histograms add, gauges take the maximum, check sites with identical
    descriptors add their cells, coverage maps with identical
    geometries add their hit arrays, completed trace events are
    appended.  Each component merge is associative and commutative
    (sites and coverage up to snapshot order), which is what lets the
    parallel harness give every worker a private context and still
    produce one deterministic aggregate: contexts are merged in job
    order, not completion order.  A [src] that recorded coverage turns
    it on in [dst] too.  Raises [Invalid_argument] when [dst == src]. *)
let merge dst src =
  if dst == src then invalid_arg "Obs.merge: dst and src are the same";
  Trace.merge dst.trace src.trace;
  Metrics.merge dst.metrics src.metrics;
  Site.merge dst.sites src.sites;
  match src.coverage with
  | None -> ()
  | Some sc -> (
      match dst.coverage with
      | Some dc -> Coverage.merge dc sc
      | None ->
          let dc = Coverage.create () in
          Coverage.merge dc sc;
          dst.coverage <- Some dc)
