(** Span tracer with Chrome [trace_event] JSON export.

    Spans nest (compile > pipeline > pass) and carry key/value arguments
    such as per-pass instruction-count deltas.  Timestamps come from
    {!Sys.time} (processor time, the only clock the stdlib offers) and
    are reported in microseconds; the arguments — not the timestamps —
    are the deterministic part of a trace.

    Each tracer carries a thread id (default 1); the parallel harness
    gives every worker tracer its own id and label via {!set_thread}, so
    merged traces keep one row per worker.  Every completed event also
    remembers the names of its enclosing open spans ([ev_stack]), which
    is what {!collapsed} folds into flamegraph stacks — reconstructing
    nesting from merged timestamps would be meaningless across worker
    epochs.

    The resulting file loads in [chrome://tracing] / Perfetto: complete
    events ([ph = "X"]) with [ts]/[dur] in microseconds, preceded by
    [ph = "M"] [process_name]/[thread_name] metadata events. *)

type arg = Aint of int | Astr of string | Aflt of float

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts : float;  (** microseconds *)
  ev_dur : float;  (** microseconds *)
  ev_args : (string * arg) list;
  ev_tid : int;
  ev_stack : string list;  (** enclosing span names, outermost first *)
}

type open_span = {
  os_name : string;
  os_cat : string;
  os_start : float;
  os_args : (string * arg) list;
}

type t = {
  mutable events : event list;  (** completed, most recent first *)
  mutable stack : open_span list;
  epoch : float;
  mutable tid : int;
  mutable threads : (int * string) list;  (** tid -> label *)
}

let process_name = "meminstrument"

let now_us t = (Sys.time () -. t.epoch) *. 1e6

let create () =
  { events = []; stack = []; epoch = Sys.time (); tid = 1; threads = [] }

let set_thread t ~tid ~name =
  t.tid <- tid;
  t.threads <- (tid, name) :: List.remove_assoc tid t.threads

let depth t = List.length t.stack

let balanced t = t.stack = []

let stack_names stack = List.rev_map (fun os -> os.os_name) stack

let begin_span ?(cat = "phase") ?(args = []) t name =
  t.stack <-
    { os_name = name; os_cat = cat; os_start = now_us t; os_args = args }
    :: t.stack

(** Close the innermost open span.  [name] must match the span being
    closed — a mismatch means begin/end calls are unbalanced and raises.
    [args] are appended to the arguments given at [begin_span]. *)
let end_span ?(args = []) t name =
  match t.stack with
  | [] -> invalid_arg (Printf.sprintf "end_span %S: no open span" name)
  | os :: rest ->
      if os.os_name <> name then
        invalid_arg
          (Printf.sprintf "end_span %S: innermost open span is %S" name
             os.os_name);
      t.stack <- rest;
      let ts = os.os_start in
      t.events <-
        {
          ev_name = os.os_name;
          ev_cat = os.os_cat;
          ev_ts = ts;
          ev_dur = Float.max 0.0 (now_us t -. ts);
          ev_args = os.os_args @ args;
          ev_tid = t.tid;
          ev_stack = stack_names rest;
        }
        :: t.events

(** Run [f] inside a span; the span closes even if [f] raises. *)
let with_span ?cat ?args t name f =
  begin_span ?cat ?args t name;
  match f () with
  | v ->
      end_span t name;
      v
  | exception e ->
      end_span t name;
      raise e

(** An instantaneous event (zero duration). *)
let instant ?(cat = "mark") ?(args = []) t name =
  let ts = now_us t in
  t.events <-
    {
      ev_name = name;
      ev_cat = cat;
      ev_ts = ts;
      ev_dur = 0.0;
      ev_args = args;
      ev_tid = t.tid;
      ev_stack = stack_names t.stack;
    }
    :: t.events

let event_count t = List.length t.events

(** Merge the completed events of [src] into [dst] (spans still open in
    [src] are not copied).  Timestamps keep their origin tracer's epoch;
    {!to_json} orders by timestamp, so merged traces remain loadable —
    the arguments, not the clock, are the deterministic part of a
    trace.  Thread labels are unioned ([src] wins on a tid clash). *)
let merge dst src =
  if dst == src then invalid_arg "Trace.merge: dst and src are the same";
  dst.events <- src.events @ dst.events;
  List.iter
    (fun (tid, name) ->
      dst.threads <- (tid, name) :: List.remove_assoc tid dst.threads)
    (List.rev src.threads)

(* --- flamegraph stacks ---------------------------------------------- *)

(** Collapsed stacks over completed span events: one
    [(stack, count, total_us)] entry per distinct [a;b;c] path, sorted
    by path.  The counts are deterministic (span structure is); the
    microsecond totals are informational only. *)
let collapsed t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let path = String.concat ";" (e.ev_stack @ [ e.ev_name ]) in
      match Hashtbl.find_opt tbl path with
      | Some (n, us) -> Hashtbl.replace tbl path (n + 1, us +. e.ev_dur)
      | None -> Hashtbl.add tbl path (1, e.ev_dur))
    t.events;
  Hashtbl.fold (fun path (n, us) acc -> (path, n, us) :: acc) tbl []
  |> List.sort compare

(* --- export --------------------------------------------------------- *)

let arg_to_json = function
  | Aint i -> Json.Int i
  | Astr s -> Json.Str s
  | Aflt f -> Json.Float f

let event_to_json (e : event) : Json.t =
  Json.Obj
    [
      ("name", Json.Str e.ev_name);
      ("cat", Json.Str e.ev_cat);
      ("ph", Json.Str "X");
      ("ts", Json.Float e.ev_ts);
      ("dur", Json.Float e.ev_dur);
      ("pid", Json.Int 1);
      ("tid", Json.Int e.ev_tid);
      ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_to_json v)) e.ev_args));
    ]

let metadata_json name ~tid args : Json.t =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", Json.Obj args);
    ]

(** Chrome trace-event document: [ph = "M"] naming metadata first
    (process name, one thread label per known worker tid), then events
    in chronological (start) order.  Open spans are not exported — close
    them first. *)
let to_json t : Json.t =
  let evs = List.rev t.events in
  let evs =
    List.stable_sort (fun a b -> compare a.ev_ts b.ev_ts) evs
  in
  let threads =
    let known = List.sort compare t.threads in
    if List.mem_assoc 1 known then known else (1, "main") :: known
  in
  let meta =
    metadata_json "process_name" ~tid:1 [ ("name", Json.Str process_name) ]
    :: List.map
         (fun (tid, name) ->
           metadata_json "thread_name" ~tid [ ("name", Json.Str name) ])
         threads
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ List.map event_to_json evs));
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_string t = Json.to_string (to_json t)

let write_file t path =
  let oc = open_out path in
  output_string oc (to_string t);
  output_char oc '\n';
  close_out oc
