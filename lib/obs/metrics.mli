(** Metrics registry: counters, gauges and histograms in one namespace
    with deterministic (sorted, byte-stable) serialization.

    Static instrumentation statistics and dynamic VM statistics both
    land here — see {!Mi_vm.State} and {!Mi_core.Instrument}. *)

type t

val create : unit -> t

val labeled : string -> (string * string) list -> string
(** Canonical labeled-metric name: [name{k1="v1",k2="v2"}] with the
    label keys sorted. *)

(** The namespace is flat across kinds: the first registration of a
    name fixes whether it is a counter, a gauge or a histogram, and
    registering it again under a different kind raises
    [Invalid_argument] instead of silently keeping two unrelated
    metrics under one name. *)

(** {2 Counters} — monotonically increasing. *)

val incr : ?by:int -> t -> string -> unit
val counter : t -> string -> int

val counters_alist : t -> (string * int) list
(** All counters, sorted by name.  This is the only order the registry
    exposes; hash-table iteration order never leaks. *)

(** {2 Gauges} — last-write-wins values (e.g. [vm.cycles]). *)

val set_gauge : t -> string -> int -> unit
val gauge : t -> string -> int
val gauges_alist : t -> (string * int) list

(** {2 Histograms} — power-of-two buckets, deterministic. *)

val observe : t -> string -> int -> unit

type histogram_snapshot = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;
      (** (exclusive power-of-two upper bound, count), non-empty only *)
}

val histogram : t -> string -> histogram_snapshot option
val histograms_alist : t -> (string * histogram_snapshot) list

(** {2 Merging} *)

val merge : t -> t -> unit
(** [merge dst src] folds [src] into [dst]: counters and histograms add,
    gauges take the maximum.  Every per-metric operation is associative
    and commutative, so merging per-worker registries in any grouping or
    order produces the same registry (the contract the parallel harness
    relies on).  Raises [Invalid_argument] when [dst == src]. *)

(** {2 Serialization} *)

val to_json : t -> Json.t
val to_string : t -> string
(** Byte-identical across identical runs. *)
