(** Persistent profiles — see the interface for the format contract.
    The serializer leans on {!Json.to_string}'s deterministic output;
    the parser validates shape, version and internal consistency before
    handing anything to a consumer. *)

type t = {
  pr_sites : Site.snapshot list;
  pr_coverage : Coverage.snapshot list;
  pr_counters : (string * int) list;
  pr_gauges : (string * int) list;
  pr_spans : (string * int) list;
}

let version = 1

exception Invalid_profile of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid_profile s)) fmt

let of_obs (obs : Obs.t) =
  {
    pr_sites = Site.snapshot obs.Obs.sites;
    pr_coverage =
      (match obs.Obs.coverage with
      | None -> []
      | Some c -> Coverage.snapshot c);
    pr_counters = Metrics.counters_alist obs.Obs.metrics;
    pr_gauges = Metrics.gauges_alist obs.Obs.metrics;
    pr_spans =
      List.map (fun (path, n, _us) -> (path, n)) (Trace.collapsed obs.Obs.trace);
  }

(* --- serialization --------------------------------------------------- *)

let alist_json l = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) l)

let to_json p : Json.t =
  Json.Obj
    [
      ("version", Json.Int version);
      ("sites", Site.to_json p.pr_sites);
      ("coverage", Json.List (List.map Coverage.snapshot_to_json p.pr_coverage));
      ("counters", alist_json p.pr_counters);
      ("gauges", alist_json p.pr_gauges);
      ("spans", alist_json p.pr_spans);
    ]

let member k j =
  match Json.member k j with Some v -> v | None -> fail "missing field %S" k

let alist_of_json what = function
  | Json.Obj kvs ->
      List.map
        (function
          | k, Json.Int v -> (k, v)
          | k, _ -> fail "%s: %S is not an integer" what k)
        kvs
  | _ -> fail "%s is not an object" what

let site_of_json j =
  let str k =
    match member k j with
    | Json.Str s -> s
    | _ -> fail "site %S is not a string" k
  in
  let int k =
    match member k j with
    | Json.Int i when i >= 0 -> i
    | _ -> fail "site %S is not a non-negative integer" k
  in
  {
    Site.sn_id = int "id";
    sn_func = str "func";
    sn_construct = str "construct";
    sn_approach = str "approach";
    sn_hits = int "hits";
    sn_wide = int "wide";
    sn_cycles = int "cycles";
  }

let of_json j =
  (match member "version" j with
  | Json.Int v when v = version -> ()
  | Json.Int v -> fail "unsupported profile version %d (expected %d)" v version
  | _ -> fail "version is not an integer");
  let list k =
    match member k j with
    | Json.List l -> l
    | _ -> fail "%S is not an array" k
  in
  let pr_sites = List.map site_of_json (list "sites") in
  let pr_coverage =
    List.map
      (fun sj ->
        try Coverage.snapshot_of_json sj
        with Invalid_argument m -> fail "%s" m)
      (list "coverage")
  in
  List.iter
    (fun (s : Site.snapshot) ->
      if s.Site.sn_wide > s.Site.sn_hits then
        fail "site %d (%s): wide hits %d exceed hits %d" s.Site.sn_id
          s.Site.sn_func s.Site.sn_wide s.Site.sn_hits)
    pr_sites;
  {
    pr_sites;
    pr_coverage;
    pr_counters = alist_of_json "counters" (member "counters" j);
    pr_gauges = alist_of_json "gauges" (member "gauges" j);
    pr_spans = alist_of_json "spans" (member "spans" j);
  }

let save p path =
  let oc = open_out path in
  output_string oc (Json.to_string (to_json p));
  output_char oc '\n';
  close_out oc

let load path =
  let contents =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error m -> fail "%s" m
  in
  match Json.of_string (String.trim contents) with
  | j -> of_json j
  | exception Json.Parse_error m -> fail "%s: %s" path m

(* --- merge ----------------------------------------------------------- *)

let merge_alist ~combine a b =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) a;
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt tbl k with
      | Some v0 -> Hashtbl.replace tbl k (combine v0 v)
      | None -> Hashtbl.add tbl k v)
    b;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge a b =
  let cov =
    let r = Coverage.of_snapshots a.pr_coverage in
    Coverage.merge r (Coverage.of_snapshots b.pr_coverage);
    Coverage.snapshot r
  in
  (* site snapshots merge by descriptor, cells add; keep first-seen
     order of [a] then unmatched of [b], then normalize by (id, descr)
     so the result is order-insensitive *)
  let key (s : Site.snapshot) =
    (s.Site.sn_id, s.Site.sn_func, s.Site.sn_construct, s.Site.sn_approach)
  in
  let tbl = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace tbl (key s) s) a.pr_sites;
  List.iter
    (fun (s : Site.snapshot) ->
      match Hashtbl.find_opt tbl (key s) with
      | Some s0 ->
          Hashtbl.replace tbl (key s)
            {
              s0 with
              Site.sn_hits = s0.Site.sn_hits + s.Site.sn_hits;
              sn_wide = s0.Site.sn_wide + s.Site.sn_wide;
              sn_cycles = s0.Site.sn_cycles + s.Site.sn_cycles;
            }
      | None -> Hashtbl.add tbl (key s) s)
    b.pr_sites;
  let merged_sites =
    Hashtbl.fold (fun _ s acc -> s :: acc) tbl []
    |> List.sort (fun a b -> compare (key a) (key b))
  in
  {
    pr_sites = merged_sites;
    pr_coverage = cov;
    pr_counters = merge_alist ~combine:( + ) a.pr_counters b.pr_counters;
    pr_gauges = merge_alist ~combine:max a.pr_gauges b.pr_gauges;
    pr_spans = merge_alist ~combine:( + ) a.pr_spans b.pr_spans;
  }

(* --- diff ------------------------------------------------------------ *)

type change =
  | Coverage_drop of {
      cd_func : string;
      cd_blocks : int * int;
      cd_edges : int * int;
    }
  | Hits_increase of {
      hi_func : string;
      hi_construct : string;
      hi_approach : string;
      hi_old : int;
      hi_new : int;
    }

let count_pos a = Array.fold_left (fun n x -> if x > 0 then n + 1 else n) 0 a

let diff ?(min_hits = 32) ~threshold ~baseline current =
  let dropped old_v new_v =
    old_v > 0 && float_of_int (old_v - new_v) > threshold *. float_of_int old_v
  in
  (* relative growth alone misfires on sites the baseline barely (or
     never) saw: against the [max old_v 1] floor, a handful of hits on a
     zero-baseline site already exceeds any sane relative threshold.
     Require an absolute floor on the growth as well. *)
  let grew old_v new_v =
    new_v - old_v >= min_hits
    && float_of_int (new_v - old_v) > threshold *. float_of_int (max old_v 1)
  in
  let cov_key (c : Coverage.snapshot) = (c.Coverage.cv_func, c.Coverage.cv_succ) in
  let cov_tbl = Hashtbl.create 32 in
  List.iter
    (fun c -> Hashtbl.replace cov_tbl (cov_key c) c)
    current.pr_coverage;
  let cov_changes =
    List.filter_map
      (fun (b : Coverage.snapshot) ->
        match Hashtbl.find_opt cov_tbl (cov_key b) with
        | None ->
            (* the whole function is gone from the run *)
            let bh = count_pos b.Coverage.cv_block_hits
            and eh = count_pos b.Coverage.cv_edge_hits in
            if bh > 0 || eh > 0 then
              Some
                (Coverage_drop
                   {
                     cd_func = b.Coverage.cv_func;
                     cd_blocks = (bh, 0);
                     cd_edges = (eh, 0);
                   })
            else None
        | Some c ->
            let bh0 = count_pos b.Coverage.cv_block_hits
            and bh1 = count_pos c.Coverage.cv_block_hits
            and eh0 = count_pos b.Coverage.cv_edge_hits
            and eh1 = count_pos c.Coverage.cv_edge_hits in
            if dropped bh0 bh1 || dropped eh0 eh1 then
              Some
                (Coverage_drop
                   {
                     cd_func = b.Coverage.cv_func;
                     cd_blocks = (bh0, bh1);
                     cd_edges = (eh0, eh1);
                   })
            else None)
      baseline.pr_coverage
  in
  let site_key (s : Site.snapshot) =
    (s.Site.sn_func, s.Site.sn_construct, s.Site.sn_approach)
  in
  let sum_hits sites =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun s ->
        let k = site_key s in
        let v = try Hashtbl.find tbl k with Not_found -> 0 in
        Hashtbl.replace tbl k (v + s.Site.sn_hits))
      sites;
    tbl
  in
  let old_hits = sum_hits baseline.pr_sites in
  let new_hits = sum_hits current.pr_sites in
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) new_hits []
    |> List.filter (fun k ->
           let v0 = try Hashtbl.find old_hits k with Not_found -> 0 in
           grew v0 (Hashtbl.find new_hits k))
    |> List.sort compare
  in
  let hit_changes =
    List.map
      (fun ((f, c, a) as k) ->
        Hits_increase
          {
            hi_func = f;
            hi_construct = c;
            hi_approach = a;
            hi_old = (try Hashtbl.find old_hits k with Not_found -> 0);
            hi_new = Hashtbl.find new_hits k;
          })
      keys
  in
  cov_changes @ hit_changes

let change_to_string = function
  | Coverage_drop c ->
      let b0, b1 = c.cd_blocks and e0, e1 = c.cd_edges in
      Printf.sprintf
        "coverage drop in %s: blocks hit %d -> %d, edges hit %d -> %d"
        c.cd_func b0 b1 e0 e1
  | Hits_increase h ->
      Printf.sprintf "check hits up at %s/%s (%s): %d -> %d" h.hi_func
        h.hi_construct h.hi_approach h.hi_old h.hi_new

(* --- reporting ------------------------------------------------------- *)

let coverage_summary p =
  let buf = Buffer.create 256 in
  let tt = Coverage.totals_of p.pr_coverage in
  Buffer.add_string buf
    (Printf.sprintf
       "coverage: %d/%d functions, %d/%d blocks, %d/%d edges reached\n"
       tt.Coverage.tt_functions_hit tt.Coverage.tt_functions
       tt.Coverage.tt_blocks_hit tt.Coverage.tt_blocks
       tt.Coverage.tt_edges_hit tt.Coverage.tt_edges);
  if p.pr_coverage <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "%7s %7s  %s\n" "blocks" "edges" "function");
    List.iter
      (fun (c : Coverage.snapshot) ->
        Buffer.add_string buf
          (Printf.sprintf "%3d/%-3d %3d/%-3d  %s\n"
             (count_pos c.Coverage.cv_block_hits)
             (Array.length c.Coverage.cv_block_hits)
             (count_pos c.Coverage.cv_edge_hits)
             (Array.length c.Coverage.cv_edge_hits)
             c.Coverage.cv_func))
      p.pr_coverage
  end;
  let cold =
    List.filter (fun (s : Site.snapshot) -> s.Site.sn_hits = 0) p.pr_sites
  in
  if cold <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "never-executed check sites (%d):\n" (List.length cold));
    List.iter
      (fun (s : Site.snapshot) ->
        Buffer.add_string buf
          (Printf.sprintf "  site %d: %s / %s (%s)\n" s.Site.sn_id
             s.Site.sn_func s.Site.sn_construct s.Site.sn_approach))
      cold
  end;
  Buffer.contents buf
