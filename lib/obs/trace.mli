(** Span tracer with Chrome [trace_event] JSON export.

    Spans nest (benchmark > pipeline > pass) and carry key/value
    arguments such as per-pass instruction-count deltas.  [to_json]
    produces a document loadable in [chrome://tracing] / Perfetto,
    including [ph = "M"] process/thread naming metadata. *)

type arg = Aint of int | Astr of string | Aflt of float

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts : float;  (** microseconds since tracer creation *)
  ev_dur : float;  (** microseconds *)
  ev_args : (string * arg) list;
  ev_tid : int;  (** thread id of the recording tracer *)
  ev_stack : string list;  (** enclosing span names, outermost first *)
}

type t

val create : unit -> t

val set_thread : t -> tid:int -> name:string -> unit
(** Label this tracer's events with [tid] and record the
    [thread_name] metadata mapping [tid] to [name].  The parallel
    harness calls this per worker so merged traces keep one labeled row
    per worker in [about:tracing]. *)

val begin_span : ?cat:string -> ?args:(string * arg) list -> t -> string -> unit

val end_span : ?args:(string * arg) list -> t -> string -> unit
(** Close the innermost open span; raises [Invalid_argument] if [name]
    does not match it (unbalanced begin/end).  [args] are appended to
    the span's arguments. *)

val with_span :
  ?cat:string -> ?args:(string * arg) list -> t -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span; the span closes even on exceptions. *)

val instant : ?cat:string -> ?args:(string * arg) list -> t -> string -> unit

val depth : t -> int
(** Number of currently open spans. *)

val balanced : t -> bool
(** No open spans remain. *)

val event_count : t -> int

val merge : t -> t -> unit
(** [merge dst src] appends the completed events of [src] (open spans
    are not copied) and unions thread labels.  Raises when
    [dst == src]. *)

val collapsed : t -> (string * int * float) list
(** Flamegraph-style collapsed stacks over completed spans: one
    [("a;b;c", count, total_us)] per distinct nesting path, sorted by
    path.  Counts are deterministic; the microsecond totals are not. *)

val to_json : t -> Json.t
val to_string : t -> string
val write_file : t -> string -> unit
