(** Per-check-site profiling: stable ids for every check the
    instrumenter places, and dynamic hit / wide-hit / modeled-cycle
    attribution from the VM's check builtins. *)

type t
(** A site registry, shared between the instrumenter (which registers
    sites) and the VM state (which attributes executions). *)

val create : unit -> t

val register : t -> func:string -> construct:string -> approach:string -> int
(** Allocate the next site id (dense, registration order — stable for a
    deterministic instrumentation order). *)

val hit : t -> int -> wide:bool -> cycles:int -> unit
(** Attribute one executed check; unknown ids are ignored. *)

val count : t -> int

(** A site descriptor: the static, replayable part of a registration. *)
type info = {
  si_id : int;
  si_func : string;
  si_construct : string;
  si_approach : string;
}

val infos : t -> info list
(** All descriptors in registration order.  The instrumentation cache
    stores these so a cache hit can rebuild the registry the cached
    module's embedded site ids point into. *)

val register_info : t -> info -> unit
(** Append a descriptor verbatim (keeping its recorded id).  Replaying
    {!infos} in order into a fresh registry reproduces it exactly. *)

val merge : t -> t -> unit
(** [merge dst src]: sites with an identical descriptor add their cells,
    others are appended.  Associative and order-insensitive up to
    {!snapshot} order (the set of (descriptor, counts) pairs is the
    same under any merge order).  Raises when [dst == src]. *)

type snapshot = {
  sn_id : int;
  sn_func : string;
  sn_construct : string;
  sn_approach : string;
  sn_hits : int;
  sn_wide : int;
  sn_cycles : int;
}

val snapshot : t -> snapshot list
(** All sites in id order. *)

val total_hits : snapshot list -> int
val total_cycles : snapshot list -> int

val top : ?n:int -> snapshot list -> snapshot list
(** Hottest sites by modeled cycles (deterministic total order). *)

val render : ?n:int -> snapshot list -> string
(** [perf annotate]-style "top-N hottest checks" table. *)

val snapshot_to_json : snapshot -> Json.t
val to_json : snapshot list -> Json.t
