(** Metrics registry: counters, gauges and histograms under one
    namespace, with deterministic serialization.

    This replaces the VM's former ad-hoc counter table and also absorbs
    the instrumenter's static statistics, so "checks inserted", "checks
    executed" and "modeled cycles" live side by side and serialize the
    same way.  Determinism contract: two identical runs produce
    byte-identical {!to_json} output — every exported view sorts by
    metric name, and histogram buckets are fixed powers of two.

    Labels are encoded into the metric name with {!labeled}
    (canonically sorted), so a labeled metric is just a name in the
    same flat namespace. *)

type histogram = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : int array;
      (** bucket [i] counts observations with value < 2^i; the last
          bucket is the overflow bucket *)
}

let n_buckets = 32

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

(** Canonical labeled-metric name: [name{k1="v1",k2="v2"}] with keys
    sorted, so the same label set always yields the same name. *)
let labeled name labels =
  match labels with
  | [] -> name
  | _ ->
      let sorted = List.sort compare labels in
      let parts =
        List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) sorted
      in
      Printf.sprintf "%s{%s}" name (String.concat "," parts)

(* One flat namespace, three kinds: registering the same name under two
   different kinds would make [to_json] emit it twice with unrelated
   meanings and would silently split what looks like one metric.  The
   collision check runs only on first registration of a name, so the
   hot-path increment stays a single hash lookup. *)
let check_kind t name ~kind =
  let clash other tbl = if Hashtbl.mem tbl name then Some other else None in
  let taken =
    match clash "counter" t.counters with
    | Some _ as c when kind <> "counter" -> c
    | _ -> (
        match clash "gauge" t.gauges with
        | Some _ as c when kind <> "gauge" -> c
        | _ -> (
            match clash "histogram" t.histograms with
            | Some _ as c when kind <> "histogram" -> c
            | _ -> None))
  in
  match taken with
  | None -> ()
  | Some other ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is already registered as a %s (wanted %s)"
           name other kind)

(* --- counters -------------------------------------------------------- *)

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None ->
      check_kind t name ~kind:"counter";
      Hashtbl.add t.counters name (ref by)

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

(** All counters, sorted by name — the deterministic view report code
    must use (hash-table fold order is unspecified). *)
let counters_alist t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- gauges ---------------------------------------------------------- *)

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None ->
      check_kind t name ~kind:"gauge";
      Hashtbl.add t.gauges name (ref v)

let gauge t name =
  match Hashtbl.find_opt t.gauges name with Some r -> !r | None -> 0

let gauges_alist t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.gauges []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- histograms ------------------------------------------------------ *)

let bucket_of v =
  (* index of the first power of two strictly greater than [v] *)
  let rec go i = if i >= n_buckets - 1 || v < 1 lsl i then i else go (i + 1) in
  go 0

let observe t name v =
  let h =
    match Hashtbl.find_opt t.histograms name with
    | Some h -> h
    | None ->
        check_kind t name ~kind:"histogram";
        let h =
          {
            h_count = 0;
            h_sum = 0;
            h_min = max_int;
            h_max = min_int;
            h_buckets = Array.make n_buckets 0;
          }
        in
        Hashtbl.add t.histograms name h;
        h
  in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

type histogram_snapshot = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;  (** (upper bound exclusive, count), non-empty buckets only *)
}

let histogram t name : histogram_snapshot option =
  match Hashtbl.find_opt t.histograms name with
  | None -> None
  | Some h ->
      let buckets = ref [] in
      for i = n_buckets - 1 downto 0 do
        if h.h_buckets.(i) > 0 then
          buckets := (1 lsl i, h.h_buckets.(i)) :: !buckets
      done;
      Some
        {
          count = h.h_count;
          sum = h.h_sum;
          min = (if h.h_count = 0 then 0 else h.h_min);
          max = (if h.h_count = 0 then 0 else h.h_max);
          buckets = !buckets;
        }

let histograms_alist t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.histograms []
  |> List.sort String.compare
  |> List.filter_map (fun k ->
         Option.map (fun s -> (k, s)) (histogram t k))

(* --- merging --------------------------------------------------------- *)

(** Merge [src] into [dst]: counters and histograms add (count, sum,
    bucket-wise), gauges take the maximum — every per-metric operation
    is associative and commutative, so merging worker registries in any
    grouping yields the same registry.  [dst] and [src] must be distinct
    registries. *)
let merge dst src =
  if dst == src then invalid_arg "Metrics.merge: dst and src are the same";
  Hashtbl.iter (fun k r -> incr ~by:!r dst k) src.counters;
  Hashtbl.iter
    (fun k r ->
      match Hashtbl.find_opt dst.gauges k with
      | Some d -> d := max !d !r
      | None -> Hashtbl.add dst.gauges k (ref !r))
    src.gauges;
  Hashtbl.iter
    (fun k h ->
      match Hashtbl.find_opt dst.histograms k with
      | None ->
          Hashtbl.add dst.histograms k
            {
              h_count = h.h_count;
              h_sum = h.h_sum;
              h_min = h.h_min;
              h_max = h.h_max;
              h_buckets = Array.copy h.h_buckets;
            }
      | Some d ->
          d.h_count <- d.h_count + h.h_count;
          d.h_sum <- d.h_sum + h.h_sum;
          d.h_min <- min d.h_min h.h_min;
          d.h_max <- max d.h_max h.h_max;
          Array.iteri
            (fun i n -> d.h_buckets.(i) <- d.h_buckets.(i) + n)
            h.h_buckets)
    src.histograms

(* --- serialization --------------------------------------------------- *)

let histogram_to_json (s : histogram_snapshot) : Json.t =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("sum", Json.Int s.sum);
      ("min", Json.Int s.min);
      ("max", Json.Int s.max);
      ( "buckets",
        Json.List
          (List.map
             (fun (ub, n) -> Json.Obj [ ("lt", Json.Int ub); ("n", Json.Int n) ])
             s.buckets) );
    ]

let to_json t : Json.t =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters_alist t))
      );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (gauges_alist t)) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, s) -> (k, histogram_to_json s))
             (histograms_alist t)) );
    ]

let to_string t = Json.to_string (to_json t)
