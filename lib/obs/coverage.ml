(** Deterministic per-function block/edge coverage maps.  See the
    interface for the registration/keying contract; the implementation
    mirrors {!Site}: dense arrays on the hot path, descriptor-keyed
    accumulation on {!merge}. *)

type fn = {
  f_name : string;
  f_succ : int array array;  (** block [i] -> successor block ids *)
  f_ebase : int array;  (** block [i] -> first edge id of its out-edges *)
  f_blocks : int array;  (** per-block hit counters *)
  f_edges : int array;  (** flat per-edge hit counters *)
}

type t = { mutable fns : fn list  (** most recently registered first *) }

let create () = { fns = [] }

let n_edges succ = Array.fold_left (fun n s -> n + Array.length s) 0 succ

let ebase_of succ =
  let n = Array.length succ in
  let base = Array.make n 0 in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    base.(i) <- !acc;
    acc := !acc + Array.length succ.(i)
  done;
  base

let same_geometry a b = a.f_name = b.f_name && a.f_succ = b.f_succ

let register_fn t ~name ~succ =
  let probe = { f_name = name; f_succ = succ; f_ebase = [||]; f_blocks = [||]; f_edges = [||] } in
  match List.find_opt (same_geometry probe) t.fns with
  | Some f -> f
  | None ->
      let f =
        {
          f_name = name;
          f_succ = Array.map Array.copy succ;
          f_ebase = ebase_of succ;
          f_blocks = Array.make (Array.length succ) 0;
          f_edges = Array.make (n_edges succ) 0;
        }
      in
      t.fns <- f :: t.fns;
      f

let enter f b =
  if b >= 0 && b < Array.length f.f_blocks then
    f.f_blocks.(b) <- f.f_blocks.(b) + 1

let transition f ~src ~dst =
  if dst >= 0 && dst < Array.length f.f_blocks then begin
    f.f_blocks.(dst) <- f.f_blocks.(dst) + 1;
    if src >= 0 && src < Array.length f.f_succ then begin
      let succ = f.f_succ.(src) in
      let base = f.f_ebase.(src) in
      let n = Array.length succ in
      let rec go k =
        if k < n then
          if succ.(k) = dst then f.f_edges.(base + k) <- f.f_edges.(base + k) + 1
          else go (k + 1)
      in
      go 0
    end
  end

let counters f = (f.f_blocks, f.f_succ, f.f_ebase, f.f_edges)

(* --- snapshots ------------------------------------------------------ *)

type snapshot = {
  cv_func : string;
  cv_succ : int array array;
  cv_block_hits : int array;
  cv_edge_hits : int array;
}

let snapshot_of_fn f =
  {
    cv_func = f.f_name;
    cv_succ = Array.map Array.copy f.f_succ;
    cv_block_hits = Array.copy f.f_blocks;
    cv_edge_hits = Array.copy f.f_edges;
  }

let snapshot t =
  List.sort
    (fun a b -> compare (a.cv_func, a.cv_succ) (b.cv_func, b.cv_succ))
    (List.map snapshot_of_fn t.fns)

let edges s =
  let out = ref [] in
  let eid = ref (Array.length s.cv_edge_hits - 1) in
  for src = Array.length s.cv_succ - 1 downto 0 do
    for k = Array.length s.cv_succ.(src) - 1 downto 0 do
      out := (src, s.cv_succ.(src).(k), s.cv_edge_hits.(!eid)) :: !out;
      decr eid
    done
  done;
  !out

type totals = {
  tt_functions : int;
  tt_functions_hit : int;
  tt_blocks : int;
  tt_blocks_hit : int;
  tt_edges : int;
  tt_edges_hit : int;
}

let count_pos a = Array.fold_left (fun n x -> if x > 0 then n + 1 else n) 0 a

let totals_of snaps =
  List.fold_left
    (fun tt s ->
      {
        tt_functions = tt.tt_functions + 1;
        tt_functions_hit =
          (tt.tt_functions_hit
          + if count_pos s.cv_block_hits > 0 then 1 else 0);
        tt_blocks = tt.tt_blocks + Array.length s.cv_block_hits;
        tt_blocks_hit = tt.tt_blocks_hit + count_pos s.cv_block_hits;
        tt_edges = tt.tt_edges + Array.length s.cv_edge_hits;
        tt_edges_hit = tt.tt_edges_hit + count_pos s.cv_edge_hits;
      })
    {
      tt_functions = 0;
      tt_functions_hit = 0;
      tt_blocks = 0;
      tt_blocks_hit = 0;
      tt_edges = 0;
      tt_edges_hit = 0;
    }
    snaps

let totals t = totals_of (snapshot t)

(* --- cell keys ------------------------------------------------------ *)

let geometry_key s =
  s.cv_func ^ "/"
  ^ String.concat "|"
      (Array.to_list
         (Array.map
            (fun a ->
              String.concat "," (List.map string_of_int (Array.to_list a)))
            s.cv_succ))

let cell_keys s =
  let g = Digest.to_hex (Digest.string (geometry_key s)) in
  let out = ref [] in
  Array.iteri
    (fun i h -> if h > 0 then out := Printf.sprintf "%s:e%d" g i :: !out)
    s.cv_edge_hits;
  Array.iteri
    (fun i h -> if h > 0 then out := Printf.sprintf "%s:b%d" g i :: !out)
    s.cv_block_hits;
  List.sort String.compare !out

let cells_of snaps =
  List.sort_uniq String.compare (List.concat_map cell_keys snaps)

let fingerprint snaps =
  Digest.to_hex (Digest.string (String.concat "\n" (cells_of snaps)))

let of_snapshots snaps =
  let t = create () in
  List.iter
    (fun s ->
      let f = register_fn t ~name:s.cv_func ~succ:s.cv_succ in
      Array.iteri (fun i v -> f.f_blocks.(i) <- f.f_blocks.(i) + v) s.cv_block_hits;
      Array.iteri (fun i v -> f.f_edges.(i) <- f.f_edges.(i) + v) s.cv_edge_hits)
    snaps;
  t

(* --- merge ---------------------------------------------------------- *)

let add_into dst src =
  Array.iteri (fun i v -> dst.f_blocks.(i) <- dst.f_blocks.(i) + v) src.f_blocks;
  Array.iteri (fun i v -> dst.f_edges.(i) <- dst.f_edges.(i) + v) src.f_edges

let merge dst src =
  if dst == src then invalid_arg "Coverage.merge: dst and src are the same";
  List.iter
    (fun sf ->
      match List.find_opt (same_geometry sf) dst.fns with
      | Some df -> add_into df sf
      | None ->
          dst.fns <-
            {
              sf with
              f_succ = Array.map Array.copy sf.f_succ;
              f_ebase = Array.copy sf.f_ebase;
              f_blocks = Array.copy sf.f_blocks;
              f_edges = Array.copy sf.f_edges;
            }
            :: dst.fns)
    (* oldest first, so registration order is preserved in [dst] *)
    (List.rev src.fns)

(* --- JSON ----------------------------------------------------------- *)

let int_array_json a = Json.List (Array.to_list (Array.map (fun i -> Json.Int i) a))

let snapshot_to_json s =
  Json.Obj
    [
      ("func", Json.Str s.cv_func);
      ( "succ",
        Json.List (Array.to_list (Array.map int_array_json s.cv_succ)) );
      ("blocks", int_array_json s.cv_block_hits);
      ("edges", int_array_json s.cv_edge_hits);
    ]

let to_json t = Json.List (List.map snapshot_to_json (snapshot t))

let fail fmt = Printf.ksprintf invalid_arg fmt

let int_array_of_json what = function
  | Json.List l ->
      Array.of_list
        (List.map
           (function
             | Json.Int i when i >= 0 -> i
             | _ -> fail "Coverage.snapshot_of_json: bad %s entry" what)
           l)
  | _ -> fail "Coverage.snapshot_of_json: %s is not an array" what

let snapshot_of_json j =
  let member k =
    match Json.member k j with
    | Some v -> v
    | None -> fail "Coverage.snapshot_of_json: missing %S" k
  in
  let cv_func =
    match member "func" with
    | Json.Str s -> s
    | _ -> fail "Coverage.snapshot_of_json: func is not a string"
  in
  let cv_succ =
    match member "succ" with
    | Json.List l -> Array.of_list (List.map (int_array_of_json "succ") l)
    | _ -> fail "Coverage.snapshot_of_json: succ is not an array"
  in
  let cv_block_hits = int_array_of_json "blocks" (member "blocks") in
  let cv_edge_hits = int_array_of_json "edges" (member "edges") in
  if Array.length cv_block_hits <> Array.length cv_succ then
    fail "Coverage.snapshot_of_json: %s: %d block counters for %d blocks"
      cv_func
      (Array.length cv_block_hits)
      (Array.length cv_succ);
  let expect_edges = n_edges cv_succ in
  if Array.length cv_edge_hits <> expect_edges then
    fail "Coverage.snapshot_of_json: %s: %d edge counters for %d edges"
      cv_func
      (Array.length cv_edge_hits)
      expect_edges;
  Array.iter
    (Array.iter (fun s ->
         if s < 0 || s >= Array.length cv_succ then
           fail "Coverage.snapshot_of_json: %s: successor %d out of range"
             cv_func s))
    cv_succ;
  { cv_func; cv_succ; cv_block_hits; cv_edge_hits }
