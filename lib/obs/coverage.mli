(** Deterministic per-function block/edge coverage maps.

    The VM registers each loaded function's control-flow geometry (its
    per-block successor lists) and gets back a {!fn} handle with dense
    hit-counter arrays; recording a block entry or an edge traversal is
    a couple of array operations, cheap enough to leave enabled on the
    hot path when a caller asks for coverage and entirely absent when it
    does not.

    Functions are keyed by a stable descriptor — name plus the full
    successor geometry — so re-registering the same function (another
    run in the same session) accumulates into the same counters, while
    a same-named function with a different CFG (another optimization
    level, another seed) gets its own entry.  {!merge} is associative
    and commutative over that keying, exactly like {!Metrics.merge}, so
    the parallel harness can merge per-worker registries in job order
    and produce byte-identical output for any [-j]. *)

type t
(** A coverage registry: a set of per-function counter maps. *)

type fn
(** Dense hit counters for one registered function.  Handles returned
    by {!register_fn} stay valid for the registry's lifetime. *)

val create : unit -> t

val register_fn : t -> name:string -> succ:int array array -> fn
(** [register_fn t ~name ~succ] registers (or re-finds) the function
    [name] whose block [i] has successors [succ.(i)].  Edge ids are the
    positions of a flat array laid out block by block in successor
    order, so the id assignment is a pure function of the geometry. *)

val enter : fn -> int -> unit
(** Record entry into block [b] with no incoming edge (function
    entry). *)

val transition : fn -> src:int -> dst:int -> unit
(** Record the edge [src -> dst] and the entry into [dst].  An edge not
    present in the registered geometry is ignored. *)

val counters : fn -> int array * int array array * int array * int array
(** [(blocks, succ, ebase, edges)]: the live counter arrays of a
    registered function, for callers that must inline hit recording on
    an execution hot path (the VM's block-dispatch loop).  [blocks.(b)]
    counts entries into block [b]; the out-edges of block [s] are
    [succ.(s)], with flat counters at [edges.(ebase.(s) + k)] for the
    [k]th successor.  Callers may only index with block ids valid for
    the registered geometry and must treat [succ] and [ebase] as
    read-only; increments through this view are indistinguishable from
    {!enter}/{!transition}. *)

type snapshot = {
  cv_func : string;
  cv_succ : int array array;  (** registered geometry *)
  cv_block_hits : int array;  (** per-block hit counts *)
  cv_edge_hits : int array;  (** flat edge hit counts, geometry order *)
}

val snapshot : t -> snapshot list
(** All registered functions, sorted by (name, geometry) — a
    deterministic order for serialization. *)

val edges : snapshot -> (int * int * int) list
(** [(src, dst, hits)] triples of a snapshot, geometry order. *)

type totals = {
  tt_functions : int;
  tt_functions_hit : int;
  tt_blocks : int;
  tt_blocks_hit : int;
  tt_edges : int;
  tt_edges_hit : int;
}

val totals_of : snapshot list -> totals
val totals : t -> totals

val geometry_key : snapshot -> string
(** The stable textual descriptor a snapshot is keyed by: function name
    plus the full successor geometry.  Two snapshots compare equal under
    {!merge}'s keying iff their geometry keys are equal. *)

val cell_keys : snapshot -> string list
(** Compact, stable keys — ["<geometry-digest>:bN"] / [":eN"] — of the
    snapshot's {e hit} blocks and edges, sorted.  The digest is over
    {!geometry_key}, so any CFG change (another seed, another
    optimization level, a structural mutation) yields disjoint cells
    while re-running the identical program yields the identical set.
    These are the novelty currency of the coverage-guided fuzzer: a
    corpus entry stores the cells its reference run hit, and a candidate
    is admitted when it hits a cell no entry hit before. *)

val cells_of : snapshot list -> string list
(** Sorted, deduplicated union of {!cell_keys} over all snapshots. *)

val fingerprint : snapshot list -> string
(** Digest of {!cells_of} — a one-line coverage identity for corpus
    entry metadata and byte-identical replay checks. *)

val of_snapshots : snapshot list -> t
(** Rebuild a registry from snapshots (accumulating duplicates) — the
    load half of the persistent-profile round trip. *)

val merge : t -> t -> unit
(** [merge dst src] adds the counters of [src] into [dst]: functions
    with identical descriptors add element-wise, unmatched functions
    are copied over.  Associative and commutative up to snapshot order.
    Raises [Invalid_argument] when [dst == src]. *)

val snapshot_to_json : snapshot -> Json.t
val to_json : t -> Json.t

val snapshot_of_json : Json.t -> snapshot
(** Raises [Invalid_argument] on a malformed or inconsistent document
    (hit-array lengths must match the geometry). *)
