(** Minimal JSON tree with a deterministic serializer and a strict
    parser.  Used for metrics snapshots, Chrome traces and the
    machine-readable experiment reports; the CI check re-parses every
    emitted document through {!of_string}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact serialization.  Deterministic: fields are emitted in the
    given order and floats use a fixed round-trip format; NaN and
    infinities serialize as [null]. *)

exception Parse_error of string

val of_string : string -> t
(** Strict parse of a complete document; raises {!Parse_error} on
    malformed input or trailing garbage. *)

val member : string -> t -> t option
(** [member k (Obj fields)] is the value of field [k], if any. *)

val to_list : t -> t list option
