(** Temporal lock-and-key runtime (CETS, ISMM'10).

    Every allocation gets a fresh, never-reused i64 key; [free] and
    frame exit kill keys; a dereference check that finds its key dead
    reports a use-after-free.  Key 0 is "untracked": counted as a wide
    check, never reported.  In-memory pointers keep their key in a
    disjoint trie; keys cross calls on a zero-initialized shadow stack,
    so metadata gaps degrade to unprotected accesses rather than false
    reports.  The allocator hooks chain over whatever was installed
    before, and the free hook doubles as the double-free detector. *)

open Mi_vm

type t
(** Runtime state: live-key set, per-allocation key table, pointer-key
    trie, shadow stack, and keyed stack-allocation frames. *)

(** {1 Keys} *)

val key_of_alloc : t -> int -> int
(** The live key of the allocation starting at the given base address;
    0 if the address owns none (never keyed, or already freed). *)

(** {1 Trie (keys of in-memory pointers)} *)

val trie_store : t -> int -> int -> unit
(** Record the key of the pointer stored at the given address (key 0
    clears the slot). *)

val trie_load : t -> int -> int
(** Key of the pointer stored at the given address; 0 if none. *)

val meta_copy : t -> dst:int -> src:int -> int -> unit
(** Copy keys for every 8-byte slot of a moved memory range. *)

(** {1 Shadow stack} *)

val ss_enter : t -> int -> unit
(** Open a frame with the given number of pointer-argument slots (slot 0
    is the return slot).  The frame is zero-initialized: slots never
    written read as key 0. *)

val ss_leave : t -> unit
val ss_set : t -> int -> int -> unit
val ss_get : t -> int -> int

(** {1 Check (CETS Figure 4)} *)

val check : ?site:int -> t -> State.t -> int -> int -> unit
(** [check t st ptr key] raises {!State.Safety_abort} when [key] is
    nonzero and dead; key 0 counts as a wide check and never reports.
    [site] attributes the execution to an instrumentation site. *)

(** {1 Installation} *)

val install : ?stack_protection:bool -> State.t -> t
(** Attach the runtime: chain the allocator hooks (fresh key per
    allocation; the free hook kills keys and reports double/invalid
    frees), register the [__mi_tp_*] builtins with their fast twins,
    and — with [stack_protection] — the keyed [__mi_tp_alloca] whose
    allocations die at frame exit. *)
