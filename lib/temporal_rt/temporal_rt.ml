(** Temporal lock-and-key runtime (CETS, ISMM'10, adapted to this VM's
    disjoint-metadata idiom).

    Every allocation — heap objects via the chained allocator hook,
    keyed stack variables via [__mi_tp_alloca] — receives a fresh i64
    {e key} drawn from a never-reused counter.  The key is the pointer's
    temporal witness: [free] (and frame exit, for keyed stack objects)
    removes it from the live set, and a dereference check that finds its
    key dead reports a use-after-free.  Key 0 is the distinguished
    {e untracked} key: the temporal analog of wide bounds — counted
    ([tp.checks_wide]), never reported.

    The metadata layout mirrors SoftBound's: in-memory pointers keep
    their key in a disjoint trie keyed by the pointer's location, and
    keys cross calls on a shadow stack.  Unlike SoftBound's, the shadow
    stack's frames are {e zero-initialized} on entry, so a callee or
    caller outside the instrumentation reads key 0 — metadata gaps
    degrade to unprotected accesses, never to false reports (the §4.3
    stale-slot hazard does not exist for this checker by construction).

    The allocator hooks chain: [install] wraps whatever [malloc_hook]/
    [free_hook] were in place, so the temporal runtime composes with any
    underlying allocator.  The free hook is also the double-free
    detector — freeing a nonzero address that owns no live key raises
    {!Mi_vm.State.Safety_abort} before the standard allocator's trap
    would fire. *)

open Mi_vm
module Intr = Mi_mir.Intrinsics

type t = {
  st : State.t;
  keys : (int, int) Hashtbl.t;  (** allocation base -> its (live) key *)
  live : (int, unit) Hashtbl.t;  (** keys not yet killed *)
  trie : (int, int) Hashtbl.t;  (** pointer location -> stored key *)
  mutable next_key : int;  (** fresh-key counter; keys are never reused *)
  mutable ss : int array;  (** shadow stack of keys, zeroed per frame *)
  mutable ss_top : int;
  mutable ss_fp : int;  (** current frame start *)
  mutable ss_saved : int list;  (** saved frame pointers *)
  mutable frames : int list list;
      (** keyed stack allocations per active frame *)
  saved_malloc : State.t -> int -> int;
  saved_free : State.t -> int -> unit;
  saved_frame_enter : State.t -> unit;
  saved_frame_exit : State.t -> unit;
}

(* --- key management --------------------------------------------------- *)

let new_key t addr =
  State.charge t.st t.st.State.cost.Cost.tp_meta;
  State.bump t.st "tp.key_alloc";
  let k = t.next_key in
  t.next_key <- k + 1;
  Hashtbl.replace t.live k ();
  Hashtbl.replace t.keys addr k;
  k

let kill t addr =
  match Hashtbl.find_opt t.keys addr with
  | Some k ->
      Hashtbl.remove t.live k;
      Hashtbl.remove t.keys addr;
      true
  | None -> false

let key_of_alloc t addr =
  State.charge t.st t.st.State.cost.Cost.tp_meta;
  Option.value ~default:0 (Hashtbl.find_opt t.keys addr)

(* --- trie (keys of in-memory pointers) -------------------------------- *)

let trie_store t addr key =
  State.charge t.st t.st.State.cost.Cost.tp_meta;
  State.bump t.st "tp.trie_store";
  if key = 0 then Hashtbl.remove t.trie addr
  else Hashtbl.replace t.trie addr key

let trie_load t addr =
  State.charge t.st t.st.State.cost.Cost.tp_meta;
  State.bump t.st "tp.trie_load";
  Option.value ~default:0 (Hashtbl.find_opt t.trie addr)

(** Copy keys for every pointer-sized slot of a moved memory range (the
    temporal half of the memcpy wrapper's [copy_metadata]). *)
let meta_copy t ~dst ~src len =
  State.bump t.st "tp.meta_copy";
  let n = len / 8 in
  for k = 0 to n - 1 do
    State.charge t.st (2 * t.st.State.cost.Cost.tp_meta);
    let sa = src + (k * 8) and da = dst + (k * 8) in
    match Hashtbl.find_opt t.trie sa with
    | Some key -> Hashtbl.replace t.trie da key
    | None -> Hashtbl.remove t.trie da
  done

(* --- shadow stack ------------------------------------------------------ *)

let ss_ensure t n =
  if n > Array.length t.ss then begin
    let bigger = Array.make (max (Array.length t.ss * 2) n) 0 in
    Array.blit t.ss 0 bigger 0 (Array.length t.ss);
    t.ss <- bigger
  end

let ss_enter t nslots =
  State.charge t.st t.st.State.cost.Cost.ss_frame;
  State.bump t.st "tp.ss_frames";
  t.ss_saved <- t.ss_fp :: t.ss_saved;
  t.ss_fp <- t.ss_top;
  t.ss_top <- t.ss_top + nslots + 1;
  ss_ensure t t.ss_top;
  (* zero the frame: a slot never written reads as key 0 (untracked) *)
  Array.fill t.ss t.ss_fp (t.ss_top - t.ss_fp) 0

let ss_leave t =
  State.charge t.st t.st.State.cost.Cost.ss_frame;
  t.ss_top <- t.ss_fp;
  match t.ss_saved with
  | fp :: rest ->
      t.ss_fp <- fp;
      t.ss_saved <- rest
  | [] -> t.ss_fp <- 0

let ss_set t slot v =
  State.charge t.st t.st.State.cost.Cost.ss_op;
  ss_ensure t (t.ss_fp + slot + 1);
  t.ss.(t.ss_fp + slot) <- v

let ss_get t slot =
  State.charge t.st t.st.State.cost.Cost.ss_op;
  ss_ensure t (t.ss_fp + slot + 1);
  t.ss.(t.ss_fp + slot)

(* --- check (CETS Figure 4) --------------------------------------------- *)

let check ?(site = -1) t st ptr key =
  State.charge st st.State.cost.Cost.tp_check;
  State.bump st "tp.checks";
  if key = 0 then begin
    (* untracked: no allocation identity, access unprotected *)
    State.bump st "tp.checks_wide";
    State.site_hit st site ~wide:true ~cycles:st.State.cost.Cost.tp_check
  end
  else begin
    State.site_hit st site ~wide:false ~cycles:st.State.cost.Cost.tp_check;
    if not (Hashtbl.mem t.live key) then
      raise
        (State.Safety_abort
           {
             checker = "temporal";
             reason =
               Printf.sprintf "use-after-free: ptr=%#x key=%d is dead" ptr key;
           })
  end

(* --- allocator hooks ---------------------------------------------------- *)

let tp_malloc t st sz =
  let a = t.saved_malloc st sz in
  if a <> 0 then ignore (new_key t a);
  a

let tp_free t st addr =
  if addr <> 0 then
    if kill t addr then begin
      State.bump t.st "tp.frees";
      t.saved_free st addr
    end
    else
      raise
        (State.Safety_abort
           {
             checker = "temporal";
             reason = Printf.sprintf "double or invalid free: ptr=%#x" addr;
           })

(* --- installation ------------------------------------------------------- *)

let install ?(stack_protection = true) (st : State.t) : t =
  let t =
    {
      st;
      keys = Hashtbl.create 256;
      live = Hashtbl.create 256;
      trie = Hashtbl.create 256;
      next_key = 1;
      ss = Array.make 4096 0;
      ss_top = 0;
      ss_fp = 0;
      ss_saved = [];
      frames = [];
      saved_malloc = st.malloc_hook;
      saved_free = st.free_hook;
      saved_frame_enter = st.frame_enter_hook;
      saved_frame_exit = st.frame_exit_hook;
    }
  in
  st.malloc_hook <- (fun st sz -> tp_malloc t st sz);
  st.free_hook <- (fun st a -> tp_free t st a);
  (* Generic builtins paired with their typed fast twins — same
     underlying functions, so charges, counters, site attribution and
     aborts are identical. *)
  Runtime.register st
    [
      Runtime.entry Intr.tp_check
        (fun st args ->
          (* the optional 3rd argument is the instrumentation site id *)
          let site =
            if Array.length args > 2 then State.as_int args.(2) else -1
          in
          check ~site t st (State.as_int args.(0)) (State.as_int args.(1));
          None)
        ~fast:(State.F3 (fun st ptr key site -> check ~site t st ptr key));
      Runtime.entry Intr.tp_alloc_key
        (fun _ args -> Some (State.I (key_of_alloc t (State.as_int args.(0)))))
        ~fast:(State.FR1 (fun _ addr -> key_of_alloc t addr));
      Runtime.entry Intr.tp_trie_store
        (fun _ args ->
          trie_store t (State.as_int args.(0)) (State.as_int args.(1));
          None)
        ~fast:(State.F2 (fun _ addr key -> trie_store t addr key));
      Runtime.entry Intr.tp_trie_load
        (fun _ args -> Some (State.I (trie_load t (State.as_int args.(0)))))
        ~fast:(State.FR1 (fun _ addr -> trie_load t addr));
      Runtime.entry Intr.tp_meta_copy
        (fun _ args ->
          meta_copy t
            ~dst:(State.as_int args.(0))
            ~src:(State.as_int args.(1))
            (State.as_int args.(2));
          None)
        ~fast:(State.F3 (fun _ dst src len -> meta_copy t ~dst ~src len));
      Runtime.entry Intr.tp_ss_enter
        (fun _ args ->
          ss_enter t (State.as_int args.(0));
          None)
        ~fast:(State.F1 (fun _ n -> ss_enter t n));
      Runtime.entry Intr.tp_ss_leave
        (fun _ _ ->
          ss_leave t;
          None)
        ~fast:(State.F0 (fun _ -> ss_leave t));
      Runtime.entry Intr.tp_ss_set
        (fun _ args ->
          ss_set t (State.as_int args.(0)) (State.as_int args.(1));
          None)
        ~fast:(State.F2 (fun _ slot v -> ss_set t slot v));
      Runtime.entry Intr.tp_ss_get
        (fun _ args -> Some (State.I (ss_get t (State.as_int args.(0)))))
        ~fast:(State.FR1 (fun _ slot -> ss_get t slot));
    ];
  if stack_protection then begin
    (* keyed stack variables: instrumented allocas move to the heap
       allocator (which keys them) and die at frame exit, making
       dangling-stack-reference dereferences detectable *)
    let alloca_impl st sz =
      let a = tp_malloc t st sz in
      (match t.frames with
      | f :: rest -> t.frames <- (a :: f) :: rest
      | [] -> t.frames <- [ [ a ] ]);
      a
    in
    Runtime.register st
      [
        Runtime.entry Intr.tp_alloca
          (fun st args ->
            Some (State.I (alloca_impl st (State.as_int args.(0)))))
          ~fast:(State.FR1 alloca_impl);
      ];
    st.frame_enter_hook <-
      (fun st ->
        t.saved_frame_enter st;
        t.frames <- [] :: t.frames);
    st.frame_exit_hook <-
      (fun st ->
        (match t.frames with
        | f :: rest ->
            (* tolerate an explicit free of a keyed stack object: only
               still-live allocations are killed and released *)
            List.iter
              (fun a ->
                if kill t a then begin
                  State.bump t.st "tp.frees";
                  t.saved_free st a
                end)
              f;
            t.frames <- rest
        | [] -> ());
        t.saved_frame_exit st)
  end;
  t
