(** Monotonic-style time for deadline arithmetic.

    Every timeout path (harness job budgets, VM deadline polling, the
    server's per-request deadlines) used to compare raw
    [Unix.gettimeofday] samples.  The wall clock is allowed to step —
    NTP corrections, manual [date], VM suspend/resume — and a backward
    step makes a deadline fire late while the comparison [now > at]
    makes a forward step fire a spurious [Job_timeout] on a job that
    consumed almost none of its budget.

    The stdlib exposes no CLOCK_MONOTONIC, so this module provides the
    strongest substitute expressible over [gettimeofday]: a process-wide
    never-decreasing timeline.  [now] returns the wall clock clamped to
    the maximum value any domain has observed, so a backward clock step
    freezes the timeline until real time catches up instead of
    rewinding it — deadline comparisons never see time run backwards,
    and two samples [t1 <= t2] taken in program order always satisfy
    [t2 -. t1 >= 0].  Forward steps remain visible (they are
    indistinguishable from the process simply not being scheduled), so
    budgets stay conservative: a deadline can fire early only by as
    much as the clock actually jumped, never spuriously re-fire, and
    never hang a bounded wait forever.

    All functions are thread- and domain-safe (one CAS loop on a shared
    cell) and allocation-free on the fast path. *)

(* The maximum timestamp observed so far, as an int64 bit pattern —
   [Atomic.t] of float would box on every store.  Non-negative floats
   compare identically to their IEEE-754 bit patterns, and
   [gettimeofday] is non-negative on any plausible host. *)
let high_water = Atomic.make (Int64.bits_of_float 0.0)

let now () =
  let t = Unix.gettimeofday () in
  let bits = Int64.bits_of_float t in
  let rec clamp () =
    let seen = Atomic.get high_water in
    if Int64.compare bits seen > 0 then
      if Atomic.compare_and_set high_water seen bits then t else clamp ()
    else Int64.float_of_bits seen
  in
  clamp ()

(** [deadline budget] is the monotonic instant [budget] seconds from
    now; test it with [expired]. *)
let deadline budget = now () +. budget

let expired at = now () > at

(** Sleep for [s] seconds of monotonic time: [Unix.sleepf] restarted
    until the clamped timeline has actually advanced by [s], so a
    backward wall-clock step during the sleep cannot stretch it
    unboundedly (the clamp freezes, the loop re-sleeps the remainder
    measured against the frozen value and exits once real time catches
    up). *)
let sleep s =
  let until = now () +. s in
  let rec go () =
    let remaining = until -. now () in
    if remaining > 0.0 then begin
      Unix.sleepf remaining;
      go ()
    end
  in
  if s > 0.0 then go ()
