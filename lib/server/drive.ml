(** Load generator and differential verifier for {!Server}.

    [mi-serve --drive] replays a fuzz-generated job matrix against a
    running daemon over [conns] concurrent connections, each pipelining
    a burst of requests, then recomputes every job through a local batch
    {!Mi_bench_kit.Harness.t} and asserts the server's results are
    byte-identical ({!Proto.run_to_json} documents compared as strings).

    Overload handling is part of the exercise: bursts are sized to
    overflow the server's bounded queue, the typed [overloaded] reply is
    retried with a small backoff, and the drive fails if any accepted
    request went unanswered — "zero dropped" is an assertion, not a
    hope.  The greppable summary lines ([drive: ...] and [server: ...])
    are what the CI chaos gate checks. *)

module Harness = Mi_bench_kit.Harness
module Bench = Mi_bench_kit.Bench
module Fault = Mi_faultkit.Fault
module Json = Mi_obs.Json
module Mclock = Mi_support.Mclock
module Gen = Mi_fuzz.Gen
module Oracle = Mi_fuzz.Oracle

type cfg = {
  d_socket : string;
  d_seeds : int * int;  (** inclusive block of generator seeds *)
  d_variants : string list;  (** oracle tags, e.g. ["O0"; "O3+sb"] *)
  d_conns : int;  (** concurrent client connections (domains) *)
  d_burst : int;  (** pipelined requests per connection *)
  d_tenants : int;  (** requests spread over this many tenant names *)
  d_faults : Fault.t;
      (** the server's chaos plan — check/VM clauses are replayed in the
          local verification harness so both sides compute the same
          function; job and cache clauses are the server's to absorb *)
  d_timeout_ms : int option;  (** per-request deadline sent to the server *)
  d_verify_jobs : int;  (** [-j] of the local verification harness *)
  d_shutdown : bool;  (** send [shutdown] when done *)
}

let default_cfg ~socket =
  {
    d_socket = socket;
    d_seeds = (1, 25);
    d_variants = [ "O0"; "O3+sb"; "O3+lf"; "O3+tp" ];
    d_conns = 4;
    d_burst = 4;
    d_tenants = 2;
    d_faults = Fault.none;
    d_timeout_ms = None;
    d_verify_jobs = Harness.default_jobs ();
    d_shutdown = false;
  }

type outcome = {
  o_jobs : int;
  o_ok : int;
  o_failed : int;
  o_degraded : int;
  o_errors : int;  (** protocol-level error replies *)
  o_dropped : int;  (** accepted requests that never got a reply *)
  o_mismatches : int;  (** replies that differ from the batch harness *)
  o_overload_retries : int;
  o_stats : Json.t option;  (** the server's final [stats] document *)
}

let clean o =
  o.o_dropped = 0 && o.o_mismatches = 0 && o.o_errors = 0 && o.o_jobs > 0

(* ------------------------------------------------------------------ *)
(* Job matrix                                                          *)
(* ------------------------------------------------------------------ *)

type djob = {
  dj_seed : int;
  dj_tag : string;
  dj_tenant : string;
  dj_setup : Harness.setup;
  dj_bench : Bench.t;
}

let jobs_of cfg : djob array =
  let lo, hi = cfg.d_seeds in
  let tenants = max 1 cfg.d_tenants in
  let rec go seed acc =
    if seed > hi then List.rev acc
    else
      let prog = Gen.generate ~seed () in
      let bench = Oracle.safe_bench prog in
      let tenant = Printf.sprintf "t%d" (seed mod tenants) in
      let js =
        List.map
          (fun tag ->
            {
              dj_seed = seed;
              dj_tag = tag;
              dj_tenant = tenant;
              dj_setup = Oracle.variant_setup tag;
              dj_bench = bench;
            })
          cfg.d_variants
      in
      go (seed + 1) (List.rev_append js acc)
  in
  Array.of_list (go lo [])

(* ------------------------------------------------------------------ *)
(* Client connections                                                  *)
(* ------------------------------------------------------------------ *)

let connect_retry path =
  let rec go attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when attempt < 100 ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Mclock.sleep 0.05;
        go (attempt + 1)
  in
  go 0

(* request ids are 1-based global job indices *)
let request_of cfg gid (j : djob) =
  Proto.Run
    {
      id = gid;
      tenant = j.dj_tenant;
      setup = j.dj_setup;
      bench = j.dj_bench;
      timeout_ms = cfg.d_timeout_ms;
    }

type conn_result = {
  cr_replies : (int * Proto.reply) list;
  cr_overload_retries : int;
  cr_dropped : int;
}

(* drive one connection's slice: keep [burst] requests pipelined, retry
   overloaded ones, collect terminal replies *)
let run_conn cfg (slice : (int * djob) array) : conn_result =
  let n = Array.length slice in
  if n = 0 then { cr_replies = []; cr_overload_retries = 0; cr_dropped = 0 }
  else begin
    let fd = connect_retry cfg.d_socket in
    let frames = Hashtbl.create n in
    Array.iter
      (fun (gid, j) ->
        Hashtbl.replace frames gid (Proto.request_frame (request_of cfg gid j)))
      slice;
    let results = Hashtbl.create n in
    let pending = Hashtbl.create cfg.d_burst in
    let next = ref 0 in
    let retries = ref 0 in
    let send gid =
      let f = Hashtbl.find frames gid in
      let rec all pos len =
        if len > 0 then begin
          let k = Unix.write_substring fd f pos len in
          all (pos + k) (len - k)
        end
      in
      all 0 (String.length f)
    in
    (try
       while Hashtbl.length results < n do
         while !next < n && Hashtbl.length pending < max 1 cfg.d_burst do
           let gid, _ = slice.(!next) in
           Hashtbl.replace pending gid ();
           send gid;
           incr next
         done;
         match Proto.read_frame fd with
         | None -> raise Exit (* server went away: remainder is dropped *)
         | Some payload -> (
             match Proto.reply_of_string payload with
             | Proto.R_overloaded { id; _ } ->
                 (* not accepted — back off briefly and resubmit *)
                 incr retries;
                 Mclock.sleep 0.02;
                 send id
             | r ->
                 let id = Proto.reply_id r in
                 Hashtbl.remove pending id;
                 Hashtbl.replace results id r)
       done
     with Exit | Unix.Unix_error _ | Proto.Bad_frame _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ());
    {
      cr_replies =
        Array.to_list slice
        |> List.filter_map (fun (gid, _) ->
               Option.map (fun r -> (gid, r)) (Hashtbl.find_opt results gid));
      cr_overload_retries = !retries;
      cr_dropped = n - Hashtbl.length results;
    }
  end

(* ------------------------------------------------------------------ *)
(* Differential verification                                           *)
(* ------------------------------------------------------------------ *)

(* compute every job locally, in one batch session suffering the same
   compile/VM faults (job and cache chaos stays on the server side) *)
let local_results cfg (jobs : djob array) =
  let faults = { cfg.d_faults with Fault.jobs = []; cache = None } in
  let h =
    Harness.create ~jobs:cfg.d_verify_jobs ~faults
      ?job_timeout:
        (Option.map (fun ms -> Float.of_int ms /. 1000.) cfg.d_timeout_ms)
      ()
  in
  Harness.run_jobs h
    (Array.to_list (Array.map (fun j -> (j.dj_setup, j.dj_bench)) jobs))

(* [Some detail] when the server's reply disagrees with the batch run *)
let compare_one (j : djob) (reply : Proto.reply)
    (local : (Harness.run, Harness.error) result) : string option =
  match (reply, local) with
  | Proto.R_ok { result; _ }, Ok r ->
      let server = Json.to_string result in
      let batch = Json.to_string (Proto.run_to_json r) in
      if String.equal server batch then None
      else
        Some
          (Printf.sprintf "seed %d %s: server %s / batch %s" j.dj_seed j.dj_tag
             server batch)
  | Proto.R_failed { reason; _ }, Error e ->
      if String.equal reason e.Harness.reason then None
      else
        Some
          (Printf.sprintf "seed %d %s: server failed %S / batch failed %S"
             j.dj_seed j.dj_tag reason e.Harness.reason)
  | Proto.R_ok _, Error e ->
      Some
        (Printf.sprintf "seed %d %s: server ok / batch failed %S" j.dj_seed
           j.dj_tag e.Harness.reason)
  | Proto.R_failed { reason; _ }, Ok _ ->
      Some
        (Printf.sprintf "seed %d %s: server failed %S / batch ok" j.dj_seed
           j.dj_tag reason)
  | (Proto.R_degraded _ | Proto.R_error _), _ ->
      None (* counted separately, not a determinism question *)
  | _ ->
      Some (Printf.sprintf "seed %d %s: unexpected reply" j.dj_seed j.dj_tag)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let int_stat stats name =
  match Option.bind stats (Json.member name) with
  | Some (Json.Int n) -> n
  | _ -> -1

let run (cfg : cfg) : outcome =
  let jobs = jobs_of cfg in
  let n = Array.length jobs in
  let conns = max 1 cfg.d_conns in
  (* round-robin slices: every connection mixes tenants and variants *)
  let slices =
    Array.init conns (fun c ->
        Array.of_list
          (List.filter_map
             (fun i -> if i mod conns = c then Some (i + 1, jobs.(i)) else None)
             (List.init n Fun.id)))
  in
  let handles =
    Array.map (fun s -> Domain.spawn (fun () -> run_conn cfg s)) slices
  in
  let crs = Array.map Domain.join handles in
  let replies = Hashtbl.create n in
  Array.iter
    (fun cr -> List.iter (fun (gid, r) -> Hashtbl.replace replies gid r) cr.cr_replies)
    crs;
  let overload_retries =
    Array.fold_left (fun a cr -> a + cr.cr_overload_retries) 0 crs
  in
  let dropped = Array.fold_left (fun a cr -> a + cr.cr_dropped) 0 crs in
  (* final server stats (and optional shutdown) on a fresh connection *)
  let stats =
    match connect_retry cfg.d_socket with
    | fd ->
        let ask req =
          Proto.write_frame fd (Json.to_string (Proto.request_to_json req));
          Option.map Proto.reply_of_string (Proto.read_frame fd)
        in
        let stats =
          match ask (Proto.Stats { id = 1 }) with
          | Some (Proto.R_stats { stats; _ }) -> Some stats
          | _ -> None
        in
        if cfg.d_shutdown then
          ignore (ask (Proto.Shutdown { id = 2 }) : Proto.reply option);
        (try Unix.close fd with Unix.Unix_error _ -> ());
        stats
    | exception Unix.Unix_error _ -> None
  in
  (* recompute everything through the batch harness and diff *)
  let local = Array.of_list (local_results cfg jobs) in
  let ok = ref 0
  and failed = ref 0
  and degraded = ref 0
  and errors = ref 0
  and mismatches = ref 0 in
  Array.iteri
    (fun i j ->
      match Hashtbl.find_opt replies (i + 1) with
      | None -> ()
      | Some r -> (
          (match r with
          | Proto.R_ok _ -> incr ok
          | Proto.R_failed _ -> incr failed
          | Proto.R_degraded _ -> incr degraded
          | Proto.R_error _ -> incr errors
          | _ -> incr errors);
          match compare_one j r local.(i) with
          | None -> ()
          | Some detail ->
              incr mismatches;
              if !mismatches <= 5 then
                Printf.eprintf "[drive] mismatch: %s\n%!" detail))
    jobs;
  let o =
    {
      o_jobs = n;
      o_ok = !ok;
      o_failed = !failed;
      o_degraded = !degraded;
      o_errors = !errors;
      o_dropped = dropped;
      o_mismatches = !mismatches;
      o_overload_retries = overload_retries;
      o_stats = stats;
    }
  in
  Printf.printf
    "drive: jobs=%d ok=%d failed=%d degraded=%d errors=%d dropped=%d \
     mismatches=%d overload-retries=%d\n"
    o.o_jobs o.o_ok o.o_failed o.o_degraded o.o_errors o.o_dropped
    o.o_mismatches o.o_overload_retries;
  Printf.printf
    "server: accepted=%d rejected=%d ok=%d failed=%d degraded=%d restarts=%d \
     cache-hits=%d cache-misses=%d cache-corrupt=%d\n"
    (int_stat stats "accepted") (int_stat stats "rejected")
    (int_stat stats "completed") (int_stat stats "failed")
    (int_stat stats "degraded") (int_stat stats "restarts")
    (match Option.bind (Option.bind stats (Json.member "cache")) (Json.member "hits") with
    | Some (Json.Int n) -> n
    | _ -> -1)
    (match Option.bind (Option.bind stats (Json.member "cache")) (Json.member "misses") with
    | Some (Json.Int n) -> n
    | _ -> -1)
    (match Option.bind (Option.bind stats (Json.member "cache")) (Json.member "corrupt") with
    | Some (Json.Int n) -> n
    | _ -> -1);
  o
