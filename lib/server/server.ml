(** The [mi-serve] daemon: compile/instrument/run as a service.

    One process serves many tenants over a Unix-domain socket speaking
    {!Proto}.  The moving parts:

    - {b Event loop} (main domain): non-blocking [Unix.select] over the
      listening socket, every client connection and a self-pipe the
      workers tickle; parses frames, answers [ping]/[stats]/[shutdown]
      inline and admits [run] requests into the queue.
    - {b Bounded queue}: admission control happens at frame-parse time —
      a full queue yields an immediate typed [overloaded] reply and the
      request is {e not} accepted.  Nothing ever queues without bound,
      and an accepted request is never dropped.
    - {b Worker pool}: [workers] domains pop jobs and run them through
      per-tenant {!Mi_bench_kit.Harness.t} sessions that all share one
      content-addressed instrumentation cache.
    - {b Supervisor}: an injected worker crash ([--inject crash=SUBSTR])
      kills the worker domain for real — the job is requeued at the
      front first, the event loop reaps the dead domain, restarts the
      slot and counts it.  Queue intact, zero requests dropped.
    - {b Degraded modes}: a corrupted cache entry is quarantined and
      recomputed by the cache itself; a tenant approach that keeps
      failing trips a circuit breaker and answers [degraded] while every
      other approach keeps serving.

    Determinism: per-request results are {!Proto.run_to_json} documents,
    byte-identical to the batch harness on the same job.  Tenant
    sessions aggregate observability in completion order, but every
    merge ({!Mi_obs}) is commutative and associative, so final counter
    values are schedule-independent; only trace event order is not. *)

module Harness = Mi_bench_kit.Harness
module Icache = Mi_bench_kit.Icache
module Bench = Mi_bench_kit.Bench
module Fault = Mi_faultkit.Fault
module Json = Mi_obs.Json
module Mclock = Mi_support.Mclock

type cfg = {
  socket : string;
  workers : int;
  queue_cap : int;  (** admission bound: queued (not in-flight) requests *)
  cache_dir : string option;  (** persist the shared instrumentation cache *)
  faults : Fault.t;
      (** chaos plan: [crash=]/[hang=] clauses fire in server workers
          (matched against ["tenant/<setup_key>/<bench>"]),
          [corrupt-cache=] is applied to the shared cache at startup,
          and check/VM clauses flow into every tenant session *)
  job_timeout : float option;  (** default per-request budget, seconds *)
  retries : int;  (** harness-level retries inside tenant sessions *)
  retry_backoff_ms : int;
  trip : int;  (** consecutive failures that trip a tenant's breaker *)
  verbose : bool;
}

let default_cfg ~socket =
  {
    socket;
    workers = 2;
    queue_cap = 16;
    cache_dir = None;
    faults = Fault.none;
    job_timeout = None;
    retries = 0;
    retry_backoff_ms = 250;
    trip = 3;
    verbose = false;
  }

(** Final accounting, also printed on clean shutdown. *)
type final = {
  f_accepted : int;
  f_rejected : int;
  f_completed : int;
  f_failed : int;
  f_degraded : int;
  f_restarts : int;
  f_cache : Icache.stats;
}

(* ------------------------------------------------------------------ *)
(* Shared state                                                        *)
(* ------------------------------------------------------------------ *)

type job = {
  j_id : int;
  j_conn : int;
  j_tenant : string;
  j_setup : Harness.setup;
  j_bench : Bench.t;
  j_timeout_ms : int option;
  j_admitted : float;  (* Mclock.now at admission, for latency *)
  mutable j_crashes : int;  (* injected worker crashes already suffered *)
}

type tenant = {
  tn_h : Harness.t;
  tn_lock : Mutex.t;  (* serializes runs (and set_job_timeout) *)
  tn_breaker : (string, int) Hashtbl.t;  (* approach -> consecutive fails *)
  tn_disabled : (string, string) Hashtbl.t;  (* approach -> reason *)
}

type t = {
  cfg : cfg;
  cache : Icache.t;
  tenants : (string, tenant) Hashtbl.t;
  tenants_lock : Mutex.t;
  q : job Queue.t;
  mutable requeued : job list;  (* crash-requeued: served first, no cap *)
  q_lock : Mutex.t;
  q_cond : Condition.t;
  halt : bool Atomic.t;  (* workers: stop once the queue is dry *)
  in_flight : int Atomic.t;
  mutable outbox : (int * string) list;  (* (conn id, frame), newest first *)
  out_lock : Mutex.t;
  wake_w : Unix.file_descr;
  dead : bool Atomic.t array;  (* per-slot: worker domain exited *)
  accepted : int Atomic.t;
  rejected : int Atomic.t;
  completed : int Atomic.t;
  failed : int Atomic.t;
  degraded : int Atomic.t;
  restarts : int Atomic.t;
  lat_lock : Mutex.t;
  mutable latencies : float list;  (* ms, admission to reply *)
}

let job_desc (job : job) =
  job.j_tenant ^ "/"
  ^ Harness.setup_key job.j_setup
  ^ "/" ^ job.j_bench.Bench.name

let effective_timeout t (job : job) =
  match job.j_timeout_ms with
  | Some ms -> Some (Float.of_int ms /. 1000.)
  | None -> t.cfg.job_timeout

let queue_depth_unlocked t = Queue.length t.q + List.length t.requeued

(* wake the event loop from a worker; a full pipe already wakes it *)
let wake t =
  try ignore (Unix.write_substring t.wake_w "x" 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) ->
    ()

(* ------------------------------------------------------------------ *)
(* Worker side                                                         *)
(* ------------------------------------------------------------------ *)

(* [None] only when halting with a dry queue. *)
let take_job t =
  Mutex.lock t.q_lock;
  let rec go () =
    match t.requeued with
    | j :: rest ->
        t.requeued <- rest;
        Some j
    | [] ->
        if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
        else if Atomic.get t.halt then None
        else begin
          Condition.wait t.q_cond t.q_lock;
          go ()
        end
  in
  let j = go () in
  (* in_flight moves under q_lock so "queue empty && nothing in flight"
     is a consistent drain test for the event loop *)
  (match j with Some _ -> Atomic.incr t.in_flight | None -> ());
  Mutex.unlock t.q_lock;
  j

(* put a crash-requeued job back at the front: it was already admitted,
   so it bypasses the admission bound — zero drops by construction *)
let requeue t job =
  Mutex.lock t.q_lock;
  t.requeued <- job :: t.requeued;
  Atomic.decr t.in_flight;
  Condition.signal t.q_cond;
  Mutex.unlock t.q_lock

let post_reply t (job : job) reply =
  let frame = Proto.reply_frame reply in
  Mutex.lock t.out_lock;
  t.outbox <- (job.j_conn, frame) :: t.outbox;
  Mutex.unlock t.out_lock;
  let ms = (Mclock.now () -. job.j_admitted) *. 1000. in
  Mutex.lock t.lat_lock;
  t.latencies <- ms :: t.latencies;
  Mutex.unlock t.lat_lock

let get_tenant t name =
  Mutex.lock t.tenants_lock;
  let tn =
    match Hashtbl.find_opt t.tenants name with
    | Some tn -> tn
    | None ->
        (* job chaos is the server's business and the cache was
           corrupted once at startup — tenant sessions get the plan
           minus both, over the shared cache *)
        let faults = { t.cfg.faults with Fault.jobs = []; cache = None } in
        let h =
          Harness.create ~jobs:1 ~cache:t.cache ~faults
            ?job_timeout:t.cfg.job_timeout ~retries:t.cfg.retries
            ~retry_backoff_ms:t.cfg.retry_backoff_ms ()
        in
        let tn =
          {
            tn_h = h;
            tn_lock = Mutex.create ();
            tn_breaker = Hashtbl.create 7;
            tn_disabled = Hashtbl.create 7;
          }
        in
        Hashtbl.replace t.tenants name tn;
        tn
  in
  Mutex.unlock t.tenants_lock;
  tn

let failure_kind_name = function
  | Harness.Crash -> "crash"
  | Harness.Timeout -> "timeout"
  | Harness.Injected -> "injected"

(* the failure the run just recorded, if any (compile/link errors yield
   an [Error] without a job_failure entry) *)
let fresh_failure h ~before =
  let fs = Harness.failures h in
  if List.length fs > before then
    match List.rev fs with f :: _ -> Some f | [] -> None
  else None

let execute t (job : job) : Proto.reply =
  let tn = get_tenant t job.j_tenant in
  let approach =
    Option.map
      (fun c -> c.Mi_core.Config.approach)
      job.j_setup.Harness.config
  in
  Mutex.lock tn.tn_lock;
  let reply =
    match approach with
    | Some a when Hashtbl.mem tn.tn_disabled a ->
        Atomic.incr t.degraded;
        Proto.R_degraded
          { id = job.j_id; approach = a; reason = Hashtbl.find tn.tn_disabled a }
    | _ -> (
        Harness.set_job_timeout tn.tn_h (effective_timeout t job);
        let before = List.length (Harness.failures tn.tn_h) in
        match Harness.run tn.tn_h job.j_setup job.j_bench with
        | Ok r ->
            Option.iter (fun a -> Hashtbl.remove tn.tn_breaker a) approach;
            Atomic.incr t.completed;
            Proto.R_ok { id = job.j_id; result = Proto.run_to_json r }
        | Error e ->
            Atomic.incr t.failed;
            let kind, retries =
              match fresh_failure tn.tn_h ~before with
              | Some jf ->
                  (failure_kind_name jf.Harness.jf_kind, jf.Harness.jf_retries)
              | None -> ("error", 0)
            in
            (* breaker: only genuine crashes and compile failures count —
               timeouts and injected chaos are not the checker's fault *)
            (match (approach, kind) with
            | Some a, ("crash" | "error") ->
                let n =
                  (match Hashtbl.find_opt tn.tn_breaker a with
                  | Some n -> n
                  | None -> 0)
                  + 1
                in
                Hashtbl.replace tn.tn_breaker a n;
                if n >= t.cfg.trip then
                  Hashtbl.replace tn.tn_disabled a
                    (Printf.sprintf
                       "approach disabled for this tenant after %d \
                        consecutive failures"
                       n)
            | _ -> ());
            Proto.R_failed
              { id = job.j_id; kind; reason = e.Harness.reason; retries })
  in
  Mutex.unlock tn.tn_lock;
  reply

let rec worker_loop t slot =
  match take_job t with
  | None -> ()
  | Some job -> (
      let fault =
        (* a job retried after an injected crash runs immune: the chaos
           already hit it, and the restarted worker must make progress *)
        if job.j_crashes = 0 then Fault.job_fault_for t.cfg.faults (job_desc job)
        else None
      in
      match fault with
      | Some (Fault.Crash_job _) ->
          (* injected worker crash: requeue the request, then die for
             real — the supervisor restarts this slot *)
          job.j_crashes <- 1;
          requeue t job;
          Atomic.set t.dead.(slot) true;
          wake t
      | fault ->
          let timed_out_in_hang =
            match fault with
            | Some (Fault.Hang_job (_, secs)) ->
                let budget = effective_timeout t job in
                let stall =
                  match budget with
                  | Some b -> Float.min secs b
                  | None -> secs
                in
                Mclock.sleep stall;
                (match budget with Some b -> secs >= b | None -> false)
            | _ -> false
          in
          let reply =
            if timed_out_in_hang then begin
              Atomic.incr t.failed;
              Proto.R_failed
                {
                  id = job.j_id;
                  kind = "timeout";
                  reason =
                    (match effective_timeout t job with
                    | Some b ->
                        Printf.sprintf "wall-clock budget exceeded (%gs)" b
                    | None -> "wall-clock budget exceeded");
                  retries = 0;
                }
            end
            else
              try execute t job
              with exn ->
                (* last-resort containment: a worker domain only ever
                   dies on purpose (injected crash above) *)
                Atomic.incr t.failed;
                Proto.R_failed
                  {
                    id = job.j_id;
                    kind = "crash";
                    reason = Printexc.to_string exn;
                    retries = 0;
                  }
          in
          post_reply t job reply;
          Mutex.lock t.q_lock;
          Atomic.decr t.in_flight;
          Mutex.unlock t.q_lock;
          wake t;
          worker_loop t slot)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n ->
      let idx = Float.to_int (Float.of_int (n - 1) *. p) in
      sorted.(idx)

let stats_json t =
  let cs = Icache.stats t.cache in
  Mutex.lock t.lat_lock;
  let lats = Array.of_list t.latencies in
  Mutex.unlock t.lat_lock;
  Array.sort compare lats;
  Mutex.lock t.q_lock;
  let depth = queue_depth_unlocked t in
  Mutex.unlock t.q_lock;
  Mutex.lock t.tenants_lock;
  let tenants = Hashtbl.length t.tenants in
  Mutex.unlock t.tenants_lock;
  Json.Obj
    [
      ("accepted", Json.Int (Atomic.get t.accepted));
      ("rejected", Json.Int (Atomic.get t.rejected));
      ("completed", Json.Int (Atomic.get t.completed));
      ("failed", Json.Int (Atomic.get t.failed));
      ("degraded", Json.Int (Atomic.get t.degraded));
      ("restarts", Json.Int (Atomic.get t.restarts));
      ("queue_depth", Json.Int depth);
      ("in_flight", Json.Int (Atomic.get t.in_flight));
      ("workers", Json.Int t.cfg.workers);
      ("queue_cap", Json.Int t.cfg.queue_cap);
      ("tenants", Json.Int tenants);
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int cs.Icache.hits);
            ("misses", Json.Int cs.Icache.misses);
            ("corrupt", Json.Int cs.Icache.corrupt);
          ] );
      ( "latency_ms",
        Json.Obj
          [
            ("count", Json.Int (Array.length lats));
            ("p50", Json.Float (percentile lats 0.5));
            ("p99", Json.Float (percentile lats 0.99));
            ( "max",
              Json.Float
                (if Array.length lats = 0 then 0.
                 else lats.(Array.length lats - 1)) );
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Event loop                                                          *)
(* ------------------------------------------------------------------ *)

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  mutable c_in : string;  (* unparsed stream bytes *)
  mutable c_out : string;  (* unsent reply bytes *)
}

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let run (cfg : cfg) : final =
  (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let cache = Icache.create ?dir:cfg.cache_dir () in
  (* chaos: corrupt the persisted cache once, at startup — entries are
     quarantined and recomputed on first access *)
  (match cfg.faults.Fault.cache with
  | Some how -> ignore (Icache.corrupt cache how : int)
  | None -> ());
  let t =
    {
      cfg;
      cache;
      tenants = Hashtbl.create 16;
      tenants_lock = Mutex.create ();
      q = Queue.create ();
      requeued = [];
      q_lock = Mutex.create ();
      q_cond = Condition.create ();
      halt = Atomic.make false;
      in_flight = Atomic.make 0;
      outbox = [];
      out_lock = Mutex.create ();
      wake_w;
      dead = Array.init cfg.workers (fun _ -> Atomic.make false);
      accepted = Atomic.make 0;
      rejected = Atomic.make 0;
      completed = Atomic.make 0;
      failed = Atomic.make 0;
      degraded = Atomic.make 0;
      restarts = Atomic.make 0;
      lat_lock = Mutex.create ();
      latencies = [];
    }
  in
  let handles =
    Array.init cfg.workers (fun slot ->
        Domain.spawn (fun () -> worker_loop t slot))
  in
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
  let next_conn = ref 0 in
  let stopping = ref false in
  let running = ref true in
  let drop_conn c =
    close_quietly c.c_fd;
    Hashtbl.remove conns c.c_id
  in
  let handle_frame c payload =
    let out reply = c.c_out <- c.c_out ^ Proto.reply_frame reply in
    match Proto.request_of_string payload with
    | Error (id, reason) -> out (Proto.R_error { id; reason })
    | Ok (Proto.Ping { id }) -> out (Proto.R_pong { id })
    | Ok (Proto.Stats { id }) -> out (Proto.R_stats { id; stats = stats_json t })
    | Ok (Proto.Shutdown { id }) ->
        out (Proto.R_bye { id });
        stopping := true
    | Ok (Proto.Run { id; tenant; setup; bench; timeout_ms }) ->
        if !stopping then
          out (Proto.R_error { id; reason = "server is shutting down" })
        else begin
          Mutex.lock t.q_lock;
          let depth = queue_depth_unlocked t in
          if depth >= t.cfg.queue_cap then begin
            Mutex.unlock t.q_lock;
            Atomic.incr t.rejected;
            out
              (Proto.R_overloaded
                 { id; queue = depth; capacity = t.cfg.queue_cap })
          end
          else begin
            Queue.push
              {
                j_id = id;
                j_conn = c.c_id;
                j_tenant = tenant;
                j_setup = setup;
                j_bench = bench;
                j_timeout_ms = timeout_ms;
                j_admitted = Mclock.now ();
                j_crashes = 0;
              }
              t.q;
            Atomic.incr t.accepted;
            Condition.signal t.q_cond;
            Mutex.unlock t.q_lock
          end
        end
  in
  let buf = Bytes.create 65536 in
  while !running do
    (* supervise: reap dead worker domains, restart their slot with the
       queue untouched *)
    Array.iteri
      (fun slot dead ->
        if Atomic.get dead then begin
          Domain.join handles.(slot);
          Atomic.set dead false;
          Atomic.incr t.restarts;
          if cfg.verbose then
            Printf.eprintf "[mi-serve] worker %d crashed; restarting\n%!" slot;
          handles.(slot) <- Domain.spawn (fun () -> worker_loop t slot)
        end)
      t.dead;
    (* route finished replies to their connections *)
    let pending =
      Mutex.lock t.out_lock;
      let p = t.outbox in
      t.outbox <- [];
      Mutex.unlock t.out_lock;
      List.rev p
    in
    List.iter
      (fun (cid, frame) ->
        match Hashtbl.find_opt conns cid with
        | Some c -> c.c_out <- c.c_out ^ frame
        | None -> () (* client hung up before its reply *))
      pending;
    let rset =
      listen_fd :: wake_r :: Hashtbl.fold (fun _ c acc -> c.c_fd :: acc) conns []
    in
    let wset =
      Hashtbl.fold
        (fun _ c acc -> if c.c_out <> "" then c.c_fd :: acc else acc)
        conns []
    in
    let readable, writable, _ =
      match Unix.select rset wset [] 0.05 with
      | r -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    let conn_of_fd fd =
      Hashtbl.fold
        (fun _ c acc -> if c.c_fd = fd then Some c else acc)
        conns None
    in
    (* flush pending replies *)
    List.iter
      (fun fd ->
        match conn_of_fd fd with
        | Some c when c.c_out <> "" -> (
            match
              Unix.write_substring c.c_fd c.c_out 0 (String.length c.c_out)
            with
            | n -> c.c_out <- String.sub c.c_out n (String.length c.c_out - n)
            | exception
                Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                ()
            | exception Unix.Unix_error (Unix.EPIPE, _, _) -> drop_conn c)
        | _ -> ())
      writable;
    (* accept / read *)
    List.iter
      (fun fd ->
        if fd = listen_fd then begin
          match Unix.accept ~cloexec:true listen_fd with
          | cfd, _ ->
              Unix.set_nonblock cfd;
              incr next_conn;
              Hashtbl.replace conns !next_conn
                { c_id = !next_conn; c_fd = cfd; c_in = ""; c_out = "" }
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              ()
        end
        else if fd = wake_r then begin
          let rec drain () =
            match Unix.read wake_r buf 0 (Bytes.length buf) with
            | 0 -> ()
            | _ -> drain ()
            | exception
                Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                ()
          in
          drain ()
        end
        else
          match conn_of_fd fd with
          | None -> ()
          | Some c -> (
              match Unix.read c.c_fd buf 0 (Bytes.length buf) with
              | 0 -> drop_conn c
              | n -> (
                  c.c_in <- c.c_in ^ Bytes.sub_string buf 0 n;
                  match Proto.pop_frames c.c_in with
                  | frames, rest ->
                      c.c_in <- rest;
                      List.iter (handle_frame c) frames
                  | exception Proto.Bad_frame _ ->
                      (* framing desync is unrecoverable *)
                      drop_conn c)
              | exception
                  Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                  ()
              | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
                  drop_conn c))
      readable;
    (* clean shutdown: everything accepted has been served and flushed *)
    if !stopping then begin
      Mutex.lock t.q_lock;
      let drained =
        queue_depth_unlocked t = 0 && Atomic.get t.in_flight = 0
      in
      Mutex.unlock t.q_lock;
      Mutex.lock t.out_lock;
      let outbox_empty = t.outbox = [] in
      Mutex.unlock t.out_lock;
      let flushed =
        Hashtbl.fold (fun _ c acc -> acc && c.c_out = "") conns true
      in
      if drained && outbox_empty && flushed then running := false
    end
  done;
  Atomic.set t.halt true;
  Mutex.lock t.q_lock;
  Condition.broadcast t.q_cond;
  Mutex.unlock t.q_lock;
  Array.iter Domain.join handles;
  Hashtbl.iter (fun _ c -> close_quietly c.c_fd) conns;
  close_quietly listen_fd;
  close_quietly wake_r;
  close_quietly t.wake_w;
  (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  let fin =
    {
      f_accepted = Atomic.get t.accepted;
      f_rejected = Atomic.get t.rejected;
      f_completed = Atomic.get t.completed;
      f_failed = Atomic.get t.failed;
      f_degraded = Atomic.get t.degraded;
      f_restarts = Atomic.get t.restarts;
      f_cache = Icache.stats t.cache;
    }
  in
  if cfg.verbose then
    Printf.eprintf
      "[mi-serve] accepted=%d rejected=%d ok=%d failed=%d degraded=%d \
       restarts=%d cache-corrupt=%d\n\
       %!"
      fin.f_accepted fin.f_rejected fin.f_completed fin.f_failed
      fin.f_degraded fin.f_restarts fin.f_cache.Icache.corrupt;
  fin

let final_line fin =
  Printf.sprintf
    "server: accepted=%d rejected=%d ok=%d failed=%d degraded=%d restarts=%d \
     cache-hits=%d cache-misses=%d cache-corrupt=%d"
    fin.f_accepted fin.f_rejected fin.f_completed fin.f_failed fin.f_degraded
    fin.f_restarts fin.f_cache.Icache.hits fin.f_cache.Icache.misses
    fin.f_cache.Icache.corrupt
