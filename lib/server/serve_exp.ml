(** The [serve-load] experiment: the daemon vs the batch harness.

    Boots an in-process {!Server} on a private socket, replays a small
    fuzz-generated load through {!Drive} with an injected worker crash,
    and reports the deterministic outcome: every request answered, every
    response byte-identical to the batch harness, and the supervisor's
    restart count exactly the number of crash-matched requests.

    The series deliberately excludes timing-dependent numbers (overload
    rejections, latencies) so the report stays byte-identical across
    [-j] — the experiments contract. *)

module Harness = Mi_bench_kit.Harness
module Experiments = Mi_bench_kit.Experiments
module Fault = Mi_faultkit.Fault

(* seeds 1..8: the crash clause matches exactly the four requests of
   seed 3's benchmark ("fuzz-3"), so restarts = 4, deterministically *)
let seeds = (1, 8)
let crash_substr = "fuzz-3"
let expected_restarts = 4

let run_load () =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mi-serve-exp-%d.sock" (Unix.getpid ()))
  in
  let faults =
    match Fault.parse ("crash=" ^ crash_substr) with
    | Ok f -> f
    | Error msg -> invalid_arg msg
  in
  let scfg =
    {
      (Server.default_cfg ~socket) with
      Server.workers = 2;
      queue_cap = 4;
      faults;
      retries = 1;
    }
  in
  let server = Domain.spawn (fun () -> Server.run scfg) in
  let dcfg =
    {
      (Drive.default_cfg ~socket) with
      Drive.d_seeds = seeds;
      d_conns = 4;
      d_burst = 2;
      d_tenants = 2;
      d_faults = faults;
      d_verify_jobs = 2;
      d_shutdown = true;
    }
  in
  let outcome = Drive.run dcfg in
  let fin = Domain.join server in
  (outcome, fin)

let register_experiment () =
  Experiments.register
    {
      Experiments.name = "serve-load";
      aliases = [ "serve" ];
      descr = "mi-serve under chaos: crash-restarts, backpressure, byte-identity";
      jobs = (fun _ -> []);
      reduce =
        (fun _lookup _benchmarks ->
          let o, fin = run_load () in
          if not (Drive.clean o) then
            raise
              (Harness.Benchmark_failed
                 ( "serve-load",
                   Printf.sprintf
                     "drive not clean: jobs=%d ok=%d failed=%d errors=%d \
                      dropped=%d mismatches=%d"
                     o.Drive.o_jobs o.Drive.o_ok o.Drive.o_failed
                     o.Drive.o_errors o.Drive.o_dropped o.Drive.o_mismatches ));
          if fin.Server.f_restarts <> expected_restarts then
            raise
              (Harness.Benchmark_failed
                 ( "serve-load",
                   Printf.sprintf "expected %d supervisor restarts, saw %d"
                     expected_restarts fin.Server.f_restarts ));
          {
            Experiments.title =
              "Serving under chaos: mi-serve equals the batch harness";
            text =
              Printf.sprintf
                "%d requests over 4 connections, 2 workers, queue bound 4, \
                 injected worker crashes on %s\n\
                 answered=%d failed=%d dropped=%d mismatches=%d \
                 supervisor-restarts=%d\n"
                o.Drive.o_jobs crash_substr o.Drive.o_ok o.Drive.o_failed
                o.Drive.o_dropped o.Drive.o_mismatches fin.Server.f_restarts;
            series =
              [
                {
                  Experiments.label = "serve-load";
                  points =
                    [
                      ("jobs", float_of_int o.Drive.o_jobs);
                      ("ok", float_of_int o.Drive.o_ok);
                      ("failed", float_of_int o.Drive.o_failed);
                      ("dropped", float_of_int o.Drive.o_dropped);
                      ("mismatches", float_of_int o.Drive.o_mismatches);
                      ("restarts", float_of_int fin.Server.f_restarts);
                    ];
                };
              ];
          });
    }
