(** Wire protocol of the instrumentation service.

    Requests and replies are JSON documents framed with an 8-digit
    lowercase-hex length prefix over a Unix-domain stream socket:

    {v <8 hex chars: payload byte length><payload bytes> v}

    The framing is deliberately trivial: it is self-describing in a hex
    dump, needs no escaping, and a corrupted header is detected
    immediately (non-hex digits, or a length over {!max_frame}).

    The JSON schema is closed.  A request is one of

    {v
    {"op":"run","id":N,"tenant":T,"setup":{..},"bench":{..},
     "timeout_ms":M?}
    {"op":"ping","id":N}
    {"op":"stats","id":N}
    {"op":"shutdown","id":N}
    v}

    and every reply carries the request's [id] plus a [status] of
    ["ok"], ["overloaded"], ["failed"], ["degraded"], ["pong"],
    ["stats"], ["bye"] or ["error"].  [overloaded] is the typed
    admission-control reply: the server's bounded queue was full, the
    request was {e not} accepted, and the client may resubmit.

    {!run_to_json} is the canonical rendering of a completed
    {!Mi_bench_kit.Harness.run} — the server and the [--drive] load
    generator both use it, so "the daemon equals the batch harness" is
    literal byte equality of these documents. *)

module Harness = Mi_bench_kit.Harness
module Bench = Mi_bench_kit.Bench
module Config = Mi_core.Config
module Pipeline = Mi_passes.Pipeline
module Json = Mi_obs.Json

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let max_frame = 1 lsl 26  (* 64 MiB: far above any real request *)

exception Bad_frame of string

let frame payload =
  let n = String.length payload in
  if n > max_frame then raise (Bad_frame "frame too large");
  Printf.sprintf "%08x%s" n payload

(* [pop_frames buf] splits [buf] (accumulated stream bytes) into the
   complete frames it starts with and the unconsumed remainder. *)
let pop_frames (buf : string) : string list * string =
  let len = String.length buf in
  let rec go pos acc =
    if len - pos < 8 then (List.rev acc, String.sub buf pos (len - pos))
    else begin
      let n =
        try int_of_string ("0x" ^ String.sub buf pos 8)
        with Failure _ -> raise (Bad_frame "malformed frame header")
      in
      if n < 0 || n > max_frame then raise (Bad_frame "frame length out of range");
      if len - pos - 8 < n then (List.rev acc, String.sub buf pos (len - pos))
      else go (pos + 8 + n) (String.sub buf (pos + 8) n :: acc)
    end
  in
  go 0 []

(* Blocking whole-frame IO for simple clients (the server side uses
   non-blocking reads + [pop_frames]). *)

let rec write_all fd s pos len =
  if len > 0 then begin
    let n = Unix.write_substring fd s pos len in
    write_all fd s (pos + n) (len - n)
  end

let write_frame fd payload =
  let f = frame payload in
  write_all fd f 0 (String.length f)

let read_exact fd n =
  let b = Bytes.create n in
  let rec go pos =
    if pos >= n then Some (Bytes.to_string b)
    else
      match Unix.read fd b pos (n - pos) with
      | 0 -> None  (* EOF mid-frame *)
      | k -> go (pos + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
  in
  go 0

(** [None] on a clean EOF before any byte of the next frame. *)
let read_frame fd : string option =
  match read_exact fd 8 with
  | None -> None
  | Some hdr ->
      let n =
        try int_of_string ("0x" ^ hdr)
        with Failure _ -> raise (Bad_frame "malformed frame header")
      in
      if n < 0 || n > max_frame then raise (Bad_frame "frame length out of range");
      if n = 0 then Some ""
      else (
        match read_exact fd n with
        | None -> raise (Bad_frame "EOF inside frame")
        | Some s -> Some s)

(* ------------------------------------------------------------------ *)
(* JSON helpers                                                        *)
(* ------------------------------------------------------------------ *)

exception Bad_request of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad_request m)) fmt

let field name j =
  match Json.member name j with
  | Some v -> v
  | None -> fail "missing field %S" name

let opt_field name j =
  match Json.member name j with Some Json.Null | None -> None | v -> v

let as_str what = function Json.Str s -> s | _ -> fail "%s: expected string" what
let as_int what = function Json.Int n -> n | _ -> fail "%s: expected int" what
let as_bool what = function Json.Bool b -> b | _ -> fail "%s: expected bool" what

let as_list what j =
  match Json.to_list j with Some l -> l | None -> fail "%s: expected list" what

(* ------------------------------------------------------------------ *)
(* Setup codec                                                         *)
(* ------------------------------------------------------------------ *)

let mode_name = function
  | Config.Full -> "full"
  | Config.Geninvariants -> "metadata"
  | Config.Noop -> "noop"

let config_to_json (c : Config.t) =
  Json.Obj
    [
      ("approach", Json.Str c.Config.approach);
      ("domopt", Json.Bool c.Config.opt_dominance);
      ("hoistopt", Json.Bool c.Config.opt_hoist);
      ("staticopt", Json.Bool c.Config.opt_static);
      ("mode", Json.Str (mode_name c.Config.mode));
    ]

(* The decoded config is the registered basis with the knobs the matrix
   varies (the elimination passes, mode) re-applied — exactly how the
   experiment and oracle setups are built, so a round trip reproduces
   them field for field.  The hoist/static fields are optional so
   pre-checkelim clients keep working. *)
let config_of_json j =
  let base =
    match Config.find_approach (as_str "approach" (field "approach" j)) with
    | Some c -> c
    | None -> fail "unknown approach"
  in
  let opt_flag name =
    match Json.member name j with
    | Some v -> as_bool name v
    | None -> false
  in
  let base =
    if as_bool "domopt" (field "domopt" j) then Config.optimized base else base
  in
  let base =
    {
      base with
      Config.opt_hoist = opt_flag "hoistopt";
      opt_static = opt_flag "staticopt";
    }
  in
  match as_str "mode" (field "mode" j) with
  | "full" -> base
  | "metadata" -> Config.metadata_only base
  | "noop" -> { base with Config.mode = Config.Noop }
  | m -> fail "unknown mode %S" m

let level_name = function
  | Pipeline.O0 -> "O0"
  | Pipeline.O1 -> "O1"
  | Pipeline.O3 -> "O3"

let level_of_name = function
  | "O0" -> Pipeline.O0
  | "O1" -> Pipeline.O1
  | "O3" -> Pipeline.O3
  | l -> fail "unknown level %S" l

let ep_of_name name =
  match
    List.find_opt
      (fun ep -> Pipeline.ep_name ep = name)
      Pipeline.all_extension_points
  with
  | Some ep -> ep
  | None -> fail "unknown extension point %S" name

let setup_to_json (s : Harness.setup) =
  Json.Obj
    [
      ( "config",
        match s.Harness.config with
        | None -> Json.Null
        | Some c -> config_to_json c );
      ("level", Json.Str (level_name s.Harness.level));
      ("ep", Json.Str (Pipeline.ep_name s.Harness.ep));
      ("i64ptr", Json.Bool s.Harness.lowering.Mi_minic.Lower.ptr_mem_as_i64);
      ("seed", Json.Int s.Harness.seed);
      ( "dispatch",
        Json.Str
          (match s.Harness.dispatch with
          | Harness.Fast -> "fast"
          | Harness.Generic -> "generic") );
    ]

let setup_of_json j : Harness.setup =
  {
    Harness.config =
      (match opt_field "config" j with
      | None -> None
      | Some c -> Some (config_of_json c));
    level = level_of_name (as_str "level" (field "level" j));
    ep = ep_of_name (as_str "ep" (field "ep" j));
    lowering =
      { Mi_minic.Lower.ptr_mem_as_i64 = as_bool "i64ptr" (field "i64ptr" j) };
    seed = as_int "seed" (field "seed" j);
    dispatch =
      (match as_str "dispatch" (field "dispatch" j) with
      | "fast" -> Harness.Fast
      | "generic" -> Harness.Generic
      | d -> fail "unknown dispatch %S" d);
  }

(* ------------------------------------------------------------------ *)
(* Bench codec                                                         *)
(* ------------------------------------------------------------------ *)

let source_to_json (s : Bench.source) =
  Json.Obj
    [
      ("name", Json.Str s.Bench.src_name);
      ("code", Json.Str s.Bench.code);
      ("instrument", Json.Bool s.Bench.instrument);
      ( "i64ptr",
        match s.Bench.mode_override with
        | None -> Json.Null
        | Some m -> Json.Bool m.Mi_minic.Lower.ptr_mem_as_i64 );
    ]

let source_of_json j : Bench.source =
  {
    Bench.src_name = as_str "source name" (field "name" j);
    code = as_str "source code" (field "code" j);
    instrument = as_bool "instrument" (field "instrument" j);
    mode_override =
      (match opt_field "i64ptr" j with
      | None -> None
      | Some b ->
          Some { Mi_minic.Lower.ptr_mem_as_i64 = as_bool "i64ptr" b });
  }

let bench_to_json (b : Bench.t) =
  Json.Obj
    [
      ("name", Json.Str b.Bench.name);
      ("descr", Json.Str b.Bench.descr);
      ( "expect",
        match b.Bench.expect_output with
        | None -> Json.Null
        | Some s -> Json.Str s );
      ("size_zero", Json.Bool b.Bench.size_zero_arrays);
      ("sources", Json.List (List.map source_to_json b.Bench.sources));
    ]

let bench_of_json j : Bench.t =
  Bench.mk
    ~size_zero_arrays:(as_bool "size_zero" (field "size_zero" j))
    ?expect_output:
      (Option.map (as_str "expect") (opt_field "expect" j))
    ~suite:Bench.CPU2006
    ~descr:(as_str "descr" (field "descr" j))
    (as_str "bench name" (field "name" j))
    (List.map source_of_json (as_list "sources" (field "sources" j)))

(* ------------------------------------------------------------------ *)
(* Run results                                                         *)
(* ------------------------------------------------------------------ *)

let outcome_to_json : Mi_vm.Interp.outcome -> Json.t = function
  | Mi_vm.Interp.Exited n -> Json.Obj [ ("exited", Json.Int n) ]
  | Mi_vm.Interp.Safety_violation { checker; reason } ->
      Json.Obj
        [
          ( "violation",
            Json.Obj
              [ ("checker", Json.Str checker); ("reason", Json.Str reason) ]
          );
        ]
  | Mi_vm.Interp.Trapped msg -> Json.Obj [ ("trapped", Json.Str msg) ]
  | Mi_vm.Interp.Exhausted budget -> Json.Obj [ ("exhausted", Json.Int budget) ]

(** Canonical, deterministic rendering of a completed run: outcome,
    costs, program output and the (sorted) runtime counters.  This is
    the byte-identity surface between the daemon and the batch harness;
    profiles/coverage deliberately stay out (they are session-level
    aggregates, not per-request results). *)
let run_to_json (r : Harness.run) : Json.t =
  Json.Obj
    [
      ("outcome", outcome_to_json r.Harness.outcome);
      ("cycles", Json.Int r.Harness.cycles);
      ("steps", Json.Int r.Harness.steps);
      ("output", Json.Str r.Harness.output);
      ("program_instrs", Json.Int r.Harness.program_instrs);
      ( "counters",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Int v)) (Harness.counters_alist r))
      );
    ]

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type request =
  | Run of {
      id : int;
      tenant : string;
      setup : Harness.setup;
      bench : Bench.t;
      timeout_ms : int option;  (** per-request deadline override *)
    }
  | Ping of { id : int }
  | Stats of { id : int }
  | Shutdown of { id : int }

let request_to_json = function
  | Run { id; tenant; setup; bench; timeout_ms } ->
      Json.Obj
        [
          ("op", Json.Str "run");
          ("id", Json.Int id);
          ("tenant", Json.Str tenant);
          ("setup", setup_to_json setup);
          ("bench", bench_to_json bench);
          ( "timeout_ms",
            match timeout_ms with None -> Json.Null | Some m -> Json.Int m );
        ]
  | Ping { id } -> Json.Obj [ ("op", Json.Str "ping"); ("id", Json.Int id) ]
  | Stats { id } -> Json.Obj [ ("op", Json.Str "stats"); ("id", Json.Int id) ]
  | Shutdown { id } ->
      Json.Obj [ ("op", Json.Str "shutdown"); ("id", Json.Int id) ]

(** Parse one request frame.  [Error (id, reason)] is a malformed
    request ([id] 0 when even the id was unreadable) — the server turns
    it into an ["error"] reply rather than dropping the connection. *)
let request_of_string s : (request, int * string) result =
  match Json.of_string s with
  | exception Json.Parse_error msg -> Error (0, "bad JSON: " ^ msg)
  | j -> (
      let id =
        match Json.member "id" j with Some (Json.Int n) -> n | _ -> 0
      in
      try
        match as_str "op" (field "op" j) with
        | "run" ->
            if id = 0 then fail "missing request id";
            Ok
              (Run
                 {
                   id;
                   tenant = as_str "tenant" (field "tenant" j);
                   setup = setup_of_json (field "setup" j);
                   bench = bench_of_json (field "bench" j);
                   timeout_ms =
                     Option.map (as_int "timeout_ms")
                       (opt_field "timeout_ms" j);
                 })
        | "ping" -> Ok (Ping { id })
        | "stats" -> Ok (Stats { id })
        | "shutdown" -> Ok (Shutdown { id })
        | op -> fail "unknown op %S" op
      with Bad_request msg -> Error (id, msg))

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)
(* ------------------------------------------------------------------ *)

type reply =
  | R_ok of { id : int; result : Json.t }  (** [result]: {!run_to_json} *)
  | R_overloaded of { id : int; queue : int; capacity : int }
      (** admission control: the request was NOT accepted — resubmit *)
  | R_failed of { id : int; kind : string; reason : string; retries : int }
      (** the job was accepted and ran, but failed after [retries]
          retries; [kind] is the harness classification (["crash"],
          ["timeout"], ["injected"]) or ["error"] for compile/link
          failures *)
  | R_degraded of { id : int; approach : string; reason : string }
      (** the tenant's circuit breaker has this approach disabled *)
  | R_pong of { id : int }
  | R_stats of { id : int; stats : Json.t }
  | R_bye of { id : int }
  | R_error of { id : int; reason : string }  (** malformed request *)

let reply_to_json = function
  | R_ok { id; result } ->
      Json.Obj
        [ ("id", Json.Int id); ("status", Json.Str "ok"); ("result", result) ]
  | R_overloaded { id; queue; capacity } ->
      Json.Obj
        [
          ("id", Json.Int id);
          ("status", Json.Str "overloaded");
          ("queue", Json.Int queue);
          ("capacity", Json.Int capacity);
        ]
  | R_failed { id; kind; reason; retries } ->
      Json.Obj
        [
          ("id", Json.Int id);
          ("status", Json.Str "failed");
          ("kind", Json.Str kind);
          ("reason", Json.Str reason);
          ("retries", Json.Int retries);
        ]
  | R_degraded { id; approach; reason } ->
      Json.Obj
        [
          ("id", Json.Int id);
          ("status", Json.Str "degraded");
          ("approach", Json.Str approach);
          ("reason", Json.Str reason);
        ]
  | R_pong { id } ->
      Json.Obj [ ("id", Json.Int id); ("status", Json.Str "pong") ]
  | R_stats { id; stats } ->
      Json.Obj
        [
          ("id", Json.Int id); ("status", Json.Str "stats"); ("stats", stats);
        ]
  | R_bye { id } -> Json.Obj [ ("id", Json.Int id); ("status", Json.Str "bye") ]
  | R_error { id; reason } ->
      Json.Obj
        [
          ("id", Json.Int id);
          ("status", Json.Str "error");
          ("reason", Json.Str reason);
        ]

let reply_of_string s : reply =
  let j =
    try Json.of_string s
    with Json.Parse_error msg -> raise (Bad_frame ("bad reply JSON: " ^ msg))
  in
  let id = as_int "id" (field "id" j) in
  match as_str "status" (field "status" j) with
  | "ok" -> R_ok { id; result = field "result" j }
  | "overloaded" ->
      R_overloaded
        {
          id;
          queue = as_int "queue" (field "queue" j);
          capacity = as_int "capacity" (field "capacity" j);
        }
  | "failed" ->
      R_failed
        {
          id;
          kind = as_str "kind" (field "kind" j);
          reason = as_str "reason" (field "reason" j);
          retries = as_int "retries" (field "retries" j);
        }
  | "degraded" ->
      R_degraded
        {
          id;
          approach = as_str "approach" (field "approach" j);
          reason = as_str "reason" (field "reason" j);
        }
  | "pong" -> R_pong { id }
  | "stats" -> R_stats { id; stats = field "stats" j }
  | "bye" -> R_bye { id }
  | "error" -> R_error { id; reason = as_str "reason" (field "reason" j) }
  | st -> raise (Bad_frame ("unknown reply status " ^ st))

let reply_id = function
  | R_ok { id; _ }
  | R_overloaded { id; _ }
  | R_failed { id; _ }
  | R_degraded { id; _ }
  | R_pong { id }
  | R_stats { id; _ }
  | R_bye { id }
  | R_error { id; _ } ->
      id

let request_frame r = frame (Json.to_string (request_to_json r))
let reply_frame r = frame (Json.to_string (reply_to_json r))
