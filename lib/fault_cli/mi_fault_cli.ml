(** Shared fault-injection and fault-tolerance command line.

    Every driver (mic, memsafe, mi-experiments) accepts the same four
    options through this one {!term}:

    - [--inject SPEC] parses a {!Mi_faultkit.Fault.t} plan (see the
      spec grammar in {!Mi_faultkit.Fault.parse});
    - [--job-timeout SECONDS] arms a per-job wall-clock budget;
    - [--retries N] re-attempts failed jobs with exponential backoff;
    - [--retry-backoff-ms MS] caps one backoff sleep (default 250);
    - [--keep-going] degrades gracefully: failed jobs yield partial
      results plus a failure manifest instead of aborting.

    A malformed [--inject] spec is a cmdliner CLI error (exit 124). *)

open Cmdliner
module Fault = Mi_faultkit.Fault

type t = {
  faults : Fault.t;
  job_timeout : float option;
  retries : int;
  retry_backoff_ms : int;
  keep_going : bool;
}

let quiet =
  {
    faults = Fault.none;
    job_timeout = None;
    retries = 0;
    retry_backoff_ms = 250;
    keep_going = false;
  }

let fault_conv : Fault.t Arg.conv =
  let parse s =
    match Fault.parse s with
    | Ok p -> Ok p
    | Error msg -> Error (`Msg ("bad --inject spec: " ^ msg))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Fault.to_string p))

let inject_arg =
  Arg.(
    value
    & opt fault_conv Fault.none
    & info [ "inject" ] ~docv:"SPEC"
        ~doc:
          "inject deterministic faults: comma-separated clauses \
           $(b,seed=N), $(b,del-check=K[@FUNC]), \
           $(b,weaken-check=K[@FUNC]), $(b,wild-write=STEP:ADDR:VALUE), \
           $(b,fuel=N), $(b,trap-at=STEP), \
           $(b,corrupt-cache=truncate|bitflip|stale), $(b,crash=SUBSTR), \
           $(b,hang=SUBSTR:SECONDS)")

let job_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "job-timeout" ] ~docv:"SECONDS"
        ~doc:
          "per-job wall-clock budget; a job over budget fails with a \
           timeout instead of stalling the run")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "re-attempt a failed job up to N times with exponential \
           backoff before recording the failure (default 0)")

let retry_backoff_ms_arg =
  Arg.(
    value & opt int 250
    & info [ "retry-backoff-ms" ] ~docv:"MS"
        ~doc:
          "cap one retry backoff sleep at MS milliseconds (default \
           250); the backoff doubles from 10ms per retry and the \
           slept total lands in the harness.backoff_ms metric")

let keep_going_arg =
  Arg.(
    value & flag
    & info [ "keep-going" ]
        ~doc:
          "do not abort on a failed job: complete the matrix, report \
           partial results, print the failure manifest, exit nonzero")

let term : t Term.t =
  let mk faults job_timeout retries retry_backoff_ms keep_going =
    {
      faults;
      job_timeout;
      retries = max 0 retries;
      retry_backoff_ms = max 1 retry_backoff_ms;
      keep_going;
    }
  in
  Term.(
    const mk $ inject_arg $ job_timeout_arg $ retries_arg
    $ retry_backoff_ms_arg $ keep_going_arg)
