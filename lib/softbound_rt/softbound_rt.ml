(** SoftBound runtime (Nagarakatte et al., PLDI'09, with the data
    structures of the later CETS/SNAPL work the paper selected).

    Pointer bounds are kept in a *disjoint metadata space*:

    - a two-level trie maps the address where a pointer value is stored in
      memory to that pointer's (base, bound) pair (§3.2);
    - a shadow stack propagates bounds for pointer-typed function
      arguments and returns across calls;
    - wrappers for C-library functions that move pointers in memory keep
      the trie in sync (Fig. 6) — without them, the stale-metadata
      problems of §4.3–4.5 appear, which this reproduction also models.

    Reading metadata for an address that never had any yields null bounds
    (0, 0), so dereferencing such a pointer reports a violation — the
    "outdated or unavailable bounds" behaviour the paper analyzes. *)

open Mi_vm
module Intr = Mi_mir.Intrinsics

(* Secondary trie tables cover [1 lsl sec_bits] bytes of address space,
   with one (base, bound) pair per 8-byte-aligned slot. *)
let sec_bits = 16
let slots_per_sec = 1 lsl (sec_bits - 3)

type t = {
  st : State.t;
  trie : (int, int array) Hashtbl.t;  (** primary: addr >> 16 -> secondary *)
  mutable ss : int array;  (** shadow stack: pairs of (base, bound) slots *)
  mutable ss_top : int;  (** next free pair index *)
  mutable ss_fp : int;  (** current frame start (pair index) *)
  mutable ss_saved : int list;  (** saved frame pointers *)
}

(* --- trie ------------------------------------------------------------ *)

let sec_for t addr =
  let key = addr lsr sec_bits in
  match Hashtbl.find_opt t.trie key with
  | Some s -> s
  | None ->
      let s = Array.make (slots_per_sec * 2) 0 in
      Hashtbl.add t.trie key s;
      s

let slot_index addr = (addr land ((1 lsl sec_bits) - 1)) lsr 3

let trie_store t addr ~base ~bound =
  State.charge t.st t.st.State.cost.Cost.sb_trie_store;
  State.bump t.st "sb.trie_store";
  let s = sec_for t addr in
  let i = slot_index addr in
  s.((i * 2)) <- base;
  s.((i * 2) + 1) <- bound

let trie_load t addr =
  State.charge t.st t.st.State.cost.Cost.sb_trie_load;
  State.bump t.st "sb.trie_load";
  match Hashtbl.find_opt t.trie (addr lsr sec_bits) with
  | None -> (0, 0)
  | Some s ->
      let i = slot_index addr in
      (s.(i * 2), s.((i * 2) + 1))

(** Copy metadata for every pointer-sized slot in [dst, dst+len) from the
    corresponding slot of [src] — the [copy_metadata] of Fig. 6. *)
let meta_copy t ~dst ~src len =
  State.bump t.st "sb.meta_copy";
  let n = len / 8 in
  for k = 0 to n - 1 do
    let sa = src + (k * 8) and da = dst + (k * 8) in
    State.charge t.st
      (t.st.State.cost.Cost.sb_trie_load + t.st.State.cost.Cost.sb_trie_store);
    let b, e =
      match Hashtbl.find_opt t.trie (sa lsr sec_bits) with
      | None -> (0, 0)
      | Some s ->
          let i = slot_index sa in
          (s.(i * 2), s.((i * 2) + 1))
    in
    let s = sec_for t da in
    let i = slot_index da in
    s.(i * 2) <- b;
    s.((i * 2) + 1) <- e
  done

(* --- shadow stack ------------------------------------------------------ *)

let ss_ensure t n =
  if n > Array.length t.ss / 2 then begin
    let bigger = Array.make (Array.length t.ss * 2) 0 in
    Array.blit t.ss 0 bigger 0 (Array.length t.ss);
    t.ss <- bigger
  end

let ss_enter t nslots =
  State.charge t.st t.st.State.cost.Cost.ss_frame;
  State.bump t.st "sb.ss_frames";
  t.ss_saved <- t.ss_fp :: t.ss_saved;
  t.ss_fp <- t.ss_top;
  t.ss_top <- t.ss_top + nslots + 1;
  ss_ensure t t.ss_top

let ss_leave t =
  State.charge t.st t.st.State.cost.Cost.ss_frame;
  t.ss_top <- t.ss_fp;
  match t.ss_saved with
  | fp :: rest ->
      t.ss_fp <- fp;
      t.ss_saved <- rest
  | [] -> t.ss_fp <- 0

let ss_pair t slot = (t.ss_fp + slot) * 2

let ss_set_base t slot v =
  State.charge t.st t.st.State.cost.Cost.ss_op;
  ss_ensure t (t.ss_fp + slot + 1);
  t.ss.(ss_pair t slot) <- v

let ss_set_bound t slot v =
  State.charge t.st t.st.State.cost.Cost.ss_op;
  ss_ensure t (t.ss_fp + slot + 1);
  t.ss.(ss_pair t slot + 1) <- v

let ss_get_base t slot =
  State.charge t.st t.st.State.cost.Cost.ss_op;
  ss_ensure t (t.ss_fp + slot + 1);
  t.ss.(ss_pair t slot)

let ss_get_bound t slot =
  State.charge t.st t.st.State.cost.Cost.ss_op;
  ss_ensure t (t.ss_fp + slot + 1);
  t.ss.(ss_pair t slot + 1)

(* --- check (Figure 2 of the paper) ------------------------------------- *)

let check ?(site = -1) st ptr width ~base ~bound =
  State.charge st st.State.cost.Cost.sb_check;
  State.bump st "sb.checks";
  let wide = bound >= Layout.wide_bound in
  if wide then State.bump st "sb.checks_wide";
  State.site_hit st site ~wide ~cycles:st.State.cost.Cost.sb_check;
  if ptr < base || ptr + width > bound then
    raise
      (State.Safety_abort
         {
           checker = "softbound";
           reason =
             Printf.sprintf
               "out-of-bounds access: ptr=%#x width=%d bounds=[%#x,%#x)" ptr
               width base bound;
         })

(* --- wrappers (Fig. 6) -------------------------------------------------- *)

(* The wrappers call the original builtin and then fix up metadata.  Checks
   inside wrappers are disabled by default for runtime comparability
   (§5.1.2); [wrapper_checks] turns them on. *)

let install_wrappers ?(wrapper_checks = false) (t : t) =
  let st = t.st in
  let orig name = Option.get (State.find_builtin st name) in
  let wrap name fixup =
    let base_fn = orig name in
    State.register_builtin st (Intr.sb_wrapper name) (fun st args ->
        let r = base_fn st args in
        fixup st args r;
        r)
  in
  ignore wrapper_checks;
  (* strcpy/strncpy/strcat move bytes that cannot contain pointers in
     well-typed C, but the returned pointer's bounds must go to the shadow
     stack return slot, which the instrumented caller reads. *)
  let ret_arg0_bounds _st args _r =
    (* returned pointer aliases argument 0: its bounds are in slot 1 *)
    let b = ss_get_base t 1 and e = ss_get_bound t 1 in
    ss_set_base t 0 b;
    ss_set_bound t 0 e;
    ignore args
  in
  wrap "strcpy" ret_arg0_bounds;
  wrap "strncpy" ret_arg0_bounds;
  wrap "strcat" ret_arg0_bounds;
  wrap "strchr" (fun _st _args _r ->
      let b = ss_get_base t 1 and e = ss_get_bound t 1 in
      ss_set_base t 0 b;
      ss_set_bound t 0 e);
  (* realloc: fresh allocation; copy metadata from the old block *)
  State.register_builtin st (Intr.sb_wrapper "realloc") (fun st args ->
      let old = State.as_int args.(0) and n = State.as_int args.(1) in
      let old_sz =
        if old = 0 then 0
        else Option.value ~default:0 (Hashtbl.find_opt st.alloc_sizes old)
      in
      let r = (orig "realloc") st args in
      let a = State.as_int (Option.get r) in
      if old <> 0 && a <> old then meta_copy t ~dst:a ~src:old (min old_sz n);
      ss_set_base t 0 a;
      ss_set_bound t 0 (a + n);
      r)

(* --- installation ------------------------------------------------------- *)

let install ?(wrapper_checks = false) (st : State.t) : t =
  let t =
    {
      st;
      trie = Hashtbl.create 256;
      ss = Array.make 8192 0;
      ss_top = 0;
      ss_fp = 0;
      ss_saved = [];
    }
  in
  (* Each entry pairs the generic boxed builtin with its typed fast twin
     for the interpreter's fused superinstructions.  Both call the same
     underlying function, so cycle charges, counters, site attribution
     and aborts are identical — only the boxed calling convention
     disappears.  [Runtime.register] handles the ordering contract
     (generics first, then twins). *)
  Runtime.register st
    [
      Runtime.entry Intr.sb_check
        (fun st args ->
          (* the optional 5th argument is the instrumentation site id *)
          let site =
            if Array.length args > 4 then State.as_int args.(4) else -1
          in
          check ~site st
            (State.as_int args.(0))
            (State.as_int args.(1))
            ~base:(State.as_int args.(2))
            ~bound:(State.as_int args.(3));
          None)
        ~fast:
          (State.F5
             (fun st ptr width base bound site ->
               check ~site st ptr width ~base ~bound));
      Runtime.entry Intr.sb_trie_store
        (fun _ args ->
          trie_store t
            (State.as_int args.(0))
            ~base:(State.as_int args.(1))
            ~bound:(State.as_int args.(2));
          None)
        ~fast:(State.F3 (fun _ addr base bound -> trie_store t addr ~base ~bound));
      Runtime.entry Intr.sb_trie_load_base
        (fun _ args ->
          Some (State.I (fst (trie_load t (State.as_int args.(0))))))
        ~fast:(State.FR1 (fun _ addr -> fst (trie_load t addr)));
      Runtime.entry Intr.sb_trie_load_bound
        (fun _ args ->
          Some (State.I (snd (trie_load t (State.as_int args.(0))))))
        ~fast:(State.FR1 (fun _ addr -> snd (trie_load t addr)));
      Runtime.entry Intr.sb_meta_copy
        (fun _ args ->
          meta_copy t
            ~dst:(State.as_int args.(0))
            ~src:(State.as_int args.(1))
            (State.as_int args.(2));
          None)
        ~fast:(State.F3 (fun _ dst src len -> meta_copy t ~dst ~src len));
      Runtime.entry Intr.ss_enter
        (fun _ args ->
          ss_enter t (State.as_int args.(0));
          None)
        ~fast:(State.F1 (fun _ n -> ss_enter t n));
      Runtime.entry Intr.ss_leave
        (fun _ _ ->
          ss_leave t;
          None)
        ~fast:(State.F0 (fun _ -> ss_leave t));
      Runtime.entry Intr.ss_set_base
        (fun _ args ->
          ss_set_base t (State.as_int args.(0)) (State.as_int args.(1));
          None)
        ~fast:(State.F2 (fun _ slot v -> ss_set_base t slot v));
      Runtime.entry Intr.ss_set_bound
        (fun _ args ->
          ss_set_bound t (State.as_int args.(0)) (State.as_int args.(1));
          None)
        ~fast:(State.F2 (fun _ slot v -> ss_set_bound t slot v));
      Runtime.entry Intr.ss_get_base
        (fun _ args -> Some (State.I (ss_get_base t (State.as_int args.(0)))))
        ~fast:(State.FR1 (fun _ slot -> ss_get_base t slot));
      Runtime.entry Intr.ss_get_bound
        (fun _ args -> Some (State.I (ss_get_bound t (State.as_int args.(0)))))
        ~fast:(State.FR1 (fun _ slot -> ss_get_bound t slot));
    ];
  install_wrappers ~wrapper_checks t;
  t
