(** SoftBound runtime (Nagarakatte et al., PLDI'09, with the trie and
    shadow stack of the later CETS/SNAPL work).

    Pointer bounds live in a disjoint metadata space: a two-level trie
    maps the in-memory location of a pointer to its (base, bound) pair,
    and a shadow stack carries bounds for pointer arguments and returns
    across calls.  Locations without metadata read as null bounds (0,0),
    so dereferencing such pointers reports — the "outdated or unavailable
    bounds" behaviour of §4.3–4.5. *)

open Mi_vm

type t
(** Runtime state: the trie's primary table and the shadow stack. *)

(** {1 Trie (in-memory pointer metadata)} *)

val trie_store : t -> int -> base:int -> bound:int -> unit
(** Record bounds for the pointer stored at the given address. *)

val trie_load : t -> int -> int * int
(** Bounds for the pointer stored at the given address; (0, 0) if none
    were ever recorded. *)

val meta_copy : t -> dst:int -> src:int -> int -> unit
(** Copy metadata for every 8-byte slot of a moved memory range — the
    [copy_metadata] of the memcpy wrapper (Fig. 6). *)

(** {1 Shadow stack} *)

val ss_enter : t -> int -> unit
(** Open a frame with the given number of pointer-argument slots (slot 0
    is reserved for the return value). *)

val ss_leave : t -> unit
val ss_set_base : t -> int -> int -> unit
val ss_set_bound : t -> int -> int -> unit
val ss_get_base : t -> int -> int
val ss_get_bound : t -> int -> int

(** {1 Check (Figure 2)} *)

val check : ?site:int -> State.t -> int -> int -> base:int -> bound:int -> unit
(** [check st ptr width ~base ~bound] raises {!State.Safety_abort} when
    [ptr < base] or [ptr + width > bound]; counts a wide check when the
    bound is the wide sentinel.  [site] attributes the execution to an
    instrumentation site ({!Mi_obs.Site}). *)

(** {1 Installation} *)

val install : ?wrapper_checks:bool -> State.t -> t
(** Register the [__mi_sb_*]/[__mi_ss_*] builtins and the libc wrappers
    ([__sbw_strcpy], [__sbw_realloc], ...).  [wrapper_checks] enables the
    safety checks inside wrappers that the paper disables for runtime
    comparability (§5.1.2). *)

val install_wrappers : ?wrapper_checks:bool -> t -> unit
(** Exposed for testing; [install] calls it. *)
