(** Campaign driver: generate → run the oracle matrix → judge →
    shrink → report.

    One campaign runs a contiguous block of safe seeds (each through
    the full {!Oracle.variants} matrix) and a block of unsafe mutants
    (each through every registered checker), all as a single
    {!Mi_bench_kit.Harness.run_jobs} matrix — so the instrumentation
    cache, worker sharding and [-j]-independent determinism of the
    harness carry over to fuzzing wholesale.  The report (and its JSON
    rendering) is byte-identical for every [-j] setting.

    On a failure — an oracle {!Oracle.finding} on a safe seed, or a
    missed violation on a mutant — the driver reduces the case with
    {!Shrink.minimize} under a kind-specific predicate and emits the
    minimized translation units plus an [INFO.txt] (seed, finding,
    fault plan, reproduction command) into the repro directory. *)

module Harness = Mi_bench_kit.Harness
module Bench = Mi_bench_kit.Bench
module Json = Mi_obs.Json
module Fault = Mi_faultkit.Fault

type campaign = {
  c_seed_lo : int;
  c_seed_hi : int;  (** inclusive; safe seeds *)
  c_mutant_lo : int;
  c_mutant_hi : int;  (** inclusive; one mutant per seed; empty if [hi < lo] *)
  c_jobs : int;
  c_faults : Fault.t;  (** injected faults (chaos / shrinker testing) *)
  c_repro_dir : string option;  (** where minimized failures land *)
  c_max_shrinks : int;  (** cap on shrink+emit work per campaign *)
}

let campaign ?(jobs = 1) ?(faults = Fault.none) ?repro_dir
    ?(max_shrinks = 5) ?mutants ~seeds:(lo, hi) () =
  let mlo, mhi = match mutants with Some (a, b) -> (a, b) | None -> (0, -1) in
  {
    c_seed_lo = lo;
    c_seed_hi = hi;
    c_mutant_lo = mlo;
    c_mutant_hi = mhi;
    c_jobs = jobs;
    c_faults = faults;
    c_repro_dir = repro_dir;
    c_max_shrinks = max_shrinks;
  }

type repro = {
  rp_slug : string;  (** subdirectory name under the repro dir *)
  rp_finding : string;  (** rendered finding the repro reproduces *)
  rp_lines : int;  (** non-blank line count of the minimized main unit *)
  rp_shrunk : bool;  (** [false]: emitted unshrunk (predicate didn't hold) *)
}

(** Corpus bookkeeping of a coverage-guided campaign ({!soak_run} /
    {!replay}); [None] on plain block campaigns. *)
type corpus_stats = {
  cs_entries : int;  (** corpus entries after the campaign *)
  cs_seeded : int;  (** generator-fresh entries *)
  cs_spliced : int;  (** splice offspring *)
  cs_grown : int;  (** grow offspring *)
  cs_rounds : int;  (** evolution rounds completed over the corpus *)
  cs_execs : int;  (** programs run through the whole matrix, lifetime *)
}

type report = {
  r_seed_lo : int;
  r_seed_hi : int;
  r_mutant_lo : int;
  r_mutant_hi : int;
  r_inject : string;  (** canonical fault-plan spec, [""] when none *)
  r_safe_total : int;
  r_findings : Oracle.finding list;  (** safe-seed oracle violations *)
  r_mutants : Oracle.mutant_result list;
  r_coverage : string list;  (** union of grammar productions exercised *)
  r_vm_blocks : int * int;  (** corpus VM coverage: blocks (hit, total) *)
  r_vm_edges : int * int;  (** corpus VM coverage: edges (hit, total) *)
  r_cells : int;
      (** distinct coverage cells ({!Mi_obs.Coverage.cell_keys})
          discovered — the currency the guided mode is benchmarked in *)
  r_boost : int list;
      (** generator features boosted in the second wave because their
          first-wave seeds discovered the most new coverage cells *)
  r_corpus : corpus_stats option;
  r_repros : repro list;
}

let seq lo hi = List.init (max 0 (hi - lo + 1)) (fun i -> lo + i)

let coverage progs =
  List.sort_uniq String.compare
    (List.concat_map (fun p -> p.Gen.p_productions) progs)

(* ------------------------------------------------------------------ *)
(* Shrink predicates                                                   *)
(* ------------------------------------------------------------------ *)

let run_one h setup srcs =
  Harness.run h setup (Oracle.bench_of_sources ~name:"shrink" srcs)

let outcome_of = function
  | Ok r -> Some r.Harness.outcome
  | Error _ -> None

(* does [srcs] still exhibit the safe-oracle finding [f]? *)
let safe_pred h (f : Oracle.finding) : Bench.source list -> bool =
 fun srcs ->
  try
    match f.Oracle.f_kind with
    | "ref-failed" -> (
        match outcome_of (run_one h Oracle.reference srcs) with
        | Some (Mi_vm.Interp.Exited 0) -> false
        | Some _ -> true
        | None -> false)
    | "compile-error" -> (
        (* conservative: the same compile error, not just any *)
        match run_one h (Oracle.variant_setup f.Oracle.f_setup) srcs with
        | Error e -> e.Harness.reason = f.Oracle.f_detail
        | Ok _ -> false)
    | "check-count-mismatch" -> (
        match
          ( run_one h (Oracle.variant_setup "O3+sb") srcs,
            run_one h (Oracle.variant_setup "O3+lf") srcs )
        with
        | Ok rsb, Ok rlf ->
            rsb.Harness.outcome = Mi_vm.Interp.Exited 0
            && rlf.Harness.outcome = Mi_vm.Interp.Exited 0
            && Harness.counter rsb "sb.checks"
               <> Harness.counter rlf "lf.checks"
        | _ -> false)
    | "dispatch-divergence" -> (
        let n = String.length f.Oracle.f_setup - String.length "/generic" in
        let base_tag = String.sub f.Oracle.f_setup 0 n in
        let base = Oracle.variant_setup base_tag in
        match
          ( run_one h base srcs,
            run_one h { base with Harness.dispatch = Harness.Generic } srcs )
        with
        | Ok fast, Ok gen ->
            fast.Harness.output <> gen.Harness.output
            || fast.Harness.cycles <> gen.Harness.cycles
            || Harness.counters_alist fast <> Harness.counters_alist gen
        | _ -> false)
    | kind -> (
        (* divergence of one variant against the O0 reference *)
        match run_one h Oracle.reference srcs with
        | Ok ref_run when ref_run.Harness.outcome = Mi_vm.Interp.Exited 0 -> (
            match run_one h (Oracle.variant_setup f.Oracle.f_setup) srcs with
            | Error _ -> false
            | Ok r -> (
                match (kind, r.Harness.outcome) with
                | "output-divergence", Mi_vm.Interp.Exited 0 ->
                    r.Harness.output <> ref_run.Harness.output
                | "spurious-report", Mi_vm.Interp.Safety_violation _ -> true
                | "trap", Mi_vm.Interp.Trapped _ -> true
                | "fuel", Mi_vm.Interp.Exhausted _ -> true
                | "exit-code", Mi_vm.Interp.Exited n -> n <> 0
                | _ -> false))
        | _ -> false)
  with _ -> false

(* does [srcs] still exhibit the missed violation [f] of mutant [mr]?
   Two legs: the offender still runs to completion, and a witness still
   proves the injected hazard is live (another checker variant that
   reported the original still reporting, or — when the miss is caused
   by an injected fault plan — a clean, fault-free run of the offender
   itself). *)
let mutant_pred h ~faults (mr : Oracle.mutant_result)
    (f : Oracle.finding) : Bench.source list -> bool =
  let tag = f.Oracle.f_setup in
  let witnesses =
    List.filter_map
      (fun (t, d) ->
        if t <> tag && d = Oracle.Killed then Some t else None)
      mr.Oracle.mr_detections
  in
  fun srcs ->
    try
      let missed =
        match outcome_of (run_one h (Oracle.variant_setup tag) srcs) with
        | Some (Mi_vm.Interp.Exited _) | Some (Mi_vm.Interp.Trapped _) -> true
        | _ -> false
      in
      missed
      &&
      if witnesses <> [] then
        List.exists
          (fun t ->
            match outcome_of (run_one h (Oracle.variant_setup t) srcs) with
            | Some (Mi_vm.Interp.Safety_violation _) -> true
            | _ -> false)
          witnesses
      else if not (Fault.is_none faults) then
        (* fault-free compile of the same setup must still report *)
        match
          (Harness.run_sources (Oracle.variant_setup tag) srcs).Harness.outcome
        with
        | Mi_vm.Interp.Safety_violation _ -> true
        | _ -> false
      else false
    with _ -> false

(* ------------------------------------------------------------------ *)
(* Repro emission                                                      *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let emit_repro ~dir ~slug ~info (sources : Bench.source list) =
  let d = Filename.concat dir slug in
  mkdir_p d;
  write_file (Filename.concat d "INFO.txt") info;
  List.iter
    (fun (s : Bench.source) ->
      write_file (Filename.concat d (s.Bench.src_name ^ ".c")) s.Bench.code)
    sources

let main_lines (sources : Bench.source list) =
  match List.find_opt (fun (s : Bench.source) -> s.Bench.src_name = "main") sources with
  | Some s -> Shrink.line_count s.Bench.code
  | None -> 0

let shrink_and_emit ~dir ~slug ~repro_cmd (f : Oracle.finding) ~pred sources =
  let shrunk = Shrink.minimize ~pred sources in
  let did_shrink = pred shrunk in
  let emitted = if did_shrink then shrunk else sources in
  let info =
    Printf.sprintf
      "finding: %s\nreproduce: %s\nshrunk: %b\n\nThe failure predicate held \
       on the minimized sources in this directory;\nre-run the command \
       above (or feed the .c files to mic) to reproduce.\n"
      (Oracle.finding_to_string f) repro_cmd did_shrink
  in
  emit_repro ~dir ~slug ~info emitted;
  {
    rp_slug = slug;
    rp_finding = Oracle.finding_to_string f;
    rp_lines = main_lines emitted;
    rp_shrunk = did_shrink;
  }

(* ------------------------------------------------------------------ *)
(* The campaign                                                        *)
(* ------------------------------------------------------------------ *)

let rec split_at n l =
  if n = 0 then ([], l)
  else
    match l with
    | [] -> ([], [])
    | x :: rest ->
        let a, b = split_at (n - 1) rest in
        (x :: a, b)

let inject_arg faults =
  if Fault.is_none faults then ""
  else Printf.sprintf " --inject '%s'" (Fault.to_string faults)

(* ------------------------------------------------------------------ *)
(* Coverage feedback                                                   *)
(* ------------------------------------------------------------------ *)

(* count the coverage cells (hit blocks + hit edges) of [snaps] not yet
   in [seen], adding them — the "how much new ground did this seed
   break" signal the scheduler feeds on.  Cell keys are the stable
   {!Mi_obs.Coverage.cell_keys}, the same currency the corpus persists. *)
let count_new_cells seen (snaps : Mi_obs.Coverage.snapshot list) =
  let fresh = ref 0 in
  List.iter
    (fun s ->
      List.iter
        (fun key ->
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            incr fresh
          end)
        (Mi_obs.Coverage.cell_keys s))
    snaps;
  !fresh

(* features forced on in the second wave *)
let n_boost = 3

(* rank features by accrued fresh-cell score and keep the productive
   top {!n_boost} — shared by the two-wave campaign and the soak loop *)
let boost_of_scores scores =
  let ranked =
    List.sort
      (fun (ka, sa) (kb, sb) ->
        if sb <> sa then compare sb sa else compare ka kb)
      (Array.to_list (Array.mapi (fun k s -> (k, s)) scores))
  in
  let top, _ = split_at n_boost ranked in
  List.sort compare
    (List.filter_map (fun (k, s) -> if s > 0 then Some k else None) top)

(** Run one campaign.  Deterministic for fixed campaign parameters:
    results, report and repro contents are independent of [c_jobs].

    Safe seeds run in two waves.  The first half of the seed range runs
    plain; each seed's uninstrumented [-O0] reference run reports the
    VM blocks and edges it reached, and every seed is scored by how
    many cells it was first to hit.  Those scores rank the generator's
    features (a seed's score accrues to every feature it used), and the
    second half of the range is generated with the top {!n_boost}
    productive features forced on — coverage feedback closing the loop
    from observed execution back into generation.  Boosting never
    changes a seed's rng stream, only flag outcomes, so wave-2 programs
    stay deterministic for (seed, boost). *)
let run (c : campaign) : report =
  let h =
    Harness.create ~jobs:c.c_jobs
      ~obs:(Mi_obs.Obs.create ~coverage:true ())
      ?faults:(if Fault.is_none c.c_faults then None else Some c.c_faults)
      ()
  in
  let corpus = Mi_obs.Coverage.create () in
  let seen = Hashtbl.create 1024 in
  let scores = Array.make Gen.n_features 0 in
  (* run one block of safe programs, judge them, and account the VM
     coverage their reference runs discovered *)
  let run_safe_wave progs =
    let jobs = List.map Oracle.safe_jobs progs in
    let results = Harness.run_jobs h (List.concat jobs) in
    let rest = ref results in
    let slice js =
      let a, b = split_at (List.length js) !rest in
      rest := b;
      a
    in
    let findings =
      List.concat
        (List.map2
           (fun (p : Gen.prog) js ->
             let rs = slice js in
             (* the reference run is the first job of the slice; its
                coverage is dispatch- and instrumentation-independent *)
             (match rs with
             | Ok ref_run :: _ ->
                 let snaps = ref_run.Harness.coverage in
                 Mi_obs.Coverage.merge corpus
                   (Mi_obs.Coverage.of_snapshots snaps);
                 let fresh = count_new_cells seen snaps in
                 List.iter
                   (fun k -> scores.(k) <- scores.(k) + fresh)
                   p.Gen.p_features
             | _ -> ());
             Oracle.judge_safe p rs)
           progs jobs)
    in
    assert (!rest = []);
    findings
  in
  let all_seeds = seq c.c_seed_lo c.c_seed_hi in
  let w1, w2 = split_at ((List.length all_seeds + 1) / 2) all_seeds in
  let safe1 = List.map (fun s -> Gen.generate ~seed:s ()) w1 in
  let findings1 = run_safe_wave safe1 in
  let boost = if w2 = [] then [] else boost_of_scores scores in
  let safe2 = List.map (fun s -> Gen.generate ~boost ~seed:s ()) w2 in
  let findings2 = if safe2 = [] then [] else run_safe_wave safe2 in
  let safe = safe1 @ safe2 in
  let safe_findings = findings1 @ findings2 in
  let mutants =
    List.map
      (fun s ->
        let p = Gen.generate ~seed:s () in
        (* odd mutant seeds draw a temporal mutant when the program
           freed something; everything else keeps the spatial probe *)
        match
          if s land 1 = 1 then Gen.mutate_temporal p ~mseed:s else None
        with
        | Some m -> m
        | None -> Gen.mutate p ~mseed:0)
      (seq c.c_mutant_lo c.c_mutant_hi)
  in
  let mutant_jobs = List.map Oracle.mutant_jobs mutants in
  let mresults = Harness.run_jobs h (List.concat mutant_jobs) in
  let rest = ref mresults in
  let slice jobs =
    let a, b = split_at (List.length jobs) !rest in
    rest := b;
    a
  in
  let mutant_results =
    List.map2
      (fun m jobs -> Oracle.judge_mutant m (slice jobs))
      mutants mutant_jobs
  in
  assert (!rest = []);
  let vm = Mi_obs.Coverage.totals corpus in
  (* shrink and emit failing cases, capped, in deterministic order *)
  let repros =
    match c.c_repro_dir with
    | None -> []
    | Some dir ->
        let budget = ref c.c_max_shrinks in
        let take () =
          if !budget > 0 then begin
            decr budget;
            true
          end
          else false
        in
        let from_safe =
          (* one repro per failing seed: its first finding *)
          List.filter_map
            (fun (p : Gen.prog) ->
              match
                List.filter (fun f -> f.Oracle.f_seed = p.Gen.p_seed) safe_findings
              with
              | f :: _ when take () ->
                  let slug =
                    Printf.sprintf "seed%d-%s" p.Gen.p_seed f.Oracle.f_kind
                  in
                  let repro_cmd =
                    Printf.sprintf "mifuzz --seeds %d..%d%s" p.Gen.p_seed
                      p.Gen.p_seed (inject_arg c.c_faults)
                  in
                  Some
                    (shrink_and_emit ~dir ~slug ~repro_cmd f
                       ~pred:(safe_pred h f) p.Gen.p_sources)
              | _ -> None)
            safe
        in
        let from_mutants =
          List.filter_map
            (fun ((m : Gen.mutant), (mr : Oracle.mutant_result)) ->
              match mr.Oracle.mr_findings with
              | f :: _ when take () ->
                  let slug =
                    Printf.sprintf "seed%d-mut-%s" mr.Oracle.mr_seed
                      f.Oracle.f_setup
                  in
                  let repro_cmd =
                    Printf.sprintf "mifuzz --seeds %d..%d --mutants %d..%d%s"
                      mr.Oracle.mr_seed mr.Oracle.mr_seed mr.Oracle.mr_seed
                      mr.Oracle.mr_seed (inject_arg c.c_faults)
                  in
                  Some
                    (shrink_and_emit ~dir ~slug ~repro_cmd f
                       ~pred:(mutant_pred h ~faults:c.c_faults mr f)
                       m.Gen.m_sources)
              | _ -> None)
            (List.combine mutants mutant_results)
        in
        from_safe @ from_mutants
  in
  {
    r_seed_lo = c.c_seed_lo;
    r_seed_hi = c.c_seed_hi;
    r_mutant_lo = c.c_mutant_lo;
    r_mutant_hi = c.c_mutant_hi;
    r_inject = Fault.to_string c.c_faults;
    r_safe_total = List.length safe;
    r_findings = safe_findings;
    r_mutants = mutant_results;
    r_coverage = coverage safe;
    r_vm_blocks = (vm.Mi_obs.Coverage.tt_blocks_hit, vm.Mi_obs.Coverage.tt_blocks);
    r_vm_edges = (vm.Mi_obs.Coverage.tt_edges_hit, vm.Mi_obs.Coverage.tt_edges);
    r_cells = Hashtbl.length seen;
    r_boost = boost;
    r_corpus = None;
    r_repros = repros;
  }

(* ------------------------------------------------------------------ *)
(* Coverage-guided evolutionary soak                                   *)
(* ------------------------------------------------------------------ *)

type soak_config = {
  sk_corpus_dir : string;
  sk_jobs : int;
  sk_minutes : float option;  (** soak deadline ({!Mi_support.Mclock}) *)
  sk_max_execs : int option;  (** hard cap on lifetime matrix executions *)
  sk_seed_start : int;  (** first base generator seed of a fresh corpus *)
  sk_batch : int;  (** target programs (offspring + fresh) per round *)
  sk_mutants_per_round : int;
  sk_faults : Fault.t;
  sk_repro_dir : string option;
  sk_max_shrinks : int;
}

let soak_config ?(jobs = 1) ?(faults = Fault.none) ?repro_dir ?(max_shrinks = 5)
    ?minutes ?max_execs ?(seed_start = 1) ?(batch = 8) ?(mutants_per_round = 2)
    ~corpus_dir () =
  {
    sk_corpus_dir = corpus_dir;
    sk_jobs = jobs;
    sk_minutes = minutes;
    sk_max_execs = max_execs;
    sk_seed_start = seed_start;
    sk_batch = batch;
    sk_mutants_per_round = mutants_per_round;
    sk_faults = faults;
    sk_repro_dir = repro_dir;
    sk_max_shrinks = max_shrinks;
  }

(* a candidate program headed for the whole safe matrix *)
type cand = {
  cd_id : string;  (** {!Corpus.id_of_sources} *)
  cd_origin : Corpus.origin;
  cd_seed : int;  (** root generator seed of the lineage *)
  cd_features : int list;
  cd_productions : string list;
  cd_sources : Bench.source list;
}

let bench_name_of_id id = "ev-" ^ String.sub id 0 12
let short_id id = String.sub id 0 12

(* offspring larger than this (main-unit non-blank lines) are dropped
   before execution — bounds compounding growth across generations *)
let main_line_cap = 300

let origin_counts (entries : Corpus.entry list) =
  List.fold_left
    (fun (s, sp, g) (e : Corpus.entry) ->
      match e.Corpus.en_origin with
      | Corpus.Seeded _ -> (s + 1, sp, g)
      | Corpus.Spliced _ -> (s, sp + 1, g)
      | Corpus.Grown _ -> (s, sp, g + 1))
    (0, 0, 0) entries

(** Run one coverage-guided soak over the persistent corpus at
    [cfg.sk_corpus_dir], creating it if needed.

    Each round: the {!Sched} scheduler picks the highest-energy corpus
    entries as parents; every parent breeds one {!Gen.grow} offspring
    and one {!Gen.splice} offspring (donor: the next-ranked parent,
    wrapping — a lone entry splices with itself, which grafts a renamed
    copy of its own helper); the batch is topped up with fresh
    generator seeds boosted by the accrued per-feature scores.  Every
    candidate runs through the whole safe oracle matrix; candidates
    that are clean {e and} discover new coverage cells or grammar
    productions are admitted to the corpus (one content-addressed file
    each).  A few mutants derived from the round's fresh seed numbers
    (generated boost-free, so a block-mode [mifuzz] command reproduces
    them exactly) keep the detection oracle honest throughout the soak.

    All in-memory state — seen cells, per-feature scores, scheduler
    energies — is a pure function of the corpus entries in insertion
    order, and a small [state.json] checkpoint persists the seed / op /
    exec counters after every round, so a killed soak resumes where it
    left off: at most one round re-executes, and re-bred entries dedupe
    by content id.  Deadlines use {!Mi_support.Mclock} exclusively; a
    fixed [max_execs] budget (no deadline) is fully deterministic and
    independent of [sk_jobs]. *)
let soak_run (cfg : soak_config) : report =
  let dir = cfg.sk_corpus_dir in
  let h =
    Harness.create ~jobs:cfg.sk_jobs
      ~obs:(Mi_obs.Obs.create ~coverage:true ())
      ?faults:(if Fault.is_none cfg.sk_faults then None else Some cfg.sk_faults)
      ()
  in
  (* --- resume: rebuild every bit of loop state from the corpus ------ *)
  let entries = ref (Corpus.load ~dir) in
  let sched = Sched.rebuild !entries in
  let seen = Hashtbl.create 1024 in
  let seen_prods = Hashtbl.create 64 in
  let scores = Array.make Gen.n_features 0 in
  let corpus_cov = Mi_obs.Coverage.create () in
  List.iter
    (fun (e : Corpus.entry) ->
      List.iter (fun c -> Hashtbl.replace seen c ()) e.Corpus.en_cells;
      List.iter (fun p -> Hashtbl.replace seen_prods p ()) e.Corpus.en_productions;
      match e.Corpus.en_origin with
      | Corpus.Seeded _ ->
          List.iter
            (fun k -> scores.(k) <- scores.(k) + e.Corpus.en_fresh)
            e.Corpus.en_features
      | _ -> ())
    !entries;
  let st = Corpus.load_state ~dir in
  let next_ord =
    ref (List.fold_left (fun m (e : Corpus.entry) -> max m (e.Corpus.en_ord + 1))
           0 !entries)
  in
  let next_seed = ref (max cfg.sk_seed_start st.Corpus.st_next_seed) in
  let next_op = ref (max 1 st.Corpus.st_next_op) in
  let round = ref st.Corpus.st_round in
  let execs = ref st.Corpus.st_execs in
  let tried = Hashtbl.create 256 in
  List.iter
    (fun (e : Corpus.entry) -> Hashtbl.replace tried e.Corpus.en_id ())
    !entries;
  let seed_lo = ref max_int and seed_hi = ref min_int in
  let mut_lo = ref max_int and mut_hi = ref min_int in
  let safe_total = ref 0 in
  let findings = ref [] (* reversed *) in
  let mutant_results = ref [] (* reversed *) in
  let repro_q = ref [] (* (slug, cmd, finding, pred, sources), reversed *) in
  let deadline =
    Option.map (fun m -> Mi_support.Mclock.deadline (m *. 60.)) cfg.sk_minutes
  in
  let stop () =
    (match cfg.sk_max_execs with Some cap -> !execs >= cap | None -> false)
    || match deadline with Some d -> Mi_support.Mclock.expired d | None -> false
  in
  let fresh_op () =
    let k = !next_op in
    incr next_op;
    k
  in
  (* run candidates through the whole safe matrix; judge; admit the
     clean ones that broke new ground *)
  let run_candidates (cands : cand list) =
    let jobs =
      List.map
        (fun cd ->
          Oracle.safe_jobs_of
            (Oracle.bench_of_sources ~name:(bench_name_of_id cd.cd_id)
               cd.cd_sources))
        cands
    in
    let results = Harness.run_jobs h (List.concat jobs) in
    let rest = ref results in
    let slice js =
      let a, b = split_at (List.length js) !rest in
      rest := b;
      a
    in
    List.iter2
      (fun cd js ->
        let rs = slice js in
        let fs = Oracle.judge_safe_results ~seed:cd.cd_seed rs in
        findings := List.rev_append fs !findings;
        (match fs with
        | f :: _ ->
            repro_q :=
              ( Printf.sprintf "soak-%s-%s" (short_id cd.cd_id) f.Oracle.f_kind,
                Printf.sprintf "feed the .c files to mic (soak candidate %s%s)"
                  (short_id cd.cd_id)
                  (inject_arg cfg.sk_faults),
                f,
                safe_pred h f,
                cd.cd_sources )
              :: !repro_q
        | [] -> ());
        if fs = [] then
          match rs with
          | Ok ref_run :: _ ->
              let snaps = ref_run.Harness.coverage in
              let cells = Mi_obs.Coverage.cells_of snaps in
              let fresh =
                List.fold_left
                  (fun n c ->
                    if Hashtbl.mem seen c then n
                    else begin
                      Hashtbl.replace seen c ();
                      n + 1
                    end)
                  0 cells
              in
              let new_prods =
                List.filter
                  (fun p -> not (Hashtbl.mem seen_prods p))
                  cd.cd_productions
              in
              List.iter (fun p -> Hashtbl.replace seen_prods p ()) new_prods;
              if fresh > 0 || new_prods <> [] then begin
                let e =
                  {
                    Corpus.en_id = cd.cd_id;
                    en_ord = !next_ord;
                    en_round = !round;
                    en_origin = cd.cd_origin;
                    en_seed = cd.cd_seed;
                    en_features = cd.cd_features;
                    en_productions = cd.cd_productions;
                    en_cells = cells;
                    en_fresh = fresh;
                    en_fingerprint = Mi_obs.Coverage.fingerprint snaps;
                    en_sources = cd.cd_sources;
                  }
                in
                incr next_ord;
                Corpus.save ~dir e;
                ignore (Sched.admit sched e);
                entries := !entries @ [ e ];
                Mi_obs.Coverage.merge corpus_cov
                  (Mi_obs.Coverage.of_snapshots snaps);
                match cd.cd_origin with
                | Corpus.Seeded _ ->
                    List.iter
                      (fun k -> scores.(k) <- scores.(k) + fresh)
                      cd.cd_features
                | _ -> ()
              end
          | _ -> ())
      cands jobs;
    assert (!rest = [])
  in
  (* assemble one round's candidate batch: offspring of the scheduled
     parents first, then fresh boosted seeds *)
  let round_candidates () =
    let cands = ref [] in
    let push c = cands := c :: !cands in
    let parents = if !entries = [] then [] else Sched.pick sched !entries ~n:4 in
    let np = List.length parents in
    List.iteri
      (fun i (p : Corpus.entry) ->
        let op = fresh_op () in
        (match Gen.grow ~sources:p.Corpus.en_sources ~mseed:op with
        | Some srcs ->
            push
              {
                cd_id = Corpus.id_of_sources srcs;
                cd_origin = Corpus.Grown { gr_parent = p.Corpus.en_id; gr_op = op };
                cd_seed = p.Corpus.en_seed;
                cd_features = p.Corpus.en_features;
                cd_productions = p.Corpus.en_productions;
                cd_sources = srcs;
              }
        | None -> ());
        let donor = List.nth parents ((i + 1) mod np) in
        let op = fresh_op () in
        match
          Gen.splice ~acceptor:p.Corpus.en_sources ~donor:donor.Corpus.en_sources
            ~mseed:op
        with
        | Some srcs ->
            (* perturb the spliced offspring's control-flow geometry too:
               re-splicing one parent always inserts the same driver-loop
               shape, so without a grow pass the second splice of a
               lineage re-counts the first one's main cells *)
            let srcs =
              match Gen.grow ~sources:srcs ~mseed:op with
              | Some g -> g
              | None -> srcs
            in
            push
              {
                cd_id = Corpus.id_of_sources srcs;
                cd_origin =
                  Corpus.Spliced
                    {
                      sp_parent = p.Corpus.en_id;
                      sp_donor = donor.Corpus.en_id;
                      sp_op = op;
                    };
                cd_seed = p.Corpus.en_seed;
                cd_features = p.Corpus.en_features;
                cd_productions =
                  List.sort_uniq String.compare
                    (p.Corpus.en_productions @ donor.Corpus.en_productions);
                cd_sources = srcs;
              }
        | None -> ())
      parents;
    let n_fresh = max 1 (cfg.sk_batch - List.length !cands) in
    let boost = boost_of_scores scores in
    let fresh_seeds = seq !next_seed (!next_seed + n_fresh - 1) in
    next_seed := !next_seed + n_fresh;
    List.iter
      (fun s ->
        seed_lo := min !seed_lo s;
        seed_hi := max !seed_hi s;
        let p = Gen.generate ~boost ~seed:s () in
        push
          {
            cd_id = Corpus.id_of_sources p.Gen.p_sources;
            cd_origin = Corpus.Seeded s;
            cd_seed = s;
            cd_features = p.Gen.p_features;
            cd_productions = p.Gen.p_productions;
            cd_sources = p.Gen.p_sources;
          })
      fresh_seeds;
    (List.rev !cands, fresh_seeds)
  in
  (* trim a round's work list to the remaining exec budget, so a fixed
     [max_execs] is an exact execution count, not a round-granular one *)
  let within_budget already l =
    match cfg.sk_max_execs with
    | Some cap -> fst (split_at (max 0 (cap - !execs - already)) l)
    | None -> l
  in
  let do_round () =
    let raw_cands, fresh_seeds = round_candidates () in
    let cands =
      List.filter
        (fun cd ->
          main_lines cd.cd_sources <= main_line_cap
          && (not (Hashtbl.mem tried cd.cd_id))
          &&
          (Hashtbl.replace tried cd.cd_id ();
           true))
        raw_cands
    in
    let cands = within_budget 0 cands in
    run_candidates cands;
    safe_total := !safe_total + List.length cands;
    (* mutants from the round's fresh seed numbers, generated boost-free
       so `mifuzz --seeds s..s --mutants s..s` reproduces them *)
    let mut_seeds =
      within_budget (List.length cands)
        (fst (split_at cfg.sk_mutants_per_round fresh_seeds))
    in
    let mutants =
      List.map
        (fun s ->
          mut_lo := min !mut_lo s;
          mut_hi := max !mut_hi s;
          let p = Gen.generate ~seed:s () in
          match
            if s land 1 = 1 then Gen.mutate_temporal p ~mseed:s else None
          with
          | Some m -> m
          | None -> Gen.mutate p ~mseed:0)
        mut_seeds
    in
    let mutant_jobs = List.map Oracle.mutant_jobs mutants in
    let mresults = Harness.run_jobs h (List.concat mutant_jobs) in
    let rest = ref mresults in
    let slice js =
      let a, b = split_at (List.length js) !rest in
      rest := b;
      a
    in
    List.iter2
      (fun (m : Gen.mutant) js ->
        let mr = Oracle.judge_mutant m (slice js) in
        mutant_results := mr :: !mutant_results;
        match mr.Oracle.mr_findings with
        | f :: _ ->
            repro_q :=
              ( Printf.sprintf "soak-seed%d-mut-%s" mr.Oracle.mr_seed
                  f.Oracle.f_setup,
                Printf.sprintf "mifuzz --seeds %d..%d --mutants %d..%d%s"
                  mr.Oracle.mr_seed mr.Oracle.mr_seed mr.Oracle.mr_seed
                  mr.Oracle.mr_seed
                  (inject_arg cfg.sk_faults),
                f,
                mutant_pred h ~faults:cfg.sk_faults mr f,
                m.Gen.m_sources )
              :: !repro_q
        | [] -> ())
      mutants mutant_jobs;
    assert (!rest = []);
    execs := !execs + List.length cands + List.length mutants;
    Corpus.save_state ~dir
      {
        Corpus.st_next_seed = !next_seed;
        st_round = !round + 1;
        st_execs = !execs;
        st_next_op = !next_op;
      };
    Sched.decay sched;
    incr round
  in
  let one_shot = cfg.sk_minutes = None && cfg.sk_max_execs = None in
  let rec loop () =
    if not (stop ()) then begin
      do_round ();
      if not one_shot then loop ()
    end
  in
  loop ();
  let repros =
    match cfg.sk_repro_dir with
    | None -> []
    | Some rdir ->
        let budget = ref cfg.sk_max_shrinks in
        List.filter_map
          (fun (slug, repro_cmd, f, pred, sources) ->
            if !budget > 0 then begin
              decr budget;
              Some (shrink_and_emit ~dir:rdir ~slug ~repro_cmd f ~pred sources)
            end
            else None)
          (List.rev !repro_q)
  in
  let vm = Mi_obs.Coverage.totals corpus_cov in
  let seeded, spliced, grown = origin_counts !entries in
  {
    r_seed_lo = (if !seed_lo = max_int then cfg.sk_seed_start else !seed_lo);
    r_seed_hi = (if !seed_hi = min_int then cfg.sk_seed_start - 1 else !seed_hi);
    r_mutant_lo = (if !mut_lo = max_int then 0 else !mut_lo);
    r_mutant_hi = (if !mut_hi = min_int then -1 else !mut_hi);
    r_inject = Fault.to_string cfg.sk_faults;
    r_safe_total = !safe_total;
    r_findings = List.rev !findings;
    r_mutants = List.rev !mutant_results;
    r_coverage =
      List.sort_uniq String.compare
        (Hashtbl.fold (fun p () acc -> p :: acc) seen_prods []);
    r_vm_blocks = (vm.Mi_obs.Coverage.tt_blocks_hit, vm.Mi_obs.Coverage.tt_blocks);
    r_vm_edges = (vm.Mi_obs.Coverage.tt_edges_hit, vm.Mi_obs.Coverage.tt_edges);
    r_cells = Hashtbl.length seen;
    r_boost = boost_of_scores scores;
    r_corpus =
      Some
        {
          cs_entries = List.length !entries;
          cs_seeded = seeded;
          cs_spliced = spliced;
          cs_grown = grown;
          cs_rounds = !round;
          cs_execs = !execs;
        };
    r_repros = repros;
  }

(** Deterministically re-execute the persisted corpus: every entry (or
    just those whose content id starts with [entry]) runs through the
    whole safe matrix again, is re-judged, and its recomputed reference
    coverage fingerprint is compared against the one recorded at
    admission — a mismatch is reported as a ["fingerprint-mismatch"]
    finding.  The report is byte-identical for every [jobs] setting. *)
let replay ?(jobs = 1) ?(faults = Fault.none) ?entry ~dir () : report =
  let all = Corpus.load ~dir in
  let entries =
    match entry with
    | None -> all
    | Some prefix ->
        let n = String.length prefix in
        List.filter
          (fun (e : Corpus.entry) ->
            String.length e.Corpus.en_id >= n
            && String.sub e.Corpus.en_id 0 n = prefix)
          all
  in
  let h =
    Harness.create ~jobs
      ~obs:(Mi_obs.Obs.create ~coverage:true ())
      ?faults:(if Fault.is_none faults then None else Some faults)
      ()
  in
  let jobs_per_entry =
    List.map
      (fun (e : Corpus.entry) ->
        Oracle.safe_jobs_of
          (Oracle.bench_of_sources
             ~name:(bench_name_of_id e.Corpus.en_id)
             e.Corpus.en_sources))
      entries
  in
  let results = Harness.run_jobs h (List.concat jobs_per_entry) in
  let rest = ref results in
  let slice js =
    let a, b = split_at (List.length js) !rest in
    rest := b;
    a
  in
  let seen = Hashtbl.create 1024 in
  let corpus_cov = Mi_obs.Coverage.create () in
  let findings =
    List.concat
      (List.map2
         (fun (e : Corpus.entry) js ->
           let rs = slice js in
           let fs = Oracle.judge_safe_results ~seed:e.Corpus.en_seed rs in
           let fp_fs =
             match rs with
             | Ok ref_run :: _ ->
                 let snaps = ref_run.Harness.coverage in
                 ignore (count_new_cells seen snaps);
                 Mi_obs.Coverage.merge corpus_cov
                   (Mi_obs.Coverage.of_snapshots snaps);
                 let fp = Mi_obs.Coverage.fingerprint snaps in
                 if fp = e.Corpus.en_fingerprint then []
                 else
                   [
                     {
                       Oracle.f_seed = e.Corpus.en_seed;
                       f_setup = "O0";
                       f_kind = "fingerprint-mismatch";
                       f_detail =
                         Printf.sprintf
                           "entry %s: recorded fingerprint %s, replayed %s"
                           (short_id e.Corpus.en_id)
                           e.Corpus.en_fingerprint fp;
                     };
                   ]
             | _ -> []
           in
           fs @ fp_fs)
         entries jobs_per_entry)
  in
  assert (!rest = []);
  let st = Corpus.load_state ~dir in
  let vm = Mi_obs.Coverage.totals corpus_cov in
  let seeded, spliced, grown = origin_counts entries in
  let seeds =
    List.filter_map
      (fun (e : Corpus.entry) ->
        match e.Corpus.en_origin with Corpus.Seeded s -> Some s | _ -> None)
      entries
  in
  {
    r_seed_lo = (match seeds with [] -> 0 | s :: r -> List.fold_left min s r);
    r_seed_hi = (match seeds with [] -> -1 | s :: r -> List.fold_left max s r);
    r_mutant_lo = 0;
    r_mutant_hi = -1;
    r_inject = Fault.to_string faults;
    r_safe_total = List.length entries;
    r_findings = findings;
    r_mutants = [];
    r_coverage =
      List.sort_uniq String.compare
        (List.concat_map
           (fun (e : Corpus.entry) -> e.Corpus.en_productions)
           entries);
    r_vm_blocks = (vm.Mi_obs.Coverage.tt_blocks_hit, vm.Mi_obs.Coverage.tt_blocks);
    r_vm_edges = (vm.Mi_obs.Coverage.tt_edges_hit, vm.Mi_obs.Coverage.tt_edges);
    r_cells = Hashtbl.length seen;
    r_boost = [];
    r_corpus =
      Some
        {
          cs_entries = List.length entries;
          cs_seeded = seeded;
          cs_spliced = spliced;
          cs_grown = grown;
          cs_rounds = st.Corpus.st_round;
          cs_execs = st.Corpus.st_execs;
        };
    r_repros = [];
  }

(* ------------------------------------------------------------------ *)
(* Aggregation and rendering                                           *)
(* ------------------------------------------------------------------ *)

let count_mutants (rs : Oracle.mutant_result list) =
  List.fold_left
    (fun acc (r : Oracle.mutant_result) ->
      List.fold_left
        (fun (k, w, m) (_, d) ->
          match d with
          | Oracle.Killed -> (k + 1, w, m)
          | Oracle.Whitelisted _ -> (k, w + 1, m)
          | Oracle.Missed _ -> (k, w, m + 1))
        acc r.Oracle.mr_detections)
    (0, 0, 0) rs

let missed_total r =
  let _, _, missed = count_mutants r.r_mutants in
  missed

let ok r = r.r_findings = [] && missed_total r = 0

(** Merge two reports from consecutive blocks (the [--minutes] soak
    loop).  Seed ranges are unioned as an envelope; VM coverage sums
    block-wise (each block registered its functions independently). *)
let merge a b =
  let sum2 (h1, t1) (h2, t2) = (h1 + h2, t1 + t2) in
  {
    r_seed_lo = min a.r_seed_lo b.r_seed_lo;
    r_seed_hi = max a.r_seed_hi b.r_seed_hi;
    r_mutant_lo = min a.r_mutant_lo b.r_mutant_lo;
    r_mutant_hi = max a.r_mutant_hi b.r_mutant_hi;
    r_inject = a.r_inject;
    r_safe_total = a.r_safe_total + b.r_safe_total;
    r_findings = a.r_findings @ b.r_findings;
    r_mutants = a.r_mutants @ b.r_mutants;
    r_coverage = List.sort_uniq String.compare (a.r_coverage @ b.r_coverage);
    r_vm_blocks = sum2 a.r_vm_blocks b.r_vm_blocks;
    r_vm_edges = sum2 a.r_vm_edges b.r_vm_edges;
    (* each block counted its cells against a fresh seen-set, so the sum
       is an upper envelope, same as the block-wise VM totals *)
    r_cells = a.r_cells + b.r_cells;
    r_boost = List.sort_uniq compare (a.r_boost @ b.r_boost);
    r_corpus = (match b.r_corpus with Some _ -> b.r_corpus | None -> a.r_corpus);
    r_repros = a.r_repros @ b.r_repros;
  }

let render (r : report) : string =
  let b = Buffer.create 512 in
  let killed, whitelisted, missed = count_mutants r.r_mutants in
  Printf.bprintf b "safe seeds %d..%d: %d programs, %d findings\n" r.r_seed_lo
    r.r_seed_hi r.r_safe_total (List.length r.r_findings);
  List.iter
    (fun f -> Printf.bprintf b "  %s\n" (Oracle.finding_to_string f))
    r.r_findings;
  if r.r_mutant_hi >= r.r_mutant_lo then begin
    Printf.bprintf b
      "unsafe mutants %d..%d: %d mutants, detections %d killed, %d \
       whitelisted, %d missed\n"
      r.r_mutant_lo r.r_mutant_hi (List.length r.r_mutants) killed whitelisted
      missed;
    List.iter
      (fun (m : Oracle.mutant_result) ->
        match m.Oracle.mr_findings with
        | [] -> ()
        | fs ->
            List.iter
              (fun f -> Printf.bprintf b "  %s\n" (Oracle.finding_to_string f))
              fs)
      r.r_mutants
  end;
  Printf.bprintf b "grammar coverage: %d/%d productions\n"
    (List.length r.r_coverage)
    (List.length Gen.all_productions);
  (let bh, bt = r.r_vm_blocks and eh, et = r.r_vm_edges in
   Printf.bprintf b "VM coverage: %d/%d blocks, %d/%d edges%s\n" bh bt eh et
     (match r.r_boost with
     | [] -> ""
     | ks ->
         Printf.sprintf " (boosted features: %s)"
           (String.concat "," (List.map string_of_int ks))));
  Printf.bprintf b "coverage cells: %d\n" r.r_cells;
  (match r.r_corpus with
  | None -> ()
  | Some c ->
      Printf.bprintf b
        "corpus: %d entries (%d seeded, %d spliced, %d grown), %d rounds, %d \
         execs\n"
        c.cs_entries c.cs_seeded c.cs_spliced c.cs_grown c.cs_rounds c.cs_execs);
  List.iter
    (fun (rp : repro) ->
      Printf.bprintf b "repro %s (%d lines%s): %s\n" rp.rp_slug rp.rp_lines
        (if rp.rp_shrunk then ", shrunk" else ", unshrunk")
        rp.rp_finding)
    r.r_repros;
  Buffer.contents b

let detection_json = function
  | Oracle.Killed -> Json.Str "killed"
  | Oracle.Whitelisted why -> Json.Obj [ ("whitelisted", Json.Str why) ]
  | Oracle.Missed detail -> Json.Obj [ ("missed", Json.Str detail) ]

let finding_json (f : Oracle.finding) =
  Json.Obj
    [
      ("seed", Json.Int f.Oracle.f_seed);
      ("setup", Json.Str f.Oracle.f_setup);
      ("kind", Json.Str f.Oracle.f_kind);
      ("detail", Json.Str f.Oracle.f_detail);
    ]

(** The machine-readable campaign report ([--out]).  Deterministic:
    byte-identical for every [-j] setting (no timestamps, no wall-clock
    data, no cache statistics — those may legitimately vary with
    parallelism). *)
let report_to_json (r : report) : Json.t =
  let killed, whitelisted, missed = count_mutants r.r_mutants in
  Json.Obj
    [
      ( "seeds",
        Json.Obj [ ("lo", Json.Int r.r_seed_lo); ("hi", Json.Int r.r_seed_hi) ]
      );
      ( "mutant_seeds",
        Json.Obj
          [ ("lo", Json.Int r.r_mutant_lo); ("hi", Json.Int r.r_mutant_hi) ] );
      ("inject", Json.Str r.r_inject);
      ("safe_programs", Json.Int r.r_safe_total);
      ("findings", Json.List (List.map finding_json r.r_findings));
      ( "mutants",
        Json.Obj
          [
            ("total", Json.Int (List.length r.r_mutants));
            ("killed", Json.Int killed);
            ("whitelisted", Json.Int whitelisted);
            ("missed", Json.Int missed);
            ( "cases",
              Json.List
                (List.map
                   (fun (m : Oracle.mutant_result) ->
                     Json.Obj
                       (("name", Json.Str m.Oracle.mr_name)
                       :: List.map
                            (fun (tag, d) -> (tag, detection_json d))
                            m.Oracle.mr_detections))
                   r.r_mutants) );
          ] );
      ("coverage", Json.List (List.map (fun p -> Json.Str p) r.r_coverage));
      ( "vm_coverage",
        Json.Obj
          [
            ("blocks_hit", Json.Int (fst r.r_vm_blocks));
            ("blocks_total", Json.Int (snd r.r_vm_blocks));
            ("edges_hit", Json.Int (fst r.r_vm_edges));
            ("edges_total", Json.Int (snd r.r_vm_edges));
            ("cells", Json.Int r.r_cells);
            ("boost", Json.List (List.map (fun k -> Json.Int k) r.r_boost));
          ] );
      ( "corpus",
        match r.r_corpus with
        | None -> Json.Null
        | Some c ->
            Json.Obj
              [
                ("entries", Json.Int c.cs_entries);
                ("seeded", Json.Int c.cs_seeded);
                ("spliced", Json.Int c.cs_spliced);
                ("grown", Json.Int c.cs_grown);
                ("rounds", Json.Int c.cs_rounds);
                ("execs", Json.Int c.cs_execs);
              ] );
      ( "repros",
        Json.List
          (List.map
             (fun rp ->
               Json.Obj
                 [
                   ("slug", Json.Str rp.rp_slug);
                   ("finding", Json.Str rp.rp_finding);
                   ("lines", Json.Int rp.rp_lines);
                   ("shrunk", Json.Bool rp.rp_shrunk);
                 ])
             r.r_repros) );
    ]

(* ------------------------------------------------------------------ *)
(* Experiment registration                                             *)
(* ------------------------------------------------------------------ *)

module Experiments = Mi_bench_kit.Experiments

(** Register the [fuzz] experiment: a compact always-on differential
    campaign (it must stay cheap enough for [mi-experiments --all]; the
    CI fuzz gate runs the full-size campaign through [mifuzz]).  Call
    once from executables that want it in the registry — the fuzz
    library registers nothing on its own because [mi_bench_kit] cannot
    depend back on it. *)
let register_experiment () =
  Experiments.register
    {
      Experiments.name = "fuzz";
      aliases = [ "differential" ];
      descr = "differential fuzzing: safe seeds + unsafe mutants (oracle)";
      jobs = (fun _ -> []);
      reduce =
        (fun _lookup _benchmarks ->
          let c =
            campaign ~jobs:(Harness.default_jobs ()) ~seeds:(1, 48)
              ~mutants:(1, 16) ()
          in
          let r = run c in
          let killed, whitelisted, missed = count_mutants r.r_mutants in
          if not (ok r) then
            raise
              (Harness.Benchmark_failed
                 ( "fuzz",
                   Printf.sprintf
                     "%d oracle findings, %d missed mutant detections\n%s"
                     (List.length r.r_findings) missed (render r) ));
          {
            Experiments.title =
              "Differential fuzzing: full-surface generator vs the oracle \
               matrix";
            text = render r;
            series =
              [
                {
                  Experiments.label = "fuzz";
                  points =
                    [
                      ("safe", float_of_int r.r_safe_total);
                      ("findings", float_of_int (List.length r.r_findings));
                      ("mutants", float_of_int (List.length r.r_mutants));
                      ("killed", float_of_int killed);
                      ("whitelisted", float_of_int whitelisted);
                      ("missed", float_of_int missed);
                      ( "coverage",
                        float_of_int (List.length r.r_coverage) );
                      ("vm_blocks", float_of_int (fst r.r_vm_blocks));
                      ("vm_edges", float_of_int (fst r.r_vm_edges));
                    ];
                };
              ];
          });
    }

(** Register the [fuzz-soak] experiment: a compact coverage-guided
    evolutionary soak over a throwaway corpus (fixed exec budget, so the
    result is deterministic; the CI soak gate runs the wall-clock
    variant through [mifuzz --minutes]).  The corpus directory is
    deleted afterwards — persistence is exercised by the corpus tests
    and the CI gates, not by the always-on experiment. *)
let register_soak_experiment () =
  Experiments.register
    {
      Experiments.name = "fuzz-soak";
      aliases = [ "soak" ];
      descr = "coverage-guided evolutionary fuzzing over a persistent corpus";
      jobs = (fun _ -> []);
      reduce =
        (fun _lookup _benchmarks ->
          let dir =
            let f = Filename.temp_file "mi-fuzz-soak" "" in
            Sys.remove f;
            Sys.mkdir f 0o755;
            f
          in
          let cfg =
            soak_config ~jobs:(Harness.default_jobs ()) ~max_execs:24
              ~corpus_dir:dir ()
          in
          let r = soak_run cfg in
          let stats =
            match r.r_corpus with
            | Some c -> c
            | None -> assert false
          in
          Corpus.reset ~dir;
          (try Sys.rmdir dir with _ -> ());
          let _, _, missed = count_mutants r.r_mutants in
          if not (ok r) then
            raise
              (Harness.Benchmark_failed
                 ( "fuzz-soak",
                   Printf.sprintf
                     "%d oracle findings, %d missed mutant detections\n%s"
                     (List.length r.r_findings) missed (render r) ));
          if stats.cs_spliced + stats.cs_grown = 0 then
            raise
              (Harness.Benchmark_failed
                 ( "fuzz-soak",
                   "evolution stalled: no spliced or grown offspring was \
                    admitted\n" ^ render r ));
          {
            Experiments.title =
              "Coverage-guided soak: evolutionary corpus vs the oracle matrix";
            text = render r;
            series =
              [
                {
                  Experiments.label = "fuzz-soak";
                  points =
                    [
                      ("entries", float_of_int stats.cs_entries);
                      ("seeded", float_of_int stats.cs_seeded);
                      ("spliced", float_of_int stats.cs_spliced);
                      ("grown", float_of_int stats.cs_grown);
                      ("rounds", float_of_int stats.cs_rounds);
                      ("execs", float_of_int stats.cs_execs);
                      ("cells", float_of_int r.r_cells);
                      ("findings", float_of_int (List.length r.r_findings));
                      ("missed", float_of_int missed);
                    ];
                };
              ];
          });
    }
