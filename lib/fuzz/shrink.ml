(** Structural shrinking: given a failing case and a predicate that
    recognises the failure, greedily reduce the program while the
    failure keeps reproducing.

    The reducer works on the MiniC AST (parse → transform →
    {!Cprint}), never on text, so every candidate is a syntactically
    valid program; candidates that no longer compile are simply
    rejected by the predicate.  One step removes a translation unit, a
    top-level declaration, a statement (or flattens a compound
    statement into its body), an array extent (halved), or an
    expression (hoisting a subexpression or collapsing to a literal).

    Every candidate is strictly smaller under a lexicographic measure
    (AST nodes, summed array extents, identifier count), so the greedy
    fixpoint terminates.  Candidate order is deterministic and the
    predicate is assumed deterministic — the whole reduction is
    reproducible from the failing input alone. *)

open Mi_minic.Ast
module Ctypes = Mi_minic.Ctypes
module Bench = Mi_bench_kit.Bench

(* ------------------------------------------------------------------ *)
(* Size measure                                                        *)
(* ------------------------------------------------------------------ *)

type measure = { nodes : int; extents : int; idents : int }

let m_zero = { nodes = 0; extents = 0; idents = 0 }
let m_add a b =
  { nodes = a.nodes + b.nodes; extents = a.extents + b.extents;
    idents = a.idents + b.idents }
let m_sum l = List.fold_left m_add m_zero l
let m_lt a b =
  (a.nodes, a.extents, a.idents) < (b.nodes, b.extents, b.idents)

let rec ty_measure = function
  | Ctypes.Carr (t, d) ->
      let m = ty_measure t in
      { m with nodes = m.nodes + 1;
        extents = (m.extents + match d with Some n -> n | None -> 0) }
  | Ctypes.Cptr t ->
      let m = ty_measure t in
      { m with nodes = m.nodes + 1 }
  | _ -> { m_zero with nodes = 1 }

let expr_children (e : expr) : expr list =
  match e.e with
  | Eint _ | Efloat _ | Estr _ | Eident _ | Esizeof_ty _ -> []
  | Ebin (_, a, b) | Eassign (a, b) | Eopassign (_, a, b) | Eindex (a, b) ->
      [ a; b ]
  | Eun (_, a)
  | Eincdec (_, _, a)
  | Emember (a, _)
  | Earrow (a, _)
  | Ederef a
  | Eaddr a
  | Ecast (_, a)
  | Esizeof_e a ->
      [ a ]
  | Ecall (_, args) -> args
  | Econd (a, b, c) -> [ a; b; c ]

let expr_with_children (e : expr) (cs : expr list) : expr =
  let k =
    match (e.e, cs) with
    | Ebin (op, _, _), [ a; b ] -> Ebin (op, a, b)
    | Eassign _, [ a; b ] -> Eassign (a, b)
    | Eopassign (op, _, _), [ a; b ] -> Eopassign (op, a, b)
    | Eindex _, [ a; b ] -> Eindex (a, b)
    | Eun (op, _), [ a ] -> Eun (op, a)
    | Eincdec (w, d, _), [ a ] -> Eincdec (w, d, a)
    | Emember (_, f), [ a ] -> Emember (a, f)
    | Earrow (_, f), [ a ] -> Earrow (a, f)
    | Ederef _, [ a ] -> Ederef a
    | Eaddr _, [ a ] -> Eaddr a
    | Ecast (t, _), [ a ] -> Ecast (t, a)
    | Esizeof_e _, [ a ] -> Esizeof_e a
    | Ecall (f, _), args -> Ecall (f, args)
    | Econd _, [ a; b; c ] -> Econd (a, b, c)
    | k, [] -> k
    | _ -> invalid_arg "Shrink.expr_with_children: arity mismatch"
  in
  { e with e = k }

let rec expr_measure (e : expr) : measure =
  let m = m_sum (List.map expr_measure (expr_children e)) in
  let idents = match e.e with Eident _ -> m.idents + 1 | _ -> m.idents in
  let m = { m with nodes = m.nodes + 1; idents } in
  match e.e with
  | Ecast (t, _) -> m_add m (ty_measure t)
  | Esizeof_ty t -> m_add m (ty_measure t)
  | _ -> m

let rec init_measure = function
  | Iexpr e -> expr_measure e
  | Ilist l ->
      let m = m_sum (List.map init_measure l) in
      { m with nodes = m.nodes + 1 }

let rec stmt_measure (st : stmt) : measure =
  let m =
    match st.s with
    | Sexpr e -> expr_measure e
    | Sdecl (ty, _, init) ->
        m_add (ty_measure ty)
          (match init with None -> m_zero | Some i -> init_measure i)
    | Sif (c, a, b) ->
        m_add (expr_measure c) (m_sum (List.map stmt_measure (a @ b)))
    | Swhile (c, b) | Sdo (b, c) ->
        m_add (expr_measure c) (m_sum (List.map stmt_measure b))
    | Sfor (i, c, s, b) ->
        m_sum
          ((match i with None -> m_zero | Some st -> stmt_measure st)
          :: (match c with None -> m_zero | Some e -> expr_measure e)
          :: (match s with None -> m_zero | Some e -> expr_measure e)
          :: List.map stmt_measure b)
    | Sreturn (Some e) -> expr_measure e
    | Sreturn None | Sbreak | Scontinue -> m_zero
    | Sblock b | Sseq b -> m_sum (List.map stmt_measure b)
  in
  { m with nodes = m.nodes + 1 }

let decl_measure (d : decl) : measure =
  let m =
    match d with
    | Dfunc f ->
        m_sum
          (ty_measure f.f_ret
          :: List.map (fun p -> ty_measure p.p_ty) f.f_params
          @ List.map stmt_measure f.f_body)
    | Dproto (_, ret, ptys, _) -> m_sum (List.map ty_measure (ret :: ptys))
    | Dglobal g ->
        m_add (ty_measure g.g_ty)
          (match g.g_init with None -> m_zero | Some i -> init_measure i)
    | Dstruct (_, fields, _) ->
        m_sum (List.map (fun (_, t) -> ty_measure t) fields)
  in
  { m with nodes = m.nodes + 1 }

let program_measure (p : program) = m_sum (List.map decl_measure p)

(* ------------------------------------------------------------------ *)
(* One-step candidates                                                 *)
(* ------------------------------------------------------------------ *)

(* replace the [i]-th element of [l] *)
let replace_nth l i x = List.mapi (fun j y -> if i = j then x else y) l

(* all lists obtained by dropping exactly one element *)
let drop_one l = List.mapi (fun i _ -> List.filteri (fun j _ -> i <> j) l) l

let rec ty_cands (ty : Ctypes.t) : Ctypes.t list =
  match ty with
  | Ctypes.Carr (t, Some n) when n > 1 ->
      (Ctypes.Carr (t, Some (n / 2))
      :: List.map (fun t' -> Ctypes.Carr (t', Some n)) (ty_cands t))
  | Ctypes.Carr (t, d) ->
      List.map (fun t' -> Ctypes.Carr (t', d)) (ty_cands t)
  | Ctypes.Cptr t -> List.map (fun t' -> Ctypes.Cptr t') (ty_cands t)
  | _ -> []

let rec expr_cands (e : expr) : expr list =
  let collapse =
    match e.e with Eint _ -> [] | _ -> [ { e with e = Eint 0 } ]
  in
  let subs = expr_children e in
  let inner =
    List.concat
      (List.mapi
         (fun i c ->
           List.map
             (fun c' -> expr_with_children e (replace_nth subs i c'))
             (expr_cands c))
         subs)
  in
  (* collapse first, hoisted subexpressions next, inner rewrites last:
     biggest reductions get tried earliest *)
  collapse @ subs @ inner

let rec init_cands = function
  | Iexpr e -> List.map (fun e' -> Iexpr e') (expr_cands e)
  | Ilist l ->
      List.map (fun l' -> Ilist l') (drop_one l)
      @ List.concat
          (List.mapi
             (fun i it ->
               List.map (fun it' -> Ilist (replace_nth l i it')) (init_cands it))
             l)

let opt_expr_cands = function
  | None -> []
  | Some e -> None :: List.map (fun e' -> Some e') (expr_cands e)

let rec stmt_cands (st : stmt) : stmt list =
  let k s = { st with s } in
  match st.s with
  | Sexpr e -> List.map (fun e' -> k (Sexpr e')) (expr_cands e)
  | Sdecl (ty, n, init) ->
      (match init with Some _ -> [ k (Sdecl (ty, n, None)) ] | None -> [])
      @ List.map (fun ty' -> k (Sdecl (ty', n, init))) (ty_cands ty)
      @ (match init with
        | None -> []
        | Some i -> List.map (fun i' -> k (Sdecl (ty, n, Some i'))) (init_cands i))
  | Sif (c, a, b) ->
      (if b <> [] then [ k (Sif (c, a, [])) ] else [])
      @ List.map (fun c' -> k (Sif (c', a, b))) (expr_cands c)
      @ List.map (fun a' -> k (Sif (c, a', b))) (stmts_cands a)
      @ List.map (fun b' -> k (Sif (c, a, b'))) (stmts_cands b)
  | Swhile (c, b) ->
      List.map (fun c' -> k (Swhile (c', b))) (expr_cands c)
      @ List.map (fun b' -> k (Swhile (c, b'))) (stmts_cands b)
  | Sdo (b, c) ->
      List.map (fun b' -> k (Sdo (b', c))) (stmts_cands b)
      @ List.map (fun c' -> k (Sdo (b, c'))) (expr_cands c)
  | Sfor (i, c, s, b) ->
      (match i with
      | Some { s = Sdecl _; _ } | None -> []
      | Some _ -> [ k (Sfor (None, c, s, b)) ])
      @ List.map (fun c' -> k (Sfor (i, c', s, b))) (opt_expr_cands c)
      @ List.map (fun s' -> k (Sfor (i, c, s', b))) (opt_expr_cands s)
      @ List.map (fun b' -> k (Sfor (i, c, s, b'))) (stmts_cands b)
  | Sreturn (Some e) -> List.map (fun e' -> k (Sreturn (Some e'))) (expr_cands e)
  | Sreturn None | Sbreak | Scontinue -> []
  | Sblock b -> List.map (fun b' -> k (Sblock b')) (stmts_cands b)
  | Sseq b -> List.map (fun b' -> k (Sseq b')) (stmts_cands b)

(* all ways to reduce a statement list by one step: drop a statement,
   flatten a compound into its body, or rewrite within one statement *)
and stmts_cands (stmts : stmt list) : stmt list list =
  match stmts with
  | [] -> []
  | st :: rest ->
      [ rest ]
      @ (match st.s with
        | Sif (_, a, b) -> [ a @ b @ rest ]
        | Swhile (_, b) -> [ b @ rest ]
        | Sdo (b, _) -> [ b @ rest ]
        | Sfor (i, _, _, b) ->
            [ (match i with Some s -> s :: b | None -> b) @ rest ]
        | Sblock b | Sseq b -> [ b @ rest ]
        | _ -> [])
      @ List.map (fun st' -> st' :: rest) (stmt_cands st)
      @ List.map (fun rest' -> st :: rest') (stmts_cands rest)

let decl_cands (d : decl) : decl list =
  match d with
  | Dfunc f ->
      List.map (fun b -> Dfunc { f with f_body = b }) (stmts_cands f.f_body)
  | Dproto _ -> []
  | Dglobal g ->
      (match g.g_init with
      | Some _ -> [ Dglobal { g with g_init = None } ]
      | None -> [])
      @ List.map (fun t -> Dglobal { g with g_ty = t }) (ty_cands g.g_ty)
      @ (match g.g_init with
        | None -> []
        | Some i ->
            List.map (fun i' -> Dglobal { g with g_init = Some i' }) (init_cands i))
  | Dstruct (n, fields, p) ->
      (if List.length fields > 1 then
         List.map (fun fs -> Dstruct (n, fs, p)) (drop_one fields)
       else [])
      @ List.concat
          (List.mapi
             (fun i (fn, ft) ->
               List.map
                 (fun t -> Dstruct (n, replace_nth fields i (fn, t), p))
                 (ty_cands ft))
             fields)

let program_cands (p : program) : program list =
  drop_one p
  @ List.concat
      (List.mapi
         (fun i d -> List.map (fun d' -> replace_nth p i d') (decl_cands d))
         p)

(* ------------------------------------------------------------------ *)
(* The reduction loop                                                  *)
(* ------------------------------------------------------------------ *)

type unit_state = { us_src : Bench.source; us_prog : program }

let state_measure st =
  m_sum (List.map (fun u -> program_measure u.us_prog) st)

let render (st : unit_state list) : Bench.source list =
  List.map
    (fun u -> { u.us_src with Bench.code = Cprint.program_to_string u.us_prog })
    st

let state_cands (st : unit_state list) : unit_state list list =
  (* drop a whole translation unit first *)
  (if List.length st > 1 then drop_one st else [])
  @ List.concat
      (List.mapi
         (fun i u ->
           List.map
             (fun p -> replace_nth st i { u with us_prog = p })
             (program_cands u.us_prog))
         st)

(** [minimize ~pred sources] greedily reduces [sources] while [pred]
    keeps returning [true] (= the failure still reproduces; a candidate
    that fails to compile must make [pred] return [false], not raise).
    Deterministic for a deterministic predicate.  Returns the reduced
    sources — or [sources] unchanged if they don't parse or the failure
    doesn't survive the initial parse/print round-trip. *)
let minimize ~(pred : Bench.source list -> bool)
    (sources : Bench.source list) : Bench.source list =
  let parsed =
    try
      Some
        (List.map
           (fun (s : Bench.source) ->
             { us_src = s; us_prog = Mi_minic.Cparse.parse_program s.Bench.code })
           sources)
    with Mi_minic.Cparse.Parse_error _ | Mi_minic.Lexer.Lex_error _ -> None
  in
  match parsed with
  | None -> sources
  | Some st0 when not (pred (render st0)) -> sources
  | Some st0 ->
      let rec improve st =
        let m = state_measure st in
        let better c = m_lt (state_measure c) m && pred (render c) in
        match List.find_opt better (state_cands st) with
        | Some c -> improve c
        | None -> st
      in
      render (improve st0)

let line_count (s : string) =
  List.length (List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s))
