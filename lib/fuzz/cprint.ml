(** MiniC AST → C source, the inverse of {!Mi_minic.Cparse}.

    The shrinker reduces programs structurally (on the AST) but the
    oracle consumes source text, so every reduction step round-trips
    through this printer.  The only contract is [parse (print p)]
    succeeds and denotes the same program; output is fully parenthesized
    rather than pretty. *)

open Mi_minic.Ast
module Ctypes = Mi_minic.Ctypes

(* peel array dimensions off a declarator type: outermost Carr is the
   first (leftmost) dimension *)
let rec split_arrays ty =
  match ty with
  | Ctypes.Carr (t, d) ->
      let base, dims = split_arrays t in
      (base, d :: dims)
  | t -> (t, [])

let rec base_to_string = function
  | Ctypes.Cvoid -> "void"
  | Ctypes.Cchar -> "char"
  | Ctypes.Cshort -> "short"
  | Ctypes.Cint -> "int"
  | Ctypes.Clong -> "long"
  | Ctypes.Cdouble -> "double"
  | Ctypes.Cstruct s -> "struct " ^ s
  | Ctypes.Cptr t -> base_to_string t ^ " *"
  | Ctypes.Carr _ -> invalid_arg "Cprint: array in abstract type"

let dim_to_string = function
  | Some n -> Printf.sprintf "[%d]" n
  | None -> "[]"

(* "T name[3][4]" *)
let declarator ty name =
  let base, dims = split_arrays ty in
  Printf.sprintf "%s %s%s" (base_to_string base) name
    (String.concat "" (List.map dim_to_string dims))

let binop_to_string = function
  | Badd -> "+" | Bsub -> "-" | Bmul -> "*" | Bdiv -> "/" | Bmod -> "%"
  | Bshl -> "<<" | Bshr -> ">>" | Band -> "&" | Bor -> "|" | Bxor -> "^"
  | Blt -> "<" | Ble -> "<=" | Bgt -> ">" | Bge -> ">=" | Beq -> "==" | Bne -> "!="
  | Bland -> "&&" | Blor -> "||"

let unop_to_string = function Uneg -> "-" | Unot -> "!" | Ubnot -> "~"

let rec expr_to_string (e : expr) : string =
  match e.e with
  | Eint n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n
  | Efloat f -> Printf.sprintf "(%h)" f
  | Estr s -> Printf.sprintf "%S" s
  | Eident id -> id
  | Ebin (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op)
        (expr_to_string b)
  | Eun (op, a) -> Printf.sprintf "(%s%s)" (unop_to_string op) (expr_to_string a)
  | Eassign (l, r) ->
      Printf.sprintf "(%s = %s)" (expr_to_string l) (expr_to_string r)
  | Eopassign (op, l, r) ->
      Printf.sprintf "(%s %s= %s)" (expr_to_string l) (binop_to_string op)
        (expr_to_string r)
  | Eincdec (`Pre, `Inc, l) -> Printf.sprintf "(++%s)" (expr_to_string l)
  | Eincdec (`Pre, `Dec, l) -> Printf.sprintf "(--%s)" (expr_to_string l)
  | Eincdec (`Post, `Inc, l) -> Printf.sprintf "(%s++)" (expr_to_string l)
  | Eincdec (`Post, `Dec, l) -> Printf.sprintf "(%s--)" (expr_to_string l)
  | Ecall (f, args) ->
      Printf.sprintf "%s(%s)" f
        (String.concat ", " (List.map expr_to_string args))
  | Eindex (a, i) ->
      Printf.sprintf "%s[%s]" (postfix_base a) (expr_to_string i)
  | Emember (a, f) -> Printf.sprintf "%s.%s" (postfix_base a) f
  | Earrow (a, f) -> Printf.sprintf "%s->%s" (postfix_base a) f
  | Ederef a -> Printf.sprintf "(*%s)" (expr_to_string a)
  | Eaddr a -> Printf.sprintf "(&%s)" (expr_to_string a)
  | Ecast (ty, a) ->
      Printf.sprintf "(%s)%s" (base_to_string ty) (cast_operand a)
  | Esizeof_ty ty ->
      let base, dims = split_arrays ty in
      Printf.sprintf "sizeof(%s%s)" (base_to_string base)
        (String.concat "" (List.map dim_to_string dims))
  | Esizeof_e a -> Printf.sprintf "sizeof(%s)" (expr_to_string a)
  | Econd (c, a, b) ->
      Printf.sprintf "(%s ? %s : %s)" (expr_to_string c) (expr_to_string a)
        (expr_to_string b)

(* a postfix operator binds to its base without parens only when the
   base is itself primary/postfix *)
and postfix_base (e : expr) : string =
  match e.e with
  | Eident _ | Ecall _ | Eindex _ | Emember _ | Earrow _ -> expr_to_string e
  | _ -> Printf.sprintf "(%s)" (expr_to_string e)

(* a cast operand must be unary: parenthesize everything else *)
and cast_operand (e : expr) : string =
  match e.e with
  | Eident _ | Eint _ | Ecall _ -> expr_to_string e
  | _ -> Printf.sprintf "(%s)" (expr_to_string e)

let rec init_to_string = function
  | Iexpr e -> expr_to_string e
  | Ilist l ->
      Printf.sprintf "{ %s }" (String.concat ", " (List.map init_to_string l))

(* statement-position expression: the printer's outer parens are
   redundant but harmless; strip the common ones for readability *)
let stmt_expr_to_string e =
  let s = expr_to_string e in
  match e.e with
  | Eassign _ | Eopassign _ | Eincdec _ | Ebin _ | Econd _ | Eun _ ->
      String.sub s 1 (String.length s - 2)
  | _ -> s

let rec stmt_to_buf buf indent (st : stmt) =
  let pad = String.make indent ' ' in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  match st.s with
  | Sexpr e -> add "%s%s;\n" pad (stmt_expr_to_string e)
  | Sdecl (ty, name, init) -> (
      match init with
      | None -> add "%s%s;\n" pad (declarator ty name)
      | Some i -> add "%s%s = %s;\n" pad (declarator ty name) (init_to_string i))
  | Sif (c, thn, els) ->
      add "%sif (%s) {\n" pad (expr_to_string c);
      List.iter (stmt_to_buf buf (indent + 2)) thn;
      if els <> [] then begin
        add "%s} else {\n" pad;
        List.iter (stmt_to_buf buf (indent + 2)) els
      end;
      add "%s}\n" pad
  | Swhile (c, body) ->
      add "%swhile (%s) {\n" pad (expr_to_string c);
      List.iter (stmt_to_buf buf (indent + 2)) body;
      add "%s}\n" pad
  | Sdo (body, c) ->
      add "%sdo {\n" pad;
      List.iter (stmt_to_buf buf (indent + 2)) body;
      add "%s} while (%s);\n" pad (expr_to_string c)
  | Sfor (init, cond, step, body) ->
      let init_s =
        match init with
        | None -> ""
        | Some { s = Sexpr e; _ } -> stmt_expr_to_string e
        | Some { s = Sdecl (ty, name, Some (Iexpr e)); _ } ->
            Printf.sprintf "%s = %s" (declarator ty name) (expr_to_string e)
        | Some { s = Sdecl (ty, name, None); _ } -> declarator ty name
        | Some _ -> invalid_arg "Cprint: unsupported for-initializer"
      in
      add "%sfor (%s; %s; %s) {\n" pad init_s
        (match cond with None -> "" | Some e -> expr_to_string e)
        (match step with None -> "" | Some e -> stmt_expr_to_string e);
      List.iter (stmt_to_buf buf (indent + 2)) body;
      add "%s}\n" pad
  | Sreturn None -> add "%sreturn;\n" pad
  | Sreturn (Some e) -> add "%sreturn %s;\n" pad (expr_to_string e)
  | Sbreak -> add "%sbreak;\n" pad
  | Scontinue -> add "%scontinue;\n" pad
  | Sblock body ->
      add "%s{\n" pad;
      List.iter (stmt_to_buf buf (indent + 2)) body;
      add "%s}\n" pad
  | Sseq stmts ->
      (* multi-declarator declaration: separate statements are
         semantically identical (Sseq introduces no scope) *)
      List.iter (stmt_to_buf buf indent) stmts

let decl_to_buf buf (d : decl) =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  match d with
  | Dstruct (name, fields, _) ->
      add "struct %s {" name;
      List.iter (fun (fn, ft) -> add " %s;" (declarator ft fn)) fields;
      add " };\n"
  | Dproto (name, ret, ptys, _) ->
      (* the grammar wants named parameters; invent stable names *)
      let params =
        if ptys = [] then "void"
        else
          String.concat ", "
            (List.mapi
               (fun i t -> declarator t (Printf.sprintf "p%d" i))
               ptys)
      in
      add "%s(%s);\n" (declarator ret name) params
  | Dglobal g ->
      let ext = if g.g_extern then "extern " else "" in
      (match g.g_init with
      | None -> add "%s%s;\n" ext (declarator g.g_ty g.g_name)
      | Some i ->
          add "%s%s = %s;\n" ext (declarator g.g_ty g.g_name)
            (init_to_string i))
  | Dfunc f ->
      let params =
        if f.f_params = [] then "void"
        else
          String.concat ", "
            (List.map (fun p -> declarator p.p_ty p.p_name) f.f_params)
      in
      add "%s(%s) {\n" (declarator f.f_ret f.f_name) params;
      List.iter (stmt_to_buf buf 2) f.f_body;
      add "}\n"

let program_to_string (p : program) : string =
  let buf = Buffer.create 1024 in
  List.iter (decl_to_buf buf) p;
  Buffer.contents buf
