(** The safety oracle: what must be true of a generated program.

    For a {e safe} program ({!Gen.generate}), every setup in the
    experiment matrix — optimization levels, all three registered
    checkers, every extension point, both VM dispatch modes — must
    produce output byte-identical to the uninstrumented [-O0]
    reference, with no safety report, no trap, and no fuel exhaustion.
    Additionally the instrumentations must agree on the dynamic check
    count (the shared target discovery places the same checks), and the
    VM's fused fast-path must be observationally identical to generic
    dispatch (same output, same cycles, same counters).

    For an {e unsafe mutant}, the oracle flips along the mutant's
    hazard class ({!Gen.mutant_kind}): a spatial overflow
    ({!Gen.mutate}) must be reported by both SoftBound and Low-Fat —
    except SoftBound on a site with only wide bounds by design
    (size-less extern declaration, §4.3) — while the temporal checker
    is excused (lock-and-key tracks lifetimes, not bounds).  A
    use-after-free or double free ({!Gen.mutate_temporal}) must be
    reported by the temporal checker, while the spatial checkers are
    excused (their bounds metadata is unaffected by [free]).  Every
    excusal is {e whitelisted} with its written justification rather
    than counted as missed.

    The functions here only build job lists and judge result lists; the
    caller owns the {!Mi_bench_kit.Harness} session, so an entire
    campaign can go through one {!Mi_bench_kit.Harness.run_jobs} matrix
    and inherit its caching, sharding and [-j]-determinism. *)

module Config = Mi_core.Config
module Pipeline = Mi_passes.Pipeline
module Harness = Mi_bench_kit.Harness
module Bench = Mi_bench_kit.Bench

(** One oracle violation.  [f_kind] is a closed vocabulary:
    ["compile-error"], ["spurious-report"], ["trap"], ["fuel"],
    ["exit-code"], ["output-divergence"], ["check-count-mismatch"],
    ["dispatch-divergence"], ["ref-failed"], ["missed-violation"]. *)
type finding = {
  f_seed : int;
  f_setup : string;  (** matrix tag, e.g. ["O3+sb@scalarlate"] *)
  f_kind : string;
  f_detail : string;
}

let finding_to_string f =
  Printf.sprintf "seed %d [%s] %s: %s" f.f_seed f.f_setup f.f_kind f.f_detail

(* ------------------------------------------------------------------ *)
(* The matrix                                                          *)
(* ------------------------------------------------------------------ *)

let reference = { Harness.baseline with level = Pipeline.O0 }

let sb = Harness.with_config Config.softbound Harness.baseline
let lf = Harness.with_config Config.lowfat Harness.baseline
let tp = Harness.with_config (Config.of_approach "temporal") Harness.baseline

(** The full safe-program matrix (reference excluded).  Tags are stable:
    they appear in repro files and CI JSON. *)
let variants : (string * Harness.setup) list =
  [
    ("O1", { Harness.baseline with level = Pipeline.O1 });
    ("O3", Harness.baseline);
    ("O1+sb", { sb with level = Pipeline.O1 });
    ("O3+sb", sb);
    ("O1+lf", { lf with level = Pipeline.O1 });
    ("O3+lf", lf);
    ("O1+tp", { tp with level = Pipeline.O1 });
    ("O3+tp", tp);
    ("O3+sb+domopt", Harness.with_config (Config.optimized Config.softbound) Harness.baseline);
    ("O3+sb+checkopt", Harness.with_config (Config.optimized_full Config.softbound) Harness.baseline);
    ("O3+lf+checkopt", Harness.with_config (Config.optimized_full Config.lowfat) Harness.baseline);
    ("O3+lf@early", { lf with ep = Pipeline.ModuleOptimizerEarly });
    ("O3+sb@scalarlate", { sb with ep = Pipeline.ScalarOptimizerLate });
    ("O3+sb/generic", { sb with dispatch = Harness.Generic });
    ("O3+lf/generic", { lf with dispatch = Harness.Generic });
    ("O3+tp/generic", { tp with dispatch = Harness.Generic });
  ]

let variant_setup tag =
  if tag = "O0" then reference
  else
    match List.assoc_opt tag variants with
    | Some s -> s
    | None -> invalid_arg ("Oracle.variant_setup: unknown tag " ^ tag)

(** Mutant matrix: the unsafe access must be reached, so only the
    instrumented setups run (uninstrumented, an out-of-bounds write is
    undefined — it may trap or silently corrupt).  The [checkopt]
    configurations are held to the same bar as their bases: static
    in-bounds elimination and hoisting may only delete checks they
    proved redundant, so an eliminated-yet-needed check on an injected
    violation shows up here as a miss — the optimizer of PR 9 is
    cross-examined by every mutant campaign. *)
let mutant_variants : (string * Harness.setup) list =
  [
    ("O3+sb", sb);
    ("O3+lf", lf);
    ("O3+tp", tp);
    ( "O3+sb+checkopt",
      Harness.with_config (Config.optimized_full Config.softbound)
        Harness.baseline );
    ( "O3+lf+checkopt",
      Harness.with_config (Config.optimized_full Config.lowfat)
        Harness.baseline );
  ]

(* ------------------------------------------------------------------ *)
(* Jobs                                                                *)
(* ------------------------------------------------------------------ *)

let bench_of_sources ~name sources =
  Bench.mk ~suite:Bench.CPU2006 ~descr:"generated fuzz program" name sources

let safe_bench (p : Gen.prog) =
  bench_of_sources ~name:(Printf.sprintf "fuzz-%d" p.Gen.p_seed) p.Gen.p_sources

let mutant_bench (m : Gen.mutant) =
  bench_of_sources
    ~name:(Printf.sprintf "fuzz-%d-mut" m.Gen.m_prog.Gen.p_seed)
    m.Gen.m_sources

(** Jobs for one benchmark, reference first then {!variants} in order.
    Judge the result list with {!judge_safe_results} — the corpus
    replay/soak path, where candidates are arbitrary well-typed sources
    rather than generator-fresh {!Gen.prog}s. *)
let safe_jobs_of (b : Bench.t) : (Harness.setup * Bench.t) list =
  (reference, b) :: List.map (fun (_, s) -> (s, b)) variants

(** Jobs for one safe program, reference first then {!variants} in
    order.  Judge the result list with {!judge_safe}. *)
let safe_jobs (p : Gen.prog) : (Harness.setup * Bench.t) list =
  safe_jobs_of (safe_bench p)

(** Jobs for one mutant, {!mutant_variants} in order; judge with
    {!judge_mutant}. *)
let mutant_jobs (m : Gen.mutant) : (Harness.setup * Bench.t) list =
  let b = mutant_bench m in
  List.map (fun (_, s) -> (s, b)) mutant_variants

(* ------------------------------------------------------------------ *)
(* Judging                                                             *)
(* ------------------------------------------------------------------ *)

let outcome_finding ~seed ~tag (r : Harness.run) =
  match r.Harness.outcome with
  | Mi_vm.Interp.Exited 0 -> None
  | Mi_vm.Interp.Exited n ->
      Some { f_seed = seed; f_setup = tag; f_kind = "exit-code";
             f_detail = Printf.sprintf "exited with %d" n }
  | Mi_vm.Interp.Safety_violation { checker; reason } ->
      Some { f_seed = seed; f_setup = tag; f_kind = "spurious-report";
             f_detail = Printf.sprintf "%s: %s" checker reason }
  | Mi_vm.Interp.Trapped msg ->
      Some { f_seed = seed; f_setup = tag; f_kind = "trap"; f_detail = msg }
  | Mi_vm.Interp.Exhausted budget ->
      Some { f_seed = seed; f_setup = tag; f_kind = "fuel";
             f_detail = Printf.sprintf "budget %d exhausted" budget }

(** Judge one safe candidate's results (aligned with {!safe_jobs_of}).
    Returns all findings, [[]] iff the oracle holds.  [seed] labels the
    findings: the root generator seed of the candidate's lineage. *)
let judge_safe_results ~seed
    (results : (Harness.run, Harness.error) result list) : finding list =
  let tagged = List.combine ("O0" :: List.map fst variants) results in
  let find tag = List.assoc tag tagged in
  let findings = ref [] in
  let note f = findings := f :: !findings in
  (match find "O0" with
  | Error e ->
      note { f_seed = seed; f_setup = "O0"; f_kind = "ref-failed";
             f_detail = e.Harness.reason }
  | Ok ref_run -> (
      match outcome_finding ~seed ~tag:"O0" ref_run with
      | Some f -> note { f with f_kind = "ref-failed" }
      | None ->
          let ref_out = ref_run.Harness.output in
          List.iter
            (fun (tag, res) ->
              if tag <> "O0" then
                match res with
                | Error e ->
                    note { f_seed = seed; f_setup = tag;
                           f_kind = "compile-error";
                           f_detail = e.Harness.reason }
                | Ok r -> (
                    match outcome_finding ~seed ~tag r with
                    | Some f -> note f
                    | None ->
                        if r.Harness.output <> ref_out then
                          note
                            { f_seed = seed; f_setup = tag;
                              f_kind = "output-divergence";
                              f_detail =
                                Printf.sprintf "expected %S got %S" ref_out
                                  r.Harness.output }))
            tagged;
          (* fairness: the shared target discovery places the same
             number of dynamic checks under every approach *)
          (match (find "O3+sb", find "O3+lf", find "O3+tp") with
          | Ok rsb, Ok rlf, Ok rtp ->
              let csb = Harness.counter rsb "sb.checks"
              and clf = Harness.counter rlf "lf.checks"
              and ctp = Harness.counter rtp "tp.checks" in
              if csb <> clf || clf <> ctp then
                note
                  { f_seed = seed; f_setup = "O3+sb|O3+lf|O3+tp";
                    f_kind = "check-count-mismatch";
                    f_detail =
                      Printf.sprintf "sb %d vs lf %d vs tp %d" csb clf ctp }
          | _ -> ());
          (* fast-path contract: generic dispatch is observationally
             identical — output, cycles, every runtime counter *)
          List.iter
            (fun tag ->
              match (find tag, find (tag ^ "/generic")) with
              | Ok fast, Ok gen ->
                  if fast.Harness.output <> gen.Harness.output then
                    note
                      { f_seed = seed; f_setup = tag ^ "/generic";
                        f_kind = "dispatch-divergence";
                        f_detail = "output differs from fused dispatch" }
                  else if fast.Harness.cycles <> gen.Harness.cycles then
                    note
                      { f_seed = seed; f_setup = tag ^ "/generic";
                        f_kind = "dispatch-divergence";
                        f_detail =
                          Printf.sprintf "cycles %d (fused) vs %d (generic)"
                            fast.Harness.cycles gen.Harness.cycles }
                  else if
                    Harness.counters_alist fast <> Harness.counters_alist gen
                  then
                    note
                      { f_seed = seed; f_setup = tag ^ "/generic";
                        f_kind = "dispatch-divergence";
                        f_detail = "runtime counters differ" }
              | _ -> ())
            [ "O3+sb"; "O3+lf"; "O3+tp" ]));
  List.rev !findings

(** Judge one safe program's results (aligned with {!safe_jobs}). *)
let judge_safe (p : Gen.prog) results =
  judge_safe_results ~seed:p.Gen.p_seed results

(** How one instrumentation judged one mutant. *)
type detection =
  | Killed  (** aborted with a safety report *)
  | Whitelisted of string  (** excused, with the written justification *)
  | Missed of string  (** ran to completion (or failed off-contract) *)

let detection_to_string = function
  | Killed -> "killed"
  | Whitelisted why -> "whitelisted: " ^ why
  | Missed detail -> "MISSED: " ^ detail

type mutant_result = {
  mr_name : string;
  mr_seed : int;
  mr_detections : (string * detection) list;
      (** per checker variant, in {!mutant_variants} order *)
  mr_findings : finding list;  (** [[]] iff the flipped oracle holds *)
}

let mr_detection mr tag =
  match List.assoc_opt tag mr.mr_detections with
  | Some d -> d
  | None -> invalid_arg ("Oracle.mr_detection: unknown tag " ^ tag)

(* What the flipped oracle demands of one checker on one mutant.  An
   [Excused_wide] checker is excused only from a clean exit (the §4.3
   wide-bounds whitelist: the access itself is still well-defined); an
   [Out_of_scope] checker is excused from a trap too, because the
   uninstrumented failure mode of a hazard outside its class is its
   documented blind spot, not a miss. *)
type expectation =
  | Must_report
  | Excused_wide of string
  | Out_of_scope of string

(* the checker behind a mutant-matrix tag: expectations depend on the
   approach, not on which elimination passes ran on top of it *)
let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let expectation (m : Gen.mutant) tag =
  let is_tp = has_prefix "O3+tp" tag and is_sb = has_prefix "O3+sb" tag in
  match m.Gen.m_kind with
  | Gen.Spatial -> (
      match m.Gen.m_sb_whitelist with
      | _ when is_tp ->
          Out_of_scope
            "spatial overflow: the lock-and-key checker tracks lifetimes, \
             not bounds"
      | Some why when is_sb -> Excused_wide why
      | _ -> Must_report)
  | Gen.Uaf ->
      if is_tp then Must_report
      else
        Out_of_scope
          "use after free: the spatial checkers' bounds metadata is \
           unaffected by free"
  | Gen.Double_free ->
      if is_tp then Must_report
      else
        Out_of_scope
          "double free: outside the spatial checkers' scope (the VM \
           allocator's own bookkeeping traps instead)"

(** Judge one mutant's results (aligned with {!mutant_jobs}): each
    checker variant against its {!expectation} for the mutant's hazard
    class. *)
let judge_mutant (m : Gen.mutant)
    (results : (Harness.run, Harness.error) result list) : mutant_result =
  let seed = m.Gen.m_prog.Gen.p_seed in
  let name = Gen.mutant_name m in
  let judge tag res =
    match res with
    | Error e ->
        Missed (Printf.sprintf "[%s] compile error: %s" tag e.Harness.reason)
    | Ok r -> (
        match (r.Harness.outcome, expectation m tag) with
        | Mi_vm.Interp.Safety_violation _, _ -> Killed
        | Mi_vm.Interp.Exited _, (Excused_wide why | Out_of_scope why) ->
            Whitelisted why
        | Mi_vm.Interp.Exited _, Must_report ->
            Missed (Printf.sprintf "[%s] ran to completion" tag)
        | Mi_vm.Interp.Trapped msg, Out_of_scope why ->
            Whitelisted (Printf.sprintf "%s (trapped: %s)" why msg)
        | Mi_vm.Interp.Trapped msg, _ ->
            (* a VM trap is the uninstrumented failure mode: the check
               did not fire first, so the instrumentation missed *)
            Missed
              (Printf.sprintf "[%s] trapped instead of reporting: %s" tag msg)
        | Mi_vm.Interp.Exhausted b, _ ->
            Missed (Printf.sprintf "[%s] fuel budget %d exhausted" tag b))
  in
  let detections =
    List.map2
      (fun (tag, _) res -> (tag, judge tag res))
      mutant_variants results
  in
  let findings =
    List.filter_map
      (fun (tag, d) ->
        match d with
        | Killed | Whitelisted _ -> None
        | Missed detail ->
            Some
              { f_seed = seed; f_setup = tag; f_kind = "missed-violation";
                f_detail = Printf.sprintf "%s: %s" name detail })
      detections
  in
  { mr_name = name; mr_seed = seed; mr_detections = detections;
    mr_findings = findings }
