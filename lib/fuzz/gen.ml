(** Generator v2: random, spatially-safe MiniC programs over the {e
    full} language surface, for differential fuzzing.

    Where the retired [Progen] exercised only [long] scalars and
    modulo-indexed arrays, this generator reaches every construct the
    paper's Table 1 discussion singles out as hard for instrumentations:

    - all integer C types ([char]/[int]/[long]) as locals, globals and
      array elements;
    - structs with nested field access, pointers to structs ([->]) and
      struct copies via [memcpy] (the §5.1.2 idiom);
    - pointers and pointer arithmetic, kept in bounds by construction;
    - the byte intrinsics [memcpy]/[memset]/[memmove] over generated
      buffers (including overlapping [memmove]);
    - int↔ptr round-trips (§4.4) — the integer never reaches program
      output, so results stay address-independent;
    - size-less [extern T a[];] declarations whose definition lives in a
      sibling translation unit (§4.3);
    - multi-function call graphs, including pointer-taking helpers.

    Every program records which grammar {e productions} it used, so a
    coverage test can prove the generator never silently regresses to a
    sliver of the surface, and the arrays it creates as {e sites} — the
    places a known out-of-bounds access can be injected to derive an
    unsafe mutant ({!mutate}).

    Safety by construction: all indices are reduced modulo the extent
    ([((e % n + n) % n)]), all intrinsic lengths are bounded by the
    smallest involved object, and no pointer or address-derived integer
    ever flows into program output.  A generated program must therefore
    behave identically at every optimization level, under either
    instrumentation, at every extension point, and under either VM
    dispatch mode. *)

module Rng = Mi_support.Rng
module Bench = Mi_bench_kit.Bench

type elem = Char | Int | Long

let elem_name = function Char -> "char" | Int -> "int" | Long -> "long"
let elem_size = function Char -> 1 | Int -> 4 | Long -> 8
let elems = [| Char; Int; Long |]

type region = Stack | Heap | Global | Extern

let region_name = function
  | Stack -> "stack"
  | Heap -> "heap"
  | Global -> "global"
  | Extern -> "extern"

(** An injectable array site: an object [main] can reach by name, with
    its true geometry.  [si_wide_sb] marks size-less extern
    declarations, where SoftBound only has a wide upper bound (§4.3) and
    an overflow past the definition is {e by design} not reported — the
    justification of the mutant whitelist. *)
type site = {
  si_array : string;
  si_extent : int;  (** elements *)
  si_elem : elem;
  si_region : region;
  si_wide_sb : bool;
}

type prog = {
  p_seed : int;
  p_sources : Bench.source list;
  p_sites : site list;
  p_frees : site list;
      (** heap sites the program frees in its epilogue — after every
          digest print, so the safe program never touches a dead object.
          Temporal mutants ({!mutate_temporal}) splice after these
          frees; spatial mutants ({!mutate}) splice before them. *)
  p_productions : string list;  (** sorted, deduplicated *)
  p_features : int list;
      (** enabled feature indices ([0..n_features-1]), sorted — the
          campaign driver scores these against the VM coverage each seed
          discovers and boosts the winners ({!generate}'s [boost]) *)
}

(** The full production catalog.  The grammar-coverage test asserts that
    a fixed seed block exercises {e exactly} this set: a missing tag
    means the generator regressed; an unknown tag means the catalog is
    stale. *)
let all_productions =
  [
    "call.helper";
    "call.ptr_helper";
    "cast.int_ptr";
    "cond";
    "extern.size_less";
    "global.array";
    "global.scalar";
    "heap.array";
    "heap.free";
    "if";
    "incdec";
    "intrinsic.memcpy";
    "intrinsic.memmove";
    "intrinsic.memset";
    "local.array";
    "loop.do";
    "loop.for";
    "loop.while";
    "opassign";
    "ptr.arith";
    "ptr.deref";
    "ptr.index";
    "struct.access";
    "struct.arrow";
    "struct.def";
    "struct.memcpy";
    "struct.nested";
    "type.char";
    "type.int";
    "type.long";
  ]

(* ------------------------------------------------------------------ *)
(* Generation context                                                  *)
(* ------------------------------------------------------------------ *)

type ctx = {
  rng : Rng.t;
  buf : Buffer.t;
  mutable n_names : int;
  prods : (string, unit) Hashtbl.t;
  scalars : (string * elem) list ref;  (** assignable, printable *)
  readonly : string list ref;  (** loop counters: read-only *)
  arrays : site list ref;  (** arrays in scope *)
  ptrs : (string * elem * int) list ref;
      (** pointer name, element, in-bounds extent from its base *)
  spaths : (string * elem) list ref;  (** struct field paths in scope *)
  funcs : string list ref;  (** helpers taking one long *)
  pfuncs : string list ref;  (** helpers taking a long pointer *)
}

let prod ctx p = Hashtbl.replace ctx.prods p ()

let elem_prod ctx e =
  prod ctx
    (match e with Char -> "type.char" | Int -> "type.int" | Long -> "type.long")

let pf ctx fmt = Printf.ksprintf (Buffer.add_string ctx.buf) fmt

let fresh ctx stem =
  ctx.n_names <- ctx.n_names + 1;
  Printf.sprintf "%s%d" stem ctx.n_names

let pick ctx l = List.nth l (Rng.int ctx.rng (List.length l))

let readable_scalars ctx =
  List.map fst !(ctx.scalars) @ !(ctx.readonly)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* always-in-bounds index into an extent-[n] object *)
let rec gen_index ctx extent : string =
  let e = gen_expr ctx 1 in
  Printf.sprintf "((%s %% %d + %d) %% %d)" e extent extent extent

(* an arithmetic expression over everything readable in scope; the
   result is a number, never an address *)
and gen_expr ctx depth : string =
  let leaf () =
    match Rng.int ctx.rng 8 with
    | 0 -> string_of_int (Rng.int_range ctx.rng (-20) 20)
    | 1 | 2 when readable_scalars ctx <> [] ->
        pick ctx (readable_scalars ctx)
    | 3 | 4 when !(ctx.arrays) <> [] ->
        let s = pick ctx !(ctx.arrays) in
        Printf.sprintf "%s[%s]" s.si_array (gen_index ctx s.si_extent)
    | 5 when !(ctx.spaths) <> [] ->
        let path, _ = pick ctx !(ctx.spaths) in
        prod ctx "struct.access";
        path
    | 6 when !(ctx.ptrs) <> [] ->
        let p, _, rem = pick ctx !(ctx.ptrs) in
        prod ctx "ptr.index";
        Printf.sprintf "%s[%s]" p (gen_index ctx rem)
    | _ -> string_of_int (Rng.int_range ctx.rng 1 9)
  in
  if depth <= 0 then leaf ()
  else
    match Rng.int ctx.rng 12 with
    | 0 | 1 ->
        Printf.sprintf "(%s + %s)" (gen_expr ctx (depth - 1))
          (gen_expr ctx (depth - 1))
    | 2 ->
        Printf.sprintf "(%s - %s)" (gen_expr ctx (depth - 1))
          (gen_expr ctx (depth - 1))
    | 3 ->
        Printf.sprintf "(%s * %s)"
          (gen_expr ctx (depth - 1))
          (string_of_int (Rng.int_range ctx.rng 1 5))
    | 4 ->
        Printf.sprintf "(%s / %d)" (gen_expr ctx (depth - 1))
          (Rng.int_range ctx.rng 1 7)
    | 5 ->
        Printf.sprintf "(%s %% %d)" (gen_expr ctx (depth - 1))
          (Rng.int_range ctx.rng 2 17)
    | 6 ->
        (* bit ops: mask keeps magnitudes tame *)
        let op = pick ctx [ "&"; "|"; "^" ] in
        Printf.sprintf "(%s %s %d)" (gen_expr ctx (depth - 1)) op
          (Rng.int_range ctx.rng 1 63)
    | 7 ->
        if Rng.bool ctx.rng then
          Printf.sprintf "(%s >> %d)" (gen_expr ctx (depth - 1))
            (Rng.int_range ctx.rng 1 4)
        else
          Printf.sprintf "((%s & 1023) << %d)"
            (gen_expr ctx (depth - 1))
            (Rng.int_range ctx.rng 1 4)
    | 8 when !(ctx.funcs) <> [] ->
        prod ctx "call.helper";
        Printf.sprintf "%s(%s)" (pick ctx !(ctx.funcs))
          (gen_expr ctx (depth - 1))
    | 9 ->
        prod ctx "cond";
        (* the lowerer requires ternary arm types to agree modulo decay
           (it cannot insert conversions after the arm blocks close), so
           pin both arms to [long] with explicit casts *)
        Printf.sprintf "(%s > %s ? (long)(%s) : (long)(%s))"
          (gen_expr ctx (depth - 1))
          (gen_expr ctx 0)
          (gen_expr ctx (depth - 1))
          (gen_expr ctx (depth - 1))
    | _ -> leaf ()

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let scalar_decl ctx ~indent =
  let pad = String.make indent ' ' in
  let e = Rng.choose ctx.rng elems in
  elem_prod ctx e;
  let v = fresh ctx "v" in
  pf ctx "%s%s %s = %s;\n" pad (elem_name e) v (gen_expr ctx 2);
  ctx.scalars := (v, e) :: !(ctx.scalars)

let rec gen_stmt ctx ~indent ~depth =
  let pad = String.make indent ' ' in
  match Rng.int ctx.rng 14 with
  | 0 -> scalar_decl ctx ~indent
  | 1 when !(ctx.scalars) <> [] ->
      pf ctx "%s%s = %s;\n" pad
        (fst (pick ctx !(ctx.scalars)))
        (gen_expr ctx depth)
  | 2 when !(ctx.arrays) <> [] ->
      let s = pick ctx !(ctx.arrays) in
      pf ctx "%s%s[%s] = %s;\n" pad s.si_array
        (gen_index ctx s.si_extent)
        (gen_expr ctx depth)
  | 3 when !(ctx.ptrs) <> [] ->
      let p, _, rem = pick ctx !(ctx.ptrs) in
      prod ctx "ptr.index";
      pf ctx "%s%s[%s] = %s;\n" pad p (gen_index ctx rem)
        (gen_expr ctx depth)
  | 4 when !(ctx.ptrs) <> [] ->
      let p, _, rem = pick ctx !(ctx.ptrs) in
      prod ctx "ptr.deref";
      let off = Rng.int ctx.rng rem in
      if Rng.bool ctx.rng then
        pf ctx "%s*(%s + %d) = %s;\n" pad p off (gen_expr ctx depth)
      else pf ctx "%sacc += *(%s + %d);\n" pad p off
  | 5 when !(ctx.spaths) <> [] ->
      let path, e = pick ctx !(ctx.spaths) in
      prod ctx "struct.access";
      elem_prod ctx e;
      pf ctx "%s%s = %s;\n" pad path (gen_expr ctx depth)
  | 6 when !(ctx.scalars) <> [] ->
      prod ctx "if";
      let s = fst (pick ctx !(ctx.scalars)) in
      let cond =
        if Rng.bool ctx.rng then
          Printf.sprintf "%s > %s" s (gen_expr ctx 1)
        else begin
          (* short-circuiting condition *)
          let op = if Rng.bool ctx.rng then "&&" else "||" in
          Printf.sprintf "%s > %s %s %s < %s" s (gen_expr ctx 0) op s
            (gen_expr ctx 0)
        end
      in
      pf ctx "%sif (%s) { %s = %s - 1; } else { %s = %s + 2; }\n" pad cond s
        s s s
  | 7 when !(ctx.scalars) <> [] ->
      prod ctx "opassign";
      let s = fst (pick ctx !(ctx.scalars)) in
      let op = pick ctx [ "+="; "-="; "^=" ] in
      pf ctx "%s%s %s %s;\n" pad s op (gen_expr ctx 1)
  | 8 when !(ctx.scalars) <> [] ->
      prod ctx "incdec";
      let s = fst (pick ctx !(ctx.scalars)) in
      pf ctx "%s%s%s;\n" pad s (if Rng.bool ctx.rng then "++" else "--")
  | 9 when !(ctx.pfuncs) <> [] ->
      (* pointer-taking helper over any long array in scope *)
      let longs =
        List.filter
          (fun s -> s.si_elem = Long && s.si_extent >= 4)
          !(ctx.arrays)
      in
      if longs = [] then pf ctx "%sacc += 1;\n" pad
      else begin
        prod ctx "call.ptr_helper";
        let s = pick ctx longs in
        pf ctx "%sacc += %s(%s);\n" pad (pick ctx !(ctx.pfuncs)) s.si_array
      end
  | 10 when !(ctx.funcs) <> [] ->
      prod ctx "call.helper";
      pf ctx "%sacc += %s(%s);\n" pad (pick ctx !(ctx.funcs))
        (gen_expr ctx 1)
  | _ when !(ctx.scalars) <> [] ->
      pf ctx "%sacc += %s;\n" pad (fst (pick ctx !(ctx.scalars)))
  | _ -> pf ctx "%sacc += 1;\n" pad

and gen_loop ctx ~indent ~depth =
  let pad = String.make indent ' ' in
  let i = fresh ctx "i" in
  let n = Rng.int_range ctx.rng 2 10 in
  let body () =
    ctx.readonly := i :: !(ctx.readonly);
    let saved_scalars = !(ctx.scalars) in
    for _ = 1 to Rng.int_range ctx.rng 1 3 do
      gen_stmt ctx ~indent:(indent + 2) ~depth
    done;
    ctx.scalars := saved_scalars;
    ctx.readonly := List.tl !(ctx.readonly)
  in
  match Rng.int ctx.rng 4 with
  | 0 ->
      prod ctx "loop.while";
      pf ctx "%slong %s = 0;\n" pad i;
      pf ctx "%swhile (%s < %d) {\n" pad i n;
      body ();
      pf ctx "%s  %s = %s + 1;\n" pad i i;
      pf ctx "%s}\n" pad
  | 1 ->
      prod ctx "loop.do";
      pf ctx "%slong %s = 0;\n" pad i;
      pf ctx "%sdo {\n" pad;
      body ();
      pf ctx "%s  %s = %s + 1;\n" pad i i;
      pf ctx "%s} while (%s < %d);\n" pad i (Rng.int_range ctx.rng 1 4)
  | _ ->
      prod ctx "loop.for";
      pf ctx "%slong %s;\n" pad i;
      pf ctx "%sfor (%s = 0; %s < %d; %s++) {\n" pad i i n i;
      body ();
      pf ctx "%s}\n" pad

(* ------------------------------------------------------------------ *)
(* Helpers (the call graph)                                            *)
(* ------------------------------------------------------------------ *)

let gen_helper ctx =
  let name = fresh ctx "helper" in
  pf ctx "long %s(long x) {\n" name;
  let saved_scalars = !(ctx.scalars) in
  let saved_ptrs = !(ctx.ptrs) in
  let saved_spaths = !(ctx.spaths) in
  ctx.scalars := [ ("x", Long) ];
  ctx.ptrs := [];
  ctx.spaths := [];
  pf ctx "  long acc = x %% 100;\n";
  ctx.scalars := ("acc", Long) :: !(ctx.scalars);
  for _ = 1 to Rng.int_range ctx.rng 1 3 do
    gen_stmt ctx ~indent:2 ~depth:1
  done;
  pf ctx "  return acc;\n}\n\n";
  ctx.scalars := saved_scalars;
  ctx.ptrs := saved_ptrs;
  ctx.spaths := saved_spaths;
  ctx.funcs := name :: !(ctx.funcs)

(* a helper taking a pointer parameter; callers pass arrays of extent
   >= 4, so the fixed accesses are in bounds *)
let gen_ptr_helper ctx =
  let name = fresh ctx "psum" in
  pf ctx "long %s(long *p) {\n" name;
  pf ctx "  long acc = p[0] + p[1] * 3;\n";
  pf ctx "  p[%d] = acc %% 50;\n" (Rng.int_range ctx.rng 2 3);
  pf ctx "  return acc + p[%d];\n}\n\n" (Rng.int_range ctx.rng 0 3);
  ctx.pfuncs := name :: !(ctx.pfuncs)

(* ------------------------------------------------------------------ *)
(* Whole programs                                                      *)
(* ------------------------------------------------------------------ *)

(* deterministic element initializer for index [i] of array [k] *)
let init_expr k i = Printf.sprintf "%s * %d + %d" i (3 + (k mod 5)) (k mod 7)

let emit_init_loop ctx ~indent (s : site) =
  let pad = String.make indent ' ' in
  let i = fresh ctx "ii" in
  pf ctx "%slong %s;\n" pad i;
  pf ctx "%sfor (%s = 0; %s < %d; %s++) %s[%s] = %s;\n" pad i i s.si_extent i
    s.si_array i
    (init_expr ctx.n_names i)

(* number of rotating must-hit features; any block of >= this many
   consecutive seeds hits every one *)
let n_features = 11

(* A boosted feature is forced on, but the random draw is still consumed
   when the rotation alone would not decide, so the rng stream — and
   with it everything generated after the flag — is identical with and
   without the boost.  Boosting changes the flag, never the dice. *)
let feature ctx ~boost seed k p =
  if seed mod n_features = k then true
  else
    let hit = Rng.float ctx.rng < p in
    hit || List.mem k boost

(* the two mutation splice points of every generated main unit: spatial
   mutants land at the anchor comment — after the digest prints but
   while every object is still live — and temporal mutants land after
   the free epilogue, just before the closing return *)
let spatial_anchor = "  /* mutation anchor: all objects live */\n"
let main_suffix = "  return 0;\n}\n"

(** Generate the program for [seed].  Deterministic: the same seed and
    [boost] always yield the same sources, sites and productions.
    [boost] lists feature indices to force on — the campaign driver
    passes the features whose seeds recently discovered new VM coverage
    ({!prog.p_features} records what a seed ended up using). *)
let generate ?(boost = []) ~seed () : prog =
  let ctx =
    {
      rng = Rng.create ((seed * 2) + 1);
      buf = Buffer.create 2048;
      n_names = 0;
      prods = Hashtbl.create 64;
      scalars = ref [];
      readonly = ref [];
      arrays = ref [];
      ptrs = ref [];
      spaths = ref [];
      funcs = ref [];
      pfuncs = ref [];
    }
  in
  let feat = feature ctx ~boost seed in
  let use_ext = feat 0 0.5 in
  let use_struct = feat 1 0.6 in
  let use_nested = use_struct && feat 2 0.5 in
  let use_heap = feat 3 0.6 in
  let use_intptr = feat 4 0.5 in
  let use_memcpy = feat 5 0.5 in
  let use_memset = feat 6 0.5 in
  let use_memmove = feat 7 0.5 in
  let use_ptr_helper = feat 8 0.5 in
  let use_struct_cpy = use_struct && feat 9 0.5 in
  let use_free = feat 10 0.5 in
  (* a free needs a heap object to free: the free feature forces the
     heap feature along (flag only — both dice were already thrown) *)
  let use_heap = use_heap || use_free in

  (* --- sibling unit defining the size-less extern array (§4.3) ----- *)
  let ext_site, ext_unit =
    if not use_ext then (None, None)
    else begin
      let e = elems.(seed mod 3) in
      let extent = Rng.int_range ctx.rng 8 24 in
      let name = "extbuf" in
      let b = Buffer.create 256 in
      Printf.bprintf b "%s %s[%d];\n" (elem_name e) name extent;
      Printf.bprintf b "void ext_fill(void) {\n  long i;\n";
      Printf.bprintf b "  for (i = 0; i < %d; i++) %s[i] = i * 5 %% 90;\n"
        extent name;
      Printf.bprintf b "}\n";
      prod ctx "extern.size_less";
      elem_prod ctx e;
      ( Some
          {
            si_array = name;
            si_extent = extent;
            si_elem = e;
            si_region = Extern;
            si_wide_sb = true;
          },
        Some (Buffer.contents b) )
    end
  in

  (* --- main unit ---------------------------------------------------- *)
  (match ext_site with
  | Some s ->
      pf ctx "extern %s %s[];\n" (elem_name s.si_elem) s.si_array;
      pf ctx "void ext_fill(void);\n\n"
  | None -> ());

  (* struct definitions *)
  let struct_name = ref "" and box_name = ref "" in
  let struct_fields = ref [] in
  if use_struct then begin
    prod ctx "struct.def";
    struct_name := fresh ctx "pt";
    let fields =
      List.map
        (fun fname ->
          let e = Rng.choose ctx.rng elems in
          elem_prod ctx e;
          (fname, e))
        [ "x"; "y"; "t" ]
    in
    struct_fields := fields;
    pf ctx "struct %s {" !struct_name;
    List.iter (fun (f, e) -> pf ctx " %s %s;" (elem_name e) f) fields;
    pf ctx " };\n";
    if use_nested then begin
      prod ctx "struct.nested";
      box_name := fresh ctx "box";
      pf ctx "struct %s { struct %s p; long w; };\n" !box_name !struct_name
    end;
    pf ctx "\n"
  end;

  (* globals *)
  for _ = 1 to Rng.int_range ctx.rng 0 2 do
    let g = fresh ctx "g" in
    let e = Rng.choose ctx.rng elems in
    let extent = Rng.int_range ctx.rng 4 16 in
    prod ctx "global.array";
    elem_prod ctx e;
    pf ctx "%s %s[%d];\n" (elem_name e) g extent;
    ctx.arrays :=
      {
        si_array = g;
        si_extent = extent;
        si_elem = e;
        si_region = Global;
        si_wide_sb = false;
      }
      :: !(ctx.arrays)
  done;
  (let gs = fresh ctx "gs" in
   let e = Rng.choose ctx.rng elems in
   prod ctx "global.scalar";
   elem_prod ctx e;
   pf ctx "%s %s = %d;\n" (elem_name e) gs (Rng.int_range ctx.rng 0 40);
   ctx.scalars := (gs, e) :: !(ctx.scalars));
  pf ctx "\n";

  (* helper call graph: later helpers may call earlier ones *)
  for _ = 1 to Rng.int_range ctx.rng 1 2 do
    gen_helper ctx
  done;
  if use_ptr_helper then gen_ptr_helper ctx;

  (* main *)
  pf ctx "int main(void) {\n";
  pf ctx "  long acc = 0;\n";
  let saved_globals_arrays = !(ctx.arrays) in
  ctx.scalars := ("acc", Long) :: !(ctx.scalars);

  (* local arrays: [a1] is always a long array (pointer-helper fodder);
     the second rotates through the element types *)
  let n_arrays = Rng.int_range ctx.rng 2 3 in
  for k = 0 to n_arrays - 1 do
    let a = fresh ctx "a" in
    let e = if k = 0 then Long else elems.((seed + k) mod 3) in
    let extent = Rng.int_range ctx.rng 4 16 in
    let heap = use_heap && k = n_arrays - 1 in
    elem_prod ctx e;
    if heap then begin
      prod ctx "heap.array";
      pf ctx "  %s *%s = (%s *)malloc(%d * sizeof(%s));\n" (elem_name e) a
        (elem_name e) extent (elem_name e)
    end
    else begin
      prod ctx "local.array";
      pf ctx "  %s %s[%d];\n" (elem_name e) a extent
    end;
    let s =
      {
        si_array = a;
        si_extent = extent;
        si_elem = e;
        si_region = (if heap then Heap else Stack);
        si_wide_sb = false;
      }
    in
    emit_init_loop ctx ~indent:2 s;
    ctx.arrays := s :: !(ctx.arrays)
  done;
  (* init global arrays too *)
  List.iter (emit_init_loop ctx ~indent:2) saved_globals_arrays;

  (* struct locals *)
  if use_struct then begin
    let sv = fresh ctx "s" in
    pf ctx "  struct %s %s;\n" !struct_name sv;
    List.iter
      (fun (f, e) ->
        elem_prod ctx e;
        pf ctx "  %s.%s = %d;\n" sv f (Rng.int_range ctx.rng 0 60))
      !struct_fields;
    ctx.spaths :=
      List.map (fun (f, e) -> (Printf.sprintf "%s.%s" sv f, e))
        !struct_fields
      @ !(ctx.spaths);
    (* pointer to struct: arrow access *)
    if Rng.bool ctx.rng then begin
      prod ctx "struct.arrow";
      let sp = fresh ctx "sp" in
      pf ctx "  struct %s *%s = &%s;\n" !struct_name sp sv;
      ctx.spaths :=
        List.map
          (fun (f, e) -> (Printf.sprintf "%s->%s" sp f, e))
          !struct_fields
        @ !(ctx.spaths)
    end;
    if use_nested then begin
      let bv = fresh ctx "b" in
      pf ctx "  struct %s %s;\n" !box_name bv;
      List.iter
        (fun (f, _) ->
          pf ctx "  %s.p.%s = %d;\n" bv f (Rng.int_range ctx.rng 0 60))
        !struct_fields;
      pf ctx "  %s.w = %d;\n" bv (Rng.int_range ctx.rng 0 60);
      prod ctx "struct.nested";
      ctx.spaths :=
        ((bv ^ ".w"), Long)
        :: List.map
             (fun (f, e) -> (Printf.sprintf "%s.p.%s" bv f, e))
             !struct_fields
        @ !(ctx.spaths)
    end;
    if use_struct_cpy then begin
      prod ctx "struct.memcpy";
      let s2 = fresh ctx "s" in
      pf ctx "  struct %s %s;\n" !struct_name s2;
      pf ctx "  memcpy(&%s, &%s, sizeof(struct %s));\n" s2 sv !struct_name;
      ctx.spaths :=
        List.map (fun (f, e) -> (Printf.sprintf "%s.%s" s2 f, e))
          !struct_fields
        @ !(ctx.spaths)
    end
  end;

  (* the extern array is initialized by its defining unit *)
  (match ext_site with
  | Some s ->
      pf ctx "  ext_fill();\n";
      ctx.arrays := s :: !(ctx.arrays)
  | None -> ());

  (* pointers into arrays (in-bounds by construction) *)
  let n_ptrs = Rng.int_range ctx.rng 1 2 in
  for _ = 1 to n_ptrs do
    let s = pick ctx !(ctx.arrays) in
    let off = Rng.int ctx.rng (s.si_extent - 1) in
    let p = fresh ctx "p" in
    prod ctx "ptr.arith";
    if off = 0 then
      pf ctx "  %s *%s = %s;\n" (elem_name s.si_elem) p s.si_array
    else
      pf ctx "  %s *%s = &%s[%d];\n" (elem_name s.si_elem) p s.si_array off;
    ctx.ptrs := (p, s.si_elem, s.si_extent - off) :: !(ctx.ptrs);
    (* occasionally derive a second pointer by arithmetic *)
    if Rng.bool ctx.rng && s.si_extent - off > 2 then begin
      let q = fresh ctx "q" in
      let j = Rng.int_range ctx.rng 1 (s.si_extent - off - 1) in
      pf ctx "  %s *%s = %s + %d;\n" (elem_name s.si_elem) q p j;
      ctx.ptrs := (q, s.si_elem, s.si_extent - off - j) :: !(ctx.ptrs)
    end
  done;

  (* int<->ptr round-trip: the integer is address-derived and must never
     reach program output, so it lives in its own (untracked) names *)
  if use_intptr && !(ctx.ptrs) <> [] then begin
    prod ctx "cast.int_ptr";
    let p, e, rem = pick ctx !(ctx.ptrs) in
    let ip = fresh ctx "ip" in
    let rp = fresh ctx "rp" in
    pf ctx "  long %s = (long)%s;\n" ip p;
    pf ctx "  %s *%s = (%s *)%s;\n" (elem_name e) rp (elem_name e) ip;
    pf ctx "  acc += %s[%d];\n" rp (Rng.int ctx.rng rem);
    ctx.ptrs := (rp, e, rem) :: !(ctx.ptrs)
  end;

  (* byte intrinsics over generated buffers *)
  let byte_len (s : site) max_elems =
    elem_size s.si_elem * min max_elems s.si_extent
  in
  if use_memset then begin
    prod ctx "intrinsic.memset";
    let s = pick ctx !(ctx.arrays) in
    pf ctx "  memset(%s, %d, %d);\n" s.si_array
      (Rng.int ctx.rng 17)
      (byte_len s (Rng.int_range ctx.rng 1 8))
  end;
  if use_memcpy && List.length !(ctx.arrays) >= 2 then begin
    prod ctx "intrinsic.memcpy";
    let s1 = pick ctx !(ctx.arrays) in
    let rest = List.filter (fun s -> s.si_array <> s1.si_array) !(ctx.arrays) in
    let s2 = pick ctx rest in
    let n = min (byte_len s1 8) (byte_len s2 8) in
    pf ctx "  memcpy(%s, %s, %d);\n" s1.si_array s2.si_array n
  end;
  if use_memmove then begin
    prod ctx "intrinsic.memmove";
    (* overlapping move inside one array *)
    let s = pick ctx !(ctx.arrays) in
    let esz = elem_size s.si_elem in
    let o1 = Rng.int ctx.rng 2 and o2 = Rng.int ctx.rng 2 in
    let room = s.si_extent - max o1 o2 in
    let n = esz * max 1 (min room (Rng.int_range ctx.rng 1 6)) in
    pf ctx "  memmove(%s + %d, %s + %d, %d);\n" s.si_array o1 s.si_array o2 n
  end;

  (* the statement soup *)
  for _ = 1 to Rng.int_range ctx.rng 3 7 do
    if Rng.int ctx.rng 3 = 0 then gen_loop ctx ~indent:2 ~depth:2
    else gen_stmt ctx ~indent:2 ~depth:2
  done;

  (* digest epilogue: print everything address-independent *)
  pf ctx "  print_int(acc);\n";
  List.iter
    (fun (s : site) ->
      let i = fresh ctx "k" in
      pf ctx "  { long %s; long h = 0;\n" i;
      pf ctx "    for (%s = 0; %s < %d; %s++) h = h * 31 + %s[%s];\n" i i
        s.si_extent i s.si_array i;
      pf ctx "    print_int(h %% 1000000007); }\n")
    !(ctx.arrays);
  List.iter
    (fun (s, _) -> pf ctx "  print_int(%s %% 997);\n" s)
    !(ctx.scalars);
  List.iter
    (fun (path, _) -> pf ctx "  print_int(%s %% 997);\n" path)
    !(ctx.spaths);
  pf ctx "%s" spatial_anchor;

  (* free epilogue: heap objects die only after every digest print, so
     the safe program never touches a dead object — the lock-and-key
     checker must run it clean *)
  let frees =
    if use_free then
      List.filter (fun s -> s.si_region = Heap) (List.rev !(ctx.arrays))
    else []
  in
  if frees <> [] then prod ctx "heap.free";
  List.iter (fun s -> pf ctx "  free(%s);\n" s.si_array) frees;
  pf ctx "%s" main_suffix;

  let sites = List.rev !(ctx.arrays) in
  let productions =
    List.sort_uniq String.compare
      (Hashtbl.fold (fun k () a -> k :: a) ctx.prods [])
  in
  let features =
    List.concat
      (List.mapi
         (fun k on -> if on then [ k ] else [])
         [
           use_ext; use_struct; use_nested; use_heap; use_intptr;
           use_memcpy; use_memset; use_memmove; use_ptr_helper;
           use_struct_cpy; use_free;
         ])
  in
  let sources =
    (match ext_unit with
    | Some code -> [ Bench.src "ext" code ]
    | None -> [])
    @ [ Bench.src "main" (Buffer.contents ctx.buf) ]
  in
  {
    p_seed = seed;
    p_sources = sources;
    p_sites = sites;
    p_frees = frees;
    p_productions = productions;
    p_features = features;
  }

(* ------------------------------------------------------------------ *)
(* Unsafe mutants                                                      *)
(* ------------------------------------------------------------------ *)

type access = Read | Write

let access_name = function Read -> "read" | Write -> "write"

(** The hazard class a mutant injects.  [Spatial] is an out-of-bounds
    access to a live object (the spatial checkers' territory); [Uaf] and
    [Double_free] touch a heap object {e after} the program's free
    epilogue killed it (the temporal checker's territory).  The judge
    ({!Oracle.judge_mutant}) holds each checker to its own class and
    excuses the others with a written justification. *)
type mutant_kind = Spatial | Uaf | Double_free

let mutant_kind_name = function
  | Spatial -> "oob"
  | Uaf -> "uaf"
  | Double_free -> "dfree"

(** One derived unsafe program: the original with a single known-bad
    statement spliced into [main].  Spatial mutants index past the
    Low-Fat size class of the site ([max 16 (round_up_pow2 (size+1))],
    the runtime's own geometry), so both spatial approaches must report
    — except SoftBound on a size-less extern declaration, whose wide
    upper bound cannot see the overflow (§4.3): those carry the
    whitelist justification instead.  Temporal mutants access (or
    re-free) a freed heap site in bounds, so only the lock-and-key
    checker can report. *)
type mutant = {
  m_prog : prog;
  m_site : site;
  m_kind : mutant_kind;
  m_access : access;
  m_index : int;
  m_sources : Bench.source list;
  m_sb_whitelist : string option;
      (** [Some why]: SoftBound is excused from reporting, with the
          written justification *)
}

let mutant_name (m : mutant) =
  match m.m_kind with
  | Spatial ->
      Printf.sprintf "seed%d/%s-%s[%d]-%s" m.m_prog.p_seed
        (region_name m.m_site.si_region)
        m.m_site.si_array m.m_index
        (access_name m.m_access)
  | Uaf ->
      Printf.sprintf "seed%d/uaf-%s-%s[%d]-%s" m.m_prog.p_seed
        (region_name m.m_site.si_region)
        m.m_site.si_array m.m_index
        (access_name m.m_access)
  | Double_free ->
      Printf.sprintf "seed%d/dfree-%s-%s" m.m_prog.p_seed
        (region_name m.m_site.si_region)
        m.m_site.si_array

(* first element index past the Low-Fat size class of the object *)
let oob_index (s : site) =
  let size = s.si_extent * elem_size s.si_elem in
  let cls = max 16 (Mi_support.Util.round_up_pow2 (size + 1)) in
  (cls / elem_size s.si_elem) + 1

(* first occurrence of [sub] in [code] *)
let find_sub code sub =
  let n = String.length code and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub code i m = sub then Some i
    else go (i + 1)
  in
  go 0

(* splice [stmt] into the main unit, immediately before the first
   occurrence of [anchor] *)
let splice_main ~anchor stmt (sources : Bench.source list) =
  List.map
    (fun (s : Bench.source) ->
      if s.src_name <> "main" then s
      else
        match find_sub s.code anchor with
        | Some i ->
            {
              s with
              code =
                String.sub s.code 0 i ^ stmt
                ^ String.sub s.code i (String.length s.code - i);
            }
        | None -> invalid_arg "Gen.splice_main: unexpected main-unit shape")
    sources

(** Derive the [mseed]-th spatial mutant of [prog]: one out-of-bounds
    access to a live object, spliced at the {!spatial_anchor} (before
    the free epilogue).  Deterministic.  Most mutants target
    precisely-bounded sites; with low probability a size-less extern
    site is chosen instead to exercise the whitelist path. *)
let mutate (prog : prog) ~mseed : mutant =
  let rng = Rng.create (((prog.p_seed * 8191) + mseed) * 2) in
  let precise, wide =
    List.partition (fun s -> not s.si_wide_sb) prog.p_sites
  in
  let site =
    if wide <> [] && (precise = [] || Rng.int rng 8 = 0) then
      List.nth wide (Rng.int rng (List.length wide))
    else List.nth precise (Rng.int rng (List.length precise))
  in
  let access = if Rng.bool rng then Read else Write in
  let index = oob_index site in
  (* the access must stay observable: a read feeds [print_int] (a load
     into dead [acc] would be DCE'd at O3 before the late instrumentation
     point, deleting the check with it); a store has a side effect and
     survives on its own *)
  let stmt =
    match access with
    | Write -> Printf.sprintf "  %s[%d] = 1;\n" site.si_array index
    | Read -> Printf.sprintf "  print_int(%s[%d]);\n" site.si_array index
  in
  {
    m_prog = prog;
    m_site = site;
    m_kind = Spatial;
    m_access = access;
    m_index = index;
    m_sources = splice_main ~anchor:spatial_anchor stmt prog.p_sources;
    m_sb_whitelist =
      (if site.si_wide_sb then
         Some
           (Printf.sprintf
              "size-less extern declaration %s[]: SoftBound carries a wide \
               upper bound (§4.3), so an overflow past the definition is \
               not reportable by design"
              site.si_array)
       else None);
  }

(** Derive the [mseed]-th temporal mutant of [prog]: an in-bounds
    access to — or a second [free] of — a heap object the free epilogue
    already killed, spliced after the frees.  [None] when the program
    freed nothing ({!prog.p_frees} empty); callers fall back to
    {!mutate}.  Deterministic.  The spatial checkers' bounds metadata is
    unaffected by [free], so only the lock-and-key checker can report
    these. *)
let mutate_temporal (prog : prog) ~mseed : mutant option =
  match prog.p_frees with
  | [] -> None
  | frees ->
      let rng = Rng.create (((prog.p_seed * 4099) + mseed) * 2) in
      let site = List.nth frees (Rng.int rng (List.length frees)) in
      let kind = if Rng.int rng 3 = 0 then Double_free else Uaf in
      let access = if Rng.bool rng then Read else Write in
      let stmt =
        match kind with
        | Double_free -> Printf.sprintf "  free(%s);\n" site.si_array
        (* in bounds on purpose: the only thing wrong is the lifetime *)
        | _ when access = Write -> Printf.sprintf "  %s[0] = 1;\n" site.si_array
        | _ -> Printf.sprintf "  print_int(%s[0]);\n" site.si_array
      in
      Some
        {
          m_prog = prog;
          m_site = site;
          m_kind = kind;
          m_access = access;
          m_index = 0;
          m_sources = splice_main ~anchor:main_suffix stmt prog.p_sources;
          m_sb_whitelist = None;
        }
